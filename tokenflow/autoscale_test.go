package tokenflow_test

import (
	"reflect"
	"testing"

	"repro/tokenflow"
)

// spikeWorkload is the autoscaling study workload: multi-turn sessions
// with periodic flash crowds — baseline load a small pool handles, spikes
// it cannot.
func spikeWorkload() tokenflow.Workload {
	return tokenflow.SessionSpikesWorkload(220, 240, 60, 20, 7)
}

func runCluster(t *testing.T, cfg tokenflow.ClusterConfig, w tokenflow.Workload) *tokenflow.ClusterResult {
	t.Helper()
	res, err := tokenflow.RunCluster(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.TimedOut {
		t.Fatal("cluster run timed out")
	}
	return res
}

// TestAutoscaleStaticReproducesRunCluster: with min = max = N and a policy
// that can therefore never act, the autoscaled cluster must reproduce the
// plain RunCluster results exactly.
func TestAutoscaleStaticReproducesRunCluster(t *testing.T) {
	w := tokenflow.SessionWorkload(60, 120, 20, 9)
	base := tokenflow.ClusterConfig{
		Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Replicas: 3,
		Router:   tokenflow.RouterSessionAffinity,
	}
	static := runCluster(t, base, w)

	scaled := base
	scaled.Autoscale = &tokenflow.AutoscaleSpec{MinReplicas: 3, MaxReplicas: 3}
	auto := runCluster(t, scaled, w)

	if !reflect.DeepEqual(static.Cluster, auto.Cluster) {
		t.Errorf("min=max autoscaled cluster result differs from static RunCluster")
	}
	if static.Imbalance != auto.Imbalance || static.PrefixHits != auto.PrefixHits {
		t.Errorf("imbalance/hits differ: %v/%d vs %v/%d",
			static.Imbalance, static.PrefixHits, auto.Imbalance, auto.PrefixHits)
	}
	if auto.ScaleUps != 0 || auto.ScaleDowns != 0 {
		t.Errorf("min=max cluster scaled: %d ups, %d downs", auto.ScaleUps, auto.ScaleDowns)
	}
}

// TestAutoscaleSpecReusable: RunCluster must not write resolved defaults
// back through the caller's spec pointer — the same spec driving pools of
// different sizes must size each pool independently.
func TestAutoscaleSpecReusable(t *testing.T) {
	w := tokenflow.SessionWorkload(20, 60, 20, 9)
	spec := &tokenflow.AutoscaleSpec{MinReplicas: 1, WarmupSeconds: 2}
	for _, n := range []int{2, 4} {
		res := runCluster(t, tokenflow.ClusterConfig{
			Config:    tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			Replicas:  n,
			Router:    tokenflow.RouterLeastQueue,
			Autoscale: spec,
		}, w)
		if got := len(res.Replicas); got != n {
			t.Errorf("Replicas=%d run built a %d-replica pool", n, got)
		}
	}
	if spec.MaxReplicas != 0 {
		t.Errorf("RunCluster wrote MaxReplicas=%d into the caller's spec", spec.MaxReplicas)
	}
}

// TestAutoscaleMinOverMaxErrors: an explicit MinReplicas > MaxReplicas is
// a configuration error, not a panic.
func TestAutoscaleMinOverMaxErrors(t *testing.T) {
	w := tokenflow.SessionWorkload(5, 30, 20, 9)
	_, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:    tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Router:    tokenflow.RouterLeastQueue,
		Autoscale: &tokenflow.AutoscaleSpec{MinReplicas: 4, MaxReplicas: 2},
	}, w)
	if err == nil {
		t.Fatal("min > max should fail")
	}
}

// TestAutoscaleBeatsFixedPools is the headline trade: under the spike
// workload, the autoscaled pool with KV pre-warming must beat the fixed
// small pool on P99 TTFT (it adds capacity when spikes land) and the fixed
// large pool on GPU-seconds (it gives capacity back between spikes).
func TestAutoscaleBeatsFixedPools(t *testing.T) {
	w := spikeWorkload()
	base := tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"}
	const small, large = 1, 4

	fixedSmall := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: small, Router: tokenflow.RouterSessionAffinity,
	}, w)
	fixedLarge := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: large, Router: tokenflow.RouterSessionAffinity,
	}, w)
	auto := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: large, Router: tokenflow.RouterSessionAffinity,
		Autoscale: &tokenflow.AutoscaleSpec{
			MinReplicas: small, MaxReplicas: large,
			WarmupSeconds: 5, Prewarm: true,
		},
	}, w)

	t.Logf("fixed-small: P99 %.2fs, GPU-s %.0f", fixedSmall.Cluster.P99TTFT.Seconds(), fixedSmall.GPUSeconds)
	t.Logf("fixed-large: P99 %.2fs, GPU-s %.0f", fixedLarge.Cluster.P99TTFT.Seconds(), fixedLarge.GPUSeconds)
	t.Logf("autoscaled:  P99 %.2fs, GPU-s %.0f, ups %d, downs %d, stalls %d, prewarmed %d tokens",
		auto.Cluster.P99TTFT.Seconds(), auto.GPUSeconds, auto.ScaleUps, auto.ScaleDowns,
		auto.WarmupStalls, auto.PrewarmedTokens)

	if auto.ScaleUps == 0 {
		t.Fatal("the spike workload never triggered a scale-up")
	}
	if auto.Cluster.P99TTFT >= fixedSmall.Cluster.P99TTFT {
		t.Errorf("autoscaled P99 TTFT %v >= fixed-small %v",
			auto.Cluster.P99TTFT, fixedSmall.Cluster.P99TTFT)
	}
	if auto.GPUSeconds >= fixedLarge.GPUSeconds {
		t.Errorf("autoscaled GPU-seconds %.0f >= fixed-large %.0f",
			auto.GPUSeconds, fixedLarge.GPUSeconds)
	}
}

// scaledUpHitRate is the post-scale-up prefix hit rate: hits per routed
// request over the replicas that started off and were scaled in.
func scaledUpHitRate(res *tokenflow.ClusterResult, initial int) (float64, int) {
	var hits, routed int64
	for _, rr := range res.Replicas[initial:] {
		hits += rr.PrefixHits
		routed += int64(rr.Routed)
	}
	if routed == 0 {
		return 0, 0
	}
	return float64(hits) / float64(routed), int(routed)
}

// TestPrewarmBeatsColdWarmup: pre-warming must lift the post-scale-up
// prefix hit rate over a cold warm-up — the new replica starts with the
// hottest sessions' KV already resident.
func TestPrewarmBeatsColdWarmup(t *testing.T) {
	w := spikeWorkload()
	run := func(prewarm bool) *tokenflow.ClusterResult {
		return runCluster(t, tokenflow.ClusterConfig{
			Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			Replicas: 4,
			Router:   tokenflow.RouterSessionAffinity,
			Autoscale: &tokenflow.AutoscaleSpec{
				MinReplicas: 1, MaxReplicas: 4,
				WarmupSeconds: 5, Prewarm: prewarm, PrewarmTopK: 8,
			},
		}, w)
	}
	warm := run(true)
	cold := run(false)

	warmRate, warmRouted := scaledUpHitRate(warm, 1)
	coldRate, coldRouted := scaledUpHitRate(cold, 1)
	t.Logf("prewarm: post-scale-up hit rate %.3f over %d routed (%d prewarmed tokens, %d migrations)",
		warmRate, warmRouted, warm.PrewarmedTokens, warm.Prewarms)
	t.Logf("cold:    post-scale-up hit rate %.3f over %d routed", coldRate, coldRouted)

	if warm.ScaleUps == 0 || cold.ScaleUps == 0 {
		t.Fatal("no scale-ups to compare")
	}
	if warm.Prewarms == 0 || warm.PrewarmedTokens == 0 {
		t.Fatal("prewarm run shipped no pins")
	}
	if cold.Prewarms != 0 {
		t.Fatalf("cold run pre-warmed %d pins", cold.Prewarms)
	}
	if warmRouted == 0 {
		t.Fatal("scaled-up replicas received no traffic")
	}
	if warmRate <= coldRate {
		t.Errorf("pre-warmed post-scale-up hit rate %.3f <= cold %.3f", warmRate, coldRate)
	}
}
