package tokenflow_test

import (
	"reflect"
	"testing"

	"repro/tokenflow"
)

// TestTopologyFullMeshMatchesDefault: the public equivalence anchor — an
// explicit full-mesh TopologySpec with dedicated per-pair links at the
// default bandwidth reproduces the nil-topology results exactly, for a
// migrating hetero cluster and for an autoscaled pre-warming one.
func TestTopologyFullMeshMatchesDefault(t *testing.T) {
	w := tokenflow.SessionWorkload(24, 90, 20, 7)
	base := tokenflow.ClusterConfig{
		Config: tokenflow.Config{System: tokenflow.SystemTokenFlow, Model: "Llama3-8B"},
		ReplicaSpecs: []tokenflow.ReplicaSpec{
			{GPU: "H200", MemFraction: 0.3, Count: 1},
			{GPU: "RTX-4090", MemFraction: 0.9, Count: 2},
		},
		Router:  tokenflow.RouterSessionAffinity,
		Migrate: true,
	}
	run := func(cfg tokenflow.ClusterConfig) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := run(base)
	withTopo := base
	withTopo.Topology = &tokenflow.TopologySpec{Kind: tokenflow.TopologyFullMesh, LinkGBps: 25}
	mesh := run(withTopo)
	if !reflect.DeepEqual(def.Cluster, mesh.Cluster) {
		t.Error("explicit full-mesh topology diverges from the default cluster result")
	}
	if def.Migrations != mesh.Migrations || def.MigratedTokens != mesh.MigratedTokens {
		t.Errorf("migrations differ: %d/%d vs %d/%d",
			def.Migrations, def.MigratedTokens, mesh.Migrations, mesh.MigratedTokens)
	}

	scaled := tokenflow.ClusterConfig{
		Config:   tokenflow.Config{System: tokenflow.SystemTokenFlow, GPU: "RTX-4090", Model: "Llama3-8B"},
		Replicas: 3,
		Router:   tokenflow.RouterSessionAffinity,
		Autoscale: &tokenflow.AutoscaleSpec{
			Policy: tokenflow.AutoscaleQueuePressure, MinReplicas: 1,
			WarmupSeconds: 2, Prewarm: true,
		},
	}
	sdef := run(scaled)
	scaledTopo := scaled
	scaledTopo.Topology = &tokenflow.TopologySpec{Kind: tokenflow.TopologyFullMesh, LinkGBps: 25}
	smesh := run(scaledTopo)
	if !reflect.DeepEqual(sdef.Cluster, smesh.Cluster) {
		t.Error("autoscaled full-mesh topology diverges from the default result")
	}
	if sdef.Prewarms != smesh.Prewarms || sdef.GPUSeconds != smesh.GPUSeconds {
		t.Errorf("autoscale outcomes differ: %d/%.1f vs %d/%.1f",
			sdef.Prewarms, sdef.GPUSeconds, smesh.Prewarms, smesh.GPUSeconds)
	}
}

// TestCostMigrationWinsOnNarrowSharedNIC is the public acceptance claim for
// cost-modelled migration: on a starved shared-NIC topology, the cost
// policy declines migrations that always-migrate ships, and ends with
// strictly better P99 TTFT on the same workload and topology.
func TestCostMigrationWinsOnNarrowSharedNIC(t *testing.T) {
	w := displacementWorkload(48, 32)
	specs := []tokenflow.ReplicaSpec{
		{GPU: "H200", MemFraction: 0.3, Count: 1},
		{GPU: "RTX-4090", MemFraction: 0.9, Count: 2},
	}
	run := func(policy tokenflow.MigrationPolicy) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:          tokenflow.Config{System: tokenflow.SystemTokenFlow, Model: "Llama3-8B"},
			ReplicaSpecs:    specs,
			Router:          tokenflow.RouterSessionAffinity,
			Migrate:         true,
			MigrationPolicy: policy,
			Topology:        &tokenflow.TopologySpec{Kind: tokenflow.TopologySharedNIC, LinkGBps: 0.05},
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cluster.TimedOut {
			t.Fatal("run timed out")
		}
		return res
	}
	always := run(tokenflow.MigrateAlways)
	cost := run(tokenflow.MigrateCost)

	if always.Migrations == 0 {
		t.Fatal("always-migrate shipped nothing; the scenario is vacuous")
	}
	if cost.MigrationsDeclined == 0 {
		t.Error("cost model declined nothing on a starved NIC")
	}
	if cost.Migrations >= always.Migrations {
		t.Errorf("cost model shipped %d migrations, always %d; it should ship fewer",
			cost.Migrations, always.Migrations)
	}
	if cost.Cluster.P99TTFT >= always.Cluster.P99TTFT {
		t.Errorf("cost policy P99 TTFT %v should beat always-migrate %v on the narrow NIC",
			cost.Cluster.P99TTFT, always.Cluster.P99TTFT)
	}
}

// TestHostPrefixCacheCluster: the host-tier cache works through the public
// cluster API and its accounting surfaces in the result.
func TestHostPrefixCacheCluster(t *testing.T) {
	var w tokenflow.Workload
	for s := 1; s <= 24; s++ {
		w = append(w, tokenflow.Request{ArrivalSeconds: 0.5 * float64(s),
			PromptTokens: 2000, OutputTokens: 128, RatePerSec: 20, SessionID: s, Turn: 1})
	}
	for s := 1; s <= 24; s++ {
		w = append(w, tokenflow.Request{ArrivalSeconds: 80 + 0.5*float64(s),
			PromptTokens: 2528, OutputTokens: 128, RatePerSec: 20, SessionID: s, Turn: 2})
	}
	res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config: tokenflow.Config{
			System: tokenflow.SystemTokenFlow, GPU: "RTX-4090", Model: "Llama3-8B",
			HostPrefixCache: true,
		},
		Replicas: 1,
		Router:   tokenflow.RouterRoundRobin,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostReloads == 0 || res.HostReloadTokens == 0 {
		t.Errorf("host cache idle: %d reloads / %d tokens", res.HostReloads, res.HostReloadTokens)
	}
	if res.Replicas[0].HostReloads != res.HostReloads {
		t.Errorf("per-replica reloads %d != cluster %d", res.Replicas[0].HostReloads, res.HostReloads)
	}
	classes := map[string]tokenflow.TransferClassStats{}
	for _, cs := range res.Transfers {
		classes[cs.Class] = cs
	}
	if classes["reload"].Bytes == 0 {
		t.Errorf("reload class empty in transfer ledger: %+v", res.Transfers)
	}
	if classes["sync"].Bytes == 0 {
		t.Errorf("sync class empty in transfer ledger: %+v", res.Transfers)
	}

	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:   tokenflow.Config{Model: "Llama3-8B"},
		Topology: &tokenflow.TopologySpec{Kind: "torus"},
	}, w); err == nil {
		t.Error("unknown topology kind should fail")
	}
	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:          tokenflow.Config{Model: "Llama3-8B"},
		MigrationPolicy: "sometimes",
	}, w); err == nil {
		t.Error("unknown migration policy should fail")
	}
}
