package tokenflow

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/router"
	"repro/internal/simclock"
)

// RouterPolicy selects how a cluster routes arriving requests to replicas.
type RouterPolicy string

// Routing policies.
const (
	// RouterRoundRobin cycles through replicas in index order.
	RouterRoundRobin RouterPolicy = "round-robin"
	// RouterLeastQueue routes to the replica with the fewest outstanding
	// (queued + running) requests.
	RouterLeastQueue RouterPolicy = "least-queue"
	// RouterLeastKV routes to the replica with the most free KV pages.
	RouterLeastKV RouterPolicy = "least-kv"
	// RouterSessionAffinity sticks multi-turn sessions to the replica
	// holding their prefix KV, falling back to least-queue.
	RouterSessionAffinity RouterPolicy = "session-affinity"
)

// RouterPolicies lists all routing policies.
func RouterPolicies() []RouterPolicy {
	return []RouterPolicy{RouterRoundRobin, RouterLeastQueue, RouterLeastKV, RouterSessionAffinity}
}

// ClusterConfig describes a simulated multi-replica deployment: Replicas
// identical copies of the embedded single-device Config behind a router.
type ClusterConfig struct {
	// Config is the per-replica deployment (system, GPU, model, memory).
	Config

	// Replicas is the number of engine replicas (default 1).
	Replicas int

	// Router selects the routing policy (default RouterRoundRobin).
	Router RouterPolicy
}

// ReplicaResult reports one replica's share of a cluster run.
type ReplicaResult struct {
	// ID is the replica index.
	ID int
	// Routed counts requests the policy assigned to this replica.
	Routed int
	// PrefixHits counts requests this replica admitted with a session
	// prefix-cache hit.
	PrefixHits int64
	// Result is the replica's own serving report (covering only the
	// requests it served).
	Result *Result
}

// ClusterResult reports a completed cluster simulation.
type ClusterResult struct {
	// Router is the policy that served the run.
	Router RouterPolicy

	// Cluster is the merged cluster-level report: TTFT percentiles,
	// throughput, and QoS over every request across replicas. With one
	// replica and round-robin routing it is identical to Run's Result.
	Cluster *Result

	// Replicas lists per-replica results in replica order.
	Replicas []ReplicaResult

	// Imbalance is the peak-to-mean ratio of per-replica output tokens
	// (1.0 = perfectly balanced).
	Imbalance float64

	// PrefixHits counts requests admitted with a session prefix-cache hit;
	// PrefixHitTokens is the prefill work those hits skipped.
	PrefixHits      int64
	PrefixHitTokens int64
}

// RunCluster simulates Replicas copies of the deployment serving the
// workload behind the selected routing policy, all on one virtual clock.
func RunCluster(cfg ClusterConfig, w Workload) (*ClusterResult, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("tokenflow: replica count %d must be >= 1", cfg.Replicas)
	}
	if cfg.Router == "" {
		cfg.Router = RouterRoundRobin
	}
	if cfg.System == "" {
		cfg.System = SystemTokenFlow
	}
	pol, err := router.ByName(string(cfg.Router))
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Replicas:    cfg.Replicas,
		Policy:      pol,
		SampleEvery: simclock.Duration(cfg.SampleEverySeconds),
		MaxSimTime:  simclock.Duration(cfg.MaxSimTimeSeconds),
	}, func(_ int, clock *simclock.Clock) (*engine.Engine, error) {
		ecfg, err := buildEngineConfig(cfg.Config)
		if err != nil {
			return nil, err
		}
		ecfg.Clock = clock
		ecfg.SampleEvery = 0 // the cluster drives sampling
		return engine.New(ecfg)
	})
	if err != nil {
		return nil, err
	}
	res, err := cl.Run(toTrace(w))
	if err != nil {
		return nil, err
	}

	out := &ClusterResult{
		Router: cfg.Router,
		Cluster: convertParts(cfg.System, res.Report, res.Requests, res.Samples,
			res.Makespan, res.TimedOut),
		Imbalance:       res.Imbalance,
		PrefixHits:      res.PrefixHits,
		PrefixHitTokens: res.PrefixHitTokens,
	}
	for _, rs := range res.PerReplica {
		out.Replicas = append(out.Replicas, ReplicaResult{
			ID:         rs.ID,
			Routed:     rs.Routed,
			PrefixHits: rs.Result.PrefixHits,
			Result:     convert(cfg.System, rs.Result),
		})
	}
	return out, nil
}
