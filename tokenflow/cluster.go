package tokenflow

import (
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/prefixindex"
	"repro/internal/router"
	"repro/internal/simclock"
)

// RouterPolicy selects how a cluster routes arriving requests to replicas.
type RouterPolicy string

// Routing policies.
const (
	// RouterRoundRobin cycles through replicas in index order.
	RouterRoundRobin RouterPolicy = "round-robin"
	// RouterLeastQueue routes to the replica with the fewest outstanding
	// (queued + running) requests.
	RouterLeastQueue RouterPolicy = "least-queue"
	// RouterLeastKV routes to the replica with the most free KV pages.
	RouterLeastKV RouterPolicy = "least-kv"
	// RouterWeightedCapacity routes to the replica with the lowest
	// outstanding load per unit of KV capacity — the load balancer for
	// heterogeneous pools.
	RouterWeightedCapacity RouterPolicy = "weighted-capacity"
	// RouterSessionAffinity sticks multi-turn sessions to the replica
	// holding their pinned prefix KV, falling back to least-queue for
	// stateless requests and overloaded targets.
	RouterSessionAffinity RouterPolicy = "session-affinity"
	// RouterIndexedLeastQueue is least-queue against the event-published
	// prefix index: the winner is an O(1) tree-root read, so the
	// per-decision cost is independent of pool size. With the default
	// (degenerate) index spec it picks exactly what RouterLeastQueue
	// picks; under PrefixIndex staleness it routes on the lagged view.
	RouterIndexedLeastQueue RouterPolicy = "indexed-least-queue"
	// RouterIndexedSessionAffinity is session affinity against the prefix
	// index: holder lookup is a map read and fallbacks are tree-root
	// reads — no per-replica scan anywhere on the hot path.
	RouterIndexedSessionAffinity RouterPolicy = "indexed-session-affinity"
)

// RouterPolicies lists all routing policies.
func RouterPolicies() []RouterPolicy {
	return []RouterPolicy{RouterRoundRobin, RouterLeastQueue, RouterLeastKV,
		RouterWeightedCapacity, RouterSessionAffinity,
		RouterIndexedLeastQueue, RouterIndexedSessionAffinity}
}

// ReplicaSpec describes one group of identical replicas in a
// heterogeneous cluster.
type ReplicaSpec struct {
	// GPU names the device of this group ("RTX-4090", "A6000", "H200",
	// "Ascend-910B"); empty inherits the cluster Config's GPU.
	GPU string
	// MemFraction overrides the device-memory share for this group; zero
	// inherits the cluster Config's MemFraction.
	MemFraction float64
	// Count is the number of replicas in this group (default 1).
	Count int
}

// ClusterConfig describes a simulated multi-replica deployment: engine
// replicas behind a router, either Replicas identical copies of the
// embedded single-device Config or the heterogeneous pool ReplicaSpecs
// lays out.
type ClusterConfig struct {
	// Config is the per-replica deployment (system, GPU, model, memory).
	Config

	// Replicas is the number of engine replicas (default 1). Ignored when
	// ReplicaSpecs is set.
	Replicas int

	// ReplicaSpecs lays out a heterogeneous pool: each spec contributes
	// Count replicas of its GPU/MemFraction, in order. All replicas serve
	// the same model. Empty means Replicas homogeneous copies of Config.
	ReplicaSpecs []ReplicaSpec

	// Router selects the routing policy (default RouterRoundRobin).
	Router RouterPolicy

	// Migrate enables cross-replica KV migration: when routing steers a
	// session away from the replica pinning its prefix KV, the pinned
	// pages ship over the replica interconnect instead of being
	// recomputed, with the transfer time on the virtual clock.
	Migrate bool

	// MigrationPolicy selects how migrations commit: "always" (default)
	// ships on every divert that finds a better donor; "cost" prices the
	// queued transfer on the real topology against the target's estimated
	// prefix recompute time and skips the migration when the wire loses.
	MigrationPolicy MigrationPolicy

	// InterconnectGBps is the interconnect link bandwidth in GB/s (default
	// 25, RDMA-class): per directed pair under the default full mesh, per
	// NIC direction under a shared-NIC Topology. Used with Migrate and
	// with autoscaling (pre-warm and drain hand-off travel the same
	// fabric).
	InterconnectGBps float64

	// Topology selects the interconnect layout of the transfer fabric.
	// Nil keeps the full mesh of dedicated per-pair links at
	// InterconnectGBps, under which transfers between different replica
	// pairs never contend — the configuration earlier revisions
	// hard-coded.
	Topology *TopologySpec

	// Autoscale enables SLO-driven replica autoscaling: a control loop on
	// the virtual clock grows and shrinks the active replica set between
	// MinReplicas and MaxReplicas. Nil keeps the static pool.
	Autoscale *AutoscaleSpec

	// PrefixIndex configures the event-published global prefix index: the
	// gateway-side, eventually-consistent view of every replica's pinned
	// prefixes and load that the indexed routing policies read in O(1).
	// Nil disables it — except under an indexed Router, which then gets
	// the degenerate synchronous index (zero delay, zero drops) and
	// routes exactly like its omniscient twin.
	PrefixIndex *PrefixIndexSpec

	// Shards partitions the replicas across parallel worker goroutines
	// (replica i runs on shard i mod Shards, each on its own sub-clock,
	// synchronized at every cross-replica event). The run stays
	// deterministic and produces results identical to Shards=0 — only
	// wall-clock time changes. Clamped to the replica count. The flight
	// recorder is sharded-safe: each shard records into its own sink and
	// the streams merge deterministically, so every Obs layer — events,
	// series, profile, attribution — exports byte-identically to the
	// single-threaded run. 0 or 1 keeps the single-threaded loop.
	Shards int

	// Chaos injects faults on the virtual clock — replica crashes,
	// slow-node brownouts, interconnect link flaps — with full recovery
	// simulated: crash detection after a heartbeat delay, capped
	// exponential-backoff re-routing of orphaned requests, optional pin
	// redundancy (host mirrors on backup replicas, re-pinned after a
	// crash), and autoscaler backfill through the warm-up path. Nil, or a
	// spec with no faults and no redundancy, leaves the run byte-identical
	// to one without the field. Chaos runs stay deterministic: identical
	// specs (including seeded random plans) reproduce identical results at
	// any shard count.
	Chaos *ChaosSpec
}

// FaultKinds lists the injectable fault kinds.
func FaultKinds() []string { return []string{"crash", "brownout", "link-flap"} }

// FaultSpec is one scheduled fault in a chaos plan.
type FaultSpec struct {
	// Kind is "crash", "brownout", or "link-flap".
	Kind string
	// AtSeconds is the virtual-clock injection instant.
	AtSeconds float64
	// Replica targets crash and brownout faults.
	Replica int
	// DurationSeconds bounds brownout and link-flap windows.
	DurationSeconds float64
	// Factor is the brownout iteration-cost multiplier (must exceed 1).
	Factor float64
	// From and To name the link-flap replica pair (both directions flap).
	From, To int
}

// ChaosSpec is the fault-injection plan plus the recovery knobs. The zero
// value injects nothing.
type ChaosSpec struct {
	// Faults is the scripted fault plan.
	Faults []FaultSpec

	// RandomFaults adds this many seeded-random faults drawn over
	// [0, HorizonSeconds); Seed keys the draw, so identical specs inject
	// identical plans.
	RandomFaults   int
	Seed           int64
	HorizonSeconds float64

	// RetryMax caps re-routing attempts per crash-orphaned request before
	// it counts failed (default 3). RetryBackoffSeconds is the first retry
	// delay, doubling per attempt (default 0.25). DetectDelaySeconds
	// models the gateway noticing a crash via missed heartbeats (default
	// 0.25).
	RetryMax            int
	RetryBackoffSeconds float64
	DetectDelaySeconds  float64

	// Redundancy is the pin-redundancy factor K: host-tier mirrors of
	// every pinned session prefix are kept on K-1 backup replicas
	// (refreshed every ReplicateEverySeconds, at most
	// ReplicateConcurrency copies in flight) and re-pinned from the
	// backups after a crash. 0 or 1 disables redundancy.
	Redundancy            int
	ReplicateEverySeconds float64
	ReplicateConcurrency  int
}

// chaosSpec maps the public spec onto the internal chaos spec.
func (s *ChaosSpec) chaosSpec() (*chaos.Spec, error) {
	if s == nil {
		return nil, nil
	}
	out := &chaos.Spec{
		RandomFaults:         s.RandomFaults,
		Seed:                 s.Seed,
		Horizon:              simclock.FromSeconds(s.HorizonSeconds),
		RetryMax:             s.RetryMax,
		RetryBackoff:         time.Duration(s.RetryBackoffSeconds * float64(time.Second)),
		DetectDelay:          time.Duration(s.DetectDelaySeconds * float64(time.Second)),
		Redundancy:           s.Redundancy,
		ReplicateEvery:       time.Duration(s.ReplicateEverySeconds * float64(time.Second)),
		ReplicateConcurrency: s.ReplicateConcurrency,
	}
	for i, f := range s.Faults {
		g := chaos.Fault{
			At:       simclock.FromSeconds(f.AtSeconds),
			Replica:  f.Replica,
			Duration: time.Duration(f.DurationSeconds * float64(time.Second)),
			Factor:   f.Factor,
			From:     f.From,
			To:       f.To,
		}
		switch f.Kind {
		case "crash":
			g.Kind = chaos.Crash
		case "brownout":
			g.Kind = chaos.Brownout
		case "link-flap":
			g.Kind = chaos.LinkFlap
		default:
			return nil, fmt.Errorf("tokenflow: fault %d has unknown kind %q (have %v)",
				i, f.Kind, FaultKinds())
		}
		out.Faults = append(out.Faults, g)
	}
	return out, nil
}

// MigrationPolicy selects how cross-replica KV migrations are committed.
type MigrationPolicy string

// Migration policies.
const (
	// MigrateAlways ships a pinned prefix on every divert that finds a
	// better donor, regardless of interconnect backlog.
	MigrateAlways MigrationPolicy = "always"
	// MigrateCost prices the queued transfer on the real topology against
	// the target replica's estimated prefix recompute time and declines
	// migrations the wire would lose.
	MigrateCost MigrationPolicy = "cost"
)

// MigrationPolicies lists the migration policies.
func MigrationPolicies() []MigrationPolicy {
	return []MigrationPolicy{MigrateAlways, MigrateCost}
}

// PrefixIndexSpec configures the gateway's event-published prefix index:
// how stale the routing view is allowed to get. The zero value is the
// degenerate synchronous index — every publication applies at its emission
// instant, so indexed policies route exactly like their omniscient twins.
type PrefixIndexSpec struct {
	// PropagationDelaySeconds is the lag between a replica publishing a KV
	// or load event and the gateway index absorbing it (control-plane
	// latency). Zero applies events synchronously.
	PropagationDelaySeconds float64

	// DropRate is the probability in [0, 1) that a KV lifecycle
	// publication is lost in flight. Load signals are never dropped.
	// Drops are deterministic per (Seed, replica, sequence).
	DropRate float64

	// HeartbeatEverySeconds switches load signalling from per-change
	// queue publications to periodic digests of queue depth and
	// bucket-quantized free KV pages. Zero keeps the per-change stream.
	HeartbeatEverySeconds float64

	// MaxStalenessSeconds bounds how old a replica's digest may be before
	// indexed policies stop trusting it and divert to capacity-weighted
	// routing. Zero defaults to 3×heartbeat + propagation delay under
	// heartbeats, and to no staleness check otherwise.
	MaxStalenessSeconds float64

	// Seed keys the deterministic drop decisions.
	Seed int64
}

// indexSpec maps the public spec onto the internal prefixindex spec.
func (s *PrefixIndexSpec) indexSpec() *prefixindex.Spec {
	if s == nil {
		return nil
	}
	return &prefixindex.Spec{
		PropagationDelay: simclock.Duration(s.PropagationDelaySeconds),
		DropRate:         s.DropRate,
		HeartbeatEvery:   simclock.Duration(s.HeartbeatEverySeconds),
		MaxStaleness:     simclock.Duration(s.MaxStalenessSeconds),
		Seed:             s.Seed,
	}
}

// PrefixIndexStats reports the gateway index's end-of-run accounting.
type PrefixIndexStats struct {
	// Published counts every publication put on the wire (dropped ones
	// included — they consumed fabric bytes); Dropped the subset lost in
	// flight; Applied the subset absorbed into the index; Pending the
	// publications still in flight when the run ended.
	Published, Dropped, Applied, Pending int64
	// Heartbeats counts applied digest publications.
	Heartbeats int64
	// AffinityHits counts indexed affinity decisions that stuck a session
	// to its indexed holder; the four fallback counters classify the
	// diversions (no holder indexed, digest too stale, no KV headroom,
	// holder overloaded).
	AffinityHits      int64
	AffinityMisses    int64
	StaleFallbacks    int64
	HeadroomFallbacks int64
	OverloadFallbacks int64
	// Sessions is the distinct sessions indexed at the end of the run.
	Sessions int64
}

// TopologyKind selects the interconnect layout of the transfer fabric.
type TopologyKind string

// Interconnect layouts.
const (
	// TopologyFullMesh: a dedicated link per directed replica pair — no
	// contention between different pairs (the degenerate default).
	TopologyFullMesh TopologyKind = "full-mesh"
	// TopologySharedNIC: one egress and one ingress NIC link per replica,
	// behind an optional shared switch. Concurrent migrations, pre-warms,
	// and drain hand-offs that share an endpoint serialize.
	TopologySharedNIC TopologyKind = "shared-nic"
)

// TopologyKinds lists the interconnect layouts.
func TopologyKinds() []TopologyKind {
	return []TopologyKind{TopologyFullMesh, TopologySharedNIC}
}

// TopologySpec describes the interconnect layout of the cluster's
// transfer fabric. Every KV byte the cluster moves between replicas —
// routing migrations, pre-warm, drain hand-off — is booked on this
// topology's links with FIFO contention, so a shared NIC makes concurrent
// transfers honest about queueing.
type TopologySpec struct {
	// Kind selects the layout (default TopologyFullMesh).
	Kind TopologyKind

	// LinkGBps is the bandwidth of one interconnect link in GB/s: per
	// directed pair under full-mesh, per NIC direction under shared-nic.
	// Zero inherits InterconnectGBps.
	LinkGBps float64

	// SwitchGBps bounds the aggregate switch bandwidth under shared-nic:
	// all transfers additionally serialize through one switch stage of
	// this bandwidth. Zero models a non-blocking switch.
	SwitchGBps float64
}

// fabricSpec maps the public topology spec onto the internal fabric spec.
func (s *TopologySpec) fabricSpec() (*fabric.Spec, error) {
	if s == nil {
		return nil, nil
	}
	switch s.Kind {
	case "", TopologyFullMesh, TopologySharedNIC:
	default:
		return nil, fmt.Errorf("tokenflow: unknown topology kind %q (have %v)",
			s.Kind, TopologyKinds())
	}
	return &fabric.Spec{
		Kind:       fabric.Kind(s.Kind),
		LinkGBps:   s.LinkGBps,
		SwitchGBps: s.SwitchGBps,
	}, nil
}

// AutoscalePolicy selects how the autoscaler decides scale actions.
type AutoscalePolicy string

// Autoscaling policies.
const (
	// AutoscaleQueuePressure scales on outstanding requests per
	// provisioned replica (the TTFT-pressure proxy), with hysteresis.
	AutoscaleQueuePressure AutoscalePolicy = "queue-pressure"
	// AutoscaleKVUtilization scales on pooled KV-page utilization — the
	// earlier congestion signal for long-context session workloads.
	AutoscaleKVUtilization AutoscalePolicy = "kv-utilization"
	// AutoscaleSLOTarget closes a PID-style feedback loop on the windowed
	// observed P99 TTFT, driving it toward TargetP99TTFT.
	AutoscaleSLOTarget AutoscalePolicy = "slo-target"
	// AutoscalePredictive forecasts the arrival rate (Holt level + trend)
	// and pre-scales one warm-up latency ahead of predicted demand, hiding
	// the warm-up stall a reactive policy pays after the queue has built.
	AutoscalePredictive AutoscalePolicy = "predictive"
)

// AutoscalePolicies lists the autoscaling policies.
func AutoscalePolicies() []AutoscalePolicy {
	return []AutoscalePolicy{AutoscaleQueuePressure, AutoscaleKVUtilization,
		AutoscaleSLOTarget, AutoscalePredictive}
}

// ForecastSpec tunes the predictive policy's arrival-rate model. The zero
// value selects the defaults noted per field.
type ForecastSpec struct {
	// Alpha and Beta are the Holt double-exponential smoothing gains for
	// the rate level and trend (defaults 0.35 and 0.15).
	Alpha, Beta float64
	// RatePerReplica is the steady arrival rate in req/s one replica
	// absorbs without queue growth (default 0.6, roughly one RTX-4090
	// Llama3-8B replica on the session workloads) — the capacity model
	// the forecast is divided by to size the pool.
	RatePerReplica float64
	// Headroom scales the forecast before sizing the pool (default 1.0).
	Headroom float64
}

// AutoscaleSpec parameterizes SLO-driven replica autoscaling. The replica
// layout (Replicas or ReplicaSpecs) sizes the maximum pool: a homogeneous
// layout stretches to MaxReplicas automatically, a heterogeneous layout
// must list exactly MaxReplicas replicas.
type AutoscaleSpec struct {
	// Policy selects the scale-decision policy (default
	// AutoscaleQueuePressure).
	Policy AutoscalePolicy

	// MinReplicas and MaxReplicas bound the in-service replica set
	// (defaults: 1 and the replica layout size). InitialReplicas is the
	// active count at t=0 (default MinReplicas).
	MinReplicas, MaxReplicas, InitialReplicas int

	// ScaleToZero forces MinReplicas to 0 and fronts the cluster with a
	// gateway queue: arrivals while no replica is active are buffered
	// (bounded by GatewayDepth, excess shed and counted), trigger a
	// cold-start scale-up at their own instant, and drain FIFO into the
	// first replica that warms — queue time charged inside their TTFT.
	ScaleToZero bool

	// GatewayDepth bounds the scale-to-zero gateway buffer (default 512;
	// negative means zero capacity — every zero-replica arrival sheds,
	// though each still triggers the cold start).
	GatewayDepth int

	// TargetP99TTFT is the slo-target policy's latency goal (default 2s).
	TargetP99TTFT time.Duration

	// Forecast tunes the predictive policy's arrival-rate model; nil
	// selects the defaults.
	Forecast *ForecastSpec

	// WarmupSeconds is the latency a scale-up pays before the new replica
	// accepts traffic — model load plus allocator init (default 8;
	// negative means instant).
	WarmupSeconds float64

	// ControlEverySeconds is the autoscaler control-loop tick (default 1).
	ControlEverySeconds float64

	// Prewarm overlaps each warm-up with KV pre-warming: the hottest
	// pinned session prefixes migrate from the active replicas to the
	// warming one over the interconnect, so its first requests hit the
	// prefix cache instead of recomputing.
	Prewarm bool

	// PrewarmTopK caps the pins shipped per pre-warm (default 8).
	PrewarmTopK int

	// ScaleUpPressure / ScaleDownPressure tune the queue-pressure policy:
	// outstanding requests per provisioned replica above which to grow
	// (default 8) and below which to shrink (default 1).
	ScaleUpPressure, ScaleDownPressure float64

	// KVUtilHigh / KVUtilLow tune the kv-utilization policy: pooled
	// used-page fractions above which to grow (default 0.85) and below
	// which to shrink (default 0.30).
	KVUtilHigh, KVUtilLow float64
}

// policy constructs the internal autoscale policy the spec names.
func (s AutoscaleSpec) policy() (autoscale.Policy, error) {
	switch s.Policy {
	case "", AutoscaleQueuePressure:
		return autoscale.NewQueuePressure(autoscale.QueuePressureConfig{
			UpPressure:   s.ScaleUpPressure,
			DownPressure: s.ScaleDownPressure,
		}), nil
	case AutoscaleKVUtilization:
		return autoscale.NewKVUtilization(autoscale.KVUtilizationConfig{
			HighUtil: s.KVUtilHigh,
			LowUtil:  s.KVUtilLow,
		}), nil
	case AutoscaleSLOTarget:
		return autoscale.NewSLOTarget(autoscale.SLOTargetConfig{
			TargetP99: s.TargetP99TTFT,
		}), nil
	case AutoscalePredictive:
		var f ForecastSpec
		if s.Forecast != nil {
			f = *s.Forecast
		}
		return autoscale.NewPredictive(autoscale.PredictiveConfig{
			Alpha:          f.Alpha,
			Beta:           f.Beta,
			RatePerReplica: f.RatePerReplica,
			Headroom:       f.Headroom,
		}), nil
	default:
		return nil, fmt.Errorf("tokenflow: unknown autoscale policy %q (have %v)",
			s.Policy, AutoscalePolicies())
	}
}

// ReplicaResult reports one replica's share of a cluster run.
type ReplicaResult struct {
	// ID is the replica index.
	ID int
	// GPU names the replica's device.
	GPU string
	// Routed counts requests the policy assigned to this replica.
	Routed int
	// PrefixHits counts requests this replica admitted with a session
	// prefix-cache hit.
	PrefixHits int64
	// PinnedPrefixPages is the replica's KV pool pages still held by
	// session prefix pins at the end of the run; PeakPinnedPages the
	// run's maximum — the memory the prefix cache actually charged.
	PinnedPrefixPages int
	PeakPinnedPages   int
	// PrefixEvictions counts pinned prefixes this replica evicted under
	// memory pressure.
	PrefixEvictions int64
	// HostReloads counts evicted prefixes this replica reloaded from its
	// host tier instead of recomputing; HostMirroredPages is the host
	// memory its evicted pins' mirrors still occupy at the end of the run,
	// HostMirrorBytes the same footprint in bytes (what a host-memory
	// budget would charge).
	HostReloads       int64
	HostMirroredPages int
	HostMirrorBytes   int64
	// State is the replica's lifecycle state at the end of the run:
	// "off", "warming", "active", or "draining" ("active" always, in a
	// static cluster).
	State string
	// GPUSeconds is the simulated time this replica spent in service
	// (warming, active, or draining).
	GPUSeconds float64
	// Result is the replica's own serving report (covering only the
	// requests it served).
	Result *Result
}

// ScaleEvent is one replica lifecycle transition the autoscaler drove:
// "warmup" (off → warming), "activate" (warming → active), "reactivate"
// (a scale-up cancelled an in-progress drain), "drain" (active →
// draining), "off" (drain completed).
type ScaleEvent struct {
	AtSeconds float64
	Kind      string
	Replica   int
}

// ReplicaCountSample is one control-tick sample of the per-state replica
// counts.
type ReplicaCountSample struct {
	AtSeconds                 float64
	Active, Warming, Draining int
}

// ImbalanceSample is one point of the cluster's load-imbalance series.
type ImbalanceSample struct {
	AtSeconds float64
	// Imbalance is the peak-to-mean ratio of per-replica outstanding
	// requests at the instant (1.0 = balanced or idle).
	Imbalance float64
}

// ClusterResult reports a completed cluster simulation.
type ClusterResult struct {
	// Router is the policy that served the run.
	Router RouterPolicy

	// Cluster is the merged cluster-level report: TTFT percentiles,
	// throughput, and QoS over every request across replicas. With one
	// replica and round-robin routing it is identical to Run's Result.
	Cluster *Result

	// Replicas lists per-replica results in replica order.
	Replicas []ReplicaResult

	// Imbalance is the peak-to-mean ratio of per-replica output tokens
	// (1.0 = perfectly balanced).
	Imbalance float64

	// ImbalanceSeries samples the per-replica load imbalance over time
	// (requires SampleEverySeconds).
	ImbalanceSeries []ImbalanceSample

	// PrefixHits counts requests admitted with a session prefix-cache hit;
	// PrefixHitTokens is the prefill work those hits skipped.
	PrefixHits      int64
	PrefixHitTokens int64

	// PrefixEvictions totals pinned prefixes evicted under memory pressure
	// across replicas; PinnedPrefixPages the pages still pinned at the end
	// of the run (prefix residency charged to the pools).
	PrefixEvictions   int64
	PinnedPrefixPages int

	// Migrations counts cross-replica KV migrations; MigratedTokens the
	// prefix tokens shipped over the interconnect; MigrationDrops installs
	// the target replica rejected for lack of memory.
	// MigrationsDeclined counts diverts where the "cost" policy judged the
	// queued wire slower than recomputing and skipped the transfer.
	Migrations         int64
	MigratedTokens     int64
	MigrationDrops     int64
	MigrationsDeclined int64

	// HostReloads / HostReloadTokens total the host-tier prefix cache
	// reloads across replicas (evicted pins brought back over the
	// host-to-device link instead of recomputed, charged inside TTFT);
	// HostReloadFallbacks the arrivals whose recompute-vs-reload
	// break-even declined the reload on a backlogged link;
	// HostReloadDrops the reloads that paid the wire but could not
	// install their pin when the transfer landed (memory pressure) and
	// recomputed anyway.
	HostReloads         int64
	HostReloadTokens    int64
	HostReloadFallbacks int64
	HostReloadDrops     int64

	// HostMirrorBytes totals the host-tier prefix-mirror footprint across
	// replicas at the end of the run — the host memory still holding
	// reloadable copies of evicted pins.
	HostMirrorBytes int64

	// Transfers is the fabric's per-class traffic ledger: every byte the
	// run moved, split by purpose (sync, evict, load, reload, migrate,
	// prewarm, drain).
	Transfers []TransferClassStats

	// Autoscaling outcome (zero / empty in a static cluster).
	//
	// GPUSeconds totals the simulated time replicas spent in service
	// (warming, active, or draining) — the cost axis autoscaling trades
	// against tail latency; a static cluster reports replicas × run time.
	// WarmupStalls counts arrivals routed while a replica was still
	// warming (capacity the pool had answered but could not serve yet).
	// Prewarms / PrewarmedTokens total the pre-warm migrations seeding
	// warming replicas; DrainMigrations / DrainDroppedPins account the
	// pins draining replicas handed off or discarded.
	ScaleUps, ScaleDowns int
	ScaleEvents          []ScaleEvent
	ReplicaSeries        []ReplicaCountSample
	GPUSeconds           float64
	WarmupStalls         int64
	Prewarms             int64
	PrewarmedTokens      int64
	DrainMigrations      int64
	DrainDroppedPins     int64

	// Scale-to-zero gateway outcome (zero / empty without ScaleToZero).
	//
	// GatewayBuffered counts arrivals held while no replica was active;
	// GatewayShed those dropped on a full gateway (they appear in no
	// replica's results). GatewayDepthSeries samples the buffer depth per
	// control tick.
	GatewayBuffered    int64
	GatewayShed        int64
	GatewayDepthSeries []GatewaySample

	// Chaos outcome (all zero without an active Config.Chaos).
	//
	// Crashes counts replica crash faults that hit a live replica;
	// Retries the orphaned requests re-entered (re-routed to a survivor
	// or re-buffered through the gateway); RetryFailures the requests
	// that exhausted the retry budget and failed (they stay in the merged
	// report, unfinished, with censored TTFT). Backfills counts crashed
	// replicas the autoscaler resurrected through the warm-up path.
	// Replications / ReplicatedBytes total the pin-redundancy traffic
	// (proactive mirror copies plus post-crash re-pins) on the fabric's
	// replicate class. Brownouts and LinkFlaps count the faults injected;
	// MigrationsAborted the pin transfers a crash or flap tore off the
	// wire.
	Crashes           int64
	Retries           int64
	RetryFailures     int64
	Backfills         int64
	Replications      int64
	ReplicatedBytes   int64
	Brownouts         int64
	LinkFlaps         int64
	MigrationsAborted int64

	// ForecastError is the predictive policy's mean absolute arrival-rate
	// forecast error (req/s) over ForecastSamples scored forecasts; both
	// zero for non-forecasting policies.
	ForecastError   float64
	ForecastSamples int

	// PrefixIndex is the gateway index's accounting when the run
	// maintained one (Config.PrefixIndex or an indexed Router); nil
	// otherwise.
	PrefixIndex *PrefixIndexStats

	// EventsProcessed totals the simulator events fired across every
	// clock of the run — a determinism witness: a sharded run fires
	// exactly the events of its single-threaded twin.
	EventsProcessed uint64

	// Obs holds the flight-recorder capture when the run was instrumented
	// (Config.Obs); nil otherwise. Setting it aside, an instrumented
	// ClusterResult is identical to the uninstrumented one.
	Obs *ObsCapture

	// Attribution is the critical-path latency breakdown when
	// Config.Obs.Attribution was on; nil otherwise. Like Obs, it is pure
	// observation: setting it aside, the result is identical to an
	// uninstrumented run.
	Attribution *AttributionReport
}

// GatewaySample is one control-tick sample of the scale-to-zero gateway
// buffer depth.
type GatewaySample struct {
	AtSeconds float64
	Depth     int
}

// TransferClassStats totals one transfer class's traffic across the
// cluster's fabric.
type TransferClassStats struct {
	// Class labels the traffic's purpose: "sync", "evict", "load",
	// "reload", "migrate", "prewarm", or "drain".
	Class string
	// Transfers and Bytes count the class's bookings; BusySeconds its
	// summed bottleneck wire time (queueing excluded).
	Transfers   int64
	Bytes       int64
	BusySeconds float64
}

// expandReplicaSpecs resolves the cluster layout into one (GPU,
// MemFraction) pair per replica, applying the embedded Config's values as
// defaults.
func expandReplicaSpecs(cfg ClusterConfig) ([]ReplicaSpec, error) {
	base := ReplicaSpec{GPU: cfg.GPU, MemFraction: cfg.MemFraction}
	if base.GPU == "" {
		base.GPU = "H200"
	}
	if len(cfg.ReplicaSpecs) == 0 {
		n := cfg.Replicas
		if n == 0 {
			n = 1
		}
		if n < 1 {
			return nil, fmt.Errorf("tokenflow: replica count %d must be >= 1", n)
		}
		out := make([]ReplicaSpec, n)
		for i := range out {
			out[i] = base
		}
		return out, nil
	}
	var out []ReplicaSpec
	for i, s := range cfg.ReplicaSpecs {
		if s.Count < 0 {
			return nil, fmt.Errorf("tokenflow: replica spec %d has negative count %d", i, s.Count)
		}
		count := s.Count
		if count == 0 {
			count = 1
		}
		r := s
		if r.GPU == "" {
			r.GPU = base.GPU
		}
		if r.MemFraction == 0 {
			r.MemFraction = base.MemFraction
		}
		for k := 0; k < count; k++ {
			out = append(out, r)
		}
	}
	return out, nil
}

// RunCluster simulates the replica pool (Replicas identical copies, or
// the heterogeneous layout of ReplicaSpecs) serving the workload behind
// the selected routing policy, all on one virtual clock.
func RunCluster(cfg ClusterConfig, w Workload) (*ClusterResult, error) {
	if cfg.Router == "" {
		cfg.Router = RouterRoundRobin
	}
	if cfg.System == "" {
		cfg.System = SystemTokenFlow
	}
	reps, err := expandReplicaSpecs(cfg)
	if err != nil {
		return nil, err
	}
	var asCfg *cluster.AutoscaleConfig
	if cfg.Autoscale != nil {
		spec := *cfg.Autoscale // defaults are resolved on a copy; the caller's spec is reusable
		if spec.MaxReplicas == 0 {
			spec.MaxReplicas = len(reps)
			if spec.MaxReplicas < spec.MinReplicas {
				spec.MaxReplicas = spec.MinReplicas
			}
		}
		if len(cfg.ReplicaSpecs) == 0 && len(reps) != spec.MaxReplicas {
			// A homogeneous layout stretches to the autoscaling bound.
			base := reps[0]
			reps = make([]ReplicaSpec, spec.MaxReplicas)
			for i := range reps {
				reps[i] = base
			}
		}
		if spec.MinReplicas > spec.MaxReplicas {
			return nil, fmt.Errorf("tokenflow: autoscale min %d exceeds max %d",
				spec.MinReplicas, spec.MaxReplicas)
		}
		if len(reps) != spec.MaxReplicas {
			return nil, fmt.Errorf("tokenflow: replica layout has %d replicas, autoscale max is %d",
				len(reps), spec.MaxReplicas)
		}
		pol, err := spec.policy()
		if err != nil {
			return nil, err
		}
		asCfg = &cluster.AutoscaleConfig{
			Policy:       pol,
			Min:          spec.MinReplicas,
			Max:          spec.MaxReplicas,
			Initial:      spec.InitialReplicas,
			Warmup:       simclock.Duration(spec.WarmupSeconds),
			ControlEvery: simclock.Duration(spec.ControlEverySeconds),
			Prewarm:      spec.Prewarm,
			PrewarmTopK:  spec.PrewarmTopK,
			ScaleToZero:  spec.ScaleToZero,
			GatewayDepth: spec.GatewayDepth,
		}
	}
	pol, err := router.ByName(string(cfg.Router))
	if err != nil {
		return nil, err
	}
	switch cfg.MigrationPolicy {
	case "", MigrateAlways, MigrateCost:
	default:
		return nil, fmt.Errorf("tokenflow: unknown migration policy %q (have %v)",
			cfg.MigrationPolicy, MigrationPolicies())
	}
	topoSpec, err := cfg.Topology.fabricSpec()
	if err != nil {
		return nil, err
	}
	chaosSpec, err := cfg.Chaos.chaosSpec()
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Replicas:         len(reps),
		Policy:           pol,
		SampleEvery:      simclock.Duration(cfg.SampleEverySeconds),
		MaxSimTime:       simclock.Duration(cfg.MaxSimTimeSeconds),
		Migrate:          cfg.Migrate,
		MigrationPolicy:  cluster.MigrationPolicy(cfg.MigrationPolicy),
		InterconnectGBps: cfg.InterconnectGBps,
		Topology:         topoSpec,
		Autoscale:        asCfg,
		PrefixIndex:      cfg.PrefixIndex.indexSpec(),
		Shards:           cfg.Shards,
		Obs:              cfg.Obs.options(),
		Chaos:            chaosSpec,
	}, func(i int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		rcfg := cfg.Config
		rcfg.GPU = reps[i].GPU
		rcfg.MemFraction = reps[i].MemFraction
		ecfg, err := buildEngineConfig(rcfg)
		if err != nil {
			return nil, err
		}
		ecfg.Clock = clock
		ecfg.SampleEvery = 0 // the cluster drives sampling
		ecfg.Fabric = ep
		return engine.New(ecfg)
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := cl.Run(toTrace(w))
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	out := &ClusterResult{
		Router: cfg.Router,
		Cluster: convertParts(cfg.System, res.Report, res.Requests, res.Samples,
			res.Makespan, res.TimedOut),
		Imbalance:       res.Imbalance,
		PrefixHits:      res.PrefixHits,
		PrefixHitTokens: res.PrefixHitTokens,
		Migrations:      res.Migrations,
		MigratedTokens:  res.MigratedTokens,
		MigrationDrops:  res.MigrationDrops,

		MigrationsDeclined:  res.MigrationsDeclined,
		HostReloads:         res.HostReloads,
		HostReloadTokens:    res.HostReloadTokens,
		HostReloadFallbacks: res.HostReloadFallbacks,
		HostReloadDrops:     res.HostReloadDrops,

		GPUSeconds:       res.GPUSeconds,
		WarmupStalls:     res.WarmupStalls,
		Prewarms:         res.Prewarms,
		PrewarmedTokens:  res.PrewarmedTokens,
		DrainMigrations:  res.DrainMigrations,
		DrainDroppedPins: res.DrainDroppedPins,

		GatewayBuffered: res.GatewayBuffered,
		GatewayShed:     res.GatewayShed,

		Crashes:           res.Crashes,
		Retries:           res.Retries,
		RetryFailures:     res.RetryFailures,
		Backfills:         res.Backfills,
		Replications:      res.Replications,
		ReplicatedBytes:   res.ReplicatedBytes,
		Brownouts:         res.Brownouts,
		LinkFlaps:         res.LinkFlaps,
		MigrationsAborted: res.MigrationsAborted,

		ForecastError:   res.ForecastError,
		ForecastSamples: res.ForecastSamples,
		EventsProcessed: res.EventsProcessed,
	}
	if st := res.PrefixIndex; st != nil {
		out.PrefixIndex = &PrefixIndexStats{
			Published: st.Published, Dropped: st.Dropped,
			Applied: st.Applied, Pending: st.Pending,
			Heartbeats:        st.Heartbeats,
			AffinityHits:      st.AffinityHits,
			AffinityMisses:    st.AffinityMisses,
			StaleFallbacks:    st.StaleFallbacks,
			HeadroomFallbacks: st.HeadroomFallbacks,
			OverloadFallbacks: st.OverloadFallbacks,
			Sessions:          st.Sessions,
		}
	}
	for _, p := range res.GatewaySeries {
		out.GatewayDepthSeries = append(out.GatewayDepthSeries, GatewaySample{
			AtSeconds: p.At.Seconds(), Depth: p.Depth,
		})
	}
	for _, p := range res.ImbalanceSeries {
		out.ImbalanceSeries = append(out.ImbalanceSeries, ImbalanceSample{
			AtSeconds: p.At.Seconds(), Imbalance: p.Value,
		})
	}
	for _, cs := range res.TransferClasses {
		out.Transfers = append(out.Transfers, TransferClassStats{
			Class:       cs.Class.String(),
			Transfers:   cs.Transfers,
			Bytes:       cs.Bytes,
			BusySeconds: cs.Busy.Seconds(),
		})
	}
	for _, ev := range res.ScaleEvents {
		out.ScaleEvents = append(out.ScaleEvents, ScaleEvent{
			AtSeconds: ev.At.Seconds(), Kind: string(ev.Kind), Replica: ev.Replica,
		})
		// A cancelled drain restores capacity just like a warm-up does, so
		// reactivations count as scale-ups — the up/down totals then match
		// the control loop's actual activity under flapping load.
		switch ev.Kind {
		case cluster.ScaleWarmup, cluster.ScaleReactivate:
			out.ScaleUps++
		case cluster.ScaleDrain:
			out.ScaleDowns++
		}
	}
	for _, p := range res.ReplicaSeries {
		out.ReplicaSeries = append(out.ReplicaSeries, ReplicaCountSample{
			AtSeconds: p.At.Seconds(),
			Active:    p.Active, Warming: p.Warming, Draining: p.Draining,
		})
	}
	for i, rs := range res.PerReplica {
		kv := rs.Result.KV
		out.Replicas = append(out.Replicas, ReplicaResult{
			ID:                rs.ID,
			GPU:               reps[i].GPU,
			Routed:            rs.Routed,
			PrefixHits:        rs.Result.PrefixHits,
			PinnedPrefixPages: kv.PinnedPages,
			PeakPinnedPages:   kv.PeakPinnedPages,
			PrefixEvictions:   kv.PrefixEvictions,
			HostReloads:       kv.HostReloads,
			HostMirroredPages: kv.HostMirroredPages,
			HostMirrorBytes:   kv.HostMirrorBytes,
			State:             rs.State.String(),
			GPUSeconds:        rs.GPUSeconds,
			Result:            convert(cfg.System, rs.Result),
		})
		out.PrefixEvictions += kv.PrefixEvictions
		out.PinnedPrefixPages += kv.PinnedPages
		out.HostMirrorBytes += kv.HostMirrorBytes
	}
	if res.Obs != nil {
		out.Obs = newObsCapture(res.Obs, "cluster-"+string(cfg.Router), wall)
		if cfg.Obs.Out != "" {
			if _, err := out.Obs.WriteFiles(cfg.Obs.Out); err != nil {
				return nil, err
			}
		}
	}
	if res.Attribution != nil {
		out.Attribution = res.Attribution
		if cfg.Obs.Out != "" {
			if err := writeAttributionJSON(cfg.Obs.Out, res.Attribution); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
