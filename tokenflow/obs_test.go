package tokenflow_test

// Public-surface contract of the flight recorder: the zero ObsSpec is
// pure (results identical to an uninstrumented run, Obs nil), and an
// instrumented run exports valid Chrome trace JSON, parseable JSONL,
// CSV series, and a profile report — through the writer methods and the
// Out-directory auto-export alike.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/tokenflow"
)

func obsClusterConfig(spec tokenflow.ObsSpec) tokenflow.ClusterConfig {
	return tokenflow.ClusterConfig{
		Config: tokenflow.Config{
			System:             tokenflow.SystemTokenFlow,
			GPU:                "RTX-4090",
			Model:              "Llama3-8B",
			MemFraction:        0.9,
			HostPrefixCache:    true,
			SampleEverySeconds: 0.5,
			Obs:                spec,
		},
		Replicas: 2,
		Router:   tokenflow.RouterSessionAffinity,
		Migrate:  true,
	}
}

// TestObsSpecZeroValueIsPure: the default spec records nothing, attaches
// no capture, and leaves both Run and RunCluster results deep-equal to
// instrumented runs with the capture set aside.
func TestObsSpecZeroValueIsPure(t *testing.T) {
	w := tokenflow.SessionWorkload(24, 60, 20, 42)
	full := tokenflow.ObsSpec{Events: true, Series: true, Profile: true, Attribution: true}

	t.Run("cluster", func(t *testing.T) {
		off, err := tokenflow.RunCluster(obsClusterConfig(tokenflow.ObsSpec{}), w)
		if err != nil {
			t.Fatal(err)
		}
		if off.Obs != nil {
			t.Fatal("zero ObsSpec attached a capture")
		}
		if off.Attribution != nil {
			t.Fatal("zero ObsSpec attached an attribution report")
		}
		on, err := tokenflow.RunCluster(obsClusterConfig(full), w)
		if err != nil {
			t.Fatal(err)
		}
		if on.Obs == nil || on.Obs.EventCount() == 0 {
			t.Fatal("instrumented run recorded no events")
		}
		if on.Attribution == nil || on.Attribution.Requests == 0 {
			t.Fatal("instrumented run produced no attribution report")
		}
		on.Obs, on.Attribution = nil, nil
		if !reflect.DeepEqual(off, on) {
			t.Fatal("instrumented cluster run diverged from uninstrumented run")
		}
	})

	t.Run("single-device", func(t *testing.T) {
		cfg := tokenflow.Config{System: tokenflow.SystemTokenFlow, GPU: "RTX-4090"}
		off, err := tokenflow.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if off.Obs != nil {
			t.Fatal("zero ObsSpec attached a capture")
		}
		// Attribution is cluster-level: on its own it must leave the
		// single-device run uninstrumented.
		cfg.Obs = tokenflow.ObsSpec{Attribution: true}
		aoff, err := tokenflow.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if aoff.Obs != nil {
			t.Fatal("attribution-only spec attached a capture to single-device Run")
		}
		cfg.Obs = tokenflow.ObsSpec{Events: true, Profile: true}
		on, err := tokenflow.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if on.Obs == nil || on.Obs.EventCount() == 0 {
			t.Fatal("instrumented run recorded no events")
		}
		on.Obs = nil
		if !reflect.DeepEqual(off, on) {
			t.Fatal("instrumented single-device run diverged from uninstrumented run")
		}
	})
}

// TestObsExportsAreValid runs an instrumented cluster and validates every
// export format, plus the Out-directory auto-write.
func TestObsExportsAreValid(t *testing.T) {
	dir := t.TempDir()
	spec := tokenflow.ObsSpec{
		Events: true, Series: true, Profile: true, Attribution: true,
		Out: filepath.Join(dir, "obs"),
	}
	w := tokenflow.SessionWorkload(24, 60, 20, 42)
	res, err := tokenflow.RunCluster(obsClusterConfig(spec), w)
	if err != nil {
		t.Fatal(err)
	}

	// Chrome trace: a JSON document with a non-empty traceEvents array.
	var buf bytes.Buffer
	if err := res.Obs.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace JSON has no events")
	}

	// JSONL: every line an object with the stable fields.
	buf.Reset()
	if err := res.Obs.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("JSONL line %d does not parse: %v", lines+1, err)
		}
		if _, ok := e["kind"]; !ok {
			t.Fatalf("JSONL line %d lacks a kind", lines+1)
		}
		lines++
	}
	if lines != res.Obs.EventCount() {
		t.Fatalf("JSONL has %d lines, recorder holds %d events", lines, res.Obs.EventCount())
	}

	// Series CSV: header plus data, including the host-mirror series.
	buf.Reset()
	if err := res.Obs.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !bytes.HasPrefix([]byte(csv), []byte("series,time_s,value\n")) {
		t.Fatal("series CSV lacks the header")
	}
	for _, name := range []string{"replica0/queue_depth", "replica0/kv_util",
		"replica0/host_mirror_bytes", "cluster/active_replicas"} {
		if !bytes.Contains([]byte(csv), []byte(name)) {
			t.Fatalf("series CSV lacks %q", name)
		}
	}

	// Profile: the BENCH_obs.json shape with the engine-step phase hot.
	buf.Reset()
	if err := res.Obs.WriteProfileJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var prof struct {
		Scenario string `json:"scenario"`
		Events   int    `json:"events"`
		Phases   map[string]struct {
			Calls uint64 `json:"calls"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &prof); err != nil {
		t.Fatalf("profile JSON does not parse: %v", err)
	}
	if prof.Events != res.Obs.EventCount() || prof.Phases["engine_step"].Calls == 0 {
		t.Fatalf("profile report inconsistent: %+v", prof)
	}

	// Attribution: phases conserve the measured latencies on every
	// retained span, and the report round-trips through attribution.json.
	if res.Attribution == nil || res.Attribution.Requests == 0 {
		t.Fatal("attribution report missing")
	}
	for _, s := range res.Attribution.Slowest {
		if s.PhaseSum() != s.E2E() || s.PhaseSumTTFT() != s.TTFT() {
			t.Errorf("request %d: phase sums %v/%v do not match TTFT %v / E2E %v",
				s.Request, s.PhaseSumTTFT(), s.PhaseSum(), s.TTFT(), s.E2E())
		}
	}
	buf.Reset()
	if err := res.Attribution.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var arep struct {
		Requests int64            `json:"requests"`
		Metrics  []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &arep); err != nil {
		t.Fatalf("attribution JSON does not parse: %v", err)
	}
	if arep.Requests != res.Attribution.Requests || len(arep.Metrics) == 0 {
		t.Fatalf("attribution JSON inconsistent: %+v", arep)
	}

	// Out auto-wrote the files, attribution included.
	for _, name := range []string{"events.jsonl", "trace.json", "series.csv",
		"BENCH_obs.json", "attribution.json"} {
		if _, err := os.Stat(filepath.Join(spec.Out, name)); err != nil {
			t.Errorf("Out directory lacks %s: %v", name, err)
		}
	}

	// The host-mirror report fields agree across levels.
	var sum int64
	for _, rr := range res.Replicas {
		if (rr.HostMirrorBytes > 0) != (rr.HostMirroredPages > 0) {
			t.Errorf("replica %d: mirror bytes %d vs pages %d disagree",
				rr.ID, rr.HostMirrorBytes, rr.HostMirroredPages)
		}
		sum += rr.HostMirrorBytes
	}
	if res.HostMirrorBytes != sum {
		t.Errorf("cluster HostMirrorBytes %d != per-replica sum %d", res.HostMirrorBytes, sum)
	}
}
