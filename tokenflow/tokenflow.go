// Package tokenflow is the public API of the TokenFlow reproduction: a
// discrete-event simulator of LLM text-streaming serving with buffer-aware
// preemptive scheduling and hierarchical KV cache management, after
// "TokenFlow: Responsive LLM Text Streaming Serving under Request Burst
// via Preemptive Scheduling" (EuroSys '26).
//
// A minimal session:
//
//	w := tokenflow.BurstWorkload(64, 512, 1024, 20, 42)
//	res, err := tokenflow.Run(tokenflow.Config{
//		System: tokenflow.SystemTokenFlow,
//		GPU:    "H200",
//		Model:  "Llama3-8B",
//	}, w)
//
// Run simulates the deployment serving the workload and reports TTFT
// statistics, raw and effective throughput, the streaming QoS metric, and
// per-request details.
package tokenflow

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// System selects the serving system (scheduler + memory policy pairing) to
// simulate; these are the four systems of the paper's evaluation.
type System string

// Systems under evaluation.
const (
	// SystemSGLang is conservative FCFS with prefill priority and
	// reactive recompute-based eviction.
	SystemSGLang System = "sglang"
	// SystemSGLangChunked is SGLang with chunked prefill.
	SystemSGLangChunked System = "sglang-chunked"
	// SystemAndes is QoE-aware preemptive scheduling with recompute-based
	// preemption.
	SystemAndes System = "andes"
	// SystemTokenFlow is the paper's system: buffer-aware two-step
	// scheduling plus the hierarchical write-through KV cache manager.
	SystemTokenFlow System = "tokenflow"
)

// Systems lists all supported systems in the paper's presentation order.
func Systems() []System {
	return []System{SystemSGLangChunked, SystemSGLang, SystemAndes, SystemTokenFlow}
}

// Request is one streaming request specification.
type Request struct {
	// ArrivalSeconds is the arrival time offset from the start of the run.
	ArrivalSeconds float64
	// PromptTokens and OutputTokens are the input and output lengths.
	PromptTokens, OutputTokens int
	// RatePerSec is the client's token consumption rate (reading or
	// listening speed); 0 means the client consumes instantly.
	RatePerSec float64
	// SessionID and Turn mark multi-turn conversation membership
	// (SessionID 0 = stateless). Turns of one session share a growing
	// prompt prefix, which session-affinity routing and the per-replica
	// prefix cache exploit.
	SessionID int
	Turn      int
}

// Workload is an ordered list of requests.
type Workload []Request

// Config describes the simulated deployment.
type Config struct {
	// System selects the scheduler/memory pairing (default SystemTokenFlow).
	System System

	// GPU names the device: "RTX-4090", "A6000", "H200", "Ascend-910B".
	GPU string

	// Model names the served model: "Llama3-8B", "Qwen2-7B", "Qwen2.5-7B",
	// "Qwen2.5-32B".
	Model string

	// MemFraction is the device-memory share for weights + KV (default 0.9).
	MemFraction float64

	// TokenFlow tunes the TokenFlow scheduler; ignored for other systems.
	// The zero value selects the paper's defaults.
	TokenFlow TokenFlowOptions

	// HostPrefixCache extends session prefix pins past eviction: an
	// evicted pin's host mirror stays reloadable, and a returning turn
	// reloads it over the host-to-device link (inside its TTFT) whenever
	// the measured link backlog beats recomputing the prefix. Only
	// effective for systems with host offload (SystemTokenFlow).
	HostPrefixCache bool

	// HostPrefixCachePages caps the host-tier prefix cache at this many
	// mirrored pages (approximating a finite host-memory budget); 0 means
	// unbounded. Only meaningful with HostPrefixCache.
	HostPrefixCachePages int

	// SampleEverySeconds enables queued/running time-series sampling.
	SampleEverySeconds float64

	// MaxSimTimeSeconds aborts runaway simulations (default 4 sim-hours).
	MaxSimTimeSeconds float64

	// Obs turns on the flight recorder: lifecycle event tracing,
	// telemetry series, and the simulator self-profile. The zero value
	// records nothing and leaves results byte-identical to an
	// uninstrumented run.
	Obs ObsSpec
}

// TokenFlowOptions tunes the TokenFlow scheduler (§4 and §7.5).
type TokenFlowOptions struct {
	// RescheduleIntervalSeconds is Δt (default 1.0).
	RescheduleIntervalSeconds float64
	// BufferConservativeness is μ (default 2.0; higher behaves more like
	// SGLang).
	BufferConservativeness float64
	// DisableLocalSearch ablates the adjacent-swap refinement.
	DisableLocalSearch bool
	// DisableFallback ablates the §4.3 FCFS overload fallback.
	DisableFallback bool
	// KV ablates memory-manager features; nil selects the full §5 design.
	KV *KVOptions
}

// KVOptions ablates the hierarchical KV cache manager (Table 2).
type KVOptions struct {
	DisableOffload          bool
	DisableWriteThrough     bool
	DisableChunkedWriting   bool
	DisableLoadEvictOverlap bool
}

// RequestStats summarizes one request after a run.
type RequestStats struct {
	ID          int
	Finished    bool
	TTFT        time.Duration
	Rebuffer    time.Duration
	Tokens      int
	Preemptions int
	// TokenTimesSeconds are per-token generation timestamps (for
	// timeline plots).
	TokenTimesSeconds []float64
}

// Sample is one point of the queued/running time series.
type Sample struct {
	AtSeconds float64
	Queued    int
	Running   int
}

// Result reports a completed simulation.
type Result struct {
	System   System
	Finished int
	Total    int

	Throughput          float64 // output tokens/s over the makespan
	EffectiveThroughput float64 // §7.1.3 timeliness-weighted tokens/s
	QoS                 float64 // Eq. 2

	MeanTTFT time.Duration
	P50TTFT  time.Duration
	P99TTFT  time.Duration

	TotalRebuffer time.Duration
	Preemptions   int
	MakespanSec   float64
	TimedOut      bool

	Requests []RequestStats
	Samples  []Sample

	// Obs holds the flight-recorder capture when the run was instrumented
	// (Config.Obs); nil otherwise. Setting it aside, an instrumented
	// Result is identical to the uninstrumented one.
	Obs *ObsCapture
}

// Run simulates the deployment serving the workload.
func Run(cfg Config, w Workload) (*Result, error) {
	if cfg.System == "" {
		cfg.System = SystemTokenFlow
	}
	ecfg, err := buildEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(ecfg)
	if err != nil {
		return nil, err
	}
	spec := cfg.Obs
	spec.Attribution = false // cluster-level only; see ObsSpec.Attribution
	cap := obs.NewCapture(spec.options())
	if cap != nil {
		e.SetObs(cap.Recorder(), cap.Prof(), 0)
	}
	start := time.Now()
	res, err := e.Run(toTrace(w))
	if err != nil {
		return nil, err
	}
	out := convert(cfg.System, res)
	if cap != nil {
		out.Obs = newObsCapture(cap, string(cfg.System), time.Since(start))
		if cfg.Obs.Out != "" {
			if _, err := out.Obs.WriteFiles(cfg.Obs.Out); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func buildEngineConfig(cfg Config) (engine.Config, error) {
	if cfg.System == "" {
		cfg.System = SystemTokenFlow
	}
	if cfg.GPU == "" {
		cfg.GPU = "H200"
	}
	if cfg.Model == "" {
		cfg.Model = "Llama3-8B"
	}
	g, err := gpu.ByName(cfg.GPU)
	if err != nil {
		return engine.Config{}, err
	}
	m, err := model.ByName(cfg.Model)
	if err != nil {
		return engine.Config{}, err
	}
	ecfg := engine.Config{
		GPU:         g,
		Model:       m,
		MemFraction: cfg.MemFraction,
		SampleEvery: simclock.Duration(cfg.SampleEverySeconds),
		MaxSimTime:  simclock.Duration(cfg.MaxSimTimeSeconds),
		QoS:         metrics.DefaultQoSParams(),
	}
	switch cfg.System {
	case SystemSGLang:
		ecfg.Scheduler = sched.NewSGLang()
		ecfg.KV = engine.BaselineKVPolicy()
	case SystemSGLangChunked:
		ecfg.Scheduler = sched.NewSGLangChunked(0)
		ecfg.KV = engine.BaselineKVPolicy()
	case SystemAndes:
		ecfg.Scheduler = sched.NewAndes()
		ecfg.KV = engine.BaselineKVPolicy()
	case SystemTokenFlow:
		ccfg := core.DefaultConfig()
		o := cfg.TokenFlow
		if o.RescheduleIntervalSeconds > 0 {
			ccfg.RescheduleInterval = simclock.Duration(o.RescheduleIntervalSeconds)
		}
		if o.BufferConservativeness > 0 {
			ccfg.BufferConservativeness = o.BufferConservativeness
		}
		ccfg.LocalSearch = !o.DisableLocalSearch
		ccfg.FallbackFCFS = !o.DisableFallback
		s, err := core.New(ccfg)
		if err != nil {
			return engine.Config{}, err
		}
		ecfg.Scheduler = s
		kv := engine.TokenFlowKVPolicy()
		if o.KV != nil {
			kv.Offload = !o.KV.DisableOffload
			kv.WriteThrough = !o.KV.DisableWriteThrough
			kv.ChunkedWriting = !o.KV.DisableChunkedWriting
			kv.LoadEvictOverlap = !o.KV.DisableLoadEvictOverlap
		}
		kv.HostCache = cfg.HostPrefixCache
		kv.HostCachePages = cfg.HostPrefixCachePages
		ecfg.KV = kv
	default:
		return engine.Config{}, fmt.Errorf("tokenflow: unknown system %q", cfg.System)
	}
	return ecfg, nil
}

func toTrace(w Workload) trace.Workload {
	var out trace.Workload
	out.Name = "api"
	for _, r := range w {
		out.Items = append(out.Items, trace.Item{
			Arrival:   simclock.FromSeconds(r.ArrivalSeconds),
			PromptLen: r.PromptTokens,
			OutputLen: r.OutputTokens,
			Rate:      r.RatePerSec,
			Session:   r.SessionID,
			Turn:      r.Turn,
		})
	}
	return out
}

func convert(sys System, res *engine.Result) *Result {
	return convertParts(sys, res.Report, res.Requests, res.Samples, res.Makespan, res.TimedOut)
}

// convertParts assembles the public Result from report pieces; the single-
// device and cluster paths share it so their outputs stay comparable
// field for field.
func convertParts(sys System, rep metrics.Report, reqs []*request.Request,
	samples []request.Sample, makespan time.Duration, timedOut bool) *Result {
	out := &Result{
		System:              sys,
		Finished:            rep.Finished,
		Total:               rep.N,
		Throughput:          rep.Throughput,
		EffectiveThroughput: rep.EffectiveThroughput,
		QoS:                 rep.QoS,
		MeanTTFT:            rep.MeanTTFT,
		P50TTFT:             rep.P50TTFT,
		P99TTFT:             rep.P99TTFT,
		TotalRebuffer:       rep.TotalRebuffer,
		Preemptions:         rep.Preemptions,
		MakespanSec:         makespan.Seconds(),
		TimedOut:            timedOut,
	}
	for i, r := range reqs {
		rm := rep.Requests[i]
		rs := RequestStats{
			ID: r.ID, Finished: rm.Finished, TTFT: rm.TTFT,
			Rebuffer: rm.Rebuffer, Tokens: rm.Tokens, Preemptions: rm.Preemptions,
		}
		for _, t := range r.TokenTimes {
			rs.TokenTimesSeconds = append(rs.TokenTimesSeconds, t.Seconds())
		}
		out.Requests = append(out.Requests, rs)
	}
	for _, s := range samples {
		out.Samples = append(out.Samples, Sample{AtSeconds: s.At.Seconds(), Queued: s.Queued, Running: s.Running})
	}
	return out
}

// BurstWorkload builds a flash crowd: n requests at t=0 with normally
// distributed lengths around the given means.
func BurstWorkload(n, meanPrompt, meanOutput int, rate float64, seed int64) Workload {
	w := trace.Burst("burst", n, 0, trace.NormalLengths{
		PromptMean: float64(meanPrompt), PromptStd: float64(meanPrompt) / 4,
		OutputMean: float64(meanOutput), OutputStd: float64(meanOutput) / 4,
		Min: 16, Max: 8192,
	}, trace.FixedRate(rate), seed)
	return fromTrace(w)
}

// PoissonWorkload builds Poisson arrivals at lambda req/s for the given
// duration.
func PoissonWorkload(lambda, durationSec float64, meanPrompt, meanOutput int, rate float64, seed int64) Workload {
	w := trace.Poisson("poisson", lambda, simclock.FromSeconds(durationSec), trace.NormalLengths{
		PromptMean: float64(meanPrompt), PromptStd: float64(meanPrompt) / 4,
		OutputMean: float64(meanOutput), OutputStd: float64(meanOutput) / 4,
		Min: 16, Max: 8192,
	}, trace.FixedRate(rate), seed)
	return fromTrace(w)
}

// BurstGPTWorkload builds a BurstGPT-like bursty trace with ShareGPT-style
// length distributions.
func BurstGPTWorkload(durationSec, baseRate float64, rate float64, seed int64) Workload {
	w := trace.BurstGPT("burstgpt", trace.BurstGPTConfig{
		Duration: simclock.FromSeconds(durationSec),
		BaseRate: baseRate,
		Lengths:  trace.ShareGPTLengths(),
		Rates:    trace.FixedRate(rate),
		Seed:     seed,
	})
	return fromTrace(w)
}

// BurstGPTSpikesWorkload is BurstGPTWorkload with periodic flash crowds of
// spikeSize requests every spikeEverySec seconds layered on the background
// process — the request-burst regime the paper targets.
func BurstGPTSpikesWorkload(durationSec, baseRate float64, spikeEverySec float64, spikeSize int, rate float64, seed int64) Workload {
	w := trace.BurstGPT("burstgpt-spikes", trace.BurstGPTConfig{
		Duration:   simclock.FromSeconds(durationSec),
		BaseRate:   baseRate,
		SpikeEvery: simclock.FromSeconds(spikeEverySec),
		SpikeSize:  spikeSize,
		Lengths:    trace.ShareGPTLengths(),
		Rates:      trace.FixedRate(rate),
		Seed:       seed,
	})
	return fromTrace(w)
}

// SessionWorkload builds a multi-turn chat workload: sessions
// conversations starting uniformly over durationSec, each 3-8 turns whose
// prompts grow by the previous response plus a short followup (a shared
// prefix session-affinity routing can exploit), separated by think-time
// gaps.
func SessionWorkload(sessions int, durationSec float64, rate float64, seed int64) Workload {
	w := trace.Sessions("sessions", trace.SessionConfig{
		Sessions: sessions,
		Duration: simclock.FromSeconds(durationSec),
		Rates:    trace.FixedRate(rate),
		Seed:     seed,
	})
	return fromTrace(w)
}

// SessionSpikesWorkload is SessionWorkload with periodic flash crowds:
// every spikeEverySec, a cohort of sessions opens simultaneously (half of
// all sessions arrive in cohorts) — the multi-turn request-burst regime
// the cluster experiment studies.
func SessionSpikesWorkload(sessions int, durationSec, spikeEverySec float64, rate float64, seed int64) Workload {
	w := trace.Sessions("session-spikes", trace.SessionConfig{
		Sessions:   sessions,
		Duration:   simclock.FromSeconds(durationSec),
		SpikeEvery: simclock.FromSeconds(spikeEverySec),
		Rates:      trace.FixedRate(rate),
		Seed:       seed,
	})
	return fromTrace(w)
}

// SessionRampWorkload is SessionWorkload with session-start density
// growing linearly over the window — a forecastable demand trend (instead
// of a level shift) that predictive autoscaling can pre-scale ahead of.
func SessionRampWorkload(sessions int, durationSec, rate float64, seed int64) Workload {
	w := trace.Sessions("session-ramp", trace.SessionConfig{
		Sessions: sessions,
		Duration: simclock.FromSeconds(durationSec),
		RampUp:   true,
		Rates:    trace.FixedRate(rate),
		Seed:     seed,
	})
	return fromTrace(w)
}

func fromTrace(w trace.Workload) Workload {
	out := make(Workload, 0, w.Len())
	for _, it := range w.Items {
		out = append(out, Request{
			ArrivalSeconds: it.Arrival.Seconds(),
			PromptTokens:   it.PromptLen,
			OutputTokens:   it.OutputLen,
			RatePerSec:     it.Rate,
			SessionID:      it.Session,
			Turn:           it.Turn,
		})
	}
	return out
}
