package tokenflow_test

import (
	"reflect"
	"testing"

	"repro/tokenflow"
)

// TestRunClusterSingleReplicaMatchesRun is the cluster subsystem's anchor:
// one replica behind round-robin routing must reproduce the single-device
// Run byte for byte — same report, same per-request stats, same samples.
func TestRunClusterSingleReplicaMatchesRun(t *testing.T) {
	workloads := map[string]tokenflow.Workload{
		"burst":    tokenflow.BurstWorkload(48, 512, 1024, 20, 42),
		"sessions": tokenflow.SessionWorkload(16, 60, 20, 42),
	}
	for name, w := range workloads {
		name, w := name, w
		t.Run(name, func(t *testing.T) {
			cfg := tokenflow.Config{
				System:             tokenflow.SystemTokenFlow,
				GPU:                "RTX-4090",
				Model:              "Llama3-8B",
				SampleEverySeconds: 5,
			}
			solo, err := tokenflow.Run(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			cres, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
				Config:   cfg,
				Replicas: 1,
				Router:   tokenflow.RouterRoundRobin,
			}, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cres.Cluster, solo) {
				t.Errorf("1-replica cluster result differs from Run:\ncluster: %+v\nsolo:    %+v",
					cres.Cluster, solo)
			}
			if len(cres.Replicas) != 1 || cres.Replicas[0].Routed != len(w) {
				t.Errorf("replica stats %+v, want 1 replica with %d routed", cres.Replicas, len(w))
			}
			if cres.Imbalance != 1 {
				t.Errorf("single-replica imbalance %v, want 1", cres.Imbalance)
			}
		})
	}
}

// TestSessionAffinityBeatsRoundRobin is the cluster experiment's headline
// claim: on a 4-replica cluster serving a multi-turn spike workload,
// prefix-affinity routing beats round-robin on P99 TTFT (deterministic
// simulation, so this is a hard assertion, not a statistical one).
func TestSessionAffinityBeatsRoundRobin(t *testing.T) {
	w := tokenflow.SessionSpikesWorkload(300, 240, 60, 20, 7)
	cfg := tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "RTX-4090",
		Model:  "Llama3-8B",
	}
	run := func(r tokenflow.RouterPolicy) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config: cfg, Replicas: 4, Router: r,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cluster.TimedOut {
			t.Fatalf("%s run timed out", r)
		}
		return res
	}
	aff := run(tokenflow.RouterSessionAffinity)
	rr := run(tokenflow.RouterRoundRobin)

	if aff.PrefixHits <= rr.PrefixHits {
		t.Errorf("affinity preserved %d prefix hits, round-robin %d; affinity should preserve more",
			aff.PrefixHits, rr.PrefixHits)
	}
	if aff.Cluster.P99TTFT >= rr.Cluster.P99TTFT {
		t.Errorf("session-affinity P99 TTFT %v should beat round-robin %v",
			aff.Cluster.P99TTFT, rr.Cluster.P99TTFT)
	}
}

// TestRouterPoliciesAllComplete smoke-tests every policy end to end on a
// small cluster.
func TestRouterPoliciesAllComplete(t *testing.T) {
	w := tokenflow.SessionWorkload(12, 60, 20, 3)
	for _, pol := range tokenflow.RouterPolicies() {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			Replicas: 2,
			Router:   pol,
		}, w)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Cluster.Finished != res.Cluster.Total {
			t.Errorf("%s: %d/%d finished", pol, res.Cluster.Finished, res.Cluster.Total)
		}
	}
}

func TestRunClusterErrors(t *testing.T) {
	w := tokenflow.BurstWorkload(4, 128, 128, 20, 1)
	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config: tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Router: "warm-pool",
	}, w); err == nil {
		t.Error("unknown router should fail")
	}
	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Replicas: -2,
	}, w); err == nil {
		t.Error("negative replica count should fail")
	}
}
