package tokenflow_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/tokenflow"
)

// TestRunClusterSingleReplicaMatchesRun is the cluster subsystem's anchor:
// one replica behind round-robin routing must reproduce the single-device
// Run byte for byte — same report, same per-request stats, same samples.
func TestRunClusterSingleReplicaMatchesRun(t *testing.T) {
	workloads := map[string]tokenflow.Workload{
		"burst":    tokenflow.BurstWorkload(48, 512, 1024, 20, 42),
		"sessions": tokenflow.SessionWorkload(16, 60, 20, 42),
	}
	for name, w := range workloads {
		name, w := name, w
		t.Run(name, func(t *testing.T) {
			cfg := tokenflow.Config{
				System:             tokenflow.SystemTokenFlow,
				GPU:                "RTX-4090",
				Model:              "Llama3-8B",
				SampleEverySeconds: 5,
			}
			solo, err := tokenflow.Run(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			cres, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
				Config:   cfg,
				Replicas: 1,
				Router:   tokenflow.RouterRoundRobin,
			}, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cres.Cluster, solo) {
				t.Errorf("1-replica cluster result differs from Run:\ncluster: %+v\nsolo:    %+v",
					cres.Cluster, solo)
			}
			if len(cres.Replicas) != 1 || cres.Replicas[0].Routed != len(w) {
				t.Errorf("replica stats %+v, want 1 replica with %d routed", cres.Replicas, len(w))
			}
			if cres.Imbalance != 1 {
				t.Errorf("single-replica imbalance %v, want 1", cres.Imbalance)
			}
		})
	}
}

// TestSessionAffinityBeatsRoundRobin is the cluster experiment's headline
// claim: on a 4-replica cluster serving a multi-turn spike workload,
// prefix-affinity routing beats round-robin on P99 TTFT (deterministic
// simulation, so this is a hard assertion, not a statistical one).
func TestSessionAffinityBeatsRoundRobin(t *testing.T) {
	w := tokenflow.SessionSpikesWorkload(300, 240, 60, 20, 7)
	cfg := tokenflow.Config{
		System: tokenflow.SystemTokenFlow,
		GPU:    "RTX-4090",
		Model:  "Llama3-8B",
	}
	run := func(r tokenflow.RouterPolicy) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config: cfg, Replicas: 4, Router: r,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cluster.TimedOut {
			t.Fatalf("%s run timed out", r)
		}
		return res
	}
	aff := run(tokenflow.RouterSessionAffinity)
	rr := run(tokenflow.RouterRoundRobin)

	if aff.PrefixHits <= rr.PrefixHits {
		t.Errorf("affinity preserved %d prefix hits, round-robin %d; affinity should preserve more",
			aff.PrefixHits, rr.PrefixHits)
	}
	if aff.Cluster.P99TTFT >= rr.Cluster.P99TTFT {
		t.Errorf("session-affinity P99 TTFT %v should beat round-robin %v",
			aff.Cluster.P99TTFT, rr.Cluster.P99TTFT)
	}
}

// displacementWorkload builds the migration stress scenario: ns sessions
// open early and pin large contexts on the cluster's big replica, then
// flash crowds of nb big stateless prompts flood it at t=60 and t=120,
// with the sessions' follow-up turns arriving right behind each wave.
// The overloaded pin holder forces affinity to divert those turns — the
// exact moment cross-replica KV migration competes with recompute.
func displacementWorkload(ns, nb int) tokenflow.Workload {
	var w tokenflow.Workload
	for s := 1; s <= ns; s++ {
		t0 := 40.0 * float64(s) / float64(ns+1)
		w = append(w, tokenflow.Request{ArrivalSeconds: t0, PromptTokens: 1500,
			OutputTokens: 400, RatePerSec: 20, SessionID: s, Turn: 1})
		w = append(w, tokenflow.Request{ArrivalSeconds: 62 + float64(s%10), PromptTokens: 1980,
			OutputTokens: 400, RatePerSec: 20, SessionID: s, Turn: 2})
		w = append(w, tokenflow.Request{ArrivalSeconds: 122 + float64(s%10), PromptTokens: 2460,
			OutputTokens: 400, RatePerSec: 20, SessionID: s, Turn: 3})
	}
	for i := 0; i < nb; i++ {
		w = append(w, tokenflow.Request{ArrivalSeconds: 60, PromptTokens: 6000,
			OutputTokens: 100, RatePerSec: 20})
		w = append(w, tokenflow.Request{ArrivalSeconds: 120, PromptTokens: 6000,
			OutputTokens: 100, RatePerSec: 20})
	}
	sort.SliceStable(w, func(i, j int) bool { return w[i].ArrivalSeconds < w[j].ArrivalSeconds })
	return w
}

// TestMigrationBeatsRecomputeOnHeteroPool is the unified residency model's
// headline claim: on an imbalanced heterogeneous pool under multi-turn
// spikes, affinity routing with cross-replica KV migration beats
// migration-off on tail TTFT — shipping a session's pinned prefix over the
// interconnect is cheaper than recomputing it on the fallback replica, and
// it keeps the session's reuse chain alive — while the prefix cache
// visibly charges the page pools.
func TestMigrationBeatsRecomputeOnHeteroPool(t *testing.T) {
	w := displacementWorkload(64, 40)
	specs := []tokenflow.ReplicaSpec{
		// One compute-rich big replica (where the sessions pin) and two
		// compute-poor small ones (where recomputing a displaced prefix
		// is expensive).
		{GPU: "H200", MemFraction: 0.3, Count: 1},
		{GPU: "RTX-4090", MemFraction: 0.9, Count: 2},
	}
	run := func(migrate bool) *tokenflow.ClusterResult {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:       tokenflow.Config{System: tokenflow.SystemTokenFlow, Model: "Llama3-8B"},
			ReplicaSpecs: specs,
			Router:       tokenflow.RouterSessionAffinity,
			Migrate:      migrate,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cluster.TimedOut {
			t.Fatal("run timed out")
		}
		if res.Cluster.Finished != res.Cluster.Total {
			t.Fatalf("finished %d/%d", res.Cluster.Finished, res.Cluster.Total)
		}
		return res
	}
	with := run(true)
	without := run(false)

	if with.Migrations == 0 {
		t.Fatal("the displaced turns should trigger migrations")
	}
	// Prefix residency is charged to the pools, not conjured for free.
	if with.PinnedPrefixPages == 0 || without.PinnedPrefixPages == 0 {
		t.Errorf("pinned prefix pages: with=%d without=%d, want > 0",
			with.PinnedPrefixPages, without.PinnedPrefixPages)
	}
	// Migration keeps displaced sessions' reuse chains alive...
	if with.PrefixHits <= without.PrefixHits {
		t.Errorf("migration preserved %d prefix hits, recompute %d; migration should preserve more",
			with.PrefixHits, without.PrefixHits)
	}
	// ...and that shows up as lower tail and mean TTFT.
	if with.Cluster.P99TTFT >= without.Cluster.P99TTFT {
		t.Errorf("migration P99 TTFT %v should beat recompute %v",
			with.Cluster.P99TTFT, without.Cluster.P99TTFT)
	}
	if with.Cluster.MeanTTFT >= without.Cluster.MeanTTFT {
		t.Errorf("migration mean TTFT %v should beat recompute %v",
			with.Cluster.MeanTTFT, without.Cluster.MeanTTFT)
	}
}

// TestHeteroReplicaSpecsExpand checks layout expansion and per-replica
// reporting of a mixed pool.
func TestHeteroReplicaSpecsExpand(t *testing.T) {
	w := tokenflow.SessionWorkload(12, 60, 20, 3)
	res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config: tokenflow.Config{Model: "Llama3-8B"},
		ReplicaSpecs: []tokenflow.ReplicaSpec{
			{GPU: "H200", Count: 1},
			{GPU: "RTX-4090", Count: 2},
		},
		Router: tokenflow.RouterWeightedCapacity,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(res.Replicas))
	}
	wantGPU := []string{"H200", "RTX-4090", "RTX-4090"}
	for i, rr := range res.Replicas {
		if rr.GPU != wantGPU[i] {
			t.Errorf("replica %d GPU = %q, want %q", i, rr.GPU, wantGPU[i])
		}
	}
	if res.Cluster.Finished != res.Cluster.Total {
		t.Errorf("finished %d/%d", res.Cluster.Finished, res.Cluster.Total)
	}
	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:       tokenflow.Config{Model: "Llama3-8B"},
		ReplicaSpecs: []tokenflow.ReplicaSpec{{GPU: "RTX-4090", Count: -1}},
	}, w); err == nil {
		t.Error("negative spec count should fail")
	}
}

// TestRouterPoliciesAllComplete smoke-tests every policy end to end on a
// small cluster.
func TestRouterPoliciesAllComplete(t *testing.T) {
	w := tokenflow.SessionWorkload(12, 60, 20, 3)
	for _, pol := range tokenflow.RouterPolicies() {
		res, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
			Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
			Replicas: 2,
			Router:   pol,
		}, w)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Cluster.Finished != res.Cluster.Total {
			t.Errorf("%s: %d/%d finished", pol, res.Cluster.Finished, res.Cluster.Total)
		}
	}
}

func TestRunClusterErrors(t *testing.T) {
	w := tokenflow.BurstWorkload(4, 128, 128, 20, 1)
	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config: tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Router: "warm-pool",
	}, w); err == nil {
		t.Error("unknown router should fail")
	}
	if _, err := tokenflow.RunCluster(tokenflow.ClusterConfig{
		Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Replicas: -2,
	}, w); err == nil {
		t.Error("negative replica count should fail")
	}
}
