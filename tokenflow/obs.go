package tokenflow

import (
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/attribution"
)

// ObsSpec turns on the flight recorder for a run. The zero value records
// nothing and is guaranteed free: an uninstrumented run produces results
// byte-identical to a build without the observability layer.
type ObsSpec struct {
	// Events records the request lifecycle on the event bus: arrival,
	// gateway buffering/shedding, route decision (with the policy's
	// score), queueing, admission, preemption/resume, first token, decode
	// progress, completion, KV pin/evict/mirror/reload, migration
	// accept/decline, pre-warm, drain hand-off, scale decisions, and
	// fabric transfers.
	Events bool

	// Series records named per-tick telemetry series: per-replica queue
	// depth, KV utilization and host-mirror bytes, per-link fabric
	// busy/backlog, active replica count, gateway depth, and the
	// autoscaler's full signal vector. Series ride the cluster's sampling
	// loop, so they need SampleEverySeconds set and a RunCluster run;
	// single-device Run records no series.
	Series bool

	// Profile times the simulator's own phases (control tick, engine
	// step, fabric settle, attribution) with the wall clock, for the
	// BENCH_obs.json self-profile. Wall time never feeds back into
	// virtual-time results.
	Profile bool

	// Attribution streams every request's lifecycle into a critical-path
	// latency breakdown: per-request causal spans (gateway wait, KV
	// reload / migration wire time, queue wait, prefill, decode,
	// preemption gaps) folded into bounded-memory quantile sketches per
	// phase × request class × replica. The result is
	// ClusterResult.Attribution; memory is independent of request count,
	// so it stays on for 1M-request runs where Events would not fit.
	// Cluster-level only: single-device Run ignores it.
	Attribution bool

	// SampleEvery thins series recording to every Nth sampling tick
	// (0 or 1 = every tick).
	SampleEvery int

	// Out, when non-empty, writes every captured layer into this
	// directory after the run: events.jsonl, trace.json (Chrome
	// trace_event JSON — open in Perfetto), series.csv, BENCH_obs.json,
	// attribution.json.
	Out string
}

// Enabled reports whether any layer is on.
func (s ObsSpec) Enabled() bool {
	return s.Events || s.Series || s.Profile || s.Attribution
}

// options maps the public spec onto the internal capture options.
func (s ObsSpec) options() obs.Options {
	return obs.Options{
		Events:      s.Events,
		Series:      s.Series,
		Profile:     s.Profile,
		Attribution: s.Attribution,
		SampleEvery: s.SampleEvery,
	}
}

// ObsCapture holds the observability products of one instrumented run.
// Results carry a nil *ObsCapture when the run was not instrumented; all
// methods are nil-safe.
type ObsCapture struct {
	cap      *obs.Capture
	scenario string
	wall     time.Duration
}

// newObsCapture wraps an internal capture; nil in, nil out.
func newObsCapture(c *obs.Capture, scenario string, wall time.Duration) *ObsCapture {
	if c == nil {
		return nil
	}
	return &ObsCapture{cap: c, scenario: scenario, wall: wall}
}

// EventCount reports the number of recorded lifecycle events.
func (c *ObsCapture) EventCount() int {
	if c == nil {
		return 0
	}
	return c.cap.Events.Len()
}

// WriteEventsJSONL writes the event log as one JSON object per line in
// deterministic (time, replica, sequence) order — byte-stable across runs
// of the same scenario.
func (c *ObsCapture) WriteEventsJSONL(w io.Writer) error {
	if c == nil || c.cap.Events == nil {
		return nil
	}
	return c.cap.Events.WriteJSONL(w)
}

// WriteTraceJSON writes the event log as Chrome trace_event JSON: one
// track per replica plus a cluster track, request lifecycles as
// queue/prefill/decode slices, routing and migrations as flow arrows.
// Open the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (c *ObsCapture) WriteTraceJSON(w io.Writer) error {
	if c == nil || c.cap.Events == nil {
		return nil
	}
	return c.cap.Events.WriteChromeTrace(w)
}

// WriteSeriesCSV writes every telemetry series as long-format CSV
// (series,time_s,value).
func (c *ObsCapture) WriteSeriesCSV(w io.Writer) error {
	if c == nil || c.cap.Series == nil {
		return nil
	}
	return c.cap.Series.WriteCSV(w)
}

// WriteProfileJSON writes the run's self-profile (per-phase wall-clock
// timings) in the BENCH_obs.json shape.
func (c *ObsCapture) WriteProfileJSON(w io.Writer) error {
	if c == nil || c.cap.Profile == nil {
		return nil
	}
	rep := c.cap.Profile.Report(c.scenario, c.cap.Events.Len(), c.wall)
	return rep.WriteJSON(w)
}

// WriteFiles writes every captured layer into dir (created if needed) and
// returns the paths written: events.jsonl, trace.json, series.csv,
// BENCH_obs.json — only the layers that were on.
func (c *ObsCapture) WriteFiles(dir string) ([]string, error) {
	if c == nil {
		return nil, nil
	}
	return c.cap.WriteFiles(dir, c.scenario, c.wall)
}

// AttributionReport is the end-of-run critical-path latency breakdown
// recorded under ObsSpec.Attribution: exact per-phase totals and
// sketch-backed quantiles (≤ 3.1% relative error) cluster-wide, split by
// request class and by replica, plus the slowest spans for per-request
// waterfalls. WriteJSON emits it in the attribution.json shape.
type AttributionReport = attribution.Report

// AttributionSpan is one request's causal span: its lifecycle
// timestamps and the exact phase decomposition, which sums to the
// measured TTFT and E2E latency by construction.
type AttributionSpan = attribution.Span

// Waterfall renders one span's phase breakdown as an aligned text
// waterfall (one bar row per nonzero phase), width columns wide.
func Waterfall(s AttributionSpan, width int) string {
	return attribution.Waterfall(s, width)
}

// Span phase indices into AttributionSpan.Phases, for consumers walking
// spans directly (e.g. picking out a request's crash-recovery retry
// time).
const (
	PhaseGateway   = attribution.PhaseGateway
	PhaseWire      = attribution.PhaseWire
	PhaseQueue     = attribution.PhaseQueue
	PhasePrefill   = attribution.PhasePrefill
	PhaseDecode    = attribution.PhaseDecode
	PhasePreempted = attribution.PhasePreempted
	PhaseRetry     = attribution.PhaseRetry
)

// writeAttributionJSON lands the report as <dir>/attribution.json, the
// Out-directory companion to the capture's own files.
func writeAttributionJSON(dir string, rep *AttributionReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "attribution.json"))
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
