package tokenflow

import (
	"io"
	"time"

	"repro/internal/obs"
)

// ObsSpec turns on the flight recorder for a run. The zero value records
// nothing and is guaranteed free: an uninstrumented run produces results
// byte-identical to a build without the observability layer.
type ObsSpec struct {
	// Events records the request lifecycle on the event bus: arrival,
	// gateway buffering/shedding, route decision (with the policy's
	// score), queueing, admission, preemption/resume, first token, decode
	// progress, completion, KV pin/evict/mirror/reload, migration
	// accept/decline, pre-warm, drain hand-off, scale decisions, and
	// fabric transfers.
	Events bool

	// Series records named per-tick telemetry series: per-replica queue
	// depth, KV utilization and host-mirror bytes, per-link fabric
	// busy/backlog, active replica count, gateway depth, and the
	// autoscaler's full signal vector. Series ride the cluster's sampling
	// loop, so they need SampleEverySeconds set and a RunCluster run;
	// single-device Run records no series.
	Series bool

	// Profile times the simulator's own phases (control tick, engine
	// step, fabric settle) with the wall clock, for the BENCH_obs.json
	// self-profile. Wall time never feeds back into virtual-time results.
	Profile bool

	// SampleEvery thins series recording to every Nth sampling tick
	// (0 or 1 = every tick).
	SampleEvery int

	// Out, when non-empty, writes every captured layer into this
	// directory after the run: events.jsonl, trace.json (Chrome
	// trace_event JSON — open in Perfetto), series.csv, BENCH_obs.json.
	Out string
}

// Enabled reports whether any layer is on.
func (s ObsSpec) Enabled() bool { return s.Events || s.Series || s.Profile }

// options maps the public spec onto the internal capture options.
func (s ObsSpec) options() obs.Options {
	return obs.Options{
		Events:      s.Events,
		Series:      s.Series,
		Profile:     s.Profile,
		SampleEvery: s.SampleEvery,
	}
}

// ObsCapture holds the observability products of one instrumented run.
// Results carry a nil *ObsCapture when the run was not instrumented; all
// methods are nil-safe.
type ObsCapture struct {
	cap      *obs.Capture
	scenario string
	wall     time.Duration
}

// newObsCapture wraps an internal capture; nil in, nil out.
func newObsCapture(c *obs.Capture, scenario string, wall time.Duration) *ObsCapture {
	if c == nil {
		return nil
	}
	return &ObsCapture{cap: c, scenario: scenario, wall: wall}
}

// EventCount reports the number of recorded lifecycle events.
func (c *ObsCapture) EventCount() int {
	if c == nil {
		return 0
	}
	return c.cap.Events.Len()
}

// WriteEventsJSONL writes the event log as one JSON object per line in
// deterministic (time, replica, sequence) order — byte-stable across runs
// of the same scenario.
func (c *ObsCapture) WriteEventsJSONL(w io.Writer) error {
	if c == nil || c.cap.Events == nil {
		return nil
	}
	return c.cap.Events.WriteJSONL(w)
}

// WriteTraceJSON writes the event log as Chrome trace_event JSON: one
// track per replica plus a cluster track, request lifecycles as
// queue/prefill/decode slices, routing and migrations as flow arrows.
// Open the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (c *ObsCapture) WriteTraceJSON(w io.Writer) error {
	if c == nil || c.cap.Events == nil {
		return nil
	}
	return c.cap.Events.WriteChromeTrace(w)
}

// WriteSeriesCSV writes every telemetry series as long-format CSV
// (series,time_s,value).
func (c *ObsCapture) WriteSeriesCSV(w io.Writer) error {
	if c == nil || c.cap.Series == nil {
		return nil
	}
	return c.cap.Series.WriteCSV(w)
}

// WriteProfileJSON writes the run's self-profile (per-phase wall-clock
// timings) in the BENCH_obs.json shape.
func (c *ObsCapture) WriteProfileJSON(w io.Writer) error {
	if c == nil || c.cap.Profile == nil {
		return nil
	}
	rep := c.cap.Profile.Report(c.scenario, c.cap.Events.Len(), c.wall)
	return rep.WriteJSON(w)
}

// WriteFiles writes every captured layer into dir (created if needed) and
// returns the paths written: events.jsonl, trace.json, series.csv,
// BENCH_obs.json — only the layers that were on.
func (c *ObsCapture) WriteFiles(dir string) ([]string, error) {
	if c == nil {
		return nil, nil
	}
	return c.cap.WriteFiles(dir, c.scenario, c.wall)
}
