package tokenflow

import (
	"testing"
	"time"
)

func TestRunDefaultsTokenFlowOnH200(t *testing.T) {
	w := BurstWorkload(8, 256, 256, 20, 1)
	res, err := Run(Config{}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.System != SystemTokenFlow {
		t.Errorf("system = %v", res.System)
	}
	if res.Finished != 8 || res.Total != 8 {
		t.Errorf("finished %d/%d", res.Finished, res.Total)
	}
	if res.Throughput <= 0 || res.EffectiveThroughput <= 0 {
		t.Error("throughputs should be positive")
	}
	if res.EffectiveThroughput > res.Throughput+1e-9 {
		t.Error("effective cannot exceed raw throughput")
	}
}

func TestRunAllSystems(t *testing.T) {
	w := BurstWorkload(6, 256, 256, 20, 2)
	for _, sys := range Systems() {
		res, err := Run(Config{System: sys, GPU: "H200", Model: "Llama3-8B"}, w)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Finished != 6 {
			t.Errorf("%s: finished %d", sys, res.Finished)
		}
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	w := BurstWorkload(1, 64, 64, 20, 1)
	if _, err := Run(Config{GPU: "H9000"}, w); err == nil {
		t.Error("unknown GPU should error")
	}
	if _, err := Run(Config{Model: "GPT-7"}, w); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := Run(Config{System: "fifo"}, w); err == nil {
		t.Error("unknown system should error")
	}
}

func TestWorkloadGenerators(t *testing.T) {
	b := BurstWorkload(10, 512, 1024, 20, 3)
	if len(b) != 10 {
		t.Errorf("burst len = %d", len(b))
	}
	for _, r := range b {
		if r.ArrivalSeconds != 0 {
			t.Error("burst requests arrive at t=0")
		}
	}
	p := PoissonWorkload(5, 20, 256, 256, 20, 3)
	if len(p) < 50 {
		t.Errorf("poisson len = %d, want ~100", len(p))
	}
	g := BurstGPTWorkload(60, 2, 20, 3)
	if len(g) < 50 {
		t.Errorf("burstgpt len = %d", len(g))
	}
}

func TestTokenFlowOptionsApply(t *testing.T) {
	w := BurstWorkload(6, 256, 512, 15, 4)
	base, err := Run(Config{System: SystemTokenFlow}, w)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(Config{System: SystemTokenFlow, TokenFlow: TokenFlowOptions{
		RescheduleIntervalSeconds: 0.5,
		BufferConservativeness:    20,
	}}, w)
	if err != nil {
		t.Fatal(err)
	}
	if base.Finished != tuned.Finished {
		t.Error("both configs should complete")
	}
}

func TestKVAblationOptions(t *testing.T) {
	w := BurstWorkload(6, 256, 512, 15, 5)
	res, err := Run(Config{System: SystemTokenFlow, TokenFlow: TokenFlowOptions{
		KV: &KVOptions{DisableOffload: true},
	}}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 6 {
		t.Errorf("finished = %d", res.Finished)
	}
}

func TestSamplesExposed(t *testing.T) {
	w := BurstWorkload(8, 256, 512, 15, 6)
	res, err := Run(Config{SampleEverySeconds: 0.5}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Error("sampling enabled but no samples")
	}
}

func TestPerRequestTimelines(t *testing.T) {
	w := Workload{{ArrivalSeconds: 0, PromptTokens: 128, OutputTokens: 64, RatePerSec: 20}}
	res, err := Run(Config{}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 1 {
		t.Fatal("one request expected")
	}
	r := res.Requests[0]
	if len(r.TokenTimesSeconds) != 64 {
		t.Errorf("token times = %d", len(r.TokenTimesSeconds))
	}
	if r.TTFT <= 0 || r.TTFT > time.Second {
		t.Errorf("TTFT = %v", r.TTFT)
	}
}

func TestMaxSimTime(t *testing.T) {
	w := BurstWorkload(40, 512, 2048, 5, 7)
	res, err := Run(Config{GPU: "RTX-4090", MaxSimTimeSeconds: 2}, w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("2-second cap should time out this workload")
	}
}
