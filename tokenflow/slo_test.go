package tokenflow_test

// Acceptance tests for the second-generation autoscaling policies and the
// scale-to-zero gateway, at the public API:
//
//   - slo-target holds the observed P99 TTFT inside its target band (in
//     the converged phase) where a fixed small pool misses it by orders
//     of magnitude;
//   - predictive beats the reactive queue-pressure policy on
//     warm-up-stalled arrivals under a ramp workload — capacity lands
//     before the demand instead of after the queue;
//   - a scale-to-zero pool buffers cold arrivals in the gateway, charges
//     the wait inside TTFT, and returns to zero replicas when idle.

import (
	"sort"
	"testing"
	"time"

	"repro/tokenflow"
)

// phaseP99 computes the P99 TTFT over requests arriving at or after the
// cutoff — the converged-phase view that separates steady-state control
// quality from the cold-start transient every min=1 pool pays.
func phaseP99(res *tokenflow.ClusterResult, afterSec float64) time.Duration {
	var ttfts []time.Duration
	for _, r := range res.Cluster.Requests {
		if len(r.TokenTimesSeconds) == 0 {
			continue
		}
		if arrival := r.TokenTimesSeconds[0] - r.TTFT.Seconds(); arrival >= afterSec {
			ttfts = append(ttfts, r.TTFT)
		}
	}
	if len(ttfts) == 0 {
		return 0
	}
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	return ttfts[(len(ttfts)*99+99)/100-1]
}

// TestSLOTargetHoldsBand: on a steady session load that buries one
// replica, the slo-target controller keeps converged-phase P99 TTFT inside
// its target band while the fixed small pool misses the target by orders
// of magnitude.
func TestSLOTargetHoldsBand(t *testing.T) {
	w := tokenflow.SessionWorkload(200, 240, 20, 7)
	base := tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"}
	target := 2500 * time.Millisecond

	fixedSmall := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: 1, Router: tokenflow.RouterSessionAffinity,
	}, w)
	slo := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: 4, Router: tokenflow.RouterSessionAffinity,
		Autoscale: &tokenflow.AutoscaleSpec{
			Policy:      tokenflow.AutoscaleSLOTarget,
			MinReplicas: 1, MaxReplicas: 4,
			WarmupSeconds: 5,
			TargetP99TTFT: target,
		},
	}, w)

	const converged = 120 // seconds: past the min=1 cold-start transient
	smallP99 := phaseP99(fixedSmall, converged)
	sloP99 := phaseP99(slo, converged)
	t.Logf("converged P99: fixed-1 %v, slo-target %v (target %v); global: %v vs %v",
		smallP99, sloP99, target, fixedSmall.Cluster.P99TTFT, slo.Cluster.P99TTFT)

	if slo.ScaleUps == 0 {
		t.Fatal("slo-target never scaled up under overload")
	}
	if sloP99 > target {
		t.Errorf("slo-target converged P99 %v outside target band %v", sloP99, target)
	}
	if smallP99 <= 4*target {
		t.Errorf("fixed-small converged P99 %v does not miss the band (test workload too light)",
			smallP99)
	}
	// The controller earns its keep on the cost axis too: below the
	// always-4 pool a static deployment would need to hold this P99.
	if slo.GPUSeconds >= 4*slo.Cluster.MakespanSec {
		t.Errorf("slo-target GPU-seconds %.0f >= fixed-4 equivalent %.0f",
			slo.GPUSeconds, 4*slo.Cluster.MakespanSec)
	}
}

// TestPredictiveBeatsReactiveOnRamp: under a ramping arrival rate with a
// long warm-up, the predictive policy pre-scales ahead of forecast demand
// and stalls strictly fewer arrivals behind warm-ups than the reactive
// queue-pressure policy, which only reacts once the queue has built.
func TestPredictiveBeatsReactiveOnRamp(t *testing.T) {
	w := tokenflow.SessionRampWorkload(200, 240, 20, 7)
	base := tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"}
	spec := func(p tokenflow.AutoscalePolicy) *tokenflow.AutoscaleSpec {
		return &tokenflow.AutoscaleSpec{
			Policy:      p,
			MinReplicas: 1, MaxReplicas: 4,
			WarmupSeconds: 10,
		}
	}

	reactive := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: 4, Router: tokenflow.RouterSessionAffinity,
		Autoscale: spec(tokenflow.AutoscaleQueuePressure),
	}, w)
	predictive := runCluster(t, tokenflow.ClusterConfig{
		Config: base, Replicas: 4, Router: tokenflow.RouterSessionAffinity,
		Autoscale: spec(tokenflow.AutoscalePredictive),
	}, w)

	t.Logf("reactive:   %d stalls, %d ups, P99 %v", reactive.WarmupStalls,
		reactive.ScaleUps, reactive.Cluster.P99TTFT)
	t.Logf("predictive: %d stalls, %d ups, P99 %v, forecast MAE %.2f req/s over %d",
		predictive.WarmupStalls, predictive.ScaleUps, predictive.Cluster.P99TTFT,
		predictive.ForecastError, predictive.ForecastSamples)

	if reactive.ScaleUps == 0 || predictive.ScaleUps == 0 {
		t.Fatal("ramp never triggered scaling")
	}
	if reactive.WarmupStalls == 0 {
		t.Fatal("reactive policy paid no warm-up stalls: the ramp is too easy to discriminate")
	}
	if predictive.WarmupStalls >= reactive.WarmupStalls {
		t.Errorf("predictive stalled %d arrivals >= reactive's %d: forecast bought nothing",
			predictive.WarmupStalls, reactive.WarmupStalls)
	}
	if predictive.ForecastSamples == 0 {
		t.Error("predictive scored no forecasts")
	}
	if predictive.ForecastError <= 0 {
		t.Error("zero forecast error on a stochastic ramp is accounting, not prescience")
	}
}

// TestScaleToZeroGateway: a burst into a cold scale-to-zero pool buffers
// in the gateway, pays the warm-up inside TTFT, serves completely, and
// the pool walks back to zero replicas when the burst passes.
func TestScaleToZeroGateway(t *testing.T) {
	w := tokenflow.BurstWorkload(8, 256, 64, 20, 5)
	res := runCluster(t, tokenflow.ClusterConfig{
		Config:   tokenflow.Config{GPU: "RTX-4090", Model: "Llama3-8B"},
		Replicas: 2,
		Router:   tokenflow.RouterLeastQueue,
		Autoscale: &tokenflow.AutoscaleSpec{
			Policy:        tokenflow.AutoscaleSLOTarget,
			ScaleToZero:   true,
			WarmupSeconds: 4,
		},
	}, w)

	if res.Cluster.Finished != len(w) {
		t.Fatalf("finished %d/%d", res.Cluster.Finished, len(w))
	}
	if res.GatewayBuffered != int64(len(w)) || res.GatewayShed != 0 {
		t.Errorf("buffered/shed = %d/%d, want %d/0", res.GatewayBuffered, res.GatewayShed, len(w))
	}
	// Every burst request waited out the cold start: the 4s warm-up is
	// inside each TTFT.
	for _, r := range res.Cluster.Requests {
		if r.TTFT < 4*time.Second {
			t.Errorf("request %d TTFT %v under the 4s cold-start warm-up", r.ID, r.TTFT)
		}
	}
	if len(res.GatewayDepthSeries) == 0 {
		t.Error("gateway depth series empty under scale-to-zero")
	}
	// The pool returned to zero replicas after the burst.
	last := res.ReplicaSeries[len(res.ReplicaSeries)-1]
	if last.Active+last.Warming+last.Draining != 0 {
		t.Errorf("pool did not return to zero: final counts %+v", last)
	}
	offs := 0
	for _, ev := range res.ScaleEvents {
		if ev.Kind == "off" {
			offs++
		}
	}
	if offs == 0 {
		t.Error("no replica ever turned off after the burst")
	}
}
