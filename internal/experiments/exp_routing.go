package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cluster"
	"repro/internal/prefixindex"
	"repro/internal/router"
	"repro/internal/simclock"
)

// The routing experiment measures what the event-published prefix index
// costs in routing quality as its view goes stale: indexed session-affinity
// routed on a view lagging by `lag` (publication propagation delay +
// heartbeat period) against the two omniscient references. At zero lag the
// index is a pure restatement of replica state, so indexed affinity equals
// omniscient affinity and beats least-queue by preserving prefix reuse; as
// lag grows the index routes on history — holder entries outlive their
// pins, load digests describe queues long since drained — and past a
// threshold the omniscient least-queue scan wins despite recomputing every
// prefix. The curve locates that crossover: the staleness budget a
// deployment can spend on cheap eventually-consistent routing.

// routingReplicas is the pool size of the curve. Small enough that the
// omniscient references are cheap, loaded enough (with clusterWorkload's
// spikes) that routing quality moves tail latency.
const routingReplicas = 4

// routingLags is the swept staleness axis, in seconds of publication
// propagation delay and heartbeat period (0 = the degenerate synchronous
// index).
var routingLags = []float64{0, 0.1, 0.5, 2, 10}

// RoutingPoint is one staleness datapoint of the curve.
type RoutingPoint struct {
	LagSeconds float64
	Res        *cluster.Result
}

// RoutingCurve is the full routing-quality-vs-staleness sweep plus the
// omniscient references it is judged against.
type RoutingCurve struct {
	// Affinity is omniscient session-affinity: the quality ceiling.
	Affinity *cluster.Result
	// LeastQueue is omniscient least-queue: prefix-blind, but its load view
	// is always current — the reference the indexed curve crosses.
	LeastQueue *cluster.Result
	// Points is indexed session-affinity at each routingLags entry.
	Points []RoutingPoint
}

// routingSpec maps a lag in seconds onto an index spec: events propagate
// with that delay and load signalling switches to heartbeat digests on the
// same stride. Zero is the degenerate synchronous index.
func routingSpec(lag float64) *prefixindex.Spec {
	if lag == 0 {
		return &prefixindex.Spec{}
	}
	return &prefixindex.Spec{
		PropagationDelay: simclock.Duration(lag),
		HeartbeatEvery:   simclock.Duration(lag),
		Seed:             7,
	}
}

// RunRoutingCurve runs the sweep and the references concurrently.
func RunRoutingCurve() (*RoutingCurve, error) {
	dep := dep4090Llama
	w := clusterWorkload()
	run := func(pol router.Policy, spec *prefixindex.Spec) (*cluster.Result, error) {
		cl, err := cluster.New(cluster.Config{
			Replicas:    routingReplicas,
			Policy:      pol,
			PrefixIndex: spec,
		}, buildReplica(dep))
		if err != nil {
			return nil, err
		}
		return cl.Run(w)
	}

	curve := &RoutingCurve{Points: make([]RoutingPoint, len(routingLags))}
	errs := make([]error, len(routingLags)+2)
	var wg sync.WaitGroup
	wg.Add(len(routingLags) + 2)
	go func() {
		defer wg.Done()
		curve.Affinity, errs[0] = run(router.NewSessionAffinity(), nil)
	}()
	go func() {
		defer wg.Done()
		curve.LeastQueue, errs[1] = run(router.NewLeastQueue(), nil)
	}()
	for i, lag := range routingLags {
		i, lag := i, lag
		go func() {
			defer wg.Done()
			res, err := run(router.NewIndexedSessionAffinity(), routingSpec(lag))
			curve.Points[i] = RoutingPoint{LagSeconds: lag, Res: res}
			errs[i+2] = err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return curve, nil
}

// Crossover reports whether the curve shows the expected shape: indexed
// affinity at zero lag at least matching omniscient least-queue on P99
// TTFT, and the most stale point losing to it.
func (c *RoutingCurve) Crossover() (freshWins, staleLoses bool) {
	lq := c.LeastQueue.Report.P99TTFT
	freshWins = c.Points[0].Res.Report.P99TTFT <= lq
	staleLoses = c.Points[len(c.Points)-1].Res.Report.P99TTFT > lq
	return freshWins, staleLoses
}

// routingRow renders one result as a table/CSV row.
func routingRow(name, lag string, res *cluster.Result) []string {
	hits, fallbacks, pending := int64(0), int64(0), int64(0)
	if st := res.PrefixIndex; st != nil {
		hits = st.AffinityHits
		fallbacks = st.AffinityMisses + st.StaleFallbacks +
			st.HeadroomFallbacks + st.OverloadFallbacks
		pending = st.Pending
	}
	return []string{
		name, lag,
		fsec(res.Report.P99TTFT),
		fsec(res.Report.MeanTTFT),
		ftps(res.Report.QoS),
		ftps(res.Report.EffectiveThroughput),
		fint(res.PrefixHits),
		fint(hits),
		fint(fallbacks),
		fint(pending),
	}
}

var routingHeader = []string{"router", "lag(s)", "P99-TTFT", "mean-TTFT", "QoS",
	"eff-thpt(tok/s)", "prefix-hits", "index-hits", "index-fallbacks", "pending-at-end"}

// ExpRouting tabulates the routing-quality-vs-staleness curve and asserts
// its crossover shape.
func ExpRouting() (*Table, error) {
	curve, err := RunRoutingCurve()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "routing",
		Title:  "Gateway routing quality vs index staleness: indexed session-affinity against the omniscient references",
		Header: routingHeader,
	}
	t.Rows = append(t.Rows,
		routingRow(router.NameLeastQueue+" (omniscient)", "-", curve.LeastQueue),
		routingRow(router.NameSessionAffinity+" (omniscient)", "-", curve.Affinity))
	for _, p := range curve.Points {
		t.Rows = append(t.Rows,
			routingRow(router.NameIndexedSessionAffinity, ffloat(p.LagSeconds, 1), p.Res))
	}
	freshWins, staleLoses := curve.Crossover()
	if !freshWins {
		return nil, fmt.Errorf("routing: indexed affinity at zero lag lost to omniscient least-queue on P99 TTFT (%s vs %s)",
			curve.Points[0].Res.Report.P99TTFT, curve.LeastQueue.Report.P99TTFT)
	}
	t.Notes = "Expected shape: at zero lag the indexed run equals omniscient affinity and beats " +
		"least-queue on tail TTFT; past the staleness threshold the current-but-prefix-blind " +
		"least-queue scan wins."
	if !staleLoses {
		t.Notes += " (NOTE: at this scale the most-stale point still beat least-queue.)"
	}
	return t, nil
}

// WriteRoutingCSV writes the curve as CSV — the CI artifact form.
func WriteRoutingCSV(w io.Writer, curve *RoutingCurve) error {
	rows := [][]string{routingHeader}
	rows = append(rows,
		routingRow(router.NameLeastQueue+" (omniscient)", "-1", curve.LeastQueue),
		routingRow(router.NameSessionAffinity+" (omniscient)", "-1", curve.Affinity))
	for _, p := range curve.Points {
		rows = append(rows,
			routingRow(router.NameIndexedSessionAffinity, ffloat(p.LagSeconds, 2), p.Res))
	}
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
