package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/router"
	"repro/internal/trace"
)

// spikeWorkload is clusterWorkload with a variable flash-crowd period:
// shorter spikeEvery packs more concurrent session-opening bursts into the
// same duration — the spike-intensity axis of the autoscaling study.
func spikeWorkload(spikeEverySec float64) trace.Workload {
	return trace.Sessions("autoscale-sessions", trace.SessionConfig{
		Sessions:   scaled(220),
		Duration:   scaledDur(240),
		SpikeEvery: scaledDur(spikeEverySec),
		Rates:      trace.FixedRate(20),
		Seed:       7,
	})
}

// scaledUpHitRate is the prefix hit rate over the replicas that started
// off and were scaled in (replica IDs >= initial) — the post-scale-up
// cache effectiveness pre-warming targets.
func scaledUpHitRate(res *cluster.Result, initial int) float64 {
	var hits, routed int64
	for _, rs := range res.PerReplica[initial:] {
		hits += rs.Result.PrefixHits
		routed += int64(rs.Routed)
	}
	if routed == 0 {
		return 0
	}
	return float64(hits) / float64(routed)
}

// ExpAutoscale studies SLO-driven replica autoscaling: tail TTFT and
// GPU-seconds versus spike intensity × warm-up latency × interconnect
// bandwidth, for a 1..4-replica autoscaled pool with and without KV
// pre-warming, against fixed 1- and 4-replica pools. The sweep's question:
// when does pre-warming stop paying off? (Answer shape: it pays on the
// post-scale-up hit rate whenever the interconnect can ship the pins
// within the warm-up window; at starved bandwidth the transfers trail the
// activation and the benefit shrinks toward zero.)
func ExpAutoscale() (*Table, error) {
	dep := dep4090Llama
	const minReps, maxReps = 1, 4

	type variant struct {
		spikeEvery float64 // seconds between session flash crowds
		warmup     float64 // seconds of scale-up warm-up latency
		icGBps     float64 // interconnect bandwidth
		mode       string  // fixed-1 | fixed-4 | cold | prewarm
	}
	var variants []variant
	for _, spike := range []float64{30, 90} {
		variants = append(variants,
			variant{spike, 0, 0, "fixed-1"},
			variant{spike, 0, 0, "fixed-4"})
		for _, warmup := range []float64{2, 15} {
			for _, bw := range []float64{0.1, 25} {
				variants = append(variants,
					variant{spike, warmup, bw, "cold"},
					variant{spike, warmup, bw, "prewarm"})
			}
		}
	}

	type cell struct {
		v   variant
		res *cluster.Result
		err error
	}
	cells := make([]cell, len(variants))
	for i, v := range variants {
		cells[i] = cell{v: v}
	}
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := cells[i].v
			cfg := cluster.Config{
				Replicas: maxReps,
				Policy:   router.NewSessionAffinity(),
			}
			switch v.mode {
			case "fixed-1":
				cfg.Replicas = minReps
			case "fixed-4":
				// static pool at max size
			default:
				cfg.InterconnectGBps = v.icGBps
				cfg.Autoscale = &cluster.AutoscaleConfig{
					Policy:  autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
					Min:     minReps,
					Max:     maxReps,
					Warmup:  time.Duration(v.warmup * float64(time.Second)),
					Prewarm: v.mode == "prewarm",
				}
			}
			cl, err := cluster.New(cfg, buildReplica(dep))
			if err != nil {
				cells[i].err = err
				return
			}
			cells[i].res, cells[i].err = cl.Run(spikeWorkload(v.spikeEvery))
		}()
	}
	wg.Wait()

	t := &Table{
		ID: "Autoscale",
		Title: "SLO-driven autoscaling: spike intensity × warm-up latency × interconnect " +
			"bandwidth, 1..4 TokenFlow replicas, multi-turn spikes",
		Header: []string{"spike-every", "warmup", "ic-GB/s", "mode", "P99-TTFT", "QoS",
			"GPU-s", "ups", "downs", "stalls", "prewarm-tok", "post-up-hit%"},
	}
	for _, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("autoscale %+v: %w", c.v, c.err)
		}
		warmup, bw, hit := "-", "-", "-"
		if c.v.mode == "cold" || c.v.mode == "prewarm" {
			warmup = ffloat(c.v.warmup, 0) + "s"
			bw = ffloat(c.v.icGBps, 1)
			hit = ffloat(100*scaledUpHitRate(c.res, minReps), 1)
		}
		t.Rows = append(t.Rows, []string{
			ffloat(c.v.spikeEvery, 0) + "s",
			warmup,
			bw,
			c.v.mode,
			fsec(c.res.Report.P99TTFT),
			ftps(c.res.Report.QoS),
			ffloat(c.res.GPUSeconds, 0),
			fint(int64(countKind(c.res, cluster.ScaleWarmup) + countKind(c.res, cluster.ScaleReactivate))),
			fint(int64(countKind(c.res, cluster.ScaleDrain))),
			fint(c.res.WarmupStalls),
			fint(c.res.PrewarmedTokens),
			hit,
		})
	}
	t.Notes = "Expected shape: autoscaled pools sit between fixed-1 (P99) and fixed-4 (GPU-seconds); " +
		"longer warm-up means more stalled arrivals and worse tails; pre-warming lifts the " +
		"post-scale-up hit rate whenever the interconnect outruns the warm-up window."
	return t, nil
}

// countKind tallies scale events of one kind.
func countKind(res *cluster.Result, kind cluster.ScaleKind) int {
	n := 0
	for _, ev := range res.ScaleEvents {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
