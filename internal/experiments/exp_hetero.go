package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/simclock"
)

// poolMix names a heterogeneous replica layout: one gpu.Spec +
// mem-fraction pair per replica.
type poolMix struct {
	name  string
	gpus  []gpu.Spec
	fracs []float64
}

// heteroMixes are the studied pools: a homogeneous small baseline, a
// homogeneous big baseline, and the imbalanced mix where capacity
// weighting and migration earn their keep. The small cards run memory-
// tight (0.75 leaves ~15k KV tokens) so prefix residency is contended.
func heteroMixes() []poolMix {
	return []poolMix{
		{"4x4090", []gpu.Spec{gpu.RTX4090, gpu.RTX4090, gpu.RTX4090, gpu.RTX4090},
			[]float64{0.75, 0.75, 0.75, 0.75}},
		{"2xH200", []gpu.Spec{gpu.H200, gpu.H200}, []float64{0.3, 0.3}},
		{"H200+3x4090", []gpu.Spec{gpu.H200, gpu.RTX4090, gpu.RTX4090, gpu.RTX4090},
			[]float64{0.3, 0.75, 0.75, 0.75}},
	}
}

// buildMix constructs one TokenFlow replica per mix slot on the shared
// cluster clock.
func buildMix(mix poolMix) cluster.BuildEngine {
	return buildMixKV(mix, engine.TokenFlowKVPolicy())
}

// buildMixKV is buildMix with an explicit KV policy (the fabric experiment
// enables the host-tier prefix cache).
func buildMixKV(mix poolMix, kv engine.KVPolicy) cluster.BuildEngine {
	return func(i int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		return engine.New(engine.Config{
			GPU:         mix.gpus[i],
			Model:       model.Llama3_8B,
			MemFraction: mix.fracs[i],
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          kv,
			Clock:       clock,
			Fabric:      ep,
		})
	}
}

// ExpHetero studies heterogeneous pools under the unified residency
// model: QoS and tail TTFT versus pool mix × routing policy, with
// cross-replica KV migration toggled for the affinity policy. Expected
// shape: on the imbalanced mix, capacity weighting beats plain
// least-queue-style balancing, and affinity+migration recovers the
// prefix reuse that affinity alone loses when the small replicas
// overflow — with prefix residency (pinned pages, evictions) now honestly
// charged to every pool.
func ExpHetero() (*Table, error) {
	w := clusterWorkload()

	type variant struct {
		policy  string
		migrate bool
	}
	variants := []variant{
		{router.NameRoundRobin, false},
		{router.NameWeightedCapacity, false},
		{router.NameSessionAffinity, false},
		{router.NameSessionAffinity, true},
	}

	type cell struct {
		mix poolMix
		v   variant
		res *cluster.Result
		err error
	}
	var cells []cell
	for _, mix := range heteroMixes() {
		for _, v := range variants {
			cells = append(cells, cell{mix: mix, v: v})
		}
	}
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pol, err := router.ByName(cells[i].v.policy)
			if err != nil {
				cells[i].err = err
				return
			}
			cl, err := cluster.New(cluster.Config{
				Replicas: len(cells[i].mix.gpus),
				Policy:   pol,
				Migrate:  cells[i].v.migrate,
			}, buildMix(cells[i].mix))
			if err != nil {
				cells[i].err = err
				return
			}
			cells[i].res, cells[i].err = cl.Run(w)
		}()
	}
	wg.Wait()

	t := &Table{
		ID: "Hetero",
		Title: "Heterogeneous pools: routing policy × pool mix × KV migration, " +
			"TokenFlow replicas, multi-turn spikes",
		Header: []string{"pool", "router", "migrate", "QoS", "P99-TTFT", "mean-TTFT",
			"imbalance", "prefix-hits", "pin-evict", "peak-pinned", "migrations"},
	}
	for _, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("hetero %s %s: %w", c.mix.name, c.v.policy, c.err)
		}
		var evict, peak int64
		for _, rs := range c.res.PerReplica {
			evict += rs.Result.KV.PrefixEvictions
			peak += int64(rs.Result.KV.PeakPinnedPages)
		}
		mig := "off"
		if c.v.migrate {
			mig = "on"
		}
		t.Rows = append(t.Rows, []string{
			c.mix.name,
			c.v.policy,
			mig,
			ftps(c.res.Report.QoS),
			fsec(c.res.Report.P99TTFT),
			fsec(c.res.Report.MeanTTFT),
			ffloat(c.res.Imbalance, 2),
			fint(c.res.PrefixHits),
			fint(evict),
			fint(peak),
			fint(c.res.Migrations),
		})
	}
	t.Notes = "Expected shape: on the imbalanced mix, weighted-capacity beats round-robin on tail TTFT; " +
		"session-affinity with migration beats migration-off by shipping pinned prefixes instead of " +
		"recomputing them. Pinned pages > 0 everywhere: prefix residency is charged to the pools."
	return t, nil
}
