package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// chaosCrashAt is the scripted crash instant: two seconds after the
// trace's flash crowd opens, when the victim holds hot pins and a full
// batch of in-flight spike turns.
func chaosCrashAt() simclock.Time { return simclock.FromSeconds(62) }

// chaosWorkload is the long-document regime where losing a replica's
// pins actually hurts: few sessions, each opening with a ~6k-token
// document and growing over 4–10 turns, so by the crash instant every
// hot session carries a prefix that is expensive to recompute. Sizes
// are deliberately fixed (not Scale-adjusted): the cells are calibrated
// so the 4-replica pool has headroom — the post-crash tail then measures
// prefix-recompute damage, not raw capacity loss, which is exactly the
// component pin redundancy can buy back.
func chaosWorkload() trace.Workload {
	return trace.Sessions("chaos-sessions", trace.SessionConfig{
		Sessions:        20,
		Duration:        simclock.FromSeconds(120),
		SpikeEvery:      simclock.FromSeconds(60),
		FirstPromptMean: 6000, FirstPromptStd: 1000,
		MinTurns: 4, MaxTurns: 10,
		Rates: trace.FixedRate(20),
		Seed:  7,
	})
}

// chaosCrashSpec scripts a single mid-spike crash of replica 1.
func chaosCrashSpec(redundancy int) *chaos.Spec {
	return &chaos.Spec{
		Faults: []chaos.Fault{
			{Kind: chaos.Crash, At: chaosCrashAt(), Replica: 1},
		},
		Redundancy: redundancy,
	}
}

// ChaosCells holds the three chaos-study runs.
type ChaosCells struct {
	Baseline  *cluster.Result // no fault injected
	Crash     *cluster.Result // mid-spike crash, no redundancy
	Redundant *cluster.Result // same crash, 2-way pin redundancy
	CrashAt   simclock.Time
}

// PostCrashP99 reports the P99 TTFT over requests arriving at or after
// the crash instant — the recovery window the fault actually damages.
func (c *ChaosCells) PostCrashP99(res *cluster.Result) time.Duration {
	var ttfts []time.Duration
	for _, r := range res.Requests {
		if r.Arrival >= c.CrashAt && r.FirstTokenAt > 0 {
			ttfts = append(ttfts, r.TTFT())
		}
	}
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	return metrics.Percentile(ttfts, 0.99)
}

// RunChaosCells runs the three cells concurrently on identical
// 4-replica session-affinity clusters with the host-tier prefix cache
// enabled (mirrors are host-side, so redundancy needs it).
func RunChaosCells() (*ChaosCells, error) {
	kv := engine.TokenFlowKVPolicy()
	kv.HostCache = true
	w := chaosWorkload()

	specs := []*chaos.Spec{nil, chaosCrashSpec(0), chaosCrashSpec(2)}
	results := make([]*cluster.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := cluster.New(cluster.Config{
				Replicas: 4,
				Policy:   router.NewSessionAffinity(),
				Chaos:    specs[i],
			}, buildReplicaKV(dep4090Llama, kv))
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = cl.Run(w)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos cell %d: %w", i, err)
		}
	}
	return &ChaosCells{
		Baseline:  results[0],
		Crash:     results[1],
		Redundant: results[2],
		CrashAt:   chaosCrashAt(),
	}, nil
}

// WriteChaosCSV emits the chaos cells as CSV — the CI artifact behind
// the "chaos" table.
func WriteChaosCSV(w io.Writer, cells *ChaosCells) error {
	rows := [][]string{{"variant", "post_crash_p99_s", "p99_ttft_s", "mean_ttft_s",
		"retries", "failed", "backfills", "replications", "replicated_gb"}}
	for _, c := range []struct {
		name string
		res  *cluster.Result
	}{
		{"no-fault", cells.Baseline},
		{"crash", cells.Crash},
		{"crash-k2", cells.Redundant},
	} {
		rows = append(rows, []string{
			c.name,
			ffloat(cells.PostCrashP99(c.res).Seconds(), 3),
			ffloat(c.res.Report.P99TTFT.Seconds(), 3),
			ffloat(c.res.Report.MeanTTFT.Seconds(), 3),
			fint(c.res.Retries),
			fint(c.res.RetryFailures),
			fint(c.res.Backfills),
			fint(c.res.Replications),
			ffloat(float64(c.res.ReplicatedBytes)/1e9, 2),
		})
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// ExpChaos studies fault injection and recovery: the P99-TTFT damage of
// a mid-spike replica crash, and how much of it pin redundancy buys
// back. Three cells on the same cluster: fault-free baseline; the
// scripted crash with no redundancy (orphans re-route and recompute
// their session prefixes from scratch); the same crash with 2-way pin
// redundancy, where a background replication loop keeps a host mirror
// of every hot pin on a peer — survivors repin from the mirror instead
// of recomputing, and the prefix-aware retry path steers orphans to the
// mirror holder. The cost shows up as replicate-class wire bytes.
func ExpChaos() (*Table, error) {
	cells, err := RunChaosCells()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "Chaos",
		Title: "Mid-spike replica crash: recovery damage vs. pin-redundancy cost, " +
			"4 replicas, session affinity, long-document sessions, host-tier prefix cache on",
		Header: []string{"variant", "post-crash-P99", "P99-TTFT", "mean-TTFT",
			"retries", "failed", "backfills", "repl+repins", "repl-GB"},
	}
	for _, row := range []struct {
		name string
		res  *cluster.Result
	}{
		{"no-fault", cells.Baseline},
		{"crash", cells.Crash},
		{"crash+K=2", cells.Redundant},
	} {
		t.Rows = append(t.Rows, []string{
			row.name,
			fsec(cells.PostCrashP99(row.res)),
			fsec(row.res.Report.P99TTFT),
			fsec(row.res.Report.MeanTTFT),
			fint(row.res.Retries),
			fint(row.res.RetryFailures),
			fint(row.res.Backfills),
			fint(row.res.Replications),
			ffloat(float64(row.res.ReplicatedBytes)/1e9, 1),
		})
	}
	t.Notes = "Expected shape: the crash drags post-crash P99 TTFT well above baseline — " +
		"orphaned spike turns re-queue on survivors and recompute the victim's long " +
		"prefixes. With K=2 redundancy the survivors repin from host mirrors and retries " +
		"land where the mirror lives, pulling tail damage back toward baseline at the " +
		"price of steady replicate-class wire traffic."
	return t, nil
}
