package experiments

import (
	"fmt"
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// Table 1 of the paper: controlled request distributions. Length codes:
// the first letter is the input size (S=512, L=1024 mean tokens), the
// second the output size (S=1024, L=2048 mean tokens); H200 outputs are
// scaled 2x (§7.3). All lengths are normally distributed with std = mean/4
// and the default consumption rate is 20 tokens/s.
type controlledSetup struct {
	name      string
	dep       Deployment
	burst     int     // burst size b (0 for Poisson setups)
	lambda    float64 // Poisson rate (0 for burst setups)
	inMean    int
	outMean   int
	rate      float64
	durationS float64 // Poisson arrival window
}

func lengthDist(inMean, outMean int) trace.LengthDist {
	return trace.NormalLengths{
		PromptMean: float64(inMean), PromptStd: float64(inMean) / 4,
		OutputMean: float64(outMean), OutputStd: float64(outMean) / 4,
		Min: 16, Max: 8192,
	}
}

// Tab01Setups materializes Table 1 (burst setups (a)/(b) and Poisson
// setups (c)/(d) for both devices).
func Tab01Setups() []controlledSetup {
	return []controlledSetup{
		{name: "H200 (a)", dep: depH200Llama, burst: scaled(400), inMean: 512, outMean: 4096, rate: 20},
		{name: "H200 (b)", dep: depH200Llama, burst: scaled(200), inMean: 1024, outMean: 4096, rate: 20},
		{name: "4090 (a)", dep: dep4090Llama, burst: scaled(60), inMean: 512, outMean: 2048, rate: 20},
		{name: "4090 (b)", dep: dep4090Llama, burst: scaled(80), inMean: 1024, outMean: 2048, rate: 20},
		// Poisson setups: a 20-second arrival window produces the transient
		// overload regime of the paper's Figure 17 (sustained arrivals at
		// these rates would exceed any scheduler's capacity and flatten the
		// comparison into pure queue drain; see EXPERIMENTS.md).
		{name: "H200 (c)", dep: depH200Llama, lambda: 5, inMean: 512, outMean: 2048, rate: 20, durationS: 30},
		{name: "H200 (d)", dep: depH200Llama, lambda: 10, inMean: 512, outMean: 2048, rate: 20, durationS: 20},
		{name: "4090 (c)", dep: dep4090Llama, lambda: 2, inMean: 512, outMean: 1024, rate: 20, durationS: 30},
		{name: "4090 (d)", dep: dep4090Llama, lambda: 4, inMean: 512, outMean: 1024, rate: 20, durationS: 20},
	}
}

// Tab01 renders the experimental configuration table.
func Tab01() *Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "Controlled request distribution setups",
		Header: []string{"setup", "gpu", "model", "arrivals", "in-mean", "out-mean", "rate"},
	}
	for _, s := range Tab01Setups() {
		arr := fmt.Sprintf("burst b=%d", s.burst)
		if s.lambda > 0 {
			arr = fmt.Sprintf("poisson λ=%.0f over %.0fs", s.lambda, s.durationS*Scale)
		}
		t.Rows = append(t.Rows, []string{
			s.name, s.dep.GPU.Name, s.dep.Model.Name, arr,
			fint(int64(s.inMean)), fint(int64(s.outMean)), ftps(s.rate),
		})
	}
	return t
}

// workload builds the setup's trace.
func (s controlledSetup) workload(seed int64) trace.Workload {
	if s.burst > 0 {
		return trace.Burst(s.name, s.burst, 0, lengthDist(s.inMean, s.outMean), trace.FixedRate(s.rate), seed)
	}
	return trace.Poisson(s.name, s.lambda, scaledDur(s.durationS), lengthDist(s.inMean, s.outMean), trace.FixedRate(s.rate), seed)
}

// runControlled runs all four systems on a set of setups and produces a
// Figure 16/17-style table.
func runControlled(id, title string, setups []controlledSetup) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Header: append([]string{"setup"}, metricsHeader...)}
	for _, s := range setups {
		w := s.workload(1234)
		results, err := runAll(s.dep, systems(), w, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		for _, spec := range systems() {
			r := results[spec.Name]
			t.Rows = append(t.Rows, append([]string{s.name}, metricsRow(spec.Name, r)...))
		}
	}
	t.Notes = "Paper shape: TokenFlow highest effective throughput, lowest TTFT; Andes trades raw throughput; SGLang suffers P99 TTFT under burst."
	return t, nil
}

// Fig16 reproduces Figure 16: performance metrics during burst workloads,
// Table 1 setups (a)/(b) on H200 and RTX 4090, four systems by four
// metrics.
func Fig16() (*Table, error) {
	return runControlled("Figure 16", "Burst workloads", Tab01Setups()[:4])
}

// Fig17 reproduces Figure 17: performance metrics during Poisson
// workloads, Table 1 setups (c)/(d).
func Fig17() (*Table, error) {
	return runControlled("Figure 17", "Poisson workloads", Tab01Setups()[4:])
}

// Fig20 reproduces Figure 20: effective throughput across required
// generation speeds (20, 25, 30 tokens/s), SGLang vs TokenFlow, with the
// improvement percentage the paper annotates (+53.7%, +48.7%, +52.9%).
func Fig20() (*Table, error) {
	t := &Table{
		ID:     "Figure 20",
		Title:  "Effective throughput across generation speeds",
		Header: []string{"speed(tok/s)", "sglang", "tokenflow", "improvement"},
	}
	for _, rate := range []float64{20, 25, 30} {
		w := trace.Burst("speed", scaled(300), 0, lengthDist(512, 4096), trace.FixedRate(rate), 99)
		results, err := runAll(depH200Llama, []SystemSpec{systems()[1], systems()[3]}, w, 0)
		if err != nil {
			return nil, err
		}
		sg := results["sglang"].Report.EffectiveThroughput
		tf := results["tokenflow"].Report.EffectiveThroughput
		t.Rows = append(t.Rows, []string{
			ftps(rate), ftps(sg), ftps(tf), fpct((tf - sg) / sg * 100),
		})
	}
	t.Notes = "Paper shape: TokenFlow ~+50% effective throughput at every speed."
	return t, nil
}

// Fig21 reproduces Figure 21: performance on the Huawei Ascend 910B under
// a bursty workload.
func Fig21() (*Table, error) {
	w := trace.Burst("ascend", scaled(500), 0, lengthDist(512, 2048), trace.FixedRate(20), 21)
	results, err := runAll(depAscendLlama, systems(), w, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "Figure 21", Title: "Huawei Ascend 910B, burst workload",
		Header: metricsHeader}
	for _, spec := range systems() {
		t.Rows = append(t.Rows, metricsRow(spec.Name, results[spec.Name]))
	}
	t.Notes = "Paper shape: the design advantage carries to non-NVIDIA accelerators."
	return t, nil
}

// burstGPTTrace builds the BurstGPT-like arrival trace used by the
// end-to-end experiments.
func burstGPTTrace(name string, durS, baseRate float64, spikeSize int, rate float64, seed int64) trace.Workload {
	return trace.BurstGPT(name, trace.BurstGPTConfig{
		Duration:   scaledDur(durS),
		BaseRate:   baseRate,
		GammaShape: 0.35,
		SpikeEvery: scaledDur(durS / 4),
		SpikeSize:  scaled(spikeSize),
		Lengths:    trace.ShareGPTLengths(),
		Rates:      trace.FixedRate(rate),
		Seed:       seed,
	})
}

// industrialTrace builds the production-trace-like workload (Figure 11
// distribution).
func industrialTrace(name string, durS, peakRate, rate float64, seed int64) trace.Workload {
	return trace.Industrial(name, scaledDur(durS), peakRate, trace.FixedRate(rate), seed)
}

var _ = time.Second
var _ = simclock.Zero
