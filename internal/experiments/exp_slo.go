package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// sloWorkload builds the demand shapes of the SLO study: "ramp" grows the
// session-start density linearly over the window (a forecastable trend),
// "spike" packs half the sessions into periodic flash crowds (level
// shifts no forecast sees coming).
func sloWorkload(shape string) trace.Workload {
	cfg := trace.SessionConfig{
		Sessions: scaled(200),
		Duration: scaledDur(240),
		Rates:    trace.FixedRate(20),
		Seed:     7,
	}
	switch shape {
	case "ramp":
		cfg.RampUp = true
	case "spike":
		cfg.SpikeEvery = scaledDur(60)
	}
	return trace.Sessions("slo-"+shape, cfg)
}

// convergedP99 is the P99 TTFT over requests arriving in the second half
// of the window — steady-state control quality, with the min=1 cold-start
// transient excluded.
func convergedP99(res *cluster.Result, after simclock.Time) time.Duration {
	var ttfts []time.Duration
	for _, r := range res.Requests {
		if r.Generated > 0 && r.Arrival >= after {
			ttfts = append(ttfts, r.TTFT())
		}
	}
	if len(ttfts) == 0 {
		return 0
	}
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	return metrics.Percentile(ttfts, 0.99)
}

// ExpSLO studies the second policy generation: reactive queue-pressure
// versus predictive (Holt arrival-rate forecast) versus slo-target (PID on
// windowed P99) across demand shape × P99 target, against fixed pools.
// The questions: does forecasting buy fewer warm-up-stalled arrivals on a
// ramp than reacting to the queue, does it still on unforecastable
// spikes, and does the latency controller hold its target band at less
// GPU cost than the fixed large pool?
func ExpSLO() (*Table, error) {
	dep := dep4090Llama
	const minReps, maxReps = 1, 4
	warmup := 10 * time.Second

	type variant struct {
		shape  string  // ramp | spike
		mode   string  // fixed-1 | fixed-4 | reactive | predictive | slo
		target float64 // slo-target P99 goal in seconds (slo mode only)
	}
	var variants []variant
	for _, shape := range []string{"ramp", "spike"} {
		variants = append(variants,
			variant{shape, "fixed-1", 0},
			variant{shape, "fixed-4", 0},
			variant{shape, "reactive", 0},
			variant{shape, "predictive", 0},
			variant{shape, "slo", 2.5},
			variant{shape, "slo", 5})
	}

	type cell struct {
		v   variant
		res *cluster.Result
		err error
	}
	cells := make([]cell, len(variants))
	for i, v := range variants {
		cells[i] = cell{v: v}
	}
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := cells[i].v
			cfg := cluster.Config{
				Replicas: maxReps,
				Policy:   router.NewSessionAffinity(),
			}
			switch v.mode {
			case "fixed-1":
				cfg.Replicas = minReps
			case "fixed-4":
				// static pool at max size
			default:
				var pol autoscale.Policy
				switch v.mode {
				case "reactive":
					pol = autoscale.NewQueuePressure(autoscale.QueuePressureConfig{})
				case "predictive":
					pol = autoscale.NewPredictive(autoscale.PredictiveConfig{})
				case "slo":
					pol = autoscale.NewSLOTarget(autoscale.SLOTargetConfig{
						TargetP99: time.Duration(v.target * float64(time.Second)),
					})
				}
				cfg.Autoscale = &cluster.AutoscaleConfig{
					Policy: pol,
					Min:    minReps, Max: maxReps,
					Warmup:  warmup,
					Prewarm: true,
				}
			}
			cl, err := cluster.New(cfg, buildReplica(dep))
			if err != nil {
				cells[i].err = err
				return
			}
			cells[i].res, cells[i].err = cl.Run(sloWorkload(v.shape))
		}()
	}
	wg.Wait()

	t := &Table{
		ID: "SLO",
		Title: "Predictive and SLO-target autoscaling: demand shape × policy × P99 target, " +
			"1..4 TokenFlow replicas, 10s warm-up",
		Header: []string{"shape", "mode", "target", "P99-TTFT", "conv-P99", "GPU-s",
			"ups", "stalls", "fc-MAE(req/s)"},
	}
	half := scaledDur(120)
	for _, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("slo %+v: %w", c.v, c.err)
		}
		target, mae := "-", "-"
		if c.v.mode == "slo" {
			target = ffloat(c.v.target, 1) + "s"
		}
		if c.v.mode == "predictive" {
			mae = ffloat(c.res.ForecastError, 2)
		}
		t.Rows = append(t.Rows, []string{
			c.v.shape,
			c.v.mode,
			target,
			fsec(c.res.Report.P99TTFT),
			fsec(convergedP99(c.res, half)),
			ffloat(c.res.GPUSeconds, 0),
			fint(int64(countKind(c.res, cluster.ScaleWarmup) + countKind(c.res, cluster.ScaleReactivate))),
			fint(c.res.WarmupStalls),
			mae,
		})
	}
	t.Notes = "Expected shape: on the ramp, predictive stalls fewer arrivals than reactive " +
		"(capacity lands ahead of the trend); on spikes the forecast has nothing to see and " +
		"the gap closes. slo-target holds its converged P99 inside the target band where the " +
		"demand stabilizes (spike background) at less GPU cost than fixed-4; on the " +
		"still-growing ramp it trails the cliff, and a looser target buys GPU-seconds at the " +
		"price of deeper excursions."
	return t, nil
}
