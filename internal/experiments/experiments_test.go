package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact (§7) must be registered.
	want := []string{
		"fig01", "fig02", "fig06", "fig08", "fig09", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "tab01", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "tab02",
		"overhead", "cluster", "hetero", "autoscale", "fabric", "slo",
		"routing", "scale", "chaos",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown ID should not resolve")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "note",
	}
	out := tbl.Format()
	for _, want := range []string{"== X: demo ==", "333", "-- note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestScaledFloors(t *testing.T) {
	old := Scale
	defer func() { Scale = old }()
	Scale = 0.001
	if scaled(10) != 1 {
		t.Error("scaled should floor at 1")
	}
	Scale = 2
	if scaled(10) != 20 {
		t.Error("scaled should multiply")
	}
}

// The fast experiments run end-to-end in tests; the heavy ones are covered
// by the root bench harness.
func TestFastExperiments(t *testing.T) {
	old := Scale
	Scale = 0.05
	defer func() { Scale = old }()
	for _, id := range []string{"fig01", "fig06", "fig08", "fig10", "fig11", "tab01"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestFig06ShowsPreemption(t *testing.T) {
	tbl, err := Fig06()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Notes, "preemption") {
		t.Errorf("notes = %q", tbl.Notes)
	}
	// The toy must exhibit at least one preemption cycle.
	if strings.Contains(tbl.Notes, "0 preemption(s)") {
		t.Error("toy example should preempt at least once")
	}
}

func TestFig08Ordering(t *testing.T) {
	tbl, err := Fig08()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: write-back, write-through, rearranged — latency must strictly
	// decrease down the table.
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(s string) float64 {
		v, err := parseMs(s)
		if err != nil {
			t.Fatalf("bad latency cell %q", s)
		}
		return v
	}
	wb := parse(tbl.Rows[0][1])
	wt := parse(tbl.Rows[1][1])
	re := parse(tbl.Rows[2][1])
	if !(re < wt && wt < wb) {
		t.Errorf("latencies should strictly improve: %v > %v > %v", wb, wt, re)
	}
}

// parseMs parses "12.34ms" into millis.
func parseMs(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
}

// TestChaosRedundancyRecovery pins the chaos experiment's headline
// claim: a mid-spike crash damages post-crash P99 TTFT, and 2-way pin
// redundancy measurably reduces that damage — the survivors repin lost
// prefixes from host mirrors instead of recomputing them. The cells are
// fixed-size (see chaosWorkload), so the regime holds regardless of
// TOKENFLOW_SCALE.
func TestChaosRedundancyRecovery(t *testing.T) {
	cells, err := RunChaosCells()
	if err != nil {
		t.Fatal(err)
	}
	base := cells.PostCrashP99(cells.Baseline)
	crash := cells.PostCrashP99(cells.Crash)
	red := cells.PostCrashP99(cells.Redundant)
	if crash <= base {
		t.Fatalf("crash did not damage post-crash P99: crash %v <= baseline %v", crash, base)
	}
	crashDamage := crash - base
	redDamage := red - base
	if redDamage >= crashDamage*3/4 {
		t.Errorf("K=2 redundancy should buy back at least a quarter of the tail damage: "+
			"baseline %v, crash %v (damage %v), K=2 %v (damage %v)",
			base, crash, crashDamage, red, redDamage)
	}
	// The machinery the headline rests on must actually have run.
	if cells.Crash.Crashes != 1 || cells.Redundant.Crashes != 1 {
		t.Errorf("crashes = %d / %d, want 1 each", cells.Crash.Crashes, cells.Redundant.Crashes)
	}
	if cells.Crash.Retries == 0 || cells.Redundant.Retries == 0 {
		t.Errorf("no retries recorded: %d / %d", cells.Crash.Retries, cells.Redundant.Retries)
	}
	if cells.Redundant.Replications == 0 || cells.Redundant.ReplicatedBytes == 0 {
		t.Errorf("redundant cell moved no mirror bytes: %d transfers, %d bytes",
			cells.Redundant.Replications, cells.Redundant.ReplicatedBytes)
	}
	if cells.Crash.RetryFailures != 0 || cells.Redundant.RetryFailures != 0 {
		t.Errorf("unexpected permanent failures: %d / %d",
			cells.Crash.RetryFailures, cells.Redundant.RetryFailures)
	}
	if cells.Baseline.Crashes != 0 || cells.Baseline.Retries != 0 || cells.Baseline.Replications != 0 {
		t.Errorf("baseline cell saw chaos traffic: %+v", cells.Baseline)
	}
}

// TestRoutingCrossover pins the staleness curve's shape at paper scale: the
// zero-lag indexed run must reproduce omniscient session-affinity exactly
// (same Report, request for request) and beat omniscient least-queue on P99
// TTFT; the most stale point must lose to least-queue — the crossover the
// routing experiment exists to locate.
func TestRoutingCrossover(t *testing.T) {
	curve, err := RunRoutingCurve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(curve.Points[0].Res.Report, curve.Affinity.Report) {
		t.Errorf("zero-lag indexed report diverged from omniscient affinity:\n%+v\n%+v",
			curve.Points[0].Res.Report, curve.Affinity.Report)
	}
	freshWins, staleLoses := curve.Crossover()
	if !freshWins {
		t.Errorf("fresh index lost to omniscient least-queue on P99 TTFT: %s vs %s",
			curve.Points[0].Res.Report.P99TTFT, curve.LeastQueue.Report.P99TTFT)
	}
	if !staleLoses {
		t.Errorf("stalest index still beat omniscient least-queue on P99 TTFT: %s vs %s",
			curve.Points[len(curve.Points)-1].Res.Report.P99TTFT, curve.LeastQueue.Report.P99TTFT)
	}
}
