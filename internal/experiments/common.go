// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate. Each Fig*/Tab* function runs
// the workloads and returns a Table of the same rows/series the paper
// plots; cmd/tokenflow-bench prints them all, and the root bench_test.go
// wraps each in a testing.B benchmark.
//
// Experiment sizes scale with the TOKENFLOW_SCALE environment variable
// (default 1.0 = paper scale); EXPERIMENTS.md records a full-scale run.
package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Scale stretches or shrinks experiment sizes (burst counts, trace
// durations). Initialized from TOKENFLOW_SCALE.
var Scale = scaleFromEnv()

func scaleFromEnv() float64 {
	if v := os.Getenv("TOKENFLOW_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1.0
}

// scaled applies Scale to a count with a floor of 1.
func scaled(n int) int {
	v := int(float64(n) * Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// scaledDur applies Scale to a duration in seconds.
func scaledDur(sec float64) simclock.Time {
	return simclock.FromSeconds(sec * Scale)
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// Deployment is a (device, model, memory) triple. MaxBatch optionally
// caps decode concurrency (used by the Figure 6 toy).
type Deployment struct {
	GPU         gpu.Spec
	Model       model.Spec
	MemFraction float64
	MaxBatch    int
}

// Paper deployments (§7.1.1). H200 controlled experiments start with
// mem-frac 0.3 (§7.3); the smaller cards use SGLang's 0.9 default.
var (
	depH200Llama   = Deployment{GPU: gpu.H200, Model: model.Llama3_8B, MemFraction: 0.3}
	depH200Qwen32  = Deployment{GPU: gpu.H200, Model: model.Qwen25_32B, MemFraction: 0.9}
	dep4090Llama   = Deployment{GPU: gpu.RTX4090, Model: model.Llama3_8B, MemFraction: 0.9}
	depA6000Qwen   = Deployment{GPU: gpu.A6000, Model: model.Qwen25_7B, MemFraction: 0.9}
	depAscendLlama = Deployment{GPU: gpu.Ascend910B, Model: model.Llama3_8B, MemFraction: 0.9}
)

// SystemSpec names a system and constructs its scheduler + KV policy.
type SystemSpec struct {
	Name string
	Make func() (sched.Scheduler, engine.KVPolicy)
}

// Standard system lineup of the evaluation.
func systems() []SystemSpec {
	return []SystemSpec{
		{"sglang-chunked", func() (sched.Scheduler, engine.KVPolicy) {
			return sched.NewSGLangChunked(0), engine.BaselineKVPolicy()
		}},
		{"sglang", func() (sched.Scheduler, engine.KVPolicy) {
			return sched.NewSGLang(), engine.BaselineKVPolicy()
		}},
		{"andes", func() (sched.Scheduler, engine.KVPolicy) {
			return sched.NewAndes(), engine.BaselineKVPolicy()
		}},
		{"tokenflow", func() (sched.Scheduler, engine.KVPolicy) {
			return core.MustNew(core.DefaultConfig()), engine.TokenFlowKVPolicy()
		}},
	}
}

// tokenFlowOnly is the lineup for sensitivity studies.
func tokenFlowWith(cfg core.Config) SystemSpec {
	return SystemSpec{"tokenflow", func() (sched.Scheduler, engine.KVPolicy) {
		return core.MustNew(cfg), engine.TokenFlowKVPolicy()
	}}
}

// runOne simulates one system on one workload.
func runOne(dep Deployment, spec SystemSpec, w trace.Workload, sampleEvery time.Duration) (*engine.Result, error) {
	s, kv := spec.Make()
	e, err := engine.New(engine.Config{
		GPU:         dep.GPU,
		Model:       dep.Model,
		MemFraction: dep.MemFraction,
		MaxBatch:    dep.MaxBatch,
		Scheduler:   s,
		KV:          kv,
		SampleEvery: sampleEvery,
	})
	if err != nil {
		return nil, err
	}
	return e.Run(w)
}

// runAll simulates every system on the workload concurrently (each run is
// an independent single-threaded simulation).
func runAll(dep Deployment, specs []SystemSpec, w trace.Workload, sampleEvery time.Duration) (map[string]*engine.Result, error) {
	type out struct {
		name string
		res  *engine.Result
		err  error
	}
	ch := make(chan out, len(specs))
	var wg sync.WaitGroup
	for _, spec := range specs {
		spec := spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := runOne(dep, spec, w, sampleEvery)
			ch <- out{spec.Name, res, err}
		}()
	}
	wg.Wait()
	close(ch)
	results := make(map[string]*engine.Result, len(specs))
	for o := range ch {
		if o.err != nil {
			return nil, fmt.Errorf("%s: %w", o.name, o.err)
		}
		results[o.name] = o.res
	}
	return results, nil
}

// Formatting helpers.

func fsec(d time.Duration) string    { return fmt.Sprintf("%.2fs", d.Seconds()) }
func ftps(v float64) string          { return fmt.Sprintf("%.1f", v) }
func fpct(v float64) string          { return fmt.Sprintf("%+.1f%%", v) }
func fint(v int64) string            { return fmt.Sprintf("%d", v) }
func ffloat(v float64, p int) string { return strconv.FormatFloat(v, 'f', p, 64) }

// metricsRow renders the standard four-metric row for a system result.
func metricsRow(name string, r *engine.Result) []string {
	return []string{
		name,
		ftps(r.Report.EffectiveThroughput),
		ftps(r.Report.Throughput),
		fsec(r.Report.MeanTTFT),
		fsec(r.Report.P99TTFT),
	}
}

var metricsHeader = []string{"system", "eff-thpt(tok/s)", "thpt(tok/s)", "mean-TTFT", "P99-TTFT"}
