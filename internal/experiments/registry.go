package experiments

// Experiment pairs an artifact ID with its generator.
type Experiment struct {
	ID  string
	Run func() (*Table, error)
}

// All lists every reproduced table and figure in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig01", Fig01},
		{"fig02", Fig02},
		{"fig06", Fig06},
		{"fig08", Fig08},
		{"fig09", Fig09},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"tab01", func() (*Table, error) { return Tab01(), nil }},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"fig23", Fig23},
		{"tab02", Tab02},
		{"overhead", Overhead},
		{"cluster", ExpCluster},
		{"hetero", ExpHetero},
		{"autoscale", ExpAutoscale},
		{"fabric", ExpFabric},
		{"slo", ExpSLO},
		{"routing", ExpRouting},
		{"scale", ExpScale},
		{"chaos", ExpChaos},
	}
}

// ByID finds an experiment by its ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
