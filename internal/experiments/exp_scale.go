package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/prefixindex"
	"repro/internal/router"
	"repro/internal/trace"
)

// The scale experiment proves the simulator's envelope rather than a paper
// figure: a 500-replica cluster serving ~1M session-turn requests, run
// through the sharded parallel executor. It is the reference scenario
// behind BENCH_core.json — CI re-runs it and gates the committed baseline
// at 2x, the same contract BENCH_obs.json holds for the flight recorder.

// scaleShards is the fixed shard count of the reference run. The scenario
// is static + round-robin, so it takes the barrier-free fast path; results
// are identical at any shard count (the determinism suite proves it) and
// this only sets the parallelism of the reference measurement.
const scaleShards = 8

// scaleWorkload generates the ~1M-request trace: scaled(182000) chat
// sessions (~5.5 turns each at the default 3..8 turn draw) over a
// 10-minute arrival window, with deliberately light token shapes — the
// experiment stresses event throughput and the per-request hot path, not
// model FLOPs.
func scaleWorkload() trace.Workload {
	return trace.Sessions("scale-sessions", trace.SessionConfig{
		Sessions:        scaled(182000),
		Duration:        scaledDur(600),
		FirstPromptMean: 128, FirstPromptStd: 32,
		FollowupMean: 32, FollowupStd: 8,
		OutputMean: 32, OutputStd: 8,
		MinLen: 16, MaxLen: 512,
		Rates: trace.FixedRate(0), // instant consumers: no buffer stalls
		Seed:  7,
	})
}

// ScaleRun summarizes one run of the scale scenario, for the experiment
// table and the BENCH_core gate.
type ScaleRun struct {
	Replicas     int
	Shards       int
	Requests     int           // requests that finished generation
	OutputTokens int64         // output tokens generated
	Events       uint64        // simulator events fired across all clocks
	Makespan     time.Duration // simulated time to the last token
	Wall         time.Duration // real time the simulation took
}

// RunScale executes the scale scenario — scaled(500) round-robin TokenFlow
// replicas serving scaleWorkload — partitioned across the given number of
// shard goroutines (0 = single-threaded).
func RunScale(shards int) (ScaleRun, error) {
	run, _, err := runScale(shards, obs.Options{})
	return run, err
}

// RunScaleTraced runs the scale scenario with the flight recorder's event
// bus and attribution layer on and exports events.jsonl + attribution.json
// into dir — the input of the tokenflow-trace CI smoke. Event recording
// retains every lifecycle event in memory, so unlike RunScale this is
// meant for reduced TOKENFLOW_SCALE runs.
func RunScaleTraced(shards int, dir string) (ScaleRun, error) {
	run, res, err := runScale(shards, obs.Options{Events: true, Attribution: true})
	if err != nil {
		return run, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return run, err
	}
	f, err := os.Create(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return run, err
	}
	if err := res.Obs.Events.WriteJSONL(f); err != nil {
		f.Close()
		return run, err
	}
	if err := f.Close(); err != nil {
		return run, err
	}
	f, err = os.Create(filepath.Join(dir, "attribution.json"))
	if err != nil {
		return run, err
	}
	if err := res.Attribution.WriteJSON(f); err != nil {
		f.Close()
		return run, err
	}
	return run, f.Close()
}

func runScale(shards int, o obs.Options) (ScaleRun, *cluster.Result, error) {
	return runScaleWith(router.NewRoundRobin(), nil, shards, o)
}

func runScaleWith(pol router.Policy, spec *prefixindex.Spec, shards int, o obs.Options) (ScaleRun, *cluster.Result, error) {
	replicas := scaled(500)
	w := scaleWorkload()
	cl, err := cluster.New(cluster.Config{
		Replicas:    replicas,
		Policy:      pol,
		PrefixIndex: spec,
		Shards:      shards,
		MaxSimTime:  4 * time.Hour,
		Obs:         o,
	}, buildReplica(dep4090Llama))
	if err != nil {
		return ScaleRun{}, nil, err
	}
	// Level the GC pacer before timing: back-to-back runs in one process
	// (the routed pair, the experiment table) otherwise charge the second
	// run with collecting the first one's garbage.
	runtime.GC()
	start := time.Now()
	res, err := cl.Run(w)
	if err != nil {
		return ScaleRun{}, nil, err
	}
	wall := time.Since(start)
	if res.TimedOut {
		return ScaleRun{}, nil, fmt.Errorf("scale: run timed out at %s", res.Makespan)
	}
	return ScaleRun{
		Replicas:     replicas,
		Shards:       shards,
		Requests:     res.Report.Finished,
		OutputTokens: res.Report.TotalOut,
		Events:       res.EventsProcessed,
		Makespan:     res.Makespan,
		Wall:         wall,
	}, res, nil
}

// RunScaleRouted runs the scale scenario twice under least-queue routing —
// the omniscient policy, whose every pick scans all scaled(500) replicas,
// and its indexed twin on the degenerate prefix index, whose pick is a
// tree-root read — and verifies the two runs made identical decisions
// before returning both measurements. The pair is the end-to-end form of
// BenchmarkRouterPick: same results, the wall-clock difference is what the
// per-decision scan cost the gateway.
func RunScaleRouted(shards int) (omni, indexed ScaleRun, err error) {
	omni, omniRes, err := runScaleWith(router.NewLeastQueue(), nil, shards, obs.Options{})
	if err != nil {
		return omni, indexed, err
	}
	indexed, idxRes, err := runScaleWith(router.NewIndexedLeastQueue(), nil, shards, obs.Options{})
	if err != nil {
		return omni, indexed, err
	}
	if st := idxRes.PrefixIndex; st == nil || st.Published == 0 {
		return omni, indexed, fmt.Errorf("scale-routed: indexed run published no events")
	}
	if !reflect.DeepEqual(omniRes.Report, idxRes.Report) {
		return omni, indexed, fmt.Errorf("scale-routed: indexed run diverged from omniscient least-queue:\n%+v\n%+v",
			omniRes.Report, idxRes.Report)
	}
	if omni.Events != indexed.Events {
		return omni, indexed, fmt.Errorf("scale-routed: degenerate index changed the event count: %d vs %d",
			omni.Events, indexed.Events)
	}
	return omni, indexed, nil
}

// scaleRow renders one ScaleRun as an ExpScale table row.
func scaleRow(name string, run ScaleRun) []string {
	perReq := time.Duration(0)
	if run.Requests > 0 {
		perReq = run.Wall / time.Duration(run.Requests)
	}
	return []string{
		name,
		fint(int64(run.Replicas)),
		fint(int64(run.Shards)),
		fint(int64(run.Requests)),
		fint(run.OutputTokens),
		fint(int64(run.Events)),
		fsec(run.Makespan),
		fsec(run.Wall),
		perReq.String(),
	}
}

// ExpScale runs the scale envelope at the reference shard count — the
// round-robin reference run plus the least-queue routed pair (omniscient
// scan vs prefix-index) — and tabulates all three.
func ExpScale() (*Table, error) {
	run, err := RunScale(scaleShards)
	if err != nil {
		return nil, err
	}
	omni, indexed, err := RunScaleRouted(scaleShards)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:    "scale",
		Title: "simulator scale envelope (sharded executor)",
		Header: []string{"router", "replicas", "shards", "requests", "out-tokens",
			"events", "sim-makespan", "wall", "wall/request"},
		Rows: [][]string{
			scaleRow(router.NameRoundRobin, run),
			scaleRow(router.NameLeastQueue, omni),
			scaleRow(router.NameIndexedLeastQueue, indexed),
		},
		Notes: "the simulator's envelope, not a paper artifact; " +
			"BENCH_core.json gates the round-robin scenario at 2x in CI; " +
			"the least-queue pair makes identical routing decisions — the wall gap " +
			"is the omniscient per-pick replica scan the prefix index removes",
	}, nil
}
