package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/router"
)

// ExpFabric studies the unified transfer fabric: tail TTFT and KV-movement
// outcomes versus interconnect layout × NIC bandwidth × migration policy,
// on the imbalanced hetero pool (1×H200 + 3×RTX-4090, tight memory) under
// the multi-turn spike workload, with the host-tier prefix cache enabled.
// The sweep's question: when does shipping KV stop paying? (Answer shape:
// on a fat mesh, always-migrate and the cost model agree — the wire wins.
// As the shared NIC narrows, queued transfers trail recompute; the cost
// model starts declining them and holds its tail, while always-migrate
// drags every diverted turn behind a saturated uplink.)
func ExpFabric() (*Table, error) {
	mix := heteroMixes()[2] // H200+3x4090: affinity diverts under pressure
	w := clusterWorkload()

	type variant struct {
		topo   fabric.Kind
		nic    float64
		policy cluster.MigrationPolicy
	}
	var variants []variant
	for _, policy := range cluster.MigrationPolicies() {
		variants = append(variants, variant{fabric.FullMesh, 25, policy})
		for _, nic := range []float64{25, 1, 0.05} {
			variants = append(variants, variant{fabric.SharedNIC, nic, policy})
		}
	}

	type cell struct {
		v   variant
		res *cluster.Result
		err error
	}
	cells := make([]cell, len(variants))
	for i, v := range variants {
		cells[i] = cell{v: v}
	}
	kv := engine.TokenFlowKVPolicy()
	kv.HostCache = true
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := cells[i].v
			cl, err := cluster.New(cluster.Config{
				Replicas:        len(mix.gpus),
				Policy:          router.NewSessionAffinity(),
				Migrate:         true,
				MigrationPolicy: v.policy,
				Topology:        &fabric.Spec{Kind: v.topo, LinkGBps: v.nic},
			}, buildMixKV(mix, kv))
			if err != nil {
				cells[i].err = err
				return
			}
			cells[i].res, cells[i].err = cl.Run(w)
		}()
	}
	wg.Wait()

	t := &Table{
		ID: "Fabric",
		Title: "Unified transfer fabric: topology × NIC bandwidth × migration policy, " +
			"1×H200 + 3×RTX-4090, host-tier prefix cache on, multi-turn spikes",
		Header: []string{"topology", "NIC-GB/s", "policy", "P99-TTFT", "mean-TTFT", "QoS",
			"migr", "declined", "reloads", "reload-fb", "wire-busy-s"},
	}
	for _, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("fabric %+v: %w", c.v, c.err)
		}
		var wireBusy float64
		for _, cs := range c.res.TransferClasses {
			switch cs.Class {
			case fabric.ClassMigrate, fabric.ClassPrewarm, fabric.ClassDrain:
				wireBusy += cs.Busy.Seconds()
			}
		}
		t.Rows = append(t.Rows, []string{
			string(c.v.topo),
			ffloat(c.v.nic, 2),
			string(c.v.policy),
			fsec(c.res.Report.P99TTFT),
			fsec(c.res.Report.MeanTTFT),
			ftps(c.res.Report.QoS),
			fint(c.res.Migrations),
			fint(c.res.MigrationsDeclined),
			fint(c.res.HostReloads),
			fint(c.res.HostReloadFallbacks),
			ffloat(wireBusy, 2),
		})
	}
	t.Notes = "Expected shape: full mesh and fat shared NICs migrate freely (cost ≈ always); " +
		"as the NIC narrows, always-migrate queues diverted turns behind the uplink while " +
		"the cost model declines the wire and recomputes, holding P99. Host reloads ride " +
		"the same ledger (reload class) and fall back when their link is starved."
	return t, nil
}
