package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Fig18 reproduces Figure 18: token generation timelines under SGLang and
// TokenFlow for a small burst. For every request we report TTFT and the
// times its stream reached 25/50/75/100% of its tokens: SGLang shows
// head-of-line blocking (late TTFTs, then full-speed bursts); TokenFlow
// starts everyone early and paces near the required speed.
func Fig18() (*Table, error) {
	w := trace.Burst("fig18", 36, 0, trace.FixedLengths{Prompt: 512, Output: 1200}, trace.FixedRate(20), 18)
	dep := dep4090Llama
	t := &Table{
		ID:     "Figure 18",
		Title:  "Token generation timelines, SGLang (top) vs TokenFlow (bottom)",
		Header: []string{"system", "req", "TTFT", "t25%", "t50%", "t75%", "t100%", "stall"},
	}
	for _, spec := range []SystemSpec{systems()[1], systems()[3]} {
		res, err := runOne(dep, spec, w, 0)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Requests[:8] {
			row := []string{spec.Name, fmt.Sprintf("#%d", r.ID), fsec(r.TTFT())}
			for _, q := range []float64{0.25, 0.5, 0.75, 1.0} {
				idx := int(q*float64(len(r.TokenTimes))) - 1
				if idx < 0 {
					idx = 0
				}
				row = append(row, ffloat(r.TokenTimes[idx].Seconds(), 1)+"s")
			}
			row = append(row, fsec(r.RebufferTotal))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = "Paper shape: TokenFlow initiates service earlier (lower TTFT spread) and paces delivery; SGLang serializes late requests."
	return t, nil
}

// Fig19 reproduces Figure 19: multi-rate request scheduling. A mixed-rate
// burst (40% at 15 tok/s, 60% at 20 tok/s) on TokenFlow: each class's
// streams should track their own target rate with no stalls.
func Fig19() (*Table, error) {
	w := trace.Burst("fig19", scaled(240), 0, trace.FixedLengths{Prompt: 256, Output: 900},
		trace.MixtureRate{Rates: []float64{15, 20}, Weights: []float64{0.4, 0.6}}, 19)
	res, err := runOne(depH200Llama, systems()[3], w, 0)
	if err != nil {
		return nil, err
	}
	type class struct {
		n          int
		deliver    float64
		stall      time.Duration
		effective  float64
		preemptons int
	}
	classes := map[float64]*class{15: {}, 20: {}}
	for i, r := range res.Requests {
		c := classes[r.Rate]
		if c == nil {
			continue
		}
		rm := res.Report.Requests[i]
		c.n++
		// Delivery pacing: tokens over the stream's span; under pacing it
		// approaches the class target.
		if n := len(r.TokenTimes); n >= 2 {
			span := r.TokenTimes[n-1].Sub(r.TokenTimes[0]).Seconds()
			if span > 0 {
				c.deliver += float64(n-1) / span
			}
		}
		c.stall += rm.Rebuffer
		c.effective += rm.Effective
		c.preemptons += r.Preemptions
	}
	t := &Table{
		ID:     "Figure 19",
		Title:  "Multi-rate scheduling: 40% @15 tok/s, 60% @20 tok/s (TokenFlow)",
		Header: []string{"class", "requests", "mean-delivery(tok/s)", "total-stall", "preemptions"},
	}
	for _, rate := range []float64{15, 20} {
		c := classes[rate]
		mean := 0.0
		if c.n > 0 {
			mean = c.deliver / float64(c.n)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f tok/s", rate), fint(int64(c.n)), ftps(mean), fsec(c.stall), fint(int64(c.preemptons)),
		})
	}
	t.Notes = "Paper shape: each class tracks its target rate within tolerance; higher-rate requests drain buffers faster and gain implicit priority."
	return t, nil
}

// Fig22 reproduces Figure 22: impact of the rescheduling interval Δt on
// TTFT and effective throughput (0.5-1.5s sweep).
func Fig22() (*Table, error) {
	// Demand just under the capacity bound keeps the scheduler in its
	// buffer-balancing mode (not the FCFS overload fallback) while memory
	// stays 2x overcommitted, so the interval length actually matters.
	w := trace.Burst("fig22", scaled(100), 0, lengthDist(512, 4096), trace.FixedRate(20), 22)
	t := &Table{
		ID:     "Figure 22",
		Title:  "Rescheduling interval sensitivity (TokenFlow, H200 burst)",
		Header: []string{"Δt", "eff-thpt(tok/s)", "mean-TTFT", "P99-TTFT", "full-reschedules"},
	}
	for _, dt := range []float64{0.5, 1.0, 1.5} {
		cfg := core.DefaultConfig()
		cfg.RescheduleInterval = simclock.Duration(dt)
		s := core.MustNew(cfg)
		res, err := runOne(depH200Llama, SystemSpec{"tokenflow", func() (sched.Scheduler, engine.KVPolicy) {
			return s, engine.TokenFlowKVPolicy()
		}}, w, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fs", dt),
			ftps(res.Report.EffectiveThroughput),
			fsec(res.Report.MeanTTFT),
			fsec(res.Report.P99TTFT),
			fint(s.FullReschedules),
		})
	}
	t.Notes = "Paper shape: shorter intervals marginally improve effective throughput and TTFT at higher scheduling overhead."
	return t, nil
}

// Fig23 reproduces Figure 23: buffer conservativeness μ. Low μ enables
// agile preemption (more context switches, lower TTFT); high μ behaves
// like SGLang (stable, fewer preemptions); SGLang itself is the reference.
func Fig23() (*Table, error) {
	// Same regime selection as Figure 22: near-capacity demand with
	// memory overcommit keeps buffer balancing (and hence μ) in play.
	w := trace.Burst("fig23", scaled(40), 0, lengthDist(512, 2048), trace.FixedRate(10), 23)
	dep := dep4090Llama
	t := &Table{
		ID:     "Figure 23",
		Title:  "Buffer conservativeness μ (scheduler aggressiveness)",
		Header: []string{"config", "preemptions", "mean-TTFT", "P99-TTFT", "eff-thpt(tok/s)", "total-stall"},
	}
	addRow := func(name string, res *engine.Result) {
		t.Rows = append(t.Rows, []string{
			name,
			fint(int64(res.Report.Preemptions)),
			fsec(res.Report.MeanTTFT),
			fsec(res.Report.P99TTFT),
			ftps(res.Report.EffectiveThroughput),
			fsec(res.Report.TotalRebuffer),
		})
	}
	sg, err := runOne(dep, systems()[1], w, 0)
	if err != nil {
		return nil, err
	}
	addRow("sglang", sg)
	for _, mu := range []float64{1.0, 20.0} {
		cfg := core.DefaultConfig()
		cfg.BufferConservativeness = mu
		res, err := runOne(dep, tokenFlowWith(cfg), w, 0)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("tokenflow μ=%.0f", mu), res)
	}
	t.Notes = "Paper shape: μ=1 is agile (many preemptions, best TTFT, slight stutter risk); μ=20 is cautious and SGLang-like."
	return t, nil
}

// Tab02 reproduces Table 2: the ablation of the hierarchical memory
// manager on setup 4090 (b). The paper reports completion times 66.00s
// (full), 127.28s (w/o offload), 82.76s (w/o write-through), 74.43s (w/o
// evict-load overlap).
func Tab02() (*Table, error) {
	setup := Tab01Setups()[3] // 4090 (b)
	// PCIe-3.0-class host link (3 GB/s effective): consumer testbeds of
	// the paper's class see constrained host links, and this surfaces the
	// transfer-latency differences the ablation isolates; results are
	// averaged over three workload seeds (see EXPERIMENTS.md).
	setup.dep.GPU.PCIeGBps = 3
	variants := []struct {
		name string
		mod  func(*engine.KVPolicy)
	}{
		{"TokenFlow", func(*engine.KVPolicy) {}},
		{"w/o Offload", func(p *engine.KVPolicy) { p.Offload = false }},
		{"w/o Write-Through", func(p *engine.KVPolicy) { p.WriteThrough = false; p.ChunkedWriting = false }},
		{"w/o Evict-Load Overlap", func(p *engine.KVPolicy) { p.LoadEvictOverlap = false }},
	}
	t := &Table{
		ID:     "Table 2",
		Title:  "Ablation of hierarchical memory management (setup 4090 (b), 3-seed mean)",
		Header: []string{"variant", "completion", "mean-TTFT", "total-stall", "preemptions", "loads", "recomputes"},
	}
	seeds := []int64{2, 3, 5}
	for _, v := range variants {
		kv := engine.TokenFlowKVPolicy()
		v.mod(&kv)
		var totalMakespan, totalTTFT, totalStall time.Duration
		var preempts, loads, resumes int
		for _, seed := range seeds {
			w := setup.workload(seed)
			spec := SystemSpec{v.name, func() (sched.Scheduler, engine.KVPolicy) {
				return core.MustNew(core.DefaultConfig()), kv
			}}
			res, err := runOne(setup.dep, spec, w, 0)
			if err != nil {
				return nil, err
			}
			totalMakespan += res.Makespan
			totalTTFT += res.Report.MeanTTFT
			totalStall += res.Report.TotalRebuffer
			preempts += res.Report.Preemptions
			for _, r := range res.Requests {
				loads += r.LoadedResumes
				resumes += r.Resumes
			}
		}
		n := time.Duration(len(seeds))
		t.Rows = append(t.Rows, []string{
			v.name, fsec(totalMakespan / n), fsec(totalTTFT / n), fsec(totalStall / n),
			fint(int64(preempts / len(seeds))),
			fint(int64(loads / len(seeds))), fint(int64((resumes - loads) / len(seeds))),
		})
	}
	t.Notes = "Paper shape (Table 2): 66.00s full < 74.43s w/o overlap < 82.76s w/o write-through < 127.28s w/o offload."
	return t, nil
}

// Overhead reproduces the §7.6 scheduling-overhead analysis: wall-clock
// cost of one scheduling decision on a stressed view (the paper reports
// ~0.07ms for SGLang's scheduler and ~0.4ms for TokenFlow's).
func Overhead() (*Table, error) {
	cost, err := gpu.NewCostModel(gpu.H200, model.Llama3_8B)
	if err != nil {
		return nil, err
	}
	mkView := func() *sched.View {
		v := &sched.View{
			Now: simclock.FromSeconds(100), FreeTokens: 50_000, TotalTokens: 200_000,
			PageTokens: 16, Cost: cost, AvgIterTime: 20 * time.Millisecond,
		}
		clock := simclock.New()
		for i := 0; i < 128; i++ {
			r := request.New(i, 0, 512, 2048, 20)
			r.State = request.StateRunning
			r.PrefilledTokens = 512
			r.DeliverTokens(clock, 0, 40+i)
			r.CancelConsumption(clock)
			v.Running = append(v.Running, r)
		}
		for i := 0; i < 64; i++ {
			v.Waiting = append(v.Waiting, request.New(1000+i, simclock.FromSeconds(99), 512, 2048, 20))
		}
		return v
	}
	measure := func(s sched.Scheduler, reset func()) time.Duration {
		v := mkView()
		const iters = 200
		start := time.Now()
		for i := 0; i < iters; i++ {
			if reset != nil {
				reset()
			}
			_ = s.Decide(v)
		}
		return time.Since(start) / iters
	}
	tf := core.MustNew(core.DefaultConfig())
	rows := [][]string{}
	rows = append(rows, []string{"sglang", fmt.Sprintf("%.4fms", measure(sched.NewSGLang(), nil).Seconds()*1e3)})
	rows = append(rows, []string{"tokenflow (full pass)", fmt.Sprintf("%.4fms", measure(tf, func() { tf.ForceFullPass() }).Seconds()*1e3)})
	t := &Table{
		ID:     "Overhead (§7.6)",
		Title:  "Wall-clock cost per scheduling decision (192 live requests)",
		Header: []string{"scheduler", "decision-cost"},
		Rows:   rows,
		Notes:  "Paper shape: TokenFlow's decision stays sub-millisecond (~0.4ms vs ~0.07ms for SGLang).",
	}
	return t, nil
}

// Analyze exposes report computation for external harnesses.
var _ = metrics.DefaultQoSParams
