package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/trace"
)

// Fig11 reproduces Figure 11: the distribution of the real-world
// (industrial) trace — prompt/output length percentiles and the arrival
// rate over time buckets.
func Fig11() (*Table, error) {
	w := industrialTrace("industrial", 600, 4, 20, 11)
	s := w.Summarize()
	t := &Table{
		ID:     "Figure 11",
		Title:  "Real-world trace distribution (industrial generator)",
		Header: []string{"statistic", "value"},
		Rows: [][]string{
			{"requests", fint(int64(s.Count))},
			{"mean prompt", ffloat(s.MeanPrompt, 1)},
			{"p50 prompt", fint(int64(s.P50Prompt))},
			{"p99 prompt", fint(int64(s.P99Prompt))},
			{"mean output", ffloat(s.MeanOutput, 1)},
			{"p50 output", fint(int64(s.P50Output))},
			{"p99 output", fint(int64(s.P99Output))},
			{"arrivals/s", ffloat(s.ArrivalsPerS, 2)},
		},
	}
	// Arrival-rate waves: bucket arrivals into ten windows.
	buckets := make([]int, 10)
	dur := w.Duration()
	for _, it := range w.Items {
		idx := int(float64(it.Arrival) / float64(dur+1) * 10)
		buckets[idx]++
	}
	for i, n := range buckets {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("arrivals[%d0%%]", i),
			fint(int64(n)),
		})
	}
	t.Notes = "Paper shape: bimodal prompt lengths (short interactive + long RAG mode) and wavy arrival intensity."
	return t, nil
}

// Fig12 reproduces Figure 12: end-to-end metrics on H200 with Llama3-8B
// over BurstGPT-like and industrial traces.
func Fig12() (*Table, error) {
	return endToEnd("Figure 12", "End-to-end, H200 + Llama3-8B", depH200Llama, 3, 350)
}

// Fig13 reproduces Figure 13: end-to-end metrics on A6000 with
// Qwen2.5-7B.
func Fig13() (*Table, error) {
	return endToEnd("Figure 13", "End-to-end, A6000 + Qwen2.5-7B", depA6000Qwen, 1.5, 300)
}

func endToEnd(id, title string, dep Deployment, baseRate float64, spikeSize int) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Header: append([]string{"trace"}, metricsHeader...)}
	traces := []struct {
		name string
		w    trace.Workload
	}{
		{"burstgpt", burstGPTTrace("burstgpt", 180, baseRate, spikeSize, 20, 7)},
		{"industrial", industrialTrace("industrial", 180, baseRate*1.5, 20, 7)},
	}
	for _, tr := range traces {
		results, err := runAll(dep, systems(), tr.w, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tr.name, err)
		}
		for _, spec := range systems() {
			t.Rows = append(t.Rows, append([]string{tr.name}, metricsRow(spec.Name, results[spec.Name])...))
		}
	}
	t.Notes = "Paper shape: ~52.6% mean-TTFT reduction and 37-45% effective-throughput gain for TokenFlow."
	return t, nil
}

// Fig14 and Fig15 reproduce the long-term trace experiment: temporal
// variation of queued (Fig 14) and running (Fig 15) requests while
// stress-testing Qwen2.5-32B on H200 with a 20-minute BurstGPT trace.
func Fig14() (*Table, error) { return timelineExperiment("Figure 14", "queued") }

// Fig15 is the running-request counterpart of Fig14.
func Fig15() (*Table, error) { return timelineExperiment("Figure 15", "running") }

func timelineExperiment(id, series string) (*Table, error) {
	w := burstGPTTrace("longterm", 1200, 2, 700, 20, 14)
	results, err := runAll(depH200Qwen32, systems(), w, 10*time.Second)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Temporal variation of %s requests (Qwen2.5-32B on H200, 20-min BurstGPT)", series),
		Header: []string{"t(s)"},
	}
	names := make([]string, 0, len(results))
	for _, spec := range systems() {
		names = append(names, spec.Name)
		t.Header = append(t.Header, spec.Name)
	}
	// Align samples on the common grid (all engines sample at the same
	// cadence but stop at different times; report the union, padding).
	maxLen := 0
	for _, n := range names {
		if l := len(results[n].Samples); l > maxLen {
			maxLen = l
		}
	}
	step := maxLen / 24
	if step < 1 {
		step = 1
	}
	for i := 0; i < maxLen; i += step {
		row := []string{}
		for _, n := range names {
			s := results[n].Samples
			if i < len(s) {
				if len(row) == 0 {
					row = append(row, ffloat(s[i].At.Seconds(), 0))
				}
				if series == "queued" {
					row = append(row, fint(int64(s[i].Queued)))
				} else {
					row = append(row, fint(int64(s[i].Running)))
				}
			} else {
				if len(row) == 0 {
					row = append(row, "-")
				}
				row = append(row, "0")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Summary rows: the instantaneous peak (set by the spike size itself)
	// and the time-average, which reflects how fast each system drains the
	// backlog — the paper's Figure 14/15 comparison.
	peak := []string{"peak"}
	mean := []string{"mean"}
	for _, n := range names {
		p, sum, cnt := 0, 0, 0
		for _, s := range results[n].Samples {
			v := s.Queued
			if series == "running" {
				v = s.Running
			}
			if v > p {
				p = v
			}
			sum += v
			cnt++
		}
		peak = append(peak, fint(int64(p)))
		m := 0.0
		if cnt > 0 {
			m = float64(sum) / float64(cnt)
		}
		mean = append(mean, ffloat(m, 1))
	}
	t.Rows = append(t.Rows, peak, mean)
	if series == "queued" {
		t.Notes = "Paper shape: TokenFlow keeps the queued-request peak below the baselines under load spikes."
	} else {
		t.Notes = "Paper shape: TokenFlow sustains higher running concurrency via preemptive multiplexing."
	}
	return t, nil
}

// Fig02 reproduces Figure 2: the SGLang burst micro-benchmark on H200 —
// TTFT surging past the 1.3s engagement threshold while generation speed
// stays far above reading speed.
func Fig02() (*Table, error) {
	t := &Table{
		ID:     "Figure 2",
		Title:  "SGLang burst handling on H200 (micro-benchmark)",
		Header: []string{"burst-load", "mean-TTFT", "P99-TTFT", "mean-speed(tok/s)", "target-TTFT", "target-speed"},
	}
	base := scaled(400)
	for _, load := range []float64{0.25, 0.5, 0.75, 1.0} {
		n := int(float64(base) * load)
		if n < 1 {
			n = 1
		}
		w := trace.Burst("fig2", n, 0, lengthDist(512, 4096), trace.FixedRate(8), 2)
		res, err := runOne(depH200Llama, systems()[1], w, 0)
		if err != nil {
			return nil, err
		}
		// Mean per-request generation speed over each request's own span.
		var speeds []float64
		for _, rm := range res.Report.Requests {
			if rm.GenRate > 0 {
				speeds = append(speeds, rm.GenRate)
			}
		}
		sort.Float64s(speeds)
		var sum float64
		for _, s := range speeds {
			sum += s
		}
		mean := 0.0
		if len(speeds) > 0 {
			mean = sum / float64(len(speeds))
		}
		t.Rows = append(t.Rows, []string{
			ffloat(load, 2),
			fsec(res.Report.MeanTTFT),
			fsec(res.Report.P99TTFT),
			ftps(mean),
			"1.30s",
			"16.0 (2x reading)",
		})
	}
	t.Notes = "Paper shape: TTFT blows past 1.3s (>20s at peak) while per-request speed stays well above 2x reading speed — the resource misallocation motivating TokenFlow."
	return t, nil
}
