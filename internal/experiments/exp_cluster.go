package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// clusterWorkload is the multi-turn spike trace of the cluster study:
// chat sessions with growing shared prefixes, half of them opening in
// periodic flash crowds — the request-burst regime of the paper carried
// to a horizontally scaled deployment.
func clusterWorkload() trace.Workload {
	return trace.Sessions("cluster-sessions", trace.SessionConfig{
		Sessions:   scaled(300),
		Duration:   scaledDur(240),
		SpikeEvery: scaledDur(60),
		Rates:      trace.FixedRate(20),
		Seed:       7,
	})
}

// buildReplica constructs one TokenFlow replica engine on the shared
// cluster clock and fabric.
func buildReplica(dep Deployment) cluster.BuildEngine {
	return buildReplicaKV(dep, engine.TokenFlowKVPolicy())
}

// buildReplicaKV is buildReplica with an explicit KV policy (the fabric
// experiment enables the host-tier prefix cache).
func buildReplicaKV(dep Deployment, kv engine.KVPolicy) cluster.BuildEngine {
	return func(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		return engine.New(engine.Config{
			GPU:         dep.GPU,
			Model:       dep.Model,
			MemFraction: dep.MemFraction,
			MaxBatch:    dep.MaxBatch,
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          kv,
			Clock:       clock,
			Fabric:      ep,
		})
	}
}

// ExpCluster studies horizontal scaling: QoS and P99 TTFT versus replica
// count × routing policy for TokenFlow replicas serving the multi-turn
// spike workload. Session-affinity routing preserves prefix-cache reuse
// that round-robin destroys, which shows up as lower tail TTFT once the
// cluster is load-stressed.
func ExpCluster() (*Table, error) {
	dep := dep4090Llama
	w := clusterWorkload()
	replicaCounts := []int{1, 2, 4}

	type cell struct {
		replicas int
		policy   string
		res      *cluster.Result
		err      error
	}
	var cells []cell
	for _, n := range replicaCounts {
		for _, p := range router.Names() {
			cells = append(cells, cell{replicas: n, policy: p})
		}
	}
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pol, err := router.ByName(cells[i].policy)
			if err != nil {
				cells[i].err = err
				return
			}
			cl, err := cluster.New(cluster.Config{
				Replicas: cells[i].replicas,
				Policy:   pol,
			}, buildReplica(dep))
			if err != nil {
				cells[i].err = err
				return
			}
			cells[i].res, cells[i].err = cl.Run(w)
		}()
	}
	wg.Wait()

	t := &Table{
		ID:    "Cluster",
		Title: "Multi-replica scaling: routing policy × replica count, TokenFlow replicas, multi-turn spikes",
		Header: []string{"replicas", "router", "QoS", "P99-TTFT", "mean-TTFT",
			"eff-thpt(tok/s)", "imbalance", "prefix-hits"},
	}
	for _, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("cluster %dx %s: %w", c.replicas, c.policy, c.err)
		}
		t.Rows = append(t.Rows, []string{
			fint(int64(c.replicas)),
			c.policy,
			ftps(c.res.Report.QoS),
			fsec(c.res.Report.P99TTFT),
			fsec(c.res.Report.MeanTTFT),
			ftps(c.res.Report.EffectiveThroughput),
			ffloat(c.res.Imbalance, 2),
			fint(c.res.PrefixHits),
		})
	}
	t.Notes = "Expected shape: P99 TTFT falls with replica count; at fixed count, session-affinity " +
		"beats round-robin on tail TTFT by preserving per-replica prefix-cache reuse."
	return t, nil
}
