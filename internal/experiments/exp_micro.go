package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Fig01 reproduces Figure 1: token consumption speeds for reading and
// listening across age groups and languages.
func Fig01() (*Table, error) {
	t := &Table{
		ID:     "Figure 1",
		Title:  "Token consumption speeds by age group and language (tokens/s)",
		Header: []string{"age", "language", "reading", "listening"},
	}
	for _, row := range trace.ConsumptionTable() {
		t.Rows = append(t.Rows, []string{
			string(row.Age), string(row.Language),
			ffloat(row.Reading, 2), ffloat(row.Listening, 2),
		})
	}
	t.Notes = "Paper shape: all rates in the 2-8 tok/s band, reading > listening, peak in working age."
	return t, nil
}

// toyDeployment builds the Figure 6 device: a compute-bound toy
// accelerator with ~60 tokens/s of total decode capacity shared across
// the batch (the paper's "generation capacity" semantics) and KV memory
// for roughly two concurrent requests.
func toyDeployment() Deployment {
	g := gpu.Spec{
		Name:         "toy",
		FP16TFLOPS:   100, // decode is memory-bound on this toy
		HBMGBps:      811, // ≈33 ms per decode step -> 30 tok/s per stream
		PCIeGBps:     25,
		MemoryGB:     17.92, // ≈520 KV tokens at mem-frac 0.9
		ComputeEff:   0.45,
		BandwidthEff: 0.60,
		IterOverhead: 0,
	}
	// MaxBatch 2 is the toy's "supports two concurrent requests": total
	// generation capacity 60 tokens/s split 30/30.
	return Deployment{GPU: g, Model: model.Llama3_8B, MemFraction: 0.9, MaxBatch: 2}
}

// Fig06 reproduces Figure 6: the toy buffer-balancing example. Three
// requests (15, 20, 18 tokens/s; the third arrives at t=2) share a
// 60 tokens/s device that runs two concurrent streams; the table tracks
// each request's client buffer over time, showing admission control,
// preemption of the fat-buffer stream, and reactivation before depletion.
func Fig06() (*Table, error) {
	dep := toyDeployment()
	w := trace.Workload{Name: "toy", Items: []trace.Item{
		{Arrival: 0, PromptLen: 32, OutputLen: 140, Rate: 15},
		{Arrival: 0, PromptLen: 32, OutputLen: 180, Rate: 20},
		{Arrival: simclock.FromSeconds(2), PromptLen: 32, OutputLen: 150, Rate: 18},
	}}
	cfg := core.DefaultConfig()
	cfg.RescheduleInterval = 500 * time.Millisecond
	cfg.TargetBufferSeconds = 1.5
	cfg.BufferConservativeness = 1.2
	res, err := runOne(dep, tokenFlowWith(cfg), w, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 6",
		Title:  "Toy example: buffer sizes under buffer-aware scheduling",
		Header: []string{"t(s)", "R1-buffer", "R2-buffer", "R3-buffer"},
	}
	end := res.Makespan.Seconds()
	for ts := 0.0; ts <= end+0.25; ts += 0.5 {
		row := []string{ffloat(ts, 1)}
		for _, r := range res.Requests {
			row = append(row, fint(int64(bufferAt(r, ts))))
		}
		t.Rows = append(t.Rows, row)
	}
	var preempts int
	for _, r := range res.Requests {
		preempts += r.Preemptions
	}
	t.Notes = fmt.Sprintf("Paper shape: R3 waits for buffer accumulation, then preempts the fattest buffer; %d preemption(s) occurred, no stalls=%v.",
		preempts, res.Report.TotalRebuffer == 0)
	return t, nil
}

// bufferAt replays a request's client consumption to compute buffer
// occupancy at time ts.
func bufferAt(r *request.Request, ts float64) int {
	if r.Generated == 0 || r.Rate <= 0 {
		return 0
	}
	gen := 0
	for _, tt := range r.TokenTimes {
		if tt.Seconds() <= ts {
			gen++
		}
	}
	if gen == 0 {
		return 0
	}
	// Replay the consumer: one token at TTFT, then one every 1/r, stalling
	// on empty buffer.
	consumed := 0
	next := r.FirstTokenAt.Seconds()
	interval := 1 / r.Rate
	for next <= ts && consumed < r.OutputLen {
		// Token `consumed` must exist by `next`.
		if consumed < len(r.TokenTimes) {
			avail := r.TokenTimes[consumed].Seconds()
			if avail > next {
				next = avail // stall until delivery
				if next > ts {
					break
				}
			}
			consumed++
			next += interval
		} else {
			break
		}
	}
	b := gen - consumed
	if b < 0 {
		b = 0
	}
	return b
}

// Fig08 reproduces Figure 8: comparison of KV write strategies. One
// victim stream with a large buffer and one small-buffer stream share the
// device; after a short execution window the victim is preempted. The
// write-back baseline pays the full transfer at preemption; write-through
// has mostly synchronized; priority rearrangement syncs the likely victim
// first and cuts the overhead further.
func Fig08() (*Table, error) {
	type strategy struct {
		name string
		cfg  kvcache.Config
	}
	base := kvcache.Config{
		PageTokens: 16, GPUPages: 256, BytesPerToken: model.Llama3_8B.KVBytesPerToken(),
		Offload: true, LoadEvictOverlap: true,
	}
	wt := base
	wt.WriteThrough = true
	wt.ChunkedWriting = true
	wtp := wt
	wtp.PriorityWrites = true
	strategies := []strategy{
		{"write-back", base},
		{"write-through", wt},
		{"write-through+rearrange", wtp},
	}
	t := &Table{
		ID:     "Figure 8",
		Title:  "KV write strategies: preemption overhead",
		Header: []string{"strategy", "evict-latency", "vs-write-back"},
	}
	var writeBackLatency time.Duration
	for _, s := range strategies {
		lat, err := writeStrategyLatency(s.cfg)
		if err != nil {
			return nil, err
		}
		if s.name == "write-back" {
			writeBackLatency = lat
		}
		red := 0.0
		if writeBackLatency > 0 {
			red = (writeBackLatency - lat).Seconds() / writeBackLatency.Seconds() * 100
		}
		t.Rows = append(t.Rows, []string{s.name, fmt.Sprintf("%.2fms", lat.Seconds()*1e3), fpct(-(-red))})
	}
	t.Notes = "Paper shape: write-through removes most of the at-preemption transfer; rearranged writes remove the rest (§5.1-5.2 report a 20.3% preemption-overhead reduction overall)."
	return t, nil
}

// writeStrategyLatency measures preempt-to-host-complete latency for the
// victim under a given write policy, with a constrained sync window so
// the strategies differ.
func writeStrategyLatency(cfg kvcache.Config) (time.Duration, error) {
	clock := simclock.New()
	ep := fabric.NewSingleHost(2e9, 2e9) // constrained link: sync cannot finish everything
	var evictAt, doneAt simclock.Time
	m, err := kvcache.New(cfg, clock, ep, kvcache.Callbacks{
		EvictDone: func(r *request.Request, now simclock.Time) {
			if r.ID == 2 {
				doneAt = now
			}
		},
	})
	if err != nil {
		return 0, err
	}
	small := request.New(1, 0, 512, 600, 1e-6) // tiny buffer (slow consumer but few tokens delivered)
	victim := request.New(2, 0, 2048, 600, 1e-6)
	if err := m.AllocateResident(small, 512); err != nil {
		return 0, err
	}
	if err := m.AllocateResident(victim, 2048); err != nil {
		return 0, err
	}
	small.PrefilledTokens = 512
	victim.PrefilledTokens = 2048
	// The victim has the larger client buffer (more undelivered tokens).
	small.DeliverTokens(clock, 0, 10)
	victim.DeliverTokens(clock, 0, 400)
	// Four 20ms compute intervals of background sync; the link moves 40 MB
	// per interval while the victim alone holds 256 MB.
	for i := 0; i < 4; i++ {
		m.BackgroundSync(clock.Now(), 20*time.Millisecond)
		clock.RunUntil(clock.Now().Add(20 * time.Millisecond))
	}
	evictAt = clock.Now()
	if _, err := m.Preempt(victim, evictAt); err != nil {
		return 0, err
	}
	clock.Run()
	return doneAt.Sub(evictAt), nil
}

// Fig09 reproduces Figure 9: synchronous chunked writing versus plain
// asynchronous write-through. On a constrained link the asynchronous
// variant stalls iteration boundaries (the scheduling dependency); the
// chunked scheme never does.
func Fig09() (*Table, error) {
	dep := dep4090Llama
	dep.GPU.PCIeGBps = 0.08 // constrained host link makes the backlog visible
	w := trace.Burst("fig9", scaled(24), 0, lengthDist(256, 512), trace.FixedRate(12), 9)

	res1, err := runOne(dep, tokenFlowWith(core.DefaultConfig()), w, 0)
	if err != nil {
		return nil, err
	}
	kv := engine.TokenFlowKVPolicy()
	kv.ChunkedWriting = false
	res2, err := runOne(dep, SystemSpec{"unchunked", func() (sched.Scheduler, engine.KVPolicy) {
		return core.MustNew(core.DefaultConfig()), kv
	}}, w, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 9",
		Title:  "Synchronous chunked writing vs asynchronous write-through",
		Header: []string{"scheme", "boundary-stall", "makespan", "iterations"},
		Rows: [][]string{
			{"sync-chunked", fsec(res1.BoundaryStall), fsec(res1.Makespan), fint(res1.Iterations)},
			{"async (unchunked)", fsec(res2.BoundaryStall), fsec(res2.Makespan), fint(res2.Iterations)},
		},
	}
	t.Notes = "Paper shape: chunked writes complete within compute intervals (zero stall); async IO interferes with iteration prelude/epilogue."
	return t, nil
}

// Fig10 reproduces Figure 10: load-evict overlap. Preempting one request
// while resuming two others completes far sooner when synchronized pages
// reclaim immediately and loads overlap the remaining eviction.
func Fig10() (*Table, error) {
	t := &Table{
		ID:     "Figure 10",
		Title:  "Load-evict overlap: preempt one request while resuming two",
		Header: []string{"mode", "loads-complete-at", "evict-completes-at"},
	}
	for _, overlap := range []bool{true, false} {
		loadDone, evictDone, err := loadEvictScenario(overlap)
		if err != nil {
			return nil, err
		}
		name := "overlap"
		if !overlap {
			name = "request-level (serialized)"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.2fms", loadDone.Seconds()*1e3), fmt.Sprintf("%.2fms", evictDone.Seconds()*1e3)})
	}
	t.Notes = "Paper shape: overlapped chunked transfers finish the resumes before the full eviction drains; serialization delays them behind it."
	return t, nil
}

func loadEvictScenario(overlap bool) (loadDone, evictDone simclock.Time, err error) {
	cfg := kvcache.Config{
		PageTokens: 16, GPUPages: 96, BytesPerToken: model.Llama3_8B.KVBytesPerToken(),
		Offload: true, LoadEvictOverlap: overlap, WriteThrough: true, ChunkedWriting: true,
	}
	clock := simclock.New()
	ep := fabric.NewSingleHost(5e9, 5e9)
	var lastLoad, evictAt simclock.Time
	m, err := kvcache.New(cfg, clock, ep, kvcache.Callbacks{
		LoadDone: func(r *request.Request, now simclock.Time) {
			if now > lastLoad {
				lastLoad = now
			}
		},
		EvictDone: func(r *request.Request, now simclock.Time) {
			if r.ID == 0 {
				evictAt = now
			}
		},
	})
	if err != nil {
		return 0, 0, err
	}
	// Requests 1 and 2 are on the host (previously evicted); request 0 is
	// resident with half its pages synced.
	r0 := request.New(0, 0, 768, 10, 20)
	r1 := request.New(1, 0, 256, 10, 20)
	r2 := request.New(2, 0, 256, 10, 20)
	for _, r := range []*request.Request{r1, r2} {
		if err := m.AllocateResident(r, r.PromptLen); err != nil {
			return 0, 0, err
		}
		r.PrefilledTokens = r.PromptLen
		if _, err := m.Preempt(r, clock.Now()); err != nil {
			return 0, 0, err
		}
		clock.Run()
	}
	if err := m.AllocateResident(r0, r0.PromptLen); err != nil {
		return 0, 0, err
	}
	r0.PrefilledTokens = r0.PromptLen
	m.BackgroundSync(0, 3*time.Millisecond) // syncs roughly half of r0
	clock.Run()
	// Preempt r0 and immediately resume r1 and r2.
	if _, err := m.Preempt(r0, clock.Now()); err != nil {
		return 0, 0, err
	}
	for _, r := range []*request.Request{r1, r2} {
		if _, err := m.StartLoad(r, clock.Now()); err != nil {
			return 0, 0, err
		}
	}
	clock.Run()
	return lastLoad, evictAt, nil
}
