package prefixindex

// tree is a tournament (winner) tree over the cluster's replica slots: a
// complete binary tree whose leaves are replica IDs and whose internal
// nodes hold the winner of their children under a strict comparator. The
// overall winner is a root read — O(1) — and absorbing one replica's
// digest change replays a single leaf-to-root path — O(log N). This is
// what makes indexed routing's per-decision cost independent of pool size
// where the omniscient policies rescan all N replicas.
//
// Lazy-deletion heaps were considered and rejected: every stale entry they
// pop rides the hot Pick path, growing it back toward O(log N · churn) and
// past the flatness gate. The tournament tree's winner is a pure function
// of the current leaves, so reads never do repair work.
type tree struct {
	// n is the replica count; size the power-of-two leaf span. node[1] is
	// the root; node[size+i] the leaf for replica i (-1 pads the span).
	n, size int
	node    []int32
	// beats is the strict total order: beats(a, b) reports whether
	// replica a wins against replica b. Padding losers are handled here,
	// not in the comparator.
	beats func(a, b int) bool
}

// newTree builds a tree over n replicas and plays every match once.
func newTree(n int, beats func(a, b int) bool) *tree {
	size := 1
	for size < n {
		size *= 2
	}
	t := &tree{n: n, size: size, beats: beats, node: make([]int32, 2*size)}
	for i := range t.node {
		t.node[i] = -1
	}
	for i := 0; i < n; i++ {
		t.node[size+i] = int32(i)
	}
	for i := size - 1; i >= 1; i-- {
		t.node[i] = t.play(t.node[2*i], t.node[2*i+1])
	}
	return t
}

// play returns the winner of two slots; -1 padding always loses.
func (t *tree) play(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if t.beats(int(a), int(b)) {
		return a
	}
	return b
}

// update replays replica i's matches up to the root after its key changed.
// It stops early when a replay leaves a node's winner unchanged AND the
// node did not previously award the match to i — if it did, i's new key
// must still be re-compared all the way up.
func (t *tree) update(i int) {
	for j := (t.size + i) / 2; j >= 1; j /= 2 {
		w := t.play(t.node[2*j], t.node[2*j+1])
		if w == t.node[j] && w != int32(i) {
			return
		}
		t.node[j] = w
	}
}

// winner returns the tree's current overall winner, or -1 when every slot
// is a padding loser (no replicas).
func (t *tree) winner() int { return int(t.node[1]) }
