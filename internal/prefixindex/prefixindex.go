// Package prefixindex implements the gateway's eventually-consistent view
// of cluster KV state: the event-published global prefix index that lets
// routing policies decide in O(1) instead of scanning every replica.
//
// Replicas publish KV lifecycle events (pin created / evicted / migrated,
// host mirror created / dropped) and load signals (per-change queue depths
// or heartbeat digests) as they happen; the gateway-side Index consumes
// them — after a modelled propagation delay, minus a configurable drop
// rate — into a session → holder map plus per-replica load digests. Two
// tournament trees over the digests keep the least-queue and capacity-
// weighted winners available as O(1) root reads, with O(log N) updates per
// applied event, so a routing decision's cost is independent of pool size.
//
// The design follows AIBrix's KV-event-sync gateway (replicas stream KV
// events, the router works against the eventually-consistent index) with
// the publication path modelled as delayed occurrences on the virtual
// clock. The degenerate spec — zero delay, zero drops, no heartbeat —
// applies every publication at the instant it is emitted, so the index is
// provably identical to the live state at every read and indexed policies
// reproduce their omniscient twins decision for decision.
package prefixindex

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// Spec configures the index's consistency model.
type Spec struct {
	// PropagationDelay is the lag between a replica publishing an event
	// and the gateway index applying it (the fabric's control-plane
	// latency). Zero applies events synchronously.
	PropagationDelay time.Duration

	// DropRate is the probability in [0, 1) that a KV lifecycle
	// publication (pin or mirror event) is lost in flight. Load signals
	// are never dropped: heartbeats are the recovery mechanism, and
	// per-change queue publications model a reliable stream. Drops are
	// deterministic per (Seed, replica, sequence), so runs reproduce.
	DropRate float64

	// HeartbeatEvery switches load signalling from per-change queue
	// publications to periodic digests: every stride the cluster publishes
	// each active replica's queue depth and bucket-quantized free pages.
	// Zero keeps the per-change stream (exact queues, no free-page view).
	HeartbeatEvery time.Duration

	// MaxStaleness bounds how old a replica's digest may be before
	// policies stop trusting it and fall back to capacity-weighted
	// routing. Zero defaults to 3×HeartbeatEvery + PropagationDelay under
	// heartbeats, and to no staleness check (per-change signals cannot go
	// stale) otherwise.
	MaxStaleness time.Duration

	// Seed keys the deterministic drop decisions.
	Seed int64
}

// Validate reports an error for out-of-range knobs.
func (s Spec) Validate() error {
	switch {
	case s.PropagationDelay < 0:
		return fmt.Errorf("prefixindex: negative propagation delay %v", s.PropagationDelay)
	case s.DropRate < 0 || s.DropRate >= 1:
		return fmt.Errorf("prefixindex: drop rate %v outside [0, 1)", s.DropRate)
	case s.HeartbeatEvery < 0:
		return fmt.Errorf("prefixindex: negative heartbeat stride %v", s.HeartbeatEvery)
	case s.MaxStaleness < 0:
		return fmt.Errorf("prefixindex: negative staleness bound %v", s.MaxStaleness)
	}
	return nil
}

// Sync reports whether the spec degenerates to a synchronous index: every
// publication applies at its emission instant and none are lost, so the
// index equals the live state at every read.
func (s Spec) Sync() bool {
	return s.PropagationDelay == 0 && s.DropRate == 0 && s.HeartbeatEvery == 0
}

// effectiveStaleness resolves the MaxStaleness default.
func (s Spec) effectiveStaleness() time.Duration {
	if s.MaxStaleness > 0 {
		return s.MaxStaleness
	}
	if s.HeartbeatEvery > 0 {
		return 3*s.HeartbeatEvery + s.PropagationDelay
	}
	return 0
}

// EvKind labels one published event.
type EvKind uint8

const (
	// EvPin: the replica's pinned prefix for Session changed. Val=tokens
	// now pinned; 0 means the pin left the device (evicted, adopted into
	// an admission, or staked for migration out).
	EvPin EvKind = iota
	// EvMirror: the replica's host-tier mirror for Session changed.
	// Val=mirrored tokens; 0 means the mirror dropped.
	EvMirror
	// EvLoad: the replica's outstanding request count changed (per-change
	// signalling, HeartbeatEvery == 0). Val=outstanding.
	EvLoad
	// EvDigest: a heartbeat digest. Val=outstanding, Aux=free pool pages
	// (bucket-quantized by the publisher).
	EvDigest

	numEvKinds
)

var evKindNames = [numEvKinds]string{"pin", "mirror", "load", "digest"}

// String returns the kind's stable wire name.
func (k EvKind) String() string {
	if int(k) < len(evKindNames) {
		return evKindNames[k]
	}
	return "unknown"
}

// PubBytes is the modelled wire size of one publication: the control-plane
// bytes the fabric accounts per event (a fixed small header — session,
// tokens, sequence — dwarfed by any KV payload).
const PubBytes = 64

// Pub is one publication in flight from a replica to the gateway index.
type Pub struct {
	// At is the emission instant; ApplyAt = At + PropagationDelay is when
	// the index absorbs it.
	At, ApplyAt simclock.Time
	// Replica is the publishing replica; Seq its per-replica publication
	// number (the merge tie-break under sharded execution).
	Replica int
	Seq     uint64
	// Kind, Session, Val, Aux carry the event payload (see EvKind).
	Kind    EvKind
	Session int
	Val     int64
	Aux     int64
	// Dropped marks a publication lost in flight: it is counted and
	// accounted on the wire but never applied.
	Dropped bool
}

// Drop decides deterministically whether publication seq from the replica
// is lost at the given rate. The decision hashes (seed, replica, seq) so
// identical runs drop identical events regardless of sharding.
func Drop(seed int64, replica int, seq uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := uint64(seed)
	h ^= uint64(replica+1) * 0x9e3779b97f4a7c15
	h ^= seq * 0xbf58476d1ce4e5b9
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h)/float64(1<<64) < rate
}

// Outcome classifies what the last indexed routing decision did, for the
// flight recorder's fallback events and the index hit/miss counters.
type Outcome uint8

const (
	// OutcomeNone: no indexed decision since the last TakeOutcome.
	OutcomeNone Outcome = iota
	// OutcomeHit: affinity stuck the request to an indexed prefix holder.
	OutcomeHit
	// OutcomeMiss: the index holds no prefix for the session (first turn,
	// evicted everywhere, or the pin event has not propagated yet).
	OutcomeMiss
	// OutcomeStale: the chosen replica's digest exceeded MaxStaleness.
	OutcomeStale
	// OutcomeHeadroom: the holder lacks KV headroom for the request.
	OutcomeHeadroom
	// OutcomeOverload: the holder queues far beyond the lightest replica.
	OutcomeOverload

	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"none", "hit", "miss", "stale", "headroom", "overload",
}

// String returns the outcome's stable wire name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Fallback reports whether the outcome diverted the request away from its
// indexed target (the outcomes the flight recorder surfaces).
func (o Outcome) Fallback() bool {
	return o == OutcomeMiss || o == OutcomeStale ||
		o == OutcomeHeadroom || o == OutcomeOverload
}

// Stats aggregates the index's lifetime counters.
type Stats struct {
	// Published counts every publication put on the wire (including
	// dropped ones — they consumed fabric bytes); Dropped the subset lost
	// in flight; Applied the subset absorbed into the index so far.
	Published, Dropped, Applied int64
	// Heartbeats counts applied digest publications.
	Heartbeats int64
	// AffinityHits / AffinityMisses / StaleFallbacks / HeadroomFallbacks /
	// OverloadFallbacks classify indexed session-affinity decisions;
	// StaleFallbacks also counts indexed least-queue staleness diversions.
	AffinityHits, AffinityMisses                         int64
	StaleFallbacks, HeadroomFallbacks, OverloadFallbacks int64
	// Pending is the in-flight publication count at collection time;
	// Sessions the distinct sessions currently indexed.
	Pending, Sessions int64
}

// repState is the index's digest of one replica.
type repState struct {
	active     bool
	capPages   int
	pageTokens int
	queue      int
	freePages  int
	updatedAt  simclock.Time
}

// Index is the gateway-side consumer: the session → holder map, the
// per-replica load digests, and the tournament trees that keep routing
// winners O(1). One Index serves one cluster run, read and advanced only
// from the coordinator goroutine (shards buffer publications and the
// coordinator merges them at barriers).
type Index struct {
	spec      Spec
	staleness time.Duration

	reps []repState

	// sessions maps session → holder entries (>0 tokens only); mirrors is
	// the host-tier analogue. A session's holder set is tiny — one holder
	// normally, two transiently while a migration's evict event is still
	// in flight — so it lives in a flat slice the publish hot path can
	// mutate in place instead of paying a second map per session.
	sessions map[int][]holderEnt
	mirrors  map[int][]holderEnt

	// pending is the in-flight publication queue, FIFO from head.
	// Publications arrive in nondecreasing ApplyAt (emission order plus a
	// constant delay), so FIFO drain is exactly apply-time order.
	pending []Pub
	head    int

	byQueue, byLoad *tree

	// loadDirty queues replicas whose byLoad key changed since the last
	// capacity-weighted read (loadDirtyMark dedupes). Indexed routing
	// consults byLoad only on fallback — miss or staleness — so its
	// tournament repair is deferred to the read instead of charging every
	// applied load signal for the rare case. A batch of leaf repairs
	// yields the same tree whatever the replay order, so deferral never
	// changes a winner a reader observes.
	loadDirty     []int32
	loadDirtyMark []bool

	now         simclock.Time
	stats       Stats
	lastOutcome Outcome
}

// New builds an empty index over n replicas. Seed each replica's geometry
// with SeedReplica and mark the initial serving set with SetActive before
// routing.
func New(spec Spec, n int) (*Index, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("prefixindex: non-positive replica count %d", n)
	}
	x := &Index{
		spec:          spec,
		staleness:     spec.effectiveStaleness(),
		reps:          make([]repState, n),
		sessions:      make(map[int][]holderEnt),
		mirrors:       make(map[int][]holderEnt),
		loadDirtyMark: make([]bool, n),
	}
	x.byQueue = newTree(n, x.queueBeats)
	x.byLoad = newTree(n, x.loadBeats)
	return x, nil
}

// queueBeats is the byQueue tree's strict order: fewest outstanding
// requests, ties by lowest replica ID — the omniscient least-queue
// comparator. Inactive replicas always lose.
func (x *Index) queueBeats(a, b int) bool {
	ra, rb := &x.reps[a], &x.reps[b]
	if ra.active != rb.active {
		return ra.active
	}
	if ra.queue != rb.queue {
		return ra.queue < rb.queue
	}
	return a < b
}

// loadBeats is the byLoad tree's strict order: lowest queue per unit of KV
// capacity (exact cross-multiplied integers), ties by larger capacity then
// lowest ID — the omniscient weighted-capacity comparator.
func (x *Index) loadBeats(a, b int) bool {
	ra, rb := &x.reps[a], &x.reps[b]
	if ra.active != rb.active {
		return ra.active
	}
	la, lb := ra.queue*rb.capPages, rb.queue*ra.capPages
	if la != lb {
		return la < lb
	}
	if ra.capPages != rb.capPages {
		return ra.capPages > rb.capPages
	}
	return a < b
}

// Spec returns the index's consistency configuration.
func (x *Index) Spec() Spec { return x.spec }

// Sync reports whether the index runs in the synchronous degenerate mode.
func (x *Index) Sync() bool { return x.spec.Sync() }

// LiveHeadroom reports whether affinity headroom checks should read the
// holder's live free-token count (per-change signalling carries no
// free-page view) instead of the digest estimate.
func (x *Index) LiveHeadroom() bool { return x.spec.HeartbeatEvery == 0 }

// SeedReplica records a replica's static geometry and starting digest
// (empty queue, whole pool free). Call once per replica before routing.
func (x *Index) SeedReplica(i, capPages, pageTokens int) {
	x.reps[i].capPages = capPages
	x.reps[i].pageTokens = pageTokens
	x.reps[i].freePages = capPages
	x.byQueue.update(i)
	x.byLoad.update(i)
}

// SetActive marks a replica in or out of the serving set. Activation is
// control-plane state the gateway owns, so it applies synchronously — the
// index never routes to a replica the cluster would not.
func (x *Index) SetActive(i int, active bool) {
	if x.reps[i].active == active {
		return
	}
	x.reps[i].active = active
	x.byQueue.update(i)
	x.byLoad.update(i)
}

// AdvanceTo moves the index's read clock to now and absorbs every pending
// publication due by then. The cluster calls it once per routing decision
// and control tick; policies then read a consistent snapshot.
func (x *Index) AdvanceTo(now simclock.Time) {
	if now > x.now {
		x.now = now
	}
	x.drain()
}

// Publish hands one publication to the index. Dropped publications count
// on the wire but never apply. Publications must arrive in nondecreasing
// emission order (the cluster's barrier merge guarantees it; the
// per-replica Seq witnesses it), so the emission instant itself advances
// the read clock — in the degenerate zero-delay spec every publication
// therefore applies at the moment it is emitted.
func (x *Index) Publish(p Pub) {
	x.stats.Published++
	if p.Dropped {
		x.stats.Dropped++
		return
	}
	if p.At > x.now {
		x.now = p.At
	}
	if x.head == len(x.pending) && p.ApplyAt <= x.now {
		// Due immediately with no backlog ahead of it — the only case the
		// degenerate synchronous spec ever sees. Apply in place and skip
		// the pending queue entirely.
		x.apply(&p)
		return
	}
	x.pending = append(x.pending, p)
	x.drain()
}

// drain applies every pending publication due at the current read clock.
func (x *Index) drain() {
	for x.head < len(x.pending) && x.pending[x.head].ApplyAt <= x.now {
		x.apply(&x.pending[x.head])
		x.head++
	}
	if x.head == len(x.pending) {
		x.pending = x.pending[:0]
		x.head = 0
	} else if x.head > 4096 && x.head*2 > len(x.pending) {
		n := copy(x.pending, x.pending[x.head:])
		x.pending = x.pending[:n]
		x.head = 0
	}
}

// apply absorbs one publication into the index state.
func (x *Index) apply(p *Pub) {
	x.stats.Applied++
	switch p.Kind {
	case EvPin:
		setHolder(x.sessions, p.Session, p.Replica, int(p.Val))
	case EvMirror:
		setHolder(x.mirrors, p.Session, p.Replica, int(p.Val))
	case EvLoad:
		r := &x.reps[p.Replica]
		r.queue = int(p.Val)
		r.updatedAt = p.At
		x.byQueue.update(p.Replica)
		x.touchLoad(p.Replica)
	case EvDigest:
		r := &x.reps[p.Replica]
		r.queue = int(p.Val)
		r.freePages = int(p.Aux)
		r.updatedAt = p.At
		x.stats.Heartbeats++
		x.byQueue.update(p.Replica)
		x.touchLoad(p.Replica)
	}
}

// touchLoad defers replica i's byLoad tournament repair to the next
// capacity-weighted read (see loadDirty).
func (x *Index) touchLoad(i int) {
	if !x.loadDirtyMark[i] {
		x.loadDirtyMark[i] = true
		x.loadDirty = append(x.loadDirty, int32(i))
	}
}

// flushLoad replays every deferred byLoad repair.
func (x *Index) flushLoad() {
	for _, i := range x.loadDirty {
		x.loadDirtyMark[i] = false
		x.byLoad.update(int(i))
	}
	x.loadDirty = x.loadDirty[:0]
}

// holderEnt is one (replica, pinned tokens) holder record. int32 bounds
// are generous: replica IDs are pool indices and pinned tokens are prompt
// lengths, both far below 2^31.
type holderEnt struct {
	replica int32
	tokens  int32
}

// setHolder updates a session's holder set, deleting zero entries so
// holder scans stay proportional to live holders. Updating an existing
// holder mutates the slice's backing array directly — no map write — so
// the steady-state pin churn of a long session costs one map read.
func setHolder(m map[int][]holderEnt, session, replica, tokens int) {
	hs := m[session]
	if tokens <= 0 {
		for i := range hs {
			if int(hs[i].replica) == replica {
				last := len(hs) - 1
				hs[i] = hs[last]
				if last == 0 {
					delete(m, session)
				} else {
					m[session] = hs[:last]
				}
				return
			}
		}
		return
	}
	for i := range hs {
		if int(hs[i].replica) == replica {
			hs[i].tokens = int32(tokens)
			return
		}
	}
	m[session] = append(hs, holderEnt{replica: int32(replica), tokens: int32(tokens)})
}

// HolderFor returns the active replica the index believes holds the
// session's largest pinned prefix (most tokens, ties by lowest replica
// ID — the omniscient affinity scan's order). The max-with-strict-tie-break
// makes the result independent of holder storage order.
func (x *Index) HolderFor(session int) (replica, tokens int, ok bool) {
	replica = -1
	for _, h := range x.sessions[session] {
		r, t := int(h.replica), int(h.tokens)
		if !x.reps[r].active {
			continue
		}
		if t > tokens || (t == tokens && (replica < 0 || r < replica)) {
			replica, tokens = r, t
		}
	}
	return replica, tokens, replica >= 0
}

// DonorFor returns the replica (any lifecycle state — draining donors
// still ship their pins) holding more of the session's prefix than
// atLeast but less than the full prompt, preferring most tokens then
// lowest ID: the indexed replacement for the migration donor scan.
func (x *Index) DonorFor(session, exclude, atLeast, below int) (replica, tokens int, ok bool) {
	replica, tokens = -1, atLeast
	for _, h := range x.sessions[session] {
		r, t := int(h.replica), int(h.tokens)
		// t >= below: the prompt already covers the pin, so recomputing
		// beats the wire (mirrors the omniscient scan's t < PromptLen).
		if r == exclude || t >= below {
			continue
		}
		if t > tokens || (t == tokens && replica >= 0 && r < replica) {
			replica, tokens = r, t
		}
	}
	if replica < 0 {
		return -1, 0, false
	}
	return replica, tokens, true
}

// LeastQueue returns the active replica with the fewest outstanding
// requests (ties by lowest ID) as an O(1) tree-root read, or -1 with no
// active replica. Inactive replicas lose every tree match, so an inactive
// winner means the pool is empty.
func (x *Index) LeastQueue() int { return x.activeWinner(x.byQueue) }

// LeastLoad returns the capacity-weighted winner (lowest queue per pool
// page, ties by capacity then ID), or -1 with no active replica.
func (x *Index) LeastLoad() int {
	x.flushLoad()
	return x.activeWinner(x.byLoad)
}

// activeWinner maps an all-inactive tree winner to -1.
func (x *Index) activeWinner(t *tree) int {
	w := t.winner()
	if w >= 0 && !x.reps[w].active {
		return -1
	}
	return w
}

// MinQueue returns the smallest outstanding count among active replicas
// (0 with none active).
func (x *Index) MinQueue() int {
	w := x.LeastQueue()
	if w < 0 {
		return 0
	}
	return x.reps[w].queue
}

// QueueOf reports the index's view of a replica's outstanding count.
func (x *Index) QueueOf(i int) int { return x.reps[i].queue }

// FreeTokensOf reports the index's view of a replica's free KV capacity in
// tokens (digest free pages × page granularity).
func (x *Index) FreeTokensOf(i int) int {
	return x.reps[i].freePages * x.reps[i].pageTokens
}

// Fresh reports whether a replica's digest is within the staleness bound
// at the index's read clock. With no bound (per-change signalling) every
// digest is fresh.
func (x *Index) Fresh(i int) bool {
	if x.staleness == 0 {
		return true
	}
	return x.now.Sub(x.reps[i].updatedAt) <= x.staleness
}

// Note records a routing outcome: the counters feed Stats and the latest
// value is handed to the flight recorder via TakeOutcome.
func (x *Index) Note(o Outcome) {
	x.lastOutcome = o
	switch o {
	case OutcomeHit:
		x.stats.AffinityHits++
	case OutcomeMiss:
		x.stats.AffinityMisses++
	case OutcomeStale:
		x.stats.StaleFallbacks++
	case OutcomeHeadroom:
		x.stats.HeadroomFallbacks++
	case OutcomeOverload:
		x.stats.OverloadFallbacks++
	}
}

// TakeOutcome returns and clears the last recorded routing outcome.
func (x *Index) TakeOutcome() Outcome {
	o := x.lastOutcome
	x.lastOutcome = OutcomeNone
	return o
}

// PendingLen reports the in-flight publication count.
func (x *Index) PendingLen() int { return len(x.pending) - x.head }

// Stats returns a snapshot of the index's counters with the gauges filled.
func (x *Index) Stats() Stats {
	s := x.stats
	s.Pending = int64(x.PendingLen())
	s.Sessions = int64(len(x.sessions))
	return s
}
