package prefixindex

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/simclock"
)

func mustNew(t *testing.T, spec Spec, n int) *Index {
	t.Helper()
	x, err := New(spec, n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		x.SeedReplica(i, 1000, 16)
		x.SetActive(i, true)
	}
	return x
}

// pub builds an applied-immediately publication for the degenerate index.
func pub(at simclock.Time, replica int, kind EvKind, session int, val, aux int64) Pub {
	return Pub{At: at, ApplyAt: at, Replica: replica, Kind: kind,
		Session: session, Val: val, Aux: aux}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{PropagationDelay: -time.Second},
		{DropRate: -0.1},
		{DropRate: 1},
		{HeartbeatEvery: -time.Second},
		{MaxStaleness: -time.Second},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: want error, got nil", i)
		}
	}
	if err := (Spec{PropagationDelay: time.Second, DropRate: 0.5, HeartbeatEvery: time.Second}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if !(Spec{}).Sync() {
		t.Error("zero spec must be synchronous")
	}
	if (Spec{PropagationDelay: time.Second}).Sync() {
		t.Error("delayed spec must not be synchronous")
	}
}

// TestTreeMatchesLinearScan drives random digests through the tournament
// trees and cross-checks every winner against the omniscient comparator's
// linear scan — the trees must reproduce least-queue and weighted-capacity
// decisions exactly, including tie-breaks and inactive exclusion.
func TestTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 64, 129} {
		x := mustNew(t, Spec{}, n)
		caps := make([]int, n)
		for i := range caps {
			caps[i] = 500 + rng.Intn(3)*500 // ties likely
			x.SeedReplica(i, caps[i], 16)
		}
		queues := make([]int, n)
		active := make([]bool, n)
		for i := range active {
			active[i] = true
		}
		for step := 0; step < 400; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				queues[i] = rng.Intn(5) // small range forces ties
				x.Publish(pub(simclock.Time(step), i, EvLoad, -1, int64(queues[i]), 0))
			case 1:
				active[i] = !active[i]
				x.SetActive(i, active[i])
			case 2:
				queues[i] = rng.Intn(5)
				x.Publish(pub(simclock.Time(step), i, EvDigest, -1, int64(queues[i]), int64(rng.Intn(caps[i]))))
			}

			wantQ, wantL := -1, -1
			for j := 0; j < n; j++ {
				if !active[j] {
					continue
				}
				if wantQ < 0 || queues[j] < queues[wantQ] {
					wantQ = j
				}
				if wantL < 0 {
					wantL = j
					continue
				}
				lj, lb := queues[j]*caps[wantL], queues[wantL]*caps[j]
				if lj < lb || (lj == lb && caps[j] > caps[wantL]) {
					wantL = j
				}
			}
			if got := x.LeastQueue(); got != wantQ {
				t.Fatalf("n=%d step=%d: LeastQueue=%d want %d", n, step, got, wantQ)
			}
			if got := x.LeastLoad(); got != wantL {
				t.Fatalf("n=%d step=%d: LeastLoad=%d want %d", n, step, got, wantL)
			}
		}
	}
}

func TestSyncPublishAppliesImmediately(t *testing.T) {
	x := mustNew(t, Spec{}, 4)
	x.Publish(pub(0, 2, EvPin, 9, 512, 0))
	if r, tok, ok := x.HolderFor(9); !ok || r != 2 || tok != 512 {
		t.Fatalf("HolderFor = (%d, %d, %v), want (2, 512, true)", r, tok, ok)
	}
	x.Publish(pub(0, 2, EvPin, 9, 0, 0))
	if _, _, ok := x.HolderFor(9); ok {
		t.Fatal("evicted pin still indexed in sync mode")
	}
	if x.PendingLen() != 0 {
		t.Fatalf("sync mode left %d pending", x.PendingLen())
	}
}

func TestPropagationDelay(t *testing.T) {
	d := 100 * time.Millisecond
	x := mustNew(t, Spec{PropagationDelay: d}, 4)
	at := simclock.FromSeconds(1)
	x.AdvanceTo(at)
	x.Publish(Pub{At: at, ApplyAt: at.Add(d), Replica: 1, Kind: EvPin, Session: 7, Val: 256})
	if _, _, ok := x.HolderFor(7); ok {
		t.Fatal("pin visible before the propagation delay elapsed")
	}
	x.AdvanceTo(at.Add(d - 1))
	if _, _, ok := x.HolderFor(7); ok {
		t.Fatal("pin visible one tick early")
	}
	x.AdvanceTo(at.Add(d))
	if r, tok, ok := x.HolderFor(7); !ok || r != 1 || tok != 256 {
		t.Fatalf("HolderFor after delay = (%d, %d, %v), want (1, 256, true)", r, tok, ok)
	}
}

// TestStalePositiveAfterDroppedEvict covers the first staleness edge case:
// a pin's evict event is lost in flight, so the index keeps reporting a
// holder whose pin is gone. The index must keep serving the stale positive
// deterministically (the routed replica simply misses and recomputes —
// asserted at cluster level) rather than wedging or mutating.
func TestStalePositiveAfterDroppedEvict(t *testing.T) {
	x := mustNew(t, Spec{DropRate: 0.5}, 4)
	x.Publish(pub(0, 3, EvPin, 5, 1024, 0))
	evict := pub(1, 3, EvPin, 5, 0, 0)
	evict.Dropped = true
	x.Publish(evict)
	x.AdvanceTo(simclock.FromSeconds(100))
	if r, tok, ok := x.HolderFor(5); !ok || r != 3 || tok != 1024 {
		t.Fatalf("stale positive = (%d, %d, %v), want the dropped-evict holder (3, 1024, true)", r, tok, ok)
	}
	s := x.Stats()
	if s.Published != 2 || s.Dropped != 1 || s.Applied != 1 {
		t.Fatalf("stats = %+v, want Published=2 Dropped=1 Applied=1", s)
	}
	// A later pin event for the session self-heals the entry.
	x.Publish(pub(simclock.FromSeconds(100), 3, EvPin, 5, 0, 0))
	if _, _, ok := x.HolderFor(5); ok {
		t.Fatal("holder survived a subsequent applied evict")
	}
}

// TestMigrationDualHolder covers the second staleness edge case: a pin
// migrates between replicas and the new holder's pin event lands while the
// old holder's evict event is still in flight. Both replicas are indexed
// through the window — HolderFor must pick deterministically (most tokens,
// then lowest ID) — and the old holder drops out when the evict applies.
func TestMigrationDualHolder(t *testing.T) {
	d := time.Second
	x := mustNew(t, Spec{PropagationDelay: d}, 4)
	t0 := simclock.FromSeconds(1)
	x.Publish(Pub{At: t0, ApplyAt: t0.Add(d), Replica: 2, Kind: EvPin, Session: 8, Val: 640})
	x.AdvanceTo(t0.Add(d))

	// Migration completes on replica 0 at t1; its pin event beats the
	// donor's evict (emitted a beat later, e.g. batched with drain
	// accounting) to the gateway.
	t1 := simclock.FromSeconds(5)
	x.Publish(Pub{At: t1, ApplyAt: t1.Add(d), Replica: 0, Kind: EvPin, Session: 8, Val: 640})
	t2 := simclock.FromSeconds(6)
	x.Publish(Pub{At: t2, ApplyAt: t2.Add(d), Replica: 2, Kind: EvPin, Session: 8, Val: 0})

	x.AdvanceTo(t1.Add(d))
	if len(x.sessions[8]) != 2 {
		t.Fatalf("want both holders indexed mid-migration, have %d", len(x.sessions[8]))
	}
	if r, tok, ok := x.HolderFor(8); !ok || r != 0 || tok != 640 {
		t.Fatalf("dual-holder pick = (%d, %d, %v), want lowest-ID holder (0, 640, true)", r, tok, ok)
	}
	x.AdvanceTo(t2.Add(d))
	if len(x.sessions[8]) != 1 {
		t.Fatalf("evict landed but %d holders remain", len(x.sessions[8]))
	}
	if r, _, ok := x.HolderFor(8); !ok || r != 0 {
		t.Fatalf("post-migration holder = %d, want 0", r)
	}
}

func TestHolderForPrefersTokensThenID(t *testing.T) {
	x := mustNew(t, Spec{}, 4)
	x.Publish(pub(0, 3, EvPin, 4, 300, 0))
	x.Publish(pub(0, 1, EvPin, 4, 200, 0))
	if r, _, _ := x.HolderFor(4); r != 3 {
		t.Fatalf("want max-token holder 3, got %d", r)
	}
	x.Publish(pub(0, 1, EvPin, 4, 300, 0))
	if r, _, _ := x.HolderFor(4); r != 1 {
		t.Fatalf("want lowest-ID tie-break 1, got %d", r)
	}
	x.SetActive(1, false)
	if r, _, _ := x.HolderFor(4); r != 3 {
		t.Fatalf("inactive holder must not win; got %d want 3", r)
	}
	x.SetActive(3, false)
	if _, _, ok := x.HolderFor(4); ok {
		t.Fatal("all holders inactive but HolderFor reported one")
	}
}

func TestDonorFor(t *testing.T) {
	x := mustNew(t, Spec{}, 4)
	x.Publish(pub(0, 0, EvPin, 6, 400, 0))
	x.Publish(pub(0, 2, EvPin, 6, 700, 0))
	// Draining/inactive replicas still donate.
	x.SetActive(2, false)
	if r, tok, ok := x.DonorFor(6, 1, 0, 1000); !ok || r != 2 || tok != 700 {
		t.Fatalf("DonorFor = (%d, %d, %v), want (2, 700, true)", r, tok, ok)
	}
	// atLeast excludes donors no better than the routed replica already is.
	if _, _, ok := x.DonorFor(6, 1, 700, 1000); ok {
		t.Fatal("donor accepted at atLeast boundary; comparison must be strict")
	}
	// below excludes pins the prompt already covers.
	if r, _, ok := x.DonorFor(6, 1, 0, 700); !ok || r != 0 {
		t.Fatalf("want fallback donor 0 when 700-token pin is excluded, got (%d, %v)", r, ok)
	}
	// The routed replica never donates to itself.
	if _, _, ok := x.DonorFor(6, 2, 400, 1000); ok {
		t.Fatal("excluded replica returned as donor")
	}
}

func TestFreshness(t *testing.T) {
	hb := 2 * time.Second
	x := mustNew(t, Spec{HeartbeatEvery: hb, PropagationDelay: time.Second}, 2)
	// Effective staleness: 3*hb + delay = 7s.
	at := simclock.FromSeconds(10)
	x.Publish(Pub{At: at, ApplyAt: at.Add(time.Second), Replica: 0, Kind: EvDigest, Val: 3, Aux: 100})
	x.AdvanceTo(at.Add(time.Second))
	if !x.Fresh(0) {
		t.Fatal("fresh digest reported stale")
	}
	x.AdvanceTo(at.Add(7 * time.Second))
	if !x.Fresh(0) {
		t.Fatal("digest at the staleness boundary must still be fresh")
	}
	x.AdvanceTo(at.Add(7*time.Second + 1))
	if x.Fresh(0) {
		t.Fatal("digest past the staleness bound reported fresh")
	}
	if x.QueueOf(0) != 3 || x.FreeTokensOf(0) != 100*16 {
		t.Fatalf("digest payload lost: queue=%d freeTokens=%d", x.QueueOf(0), x.FreeTokensOf(0))
	}

	// Per-change mode has no staleness bound.
	y := mustNew(t, Spec{}, 2)
	y.AdvanceTo(simclock.FromSeconds(1e6))
	if !y.Fresh(1) {
		t.Fatal("per-change signalling must never go stale")
	}
}

func TestDropDeterministic(t *testing.T) {
	for seq := uint64(0); seq < 64; seq++ {
		for rep := 0; rep < 4; rep++ {
			a := Drop(7, rep, seq, 0.3)
			b := Drop(7, rep, seq, 0.3)
			if a != b {
				t.Fatalf("Drop(7, %d, %d) nondeterministic", rep, seq)
			}
			if Drop(7, rep, seq, 0) {
				t.Fatal("rate 0 dropped an event")
			}
		}
	}
	dropped := 0
	const trials = 20000
	for seq := uint64(0); seq < trials; seq++ {
		if Drop(7, 1, seq, 0.3) {
			dropped++
		}
	}
	got := float64(dropped) / trials
	if got < 0.25 || got > 0.35 {
		t.Fatalf("drop rate %v far from configured 0.3", got)
	}
}

func TestOutcomeCounters(t *testing.T) {
	x := mustNew(t, Spec{}, 2)
	for _, o := range []Outcome{OutcomeHit, OutcomeMiss, OutcomeStale, OutcomeHeadroom, OutcomeOverload} {
		x.Note(o)
		if got := x.TakeOutcome(); got != o {
			t.Fatalf("TakeOutcome = %v, want %v", got, o)
		}
		if got := x.TakeOutcome(); got != OutcomeNone {
			t.Fatalf("TakeOutcome not cleared: %v", got)
		}
	}
	s := x.Stats()
	if s.AffinityHits != 1 || s.AffinityMisses != 1 || s.StaleFallbacks != 1 ||
		s.HeadroomFallbacks != 1 || s.OverloadFallbacks != 1 {
		t.Fatalf("outcome counters = %+v", s)
	}
	if !OutcomeMiss.Fallback() || OutcomeHit.Fallback() || OutcomeNone.Fallback() {
		t.Fatal("Fallback classification wrong")
	}
}
