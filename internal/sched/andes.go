package sched

import (
	"math"
	"sort"
	"time"

	"repro/internal/request"
	"repro/internal/simclock"
)

// Andes approximates the Andes QoE-aware scheduler (Liu et al.), the
// paper's strongest baseline, as the paper itself implemented it for
// benchmarking: preemptive priority scheduling driven by per-request QoE
// urgency, with recompute-based preemption (evicted KV is discarded and
// rebuilt on resume) and no coordination with the memory manager.
//
// Each quantum it scores every request by expected QoE loss if left
// unserved — starved newcomers and streams with nearly empty buffers score
// high, streams with fat buffers score low — then selects the
// highest-scoring subset that fits GPU memory, preempting running requests
// that fall out of the subset. Because preemption discards KV, each
// context switch costs a full recompute, which is precisely the
// inefficiency TokenFlow's hierarchical memory manager removes.
type Andes struct {
	// Quantum is the rescheduling period.
	Quantum time.Duration

	// TTFTTarget is the responsiveness SLO; waiting requests gain urgency
	// as they approach and exceed it (the 1.3s threshold of §2.2).
	TTFTTarget time.Duration

	// BufferHorizon is the playback depth (in seconds of client
	// consumption) Andes tries to maintain per stream; running requests
	// with more buffered than this are preemption candidates.
	BufferHorizon float64

	// ProtectSeconds guards streams whose buffer is below this many
	// seconds from preemption (preempting them would stall playback
	// within the quantum).
	ProtectSeconds float64

	lastDecision simclock.Time
	decided      bool
}

// NewAndes returns the Andes baseline with the defaults used in the
// paper's comparisons.
func NewAndes() *Andes {
	return &Andes{
		Quantum:        time.Second,
		TTFTTarget:     1300 * time.Millisecond,
		BufferHorizon:  4.0,
		ProtectSeconds: 2.0,
	}
}

// Name implements Scheduler.
func (a *Andes) Name() string { return "andes" }

// PrefillChunkTokens implements Scheduler.
func (a *Andes) PrefillChunkTokens() int { return 0 }

// score is the expected QoE loss rate of leaving a request unserved.
func (a *Andes) score(v *View, r *request.Request, running bool) float64 {
	if r.Generated == 0 {
		// Not yet responsive: urgency grows with queueing relative to the
		// TTFT target.
		wait := v.Now.Sub(r.Arrival).Seconds()
		return 2 + wait/a.TTFTTarget.Seconds()
	}
	// Streaming: urgency decays exponentially with buffered playback
	// seconds — an empty buffer stalls within 1/r seconds.
	buf := r.BufferSeconds()
	s := 2 * math.Exp(-buf/a.BufferHorizon)
	if running {
		// Mild stickiness: switching costs a recompute, so prefer keeping
		// a running request over resuming an equal-urgency preempted one.
		s *= 1.1
	}
	return s
}

// NextDecisionTime implements Waker: between quanta Decide only runs the
// FCFS admit-only pass, so absent other events the next decision change is
// the full reschedule at quantum expiry.
func (a *Andes) NextDecisionTime(now simclock.Time) simclock.Time {
	if !a.decided {
		return simclock.Forever
	}
	return a.lastDecision.Add(a.Quantum)
}

// Decide implements Scheduler.
func (a *Andes) Decide(v *View) Decision {
	if a.decided && v.Now.Sub(a.lastDecision) < a.Quantum {
		// Between quanta: only admit into clearly free memory, FCFS.
		return a.admitOnly(v)
	}
	a.lastDecision = v.Now
	a.decided = true

	type cand struct {
		req     *request.Request
		score   float64
		tokens  int
		running bool
	}
	var cands []cand
	for _, r := range v.Running {
		cands = append(cands, cand{r, a.score(v, r, true), r.ContextLen() + r.RemainingOutput(), true})
	}
	for _, r := range v.Preempted {
		cands = append(cands, cand{r, a.score(v, r, false), r.PromptLen + r.Generated + r.RemainingOutput(), false})
	}
	for _, r := range v.Waiting {
		cands = append(cands, cand{r, a.score(v, r, false), r.FullContextLen(), false})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })

	// Knapsack-greedy: pick by score while the KV pool fits the selected
	// contexts (backlog claims included) and the batch cap has slots.
	budget := v.TotalTokens - v.BacklogTokens()
	slots := 1 << 30
	if v.MaxBatch > 0 {
		slots = v.MaxBatch - len(v.Loading) - len(v.PrefillBacklog)
	}
	selected := make(map[int]bool)
	for _, c := range cands {
		if c.tokens > budget || slots <= 0 {
			continue
		}
		selected[c.req.ID] = true
		budget -= c.tokens
		slots--
	}

	var d Decision
	for _, r := range v.Running {
		if selected[r.ID] {
			continue
		}
		if !r.PrefillDone() || r.BufferSeconds() < a.ProtectSeconds {
			continue // never strand a stream mid-prefill or near-empty
		}
		d.Preempt = append(d.Preempt, r)
	}
	for _, c := range cands {
		if c.running || !selected[c.req.ID] {
			continue
		}
		// Andes preemption is recompute-based: no host copy exists.
		d.Admit = append(d.Admit, Admission{Req: c.req, Mode: ResumeRecompute})
	}
	return d
}

// admitOnly performs conservative FCFS admission between quanta.
func (a *Andes) admitOnly(v *View) Decision {
	var d Decision
	avail := v.FreeTokens - v.BacklogTokens()
	slots := v.SlotsFree()
	for _, r := range v.Waiting {
		if r.PromptLen > avail || slots <= 0 {
			break
		}
		d.Admit = append(d.Admit, Admission{Req: r})
		avail -= r.PromptLen
		slots--
	}
	return d
}
