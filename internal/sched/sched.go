// Package sched defines the scheduling surface of the serving engine and
// implements the paper's baseline schedulers: SGLang's conservative FCFS
// with prefill priority, SGLang with chunked prefill, and Andes-style
// QoE-aware preemptive scheduling with recompute-based preemption (the
// baseline implementation described in §6 of the paper).
//
// The TokenFlow scheduler itself — the paper's primary contribution — lives
// in internal/core and implements the same Scheduler interface.
package sched

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/kvcache"
	"repro/internal/request"
	"repro/internal/simclock"
)

// View is the engine state a scheduler observes at an iteration boundary.
// Slices are owned by the engine; schedulers must not mutate them.
type View struct {
	Now simclock.Time

	// Waiting holds queued requests that were never admitted, FIFO by
	// arrival. PrefillBacklog holds requests already admitted and waiting
	// for prefill compute (they hold no memory yet). Running requests are
	// resident and decoding. Preempted requests wait off-device for
	// resumption. Loading requests have a resume transfer in flight.
	Waiting        []*request.Request
	PrefillBacklog []*request.Request
	Running        []*request.Request
	Preempted      []*request.Request
	Loading        []*request.Request

	// FreeTokens and TotalTokens describe the KV pool in token units.
	FreeTokens  int
	TotalTokens int
	PageTokens  int

	// MaxBatch is the engine's concurrent-decode cap (the B of the §3.3
	// formulation); 0 means unbounded.
	MaxBatch int

	// Mem exposes residency and transfer-latency estimates; Cost predicts
	// iteration latencies; AvgIterTime is the profiled recent decode
	// iteration latency (the sliding-window estimate of §4.2.3).
	Mem         *kvcache.Manager
	Cost        gpu.CostModel
	AvgIterTime time.Duration

	// AvgPrefillPerToken is the profiled per-token prefill latency used to
	// estimate recomputation cost (§4.2.3).
	AvgPrefillPerToken time.Duration
}

// SlotsFree reports how many more requests can enter service before the
// engine's concurrency cap is reached; a very large number when MaxBatch
// is unbounded.
func (v *View) SlotsFree() int {
	if v.MaxBatch <= 0 {
		return 1 << 30
	}
	n := v.MaxBatch - len(v.Running) - len(v.Loading) - len(v.PrefillBacklog)
	if n < 0 {
		n = 0
	}
	return n
}

// BacklogTokens reports the context tokens the prefill backlog will claim.
func (v *View) BacklogTokens() int {
	n := 0
	for _, r := range v.PrefillBacklog {
		n += r.ContextLen() + r.PromptLen - r.PrefilledTokens
	}
	return n
}

// RecomputeEstimate predicts the prefill time to rebuild a request's
// context from scratch using the profiled per-token latency.
func (v *View) RecomputeEstimate(r *request.Request) time.Duration {
	tokens := r.PromptLen + r.Generated
	if v.AvgPrefillPerToken > 0 {
		return time.Duration(tokens) * v.AvgPrefillPerToken
	}
	return v.Cost.PrefillTime(tokens)
}

// ResumeMode selects how a preempted request re-enters the device.
type ResumeMode int

const (
	// ResumeLoad transfers the host KV copy back over PCIe.
	ResumeLoad ResumeMode = iota
	// ResumeRecompute rebuilds the KV cache with a fresh prefill over the
	// prompt plus already-generated tokens.
	ResumeRecompute
)

func (m ResumeMode) String() string {
	if m == ResumeLoad {
		return "load"
	}
	return "recompute"
}

// Admission is one request entering service: a fresh prefill for waiting
// requests, or a resume (with the chosen mode) for preempted ones.
type Admission struct {
	Req  *request.Request
	Mode ResumeMode
}

// Decision is a scheduler's output for one boundary. The engine applies
// preemptions first, then admissions in order, skipping any that no longer
// fit.
type Decision struct {
	Admit   []Admission
	Preempt []*request.Request
}

// Scheduler makes admission/preemption decisions at iteration boundaries.
type Scheduler interface {
	// Name identifies the scheduler in reports ("sglang", "andes", ...).
	Name() string

	// Decide inspects the view and returns the scheduling decision.
	Decide(v *View) Decision

	// PrefillChunkTokens bounds the prompt tokens processed per iteration
	// when mixing prefill with decode (chunked prefill); zero selects
	// unchunked prefill-priority iterations.
	PrefillChunkTokens() int
}

// Waker is an optional Scheduler extension for quantum-gated policies. The
// engine is event-driven: an idle engine with outstanding work retries a
// declined decision only when some state changes (a transfer completes, KV
// reclaim drains, an iteration finishes) — never on a polling interval.
// The one retry trigger no callback covers is the passage of time itself:
// a scheduler whose Decide is gated on a rescheduling quantum may return a
// different answer at quantum expiry with no other state change. Such
// schedulers implement Waker, and the engine schedules exactly one wakeup
// at the reported instant.
type Waker interface {
	// NextDecisionTime reports the next virtual time at which Decide's
	// answer could change purely because time passed (typically the end of
	// the current rescheduling quantum), or Forever when only a state
	// change can alter it. Instants at or before now are treated as
	// Forever: Decide has already run at now, so an immediate retry cannot
	// differ.
	NextDecisionTime(now simclock.Time) simclock.Time
}
