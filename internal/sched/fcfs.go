package sched

// FCFS is the SGLang baseline: conservative first-come-first-served
// admission with prefill priority and no proactive preemption. Requests
// are admitted while their prompt fits the free KV pool (accounting for
// the prefill backlog's pending claims); memory exhaustion during decode
// is handled reactively by the engine's OOM path, exactly the behaviour
// the paper's §2.3 micro-benchmark exhibits.
//
// With ChunkTokens > 0 it becomes the "SGLang (chunked)" baseline:
// admission is identical but prefill is split into chunks that ride along
// decode iterations (Sarathi-style), trading TTFT for smoother decode.
type FCFS struct {
	// ChunkTokens bounds prompt tokens per mixed iteration; 0 disables
	// chunking.
	ChunkTokens int

	// Headroom reserves a fraction of the pool at admission time so that
	// running requests have room to grow before the reactive OOM path
	// kicks in (SGLang's new-token ratio reservation).
	Headroom float64
}

// NewSGLang returns the unchunked SGLang baseline.
func NewSGLang() *FCFS { return &FCFS{Headroom: 0.05} }

// NewSGLangChunked returns the chunked-prefill SGLang baseline.
func NewSGLangChunked(chunkTokens int) *FCFS {
	if chunkTokens <= 0 {
		chunkTokens = 512
	}
	return &FCFS{ChunkTokens: chunkTokens, Headroom: 0.05}
}

// Name implements Scheduler.
func (f *FCFS) Name() string {
	if f.ChunkTokens > 0 {
		return "sglang-chunked"
	}
	return "sglang"
}

// PrefillChunkTokens implements Scheduler.
func (f *FCFS) PrefillChunkTokens() int { return f.ChunkTokens }

// Decide implements Scheduler: admit waiting requests FIFO while their
// prompts fit, and resume preempted requests (which the engine's reactive
// OOM path produced) before fresh arrivals, preferring a host-copy load
// when one exists.
func (f *FCFS) Decide(v *View) Decision {
	var d Decision
	avail := v.FreeTokens - v.BacklogTokens() - int(f.Headroom*float64(v.TotalTokens))
	slots := v.SlotsFree()

	// Victims of reactive eviction resume first (FCFS by arrival among
	// them), otherwise head-of-line blocking would starve them forever.
	for _, r := range v.Preempted {
		need := r.PromptLen + r.Generated
		if need > avail || slots <= 0 {
			break
		}
		mode := ResumeRecompute
		if v.Mem != nil && v.Mem.HostBytes(r) > 0 {
			mode = ResumeLoad
		}
		d.Admit = append(d.Admit, Admission{Req: r, Mode: mode})
		avail -= need
		slots--
	}
	for _, r := range v.Waiting {
		if r.PromptLen > avail || slots <= 0 {
			break // strict FCFS: do not skip the head of the queue
		}
		d.Admit = append(d.Admit, Admission{Req: r})
		avail -= r.PromptLen
		slots--
	}
	return d
}
