package sched

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/request"
	"repro/internal/simclock"
)

func testView(t *testing.T, now simclock.Time) *View {
	t.Helper()
	cost, err := gpu.NewCostModel(gpu.H200, model.Llama3_8B)
	if err != nil {
		t.Fatal(err)
	}
	return &View{
		Now:         now,
		FreeTokens:  10_000,
		TotalTokens: 20_000,
		PageTokens:  16,
		Cost:        cost,
		AvgIterTime: 20 * time.Millisecond,
	}
}

func waiting(id int, arrival simclock.Time, prompt int) *request.Request {
	return request.New(id, arrival, prompt, 512, 20)
}

func TestFCFSNames(t *testing.T) {
	if NewSGLang().Name() != "sglang" {
		t.Error("plain name")
	}
	if NewSGLangChunked(0).Name() != "sglang-chunked" {
		t.Error("chunked name")
	}
	if NewSGLangChunked(0).PrefillChunkTokens() != 512 {
		t.Error("default chunk should be 512")
	}
	if NewSGLangChunked(256).PrefillChunkTokens() != 256 {
		t.Error("explicit chunk")
	}
	if NewSGLang().PrefillChunkTokens() != 0 {
		t.Error("plain SGLang is unchunked")
	}
}

func TestFCFSAdmitsInOrderUntilFull(t *testing.T) {
	f := NewSGLang()
	v := testView(t, 0)
	v.Waiting = []*request.Request{
		waiting(1, 0, 4000),
		waiting(2, 0, 4000),
		waiting(3, 0, 4000),
	}
	d := f.Decide(v)
	// Headroom 5% of 20000 = 1000; avail = 9000 -> two 4000-token prompts.
	if len(d.Admit) != 2 || d.Admit[0].Req.ID != 1 || d.Admit[1].Req.ID != 2 {
		t.Fatalf("admit = %v", d.Admit)
	}
	if len(d.Preempt) != 0 {
		t.Error("FCFS never preempts")
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	// The defining FCFS pathology: a huge head request blocks small ones.
	f := NewSGLang()
	v := testView(t, 0)
	v.Waiting = []*request.Request{
		waiting(1, 0, 50_000), // can never fit
		waiting(2, 0, 100),
	}
	d := f.Decide(v)
	if len(d.Admit) != 0 {
		t.Errorf("strict FCFS must not skip the head: %v", d.Admit)
	}
}

func TestFCFSAccountsBacklog(t *testing.T) {
	f := NewSGLang()
	v := testView(t, 0)
	v.PrefillBacklog = []*request.Request{waiting(9, 0, 8000)}
	v.Waiting = []*request.Request{waiting(1, 0, 4000)}
	d := f.Decide(v)
	// avail = 10000 - 8000 - 1000 = 1000 < 4000.
	if len(d.Admit) != 0 {
		t.Errorf("backlog claims should block admission: %v", d.Admit)
	}
}

func TestFCFSResumesEvictedFirst(t *testing.T) {
	f := NewSGLang()
	v := testView(t, simclock.FromSeconds(1))
	pre := waiting(5, 0, 500)
	pre.State = request.StatePreempted
	v.Preempted = []*request.Request{pre}
	v.Waiting = []*request.Request{waiting(6, 0, 500)}
	d := f.Decide(v)
	if len(d.Admit) != 2 || d.Admit[0].Req.ID != 5 {
		t.Fatalf("preempted request should resume first: %v", d.Admit)
	}
	if d.Admit[0].Mode != ResumeRecompute {
		t.Error("without a host copy the resume must recompute")
	}
}

func TestViewBacklogTokens(t *testing.T) {
	v := testView(t, 0)
	r := waiting(1, 0, 1000)
	v.PrefillBacklog = []*request.Request{r}
	if got := v.BacklogTokens(); got != 1000 {
		t.Errorf("backlog tokens = %d", got)
	}
	// Partially prefilled: context 256, remaining prompt 744.
	r.PrefilledTokens = 256
	if got := v.BacklogTokens(); got != 1000 {
		t.Errorf("backlog tokens with partial prefill = %d, want 1000 (256 held + 744 pending)", got)
	}
}

func TestViewRecomputeEstimate(t *testing.T) {
	v := testView(t, 0)
	r := waiting(1, 0, 1000)
	clock := simclock.New()
	r.PrefilledTokens = 1000
	r.DeliverTokens(clock, 0, 200)
	r.CancelConsumption(clock)
	// Without a profiled per-token latency, falls back to the cost model.
	want := v.Cost.PrefillTime(1200)
	if got := v.RecomputeEstimate(r); got != want {
		t.Errorf("estimate = %v, want %v", got, want)
	}
	v.AvgPrefillPerToken = 50 * time.Microsecond
	if got := v.RecomputeEstimate(r); got != 1200*50*time.Microsecond {
		t.Errorf("profiled estimate = %v", got)
	}
}

func TestResumeModeString(t *testing.T) {
	if ResumeLoad.String() != "load" || ResumeRecompute.String() != "recompute" {
		t.Error("mode strings")
	}
}

func TestAndesPrefersStarvedOverFat(t *testing.T) {
	a := NewAndes()
	v := testView(t, simclock.FromSeconds(10))
	clock := simclock.New()
	fat := request.New(1, 0, 256, 2000, 20)
	fat.State = request.StateRunning
	fat.PrefilledTokens = 256
	fat.DeliverTokens(clock, 0, 400) // ~20s of buffer
	fat.CancelConsumption(clock)
	v.Running = []*request.Request{fat}
	// Memory only fits one full request.
	v.TotalTokens = 3000
	v.FreeTokens = 3000 - fat.ContextLen()
	starved := request.New(2, simclock.FromSeconds(5), 400, 600, 20)
	v.Waiting = []*request.Request{starved}
	d := a.Decide(v)
	if len(d.Preempt) != 1 || d.Preempt[0].ID != 1 {
		t.Fatalf("Andes should preempt the fat stream: %+v", d.Preempt)
	}
	if len(d.Admit) != 1 || d.Admit[0].Req.ID != 2 || d.Admit[0].Mode != ResumeRecompute {
		t.Fatalf("Andes should admit the starved request via recompute: %+v", d.Admit)
	}
}

func TestAndesProtectsThinBuffers(t *testing.T) {
	a := NewAndes()
	v := testView(t, simclock.FromSeconds(10))
	clock := simclock.New()
	thin := request.New(1, 0, 256, 2000, 20)
	thin.State = request.StateRunning
	thin.PrefilledTokens = 256
	thin.DeliverTokens(clock, 0, 20) // ~1s of buffer < 2s protection
	thin.CancelConsumption(clock)
	v.Running = []*request.Request{thin}
	v.TotalTokens = 3000
	v.FreeTokens = 3000 - thin.ContextLen()
	v.Waiting = []*request.Request{request.New(2, simclock.FromSeconds(5), 2600, 600, 20)}
	d := a.Decide(v)
	if len(d.Preempt) != 0 {
		t.Errorf("thin buffer must not be preempted: %+v", d.Preempt)
	}
}

func TestAndesQuantumGating(t *testing.T) {
	a := NewAndes()
	v := testView(t, simclock.FromSeconds(1))
	v.Waiting = []*request.Request{waiting(1, 0, 500)}
	d1 := a.Decide(v)
	if len(d1.Admit) != 1 {
		t.Fatal("first decide should admit")
	}
	// 100ms later with a preemption-worthy situation: between quanta only
	// plain admission happens, never preemption.
	clock := simclock.New()
	fat := request.New(3, 0, 256, 2000, 20)
	fat.State = request.StateRunning
	fat.PrefilledTokens = 256
	fat.DeliverTokens(clock, 0, 400)
	fat.CancelConsumption(clock)
	v2 := testView(t, simclock.FromSeconds(1.1))
	v2.Running = []*request.Request{fat}
	v2.Waiting = []*request.Request{waiting(4, simclock.FromSeconds(1), 500)}
	d2 := a.Decide(v2)
	if len(d2.Preempt) != 0 {
		t.Error("no preemption between quanta")
	}
	if len(d2.Admit) != 1 {
		t.Error("free-memory admission should still happen between quanta")
	}
}

func TestAndesScoreOrdering(t *testing.T) {
	a := NewAndes()
	v := testView(t, simclock.FromSeconds(30))
	longWait := request.New(1, 0, 256, 512, 20)
	shortWait := request.New(2, simclock.FromSeconds(29), 256, 512, 20)
	if a.score(v, longWait, false) <= a.score(v, shortWait, false) {
		t.Error("longer-queued request should score higher")
	}
}
