// Package model describes the transformer models served in the paper's
// evaluation and the KV-cache geometry they imply. The serving simulator
// only needs a model's aggregate compute cost (parameter count) and its
// per-token KV footprint; both follow directly from the architecture
// hyperparameters published for each model.
package model

import "fmt"

// Spec captures the architecture hyperparameters of a decoder-only
// transformer that determine serving cost: total parameters drive FLOPs and
// weight-read bytes, and the attention geometry drives KV-cache bytes per
// token.
type Spec struct {
	Name string

	// Params is the total parameter count.
	Params int64

	// Layers is the number of transformer blocks.
	Layers int

	// Hidden is the model (embedding) dimension.
	Hidden int

	// Heads is the number of attention heads.
	Heads int

	// KVHeads is the number of key/value heads (< Heads under grouped-query
	// attention, which all evaluated models use).
	KVHeads int

	// HeadDim is the per-head dimension; Hidden = Heads * HeadDim for all
	// evaluated models.
	HeadDim int

	// DTypeBytes is the bytes per element for weights and KV cache
	// (2 for fp16/bf16 serving, as in the paper).
	DTypeBytes int
}

// Validate reports an error if the spec is internally inconsistent or
// missing required fields.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("model: empty name")
	case s.Params <= 0:
		return fmt.Errorf("model %s: non-positive param count %d", s.Name, s.Params)
	case s.Layers <= 0:
		return fmt.Errorf("model %s: non-positive layer count %d", s.Name, s.Layers)
	case s.KVHeads <= 0 || s.Heads <= 0:
		return fmt.Errorf("model %s: non-positive head counts (%d heads, %d kv)", s.Name, s.Heads, s.KVHeads)
	case s.KVHeads > s.Heads:
		return fmt.Errorf("model %s: more KV heads (%d) than heads (%d)", s.Name, s.KVHeads, s.Heads)
	case s.Heads%s.KVHeads != 0:
		return fmt.Errorf("model %s: heads %d not a multiple of KV heads %d", s.Name, s.Heads, s.KVHeads)
	case s.HeadDim <= 0:
		return fmt.Errorf("model %s: non-positive head dim %d", s.Name, s.HeadDim)
	case s.DTypeBytes <= 0:
		return fmt.Errorf("model %s: non-positive dtype bytes %d", s.Name, s.DTypeBytes)
	}
	return nil
}

// KVBytesPerToken reports the KV-cache footprint of one context token:
// keys and values for every layer and KV head.
func (s Spec) KVBytesPerToken() int64 {
	return 2 * int64(s.Layers) * int64(s.KVHeads) * int64(s.HeadDim) * int64(s.DTypeBytes)
}

// WeightBytes reports the resident size of the model weights.
func (s Spec) WeightBytes() int64 {
	return s.Params * int64(s.DTypeBytes)
}

// FLOPsPerToken reports the approximate forward-pass FLOPs to process one
// token (the standard 2·N estimate for an N-parameter decoder model; KV
// reuse makes decode and prefill per-token costs comparable on this axis).
func (s Spec) FLOPsPerToken() float64 {
	return 2 * float64(s.Params)
}

func (s Spec) String() string { return s.Name }

// The model zoo used across the paper's experiments (§7.1.1). Architecture
// numbers follow the published model cards.
var (
	// Llama3_8B is Meta Llama 3 8B: 32 layers, 4096 hidden, 32 heads with
	// 8 KV heads (GQA), 128 head dim.
	Llama3_8B = Spec{
		Name:       "Llama3-8B",
		Params:     8_030_000_000,
		Layers:     32,
		Hidden:     4096,
		Heads:      32,
		KVHeads:    8,
		HeadDim:    128,
		DTypeBytes: 2,
	}

	// Qwen2_7B is Qwen2 7B: 28 layers, 3584 hidden, 28 heads with 4 KV
	// heads, 128 head dim.
	Qwen2_7B = Spec{
		Name:       "Qwen2-7B",
		Params:     7_620_000_000,
		Layers:     28,
		Hidden:     3584,
		Heads:      28,
		KVHeads:    4,
		HeadDim:    128,
		DTypeBytes: 2,
	}

	// Qwen25_7B is Qwen2.5 7B (same geometry as Qwen2 7B); Figure 13 of the
	// paper labels its A6000 experiment with this model family.
	Qwen25_7B = Spec{
		Name:       "Qwen2.5-7B",
		Params:     7_620_000_000,
		Layers:     28,
		Hidden:     3584,
		Heads:      28,
		KVHeads:    4,
		HeadDim:    128,
		DTypeBytes: 2,
	}

	// Qwen25_32B is Qwen2.5 32B: 64 layers, 5120 hidden, 40 heads with
	// 8 KV heads, 128 head dim.
	Qwen25_32B = Spec{
		Name:       "Qwen2.5-32B",
		Params:     32_760_000_000,
		Layers:     64,
		Hidden:     5120,
		Heads:      40,
		KVHeads:    8,
		HeadDim:    128,
		DTypeBytes: 2,
	}
)

// All lists every model in the zoo.
func All() []Spec {
	return []Spec{Llama3_8B, Qwen2_7B, Qwen25_7B, Qwen25_32B}
}

// ByName looks a model up by its Name field.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown model %q", name)
}
