package model

import (
	"testing"
	"testing/quick"
)

func TestZooValidates(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestKVBytesPerTokenLlama3(t *testing.T) {
	// 2 (K and V) * 32 layers * 8 kv heads * 128 head dim * 2 bytes = 131072.
	if got := Llama3_8B.KVBytesPerToken(); got != 131072 {
		t.Errorf("Llama3-8B KV bytes/token = %d, want 131072", got)
	}
}

func TestKVBytesPerTokenQwen32B(t *testing.T) {
	// 2 * 64 * 8 * 128 * 2 = 262144.
	if got := Qwen25_32B.KVBytesPerToken(); got != 262144 {
		t.Errorf("Qwen2.5-32B KV bytes/token = %d, want 262144", got)
	}
}

func TestWeightBytes(t *testing.T) {
	if got := Llama3_8B.WeightBytes(); got != 2*8_030_000_000 {
		t.Errorf("weight bytes = %d", got)
	}
}

func TestFLOPsPerToken(t *testing.T) {
	if got := Llama3_8B.FLOPsPerToken(); got != 2*8.03e9 {
		t.Errorf("flops/token = %v", got)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Qwen2.5-32B")
	if err != nil {
		t.Fatal(err)
	}
	if s.Layers != 64 {
		t.Errorf("layers = %d", s.Layers)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero params", func(s *Spec) { s.Params = 0 }},
		{"zero layers", func(s *Spec) { s.Layers = 0 }},
		{"zero kv heads", func(s *Spec) { s.KVHeads = 0 }},
		{"kv heads exceed heads", func(s *Spec) { s.KVHeads = s.Heads + 1 }},
		{"non-divisible heads", func(s *Spec) { s.KVHeads = 7 }},
		{"zero head dim", func(s *Spec) { s.HeadDim = 0 }},
		{"zero dtype", func(s *Spec) { s.DTypeBytes = 0 }},
	}
	for _, tc := range cases {
		s := Llama3_8B
		tc.mod(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestStringIsName(t *testing.T) {
	if Llama3_8B.String() != "Llama3-8B" {
		t.Errorf("String = %q", Llama3_8B.String())
	}
}

// Property: KV bytes per token scales linearly in layers and KV heads.
func TestPropertyKVScaling(t *testing.T) {
	f := func(layers, kvHeads uint8) bool {
		l := int(layers%64) + 1
		k := int(kvHeads%16) + 1
		s := Spec{Name: "x", Params: 1, Layers: l, Hidden: 128, Heads: k,
			KVHeads: k, HeadDim: 64, DTypeBytes: 2}
		want := int64(2 * l * k * 64 * 2)
		return s.KVBytesPerToken() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The larger model must have a strictly larger KV footprint and weight size;
// guards against preset typos.
func TestZooOrdering(t *testing.T) {
	if Qwen25_32B.KVBytesPerToken() <= Llama3_8B.KVBytesPerToken() {
		t.Error("Qwen2.5-32B should have larger KV footprint than Llama3-8B")
	}
	if Qwen25_32B.WeightBytes() <= Llama3_8B.WeightBytes() {
		t.Error("Qwen2.5-32B should have larger weights than Llama3-8B")
	}
}
