package request

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

func TestNewDefaults(t *testing.T) {
	r := New(7, simclock.FromSeconds(1), 128, 256, 20)
	if r.State != StateQueued {
		t.Errorf("state = %v", r.State)
	}
	if r.ContextLen() != 0 {
		t.Errorf("context before prefill = %d", r.ContextLen())
	}
	if r.FullContextLen() != 384 {
		t.Errorf("full context = %d", r.FullContextLen())
	}
	if r.BufferLen() != 0 || r.Stalled() {
		t.Error("fresh request should have empty buffer and no stall")
	}
}

func TestNewRejectsDegenerateLengths(t *testing.T) {
	for _, c := range []struct{ p, o int }{{0, 10}, {10, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(p=%d,o=%d) should panic", c.p, c.o)
				}
			}()
			New(0, 0, c.p, c.o, 10)
		}()
	}
}

func TestStateString(t *testing.T) {
	if StateQueued.String() != "queued" || StateFinished.String() != "finished" {
		t.Error("state names wrong")
	}
	if State(99).String() == "" {
		t.Error("unknown state should still format")
	}
}

func TestDeliverFirstTokenSetsTTFT(t *testing.T) {
	clock := simclock.New()
	r := New(0, simclock.FromSeconds(1), 10, 5, 10)
	clock.RunUntil(simclock.FromSeconds(3))
	r.DeliverTokens(clock, clock.Now(), 1)
	if r.FirstTokenAt != simclock.FromSeconds(3) {
		t.Errorf("first token at %v", r.FirstTokenAt)
	}
	if r.TTFT() != 2*time.Second {
		t.Errorf("TTFT = %v", r.TTFT())
	}
}

func TestConsumptionDrainsAtRate(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 10, 10) // reads 10 tok/s
	// Deliver all 10 tokens at t=0.
	r.DeliverTokens(clock, 0, 10)
	if r.Consumed != 1 {
		t.Fatalf("first token consumed immediately at TTFT; consumed=%d", r.Consumed)
	}
	clock.RunUntil(simclock.FromSeconds(0.45))
	// At 0.45s: tokens at t=0, .1, .2, .3, .4 -> 5 consumed.
	if r.Consumed != 5 {
		t.Errorf("consumed = %d at 0.45s, want 5", r.Consumed)
	}
	clock.Run()
	if !r.ConsumptionDone() {
		t.Error("all tokens should eventually be consumed")
	}
	if r.RebufferTotal != 0 {
		t.Errorf("no stalls expected, got %v", r.RebufferTotal)
	}
}

func TestStallAccounting(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 3, 10) // wants a token every 100ms
	r.DeliverTokens(clock, 0, 1)
	// Client consumed token 1 at t=0, wants token 2 at t=0.1; we deliver it
	// at t=0.5 -> 400ms stall.
	clock.RunUntil(simclock.FromSeconds(0.5))
	if !r.Stalled() {
		t.Fatal("client should be stalled waiting for token 2")
	}
	r.DeliverTokens(clock, clock.Now(), 1)
	if r.Stalled() {
		t.Error("delivery should clear the stall")
	}
	if got := r.RebufferTotal; got != 400*time.Millisecond {
		t.Errorf("rebuffer = %v, want 400ms", got)
	}
	// Token 3 delivered late again: wants it at 0.6, arrives 0.8 -> +200ms.
	clock.RunUntil(simclock.FromSeconds(0.8))
	r.DeliverTokens(clock, clock.Now(), 1)
	clock.Run()
	if got := r.RebufferTotal; got != 600*time.Millisecond {
		t.Errorf("total rebuffer = %v, want 600ms", got)
	}
	if !r.ConsumptionDone() {
		t.Error("consumption should complete")
	}
}

func TestBufferOccupancyRecorded(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 4, 1) // very slow reader
	r.DeliverTokens(clock, 0, 2)
	r.DeliverTokens(clock, simclock.FromSeconds(0.1), 2)
	// Token 1: buffer 1 (itself). Token 2: buffer 2. Then the client
	// consumed token 1 at t=0, so tokens 3 and 4 see buffers 2 and 3.
	want := []int32{1, 2, 2, 3}
	for i, w := range want {
		if r.BufferAtGen[i] != w {
			t.Errorf("BufferAtGen[%d] = %d, want %d (all=%v)", i, r.BufferAtGen[i], w, r.BufferAtGen)
		}
	}
}

func TestInstantConsumerNeverBuffers(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 5, 0)
	if !r.InstantConsumer() {
		t.Fatal("rate 0 should be instant")
	}
	r.DeliverTokens(clock, 0, 3)
	if r.BufferLen() != 0 {
		t.Errorf("instant consumer buffer = %d", r.BufferLen())
	}
	r.DeliverTokens(clock, simclock.FromSeconds(1), 2)
	clock.Run()
	if r.BufferLen() != 0 {
		// Tokens after the first batch are drained on the next delivery...
		t.Errorf("buffer = %d after final delivery", r.BufferLen())
	}
}

func TestDeliverPastOutputLenPanics(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 2, 10)
	defer func() {
		if recover() == nil {
			t.Error("overdelivery should panic")
		}
	}()
	r.DeliverTokens(clock, 0, 3)
}

func TestDeliverZeroIsNoop(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 2, 10)
	r.DeliverTokens(clock, 0, 0)
	if r.Generated != 0 {
		t.Error("zero delivery should not generate")
	}
}

func TestGenerationFinishSetsTimestamp(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 2, 10)
	r.DeliverTokens(clock, simclock.FromSeconds(1), 1)
	r.DeliverTokens(clock, simclock.FromSeconds(2), 1)
	if !r.GenerationDone() {
		t.Fatal("generation should be done")
	}
	if r.FinishedAt != simclock.FromSeconds(2) {
		t.Errorf("finished at %v", r.FinishedAt)
	}
}

func TestBufferSeconds(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 100, 20)
	r.DeliverTokens(clock, 0, 41)
	// 41 generated, 1 consumed immediately -> 40 buffered = 2s at 20 tok/s.
	if got := r.BufferSeconds(); got != 2.0 {
		t.Errorf("buffer seconds = %v (buffer=%d)", got, r.BufferLen())
	}
}

func TestCancelConsumption(t *testing.T) {
	clock := simclock.New()
	r := New(0, 0, 10, 10, 10)
	r.DeliverTokens(clock, 0, 5)
	r.CancelConsumption(clock)
	clock.Run()
	if r.Consumed != 1 {
		t.Errorf("consumed = %d after cancel, want 1", r.Consumed)
	}
}

// Property: however tokens are delivered over time, consumption never
// exceeds generation, buffer stays non-negative, and the client eventually
// consumes everything with rebuffer >= 0.
func TestPropertyConsumptionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := simclock.New()
		out := rng.Intn(200) + 1
		r := New(0, 0, 16, out, float64(rng.Intn(40)+5))
		now := simclock.Time(0)
		remaining := out
		for remaining > 0 {
			n := rng.Intn(remaining) + 1
			remaining -= n
			now = now.Add(time.Duration(rng.Intn(300)) * time.Millisecond)
			clock.RunUntil(now)
			r.DeliverTokens(clock, now, n)
			if r.Consumed > r.Generated || r.BufferLen() < 0 {
				return false
			}
		}
		clock.Run()
		return r.ConsumptionDone() && r.RebufferTotal >= 0 && r.Generated == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: with all tokens delivered upfront, a rate-r client finishes
// consuming L tokens in exactly (L-1)/r seconds with zero rebuffering.
func TestPropertyUpfrontDeliveryNoStall(t *testing.T) {
	f := func(lenRaw, rateRaw uint8) bool {
		l := int(lenRaw%100) + 2
		rate := float64(rateRaw%30) + 1
		clock := simclock.New()
		r := New(0, 0, 8, l, rate)
		r.DeliverTokens(clock, 0, l)
		clock.Run()
		if r.RebufferTotal != 0 || !r.ConsumptionDone() {
			return false
		}
		want := simclock.Duration(float64(l-1) / rate)
		got := clock.Now().Sub(0)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTrackerTransitions(t *testing.T) {
	tr := NewTracker()
	r1 := New(1, 0, 10, 10, 10)
	r2 := New(2, 0, 10, 10, 10)
	tr.Register(r1)
	tr.Register(r2)
	if tr.Count(StateQueued) != 2 || tr.Total() != 2 {
		t.Fatalf("counts after register: queued=%d", tr.Count(StateQueued))
	}
	tr.Transition(r1, StateRunning)
	if tr.Count(StateQueued) != 1 || tr.Count(StateRunning) != 1 {
		t.Error("transition did not move counts")
	}
	tr.Transition(r1, StateRunning) // no-op
	if tr.Count(StateRunning) != 1 {
		t.Error("self-transition should not change counts")
	}
	tr.Transition(r1, StateFinished)
	tr.Transition(r2, StateFinished)
	if !tr.FinishedAll() {
		t.Error("all finished")
	}
}

func TestTrackerSamples(t *testing.T) {
	tr := NewTracker()
	r1 := New(1, 0, 10, 10, 10)
	r2 := New(2, 0, 10, 10, 10)
	r3 := New(3, 0, 10, 10, 10)
	tr.Register(r1)
	tr.Register(r2)
	tr.Register(r3)
	tr.Transition(r1, StateRunning)
	tr.Transition(r2, StatePreempted)
	tr.Sample(simclock.FromSeconds(1))
	tr.Transition(r2, StateLoading)
	tr.Transition(r3, StateRunning)
	tr.Sample(simclock.FromSeconds(2))
	s := tr.Samples()
	if len(s) != 2 {
		t.Fatalf("samples = %d", len(s))
	}
	// Sample 1: r1 running; r2 preempted + r3 queued => queued-ish 2.
	if s[0].Running != 1 || s[0].Queued != 2 {
		t.Errorf("sample 1 = %+v", s[0])
	}
	if s[1].Running != 2 || s[1].Queued != 1 {
		t.Errorf("sample 2 = %+v", s[1])
	}
	if tr.MaxRunning() != 2 || tr.MaxQueued() != 2 {
		t.Errorf("max running=%d queued=%d", tr.MaxRunning(), tr.MaxQueued())
	}
}

func TestTrackerEmptyNotFinished(t *testing.T) {
	tr := NewTracker()
	if tr.FinishedAll() {
		t.Error("empty tracker should not report finished")
	}
}
