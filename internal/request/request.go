// Package request models the lifecycle of one streaming generation request:
// its phase transitions (queued, running, preempted, loading, finished), its
// client-side token buffer, and the client consumption process that drains
// the buffer at the request's required rate. The buffer dynamics here are
// the substrate for both the TokenFlow scheduler (buffer-aware priorities)
// and the QoS metrics (stalls, token usefulness).
package request

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// State is a request's lifecycle phase.
type State int

const (
	// StateQueued: arrived, never prefilled; waiting for admission.
	StateQueued State = iota
	// StateRunning: KV resident on GPU, member of the running batch.
	StateRunning
	// StatePreempted: previously running; KV offloaded to host memory or
	// discarded, waiting to be resumed.
	StatePreempted
	// StateLoading: resume in progress (KV transferring host-to-device or
	// recompute prefill queued).
	StateLoading
	// StateFinished: all output tokens generated.
	StateFinished
)

var stateNames = [...]string{"queued", "running", "preempted", "loading", "finished"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Request is one streaming generation request and its runtime bookkeeping.
// Fields are managed by the serving engine; schedulers read them through
// the sched.View. A Request is not safe for concurrent use: the simulator
// is single-threaded by design.
type Request struct {
	ID      int
	Arrival simclock.Time

	// PromptLen and OutputLen are the prompt size and the total number of
	// output tokens the request will generate.
	PromptLen int
	OutputLen int

	// Rate is the client's token consumption rate in tokens/second
	// (reading or listening speed). Rate <= 0 means the client consumes
	// tokens instantly (e.g. an agent), so the buffer never accumulates.
	Rate float64

	// Session and Turn identify the multi-turn conversation this request
	// belongs to (Session 0 = stateless). Turns of one session share a
	// growing prompt prefix; routers use this for KV affinity.
	Session int
	Turn    int

	// CachedPrompt is the number of leading prompt tokens whose KV was
	// already resident on the serving replica at admission (a prefix-cache
	// hit). Prefill skips computing them; memory is still allocated for the
	// full prompt. Always < PromptLen.
	CachedPrompt int

	State State

	// PrefilledTokens tracks chunked-prefill progress through the prompt.
	// The prompt is fully processed when PrefilledTokens == PromptLen.
	PrefilledTokens int

	// Generated counts output tokens produced so far; Consumed counts
	// tokens the client has read. Buffer occupancy = Generated - Consumed.
	Generated int
	Consumed  int

	// FirstTokenAt is when the first output token was generated (valid
	// once Generated > 0). FinishedAt is when the last token was generated.
	FirstTokenAt simclock.Time
	FinishedAt   simclock.Time

	// TokenTimes and BufferAtGen record, per output token, its generation
	// timestamp and the buffer occupancy immediately after it was appended
	// (the B_{i,j} of the paper's QoS definition).
	TokenTimes  []simclock.Time
	BufferAtGen []int32

	// Stall accounting: RebufferTotal accumulates time the client spent
	// waiting on an empty buffer after starting to read.
	RebufferTotal   time.Duration
	waitingForToken bool
	stallStart      simclock.Time
	consumeEvent    simclock.Handle

	// Preemptions and Resumes count context-switch cycles; LoadedResumes
	// counts resumes served from host memory (vs recompute).
	Preemptions   int
	Resumes       int
	LoadedResumes int

	// Retries counts how many times the request re-entered the gateway
	// after its serving replica crashed. Each retry resets generation
	// progress (the dead replica's partial output is gone) but keeps
	// Arrival, so TTFT stays honest about the full client wait.
	Retries int
}

// New returns a queued request. OutputLen must be at least 1.
func New(id int, arrival simclock.Time, promptLen, outputLen int, rate float64) *Request {
	r := &Request{}
	r.init(id, arrival, promptLen, outputLen, rate)
	return r
}

func (r *Request) init(id int, arrival simclock.Time, promptLen, outputLen int, rate float64) {
	if promptLen < 1 || outputLen < 1 {
		panic(fmt.Sprintf("request %d: prompt %d / output %d must be >= 1", id, promptLen, outputLen))
	}
	r.ID = id
	r.Arrival = arrival
	r.PromptLen = promptLen
	r.OutputLen = outputLen
	r.Rate = rate
	r.State = StateQueued
}

// Arena batch-allocates Requests in fixed-size slabs, cutting the
// per-arrival allocator round-trip on million-request traces. Requests
// live for the whole run (results reference them), so slots are never
// reused — the arena amortizes allocation, it does not pool. One Arena
// serves one goroutine: the cluster keeps one per shard.
type Arena struct {
	slab []Request
}

// arenaSlab is the number of Requests allocated per slab. At ~300 B per
// Request a slab is ~150 KiB: big enough to make the allocator cost per
// request negligible, small enough not to strand memory on tiny runs.
const arenaSlab = 512

// New carves a queued request out of the arena's current slab.
func (a *Arena) New(id int, arrival simclock.Time, promptLen, outputLen int, rate float64) *Request {
	if len(a.slab) == 0 {
		a.slab = make([]Request, arenaSlab)
	}
	r := &a.slab[0]
	a.slab = a.slab[1:]
	r.init(id, arrival, promptLen, outputLen, rate)
	return r
}

// ContextLen reports the tokens of KV context the request occupies when
// resident: prefilled prompt tokens plus generated output tokens.
func (r *Request) ContextLen() int { return r.PrefilledTokens + r.Generated }

// FullContextLen reports the context length at completion, used for
// capacity reservations.
func (r *Request) FullContextLen() int { return r.PromptLen + r.OutputLen }

// BufferLen reports the client-side buffer occupancy in tokens.
func (r *Request) BufferLen() int { return r.Generated - r.Consumed }

// BufferSeconds reports how long the current buffer sustains playback at
// the request's consumption rate. Infinite-rate (Rate<=0) clients always
// report zero.
func (r *Request) BufferSeconds() float64 {
	if r.Rate <= 0 {
		return 0
	}
	return float64(r.BufferLen()) / r.Rate
}

// GenerationDone reports whether all output tokens have been produced.
func (r *Request) GenerationDone() bool { return r.Generated >= r.OutputLen }

// ConsumptionDone reports whether the client has read every token.
func (r *Request) ConsumptionDone() bool { return r.Consumed >= r.OutputLen }

// PrefillDone reports whether the prompt is fully processed.
func (r *Request) PrefillDone() bool { return r.PrefilledTokens >= r.PromptLen }

// RemainingOutput reports how many output tokens are still to generate.
func (r *Request) RemainingOutput() int { return r.OutputLen - r.Generated }

// TTFT reports the time-to-first-token. It is only meaningful once the
// first token exists; callers gate on Generated > 0.
func (r *Request) TTFT() time.Duration { return r.FirstTokenAt.Sub(r.Arrival) }

// Stalled reports whether the client is currently blocked on an empty
// buffer.
func (r *Request) Stalled() bool { return r.waitingForToken }

// DeliverTokens appends n freshly generated tokens at time now, recording
// timestamps and buffer occupancies, and wakes the consumption process if
// the client was stalled. The clock drives subsequent consume events.
func (r *Request) DeliverTokens(clock *simclock.Clock, now simclock.Time, n int) {
	if n <= 0 {
		return
	}
	if r.Generated+n > r.OutputLen {
		panic(fmt.Sprintf("request %d: delivering %d tokens past output length %d (have %d)",
			r.ID, n, r.OutputLen, r.Generated))
	}
	first := r.Generated == 0
	if r.TokenTimes == nil {
		// The final sizes are known up front (one entry per output token),
		// so the per-token records are allocated exactly once at first
		// delivery — never grown — and only for requests actually served.
		r.TokenTimes = make([]simclock.Time, 0, r.OutputLen)
		r.BufferAtGen = make([]int32, 0, r.OutputLen)
	}
	for i := 0; i < n; i++ {
		r.Generated++
		r.TokenTimes = append(r.TokenTimes, now)
		r.BufferAtGen = append(r.BufferAtGen, int32(r.Generated-r.Consumed))
	}
	if first {
		r.FirstTokenAt = now
	}
	if r.Rate <= 0 {
		// Instant consumer: drain everything as it arrives.
		r.Consumed = r.Generated
	} else if first {
		r.startConsumption(clock, now)
	} else if r.waitingForToken {
		// Client was mid-stall; it reads the new token immediately.
		r.RebufferTotal += now.Sub(r.stallStart)
		r.waitingForToken = false
		r.consumeOne(clock, now)
	}
	if r.GenerationDone() {
		r.FinishedAt = now
	}
}

// startConsumption begins the client reading process at the moment the
// first token arrives (the paper's model: the user starts reading at
// t_ttft and consumes one token every 1/r seconds).
func (r *Request) startConsumption(clock *simclock.Clock, now simclock.Time) {
	r.consumeOne(clock, now)
}

// consumeOne consumes a single buffered token at now and schedules the next
// consume event 1/Rate later.
func (r *Request) consumeOne(clock *simclock.Clock, now simclock.Time) {
	r.Consumed++
	if r.ConsumptionDone() {
		return
	}
	interval := simclock.Duration(1 / r.Rate)
	r.consumeEvent = clock.After(interval, func(t simclock.Time) { r.consumeTick(clock, t) })
}

// consumeTick fires when the client wants its next token.
func (r *Request) consumeTick(clock *simclock.Clock, now simclock.Time) {
	if r.Consumed < r.Generated {
		r.consumeOne(clock, now)
		return
	}
	// Buffer empty: stall until the next delivery.
	r.waitingForToken = true
	r.stallStart = now
}

// CancelConsumption cancels any pending consume event; used when a
// simulation tears down early. The handle is generation-checked, so this
// is safe even when the event already fired and its slot was recycled.
func (r *Request) CancelConsumption(clock *simclock.Clock) {
	clock.Cancel(r.consumeEvent)
	r.consumeEvent = simclock.Handle{}
}

// InstantConsumer reports whether the request drains its buffer instantly.
func (r *Request) InstantConsumer() bool { return r.Rate <= 0 }

// ResetForRetry rewinds the request to a fresh queued state after its
// serving replica crashed: all generation progress, per-token records, and
// client-buffer state are discarded (the partial output died with the
// replica) and any pending consume event is cancelled on the clock that
// was driving it. Arrival is preserved — the retried request's TTFT spans
// the crash and the backoff, which is exactly the damage the chaos
// experiments measure — and Retries increments.
func (r *Request) ResetForRetry(clock *simclock.Clock) {
	r.CancelConsumption(clock)
	r.State = StateQueued
	r.CachedPrompt = 0
	r.PrefilledTokens = 0
	r.Generated = 0
	r.Consumed = 0
	r.FirstTokenAt = 0
	r.FinishedAt = 0
	r.TokenTimes = nil
	r.BufferAtGen = nil
	r.RebufferTotal = 0
	r.waitingForToken = false
	r.stallStart = 0
	r.Preemptions = 0
	r.Resumes = 0
	r.LoadedResumes = 0
	r.Retries++
}

func (r *Request) String() string {
	return fmt.Sprintf("req%d[%s p=%d o=%d r=%.0f gen=%d buf=%d]",
		r.ID, r.State, r.PromptLen, r.OutputLen, r.Rate, r.Generated, r.BufferLen())
}
