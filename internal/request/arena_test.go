package request

import (
	"testing"

	"repro/internal/simclock"
)

func TestArenaAllocatesValidRequests(t *testing.T) {
	var a Arena
	seen := map[*Request]bool{}
	for i := 0; i < 3*arenaSlab/2; i++ {
		r := a.New(i, simclock.FromSeconds(float64(i)), 64, 32, 20)
		if r.ID != i || r.PromptLen != 64 || r.OutputLen != 32 || r.State != StateQueued {
			t.Fatalf("arena request %d malformed: %+v", i, r)
		}
		if seen[r] {
			t.Fatalf("arena handed out request %d twice", i)
		}
		seen[r] = true
	}
}

func TestArenaNewPanicsLikeNew(t *testing.T) {
	var a Arena
	defer func() {
		if recover() == nil {
			t.Error("arena New with zero output length should panic")
		}
	}()
	a.New(1, 0, 16, 0, 20)
}

// The admit-side hot path — one arena'd request plus its full token
// delivery — must cost a bounded, slab-amortized number of allocations:
// the two exact-capacity per-token record slices, plus the amortized share
// of the slab itself. (Mirrors aibrix's BenchmarkAddRequest discipline.)
func TestRequestAdmitAllocationBound(t *testing.T) {
	var a Arena
	c := simclock.New()
	id := 0
	avg := testing.AllocsPerRun(2000, func() {
		r := a.New(id, c.Now(), 128, 32, 0)
		id++
		r.DeliverTokens(c, c.Now(), 32)
	})
	// 2 slice allocations per request + ~1/512 slab share; 3 is the bound
	// with headroom for the testing harness's own rounding.
	if avg > 3 {
		t.Errorf("admit+deliver allocates %.2f objects per request, want <= 3", avg)
	}
}

func BenchmarkArenaAdmit(b *testing.B) {
	var a Arena
	c := simclock.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := a.New(i, c.Now(), 128, 32, 0)
		r.DeliverTokens(c, c.Now(), 32)
	}
}
