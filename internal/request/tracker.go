package request

import (
	"fmt"

	"repro/internal/simclock"
)

// Tracker is the paper's Request Tracker component (§3.1): it registers
// every request, maintains per-state counts, and exposes the virtual buffer
// counters the scheduler reads. It also snapshots temporal series (queued
// and running counts over time) for the Figure 14/15 timelines.
type Tracker struct {
	all     []*Request
	byState [5]int

	// Temporal samples, appended by Sample.
	samples []Sample
}

// Sample is one point of the queued/running time series.
type Sample struct {
	At      simclock.Time
	Queued  int
	Running int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{}
}

// Register adds a request in its current state.
func (t *Tracker) Register(r *Request) {
	t.all = append(t.all, r)
	t.byState[r.State]++
}

// Transition moves a request between states, keeping counts consistent.
// Transitioning to the current state is a no-op.
func (t *Tracker) Transition(r *Request, to State) {
	if r.State == to {
		return
	}
	t.byState[r.State]--
	if t.byState[r.State] < 0 {
		panic(fmt.Sprintf("tracker: negative count for state %v", r.State))
	}
	r.State = to
	t.byState[to]++
}

// Remove unregisters a request, keeping state counts consistent. Used when
// a replica crashes and its orphaned requests are handed back to the
// gateway for retry elsewhere — the dead replica's results must not count
// them. Removing an unregistered request is a wiring bug and panics.
func (t *Tracker) Remove(r *Request) {
	for i, have := range t.all {
		if have == r {
			t.all = append(t.all[:i], t.all[i+1:]...)
			t.byState[r.State]--
			if t.byState[r.State] < 0 {
				panic(fmt.Sprintf("tracker: negative count for state %v", r.State))
			}
			return
		}
	}
	panic(fmt.Sprintf("tracker: removing unregistered request %d", r.ID))
}

// Count reports how many registered requests are in the given state.
func (t *Tracker) Count(s State) int { return t.byState[s] }

// Total reports the number of registered requests.
func (t *Tracker) Total() int { return len(t.all) }

// All returns the registered requests in registration order. The returned
// slice is the tracker's own; callers must not mutate it.
func (t *Tracker) All() []*Request { return t.all }

// FinishedAll reports whether every registered request finished generating.
func (t *Tracker) FinishedAll() bool {
	return t.byState[StateFinished] == len(t.all) && len(t.all) > 0
}

// Sample appends one point of the queued/running time series. "Queued"
// counts requests waiting for service (never admitted or preempted or
// loading), matching the paper's Figure 14; "running" matches Figure 15.
func (t *Tracker) Sample(at simclock.Time) {
	t.samples = append(t.samples, Sample{
		At:      at,
		Queued:  t.byState[StateQueued] + t.byState[StatePreempted] + t.byState[StateLoading],
		Running: t.byState[StateRunning],
	})
}

// Samples returns the recorded time series.
func (t *Tracker) Samples() []Sample { return t.samples }

// MaxRunning reports the peak concurrent running count over the series.
func (t *Tracker) MaxRunning() int {
	max := 0
	for _, s := range t.samples {
		if s.Running > max {
			max = s.Running
		}
	}
	return max
}

// MaxQueued reports the peak queued count over the series.
func (t *Tracker) MaxQueued() int {
	max := 0
	for _, s := range t.samples {
		if s.Queued > max {
			max = s.Queued
		}
	}
	return max
}
