package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/request"
	"repro/internal/simclock"
)

func TestQoSParamsValidate(t *testing.T) {
	if err := DefaultQoSParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []QoSParams{
		{Tau1: -0.1, Tau2: 0.2},
		{Tau1: 0.2, Tau2: 0.2},
		{Tau1: 0.3, Tau2: 0.2},
		{Tau1: 0.1, Tau2: 0.2, Lambda: -1},
		{Tau1: 0.1, Tau2: 0.2, Mu: -1},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("params %+v should fail", p)
		}
	}
}

func TestTokenWeightBands(t *testing.T) {
	p := DefaultQoSParams()
	L := 1000 // thresholds at 100 and 200 tokens
	if w := p.TokenWeight(50, L); w != 1 {
		t.Errorf("below tau1: w = %v", w)
	}
	if w := p.TokenWeight(100, L); w != 1 {
		t.Errorf("at tau1: w = %v", w)
	}
	if w := p.TokenWeight(150, L); w != 0.5 {
		t.Errorf("midband: w = %v", w)
	}
	if w := p.TokenWeight(200, L); w != 0 {
		t.Errorf("at tau2: w = %v", w)
	}
	if w := p.TokenWeight(500, L); w != 0 {
		t.Errorf("beyond tau2: w = %v", w)
	}
}

func TestPercentile(t *testing.T) {
	d := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(d, 0.5); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(d, 0.99); got != 10 {
		t.Errorf("p99 = %v", got)
	}
	if got := Percentile(d, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(d, 1); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile([]time.Duration{7}, 0.99); got != 7 {
		t.Errorf("singleton p99 = %v", got)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty percentile should panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestRatioAndReduction(t *testing.T) {
	if got := Ratio(182.5, 100); got != 82.5 {
		t.Errorf("ratio = %v", got)
	}
	if got := Reduction(19.8, 100); got < 80.1 || got > 80.3 {
		t.Errorf("reduction = %v", got)
	}
	if Ratio(5, 0) != 0 || Reduction(5, 0) != 0 {
		t.Error("zero denominators should report 0")
	}
}

// buildRequest creates a finished request with a synthetic token history.
// The testing.T parameter is unused but keeps call sites uniform; it may be
// nil.
func buildRequest(_ *testing.T, id int, arrival, firstToken float64, rate float64, out int, gap float64) *request.Request {
	clock := simclock.New()
	r := request.New(id, simclock.FromSeconds(arrival), 64, out, rate)
	at := simclock.FromSeconds(firstToken)
	for j := 0; j < out; j++ {
		clock.RunUntil(at)
		r.DeliverTokens(clock, at, 1)
		at = at.Add(simclock.Duration(gap))
	}
	clock.Run()
	return r
}

func TestAnalyzeSingleRequest(t *testing.T) {
	// 100 tokens at 20 tok/s generation, consumed at 20 tok/s: buffer never
	// grows, everything effective, no stalls.
	r := buildRequest(t, 1, 0, 1.0, 20, 100, 0.05)
	rep := Analyze([]*request.Request{r}, simclock.FromSeconds(10), DefaultQoSParams())
	if rep.N != 1 || rep.Finished != 1 {
		t.Fatalf("N=%d finished=%d", rep.N, rep.Finished)
	}
	if rep.MeanTTFT != time.Second {
		t.Errorf("TTFT = %v", rep.MeanTTFT)
	}
	if rep.TotalOut != 100 {
		t.Errorf("out = %d", rep.TotalOut)
	}
	if rep.Throughput != 10 {
		t.Errorf("throughput = %v", rep.Throughput)
	}
	// All tokens within tau1 (buffer stays ~1 token, threshold = 10).
	if rep.EffectiveTokens < 99 {
		t.Errorf("effective tokens = %v", rep.EffectiveTokens)
	}
	if rep.TotalRebuffer != 0 || rep.StallFraction != 0 {
		t.Errorf("unexpected stalls: %v / %v", rep.TotalRebuffer, rep.StallFraction)
	}
}

func TestAnalyzeOverfastGenerationLosesEffectiveness(t *testing.T) {
	// Generation 10x faster than consumption: buffer balloons, most tokens
	// land beyond tau2 and count zero.
	fast := buildRequest(t, 1, 0, 0.5, 10, 200, 0.01)
	rep := Analyze([]*request.Request{fast}, simclock.FromSeconds(25), DefaultQoSParams())
	if rep.EffectiveTokens > 100 {
		t.Errorf("effective tokens = %.1f, want far below 200", rep.EffectiveTokens)
	}
	if rep.Throughput <= rep.EffectiveThroughput {
		t.Error("raw throughput should exceed effective under over-generation")
	}
}

func TestAnalyzeCensoredTTFT(t *testing.T) {
	r := request.New(1, simclock.FromSeconds(2), 64, 10, 20) // never served
	rep := Analyze([]*request.Request{r}, simclock.FromSeconds(12), DefaultQoSParams())
	if !rep.Requests[0].TTFTCensored {
		t.Error("unserved request should have censored TTFT")
	}
	if rep.Requests[0].TTFT != 10*time.Second {
		t.Errorf("censored TTFT = %v", rep.Requests[0].TTFT)
	}
	if rep.Finished != 0 {
		t.Error("unserved request is unfinished")
	}
}

func TestAnalyzeQoSPenalties(t *testing.T) {
	p := DefaultQoSParams()
	// Same token profile, but second run has a 5s-later first token: QoS
	// must be strictly lower.
	early := buildRequest(t, 1, 0, 1, 20, 50, 0.05)
	late := buildRequest(t, 1, 0, 6, 20, 50, 0.05)
	repE := Analyze([]*request.Request{early}, simclock.FromSeconds(20), p)
	repL := Analyze([]*request.Request{late}, simclock.FromSeconds(20), p)
	if repL.QoS >= repE.QoS {
		t.Errorf("late TTFT should lower QoS: %v vs %v", repL.QoS, repE.QoS)
	}
}

func TestAnalyzeRebufferPenalty(t *testing.T) {
	p := DefaultQoSParams()
	// Smooth delivery at the consumption rate vs. delivery with a long gap
	// mid-stream (client stalls).
	smooth := buildRequest(t, 1, 0, 1, 20, 40, 0.05)
	clock := simclock.New()
	stalled := request.New(2, 0, 64, 40, 20)
	stalled.DeliverTokens(clock, simclock.FromSeconds(1), 20)
	clock.RunUntil(simclock.FromSeconds(8)) // buffer drains at 2s, stall 6s
	stalled.DeliverTokens(clock, clock.Now(), 20)
	clock.Run()
	if stalled.RebufferTotal == 0 {
		t.Fatal("expected a stall in the constructed history")
	}
	repS := Analyze([]*request.Request{smooth}, simclock.FromSeconds(20), p)
	repT := Analyze([]*request.Request{stalled}, simclock.FromSeconds(20), p)
	if repT.QoS >= repS.QoS {
		t.Errorf("rebuffering should lower QoS: %v vs %v", repT.QoS, repS.QoS)
	}
	if repT.StallFraction != 1 {
		t.Errorf("stall fraction = %v", repT.StallFraction)
	}
}

func TestAnalyzeGenRate(t *testing.T) {
	r := buildRequest(t, 1, 0, 1, 1e9, 101, 0.05) // 20 tok/s generation
	rep := Analyze([]*request.Request{r}, simclock.FromSeconds(10), DefaultQoSParams())
	gr := rep.Requests[0].GenRate
	if gr < 19.9 || gr > 20.1 {
		t.Errorf("gen rate = %v, want 20", gr)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil, simclock.FromSeconds(1), DefaultQoSParams())
	if rep.N != 0 || rep.QoS != 0 {
		t.Error("empty analysis should be zeroed")
	}
}

// Property: effective tokens never exceed generated tokens, and the weight
// function is monotone non-increasing in buffer occupancy.
func TestPropertyWeightMonotone(t *testing.T) {
	p := DefaultQoSParams()
	f := func(b1, b2 uint16, lenRaw uint16) bool {
		L := int(lenRaw%2000) + 10
		lo, hi := int(b1), int(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		w1, w2 := p.TokenWeight(lo, L), p.TokenWeight(hi, L)
		return w1 >= w2 && w1 <= 1 && w2 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: QoS never exceeds effective throughput (penalties only
// subtract) and effective <= raw throughput.
func TestPropertyQoSBounds(t *testing.T) {
	f := func(seed int64) bool {
		gap := 0.02 + float64(seed%7)/100
		r := buildRequest(nil, 1, 0, 1, 15, 80, gap)
		rep := Analyze([]*request.Request{r}, simclock.FromSeconds(30), DefaultQoSParams())
		return rep.QoS <= rep.EffectiveThroughput+1e-9 &&
			rep.EffectiveThroughput <= rep.Throughput+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		loads []float64
		want  float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{100, 100, 100, 100}, 1},
		{[]float64{200, 100, 100}, 1.5},
		{[]float64{400, 0, 0, 0}, 4},
	}
	for _, c := range cases {
		if got := Imbalance(c.loads); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Imbalance(%v) = %v, want %v", c.loads, got, c.want)
		}
	}
}
