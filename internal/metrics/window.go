package metrics

import (
	"sort"
	"time"

	"repro/internal/simclock"
)

// TTFTWindow is a sliding-window quantile estimator over observed
// time-to-first-token samples — the feedback signal of the slo-target
// autoscaling policy. Observations must arrive in nondecreasing virtual
// time (the simulation guarantees it); samples older than the window fall
// off the front. The estimator is deterministic: identical observation
// sequences yield identical quantiles.
type TTFTWindow struct {
	window  time.Duration
	at      []simclock.Time
	values  []time.Duration
	scratch []time.Duration
}

// DefaultTTFTWindow is the observation horizon the cluster control loop
// uses when none is configured: long enough to cover a warm-up, short
// enough that a passed spike stops dominating the percentile.
const DefaultTTFTWindow = 30 * time.Second

// NewTTFTWindow builds an estimator over the given horizon (non-positive
// selects DefaultTTFTWindow).
func NewTTFTWindow(window time.Duration) *TTFTWindow {
	if window <= 0 {
		window = DefaultTTFTWindow
	}
	return &TTFTWindow{window: window}
}

// Observe records one TTFT sample stamped at its first-token instant.
func (w *TTFTWindow) Observe(at simclock.Time, v time.Duration) {
	w.at = append(w.at, at)
	w.values = append(w.values, v)
}

// evict drops samples whose stamp has fallen out of the window ending at
// now.
func (w *TTFTWindow) evict(now simclock.Time) {
	cut := 0
	for cut < len(w.at) && w.at[cut] < now.Add(-w.window) {
		cut++
	}
	if cut > 0 {
		w.at = w.at[cut:]
		w.values = w.values[cut:]
	}
}

// Len reports the samples still inside the window ending at now.
func (w *TTFTWindow) Len(now simclock.Time) int {
	w.evict(now)
	return len(w.at)
}

// Quantile reports the q-quantile of the samples inside the window ending
// at now (ceil-rank convention, matching Percentile), or 0 when the window
// is empty — "no recent first token" reads as no latency pressure.
func (w *TTFTWindow) Quantile(now simclock.Time, q float64) time.Duration {
	w.evict(now)
	if len(w.values) == 0 {
		return 0
	}
	w.scratch = append(w.scratch[:0], w.values...)
	sort.Slice(w.scratch, func(i, j int) bool { return w.scratch[i] < w.scratch[j] })
	return Percentile(w.scratch, q)
}
