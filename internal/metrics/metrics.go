// Package metrics computes the paper's evaluation metrics from completed
// simulation runs: TTFT statistics, raw token throughput, effective
// throughput with the timeliness-based token weighting of §7.1.3
// (full credit below τ1 of the output length, linear decay to zero at τ2),
// and the synthetic QoS metric of §3.2 (token utility minus TTFT and
// rebuffering penalties, Eq. 2).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/request"
	"repro/internal/simclock"
)

// QoSParams parameterizes the token-weighting and penalty terms.
type QoSParams struct {
	// Tau1 and Tau2 are the buffer thresholds as fractions of the
	// request's total output length: tokens generated while the buffer is
	// below Tau1·L count fully, decay linearly to zero at Tau2·L, and
	// count zero beyond (§7.1.3: 10% and 20%).
	Tau1, Tau2 float64

	// Lambda weighs the TTFT penalty and Mu the rebuffering penalty in the
	// QoS sum (Eq. 2), both in token-equivalents per second.
	Lambda, Mu float64
}

// DefaultQoSParams mirrors the paper's evaluation settings.
func DefaultQoSParams() QoSParams {
	return QoSParams{Tau1: 0.10, Tau2: 0.20, Lambda: 1.0, Mu: 2.0}
}

// Validate reports an error for inconsistent thresholds.
func (p QoSParams) Validate() error {
	if p.Tau1 < 0 || p.Tau2 <= p.Tau1 {
		return fmt.Errorf("metrics: need 0 <= tau1 < tau2, got (%v, %v)", p.Tau1, p.Tau2)
	}
	if p.Lambda < 0 || p.Mu < 0 {
		return fmt.Errorf("metrics: negative penalty weights (%v, %v)", p.Lambda, p.Mu)
	}
	return nil
}

// TokenWeight is the per-token utility w_{i,j} (Eq. 1 instantiated with the
// effective-throughput thresholds): buffer occupancy B at generation time,
// against thresholds relative to the request's output length L.
func (p QoSParams) TokenWeight(buffer int, outputLen int) float64 {
	t1 := p.Tau1 * float64(outputLen)
	t2 := p.Tau2 * float64(outputLen)
	b := float64(buffer)
	switch {
	case b <= t1:
		return 1
	case b >= t2:
		return 0
	default:
		return (t2 - b) / (t2 - t1)
	}
}

// RequestMetrics summarizes one request.
type RequestMetrics struct {
	ID           int
	Finished     bool
	TTFT         time.Duration
	TTFTCensored bool // request never produced a token; TTFT = makespan - arrival
	Tokens       int
	Effective    float64
	Rebuffer     time.Duration
	Preemptions  int
	Resumes      int
	// GenRate is the average generation rate over the request's token
	// span (tokens-1 over last-first), zero for single-token requests.
	GenRate float64
}

// Report aggregates a run.
type Report struct {
	N          int
	Finished   int
	Makespan   time.Duration
	TotalIn    int64
	TotalOut   int64
	Throughput float64 // output tokens per second over the makespan

	EffectiveTokens     float64
	EffectiveThroughput float64

	MeanTTFT time.Duration
	P50TTFT  time.Duration
	P99TTFT  time.Duration
	MaxTTFT  time.Duration

	TotalRebuffer time.Duration
	MeanRebuffer  time.Duration
	StallFraction float64 // fraction of requests with any rebuffering

	Preemptions int
	QoS         float64

	Requests []RequestMetrics
}

// Analyze computes a Report from completed (or partially completed)
// requests. makespan is the total request-processing time T of Eq. 2;
// requests that never generated a token contribute a censored TTFT of
// (makespan − arrival).
func Analyze(reqs []*request.Request, makespan simclock.Time, p QoSParams) Report {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rep := Report{N: len(reqs), Makespan: time.Duration(makespan)}
	if len(reqs) == 0 {
		return rep
	}
	ttfts := make([]time.Duration, 0, len(reqs))
	var qosSum float64
	for _, r := range reqs {
		m := RequestMetrics{
			ID:          r.ID,
			Finished:    r.GenerationDone(),
			Tokens:      r.Generated,
			Rebuffer:    r.RebufferTotal,
			Preemptions: r.Preemptions,
			Resumes:     r.Resumes,
		}
		if r.Generated > 0 {
			m.TTFT = r.TTFT()
		} else {
			m.TTFT = makespan.Sub(r.Arrival)
			m.TTFTCensored = true
		}
		for j, buf := range r.BufferAtGen {
			_ = j
			m.Effective += p.TokenWeight(int(buf), r.OutputLen)
		}
		if n := len(r.TokenTimes); n >= 2 {
			span := r.TokenTimes[n-1].Sub(r.TokenTimes[0]).Seconds()
			if span > 0 {
				m.GenRate = float64(n-1) / span
			}
		}
		if m.Finished {
			rep.Finished++
		}
		rep.TotalIn += int64(r.PromptLen)
		rep.TotalOut += int64(r.Generated)
		rep.EffectiveTokens += m.Effective
		rep.TotalRebuffer += m.Rebuffer
		rep.Preemptions += m.Preemptions
		if m.Rebuffer > 0 {
			rep.StallFraction++
		}
		qosSum += m.Effective - p.Lambda*m.TTFT.Seconds() - p.Mu*m.Rebuffer.Seconds()
		ttfts = append(ttfts, m.TTFT)
		rep.Requests = append(rep.Requests, m)
	}
	rep.StallFraction /= float64(len(reqs))
	rep.MeanRebuffer = rep.TotalRebuffer / time.Duration(len(reqs))

	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	var sum time.Duration
	for _, t := range ttfts {
		sum += t
	}
	rep.MeanTTFT = sum / time.Duration(len(ttfts))
	rep.P50TTFT = Percentile(ttfts, 0.50)
	rep.P99TTFT = Percentile(ttfts, 0.99)
	rep.MaxTTFT = ttfts[len(ttfts)-1]

	if sec := makespan.Seconds(); sec > 0 {
		rep.Throughput = float64(rep.TotalOut) / sec
		rep.EffectiveThroughput = rep.EffectiveTokens / sec
		rep.QoS = qosSum / sec
	}
	return rep
}

// Percentile reports the p-quantile of sorted durations using the
// ceil(p·n) rank convention. It panics on an empty slice.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		panic("metrics: percentile of empty slice")
	}
	if p <= 0 {
		return sorted[0]
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Imbalance reports the peak-to-mean ratio of per-replica loads (output
// tokens, request counts, ...): 1.0 is perfect balance, R means the hottest
// replica carried R× the average. Degenerate inputs (no replicas, zero
// total load) report 1.0, vacuously balanced.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum <= 0 {
		return 1
	}
	return max / (sum / float64(len(loads)))
}

// Ratio reports (a-b)/b as a percentage, the improvement convention used
// in the paper's headline numbers ("82.5% higher effective throughput").
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// Reduction reports (b-a)/b as a percentage ("80.2% lower P99 TTFT" when a
// is TokenFlow and b the baseline).
func Reduction(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (b - a) / b * 100
}
