package metrics

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestTTFTWindowQuantile(t *testing.T) {
	w := NewTTFTWindow(10 * time.Second)

	// Empty window reads as no latency pressure.
	if got := w.Quantile(simclock.FromSeconds(5), 0.99); got != 0 {
		t.Errorf("empty window P99 = %v, want 0", got)
	}

	// Samples at t=1..5, values 1s..5s: P99 is the max, P50 the median.
	for i := 1; i <= 5; i++ {
		w.Observe(simclock.FromSeconds(float64(i)), time.Duration(i)*time.Second)
	}
	if got := w.Quantile(simclock.FromSeconds(5), 0.99); got != 5*time.Second {
		t.Errorf("P99 = %v, want 5s", got)
	}
	if got := w.Quantile(simclock.FromSeconds(5), 0.50); got != 3*time.Second {
		t.Errorf("P50 = %v, want 3s", got)
	}

	// At t=13 the samples stamped before t=3 have fallen out: only 3..5
	// remain. At t=20 everything is gone.
	if got := w.Len(simclock.FromSeconds(13)); got != 3 {
		t.Errorf("Len at t=13 = %d, want 3", got)
	}
	if got := w.Quantile(simclock.FromSeconds(13), 0.50); got != 4*time.Second {
		t.Errorf("P50 after eviction = %v, want 4s", got)
	}
	if got := w.Quantile(simclock.FromSeconds(20), 0.99); got != 0 {
		t.Errorf("fully aged window P99 = %v, want 0", got)
	}
}

func TestTTFTWindowDefaultHorizon(t *testing.T) {
	w := NewTTFTWindow(0)
	w.Observe(0, time.Second)
	// Inside the default horizon the sample survives; past it, not.
	if got := w.Len(simclock.Time(DefaultTTFTWindow) - 1); got != 1 {
		t.Errorf("sample evicted inside the default horizon (len %d)", got)
	}
	if got := w.Len(simclock.Time(DefaultTTFTWindow) + simclock.FromSeconds(1)); got != 0 {
		t.Errorf("sample survived past the default horizon (len %d)", got)
	}
}
