package gpu

import (
	"fmt"
	"time"

	"repro/internal/model"
)

// CostModel predicts iteration latencies for a (device, model) pair using a
// roofline: an iteration takes the larger of its compute time and its
// device-memory traffic time, plus a fixed overhead. Prefill is
// compute-bound (quadratic attention terms are folded into ComputeEff);
// decode is bound by streaming the weights plus the batch's KV cache.
type CostModel struct {
	GPU   Spec
	Model model.Spec
}

// NewCostModel validates both specs and returns the cost model.
func NewCostModel(g Spec, m model.Spec) (CostModel, error) {
	if err := g.Validate(); err != nil {
		return CostModel{}, err
	}
	if err := m.Validate(); err != nil {
		return CostModel{}, err
	}
	c := CostModel{GPU: g, Model: m}
	if c.KVCapacityTokens(1.0) <= 0 {
		return CostModel{}, fmt.Errorf("gpu: model %s does not fit on %s", m.Name, g.Name)
	}
	return c, nil
}

// KVCapacityTokens reports how many context tokens fit in the KV pool when
// the serving engine is allowed memFraction of device memory for weights
// plus cache (SGLang's mem-fraction-static semantics). Returns 0 when the
// weights alone exceed the budget.
func (c CostModel) KVCapacityTokens(memFraction float64) int64 {
	budget := int64(memFraction*float64(c.GPU.MemoryBytes())) - c.Model.WeightBytes()
	if budget <= 0 {
		return 0
	}
	return budget / c.Model.KVBytesPerToken()
}

// PrefillTime predicts the latency of a prefill iteration over
// promptTokens total input tokens (possibly several requests batched).
func (c CostModel) PrefillTime(promptTokens int) time.Duration {
	if promptTokens <= 0 {
		return 0
	}
	compute := float64(promptTokens) * c.Model.FLOPsPerToken() / c.GPU.EffectiveFLOPs()
	memory := float64(c.Model.WeightBytes()) / c.GPU.EffectiveHBMBytesPerSec()
	return c.GPU.IterOverhead + secondsToDuration(maxf(compute, memory))
}

// DecodeStepTime predicts the latency of one decode iteration that advances
// batch requests by one token each, with contextTokens total resident
// context across the batch.
func (c CostModel) DecodeStepTime(batch int, contextTokens int64) time.Duration {
	if batch <= 0 {
		return 0
	}
	compute := float64(batch) * c.Model.FLOPsPerToken() / c.GPU.EffectiveFLOPs()
	bytes := float64(c.Model.WeightBytes()) + float64(contextTokens)*float64(c.Model.KVBytesPerToken())
	memory := bytes / c.GPU.EffectiveHBMBytesPerSec()
	return c.GPU.IterOverhead + secondsToDuration(maxf(compute, memory))
}

// MixedStepTime predicts the latency of a chunked-prefill iteration that
// processes prefillTokens new prompt tokens alongside a decode batch.
func (c CostModel) MixedStepTime(prefillTokens, batch int, contextTokens int64) time.Duration {
	if prefillTokens <= 0 {
		return c.DecodeStepTime(batch, contextTokens)
	}
	if batch <= 0 {
		return c.PrefillTime(prefillTokens)
	}
	compute := float64(prefillTokens+batch) * c.Model.FLOPsPerToken() / c.GPU.EffectiveFLOPs()
	bytes := float64(c.Model.WeightBytes()) + float64(contextTokens)*float64(c.Model.KVBytesPerToken())
	memory := bytes / c.GPU.EffectiveHBMBytesPerSec()
	return c.GPU.IterOverhead + secondsToDuration(maxf(compute, memory))
}

// PeakDecodeTokensPerSec reports the aggregate decode throughput at a given
// batch size and average per-request context, used to estimate the capacity
// bound Γ in the schedulability check (§4.3).
func (c CostModel) PeakDecodeTokensPerSec(batch int, avgContext int64) float64 {
	if batch <= 0 {
		return 0
	}
	step := c.DecodeStepTime(batch, int64(batch)*avgContext)
	if step <= 0 {
		return 0
	}
	return float64(batch) / step.Seconds()
}

// TransferTime reports how long moving n KV bytes across the host link
// takes, ignoring queueing (the Link type models queueing).
func (c CostModel) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return secondsToDuration(float64(n) / c.GPU.PCIeBytesPerSec())
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
