// Package gpu models the accelerator hardware the paper evaluates on. It
// provides per-device specifications, a roofline cost model for prefill and
// decode iterations, and a PCIe link model for GPU<->CPU KV-cache transfers.
//
// The simulator substitutes this package for real CUDA execution (see
// DESIGN.md §1): TokenFlow's scheduling and memory-management behaviour
// depends only on iteration latencies, memory capacity, and transfer
// latencies, all of which the roofline and link models provide.
package gpu

import (
	"fmt"
	"time"
)

// Spec describes one accelerator. Peak numbers follow the vendor datasheets;
// the efficiency factors calibrate achievable serving throughput (real
// engines reach roughly half of peak FLOPs and 50-70% of peak HBM bandwidth
// on decode-sized kernels).
type Spec struct {
	Name string

	// FP16TFLOPS is peak dense fp16/bf16 tensor throughput in TFLOP/s.
	FP16TFLOPS float64

	// HBMGBps is peak device-memory bandwidth in GB/s.
	HBMGBps float64

	// PCIeGBps is achievable per-direction host link bandwidth in GB/s
	// (PCIe is full duplex; loads and evictions each get this much).
	PCIeGBps float64

	// MemoryGB is total device memory in GB.
	MemoryGB float64

	// ComputeEff and BandwidthEff scale the peaks to achievable rates.
	ComputeEff   float64
	BandwidthEff float64

	// IterOverhead is the fixed per-iteration cost (kernel launches,
	// scheduler round-trip, sampling) independent of batch size.
	IterOverhead time.Duration
}

// Validate reports an error if the spec has non-positive required fields.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("gpu: empty name")
	case s.FP16TFLOPS <= 0 || s.HBMGBps <= 0 || s.PCIeGBps <= 0 || s.MemoryGB <= 0:
		return fmt.Errorf("gpu %s: non-positive datasheet values", s.Name)
	case s.ComputeEff <= 0 || s.ComputeEff > 1 || s.BandwidthEff <= 0 || s.BandwidthEff > 1:
		return fmt.Errorf("gpu %s: efficiency factors must be in (0,1]", s.Name)
	case s.IterOverhead < 0:
		return fmt.Errorf("gpu %s: negative iteration overhead", s.Name)
	}
	return nil
}

// EffectiveFLOPs reports achievable FLOP/s.
func (s Spec) EffectiveFLOPs() float64 {
	return s.FP16TFLOPS * 1e12 * s.ComputeEff
}

// EffectiveHBMBytesPerSec reports achievable device-memory bytes/s.
func (s Spec) EffectiveHBMBytesPerSec() float64 {
	return s.HBMGBps * 1e9 * s.BandwidthEff
}

// MemoryBytes reports total device memory in bytes.
func (s Spec) MemoryBytes() int64 {
	return int64(s.MemoryGB * 1e9)
}

// PCIeBytesPerSec reports achievable per-direction host-link bytes/s.
func (s Spec) PCIeBytesPerSec() float64 {
	return s.PCIeGBps * 1e9
}

func (s Spec) String() string { return s.Name }

// The device zoo used in the paper's evaluation (§7.1.1 and Figure 21).
var (
	// RTX4090 is the NVIDIA GeForce RTX 4090 (Ada): 24 GB GDDR6X.
	RTX4090 = Spec{
		Name:         "RTX-4090",
		FP16TFLOPS:   165,
		HBMGBps:      1008,
		PCIeGBps:     25, // PCIe 4.0 x16, achievable
		MemoryGB:     24,
		ComputeEff:   0.45,
		BandwidthEff: 0.60,
		IterOverhead: 3 * time.Millisecond,
	}

	// A6000 is the NVIDIA RTX A6000 (Ampere): 48 GB GDDR6.
	A6000 = Spec{
		Name:         "A6000",
		FP16TFLOPS:   155,
		HBMGBps:      768,
		PCIeGBps:     25,
		MemoryGB:     48,
		ComputeEff:   0.45,
		BandwidthEff: 0.60,
		IterOverhead: 3 * time.Millisecond,
	}

	// H200 is the NVIDIA H200 SXM: 141 GB HBM3e.
	H200 = Spec{
		Name:         "H200",
		FP16TFLOPS:   989,
		HBMGBps:      4800,
		PCIeGBps:     50, // PCIe 5.0 x16, achievable
		MemoryGB:     141,
		ComputeEff:   0.45,
		BandwidthEff: 0.55,
		IterOverhead: 3 * time.Millisecond,
	}

	// Ascend910B is the Huawei Ascend 910B NPU used in Figure 21.
	Ascend910B = Spec{
		Name:         "Ascend-910B",
		FP16TFLOPS:   376,
		HBMGBps:      1600,
		PCIeGBps:     25,
		MemoryGB:     64,
		ComputeEff:   0.40,
		BandwidthEff: 0.55,
		IterOverhead: 4 * time.Millisecond,
	}
)

// All lists every device in the zoo.
func All() []Spec {
	return []Spec{RTX4090, A6000, H200, Ascend910B}
}

// ByName looks a device up by its Name field.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gpu: unknown device %q", name)
}
