package gpu

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// Link models one direction of the host PCIe connection as a FIFO
// bandwidth queue: transfers serialize, and a transfer enqueued while the
// link is busy starts when the link drains. The KV cache manager uses two
// Links (device-to-host for eviction, host-to-device for loading) because
// PCIe is full duplex.
type Link struct {
	name        string
	bytesPerSec float64

	busyUntil simclock.Time

	// Profiling counters: the scheduler consumes these to estimate I/O
	// latency for its admission and recompute-vs-load decisions (§4.2.3).
	totalBytes int64
	totalBusy  time.Duration
	transfers  int64
}

// NewLink returns a link with the given name (for diagnostics) and
// bandwidth in bytes per second.
func NewLink(name string, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("gpu: non-positive link bandwidth %v", bytesPerSec))
	}
	return &Link{name: name, bytesPerSec: bytesPerSec}
}

// Name reports the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// BytesPerSec reports the link's configured bandwidth.
func (l *Link) BytesPerSec() float64 { return l.bytesPerSec }

// TransferTime reports the pure wire time for n bytes (no queueing).
func (l *Link) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.bytesPerSec * float64(time.Second))
}

// Enqueue books an n-byte transfer submitted at time now and reports when
// it starts and completes. Transfers are FIFO: a submission while the link
// is busy starts when the previous transfer finishes. It is Reserve with
// the hold time set by this link's own wire speed.
func (l *Link) Enqueue(now simclock.Time, n int64) (start, done simclock.Time) {
	start = now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done = start.Add(l.TransferTime(n))
	l.Reserve(start, done, n)
	return start, done
}

// Reserve books the link busy for [start, done] moving n bytes — the
// multi-link transfer path of the fabric, where the hold time is set by the
// path's bottleneck link rather than this link's own wire time. start must
// not precede the link's current backlog: the fabric computes it as the
// max of the path's BusyUntil readings, so regressions are scheduler bugs.
func (l *Link) Reserve(start, done simclock.Time, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("gpu: negative transfer size %d", n))
	}
	if start < l.busyUntil {
		panic(fmt.Sprintf("gpu: link %s reservation at %v before backlog %v", l.name, start, l.busyUntil))
	}
	if done < start {
		panic(fmt.Sprintf("gpu: link %s reservation ends %v before start %v", l.name, done, start))
	}
	l.busyUntil = done
	l.totalBytes += n
	l.totalBusy += done.Sub(start)
	l.transfers++
}

// QueueDelay reports how long a transfer submitted now would wait before
// reaching the wire.
func (l *Link) QueueDelay(now simclock.Time) time.Duration {
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil.Sub(now)
}

// BusyUntil reports the virtual time at which the link drains.
func (l *Link) BusyUntil() simclock.Time { return l.busyUntil }

// Idle reports whether the link has no queued or in-flight transfer at now.
func (l *Link) Idle(now simclock.Time) bool { return l.busyUntil <= now }

// Stats reports cumulative transferred bytes, cumulative wire-busy time,
// and the number of transfers, for profiling.
func (l *Link) Stats() (bytes int64, busy time.Duration, transfers int64) {
	return l.totalBytes, l.totalBusy, l.transfers
}

// LinkSnapshot is a point-in-time view of a link's profiling counters, so
// consumers (the fabric's accounting, reports) never reach into Link
// fields.
type LinkSnapshot struct {
	// Name is the link's diagnostic name.
	Name string
	// Bytes, Busy, and Transfers are the cumulative counters of Stats.
	Bytes     int64
	Busy      time.Duration
	Transfers int64
	// Backlog is the queueing delay a transfer submitted at the snapshot
	// instant would see before reaching the wire (zero for a drained link).
	Backlog time.Duration
}

// Snapshot captures the link's counters and current backlog at now.
func (l *Link) Snapshot(now simclock.Time) LinkSnapshot {
	return LinkSnapshot{
		Name:      l.name,
		Bytes:     l.totalBytes,
		Busy:      l.totalBusy,
		Transfers: l.transfers,
		Backlog:   l.QueueDelay(now),
	}
}

// Utilization reports the fraction of [0, now] the link spent transferring.
func (l *Link) Utilization(now simclock.Time) float64 {
	if now <= 0 {
		return 0
	}
	return l.totalBusy.Seconds() / now.Seconds()
}
