package gpu

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// Link models one direction of the host PCIe connection as a FIFO
// bandwidth queue: transfers serialize, and a transfer enqueued while the
// link is busy starts when the link drains. The KV cache manager uses two
// Links (device-to-host for eviction, host-to-device for loading) because
// PCIe is full duplex.
type Link struct {
	name        string
	bytesPerSec float64

	busyUntil simclock.Time

	// Profiling counters: the scheduler consumes these to estimate I/O
	// latency for its admission and recompute-vs-load decisions (§4.2.3).
	totalBytes int64
	totalBusy  time.Duration
	transfers  int64
}

// NewLink returns a link with the given name (for diagnostics) and
// bandwidth in bytes per second.
func NewLink(name string, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("gpu: non-positive link bandwidth %v", bytesPerSec))
	}
	return &Link{name: name, bytesPerSec: bytesPerSec}
}

// Name reports the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// BytesPerSec reports the link's configured bandwidth.
func (l *Link) BytesPerSec() float64 { return l.bytesPerSec }

// TransferTime reports the pure wire time for n bytes (no queueing).
func (l *Link) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.bytesPerSec * float64(time.Second))
}

// Enqueue books an n-byte transfer submitted at time now and reports when
// it starts and completes. Transfers are FIFO: a submission while the link
// is busy starts when the previous transfer finishes.
func (l *Link) Enqueue(now simclock.Time, n int64) (start, done simclock.Time) {
	if n < 0 {
		panic(fmt.Sprintf("gpu: negative transfer size %d", n))
	}
	start = now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	wire := l.TransferTime(n)
	done = start.Add(wire)
	l.busyUntil = done
	l.totalBytes += n
	l.totalBusy += wire
	l.transfers++
	return start, done
}

// QueueDelay reports how long a transfer submitted now would wait before
// reaching the wire.
func (l *Link) QueueDelay(now simclock.Time) time.Duration {
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil.Sub(now)
}

// BusyUntil reports the virtual time at which the link drains.
func (l *Link) BusyUntil() simclock.Time { return l.busyUntil }

// Idle reports whether the link has no queued or in-flight transfer at now.
func (l *Link) Idle(now simclock.Time) bool { return l.busyUntil <= now }

// Stats reports cumulative transferred bytes, cumulative wire-busy time,
// and the number of transfers, for profiling.
func (l *Link) Stats() (bytes int64, busy time.Duration, transfers int64) {
	return l.totalBytes, l.totalBusy, l.transfers
}

// Utilization reports the fraction of [0, now] the link spent transferring.
func (l *Link) Utilization(now simclock.Time) float64 {
	if now <= 0 {
		return 0
	}
	return l.totalBusy.Seconds() / now.Seconds()
}
