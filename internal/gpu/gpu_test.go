package gpu

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/simclock"
)

func TestZooValidates(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("H200")
	if err != nil {
		t.Fatal(err)
	}
	if s.MemoryGB != 141 {
		t.Errorf("H200 memory = %v", s.MemoryGB)
	}
	if _, err := ByName("TPU-v9"); err == nil {
		t.Error("unknown device should error")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero flops", func(s *Spec) { s.FP16TFLOPS = 0 }},
		{"zero bw", func(s *Spec) { s.HBMGBps = 0 }},
		{"zero pcie", func(s *Spec) { s.PCIeGBps = 0 }},
		{"zero memory", func(s *Spec) { s.MemoryGB = 0 }},
		{"eff > 1", func(s *Spec) { s.ComputeEff = 1.5 }},
		{"eff zero", func(s *Spec) { s.BandwidthEff = 0 }},
		{"negative overhead", func(s *Spec) { s.IterOverhead = -time.Millisecond }},
	}
	for _, tc := range cases {
		s := H200
		tc.mod(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func mustCost(t testing.TB, g Spec, m model.Spec) CostModel {
	t.Helper()
	c, err := NewCostModel(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCostModelRejectsOversizedModel(t *testing.T) {
	if _, err := NewCostModel(RTX4090, model.Qwen25_32B); err == nil {
		t.Error("32B model should not fit a 24GB card")
	}
}

func TestKVCapacityH200Llama(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	// mem-frac 0.3 on 141 GB = 42.3 GB; minus 16.06 GB weights = 26.2 GB;
	// at 131072 B/token that is ~200k tokens.
	got := c.KVCapacityTokens(0.3)
	if got < 150_000 || got > 250_000 {
		t.Errorf("KV capacity = %d tokens, want ~200k", got)
	}
	if c.KVCapacityTokens(0.05) != 0 {
		t.Error("capacity should clamp to 0 when weights exceed budget")
	}
}

func TestKVCapacity4090Llama(t *testing.T) {
	c := mustCost(t, RTX4090, model.Llama3_8B)
	got := c.KVCapacityTokens(0.9)
	// 21.6 - 16.06 = 5.54 GB -> ~42k tokens.
	if got < 30_000 || got > 55_000 {
		t.Errorf("KV capacity = %d tokens, want ~42k", got)
	}
}

func TestPrefillTimeScalesWithTokens(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	t512 := c.PrefillTime(512)
	t4096 := c.PrefillTime(4096)
	if t4096 <= t512 {
		t.Errorf("prefill(4096)=%v should exceed prefill(512)=%v", t4096, t512)
	}
	// Beyond the fixed overhead, an 8x token count costs ~8x compute.
	ratio := float64(t4096-H200.IterOverhead) / float64(t512-H200.IterOverhead)
	if ratio < 4 || ratio > 9 {
		t.Errorf("prefill scaling ratio = %.1f, want roughly 8x (compute-bound)", ratio)
	}
	if c.PrefillTime(0) != 0 {
		t.Error("prefill of zero tokens should be free")
	}
}

func TestPrefillTimePlausible(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	// 512-token prompt on H200 should land in the tens of milliseconds.
	got := c.PrefillTime(512)
	if got < 5*time.Millisecond || got > 200*time.Millisecond {
		t.Errorf("prefill(512) = %v, implausible", got)
	}
}

func TestDecodeMemoryBound(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	// Small batches are weight-streaming bound: doubling batch should not
	// double step time.
	s1 := c.DecodeStepTime(1, 1024)
	s2 := c.DecodeStepTime(2, 2048)
	if float64(s2) > 1.5*float64(s1) {
		t.Errorf("decode step nearly doubled (%v -> %v); should be memory-bound", s1, s2)
	}
	// But growing total context grows the step time.
	sBig := c.DecodeStepTime(64, 64*8192)
	sSmall := c.DecodeStepTime(64, 64*128)
	if sBig <= sSmall {
		t.Errorf("longer context should slow decode: %v vs %v", sBig, sSmall)
	}
}

func TestDecodeSpeedPlausible(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	// Single-request decode speed on H200 should be tens of tokens/s
	// (memory-bound on 16 GB of weights + overhead).
	step := c.DecodeStepTime(1, 1024)
	perSec := 1 / step.Seconds()
	if perSec < 30 || perSec > 300 {
		t.Errorf("single-stream decode = %.0f tok/s, implausible", perSec)
	}
	// Batch-32 aggregate throughput should be far higher than 1-stream.
	agg := c.PeakDecodeTokensPerSec(32, 1536)
	if agg < 5*perSec {
		t.Errorf("batch-32 aggregate %.0f tok/s should dominate 1-stream %.0f", agg, perSec)
	}
}

func TestMixedStepTime(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	if got, want := c.MixedStepTime(0, 8, 8*1024), c.DecodeStepTime(8, 8*1024); got != want {
		t.Errorf("mixed with no prefill = %v, want pure decode %v", got, want)
	}
	if got, want := c.MixedStepTime(256, 0, 0), c.PrefillTime(256); got != want {
		t.Errorf("mixed with no decode = %v, want pure prefill %v", got, want)
	}
	mixed := c.MixedStepTime(256, 8, 8*1024)
	if mixed < c.DecodeStepTime(8, 8*1024) {
		t.Error("mixed step should not be faster than its decode part")
	}
}

func TestPeakDecodeZeroBatch(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	if got := c.PeakDecodeTokensPerSec(0, 1024); got != 0 {
		t.Errorf("zero batch throughput = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	c := mustCost(t, H200, model.Llama3_8B)
	// 1 GB at 50 GB/s = 20 ms.
	got := c.TransferTime(1e9)
	if got < 15*time.Millisecond || got > 25*time.Millisecond {
		t.Errorf("transfer(1GB) = %v, want ~20ms", got)
	}
	if c.TransferTime(0) != 0 || c.TransferTime(-5) != 0 {
		t.Error("non-positive transfers should be free")
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	l := NewLink("d2h", 1e9) // 1 GB/s
	now := simclock.FromSeconds(0)
	s1, d1 := l.Enqueue(now, 1e9) // 1s wire time
	if s1 != now || d1 != simclock.FromSeconds(1) {
		t.Errorf("first transfer start=%v done=%v", s1, d1)
	}
	s2, d2 := l.Enqueue(now, 5e8) // queued behind first
	if s2 != simclock.FromSeconds(1) || d2 != simclock.FromSeconds(1.5) {
		t.Errorf("second transfer start=%v done=%v", s2, d2)
	}
	if got := l.QueueDelay(now); got != 1500*time.Millisecond {
		t.Errorf("queue delay = %v", got)
	}
	if l.Idle(now) {
		t.Error("link should be busy")
	}
	if !l.Idle(simclock.FromSeconds(2)) {
		t.Error("link should be idle after draining")
	}
}

func TestLinkStatsAndUtilization(t *testing.T) {
	l := NewLink("h2d", 2e9)
	l.Enqueue(simclock.FromSeconds(0), 2e9) // 1s busy
	bytes, busy, n := l.Stats()
	if bytes != 2e9 || n != 1 {
		t.Errorf("stats bytes=%d n=%d", bytes, n)
	}
	if busy != time.Second {
		t.Errorf("busy = %v", busy)
	}
	u := l.Utilization(simclock.FromSeconds(2))
	if u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if l.Utilization(0) != 0 {
		t.Error("utilization at t=0 should be 0")
	}
}

func TestLinkZeroByteTransfer(t *testing.T) {
	l := NewLink("d2h", 1e9)
	s, d := l.Enqueue(simclock.FromSeconds(1), 0)
	if s != d || s != simclock.FromSeconds(1) {
		t.Errorf("zero-byte transfer start=%v done=%v", s, d)
	}
}

func TestLinkNegativeTransferPanics(t *testing.T) {
	l := NewLink("d2h", 1e9)
	defer func() {
		if recover() == nil {
			t.Error("negative transfer should panic")
		}
	}()
	l.Enqueue(0, -1)
}

func TestNewLinkZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth should panic")
		}
	}()
	NewLink("bad", 0)
}

// Property: FIFO link never starts a transfer before submission nor before
// the previous transfer's completion, and completion ordering matches
// submission ordering.
func TestPropertyLinkFIFO(t *testing.T) {
	f := func(sizes []uint32) bool {
		l := NewLink("p", 1e8)
		var lastDone simclock.Time
		now := simclock.Time(0)
		for i, raw := range sizes {
			if i > 300 {
				break
			}
			n := int64(raw % 1e7)
			now = now.Add(time.Duration(raw%5) * time.Millisecond)
			start, done := l.Enqueue(now, n)
			if start < now || done < start || done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: decode step time is monotone in batch and context.
func TestPropertyDecodeMonotone(t *testing.T) {
	c := mustCost(t, A6000, model.Qwen2_7B)
	f := func(b1, b2 uint8, ctx1, ctx2 uint16) bool {
		lo, hi := int(b1%64)+1, int(b2%64)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		c1, c2 := int64(ctx1), int64(ctx2)
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		return c.DecodeStepTime(lo, c1) <= c.DecodeStepTime(hi, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeStepTime(b *testing.B) {
	c := mustCost(b, H200, model.Llama3_8B)
	for i := 0; i < b.N; i++ {
		_ = c.DecodeStepTime(32, 32*1536)
	}
}

// TestLinkSnapshotBacklogBoundaries pins the backlog math at transfer tick
// boundaries: the backlog a snapshot reports shrinks linearly while a
// transfer is on the wire, is exactly zero at the instant the link drains
// (busyUntil <= now means a new transfer starts immediately), and stacks
// across queued transfers.
func TestLinkSnapshotBacklogBoundaries(t *testing.T) {
	l := NewLink("pcie", 1e9)
	start, done := l.Enqueue(0, 1e9) // exactly 1 s of wire
	if start != 0 || done != simclock.FromSeconds(1) {
		t.Fatalf("transfer booked [%v, %v]", start, done)
	}

	if got := l.Snapshot(0).Backlog; got != time.Second {
		t.Errorf("backlog at submission = %v, want 1s", got)
	}
	mid := simclock.FromSeconds(0.25)
	if got := l.Snapshot(mid).Backlog; got != 750*time.Millisecond {
		t.Errorf("backlog mid-transfer = %v, want 750ms", got)
	}
	// Boundary instant: the transfer completes at exactly t=1s, so a
	// submission then waits zero — the boundary belongs to "drained".
	if got := l.Snapshot(done).Backlog; got != 0 {
		t.Errorf("backlog at completion instant = %v, want 0", got)
	}
	if got := l.Snapshot(done + 1).Backlog; got != 0 {
		t.Errorf("backlog after completion = %v, want 0", got)
	}

	// A second transfer submitted mid-wire stacks behind the first; the
	// backlog at the first transfer's boundary is exactly the second's
	// remaining wire time.
	l2 := NewLink("pcie", 1e9)
	l2.Enqueue(0, 1e9)
	s2, d2 := l2.Enqueue(simclock.FromSeconds(0.5), 5e8)
	if s2 != simclock.FromSeconds(1) || d2 != simclock.FromSeconds(1.5) {
		t.Fatalf("queued transfer booked [%v, %v]", s2, d2)
	}
	if got := l2.Snapshot(simclock.FromSeconds(1)).Backlog; got != 500*time.Millisecond {
		t.Errorf("backlog at tick boundary = %v, want 500ms", got)
	}

	snap := l2.Snapshot(simclock.FromSeconds(1))
	if snap.Name != "pcie" || snap.Transfers != 2 || snap.Bytes != 15e8 {
		t.Errorf("snapshot counters = %+v", snap)
	}
	if snap.Busy != 1500*time.Millisecond {
		t.Errorf("snapshot busy = %v, want 1.5s", snap.Busy)
	}
}

// TestLinkReserve: the fabric's multi-link booking primitive updates
// counters like Enqueue and rejects reservations behind the backlog.
func TestLinkReserve(t *testing.T) {
	l := NewLink("nic", 1e9)
	l.Reserve(0, simclock.FromSeconds(2), 1e9) // held 2s by a slower bottleneck
	if l.BusyUntil() != simclock.FromSeconds(2) {
		t.Errorf("busyUntil = %v", l.BusyUntil())
	}
	b, busy, n := l.Stats()
	if b != 1e9 || busy != 2*time.Second || n != 1 {
		t.Errorf("stats = (%d, %v, %d)", b, busy, n)
	}
	defer func() {
		if recover() == nil {
			t.Error("reserving before the backlog should panic")
		}
	}()
	l.Reserve(simclock.FromSeconds(1), simclock.FromSeconds(3), 1)
}
