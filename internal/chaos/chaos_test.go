package chaos

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestActive(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want bool
	}{
		{"nil", nil, false},
		{"zero", &Spec{}, false},
		{"redundancy-1-is-off", &Spec{Redundancy: 1}, false},
		{"recovery-knobs-alone-inactive", &Spec{RetryMax: 5, DetectDelay: time.Second}, false},
		{"scripted-fault", &Spec{Faults: []Fault{{Kind: Crash, Replica: 0}}}, true},
		{"random-faults", &Spec{RandomFaults: 1, Horizon: simclock.FromSeconds(10)}, true},
		{"redundancy-2", &Spec{Redundancy: 2}, true},
	}
	for _, c := range cases {
		if got := c.spec.Active(); got != c.want {
			t.Errorf("%s: Active() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	flap := func(from, to int, d time.Duration) Fault {
		return Fault{Kind: LinkFlap, From: from, To: to, Duration: d}
	}
	cases := []struct {
		name     string
		spec     *Spec
		replicas int
		ok       bool
	}{
		{"nil", nil, 0, true},
		{"zero", &Spec{}, 1, true},
		{"crash-ok", &Spec{Faults: []Fault{{Kind: Crash, At: 1, Replica: 2}}}, 3, true},
		{"crash-out-of-pool", &Spec{Faults: []Fault{{Kind: Crash, Replica: 3}}}, 3, false},
		{"negative-time", &Spec{Faults: []Fault{{Kind: Crash, At: -1}}}, 3, false},
		{"brownout-ok", &Spec{Faults: []Fault{{Kind: Brownout, Replica: 0, Factor: 2, Duration: time.Second}}}, 1, true},
		{"brownout-factor-1", &Spec{Faults: []Fault{{Kind: Brownout, Factor: 1, Duration: time.Second}}}, 1, false},
		{"brownout-no-duration", &Spec{Faults: []Fault{{Kind: Brownout, Factor: 2}}}, 1, false},
		{"flap-ok", &Spec{Faults: []Fault{flap(0, 1, time.Second)}}, 2, true},
		{"flap-self-link", &Spec{Faults: []Fault{flap(1, 1, time.Second)}}, 3, false},
		{"flap-out-of-pool", &Spec{Faults: []Fault{flap(0, 2, time.Second)}}, 2, false},
		{"flap-no-duration", &Spec{Faults: []Fault{flap(0, 1, 0)}}, 2, false},
		{"unknown-kind", &Spec{Faults: []Fault{{Kind: numKinds}}}, 2, false},
		{"random-needs-horizon", &Spec{RandomFaults: 2}, 4, false},
		{"random-needs-survivors", &Spec{RandomFaults: 2, Horizon: simclock.FromSeconds(10)}, 1, false},
		{"random-ok", &Spec{RandomFaults: 2, Horizon: simclock.FromSeconds(10)}, 2, true},
		{"negative-redundancy", &Spec{Redundancy: -1}, 2, false},
	}
	for _, c := range cases {
		err := c.spec.Validate(c.replicas)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate(%d) = %v, want ok=%v", c.name, c.replicas, err, c.ok)
		}
	}
}

func TestDefaults(t *testing.T) {
	zero := &Spec{}
	if got := zero.RetryMaxOrDefault(); got != DefaultRetryMax {
		t.Errorf("RetryMaxOrDefault() = %d, want %d", got, DefaultRetryMax)
	}
	if got := zero.RetryBackoffOrDefault(); got != DefaultRetryBackoff {
		t.Errorf("RetryBackoffOrDefault() = %v, want %v", got, DefaultRetryBackoff)
	}
	if got := zero.DetectDelayOrDefault(); got != DefaultDetectDelay {
		t.Errorf("DetectDelayOrDefault() = %v, want %v", got, DefaultDetectDelay)
	}
	if got := zero.ReplicateEveryOrDefault(); got != DefaultReplicateEvery {
		t.Errorf("ReplicateEveryOrDefault() = %v, want %v", got, DefaultReplicateEvery)
	}
	if got := zero.ReplicateConcurrencyOrDefault(); got != DefaultReplicateConcurrency {
		t.Errorf("ReplicateConcurrencyOrDefault() = %d, want %d", got, DefaultReplicateConcurrency)
	}
	set := &Spec{RetryMax: 7, RetryBackoff: time.Second, DetectDelay: 2 * time.Second,
		ReplicateEvery: 3 * time.Second, ReplicateConcurrency: 9}
	if set.RetryMaxOrDefault() != 7 || set.RetryBackoffOrDefault() != time.Second ||
		set.DetectDelayOrDefault() != 2*time.Second ||
		set.ReplicateEveryOrDefault() != 3*time.Second ||
		set.ReplicateConcurrencyOrDefault() != 9 {
		t.Error("explicit recovery knobs must resolve to themselves")
	}
}

// TestResolvedDeterministic pins the random-plan contract: the draw is a
// pure function of (Seed, RandomFaults, Horizon, replicas), and every
// resolved fault is itself valid for the pool.
func TestResolvedDeterministic(t *testing.T) {
	spec := func() *Spec {
		return &Spec{
			Faults:       []Fault{{Kind: Crash, At: simclock.FromSeconds(8), Replica: 1}},
			RandomFaults: 12,
			Seed:         42,
			Horizon:      simclock.FromSeconds(60),
		}
	}
	const replicas = 4
	a, b := spec().Resolved(replicas), spec().Resolved(replicas)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs resolved to different plans")
	}
	if want := 1 + 12; len(a) != want {
		t.Fatalf("resolved %d faults, want %d", len(a), want)
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].At < a[j].At }) {
		t.Error("resolved plan not sorted by injection time")
	}
	// The resolved plan must pass its own validation — the generator may
	// not draw faults the scripted path would reject.
	if err := (&Spec{Faults: a}).Validate(replicas); err != nil {
		t.Errorf("resolved plan fails validation: %v", err)
	}
	// At most one crash in the whole plan: the pool must keep survivors
	// for retries to land on.
	crashes := 0
	for _, f := range a {
		if f.Kind == Crash {
			crashes++
		}
	}
	if crashes != 1 {
		t.Errorf("resolved plan has %d crashes, want exactly the scripted 1", crashes)
	}

	other := spec()
	other.Seed = 43
	if reflect.DeepEqual(a, other.Resolved(replicas)) {
		t.Error("different seeds resolved to identical plans")
	}
}

// TestResolvedLeavesSpec pins that Resolved never mutates the scripted
// plan it was given — the cluster resolves once per run and the spec may
// be shared across cells.
func TestResolvedLeavesSpec(t *testing.T) {
	s := &Spec{
		Faults:       []Fault{{Kind: Crash, At: simclock.FromSeconds(50), Replica: 0}},
		RandomFaults: 4,
		Seed:         7,
		Horizon:      simclock.FromSeconds(60),
	}
	before := append([]Fault(nil), s.Faults...)
	s.Resolved(3)
	if !reflect.DeepEqual(s.Faults, before) {
		t.Error("Resolved mutated the scripted fault list")
	}
}
