// Package chaos defines the fault-injection plan the cluster simulator
// schedules on its virtual clock: replica crashes, slow-node brownouts,
// and interconnect link flaps, plus the recovery knobs (retry budget,
// detection delay, pin redundancy) the cluster's recovery machinery
// consumes. The package is pure data + deterministic plan generation —
// all wiring lives in internal/cluster, so a zero-value or nil Spec
// leaves every subsystem byte-identical to a fault-free run.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/simclock"
)

// FaultKind classifies one injected fault.
type FaultKind int

// Fault kinds.
const (
	// Crash kills a replica instantly: in-flight requests fail, pins and
	// host mirrors vanish, its fabric endpoint goes dark. Recovery is
	// gateway re-routing with capped retry + backoff, mirror-driven pin
	// re-replication, and (under autoscaling) warm-up-path backfill.
	Crash FaultKind = iota
	// Brownout multiplies a replica's iteration cost by Factor for
	// Duration — the slow-node model.
	Brownout
	// LinkFlap takes the interconnect pair (From, To) down for Duration in
	// both directions: in-flight transfers crossing it abort and new
	// migrations are declined until it recovers.
	LinkFlap

	numKinds
)

var kindNames = [numKinds]string{"crash", "brownout", "link-flap"}

func (k FaultKind) String() string {
	if k >= 0 && k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one scheduled fault.
type Fault struct {
	Kind FaultKind
	// At is the virtual-clock injection instant.
	At simclock.Time
	// Replica targets Crash and Brownout.
	Replica int
	// Duration bounds Brownout and LinkFlap windows.
	Duration time.Duration
	// Factor is the Brownout iteration-cost multiplier (> 1 slows).
	Factor float64
	// From and To name the LinkFlap pair (flapped in both directions).
	From, To int
}

// Spec is the fault plan plus the recovery knobs. The zero value (and a
// nil pointer) injects nothing and must leave a run byte-identical to one
// that never saw the spec.
type Spec struct {
	// Faults is the scripted plan.
	Faults []Fault

	// RandomFaults asks for this many additional seeded-random faults
	// drawn over [0, Horizon); Seed keys the draw.
	RandomFaults int
	Seed         int64
	Horizon      simclock.Time

	// RetryMax caps re-routing attempts per orphaned request before it is
	// counted failed (default 3).
	RetryMax int
	// RetryBackoff is the first retry delay; it doubles per attempt
	// (default 250ms).
	RetryBackoff time.Duration
	// DetectDelay models the gateway noticing the crash via missed prefix-
	// index heartbeats: orphan re-routing starts this long after the crash
	// (default 250ms).
	DetectDelay time.Duration

	// Redundancy is the pin-redundancy factor K: the cluster keeps host-
	// tier mirrors of every pinned session prefix on K-1 backup replicas,
	// refreshed every ReplicateEvery under ReplicateConcurrency in-flight
	// copies. 0 or 1 disables redundancy.
	Redundancy           int
	ReplicateEvery       time.Duration
	ReplicateConcurrency int
}

// Defaults for the recovery knobs.
const (
	DefaultRetryMax             = 3
	DefaultRetryBackoff         = 250 * time.Millisecond
	DefaultDetectDelay          = 250 * time.Millisecond
	DefaultReplicateEvery       = 5 * time.Second
	DefaultReplicateConcurrency = 2
)

// Active reports whether the spec asks for any behavior change at all.
// Inactive specs (nil, or zero faults and no redundancy) must be treated
// exactly like no spec — that is the zero-fault byte-identity contract.
func (s *Spec) Active() bool {
	if s == nil {
		return false
	}
	return len(s.Faults) > 0 || s.RandomFaults > 0 || s.Redundancy > 1
}

// RetryMaxOrDefault resolves the retry cap.
func (s *Spec) RetryMaxOrDefault() int {
	if s.RetryMax > 0 {
		return s.RetryMax
	}
	return DefaultRetryMax
}

// RetryBackoffOrDefault resolves the base retry backoff.
func (s *Spec) RetryBackoffOrDefault() time.Duration {
	if s.RetryBackoff > 0 {
		return s.RetryBackoff
	}
	return DefaultRetryBackoff
}

// DetectDelayOrDefault resolves the crash-detection delay.
func (s *Spec) DetectDelayOrDefault() time.Duration {
	if s.DetectDelay > 0 {
		return s.DetectDelay
	}
	return DefaultDetectDelay
}

// ReplicateEveryOrDefault resolves the redundancy refresh period.
func (s *Spec) ReplicateEveryOrDefault() time.Duration {
	if s.ReplicateEvery > 0 {
		return s.ReplicateEvery
	}
	return DefaultReplicateEvery
}

// ReplicateConcurrencyOrDefault resolves the replication concurrency bound.
func (s *Spec) ReplicateConcurrencyOrDefault() int {
	if s.ReplicateConcurrency > 0 {
		return s.ReplicateConcurrency
	}
	return DefaultReplicateConcurrency
}

// Validate reports plan errors against a replica count.
func (s *Spec) Validate(replicas int) error {
	if s == nil {
		return nil
	}
	for i, f := range s.Faults {
		if f.At < 0 {
			return fmt.Errorf("chaos: fault %d at negative time %v", i, f.At)
		}
		switch f.Kind {
		case Crash:
			if f.Replica < 0 || f.Replica >= replicas {
				return fmt.Errorf("chaos: fault %d crashes replica %d outside pool of %d",
					i, f.Replica, replicas)
			}
		case Brownout:
			if f.Replica < 0 || f.Replica >= replicas {
				return fmt.Errorf("chaos: fault %d browns out replica %d outside pool of %d",
					i, f.Replica, replicas)
			}
			if f.Factor <= 1 {
				return fmt.Errorf("chaos: fault %d brownout factor %v must exceed 1", i, f.Factor)
			}
			if f.Duration <= 0 {
				return fmt.Errorf("chaos: fault %d brownout needs a positive duration", i)
			}
		case LinkFlap:
			if f.From < 0 || f.From >= replicas || f.To < 0 || f.To >= replicas || f.From == f.To {
				return fmt.Errorf("chaos: fault %d flaps invalid link %d-%d in pool of %d",
					i, f.From, f.To, replicas)
			}
			if f.Duration <= 0 {
				return fmt.Errorf("chaos: fault %d link flap needs a positive duration", i)
			}
		default:
			return fmt.Errorf("chaos: fault %d has unknown kind %d", i, int(f.Kind))
		}
	}
	if s.RandomFaults > 0 && s.Horizon <= 0 {
		return fmt.Errorf("chaos: %d random faults need a positive horizon", s.RandomFaults)
	}
	if s.RandomFaults > 0 && replicas < 2 {
		return fmt.Errorf("chaos: random faults need at least 2 replicas")
	}
	if s.Redundancy < 0 {
		return fmt.Errorf("chaos: negative redundancy %d", s.Redundancy)
	}
	return nil
}

// Resolved returns the full fault plan — scripted faults plus the seeded-
// random ones — sorted by injection time (ties by kind, then replica).
// The draw is a pure function of (Seed, RandomFaults, Horizon, replicas),
// so identical specs resolve to identical plans on every run.
func (s *Spec) Resolved(replicas int) []Fault {
	if s == nil {
		return nil
	}
	out := append([]Fault(nil), s.Faults...)
	if s.RandomFaults > 0 && replicas >= 2 {
		rng := rand.New(rand.NewSource(s.Seed))
		for i := 0; i < s.RandomFaults; i++ {
			f := Fault{At: simclock.Time(rng.Int63n(int64(s.Horizon)))}
			switch rng.Intn(3) {
			case 0:
				// At most one random crash: the pool must keep survivors
				// for retries to land on.
				if hasCrash(out) {
					f.Kind = Brownout
					f.Replica = rng.Intn(replicas)
					f.Factor = 2 + 2*rng.Float64()
					f.Duration = time.Duration(1+rng.Intn(5)) * time.Second
					break
				}
				f.Kind = Crash
				f.Replica = rng.Intn(replicas)
			case 1:
				f.Kind = Brownout
				f.Replica = rng.Intn(replicas)
				f.Factor = 2 + 2*rng.Float64()
				f.Duration = time.Duration(1+rng.Intn(5)) * time.Second
			case 2:
				f.Kind = LinkFlap
				f.From = rng.Intn(replicas)
				f.To = (f.From + 1 + rng.Intn(replicas-1)) % replicas
				f.Duration = time.Duration(1+rng.Intn(5)) * time.Second
			}
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

func hasCrash(fs []Fault) bool {
	for _, f := range fs {
		if f.Kind == Crash {
			return true
		}
	}
	return false
}
