package obs

import (
	"strings"
	"testing"

	"repro/internal/simclock"
)

// TestEmitOrdering: same-instant events sort by the total (At, Replica,
// recorder rank, emission sequence) order and Events() renumbers Seq to
// the canonical position — the deterministic tie-break that keeps
// exports byte-stable whatever order the sinks were written in.
func TestEmitOrdering(t *testing.T) {
	r := NewRecorder()
	at := simclock.FromSeconds(1)
	r.Emit(at, KindKVEvict, 2, -1, 7, 0, 0, 0, 0, "")
	r.Emit(at, KindKVPin, 0, -1, 7, 0, 0, 0, 0, "")
	r.Emit(at, KindKVPin, 2, -1, 8, 0, 0, 0, 0, "")
	r.Emit(at.Add(1), KindArrival, -1, 1, 0, 0, 0, 0, 0, "")

	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	wantReplica := []int32{0, 2, 2, -1}
	wantKind := []Kind{KindKVPin, KindKVEvict, KindKVPin, KindArrival}
	for i := range ev {
		if ev[i].Replica != wantReplica[i] || ev[i].Kind != wantKind[i] {
			t.Errorf("event %d: replica %d kind %v, want replica %d kind %v",
				i, ev[i].Replica, ev[i].Kind, wantReplica[i], wantKind[i])
		}
		if ev[i].Seq != uint64(i) {
			t.Errorf("event %d: canonical seq %d, want %d", i, ev[i].Seq, i)
		}
	}
	if r.CountKind(KindKVPin) != 2 {
		t.Errorf("CountKind(KindKVPin) = %d, want 2", r.CountKind(KindKVPin))
	}
}

// TestMergeOrdering (satellite of the sharded-safe recorder): events
// split across per-shard recorders merge into exactly the stream a
// single recorder would have produced — same-instant, same-replica runs
// order by (recorder rank, per-recorder sequence), and renumbering makes
// the merged export byte-comparable.
func TestMergeOrdering(t *testing.T) {
	at := simclock.FromSeconds(2)

	// One recorder receiving everything, interleaved by replica the way a
	// single-threaded run would emit.
	single := NewRecorder()
	single.Emit(at, KindArrival, -1, 5, 0, 0, 0, 0, 0, "")
	single.Emit(at, KindQueue, 0, 5, 0, 0, 0, 0, 0, "")
	single.Emit(at, KindAdmit, 0, 5, 0, 0, 0, 0, 0, "")
	single.Emit(at, KindQueue, 1, 6, 0, 0, 0, 0, 0, "")
	single.Emit(at.Add(3), KindFirstToken, 1, 6, 0, 0, 0, 0, 0, "")

	// The same events routed by replica across a coordinator recorder
	// (rank 0) and two shard recorders.
	coord := NewRecorder()
	sh0 := NewShardRecorder(1)
	sh1 := NewShardRecorder(2)
	coord.Emit(at, KindArrival, -1, 5, 0, 0, 0, 0, 0, "")
	// Shard 1 writes before shard 0 — arrival order across sinks must not
	// matter.
	sh1.Emit(at, KindQueue, 1, 6, 0, 0, 0, 0, 0, "")
	sh1.Emit(at.Add(3), KindFirstToken, 1, 6, 0, 0, 0, 0, 0, "")
	sh0.Emit(at, KindQueue, 0, 5, 0, 0, 0, 0, 0, "")
	sh0.Emit(at, KindAdmit, 0, 5, 0, 0, 0, 0, 0, "")

	want := single.Events()
	got := Merge(coord, sh0, sh1).Events()
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		g.rec, w.rec = 0, 0 // recorder rank is an internal routing detail
		if g != w {
			t.Errorf("event %d: merged %+v, single %+v", i, g, w)
		}
	}

	if Merge() != nil || Merge(nil, nil) != nil {
		t.Error("merging no recorders must yield nil")
	}
}

// TestNilSinkIsFree: every method of a nil recorder, registry, and
// profiler is a no-op — the obs-off fast path.
func TestNilSinkIsFree(t *testing.T) {
	var r *Recorder
	if r.On() {
		t.Error("nil recorder reports On")
	}
	r.Emit(0, KindArrival, 0, 0, 0, 0, 0, 0, 0, "")
	if r.Len() != 0 || r.Events() != nil || r.CountKind(KindArrival) != 0 {
		t.Error("nil recorder retained state")
	}

	var g *Registry
	if g.On() || g.Tick() {
		t.Error("nil registry reports On/Tick")
	}
	g.Observe("x", 0, 1)
	if g.All() != nil || g.Get("x") != nil {
		t.Error("nil registry retained state")
	}

	var p *Profiler
	p.End(PhaseEngineStep, p.Begin())
	if p.Stat(PhaseEngineStep).Calls != 0 {
		t.Error("nil profiler retained state")
	}

	var c *Capture
	if c.Recorder() != nil || c.Reg() != nil || c.Prof() != nil {
		t.Error("nil capture returned non-nil layer")
	}
	if paths, err := c.WriteFiles(t.TempDir(), "x", 0); err != nil || paths != nil {
		t.Errorf("nil capture WriteFiles = %v, %v", paths, err)
	}
}

// TestCaptureLayers: NewCapture allocates exactly the requested layers.
func TestCaptureLayers(t *testing.T) {
	if NewCapture(Options{}) != nil {
		t.Error("zero Options must produce a nil capture")
	}
	c := NewCapture(Options{Events: true, Profile: true})
	if c.Recorder() == nil || c.Prof() == nil || c.Reg() != nil {
		t.Error("capture layers do not match options")
	}
}

// TestRegistryStride: a stride-3 registry records ticks 0, 3, 6, ...
func TestRegistryStride(t *testing.T) {
	g := NewRegistry(3)
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, g.Tick())
	}
	want := []bool{true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tick %d: recorded=%v, want %v", i, got[i], want[i])
		}
	}
}

// TestRegistryObserve: series keep insertion order and per-series points.
func TestRegistryObserve(t *testing.T) {
	g := NewRegistry(1)
	g.Observe("b", simclock.FromSeconds(1), 10)
	g.Observe("a", simclock.FromSeconds(1), 20)
	g.Observe("b", simclock.FromSeconds(2), 30)
	all := g.All()
	if len(all) != 2 || all[0].Name != "b" || all[1].Name != "a" {
		t.Fatalf("series order wrong: %+v", all)
	}
	if s := g.Get("b"); len(s.Values) != 2 || s.Values[1] != 30 {
		t.Fatalf("series b points wrong: %+v", s)
	}
}

// TestProfilerRoundTrip: phases accumulate, the report serializes, and
// the regression gate trips only past the factor.
func TestProfilerRoundTrip(t *testing.T) {
	p := NewProfiler()
	p.End(PhaseControlTick, p.Begin())
	if p.Stat(PhaseControlTick).Calls != 1 {
		t.Fatal("phase not charged")
	}
	rep := p.Report("test", 5, 1000)
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != "test" || back.Events != 5 {
		t.Fatalf("report round-trip lost fields: %+v", back)
	}

	base := BenchReport{Phases: map[string]BenchPhase{
		"engine_step": {Calls: 100, AvgNS: 10000},
	}}
	ok := BenchReport{Phases: map[string]BenchPhase{
		"engine_step": {Calls: 100, AvgNS: 15000},
	}}
	bad := BenchReport{Phases: map[string]BenchPhase{
		"engine_step": {Calls: 100, AvgNS: 30000},
	}}
	if err := CompareBench(ok, base, 2.0); err != nil {
		t.Errorf("1.5x flagged as regression: %v", err)
	}
	if err := CompareBench(bad, base, 2.0); err == nil {
		t.Error("3x regression not flagged")
	}
	noise := BenchReport{Phases: map[string]BenchPhase{
		"engine_step": {Calls: 100, AvgNS: 400},
	}}
	noisier := BenchReport{Phases: map[string]BenchPhase{
		"engine_step": {Calls: 100, AvgNS: 100},
	}}
	if err := CompareBench(noise, noisier, 2.0); err != nil {
		t.Errorf("sub-floor phase gated: %v", err)
	}
}

// TestEmitAllocBound: the recording path amortizes to far below one
// allocation per event (one chunk per eventChunk events).
func TestEmitAllocBound(t *testing.T) {
	r := NewRecorder()
	i := 0
	avg := testing.AllocsPerRun(4*eventChunk, func() {
		r.Emit(simclock.Time(i), KindDecodeProgress, 1, 2, 3, 4, 5, 6, 0, "")
		i++
	})
	if avg > 0.01 {
		t.Errorf("Emit allocates %.4f allocs/op, want amortized ~1/%d", avg, eventChunk)
	}
}

// BenchmarkEventEmit guards the enabled hot path: pooled events, no
// per-event heap escape.
func BenchmarkEventEmit(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(simclock.Time(i), KindDecodeProgress, 1, int(uint(i)%64), 3, int64(i), 5, 6, 0, "")
	}
}

// BenchmarkEventEmitDisabled measures the obs-off path: a nil recorder.
func BenchmarkEventEmitDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(simclock.Time(i), KindDecodeProgress, 1, 2, 3, 4, 5, 6, 0, "")
	}
}
