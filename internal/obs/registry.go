package obs

import "repro/internal/simclock"

// Series is one named telemetry series: parallel time/value slices in
// observation order.
type Series struct {
	Name   string
	Times  []simclock.Time
	Values []float64
}

// Registry records named per-tick telemetry series. Like the Recorder, a
// nil *Registry is valid and free: every method nil-guards.
//
// Callers that sample on a periodic tick gate each burst of Observe calls
// on Tick(), which applies the configured sampling stride; out-of-band
// observations (control-loop signals) bypass Tick and record every time.
type Registry struct {
	stride int
	ticks  uint64
	order  []*Series
	index  map[string]*Series
}

// NewRegistry returns an empty registry recording every stride-th
// sampling tick (stride <= 1 records all).
func NewRegistry(stride int) *Registry {
	if stride < 1 {
		stride = 1
	}
	return &Registry{stride: stride, index: make(map[string]*Series)}
}

// On reports whether series should be recorded.
func (g *Registry) On() bool { return g != nil }

// Tick advances the sampling-tick counter and reports whether this tick's
// observations should be recorded under the configured stride.
func (g *Registry) Tick() bool {
	if g == nil {
		return false
	}
	g.ticks++
	return (g.ticks-1)%uint64(g.stride) == 0
}

// Observe appends one point to the named series, creating it on first
// use. Callers pass precomputed (constant or cached) name strings so the
// recording path does not build strings per point.
func (g *Registry) Observe(name string, at simclock.Time, v float64) {
	if g == nil {
		return
	}
	s, ok := g.index[name]
	if !ok {
		s = &Series{Name: name}
		g.index[name] = s
		g.order = append(g.order, s)
	}
	s.Times = append(s.Times, at)
	s.Values = append(s.Values, v)
}

// All returns the series in first-observation order.
func (g *Registry) All() []*Series {
	if g == nil {
		return nil
	}
	return g.order
}

// Get returns the named series, or nil when it was never observed.
func (g *Registry) Get(name string) *Series {
	if g == nil {
		return nil
	}
	return g.index[name]
}
