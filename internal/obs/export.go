package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/simclock"
)

// WriteJSONL writes the recorded events as one JSON object per line, in
// the canonical (At, Replica, recorder rank, Seq) order with Seq
// renumbered to the canonical position. The encoder emits a fixed field
// order and fixed number formatting, so output is byte-stable across
// runs of the same scenario — and across shard counts.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Events() {
		bw.WriteString(`{"seq":`)
		bw.WriteString(strconv.FormatUint(e.Seq, 10))
		bw.WriteString(`,"t_ns":`)
		bw.WriteString(strconv.FormatInt(int64(e.At), 10))
		bw.WriteString(`,"kind":"`)
		bw.WriteString(e.Kind.String())
		bw.WriteString(`","replica":`)
		bw.WriteString(strconv.FormatInt(int64(e.Replica), 10))
		bw.WriteString(`,"request":`)
		bw.WriteString(strconv.FormatInt(int64(e.Request), 10))
		bw.WriteString(`,"session":`)
		bw.WriteString(strconv.FormatInt(int64(e.Session), 10))
		bw.WriteString(`,"a":`)
		bw.WriteString(strconv.FormatInt(e.A, 10))
		bw.WriteString(`,"b":`)
		bw.WriteString(strconv.FormatInt(e.B, 10))
		bw.WriteString(`,"c":`)
		bw.WriteString(strconv.FormatInt(e.C, 10))
		if e.F != 0 {
			bw.WriteString(`,"f":`)
			bw.WriteString(strconv.FormatFloat(e.F, 'g', -1, 64))
		}
		if e.Label != "" {
			bw.WriteString(`,"label":`)
			lbl, err := json.Marshal(e.Label)
			if err != nil {
				return err
			}
			bw.Write(lbl)
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// jsonlEvent is the wire shape of one events.jsonl line, mirroring the
// field order WriteJSONL emits.
type jsonlEvent struct {
	Seq     uint64  `json:"seq"`
	TNs     int64   `json:"t_ns"`
	Kind    string  `json:"kind"`
	Replica int32   `json:"replica"`
	Request int32   `json:"request"`
	Session int32   `json:"session"`
	A       int64   `json:"a"`
	B       int64   `json:"b"`
	C       int64   `json:"c"`
	F       float64 `json:"f"`
	Label   string  `json:"label"`
}

// ReadEventsJSONL parses an events.jsonl export back into events —
// the inverse of WriteJSONL, used by offline analyzers
// (cmd/tokenflow-trace). Unknown kinds and malformed lines fail with
// the offending line number.
func ReadEventsJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: events.jsonl line %d: %w", line, err)
		}
		kind, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: events.jsonl line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			Seq: je.Seq, At: simclock.Time(je.TNs), Kind: kind,
			Replica: je.Replica, Request: je.Request, Session: je.Session,
			A: je.A, B: je.B, C: je.C, F: je.F, Label: je.Label,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading events.jsonl: %w", err)
	}
	return out, nil
}

// WriteCSV writes every series as long-format CSV
// (series,time_s,value), one block per series in first-observation
// order.
func (g *Registry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("series,time_s,value\n")
	for _, s := range g.All() {
		for i := range s.Times {
			bw.WriteString(s.Name)
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(s.Times[i].Seconds(), 'g', -1, 64))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(s.Values[i], 'g', -1, 64))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// clusterPid is the Chrome-trace process id for cluster-scoped events
// (arrivals, gateway, routing, scale decisions); replica-scoped events
// use pid = replica id.
const clusterPid = 1000000

// traceEvent is one entry of a Chrome trace_event document (the JSON
// Array Format that chrome://tracing and Perfetto open directly).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t interface{ Seconds() float64 }) float64 { return t.Seconds() * 1e6 }

// WriteChromeTrace renders the event stream as Chrome trace_event JSON:
// one track (process) per replica plus a cluster track, request
// lifecycles as queue/prefill/decode slices, routing and migrations as
// flow arrows, and sheds/evictions/scale decisions as instants. Open the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()

	var out []traceEvent
	meta := func(pid int, name string) {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(clusterPid, "cluster")
	seen := map[int32]bool{}
	for _, e := range events {
		if e.Replica >= 0 && !seen[e.Replica] {
			seen[e.Replica] = true
			meta(int(e.Replica), fmt.Sprintf("replica %d", e.Replica))
		}
	}

	// Request lifecycle: first queue/admit/first-token/complete instants
	// per request, sliced on the serving replica's track.
	type life struct {
		replica                         int32
		queue, admit, first, complete   float64
		hasQ, hasA, hasF, hasC, started bool
	}
	lives := map[int32]*life{}
	lifeOf := func(req int32) *life {
		l, ok := lives[req]
		if !ok {
			l = &life{replica: -1}
			lives[req] = l
		}
		return l
	}
	var order []int32
	for _, e := range events {
		if e.Request < 0 {
			continue
		}
		l := lifeOf(e.Request)
		if !l.started {
			l.started = true
			order = append(order, e.Request)
		}
		ts := usec(e.At)
		switch e.Kind {
		case KindQueue:
			if !l.hasQ {
				l.queue, l.hasQ, l.replica = ts, true, e.Replica
			}
		case KindAdmit:
			if !l.hasA {
				l.admit, l.hasA = ts, true
			}
		case KindFirstToken:
			if !l.hasF {
				l.first, l.hasF = ts, true
			}
		case KindComplete:
			if !l.hasC {
				l.complete, l.hasC = ts, true
			}
		}
	}
	slice := func(name string, pid int, tid int32, ts, end float64) {
		out = append(out, traceEvent{
			Name: name, Ph: "X", Ts: ts, Dur: end - ts,
			Pid: pid, Tid: int(tid), Cat: "request",
		})
	}
	for _, req := range order {
		l := lives[req]
		if l.replica < 0 {
			continue
		}
		pid := int(l.replica)
		if l.hasQ && l.hasA {
			slice("queue", pid, req, l.queue, l.admit)
		}
		if l.hasA && l.hasF {
			slice("prefill", pid, req, l.admit, l.first)
		}
		if l.hasF && l.hasC {
			slice("decode", pid, req, l.first, l.complete)
		}
	}

	// Flow arrows: route decisions bind the cluster-track arrival to the
	// replica-track queue slice; accepted migrations arrow donor→target.
	for _, e := range events {
		ts := usec(e.At)
		switch e.Kind {
		case KindRouteDecision:
			l := lives[e.Request]
			if l == nil || !l.hasQ {
				continue
			}
			id := int(e.Request) + 1 // flow ids must be nonzero
			out = append(out,
				traceEvent{Name: "route", Ph: "s", Ts: ts, Pid: clusterPid,
					Tid: int(e.Request), Cat: "route", ID: id},
				traceEvent{Name: "route", Ph: "f", BP: "e", Ts: l.queue,
					Pid: int(l.replica), Tid: int(e.Request), Cat: "route", ID: id})
		case KindMigrateAccept:
			id := int(e.Seq) + 1<<26
			out = append(out,
				traceEvent{Name: "migrate", Ph: "s", Ts: ts, Pid: int(e.Replica),
					Tid: int(e.Session), Cat: "migrate", ID: id},
				traceEvent{Name: "migrate", Ph: "f", BP: "e", Ts: ts + 1, Pid: int(e.A),
					Tid: int(e.Session), Cat: "migrate", ID: id})
		}
	}

	// Instants: events worth a marker but not a span.
	for _, e := range events {
		var name string
		pid := int(e.Replica)
		switch e.Kind {
		case KindGatewayShed:
			name, pid = "shed", clusterPid
		case KindScaleDecision:
			name, pid = e.Label, clusterPid
		case KindMigrateDecline:
			name = "migrate-declined"
		case KindKVEvict:
			name = "kv-evict"
		default:
			continue
		}
		out = append(out, traceEvent{
			Name: name, Ph: "i", S: "g", Ts: usec(e.At),
			Pid: pid, Tid: int(e.Session),
		})
	}

	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{TraceEvents: out}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFiles writes every captured layer into dir: events.jsonl,
// trace.json, series.csv and BENCH_obs.json (only the layers that were
// on). It creates dir if needed and returns the paths written.
func (c *Capture) WriteFiles(dir, scenario string, wall time.Duration) ([]string, error) {
	if c == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(name string, fn func(io.Writer) error) error {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, p)
		return nil
	}
	if c.Events != nil {
		if err := write("events.jsonl", c.Events.WriteJSONL); err != nil {
			return paths, err
		}
		if err := write("trace.json", c.Events.WriteChromeTrace); err != nil {
			return paths, err
		}
	}
	if c.Series != nil {
		if err := write("series.csv", c.Series.WriteCSV); err != nil {
			return paths, err
		}
	}
	if c.Profile != nil {
		rep := c.Profile.Report(scenario, c.Events.Len(), wall)
		if err := write("BENCH_obs.json", rep.WriteJSON); err != nil {
			return paths, err
		}
	}
	return paths, nil
}
