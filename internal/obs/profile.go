package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Phase labels one self-profiled simulator phase.
type Phase uint8

const (
	// PhaseControlTick is the cluster's autoscale control tick.
	PhaseControlTick Phase = iota
	// PhaseEngineStep is one engine scheduling step (a kick: decide,
	// admit, launch).
	PhaseEngineStep
	// PhaseFabricSettle is one transfer booking through the fabric's
	// bottleneck scan.
	PhaseFabricSettle
	// PhaseAttribution is the latency-attribution finalize: merging the
	// per-shard sketch grids and building the attribution report at
	// collect time. The streaming observe path is deliberately not
	// phase-timed (a wall-clock read per event would dwarf the work);
	// its cost lands inside engine_step and fabric_settle instead.
	PhaseAttribution

	numPhases
)

var phaseNames = [numPhases]string{"control_tick", "engine_step", "fabric_settle", "attribution"}

// String returns the phase's stable report name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseStat accumulates wall-clock time for one phase.
type PhaseStat struct {
	Calls   uint64 `json:"calls"`
	TotalNS int64  `json:"total_ns"`
}

// Profiler times the simulator's own phases with the wall clock. The
// measurements never feed back into simulation state, so profiling cannot
// perturb virtual-time results; a nil *Profiler is valid and free.
type Profiler struct {
	stats [numPhases]PhaseStat
}

// NewProfiler returns a zeroed profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Begin returns the wall-clock start of a phase (zero when p is nil, so
// the matching End is also free).
func (p *Profiler) Begin() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// End charges the elapsed wall time since t0 to the phase.
func (p *Profiler) End(ph Phase, t0 time.Time) {
	if p == nil {
		return
	}
	s := &p.stats[ph]
	s.Calls++
	s.TotalNS += time.Since(t0).Nanoseconds()
}

// Stat returns the accumulated stat for a phase.
func (p *Profiler) Stat(ph Phase) PhaseStat {
	if p == nil {
		return PhaseStat{}
	}
	return p.stats[ph]
}

// MergeProfilers sums per-shard profilers into one (nil entries are
// skipped; all-nil input yields nil). Sharded runs time each shard's
// engine steps and fabric settles on the shard's own profiler and fold
// them here at collect time.
func MergeProfilers(ps ...*Profiler) *Profiler {
	var m *Profiler
	for _, p := range ps {
		if p == nil {
			continue
		}
		if m == nil {
			m = NewProfiler()
		}
		for ph := Phase(0); ph < numPhases; ph++ {
			m.stats[ph].Calls += p.stats[ph].Calls
			m.stats[ph].TotalNS += p.stats[ph].TotalNS
		}
	}
	return m
}

// BenchPhase is one phase's entry in a BENCH_obs.json report.
type BenchPhase struct {
	Calls   uint64 `json:"calls"`
	TotalNS int64  `json:"total_ns"`
	AvgNS   int64  `json:"avg_ns"`
}

// BenchReport is the on-disk shape of BENCH_obs.json: the simulator's
// self-measured perf trajectory for one reference run.
type BenchReport struct {
	// Scenario names the reference run the numbers describe.
	Scenario string `json:"scenario"`
	// Events is the number of lifecycle events the run emitted.
	Events int `json:"events"`
	// WallNS is the run's total wall-clock time.
	WallNS int64 `json:"wall_ns"`
	// Phases maps phase name to its accumulated timing.
	Phases map[string]BenchPhase `json:"phases"`
}

// Report assembles a BenchReport from the profiler's accumulated stats.
func (p *Profiler) Report(scenario string, events int, wall time.Duration) BenchReport {
	r := BenchReport{
		Scenario: scenario,
		Events:   events,
		WallNS:   wall.Nanoseconds(),
		Phases:   make(map[string]BenchPhase, numPhases),
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		s := p.Stat(ph)
		b := BenchPhase{Calls: s.Calls, TotalNS: s.TotalNS}
		if s.Calls > 0 {
			b.AvgNS = s.TotalNS / int64(s.Calls)
		}
		r.Phases[ph.String()] = b
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a BENCH_obs.json document.
func ReadBenchReport(data []byte) (BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchReport{}, fmt.Errorf("obs: parsing bench report: %w", err)
	}
	return r, nil
}

// regressionFloorNS ignores phases whose per-call average is below this
// floor when gating regressions: at sub-microsecond scale the comparison
// measures timer noise, not the simulator.
const regressionFloorNS = 500

// CompareBench checks r (the fresh run) against a committed baseline and
// returns an error describing the first phase whose per-call average
// regressed by more than the given factor (e.g. 2.0 for the CI gate).
// Phases absent from the baseline, with too few calls, or under the noise
// floor are skipped.
func CompareBench(r, baseline BenchReport, factor float64) error {
	for name, base := range baseline.Phases {
		cur, ok := r.Phases[name]
		if !ok || base.Calls == 0 || cur.Calls == 0 {
			continue
		}
		if base.AvgNS < regressionFloorNS && cur.AvgNS < regressionFloorNS {
			continue
		}
		limit := int64(float64(base.AvgNS) * factor)
		if base.AvgNS > 0 && cur.AvgNS > limit {
			return fmt.Errorf("obs: phase %s regressed: avg %dns > %.1fx baseline %dns",
				name, cur.AvgNS, factor, base.AvgNS)
		}
	}
	return nil
}
