// Package obs is the simulator's flight recorder: a virtual-clock event
// bus with typed, pooled lifecycle events, a named-series telemetry
// registry, exporters (JSONL, CSV, Chrome trace_event JSON), and a wall-
// clock self-profiler for the simulator's own phases.
//
// The package is built around one invariant: a nil recorder is free. Every
// subsystem holds a *Recorder that defaults to nil, every emit site is
// nil-guarded, and emission never schedules events or mutates simulation
// state — observability off is byte-identical to a build without the
// package. With observability on, events live in chunked arenas (one
// allocation per eventChunk events, no per-event heap escape), guarded by
// BenchmarkEventEmit.
package obs

import (
	"sort"

	"repro/internal/simclock"
)

// Kind labels one lifecycle event. The numeric order groups the request
// path first, then KV, migration, scaling, and fabric events.
type Kind uint8

const (
	// KindArrival: a request entered the cluster. Request/Session set;
	// A=prompt tokens, B=output tokens.
	KindArrival Kind = iota
	// KindGatewayBuffer: the scale-to-zero gateway buffered an arrival.
	// A=gateway depth after buffering.
	KindGatewayBuffer
	// KindGatewayShed: the gateway refused an arrival at capacity.
	// A=gateway depth at refusal.
	KindGatewayShed
	// KindRouteDecision: the router picked a replica. Replica=picked;
	// F=the policy's score for the pick; Label=policy name.
	KindRouteDecision
	// KindQueue: a request was injected into a replica's queue.
	// A=cached prefix tokens credited at injection (prefix hit when >0);
	// B=QueuePayload(cause, turn) — the deferral-cause bits packed with
	// the session turn; C=the request's arrival time (ns);
	// F=the host-reload deferral (ns; 0 when injected immediately).
	KindQueue
	// KindAdmit: the scheduler admitted a request toward prefill.
	// A=tokens to prefill (prompt minus cached), B=tokens allocated.
	KindAdmit
	// KindPreempt: a running request was preempted for memory.
	KindPreempt
	// KindResume: a preempted request resumed. Label="load" (KV restored
	// over the wire) or "recompute".
	KindResume
	// KindFirstToken: prefill completed and the first token was delivered.
	KindFirstToken
	// KindDecodeProgress: decode heartbeat, every decodeStride tokens.
	// A=tokens generated so far.
	KindDecodeProgress
	// KindComplete: the request finished. A=tokens generated.
	KindComplete
	// KindKVPin: a session prefix was pinned. Session set; A=tokens,
	// B=pages.
	KindKVPin
	// KindKVEvict: a session pin was evicted. A=tokens, B=pages.
	KindKVEvict
	// KindKVMirror: an evicted pin left a host-tier mirror. A=tokens,
	// B=pages.
	KindKVMirror
	// KindKVMirrorDrop: a host mirror was released (budget eviction,
	// replacement, or consumed by a reload). A=tokens, B=pages.
	KindKVMirrorDrop
	// KindKVReload: a host mirror's h2d reload was booked. A=tokens,
	// B=bytes.
	KindKVReload
	// KindMigrateAccept: a prefix migration was committed. Replica=donor,
	// A=target replica, B=tokens, C=bytes.
	KindMigrateAccept
	// KindMigrateDecline: the cost model declined a migration.
	// Replica=donor, A=target replica, B=transfer ETA (ns),
	// C=recompute estimate (ns), F=prefix tokens weighed.
	KindMigrateDecline
	// KindPrewarm: a warming replica was seeded with a hot prefix.
	// Replica=donor, A=target replica, B=tokens.
	KindPrewarm
	// KindDrain: a draining replica rehomed (A=target replica) or dropped
	// (A=-1) a pinned prefix. B=tokens.
	KindDrain
	// KindScaleDecision: the autoscaler acted (Hold is not recorded).
	// Replica=affected replica; Label=decision name; A=outstanding,
	// B=gateway depth, C=windowed P99 TTFT (ns), F=pooled KV utilization.
	KindScaleDecision
	// KindTransfer: the fabric booked a transfer. Label=class name,
	// A=start (ns), B=done (ns), C=bytes. Replica is the booking side's
	// replica when known, -1 otherwise.
	KindTransfer
	// KindIndexPublish: a replica published a KV lifecycle or load event
	// to the gateway's prefix index. Replica=publisher; Session set for
	// pin/mirror events; A=event kind (prefixindex.EvKind), B=payload
	// value (tokens or queue depth), C=1 when the publication was dropped
	// in flight; Label=event kind name.
	KindIndexPublish
	// KindIndexFallback: an indexed routing decision diverted away from
	// its indexed target (index miss, stale digest, no headroom, or
	// overload). Replica=the replica finally picked; Label=outcome name.
	KindIndexFallback
	// KindCrash: a chaos fault killed the replica. A=orphaned requests
	// handed back for retry, B=pinned sessions lost, C=host mirrors lost.
	KindCrash
	// KindBrownout: a chaos brownout window opened (Label="begin",
	// F=iteration-cost factor) or closed (Label="end").
	KindBrownout
	// KindLinkFlap: an interconnect pair went down (Label="down") or
	// recovered (Label="up"). Replica=From, A=To, B=in-flight transfers
	// aborted by the outage.
	KindLinkFlap
	// KindRetry: an orphaned request re-entered the gateway after a crash.
	// Replica=the replica picked for the retry (-1 when it re-buffered in
	// the gateway or exhausted its budget); A=attempt number;
	// Label="reroute", "gateway", or "failed".
	KindRetry
	// KindReplicate: pin redundancy copied a pinned session prefix into a
	// backup replica's host-mirror tier. Replica=source, A=target replica,
	// B=tokens, C=bytes.
	KindReplicate

	numKinds
)

var kindNames = [numKinds]string{
	"arrival", "gateway-buffer", "gateway-shed", "route", "queue", "admit",
	"preempt", "resume", "first-token", "decode", "complete",
	"kv-pin", "kv-evict", "kv-mirror", "kv-mirror-drop", "kv-reload",
	"migrate-accept", "migrate-decline", "prewarm", "drain",
	"scale-decision", "transfer", "index-publish", "index-fallback",
	"crash", "brownout", "link-flap", "retry", "replicate",
}

// String returns the kind's stable wire name (used in JSONL and CSV).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a wire name back to its Kind (the inverse of
// String), reporting false for unknown names. Offline analyzers reading
// the JSONL export use it to reconstruct typed events.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Deferral causes carried in KindQueue's B payload: a request can reach
// the replica queue later than it arrived because the scale-to-zero
// gateway held it, a prefix migration had to land first, or a host-tier
// KV reload was booked at injection. The cause bits occupy the low bits
// of B; the session turn rides above them, so one replica-scoped event
// carries everything span derivation needs.
const (
	// QueueCauseReload: injection waited for a host-tier KV reload.
	QueueCauseReload int64 = 1 << 0
	// QueueCauseMigrate: injection waited for a prefix migration wire
	// transfer onto the serving replica.
	QueueCauseMigrate int64 = 1 << 1
	// QueueCauseGateway: the scale-to-zero gateway buffered the arrival
	// until a replica warmed up.
	QueueCauseGateway int64 = 1 << 2
	// QueueCauseRetry: the request re-entered after its serving replica
	// crashed (chaos recovery path).
	QueueCauseRetry int64 = 1 << 3

	queueCauseShift = 4
)

// QueuePayload packs the deferral-cause bits and the session turn into
// KindQueue's B field.
func QueuePayload(cause int64, turn int) int64 {
	return cause | int64(turn)<<queueCauseShift
}

// QueueCause unpacks the deferral-cause bits from KindQueue's B field.
func QueueCause(b int64) int64 { return b & (1<<queueCauseShift - 1) }

// QueueTurn unpacks the session turn from KindQueue's B field.
func QueueTurn(b int64) int { return int(b >> queueCauseShift) }

// Event is one recorded lifecycle event. The struct is fixed-size and
// value-typed: recording an event copies it into a chunked arena and never
// allocates per event. Fields that do not apply to a kind hold -1 (ints)
// or 0; per-kind field meaning is documented on the Kind constants.
type Event struct {
	// Seq is the event's position in the run's canonical event order
	// (assigned by Events(); during recording it holds the per-recorder
	// emission order).
	Seq uint64
	// At is the virtual-clock instant of the event.
	At simclock.Time
	// Kind labels the event.
	Kind Kind
	// Replica is the replica the event happened on (-1 for cluster-scoped
	// events such as arrivals and gateway activity).
	Replica int32
	// Request and Session identify the request/session (-1 when not
	// request- or session-scoped).
	Request, Session int32
	// A, B, C and F carry per-kind payloads (see Kind docs).
	A, B, C int64
	F       float64
	// Label is a constant string payload (policy name, transfer class,
	// decision name); emitting one never allocates.
	Label string
	// rec is the rank of the recorder that captured the event — the final
	// tie-break when per-shard streams merge. Zero in single-recorder
	// runs, so it never perturbs their ordering.
	rec int32
}

// eventChunk is the arena granularity: one allocation per this many
// events on the recording path.
const eventChunk = 4096

// Options selects which observability layers a run records. The zero
// value records nothing and costs nothing.
type Options struct {
	// Events records lifecycle events on the bus.
	Events bool
	// Series records named per-tick telemetry series.
	Series bool
	// Profile times the simulator's own phases with the wall clock.
	Profile bool
	// Attribution streams per-request phase spans into bounded-memory
	// quantile sketches (phase × request class × replica). Cluster runs
	// only; it rides the event bus without retaining events, so it works
	// at scales where storing the full stream would not fit.
	Attribution bool
	// SampleEvery records series every Nth sampling tick (0 or 1 = every
	// tick).
	SampleEvery int
}

// Enabled reports whether any layer is on.
func (o Options) Enabled() bool {
	return o.Events || o.Series || o.Profile || o.Attribution
}

// Recorder is the event bus sink. A nil *Recorder is valid and free:
// every method nil-guards, so subsystems emit unconditionally through
// their (possibly nil) recorder pointer.
//
// The recorder is not goroutine-safe; one recorder serves one
// single-goroutine simulation run, matching the simclock discipline.
// Sharded runs give each shard its own recorder (NewShardRecorder) and
// merge the streams afterwards (Merge); the per-recorder rank makes the
// merged order total.
type Recorder struct {
	chunks [][]Event
	seq    uint64
	rank   int32
	tap    func(Event)
	store  bool
}

// NewRecorder returns an empty event recorder (rank 0).
func NewRecorder() *Recorder { return &Recorder{store: true} }

// NewShardRecorder returns a recorder carrying the given rank, stamped
// on every event it records as the final merge tie-break. Sharded runs
// use rank 0 for the coordinator and 1+s for shard s.
func NewShardRecorder(rank int) *Recorder {
	return &Recorder{rank: int32(rank), store: true}
}

// SetTap installs fn, invoked with every emitted event (by value, before
// storage). Streaming consumers — the attribution collector — ride the
// tap so they see events even when storage is disabled.
func (r *Recorder) SetTap(fn func(Event)) {
	if r != nil {
		r.tap = fn
	}
}

// DisableStore stops chunk retention: events still flow to the tap, but
// nothing accumulates. Attribution-only runs use this so 1M-request
// streams never materialize.
func (r *Recorder) DisableStore() {
	if r != nil {
		r.store = false
	}
}

// On reports whether events should be emitted. A nil recorder is off;
// emit sites may use this to skip argument computation.
func (r *Recorder) On() bool { return r != nil }

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, c := range r.chunks {
		n += len(c)
	}
	return n
}

// Emit records one event. It assigns the per-recorder sequence number,
// hands the event to the tap when one is installed, and copies it into
// the current arena chunk; amortized cost is one allocation per
// eventChunk events. Emitting on a nil recorder is a no-op.
func (r *Recorder) Emit(at simclock.Time, kind Kind, replica, request, session int, a, b, c int64, f float64, label string) {
	if r == nil {
		return
	}
	e := Event{
		Seq: r.seq, At: at, Kind: kind,
		Replica: int32(replica), Request: int32(request), Session: int32(session),
		A: a, B: b, C: c, F: f, Label: label,
		rec: r.rank,
	}
	r.seq++
	if r.tap != nil {
		r.tap(e)
	}
	if !r.store {
		return
	}
	n := len(r.chunks)
	if n == 0 || len(r.chunks[n-1]) == cap(r.chunks[n-1]) {
		r.chunks = append(r.chunks, make([]Event, 0, eventChunk))
		n++
	}
	r.chunks[n-1] = append(r.chunks[n-1], e)
}

// Events returns the recorded events in canonical order — sorted by
// (At, Replica, recorder rank, per-recorder Seq), a total tie-break that
// keeps exported output byte-stable across runs and across shard counts
// even when several subsystems emit at the same virtual instant. Seq is
// renumbered to the canonical position, so a merged sharded stream
// exports byte-identically to its single-threaded twin. The returned
// slice is a fresh copy.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	sortEvents(out)
	for i := range out {
		out[i].Seq = uint64(i)
	}
	return out
}

// Merge returns a read-only recorder aggregating every event recorded
// by recs (nil entries are skipped; all-nil input yields nil). Chunks
// are shared, not copied — do not emit through the sources or the
// merged recorder afterwards. Events() on the result interleaves the
// per-shard streams into the canonical order.
func Merge(recs ...*Recorder) *Recorder {
	any := false
	for _, r := range recs {
		if r != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	m := &Recorder{store: true}
	for _, r := range recs {
		if r == nil {
			continue
		}
		m.chunks = append(m.chunks, r.chunks...)
		m.seq += r.seq
	}
	return m
}

// sortEvents orders events by (At, Replica, rec, Seq). The per-recorder
// Seq is unique within a rank, so the order is total. Each recorder
// already emits in nondecreasing At (its clock never runs backwards);
// the sort only interleaves streams and reorders same-instant runs.
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool { return eventLess(ev[i], ev[j]) })
}

func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Replica != b.Replica {
		return a.Replica < b.Replica
	}
	if a.rec != b.rec {
		return a.rec < b.rec
	}
	return a.Seq < b.Seq
}

// CountKind reports how many recorded events have the given kind.
func (r *Recorder) CountKind(k Kind) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, c := range r.chunks {
		for i := range c {
			if c[i].Kind == k {
				n++
			}
		}
	}
	return n
}

// Capture bundles the observability products of one run. Any field may
// be nil when that layer was off.
type Capture struct {
	Events  *Recorder
	Series  *Registry
	Profile *Profiler
}

// NewCapture allocates the layers selected by opts, or returns nil when
// none are.
func NewCapture(opts Options) *Capture {
	if !opts.Enabled() {
		return nil
	}
	c := &Capture{}
	if opts.Events {
		c.Events = NewRecorder()
	}
	if opts.Series {
		c.Series = NewRegistry(opts.SampleEvery)
	}
	if opts.Profile {
		c.Profile = NewProfiler()
	}
	return c
}

// Recorder returns the capture's event recorder (nil when events are off
// or c itself is nil) — safe to pass straight into SetObs hooks.
func (c *Capture) Recorder() *Recorder {
	if c == nil {
		return nil
	}
	return c.Events
}

// Reg returns the capture's series registry, nil-safe like Recorder.
func (c *Capture) Reg() *Registry {
	if c == nil {
		return nil
	}
	return c.Series
}

// Prof returns the capture's profiler, nil-safe like Recorder.
func (c *Capture) Prof() *Profiler {
	if c == nil {
		return nil
	}
	return c.Profile
}
