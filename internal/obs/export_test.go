package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// lifecycleRecorder emits one full request lifecycle plus a shed and a
// declined migration — enough surface for every exporter.
func lifecycleRecorder() *Recorder {
	r := NewRecorder()
	s := simclock.FromSeconds
	r.Emit(s(0.1), KindArrival, -1, 1, 9, 128, 64, 0, 0, "")
	r.Emit(s(0.1), KindRouteDecision, 0, 1, 9, 0, 0, 0, 2.5, "least-queue")
	r.Emit(s(0.1), KindQueue, 0, 1, 9, 32, 0, 0, 0, "")
	r.Emit(s(0.2), KindAdmit, 0, 1, 9, 96, 128, 0, 0, "")
	r.Emit(s(0.5), KindFirstToken, 0, 1, 9, 0, 0, 0, 0, "")
	r.Emit(s(1.5), KindComplete, 0, 1, 9, 64, 0, 0, 0, "")
	r.Emit(s(0.3), KindGatewayShed, -1, 2, 0, 4, 0, 0, 0, "")
	r.Emit(s(0.4), KindMigrateDecline, 1, 3, 9, 0, 2e6, 1e6, 32, "")
	r.Emit(s(0.6), KindMigrateAccept, 1, 4, 9, 0, 32, 4096, 0, "")
	return r
}

// TestWriteJSONLStable: two identical runs produce identical bytes, and
// every line parses as JSON.
func TestWriteJSONLStable(t *testing.T) {
	var a, b strings.Builder
	if err := lifecycleRecorder().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := lifecycleRecorder().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSONL output differs across identical runs")
	}
	sc := bufio.NewScanner(strings.NewReader(a.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, key := range []string{"seq", "t_ns", "kind", "replica"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, key, sc.Text())
			}
		}
	}
	if lines != 9 {
		t.Fatalf("got %d JSONL lines, want 9", lines)
	}
}

// TestReadEventsJSONL: the export round-trips — reading the JSONL back
// reproduces the canonical event slice exactly, so offline analyzers
// (cmd/tokenflow-trace) see what the run recorded.
func TestReadEventsJSONL(t *testing.T) {
	rec := lifecycleRecorder()
	var sb strings.Builder
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEventsJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Events()
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.rec = 0 // the wire format does not carry the recorder rank
		if got[i] != w {
			t.Errorf("event %d: read %+v, want %+v", i, got[i], w)
		}
	}

	if _, err := ReadEventsJSONL(strings.NewReader("{\"kind\":\"no-such-kind\"}\n")); err == nil {
		t.Error("unknown kind did not error")
	}
	if _, err := ReadEventsJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line did not error")
	}
}

// TestWriteChromeTrace: the trace parses, carries the three lifecycle
// slices on the serving replica's track, and binds the route flow.
func TestWriteChromeTrace(t *testing.T) {
	var sb strings.Builder
	if err := lifecycleRecorder().WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	slices := map[string]bool{}
	flows := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			slices[e.Name] = true
			if e.Pid != 0 {
				t.Errorf("slice %q on pid %d, want replica 0", e.Name, e.Pid)
			}
			if e.Dur <= 0 {
				t.Errorf("slice %q has non-positive duration %v", e.Name, e.Dur)
			}
		}
		if e.Ph == "s" || e.Ph == "f" {
			flows++
		}
	}
	for _, want := range []string{"queue", "prefill", "decode"} {
		if !slices[want] {
			t.Errorf("missing %q slice", want)
		}
	}
	if flows < 4 {
		t.Errorf("got %d flow endpoints, want at least 4 (route + migrate)", flows)
	}
}

// TestWriteCSV: long-format output with a header and one row per point.
func TestWriteCSV(t *testing.T) {
	g := NewRegistry(1)
	g.Observe("replica0/queue_depth", simclock.FromSeconds(1), 3)
	g.Observe("replica0/queue_depth", simclock.FromSeconds(2), 4)
	g.Observe("gateway/depth", simclock.FromSeconds(1), 0)
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "series,time_s,value" {
		t.Fatalf("bad header %q", lines[0])
	}
	if lines[1] != "replica0/queue_depth,1,3" {
		t.Fatalf("bad first row %q", lines[1])
	}
}

// TestWriteFiles: a full capture lands every artifact on disk.
func TestWriteFiles(t *testing.T) {
	c := NewCapture(Options{Events: true, Series: true, Profile: true})
	c.Events.Emit(0, KindArrival, -1, 1, 0, 1, 1, 0, 0, "")
	c.Series.Observe("x", 0, 1)
	c.Profile.End(PhaseEngineStep, c.Profile.Begin())
	dir := t.TempDir()
	paths, err := c.WriteFiles(dir, "test", 123)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("wrote %d files, want 4: %v", len(paths), paths)
	}
}
