package attribution

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

func ms(n int64) simclock.Time { return simclock.Time(n * int64(time.Millisecond)) }

// lifecycleEvents builds a three-request stream covering every phase
// mechanism: gateway hold plus host reload, migration wire, and a plain
// residual queue gap, with one preemption in the mix.
func lifecycleEvents() []obs.Event {
	rec := obs.NewRecorder()
	// Request 1, session 9 turn 2 (follow-up), replica 0: held in the
	// gateway 3ms, then a 2ms host reload defers injection; preempted
	// once for 1ms between first token and completion.
	rec.Emit(ms(5), obs.KindQueue, 0, 1, 9, 0,
		obs.QueuePayload(obs.QueueCauseGateway|obs.QueueCauseReload, 2),
		int64(ms(0)), float64(2*time.Millisecond), "")
	rec.Emit(ms(7), obs.KindAdmit, 0, 1, 9, 0, 0, 0, 0, "")
	rec.Emit(ms(12), obs.KindFirstToken, 0, 1, 9, 0, 0, 0, 0, "")
	rec.Emit(ms(13), obs.KindPreempt, 0, 1, 9, 0, 0, 0, 0, "")
	rec.Emit(ms(14), obs.KindResume, 0, 1, 9, 0, 0, 0, 0, "")
	rec.Emit(ms(20), obs.KindComplete, 0, 1, 9, 0, 0, 0, 0, "")
	// Request 2, session 9 turn 0 (first-turn), replica 1: injection
	// deferred 5ms by a prefix migration.
	rec.Emit(ms(6), obs.KindQueue, 1, 2, 9, 0,
		obs.QueuePayload(obs.QueueCauseMigrate, 0), int64(ms(1)), 0, "")
	rec.Emit(ms(6), obs.KindAdmit, 1, 2, 9, 0, 0, 0, 0, "")
	rec.Emit(ms(9), obs.KindFirstToken, 1, 2, 9, 0, 0, 0, 0, "")
	rec.Emit(ms(10), obs.KindComplete, 1, 2, 9, 0, 0, 0, 0, "")
	// Request 3, stateless, replica 0: no deferral cause — a 1ms reload
	// plus a residual gap that counts as queue wait.
	rec.Emit(ms(4), obs.KindQueue, 0, 3, 0, 0,
		obs.QueuePayload(0, 0), int64(ms(2)), float64(time.Millisecond), "")
	rec.Emit(ms(5), obs.KindAdmit, 0, 3, 0, 0, 0, 0, 0, "")
	rec.Emit(ms(8), obs.KindFirstToken, 0, 3, 0, 0, 0, 0, 0, "")
	rec.Emit(ms(9), obs.KindComplete, 0, 3, 0, 0, 0, 0, 0, "")
	// Request 4 never completes: it must derive no span.
	rec.Emit(ms(6), obs.KindQueue, 1, 4, 0, 0, obs.QueuePayload(0, 0), int64(ms(6)), 0, "")
	// Lifecycle events for an unknown request (no queue event) are ignored.
	rec.Emit(ms(7), obs.KindAdmit, 1, 99, 0, 0, 0, 0, 0, "")
	return rec.Events()
}

// TestDeriveExactAccounting pins the span decomposition per mechanism
// and the conservation law: phases partition TTFT and E2E exactly.
func TestDeriveExactAccounting(t *testing.T) {
	spans := Derive(lifecycleEvents())
	if len(spans) != 3 {
		t.Fatalf("derived %d spans, want 3", len(spans))
	}
	want := []struct {
		request     int32
		class       Class
		phases      [NumPhases]time.Duration
		preemptions int
	}{
		{1, ClassFollowUp, [NumPhases]time.Duration{
			PhaseGateway: 3 * time.Millisecond, PhaseWire: 2 * time.Millisecond,
			PhaseQueue: 2 * time.Millisecond, PhasePrefill: 5 * time.Millisecond,
			PhaseDecode: 7 * time.Millisecond, PhasePreempted: time.Millisecond,
		}, 1},
		{2, ClassFirstTurn, [NumPhases]time.Duration{
			PhaseWire: 5 * time.Millisecond, PhasePrefill: 3 * time.Millisecond,
			PhaseDecode: time.Millisecond,
		}, 0},
		{3, ClassStateless, [NumPhases]time.Duration{
			PhaseWire: time.Millisecond, PhaseQueue: 2 * time.Millisecond,
			PhasePrefill: 3 * time.Millisecond, PhaseDecode: time.Millisecond,
		}, 0},
	}
	for i, w := range want {
		s := spans[i]
		if s.Request != w.request || s.Class != w.class || s.Preemptions != w.preemptions {
			t.Errorf("span %d: request %d class %v preemptions %d, want %d %v %d",
				i, s.Request, s.Class, s.Preemptions, w.request, w.class, w.preemptions)
		}
		if s.Phases != w.phases {
			t.Errorf("request %d phases %v, want %v", s.Request, s.Phases, w.phases)
		}
		if s.PhaseSumTTFT() != s.TTFT() {
			t.Errorf("request %d: pre-first-token phases sum to %v, TTFT %v",
				s.Request, s.PhaseSumTTFT(), s.TTFT())
		}
		if s.PhaseSum() != s.E2E() {
			t.Errorf("request %d: phases sum to %v, E2E %v", s.Request, s.PhaseSum(), s.E2E())
		}
	}
}

// TestCollectorMatchesDerive: the streaming path must agree with the
// batch derivation — same request count, same slowest spans, exact
// phase totals.
func TestCollectorMatchesDerive(t *testing.T) {
	events := lifecycleEvents()
	col := NewCollector(NewAggregator(2))
	for _, e := range events {
		col.Observe(e)
	}
	spans := Derive(events)
	rep := col.Aggregator().Report()
	if rep.Requests != int64(len(spans)) {
		t.Fatalf("report covers %d requests, derive found %d", rep.Requests, len(spans))
	}
	// Slowest is ordered by E2E descending: requests 1 (20ms), 2 (9ms),
	// 3 (7ms).
	if len(rep.Slowest) != 3 || rep.Slowest[0].Request != 1 ||
		rep.Slowest[1].Request != 2 || rep.Slowest[2].Request != 3 {
		t.Fatalf("slowest order wrong: %+v", rep.Slowest)
	}
	for p := Phase(0); p < NumPhases; p++ {
		var want time.Duration
		for _, s := range spans {
			want += s.Phases[p]
		}
		if _, got := col.Aggregator().PhaseTotal(p); got != int64(want) {
			t.Errorf("phase %v total %d, derive sums to %d", p, got, int64(want))
		}
	}
	// Per-class and per-replica rows appear only with traffic, and cover
	// all three classes here.
	if len(rep.Classes) != 3 || len(rep.Replicas) != 2 {
		t.Fatalf("report has %d classes and %d replicas, want 3 and 2",
			len(rep.Classes), len(rep.Replicas))
	}
}

// TestAggregatorMergeMatchesSingle: per-shard aggregators folded with
// Add must produce the report of one aggregator that saw everything —
// the property collect() relies on.
func TestAggregatorMergeMatchesSingle(t *testing.T) {
	events := lifecycleEvents()
	single := NewCollector(NewAggregator(2))
	sh0 := NewCollector(NewAggregator(2))
	sh1 := NewCollector(NewAggregator(2))
	for _, e := range events {
		single.Observe(e)
		if e.Replica == 0 {
			sh0.Observe(e)
		} else {
			sh1.Observe(e)
		}
	}
	merged := sh0.Aggregator()
	merged.Add(sh1.Aggregator())
	got, want := merged.Report(), single.Aggregator().Report()
	if len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("metric row counts differ: %d vs %d", len(got.Metrics), len(want.Metrics))
	}
	for i := range want.Metrics {
		if got.Metrics[i] != want.Metrics[i] {
			t.Errorf("metric %s differs merged vs single:\n%+v\n%+v",
				want.Metrics[i].Name, got.Metrics[i], want.Metrics[i])
		}
	}
	if len(got.Slowest) != len(want.Slowest) {
		t.Fatalf("slowest lengths differ: %d vs %d", len(got.Slowest), len(want.Slowest))
	}
	for i := range want.Slowest {
		if got.Slowest[i] != want.Slowest[i] {
			t.Errorf("slowest[%d] differs: %+v vs %+v", i, got.Slowest[i], want.Slowest[i])
		}
	}
}

// TestCollectorObserveAllocs bounds the per-event streaming path: with
// the sketch grid and state pool warm, observing a full request
// lifecycle allocates nothing.
func TestCollectorObserveAllocs(t *testing.T) {
	col := NewCollector(NewAggregator(1))
	cycle := []obs.Event{
		{At: ms(1), Kind: obs.KindQueue, Replica: 0, Request: 7, Session: 3,
			B: obs.QueuePayload(obs.QueueCauseReload, 1), C: int64(ms(0)),
			F: float64(time.Millisecond)},
		{At: ms(2), Kind: obs.KindAdmit, Replica: 0, Request: 7, Session: 3},
		{At: ms(3), Kind: obs.KindFirstToken, Replica: 0, Request: 7, Session: 3},
		{At: ms(9), Kind: obs.KindComplete, Replica: 0, Request: 7, Session: 3},
	}
	// Warm: populate the sketch cells, the slowest-K set, and the state
	// pool.
	for i := 0; i < 2*slowestK; i++ {
		for _, e := range cycle {
			col.Observe(e)
		}
	}
	avg := testing.AllocsPerRun(5000, func() {
		for _, e := range cycle {
			col.Observe(e)
		}
	})
	if avg > 0 {
		t.Errorf("warm Observe lifecycle allocates %.4f allocs/op, want 0", avg)
	}
}

// TestWaterfall smoke-tests the per-request rendering: every nonzero
// phase appears with a bar, zero-by-construction phases are skipped.
func TestWaterfall(t *testing.T) {
	spans := Derive(lifecycleEvents())
	out := Waterfall(spans[0], 40)
	for _, wantSub := range []string{"request 1", "gateway", "wire", "queue",
		"prefill", "decode", "preempted", "#", "1 preemptions"} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("waterfall missing %q:\n%s", wantSub, out)
		}
	}
	// Request 2 had no gateway or preemption time: those rows vanish.
	out2 := Waterfall(spans[1], 40)
	if strings.Contains(out2, "gateway") || strings.Contains(out2, "preempted") {
		t.Errorf("waterfall shows zero phases:\n%s", out2)
	}
}
