package attribution

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/obs"
)

// Metric rows of the sketch grid: the span phases plus the two measured
// latencies, so the report can quote TTFT/E2E quantiles next to their
// decomposition.
const (
	metricTTFT = int(NumPhases)
	metricE2E  = int(NumPhases) + 1
	numMetrics = int(NumPhases) + 2
)

var metricNames = [numMetrics]string{
	"gateway", "wire", "queue", "prefill", "decode", "preempted", "retry",
	"ttft", "e2e",
}

// slowestK is how many worst-E2E spans an aggregator retains for the
// report's per-request waterfalls.
const slowestK = 16

// Aggregator is the bounded-memory attribution sink: one quantile
// sketch per (replica, class, metric) cell, allocated lazily, plus the
// top-K slowest spans. Memory is O(replicas × classes × metrics ×
// sketch buckets) — independent of request count, so 1M-request runs
// fit. One aggregator serves one shard (its replica rows are disjoint
// from every other shard's); Add folds shards into the cluster view.
type Aggregator struct {
	replicas int
	cells    []*Sketch
	slowest  []Span
}

// NewAggregator sizes the grid for replica ids 0..replicas-1.
func NewAggregator(replicas int) *Aggregator {
	if replicas < 1 {
		replicas = 1
	}
	return &Aggregator{
		replicas: replicas,
		cells:    make([]*Sketch, replicas*int(NumClasses)*numMetrics),
	}
}

func (a *Aggregator) cell(replica int32, class Class, metric int) *Sketch {
	r := int(replica)
	if r < 0 || r >= a.replicas {
		r = 0
	}
	idx := (r*int(NumClasses)+int(class))*numMetrics + metric
	s := a.cells[idx]
	if s == nil {
		s = &Sketch{}
		a.cells[idx] = s
	}
	return s
}

// Observe folds one finished span into the grid.
func (a *Aggregator) Observe(s Span) {
	for p := 0; p < int(NumPhases); p++ {
		a.cell(s.Replica, s.Class, p).Observe(int64(s.Phases[p]))
	}
	a.cell(s.Replica, s.Class, metricTTFT).Observe(int64(s.TTFT()))
	a.cell(s.Replica, s.Class, metricE2E).Observe(int64(s.E2E()))
	a.noteSlowest(s)
}

// noteSlowest keeps the K worst spans by (E2E desc, request asc) — the
// request-id tie-break makes the set deterministic across shard merges.
func (a *Aggregator) noteSlowest(s Span) {
	if len(a.slowest) == slowestK && !slowerThan(s, a.slowest[len(a.slowest)-1]) {
		return
	}
	i := sort.Search(len(a.slowest), func(i int) bool {
		return !slowerThan(a.slowest[i], s)
	})
	if len(a.slowest) < slowestK {
		a.slowest = append(a.slowest, Span{})
	}
	copy(a.slowest[i+1:], a.slowest[i:])
	a.slowest[i] = s
}

func slowerThan(a, b Span) bool {
	if ae, be := a.E2E(), b.E2E(); ae != be {
		return ae > be
	}
	return a.Request < b.Request
}

// Requests is the number of spans observed.
func (a *Aggregator) Requests() int64 {
	var n int64
	for r := 0; r < a.replicas; r++ {
		for c := Class(0); c < NumClasses; c++ {
			idx := (r*int(NumClasses)+int(c))*numMetrics + metricE2E
			if s := a.cells[idx]; s != nil {
				n += s.Count()
			}
		}
	}
	return n
}

// MetricTotal sums one metric across the grid — cheap enough for the
// telemetry sampling loop to call per tick. The metric index is a Phase
// or the TTFT/E2E rows.
func (a *Aggregator) metricTotal(metric int) (count, total int64) {
	for r := 0; r < a.replicas; r++ {
		for c := Class(0); c < NumClasses; c++ {
			idx := (r*int(NumClasses)+int(c))*numMetrics + metric
			if s := a.cells[idx]; s != nil {
				count += s.Count()
				total += s.Total()
			}
		}
	}
	return count, total
}

// PhaseTotal returns one phase's exact observation count and summed
// nanoseconds — the telemetry series hook. Integer sums fold across
// shard aggregators without float drift, so a sampled series is
// bit-identical whatever the shard count.
func (a *Aggregator) PhaseTotal(p Phase) (count, totalNS int64) {
	return a.metricTotal(int(p))
}

// Add merges another aggregator (same replica sizing) into a.
func (a *Aggregator) Add(o *Aggregator) {
	if o == nil {
		return
	}
	for i, s := range o.cells {
		if s == nil || s.Count() == 0 {
			continue
		}
		if a.cells[i] == nil {
			a.cells[i] = &Sketch{}
		}
		a.cells[i].Add(s)
	}
	for _, s := range o.slowest {
		a.noteSlowest(s)
	}
}

// Stat summarizes one metric's distribution. Count, total, mean, and
// max are exact; the quantiles are sketch estimates with <= 3.1%
// relative error.
type Stat struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MeanNS  int64  `json:"mean_ns"`
	P50NS   int64  `json:"p50_ns"`
	P90NS   int64  `json:"p90_ns"`
	P99NS   int64  `json:"p99_ns"`
	MaxNS   int64  `json:"max_ns"`
}

func statOf(name string, s *Sketch) Stat {
	return Stat{
		Name: name, Count: s.Count(), TotalNS: s.Total(), MeanNS: s.Mean(),
		P50NS: s.Quantile(0.50), P90NS: s.Quantile(0.90),
		P99NS: s.Quantile(0.99), MaxNS: s.Max(),
	}
}

// ClassStat is one request class's metric summary.
type ClassStat struct {
	Class    string `json:"class"`
	Requests int64  `json:"requests"`
	Metrics  []Stat `json:"metrics"`
}

// ReplicaStat is one replica's metric summary.
type ReplicaStat struct {
	Replica  int    `json:"replica"`
	Requests int64  `json:"requests"`
	Metrics  []Stat `json:"metrics"`
}

// Report is the end-of-run attribution summary: cluster-wide metric
// distributions, the same split by request class and by replica (rows
// with traffic only), and the slowest spans for per-request waterfalls.
type Report struct {
	Requests int64         `json:"requests"`
	Metrics  []Stat        `json:"metrics"`
	Classes  []ClassStat   `json:"classes"`
	Replicas []ReplicaStat `json:"replicas"`
	Slowest  []Span        `json:"slowest"`
}

// Report folds the grid into its summary form.
func (a *Aggregator) Report() *Report {
	rep := &Report{Slowest: append([]Span(nil), a.slowest...)}

	merge := func(pick func(r int, c Class) *Sketch) []Stat {
		stats := make([]Stat, 0, numMetrics)
		for m := 0; m < numMetrics; m++ {
			var agg Sketch
			for r := 0; r < a.replicas; r++ {
				for c := Class(0); c < NumClasses; c++ {
					if s := pick(r, c); s != nil {
						agg.Add(a.cells[(r*int(NumClasses)+int(c))*numMetrics+m])
					}
				}
			}
			stats = append(stats, statOf(metricNames[m], &agg))
		}
		return stats
	}
	all := func(r int, c Class) *Sketch {
		return a.cells[(r*int(NumClasses)+int(c))*numMetrics+metricE2E]
	}
	rep.Metrics = merge(all)
	rep.Requests = rep.Metrics[metricE2E].Count

	for c := Class(0); c < NumClasses; c++ {
		c := c
		stats := merge(func(r int, cc Class) *Sketch {
			if cc != c {
				return nil
			}
			return all(r, cc)
		})
		if n := stats[metricE2E].Count; n > 0 {
			rep.Classes = append(rep.Classes, ClassStat{
				Class: c.String(), Requests: n, Metrics: stats,
			})
		}
	}
	for r := 0; r < a.replicas; r++ {
		r := r
		stats := merge(func(rr int, c Class) *Sketch {
			if rr != r {
				return nil
			}
			return all(rr, c)
		})
		if n := stats[metricE2E].Count; n > 0 {
			rep.Replicas = append(rep.Replicas, ReplicaStat{
				Replica: r, Requests: n, Metrics: stats,
			})
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON (attribution.json).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Collector streams lifecycle events into an aggregator: it is the
// recorder tap for one shard. In-flight request state is pooled and
// recycled at completion, so memory is bounded by the in-flight set and
// the steady-state observe path allocates nothing.
type Collector struct {
	agg  *Aggregator
	live map[int32]*reqState
	free []*reqState
}

// NewCollector returns a collector feeding agg.
func NewCollector(agg *Aggregator) *Collector {
	return &Collector{agg: agg, live: make(map[int32]*reqState)}
}

// Aggregator returns the collector's sink.
func (c *Collector) Aggregator() *Aggregator { return c.agg }

// Observe consumes one emitted event (the obs.Recorder tap signature).
func (c *Collector) Observe(e obs.Event) {
	if e.Request < 0 {
		return
	}
	switch e.Kind {
	case obs.KindQueue:
		st, ok := c.live[e.Request]
		if !ok {
			if n := len(c.free); n > 0 {
				st = c.free[n-1]
				c.free = c.free[:n-1]
			} else {
				st = &reqState{}
			}
			c.live[e.Request] = st
		}
		st.beginQueue(e)
	case obs.KindAdmit, obs.KindPreempt, obs.KindResume,
		obs.KindFirstToken, obs.KindComplete:
		st, ok := c.live[e.Request]
		if !ok {
			return
		}
		if st.apply(e) {
			c.agg.Observe(st.finish(e.At))
			delete(c.live, e.Request)
			c.free = append(c.free, st)
		}
	}
}
