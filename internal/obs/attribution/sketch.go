package attribution

import (
	"math"
	"math/bits"
)

// Sketch is a bounded-memory quantile sketch over nonnegative int64
// nanosecond durations: an HDR-style log-linear histogram with
// sketchSub sub-buckets per power of two, giving a guaranteed relative
// quantile error of at most 1/sketchSub (~3.1%) while count, sum, and
// max stay exact. Observing is O(1) and allocation-free once the bucket
// array has grown to cover the value range (it grows to the highest
// observed bucket, ~1.5 KB for values up to a simulated hour), and two
// sketches merge bucket-wise — the property that lets per-shard
// aggregators fold into one cluster view at collect time.
type Sketch struct {
	counts []uint32
	count  int64
	total  int64
	max    int64
}

const (
	sketchSubBits = 5
	sketchSub     = 1 << sketchSubBits
)

// bucketIndex maps a value to its bucket: values below sketchSub map
// exactly, larger values keep sketchSubBits of mantissa.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < sketchSub {
		return int(u)
	}
	// Highest set bit h >= sketchSubBits; keep the top sketchSubBits+1
	// bits of the value.
	h := bits.Len64(u) - 1
	shift := uint(h - sketchSubBits)
	return int((uint64(shift+1) << sketchSubBits) + (u >> shift) - sketchSub)
}

// bucketHigh is the largest value mapping to bucket idx — the sketch's
// quantile answers, so estimates never undershoot the true quantile.
func bucketHigh(idx int) int64 {
	if idx < sketchSub {
		return int64(idx)
	}
	shift := uint(idx>>sketchSubBits - 1)
	pos := int64(idx & (sketchSub - 1))
	return (sketchSub+pos)<<shift + (1 << shift) - 1
}

// Observe adds one value (negative values clamp to zero).
func (s *Sketch) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(s.counts) {
		grown := make([]uint32, idx+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[idx]++
	s.count++
	s.total += v
	if v > s.max {
		s.max = v
	}
}

// Count is the exact number of observations.
func (s *Sketch) Count() int64 { return s.count }

// Total is the exact sum of observations.
func (s *Sketch) Total() int64 { return s.total }

// Max is the exact maximum observation (0 when empty).
func (s *Sketch) Max() int64 { return s.max }

// Mean is the exact mean observation (0 when empty).
func (s *Sketch) Mean() int64 {
	if s.count == 0 {
		return 0
	}
	return s.total / s.count
}

// Add merges another sketch into s bucket-wise.
func (s *Sketch) Add(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(s.counts) {
		grown := make([]uint32, len(o.counts))
		copy(grown, s.counts)
		s.counts = grown
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.count += o.count
	s.total += o.total
	if o.max > s.max {
		s.max = o.max
	}
}

// Quantile estimates the q-quantile (0 < q <= 1): the upper edge of the
// bucket holding the ceil(q·count)-th smallest observation, clamped to
// the exact max. The estimate e satisfies true <= e <= true·(1 + 1/32).
func (s *Sketch) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var seen int64
	for i, c := range s.counts {
		seen += int64(c)
		if seen >= rank {
			v := bucketHigh(i)
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}
