package attribution

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference the sketch is judged against: the
// ceil(q·n)-th smallest observation.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkBounds asserts the sketch's guarantee on every probed quantile:
// true <= estimate <= true·(1 + 1/32), with count/total/max exact.
func checkBounds(t *testing.T, name string, values []int64) {
	t.Helper()
	var s Sketch
	var total int64
	var max int64
	for _, v := range values {
		s.Observe(v)
		total += v
		if v > max {
			max = v
		}
	}
	if s.Count() != int64(len(values)) || s.Total() != total || s.Max() != max {
		t.Fatalf("%s: exact stats drifted: count %d/%d total %d/%d max %d/%d",
			name, s.Count(), len(values), s.Total(), total, s.Max(), max)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0} {
		want := exactQuantile(sorted, q)
		got := s.Quantile(q)
		if got < want {
			t.Errorf("%s: q%.2f estimate %d undershoots exact %d", name, q, got, want)
		}
		if limit := float64(want) * (1 + 1.0/32); float64(got) > limit {
			t.Errorf("%s: q%.2f estimate %d exceeds exact %d by more than 1/32",
				name, q, got, want)
		}
	}
}

// TestSketchQuantileBounds probes the error guarantee on adversarial
// shapes — bucket-edge values, constants, a dense ramp, heavy ties with
// an extreme tail — and on seeded-random samples across scales.
func TestSketchQuantileBounds(t *testing.T) {
	edges := []int64{}
	for shift := uint(0); shift < 40; shift += 3 {
		v := int64(1) << shift
		edges = append(edges, v-1, v, v+1)
	}
	ramp := make([]int64, 10_000)
	for i := range ramp {
		ramp[i] = int64(i)
	}
	tail := append(make([]int64, 5000), 1<<40)
	checkBounds(t, "bucket-edges", edges)
	checkBounds(t, "all-equal", []int64{12345, 12345, 12345, 12345})
	checkBounds(t, "ramp", ramp)
	checkBounds(t, "zero-heavy-tail", tail)

	rng := rand.New(rand.NewSource(7))
	for _, scale := range []float64{1e3, 1e6, 1e9} {
		vals := make([]int64, 4096)
		for i := range vals {
			vals[i] = int64(rng.ExpFloat64() * scale)
		}
		checkBounds(t, "random", vals)
	}
}

// TestSketchSmallValuesExact: values below the sub-bucket resolution map
// one value per bucket, so quantiles are exact, not just bounded.
func TestSketchSmallValuesExact(t *testing.T) {
	var s Sketch
	for v := int64(0); v < sketchSub; v++ {
		s.Observe(v)
	}
	if got := s.Quantile(0.5); got != sketchSub/2-1 {
		t.Errorf("median of 0..%d = %d, want %d", sketchSub-1, got, sketchSub/2-1)
	}
	if got := s.Quantile(1.0); got != sketchSub-1 {
		t.Errorf("max quantile = %d, want %d", got, sketchSub-1)
	}
}

// TestSketchMerge: folding two sketches bucket-wise must be
// indistinguishable from observing the union directly.
func TestSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, a, b Sketch
	for i := 0; i < 2000; i++ {
		v := int64(rng.ExpFloat64() * 1e7)
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Add(&b)
	if a.Count() != whole.Count() || a.Total() != whole.Total() || a.Max() != whole.Max() {
		t.Fatalf("merged stats differ: count %d/%d total %d/%d max %d/%d",
			a.Count(), whole.Count(), a.Total(), whole.Total(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.2f: merged %d, direct %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	a.Add(nil) // nil merge is a no-op
	if a.Count() != whole.Count() {
		t.Error("nil merge changed the sketch")
	}
}

// TestSketchNegativeClamps: negative inputs clamp to zero instead of
// corrupting the bucket index.
func TestSketchNegativeClamps(t *testing.T) {
	var s Sketch
	s.Observe(-5)
	if s.Count() != 1 || s.Max() != 0 || s.Quantile(1.0) != 0 {
		t.Errorf("negative observation mishandled: %+v", s)
	}
}

// TestSketchObserveAllocs bounds the per-event observe path: once the
// bucket array covers the value range, observing allocates nothing.
func TestSketchObserveAllocs(t *testing.T) {
	var s Sketch
	s.Observe(1 << 32) // grow to the full range up front
	i := 0
	avg := testing.AllocsPerRun(10_000, func() {
		s.Observe(int64(i%1024) << 20)
		i++
	})
	if avg > 0 {
		t.Errorf("warm Observe allocates %.4f allocs/op, want 0", avg)
	}
}
