// Package attribution folds the flight recorder's lifecycle event stream
// into per-request causal spans and answers the question the flat stream
// cannot: where does tail latency actually come from — gateway
// buffering, KV delivery (host reload or migration wire), queue wait,
// prefill, decode, preemption gaps, or crash-recovery retries?
//
// The derivation is exact by construction: the seven phases partition
// the request's measured lifetime, so gateway + wire + queue + prefill
// + retry sums to the request's TTFT and adding decode + preempted
// reaches its E2E latency — a conservation law the cluster invariant suite checks per
// request over the experiment grid. Everything the pass needs rides on
// replica-scoped events (KindQueue carries the arrival time and the
// deferral cause), so it runs per shard with no cross-shard state:
// batch over a recorded stream (Derive) or streaming through a recorder
// tap into bounded-memory quantile sketches (Collector/Aggregator) for
// runs too large to retain events.
package attribution

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// Phase is one segment of a request's causal span.
type Phase uint8

const (
	// PhaseGateway: held in the scale-to-zero gateway awaiting a warm
	// replica (arrival → gateway release).
	PhaseGateway Phase = iota
	// PhaseWire: waiting on KV delivery — a prefix migration transfer
	// onto the serving replica and/or a host-tier KV reload booked at
	// injection.
	PhaseWire
	// PhaseQueue: queued on the replica awaiting scheduler admission.
	PhaseQueue
	// PhasePrefill: admission to first token.
	PhasePrefill
	// PhaseDecode: token generation time (preemption gaps excluded).
	PhaseDecode
	// PhasePreempted: total time parked by memory preemption between
	// first token and completion.
	PhasePreempted
	// PhaseRetry: time lost to crash recovery — from the request's arrival
	// (or prior attempt) to its post-crash re-queue, covering the doomed
	// attempt, the detection delay, and the retry backoff. Only the final,
	// completing attempt emits KindComplete, so a retried request derives
	// exactly one span with the pre-requeue loss in this phase.
	PhaseRetry

	// NumPhases is the number of span phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"gateway", "wire", "queue", "prefill", "decode", "preempted", "retry",
}

// String returns the phase's stable report name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Class buckets requests by their session shape — the dimension along
// which prefix caching splits latency behavior.
type Class uint8

const (
	// ClassStateless: no session (session 0, one-shot requests).
	ClassStateless Class = iota
	// ClassFirstTurn: a session's opening turn (cold prefix). Session
	// turns are 1-based in the trace layer.
	ClassFirstTurn
	// ClassFollowUp: later session turns riding a warm prefix.
	ClassFollowUp

	// NumClasses is the number of request classes.
	NumClasses
)

var classNames = [NumClasses]string{"stateless", "first-turn", "follow-up"}

// String returns the class's stable report name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

func classOf(session int32, turn int) Class {
	switch {
	case session == 0:
		return ClassStateless
	case turn <= 1:
		return ClassFirstTurn
	default:
		return ClassFollowUp
	}
}

// Span is one request's derived causal span: its lifecycle timestamps
// and the exact phase decomposition of its latency.
type Span struct {
	Request int32 `json:"request"`
	Session int32 `json:"session"`
	Turn    int   `json:"turn"`
	Replica int32 `json:"replica"`
	Class   Class `json:"class"`

	Arrival    simclock.Time `json:"arrival_ns"`
	QueueAt    simclock.Time `json:"queue_ns"`
	AdmitAt    simclock.Time `json:"admit_ns"`
	FirstAt    simclock.Time `json:"first_token_ns"`
	CompleteAt simclock.Time `json:"complete_ns"`

	Preemptions int `json:"preemptions"`

	// Phases holds the six phase durations, indexed by Phase.
	Phases [NumPhases]time.Duration `json:"phases_ns"`
}

// Phase returns one phase's duration.
func (s *Span) Phase(p Phase) time.Duration { return s.Phases[p] }

// TTFT is the span's measured time to first token.
func (s *Span) TTFT() time.Duration { return s.FirstAt.Sub(s.Arrival) }

// E2E is the span's measured end-to-end latency.
func (s *Span) E2E() time.Duration { return s.CompleteAt.Sub(s.Arrival) }

// PhaseSumTTFT sums the pre-first-token phases; the exact-accounting
// invariant requires it to equal TTFT().
func (s *Span) PhaseSumTTFT() time.Duration {
	return s.Phases[PhaseGateway] + s.Phases[PhaseWire] +
		s.Phases[PhaseQueue] + s.Phases[PhasePrefill] + s.Phases[PhaseRetry]
}

// PhaseSum sums all phases; the exact-accounting invariant requires it
// to equal E2E().
func (s *Span) PhaseSum() time.Duration {
	return s.PhaseSumTTFT() + s.Phases[PhaseDecode] + s.Phases[PhasePreempted]
}

// reqState is the in-flight derivation state for one request. It is
// pooled by the collector so the steady-state observe path allocates
// nothing.
type reqState struct {
	request, session int32
	replica          int32
	turn             int
	cause            int64
	reload           time.Duration

	arrival, queueAt, admitAt, firstAt simclock.Time
	preemptAt                          simclock.Time
	preempted                          time.Duration
	preemptions                        int
	hasAdmit, hasFirst, inPreempt      bool
}

// beginQueue seeds the state from a KindQueue event, which carries
// everything upstream of the replica: the arrival time (C), the
// deferral-cause bits and turn (B), and the host-reload deferral (F).
func (st *reqState) beginQueue(e obs.Event) {
	st.request, st.session, st.replica = e.Request, e.Session, e.Replica
	st.turn = obs.QueueTurn(e.B)
	st.cause = obs.QueueCause(e.B)
	st.reload = time.Duration(int64(e.F))
	st.arrival = simclock.Time(e.C)
	st.queueAt = e.At
	st.admitAt, st.firstAt = 0, 0
	st.preempted, st.preemptions = 0, 0
	st.hasAdmit, st.hasFirst, st.inPreempt = false, false, false
}

// apply advances the state by one lifecycle event; it reports true when
// the event completed the request and the span can be finalized.
func (st *reqState) apply(e obs.Event) (done bool) {
	switch e.Kind {
	case obs.KindAdmit:
		if !st.hasAdmit {
			st.admitAt, st.hasAdmit = e.At, true
		}
	case obs.KindPreempt:
		st.preemptAt, st.inPreempt = e.At, true
		st.preemptions++
	case obs.KindResume:
		if st.inPreempt {
			st.preempted += e.At.Sub(st.preemptAt)
			st.inPreempt = false
		}
	case obs.KindFirstToken:
		if !st.hasFirst {
			st.firstAt, st.hasFirst = e.At, true
		}
	case obs.KindComplete:
		return true
	}
	return false
}

// finish folds the accumulated state into a Span at completion time.
// The pre-queue gap (queueAt − arrival) splits exactly: the host-reload
// deferral is carried on the queue event itself, and the remainder
// belongs to whichever single mechanism delayed injection — the gateway
// hold or the migration wire — per the cause bits (the two are mutually
// exclusive by construction: gateway-drained requests inject directly
// and never migrate).
func (st *reqState) finish(completeAt simclock.Time) Span {
	s := Span{
		Request: st.request, Session: st.session, Turn: st.turn,
		Replica: st.replica, Class: classOf(st.session, st.turn),
		Arrival: st.arrival, QueueAt: st.queueAt, AdmitAt: st.admitAt,
		FirstAt: st.firstAt, CompleteAt: completeAt,
		Preemptions: st.preemptions,
	}
	preQueue := st.queueAt.Sub(st.arrival)
	wire := st.reload
	if wire > preQueue {
		wire = preQueue
	}
	gap := preQueue - wire
	switch {
	case st.cause&obs.QueueCauseRetry != 0:
		// A retried request's final queue event wins the derivation; the
		// whole pre-requeue gap — the doomed attempt, crash detection, and
		// backoff — is crash-recovery loss.
		s.Phases[PhaseRetry] = gap
	case st.cause&obs.QueueCauseMigrate != 0:
		wire += gap
	case st.cause&obs.QueueCauseGateway != 0:
		s.Phases[PhaseGateway] = gap
	default:
		// No deferral cause: any residual gap is queue-side wait.
		s.Phases[PhaseQueue] = gap
	}
	s.Phases[PhaseWire] = wire
	s.Phases[PhaseQueue] += st.admitAt.Sub(st.queueAt)
	s.Phases[PhasePrefill] = st.firstAt.Sub(st.admitAt)
	s.Phases[PhasePreempted] = st.preempted
	s.Phases[PhaseDecode] = completeAt.Sub(st.firstAt) - st.preempted
	return s
}

// Derive runs the batch span derivation over a recorded event stream
// (canonical order, as returned by Recorder.Events or read back from an
// events.jsonl export) and returns one span per completed request,
// ordered by request id. Requests still in flight at the end of the
// stream derive no span.
func Derive(events []obs.Event) []Span {
	live := map[int32]*reqState{}
	var spans []Span
	for _, e := range events {
		if e.Request < 0 {
			continue
		}
		if e.Kind == obs.KindQueue {
			st, ok := live[e.Request]
			if !ok {
				st = &reqState{}
				live[e.Request] = st
			}
			st.beginQueue(e)
			continue
		}
		st, ok := live[e.Request]
		if !ok {
			continue
		}
		if st.apply(e) {
			spans = append(spans, st.finish(e.At))
			delete(live, e.Request)
		}
	}
	sortSpansByRequest(spans)
	return spans
}

func sortSpansByRequest(spans []Span) {
	// Completion order is deterministic but not id-ordered; a simple sort
	// gives consumers a stable, mergeable layout.
	sort.Slice(spans, func(i, j int) bool { return spans[i].Request < spans[j].Request })
}

// Waterfall renders one span as a per-phase breakdown with proportional
// bars — the per-request view behind `tokenflow-trace slowest` and the
// observe example.
func Waterfall(s Span, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "request %d  session %d turn %d  replica %d  class %s\n",
		s.Request, s.Session, s.Turn, s.Replica, s.Class)
	fmt.Fprintf(&b, "  arrival %.3fs  ttft %s  e2e %s",
		s.Arrival.Seconds(), fmtDur(s.TTFT()), fmtDur(s.E2E()))
	if s.Preemptions > 0 {
		fmt.Fprintf(&b, "  (%d preemptions)", s.Preemptions)
	}
	b.WriteByte('\n')
	e2e := s.E2E()
	for p := Phase(0); p < NumPhases; p++ {
		d := s.Phases[p]
		if d == 0 && (p == PhaseGateway || p == PhaseWire || p == PhasePreempted || p == PhaseRetry) {
			continue
		}
		bar := 0
		if e2e > 0 {
			bar = int(float64(width) * float64(d) / float64(e2e))
		}
		if d > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %-9s %10s  %s\n", p.String(), fmtDur(d),
			strings.Repeat("#", bar))
	}
	return b.String()
}

// fmtDur formats a duration with millisecond precision — enough for
// latency waterfalls without sub-microsecond noise.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
