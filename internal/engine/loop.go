package engine

import (
	"time"

	"repro/internal/kvcache"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// decodeStride thins decode-progress events: one every this many generated
// tokens (plus the completion event), keeping long generations from
// dominating the event log.
const decodeStride = 32

// kick runs one scheduling step if the device is free: consult the
// scheduler, apply its decision, and launch the next iteration.
func (e *Engine) kick(now simclock.Time) {
	// The KV manager's callbacks (EvictDone for an instant discard) can
	// fire synchronously from inside applyDecision; the reentrancy guard
	// keeps one kick as the sole iteration launcher.
	if e.gpuBusy || e.inKick || e.crashed {
		return
	}
	e.inKick = true
	defer func() { e.inKick = false }()
	t0 := e.prof.Begin()
	defer e.prof.End(obs.PhaseEngineStep, t0)
	// Scheduling dependency of unchunked write-through (§5.2): the
	// boundary waits for outstanding writes.
	if stall := e.mem.IterBoundaryStall(now); stall > 0 {
		e.gpuBusy = true
		e.boundaryStall += stall
		e.stallHandle = e.clock.After(stall, e.stallDoneFn)
		return
	}

	d := e.cfg.Scheduler.Decide(e.view(now))
	e.applyDecision(d, now)

	if e.startIteration(now) {
		return
	}
	// Idle with outstanding work. The engine is strictly event-driven:
	// every state change that could unblock the next iteration already
	// re-kicks the loop (transfer completion via EvictDone/LoadDone, pin
	// drains via PinDrained, iteration and migration completions, deferred
	// host-reload injects). The only trigger no callback covers is time
	// itself — a quantum-gated scheduler changing its answer at quantum
	// expiry — so arm exactly one wakeup there and otherwise stay silent.
	if e.outstanding() {
		e.armRetry(now)
	}
}

// armRetry schedules the single time-driven wakeup a quantum-gated
// scheduler (sched.Waker) needs. Instants at or before now are ignored:
// Decide already ran at now, so an immediate retry cannot differ and would
// spin the event loop.
func (e *Engine) armRetry(now simclock.Time) {
	w, ok := e.cfg.Scheduler.(sched.Waker)
	if !ok {
		return
	}
	next := w.NextDecisionTime(now)
	if next <= now || next == simclock.Forever {
		return
	}
	if e.retryTick.Pending() && e.retryAt == next {
		return
	}
	e.clock.Cancel(e.retryTick)
	e.retryAt = next
	e.retryTick = e.clock.At(next, e.kickFn)
}

// outstanding reports whether any request still needs device time.
func (e *Engine) outstanding() bool {
	return e.OutstandingRequests() > 0
}

// applyDecision executes preemptions then admissions, skipping entries
// that are no longer feasible (the scheduler is optimistic by contract).
func (e *Engine) applyDecision(d sched.Decision, now simclock.Time) {
	for _, r := range d.Preempt {
		if r.State != request.StateRunning || e.mem.Residency(r) != kvcache.ResGPU {
			continue
		}
		e.preemptRunning(r, now)
	}
	for _, adm := range d.Admit {
		r := adm.Req
		switch r.State {
		case request.StateQueued:
			e.admitFresh(r)
		case request.StatePreempted:
			e.resume(r, adm.Mode, now)
		}
	}
}

// preemptRunning evicts a running request via the KV manager.
func (e *Engine) preemptRunning(r *request.Request, now simclock.Time) {
	if _, err := e.mem.Preempt(r, now); err != nil {
		return
	}
	r.Preemptions++
	e.running = removeReq(e.running, r)
	e.preempted = append(e.preempted, r)
	e.track.Transition(r, request.StatePreempted)
	e.obs.Emit(now, obs.KindPreempt, e.obsReplica, r.ID, r.Session,
		int64(r.PromptLen), int64(r.Generated), 0, 0, "")
}

// admitFresh moves a waiting request into the prefill backlog. A prefix-
// cache hit (CachedPrompt, clamped below PromptLen by Inject) shrinks the
// compute target — the cached prefix KV is already materialized on the
// device — but pages are still reserved for the full prompt.
func (e *Engine) admitFresh(r *request.Request) {
	e.waiting = removeReq(e.waiting, r)
	e.backlog = append(e.backlog, &prefillJob{
		req:    r,
		target: r.PromptLen - r.CachedPrompt,
		alloc:  r.PromptLen,
	})
	e.obs.Emit(e.clock.Now(), obs.KindAdmit, e.obsReplica, r.ID, r.Session,
		int64(r.PromptLen-r.CachedPrompt), int64(r.PromptLen), 0, 0, "")
}

// resume re-admits a preempted request, via host-copy load or recompute.
func (e *Engine) resume(r *request.Request, mode sched.ResumeMode, now simclock.Time) {
	switch e.mem.Residency(r) {
	case kvcache.ResHost:
		if mode == sched.ResumeLoad {
			need := int(e.mem.HostBytes(r) / e.mem.PageBytes())
			if need > e.mem.FreePages() {
				// Cached prefixes yield to live requests before a load
				// stalls.
				e.mem.ReclaimPrefixPages(need-e.mem.FreePages(), now, 0)
			}
			if need > e.mem.FreePages() {
				return // no room yet; scheduler retries later
			}
			if _, err := e.mem.StartLoad(r, now); err != nil {
				return
			}
			r.Resumes++
			r.LoadedResumes++
			e.preempted = removeReq(e.preempted, r)
			e.loading = append(e.loading, r)
			e.track.Transition(r, request.StateLoading)
			e.obs.Emit(now, obs.KindResume, e.obsReplica, r.ID, r.Session,
				int64(r.PromptLen), int64(r.Generated), 0, 0, "load")
			return
		}
		// Recompute chosen although a host copy exists: drop the copy.
		e.mem.Discard(r)
	case kvcache.ResNone:
		// Discarded at preemption (no offload): recompute is the only way.
	default:
		return // still evicting or already loading; retry later
	}
	r.Resumes++
	e.preempted = removeReq(e.preempted, r)
	e.backlog = append(e.backlog, &prefillJob{
		req:    r,
		target: r.PromptLen + r.Generated,
		alloc:  r.PromptLen + r.Generated,
		resume: true,
	})
	e.track.Transition(r, request.StateQueued)
	e.obs.Emit(now, obs.KindResume, e.obsReplica, r.ID, r.Session,
		int64(r.PromptLen), int64(r.Generated), 0, 0, "recompute")
}

// onLoadDone is the KV manager's load-completion callback.
func (e *Engine) onLoadDone(r *request.Request, now simclock.Time) {
	e.loading = removeReq(e.loading, r)
	e.running = append(e.running, r)
	e.track.Transition(r, request.StateRunning)
	e.kick(now)
}

// onEvictDone fires when a preempted request's pages fully left the
// device; freed memory may unblock prefill or loads.
func (e *Engine) onEvictDone(_ *request.Request, now simclock.Time) {
	e.kick(now)
}

// startIteration selects and launches the next device iteration. It
// reports false when there is nothing to run.
func (e *Engine) startIteration(now simclock.Time) bool {
	chunk := e.cfg.Scheduler.PrefillChunkTokens()
	if chunk > 0 {
		return e.startMixedIteration(now, chunk)
	}
	if len(e.backlog) > 0 && e.startPrefillIteration(now) {
		return true
	}
	return e.startDecodeIteration(now)
}

// startPrefillIteration launches a prefill-priority iteration over as many
// backlog jobs as fit the token budget and device memory.
func (e *Engine) startPrefillIteration(now simclock.Time) bool {
	jobs := e.iterJobs[:0]
	budget := e.cfg.MaxPrefillTokens
	for _, j := range e.backlog {
		if len(jobs) > 0 && j.target > budget {
			break
		}
		if !e.ensureAllocated(j, now) {
			break // memory exhausted even after reactive eviction
		}
		jobs = append(jobs, j)
		budget -= j.target
		if budget <= 0 {
			break
		}
	}
	e.iterJobs = jobs
	if len(jobs) == 0 {
		return false
	}
	total := 0
	for _, j := range jobs {
		total += j.target
	}
	e.iterKind = iterPrefill
	e.iterTokens = total
	dur := e.cost.PrefillTime(total)
	e.mem.BackgroundSync(now, dur)
	e.launch(now, dur)
	return true
}

// startMixedIteration launches a chunked-prefill iteration: up to
// chunkTokens of the head prefill job ride along the decode batch.
func (e *Engine) startMixedIteration(now simclock.Time, chunkTokens int) bool {
	batch := e.decodeBatch()
	var job *prefillJob
	prefillTokens := 0
	if len(e.backlog) > 0 {
		j := e.backlog[0]
		if e.ensureAllocated(j, now) {
			job = j
			prefillTokens = j.target - j.done
			if prefillTokens > chunkTokens {
				prefillTokens = chunkTokens
			}
		}
	}
	if job == nil && len(batch) == 0 {
		return false
	}
	var ctx int64
	for _, r := range batch {
		ctx += int64(r.ContextLen())
	}
	e.iterKind = iterMixed
	e.iterJob = job
	e.iterTokens = prefillTokens
	dur := e.cost.MixedStepTime(prefillTokens, len(batch), ctx)
	e.mem.BackgroundSync(now, dur)
	e.launch(now, dur)
	return true
}

// startDecodeIteration launches a pure decode iteration over the running
// batch.
func (e *Engine) startDecodeIteration(now simclock.Time) bool {
	batch := e.decodeBatch()
	if len(batch) == 0 {
		return false
	}
	var ctx int64
	for _, r := range batch {
		ctx += int64(r.ContextLen())
	}
	e.iterKind = iterDecode
	dur := e.cost.DecodeStepTime(len(batch), ctx)
	e.mem.BackgroundSync(now, dur)
	e.launch(now, dur)
	return true
}

// iterKind tags the in-flight iteration so completeIteration can finish
// it without a per-iteration closure.
type iterKind uint8

const (
	iterPrefill iterKind = iota
	iterMixed
	iterDecode
)

// launch marks the device busy for dur and schedules the engine's single
// completion callback. The iteration's parameters (kind, jobs, batch,
// token count) were staged on the engine by the start* caller; with at
// most one iteration in flight they cannot be overwritten before
// completeIteration consumes them.
func (e *Engine) launch(now simclock.Time, dur time.Duration) {
	if e.slowdown > 1 {
		// Chaos brownout: the slow node pays the multiplier on every
		// iteration launched inside the fault window.
		dur = time.Duration(float64(dur) * e.slowdown)
	}
	e.iterations++
	e.gpuBusy = true
	e.iterDur = dur
	e.iterHandle = e.clock.After(dur, e.iterDoneFn)
}

// completeIteration applies the staged iteration's effects at its
// completion instant: prefill jobs land, decode batches advance, and the
// profiled latency estimators observe the iteration.
func (e *Engine) completeIteration(t simclock.Time) {
	switch e.iterKind {
	case iterPrefill:
		e.prefillIters++
		for _, j := range e.iterJobs {
			e.completePrefill(j, t)
		}
		e.observePrefill(e.iterDur, e.iterTokens)
	case iterMixed:
		e.mixedIters++
		if j := e.iterJob; j != nil {
			j.done += e.iterTokens
			if j.done >= j.target {
				e.completePrefill(j, t)
			}
			e.observePrefill(e.iterDur, e.iterTokens)
			e.iterJob = nil
		}
		e.advanceDecode(e.batchBuf, t)
	case iterDecode:
		e.decodeIters++
		e.advanceDecode(e.batchBuf, t)
		e.observeDecode(e.iterDur)
	}
}

// decodeBatch collects runnable decode requests up to MaxBatch. The batch
// reuses one scratch buffer: at most one iteration is ever in flight, and
// its completion callback finishes with the batch before the next kick can
// rebuild it.
func (e *Engine) decodeBatch() []*request.Request {
	batch := e.batchBuf[:0]
	for _, r := range e.running {
		if r.PrefillDone() && !r.GenerationDone() {
			batch = append(batch, r)
			if len(batch) >= e.cfg.MaxBatch {
				break
			}
		}
	}
	e.batchBuf = batch
	return batch
}

// ensureAllocated claims device pages for a prefill job. A fresh admission
// with a surviving prefix pin adopts the pin's pages into its allocation
// (the prefix KV is already resident); a hit whose pin was evicted under
// pressure re-prefills at full cost. Admission never evicts running
// requests (that is a scheduling decision), but it does reclaim cached
// prefixes before stalling: when the pool is full the engine evicts pinned
// prefixes LRU-first, and only if that cannot make room does the job stay
// in the backlog to retry after memory frees.
func (e *Engine) ensureAllocated(j *prefillJob, now simclock.Time) bool {
	if j.allocated {
		return true
	}
	adopt := 0
	if !j.resume && j.req.CachedPrompt > 0 {
		if e.mem.PeekPrefix(j.req.Session) >= j.req.CachedPrompt {
			adopt = j.req.Session
		} else {
			// The pin was evicted between arrival and admission: revoke
			// the hit and recompute the whole prompt.
			e.prefixHits--
			e.prefixHitTokens -= int64(j.req.CachedPrompt)
			e.prefixEvictedMisses++
			j.req.CachedPrompt = 0
			j.target = j.alloc
		}
	}
	// +1 covers the token generated by the prefill's own forward pass.
	need := j.alloc + 1
	if !e.mem.CanAdmit(need, adopt) {
		deficit := e.mem.Pages(need) - e.mem.FreePages() - e.mem.AdoptablePages(adopt)
		e.mem.ReclaimPrefixPages(deficit, now, adopt)
		if !e.mem.CanAdmit(need, adopt) {
			return false
		}
	}
	if err := e.mem.AllocateWithPrefix(j.req, need, adopt); err != nil {
		return false
	}
	j.allocated = true
	return true
}

// completePrefill finishes a prefill job: the prompt (or recomputed
// context) is resident and the forward pass yields one token.
func (e *Engine) completePrefill(j *prefillJob, now simclock.Time) {
	r := j.req
	r.PrefilledTokens = r.PromptLen
	e.backlog = removeJob(e.backlog, j)
	e.running = append(e.running, r)
	e.track.Transition(r, request.StateRunning)
	if !r.GenerationDone() {
		first := r.Generated == 0
		r.DeliverTokens(e.clock, now, 1)
		if first {
			e.obs.Emit(now, obs.KindFirstToken, e.obsReplica, r.ID, r.Session,
				int64(r.PromptLen), int64(r.CachedPrompt), 0, 0, "")
			if e.onFirstToken != nil {
				e.onFirstToken(r, now)
			}
		}
	}
	if r.GenerationDone() {
		e.finish(r, now)
	}
}

// advanceDecode appends one token to every batch member, handling page
// growth, OOM, and completion.
func (e *Engine) advanceDecode(batch []*request.Request, now simclock.Time) {
	for _, r := range batch {
		if r.State != request.StateRunning || r.GenerationDone() {
			continue // preempted or finished mid-iteration bookkeeping
		}
		if e.mem.NeedsGrowth(r) {
			grew := false
			for {
				if err := e.mem.GrowOne(r); err == nil {
					grew = true
					break
				}
				// Cached prefixes are the cheapest memory to take back;
				// only preempt a running victim once no pin can free a
				// page immediately.
				if e.mem.ReclaimPrefixPages(1, now, 0) > 0 {
					continue
				}
				if !e.reactiveEvict(r, now) {
					break
				}
			}
			if !grew {
				continue // stalled this iteration; retries next time
			}
		} else if err := e.mem.GrowOne(r); err != nil {
			continue
		}
		r.DeliverTokens(e.clock, now, 1)
		if r.GenerationDone() {
			e.finish(r, now)
		} else if r.Generated%decodeStride == 0 {
			e.obs.Emit(now, obs.KindDecodeProgress, e.obsReplica, r.ID, r.Session,
				int64(r.Generated), int64(r.ContextLen()), 0, 0, "")
		}
	}
}

// reactiveEvict preempts the most recently arrived running request (other
// than protect) to relieve memory pressure — the baseline systems'
// reactive strategy (§2.4). Reports false when no victim exists.
func (e *Engine) reactiveEvict(protect *request.Request, now simclock.Time) bool {
	var victim *request.Request
	for _, r := range e.running {
		if r == protect || !r.PrefillDone() {
			continue
		}
		if victim == nil || r.Arrival > victim.Arrival {
			victim = r
		}
	}
	if victim == nil {
		return false
	}
	e.preemptRunning(victim, now)
	return true
}

// finish releases a completed request. Multi-turn sessions convert their
// resident context into a pinned prefix reservation — the pages stay
// charged to the pool for the session's next turn instead of freeing.
func (e *Engine) finish(r *request.Request, now simclock.Time) {
	if e.mem.PrefixEnabled() && r.Session != 0 {
		e.mem.ReleaseAsPrefix(r, r.Session, now)
	} else {
		e.mem.Discard(r)
	}
	e.running = removeReq(e.running, r)
	e.track.Transition(r, request.StateFinished)
	e.obs.Emit(now, obs.KindComplete, e.obsReplica, r.ID, r.Session,
		int64(r.Generated), int64(r.PromptLen), 0, 0, "")
	e.notifyLoad()
}

// observeDecode updates the profiled decode iteration latency (EWMA).
func (e *Engine) observeDecode(dur time.Duration) {
	if e.avgIter == 0 {
		e.avgIter = dur
		return
	}
	e.avgIter = (e.avgIter*4 + dur) / 5
}

// observePrefill updates the profiled per-token prefill latency (the
// sliding-window estimate of §4.2.3).
func (e *Engine) observePrefill(dur time.Duration, tokens int) {
	if tokens <= 0 {
		return
	}
	per := dur / time.Duration(tokens)
	if e.avgPrefillTok == 0 {
		e.avgPrefillTok = per
		return
	}
	e.avgPrefillTok = (e.avgPrefillTok*4 + per) / 5
}

func removeReq(s []*request.Request, r *request.Request) []*request.Request {
	for i, x := range s {
		if x == r {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeJob(s []*prefillJob, j *prefillJob) []*prefillJob {
	for i, x := range s {
		if x == j {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
