package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Property: for any random workload and any scheduler, a completed run
// conserves tokens (every request generates exactly its output length,
// with per-token timestamps), frees all KV memory, and leaves no request
// in a transient state.
func TestPropertyRunInvariants(t *testing.T) {
	mk := []func() (sched.Scheduler, KVPolicy){
		func() (sched.Scheduler, KVPolicy) { return sched.NewSGLang(), BaselineKVPolicy() },
		func() (sched.Scheduler, KVPolicy) { return sched.NewSGLangChunked(128), BaselineKVPolicy() },
		func() (sched.Scheduler, KVPolicy) { return sched.NewAndes(), BaselineKVPolicy() },
		func() (sched.Scheduler, KVPolicy) {
			return core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()
		},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 3
		var w trace.Workload
		w.Name = "prop"
		at := simclock.Time(0)
		for i := 0; i < n; i++ {
			at = at.Add(simclock.Duration(rng.Float64() * 2))
			w.Items = append(w.Items, trace.Item{
				Arrival:   at,
				PromptLen: rng.Intn(256) + 16,
				OutputLen: rng.Intn(256) + 16,
				Rate:      float64(rng.Intn(30) + 5),
			})
		}
		s, kv := mk[rng.Intn(len(mk))]()
		e, err := New(testConfig(s, kv))
		if err != nil {
			return false
		}
		res, err := e.Run(w)
		if err != nil || res.TimedOut {
			return false
		}
		if res.Report.Finished != n {
			return false
		}
		for i, r := range res.Requests {
			if r.Generated != w.Items[i].OutputLen {
				return false
			}
			if len(r.TokenTimes) != r.Generated || len(r.BufferAtGen) != r.Generated {
				return false
			}
			if r.RebufferTotal < 0 {
				return false
			}
		}
		// All device memory returned.
		if e.Mem().FreePages() != e.Mem().TotalPages() {
			return false
		}
		wq, bq, rq, pq, lq := e.QueueLengths()
		return wq+bq+rq+pq+lq == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: raw throughput over a fixed workload never differs by more
// than the preemption overhead would explain — effective throughput is
// always <= raw throughput for every system.
func TestPropertyEffectiveLEQRaw(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed % 8)
		if n < 0 {
			n = -n
		}
		w := trace.Burst("p", n+4, 0,
			trace.FixedLengths{Prompt: 128, Output: 128}, trace.FixedRate(15), seed)
		e, err := New(testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()))
		if err != nil {
			return false
		}
		res, err := e.Run(w)
		if err != nil {
			return false
		}
		return res.Report.EffectiveThroughput <= res.Report.Throughput+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Failure-mode coverage: an abandoned run (deadline hit) still tears down
// cleanly and reports honestly.
func TestTimedOutRunReportsPartialState(t *testing.T) {
	cfg := testConfig(sched.NewSGLang(), BaselineKVPolicy())
	cfg.MaxSimTime = simclock.Duration(1.0)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(burst(10, 256, 512, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("1s cap must time out")
	}
	if res.Report.Finished == res.Report.N {
		t.Error("timed-out run should leave unfinished requests")
	}
	for _, rm := range res.Report.Requests {
		if !rm.Finished && rm.Tokens == 0 && !rm.TTFTCensored {
			t.Error("unserved requests must be TTFT-censored")
		}
	}
}
