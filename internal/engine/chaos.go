package engine

// Chaos support: the engine-side half of replica crash injection and the
// brownout slow-node model. Crash tears one replica down mid-flight on the
// virtual clock — every queued, running, preempted, loading, and
// reload-deferred request is orphaned back to the caller for gateway
// retry, every pending completion event is cancelled, and the KV manager
// wipes — leaving the engine inert until the cluster backfills it through
// the normal warm-up path.

import (
	"sort"

	"repro/internal/request"
	"repro/internal/simclock"
)

// deferredInject is one arrival parked behind an in-flight host-tier
// prefix reload, with the clock handle delivering it.
type deferredInject struct {
	req    *request.Request
	handle simclock.Handle
}

// dropDeferred forgets a delivered deferred inject.
func (e *Engine) dropDeferred(r *request.Request) {
	for i := range e.deferred {
		if e.deferred[i].req == r {
			e.deferred = append(e.deferred[:i], e.deferred[i+1:]...)
			return
		}
	}
}

// SetSlowdown installs a chaos brownout factor: every iteration launched
// while it exceeds 1 takes that multiple of its modelled duration. Factors
// at or below 1 restore full speed.
func (e *Engine) SetSlowdown(factor float64) { e.slowdown = factor }

// Crashed reports whether the engine is down awaiting backfill.
func (e *Engine) Crashed() bool { return e.crashed }

// ClearCrashed returns a backfilled engine to service (the cluster calls
// it when the replacement replica's warm-up completes).
func (e *Engine) ClearCrashed() { e.crashed = false }

// Crash kills the engine at now: all in-flight work is orphaned, every
// pending engine event (iteration completion, boundary stall, scheduler
// wakeup, deferred reload injects, client consumption ticks) is cancelled,
// and the KV manager loses every byte it held. Orphans are removed from
// the tracker — the dead replica's results must not count requests that
// will retry elsewhere — and returned in request-id order. Requests that
// already finished stay in the tracker: their tokens were delivered.
func (e *Engine) Crash(now simclock.Time) (orphans []*request.Request, pinsLost, mirrorsLost int) {
	if e.crashed {
		return nil, 0, 0
	}
	e.crashed = true

	e.clock.Cancel(e.iterHandle)
	e.clock.Cancel(e.stallHandle)
	e.clock.Cancel(e.retryTick)
	e.iterHandle, e.stallHandle, e.retryTick = simclock.Handle{}, simclock.Handle{}, simclock.Handle{}
	e.retryAt = 0
	e.gpuBusy, e.inKick = false, false
	e.iterJobs, e.iterJob = e.iterJobs[:0], nil
	e.batchBuf = e.batchBuf[:0]

	take := func(r *request.Request) {
		e.track.Remove(r)
		r.CancelConsumption(e.clock)
		orphans = append(orphans, r)
	}
	for _, r := range e.waiting {
		take(r)
	}
	for _, j := range e.backlog {
		take(j.req)
	}
	for _, r := range e.running {
		take(r)
	}
	for _, r := range e.preempted {
		take(r)
	}
	for _, r := range e.loading {
		take(r)
	}
	e.waiting, e.backlog, e.running = nil, nil, nil
	e.preempted, e.loading = nil, nil

	// Reload-deferred arrivals were never registered; cancelling their
	// delivery events is enough to orphan them.
	for _, d := range e.deferred {
		e.clock.Cancel(d.handle)
		d.req.CancelConsumption(e.clock)
		orphans = append(orphans, d.req)
	}
	e.deferred = nil
	e.pendingInjects = 0

	pinsLost, mirrorsLost = e.mem.Crash()

	sort.Slice(orphans, func(i, j int) bool { return orphans[i].ID < orphans[j].ID })
	e.notifyLoad()
	return orphans, pinsLost, mirrorsLost
}

// AbortPrefixMigration un-stakes a pin whose interconnect transfer was
// torn down by a link flap: the prefix returns to normal service on this
// donor (see kvcache.Manager.AbortMigrateOut).
func (e *Engine) AbortPrefixMigration(session int) {
	e.mem.AbortMigrateOut(session)
}

// HostCacheEnabled reports whether this replica has a host-mirror tier the
// redundancy loop can copy into.
func (e *Engine) HostCacheEnabled() bool { return e.mem.HostCacheEnabled() }

// HostMirrorSize reports the raw host-mirrored tokens this replica holds
// for a session, ignoring device pins and in-flight reloads — the
// redundancy loop's already-covered probe.
func (e *Engine) HostMirrorSize(session int) int {
	return e.mem.MirrorTokens(session)
}

// AdoptHostMirror installs a host-tier mirror replicated in from a peer,
// usable once the wire transfer lands at readyAt.
func (e *Engine) AdoptHostMirror(session, tokens int, readyAt simclock.Time) bool {
	return e.mem.AdoptMirror(session, tokens, readyAt)
}

// RepinFromMirror books the h2d transfer re-pinning a session prefix from
// this replica's own surviving host mirror (post-crash re-replication).
func (e *Engine) RepinFromMirror(session int, now simclock.Time) (done simclock.Time, tokens int, bytes int64, ok bool) {
	return e.mem.RepinFromMirror(session, now)
}
