package engine

import (
	"container/list"
)

// prefixCache models a radix-tree prefix cache (SGLang-style) at session
// granularity: when a multi-turn request finishes, its full context
// (prompt + response) stays available for the session's next turn, up to a
// token budget with LRU eviction. A hit lets the next turn's prefill skip
// recomputing the shared prefix.
//
// The model is compute-side: cached prefixes shorten prefill work but are
// not charged against the device page pool (an optimistic approximation —
// a real radix cache competes with live requests for pages and is evicted
// under pressure; the budget, a fraction of KV capacity, stands in for
// that pressure).
type prefixCache struct {
	budget  int // token capacity
	used    int
	order   *list.List // Front = most recently used
	entries map[int]*list.Element
}

type prefixEntry struct {
	session int
	tokens  int
}

func newPrefixCache(budget int) *prefixCache {
	return &prefixCache{
		budget:  budget,
		order:   list.New(),
		entries: make(map[int]*list.Element),
	}
}

// peek reports the cached prefix tokens for a session without touching the
// eviction order; routers probe with it.
func (c *prefixCache) peek(session int) int {
	if el, ok := c.entries[session]; ok {
		return el.Value.(*prefixEntry).tokens
	}
	return 0
}

// take reports the cached prefix tokens for a session and marks the entry
// most recently used (a hit at admission time).
func (c *prefixCache) take(session int) int {
	el, ok := c.entries[session]
	if !ok {
		return 0
	}
	c.order.MoveToFront(el)
	return el.Value.(*prefixEntry).tokens
}

// put records the session's resident context after a turn finishes,
// replacing any smaller entry, then evicts least-recently-used sessions
// beyond the budget. Contexts larger than the whole budget are not
// cached, and a smaller context never shrinks an existing entry (an
// earlier turn finishing late, after a later turn already cached its
// longer prefix, must not discard that prefix).
func (c *prefixCache) put(session, tokens int) {
	if tokens <= 0 || tokens > c.budget {
		return
	}
	if el, ok := c.entries[session]; ok {
		e := el.Value.(*prefixEntry)
		if tokens > e.tokens {
			c.used += tokens - e.tokens
			e.tokens = tokens
		}
		c.order.MoveToFront(el)
	} else {
		c.entries[session] = c.order.PushFront(&prefixEntry{session: session, tokens: tokens})
		c.used += tokens
	}
	for c.used > c.budget {
		back := c.order.Back()
		e := back.Value.(*prefixEntry)
		c.order.Remove(back)
		delete(c.entries, e.session)
		c.used -= e.tokens
	}
}
