package engine

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// smallGPU is a scaled-down device so tests exercise memory pressure with
// tiny workloads: ~8k KV tokens of capacity.
func smallGPU() gpu.Spec {
	g := gpu.RTX4090
	g.Name = "test-gpu"
	g.MemoryGB = 18.2 // 0.9*18.2GB - 16.06GB weights ≈ 0.32GB ≈ 2400 tokens
	return g
}

func testConfig(s sched.Scheduler, kv KVPolicy) Config {
	return Config{
		GPU:       smallGPU(),
		Model:     model.Llama3_8B,
		Scheduler: s,
		KV:        kv,
	}
}

func runWorkload(t *testing.T, cfg Config, w trace.Workload) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func burst(n, prompt, output int, rate float64) trace.Workload {
	return trace.Burst("b", n, 0, trace.FixedLengths{Prompt: prompt, Output: output}, trace.FixedRate(rate), 1)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil scheduler should fail")
	}
	cfg := testConfig(sched.NewSGLang(), BaselineKVPolicy())
	cfg.MemFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("bad mem fraction should fail")
	}
	cfg = testConfig(sched.NewSGLang(), BaselineKVPolicy())
	cfg.MemFraction = 0.5 // weights alone exceed 0.5 * 18.2 GB
	if _, err := New(cfg); err == nil {
		t.Error("no KV capacity should fail")
	}
}

func TestRunRejectsBadWorkloads(t *testing.T) {
	e, err := New(testConfig(sched.NewSGLang(), BaselineKVPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(trace.Workload{}); err == nil {
		t.Error("empty workload should fail")
	}
	huge := burst(1, 5000, 5000, 20)
	if _, err := e.Run(huge); err == nil {
		t.Error("oversized request should fail upfront")
	}
}

func TestSingleRequestCompletes(t *testing.T) {
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), burst(1, 128, 64, 20))
	if res.Report.Finished != 1 {
		t.Fatalf("finished = %d", res.Report.Finished)
	}
	r := res.Requests[0]
	if r.Generated != 64 {
		t.Errorf("generated = %d", r.Generated)
	}
	// TTFT should be roughly one prefill (~tens of ms on the test GPU).
	if res.Report.MeanTTFT > time.Second {
		t.Errorf("TTFT = %v, too slow for an idle system", res.Report.MeanTTFT)
	}
	if res.Report.TotalRebuffer != 0 {
		t.Errorf("a lone request at 20 tok/s should never stall, rebuffer=%v", res.Report.TotalRebuffer)
	}
	if res.PrefillIters == 0 || res.DecodeIters == 0 {
		t.Error("expected both prefill and decode iterations")
	}
}

func TestTokenTimesMonotonic(t *testing.T) {
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), burst(4, 128, 100, 20))
	for _, r := range res.Requests {
		for j := 1; j < len(r.TokenTimes); j++ {
			if r.TokenTimes[j] < r.TokenTimes[j-1] {
				t.Fatalf("req %d token times not monotone", r.ID)
			}
		}
		if len(r.TokenTimes) != r.Generated {
			t.Fatalf("req %d: %d timestamps for %d tokens", r.ID, len(r.TokenTimes), r.Generated)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w := trace.Poisson("p", 3, simclock.FromSeconds(5), trace.FixedLengths{Prompt: 128, Output: 80}, trace.FixedRate(20), 7)
	a := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()), w)
	b := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()), w)
	if a.Report.MeanTTFT != b.Report.MeanTTFT || a.Report.TotalOut != b.Report.TotalOut ||
		a.Makespan != b.Makespan || a.Iterations != b.Iterations {
		t.Error("identical runs should be bit-identical")
	}
}

func TestAllSchedulersCompleteBurst(t *testing.T) {
	scheds := map[string]func() (sched.Scheduler, KVPolicy){
		"sglang":  func() (sched.Scheduler, KVPolicy) { return sched.NewSGLang(), BaselineKVPolicy() },
		"chunked": func() (sched.Scheduler, KVPolicy) { return sched.NewSGLangChunked(256), BaselineKVPolicy() },
		"andes":   func() (sched.Scheduler, KVPolicy) { return sched.NewAndes(), BaselineKVPolicy() },
		"tokenflow": func() (sched.Scheduler, KVPolicy) {
			return core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()
		},
	}
	// 12 requests of full context 448 against a ~2400-token pool: heavy
	// overcommit, requires queueing or preemption to finish.
	w := burst(12, 192, 256, 20)
	for name, mk := range scheds {
		s, kv := mk()
		res := runWorkload(t, testConfig(s, kv), w)
		if res.TimedOut {
			t.Errorf("%s: timed out", name)
			continue
		}
		if res.Report.Finished != 12 {
			t.Errorf("%s: finished %d/12", name, res.Report.Finished)
		}
		if res.Report.TotalOut != 12*256 {
			t.Errorf("%s: generated %d tokens, want %d", name, res.Report.TotalOut, 12*256)
		}
	}
}

func TestChunkedPrefillRunsMixedIterations(t *testing.T) {
	res := runWorkload(t, testConfig(sched.NewSGLangChunked(64), BaselineKVPolicy()), burst(3, 256, 64, 20))
	if res.MixedIters == 0 {
		t.Error("chunked scheduler should run mixed iterations")
	}
}

func TestTokenFlowPreemptsUnderPressure(t *testing.T) {
	// Burst of 12 with consumption far slower than generation: buffers
	// accumulate, TokenFlow should preempt to serve the queue.
	w := burst(12, 192, 256, 10)
	res := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()), w)
	if res.Report.Preemptions == 0 {
		t.Error("TokenFlow should preempt under this pressure")
	}
	if res.KV.Loads == 0 && res.Report.Finished == 12 {
		// Resumes could all be recompute in principle, but with PCIe load
		// being far cheaper than recompute, some loads must occur.
		t.Error("expected at least one host-copy load")
	}
}

func TestTokenFlowImprovesTTFTOverSGLang(t *testing.T) {
	// The paper's headline: under burst, preemptive buffer-aware
	// scheduling cuts TTFT while consumption-rate pacing keeps effective
	// throughput up.
	w := burst(16, 192, 320, 12)
	sg := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), w)
	tf := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()), w)
	if tf.Report.Finished != 16 || sg.Report.Finished != 16 {
		t.Fatalf("finished: tf=%d sg=%d", tf.Report.Finished, sg.Report.Finished)
	}
	if tf.Report.P99TTFT >= sg.Report.P99TTFT {
		t.Errorf("TokenFlow P99 TTFT %v should beat SGLang %v", tf.Report.P99TTFT, sg.Report.P99TTFT)
	}
	if tf.Report.EffectiveThroughput < sg.Report.EffectiveThroughput*0.9 {
		t.Errorf("TokenFlow effective throughput %.1f should not collapse vs SGLang %.1f",
			tf.Report.EffectiveThroughput, sg.Report.EffectiveThroughput)
	}
}

func TestSamplesRecorded(t *testing.T) {
	cfg := testConfig(sched.NewSGLang(), BaselineKVPolicy())
	cfg.SampleEvery = 100 * time.Millisecond
	res := runWorkload(t, cfg, burst(6, 192, 128, 20))
	if len(res.Samples) < 5 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// At t=0 the burst is queued.
	if res.Samples[0].Queued == 0 {
		t.Error("first sample should show the queued burst")
	}
}

func TestInstantConsumersComplete(t *testing.T) {
	// Rate 0 = agent-style consumers (no pacing).
	res := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()), burst(6, 128, 128, 0))
	if res.Report.Finished != 6 {
		t.Errorf("finished = %d", res.Report.Finished)
	}
}

func TestStaggeredArrivals(t *testing.T) {
	w := trace.Poisson("p", 2, simclock.FromSeconds(8), trace.FixedLengths{Prompt: 160, Output: 120}, trace.FixedRate(15), 3)
	res := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()), w)
	if res.Report.Finished != w.Len() {
		t.Errorf("finished %d/%d", res.Report.Finished, w.Len())
	}
}

func TestBoundaryStallOnlyWithoutChunking(t *testing.T) {
	// On a constrained PCIe link the unchunked write-through backlog
	// cannot drain within an iteration, so boundaries stall (§5.2's
	// scheduling dependency); synchronous chunked writing sizes transfers
	// to the compute interval and never stalls.
	kv := TokenFlowKVPolicy()
	kv.ChunkedWriting = false
	w := burst(8, 192, 256, 12)
	slow := func() Config {
		c := testConfig(core.MustNew(core.DefaultConfig()), kv)
		c.GPU.PCIeGBps = 0.05
		return c
	}()
	res := runWorkload(t, slow, w)
	chunkedCfg := func() Config {
		c := testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy())
		c.GPU.PCIeGBps = 0.05
		return c
	}()
	chunked := runWorkload(t, chunkedCfg, w)
	if chunked.BoundaryStall != 0 {
		t.Errorf("chunked writing must never stall boundaries, got %v", chunked.BoundaryStall)
	}
	if res.BoundaryStall == 0 {
		t.Error("unchunked write-through should pay boundary stalls")
	}
}

func TestAblationOrdering(t *testing.T) {
	// Table 2's structure: full TokenFlow completes the workload fastest;
	// removing offload (recompute-only preemption) is the most expensive.
	w := burst(12, 192, 256, 10)
	mk := func(kv KVPolicy) time.Duration {
		res := runWorkload(t, testConfig(core.MustNew(core.DefaultConfig()), kv), w)
		if res.Report.Finished != 12 {
			t.Fatalf("finished = %d", res.Report.Finished)
		}
		return res.Makespan
	}
	full := mk(TokenFlowKVPolicy())
	noOffload := TokenFlowKVPolicy()
	noOffload.Offload = false
	woOffload := mk(noOffload)
	if woOffload < full {
		t.Errorf("w/o offload (%v) should not beat full TokenFlow (%v)", woOffload, full)
	}
}

func TestViewConsistency(t *testing.T) {
	e, err := New(testConfig(sched.NewSGLang(), BaselineKVPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	v := e.view(0)
	if v.TotalTokens <= 0 || v.FreeTokens != v.TotalTokens {
		t.Errorf("fresh engine view: free=%d total=%d", v.FreeTokens, v.TotalTokens)
	}
}

func BenchmarkBurstTokenFlow(b *testing.B) {
	w := burst(12, 192, 256, 12)
	for i := 0; i < b.N; i++ {
		e, err := New(testConfig(core.MustNew(core.DefaultConfig()), TokenFlowKVPolicy()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(w); err != nil {
			b.Fatal(err)
		}
	}
}
