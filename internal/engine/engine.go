// Package engine is the serving engine of the simulator: an SGLang-style
// iteration-level batching executor (continuous batching, prefill-priority
// or chunked-prefill iterations, reactive OOM eviction) driven by a
// pluggable scheduler, wired to the hierarchical KV cache manager and the
// client consumption processes. One Engine simulates one device serving
// one workload; runs are deterministic.
package engine

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// KVPolicy selects the memory-management feature set (the Table 2
// ablation switches).
type KVPolicy struct {
	Offload          bool
	WriteThrough     bool
	ChunkedWriting   bool
	LoadEvictOverlap bool
	PriorityWrites   bool

	// HostCache extends session prefix pins past eviction: an evicted
	// pin's host mirror stays reloadable over the host-to-device link, and
	// a returning turn reloads it (inside its TTFT) whenever the measured
	// link backlog says the wire beats recomputing the prefix. Requires
	// Offload. Off by default: it is an extension beyond the paper's §5
	// manager, so the Table 2 ablations are unaffected.
	HostCache bool

	// HostCachePages bounds the host-tier mirror cache in pages (LRU past
	// the budget); 0 means unlimited host memory. Only meaningful with
	// HostCache.
	HostCachePages int
}

// TokenFlowKVPolicy enables the full hierarchical manager of §5.
func TokenFlowKVPolicy() KVPolicy {
	return KVPolicy{Offload: true, WriteThrough: true, ChunkedWriting: true,
		LoadEvictOverlap: true, PriorityWrites: true}
}

// BaselineKVPolicy is reactive recompute-based preemption: no host
// offload, as in the SGLang and Andes baselines.
func BaselineKVPolicy() KVPolicy { return KVPolicy{} }

// Config describes one simulated serving deployment.
type Config struct {
	GPU   gpu.Spec
	Model model.Spec

	// MemFraction is the device-memory share for weights + KV cache
	// (SGLang's --mem-fraction-static; default 0.9).
	MemFraction float64

	// PageTokens is the KV page granularity (default 16).
	PageTokens int

	// MaxBatch caps the decode batch (default 256).
	MaxBatch int

	// MaxPrefillTokens caps the tokens of one prefill iteration batch
	// (default 8192).
	MaxPrefillTokens int

	// Scheduler decides admissions and preemptions. Required.
	Scheduler sched.Scheduler

	// KV selects the memory-management policies.
	KV KVPolicy

	// SampleEvery enables queued/running time-series sampling (Figures
	// 14-15); zero disables it.
	SampleEvery time.Duration

	// QoS parameterizes the report metrics; zero value selects defaults.
	QoS metrics.QoSParams

	// MaxSimTime aborts runaway simulations (default 4 simulated hours).
	MaxSimTime time.Duration

	// PrefixCacheFraction caps the session prefix cache as a share of KV
	// capacity: finished turns of multi-turn sessions keep their context
	// pinned on the device (LRU within this page budget), so the session's
	// next turn prefills only the new tokens. Pinned prefixes are charged
	// against the KV page pool, evicted under memory pressure, and always
	// reclaimed before an admission is allowed to stall. Zero selects the
	// default 0.5; negative disables the cache. Sessionless workloads are
	// unaffected.
	PrefixCacheFraction float64

	// Clock optionally injects a shared virtual clock. When nil the engine
	// owns a fresh clock and Run drives it to completion; when set (the
	// multi-replica cluster case) the owner of the clock drives the
	// simulation and feeds the engine through Inject/Collect.
	Clock *simclock.Clock

	// Fabric optionally injects this replica's endpoint on a shared
	// transfer fabric (the cluster case: host links and the replica
	// interconnect live in one topology, so every transfer class contends
	// on explicitly modelled wires). When nil the engine builds the
	// degenerate single-host fabric. Either way the engine attaches the
	// host link pair at its GPU's PCIe bandwidth.
	Fabric *fabric.Endpoint
}

func (c Config) withDefaults() Config {
	if c.MemFraction == 0 {
		c.MemFraction = 0.9
	}
	if c.PageTokens == 0 {
		c.PageTokens = 16
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxPrefillTokens == 0 {
		c.MaxPrefillTokens = 8192
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 4 * time.Hour
	}
	if c.PrefixCacheFraction == 0 {
		c.PrefixCacheFraction = 0.5
	}
	if c.QoS == (metrics.QoSParams{}) {
		c.QoS = metrics.DefaultQoSParams()
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Scheduler == nil {
		return fmt.Errorf("engine: nil scheduler")
	}
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.MemFraction < 0 || c.MemFraction > 1 {
		return fmt.Errorf("engine: mem fraction %v out of range", c.MemFraction)
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	Scheduler string
	Report    metrics.Report
	Samples   []request.Sample
	KV        kvcache.Stats
	Requests  []*request.Request

	// Iteration statistics.
	Iterations   int64
	PrefillIters int64
	DecodeIters  int64
	MixedIters   int64

	// BoundaryStall is time lost waiting for unchunked write-through
	// traffic at iteration boundaries.
	BoundaryStall time.Duration

	// PrefixHits counts requests admitted with a session prefix-cache hit;
	// PrefixHitTokens is the total prefill work those hits skipped.
	// PrefixEvictedMisses counts hits revoked at admission because memory
	// pressure evicted the pinned prefix first (those requests re-prefill
	// at full cost).
	PrefixHits          int64
	PrefixHitTokens     int64
	PrefixEvictedMisses int64

	// HostReloadFallbacks counts arrivals whose host-mirrored prefix was
	// available but the recompute-vs-reload break-even declined the reload
	// (a starved or backlogged h2d link): those turns recompute instead.
	// Completed reloads are in KV.HostReloads / KV.HostReloadTokens.
	HostReloadFallbacks int64

	// Makespan is the time of the last generated token (T in Eq. 2).
	Makespan time.Duration

	// TimedOut is set when the run hit MaxSimTime before completing.
	TimedOut bool
}

// prefillJob tracks one admitted request through (possibly chunked or
// recompute) prefill.
type prefillJob struct {
	req *request.Request
	// target is the tokens this prefill must process: the prompt for
	// fresh requests, prompt+generated for recompute resumes.
	target int
	done   int
	// alloc is the context tokens to reserve device pages for. It can
	// exceed target when a prefix-cache hit (CachedPrompt) lets prefill
	// skip recomputing tokens that must still be resident.
	alloc int
	// allocated marks that device pages were claimed.
	allocated bool
	// resume marks a recompute resume (no first-token semantics: the
	// request already streamed tokens before preemption).
	resume bool
}

// Engine simulates one device.
type Engine struct {
	cfg   Config
	clock *simclock.Clock
	cost  gpu.CostModel
	ep    *fabric.Endpoint
	mem   *kvcache.Manager
	track *request.Tracker

	waiting   []*request.Request
	backlog   []*prefillJob
	running   []*request.Request
	preempted []*request.Request
	loading   []*request.Request

	// pendingInjects counts arrivals deferred behind an in-flight host-tier
	// prefix reload: the request is delivered together with its KV, so it
	// is outstanding work the engine (and a draining replica) must wait
	// for, though not yet registered in any queue. deferred tracks those
	// arrivals and their clock handles so a crash can cancel the deliveries
	// and orphan the requests.
	pendingInjects int
	deferred       []deferredInject

	gpuBusy bool
	inKick  bool
	// crashed marks a replica killed by chaos fault injection: the loop
	// refuses to schedule until the cluster backfills it (ClearCrashed).
	crashed bool
	// slowdown > 1 is a chaos brownout: every launched iteration's duration
	// multiplies by it (the slow-node model). 0 or 1 is full speed.
	slowdown float64
	// iterHandle/stallHandle are the in-flight iteration's (or boundary
	// stall's) pending completion events, kept so a crash can cancel them.
	iterHandle  simclock.Handle
	stallHandle simclock.Handle
	// retryTick is the single scheduled wakeup for quantum-gated
	// schedulers (armed at sched.Waker's NextDecisionTime); retryAt is its
	// target instant, kept to avoid cancel/reschedule churn. All other
	// idle-with-outstanding progress is callback-driven.
	retryTick simclock.Handle
	retryAt   simclock.Time

	// arena batch-allocates this engine's self-primed requests; cluster
	// runs inject externally-built requests instead.
	arena request.Arena

	// viewBuf/viewBacklog/batchBuf are reused per-kick scratch: the view
	// and decode batch are rebuilt on every scheduling step, which on
	// million-request traces would otherwise dominate allocation. The
	// scheduler contract already forbids retaining the view across calls,
	// and at most one iteration is in flight, so single buffers suffice.
	viewBuf     sched.View
	viewBacklog []*request.Request
	batchBuf    []*request.Request

	// In-flight iteration completion state. Exactly one iteration runs at
	// a time (gpuBusy), so its parameters live on the engine and the
	// completion callbacks (iterDoneFn, stallDoneFn) are allocated once in
	// New instead of one closure pair per iteration.
	iterDoneFn  func(simclock.Time)
	stallDoneFn func(simclock.Time)
	kickFn      func(simclock.Time)
	iterKind    iterKind
	iterJobs    []*prefillJob // prefill: the launched job batch (reused)
	iterJob     *prefillJob   // mixed: chunked head job, nil when none
	iterTokens  int           // prefill/mixed: prompt tokens this iteration
	iterDur     time.Duration

	// onFirstToken, when set, observes every fresh request's first output
	// token (the cluster feeds its windowed TTFT estimator from it). Pure
	// observation: it must not schedule events or mutate engine state.
	onFirstToken func(r *request.Request, now simclock.Time)

	// onLoad, when set, observes every change to OutstandingRequests —
	// the per-change queue-depth stream replicas publish to the cluster's
	// prefix index. Deduplicated against lastLoad so internal state moves
	// (waiting → running → preempted) never fire it; only injection and
	// completion shift the total. Pure observation, like onFirstToken.
	onLoad   func(outstanding int)
	lastLoad int

	// obs/prof are the optional flight-recorder sinks (nil = off, free);
	// obsReplica is the replica id stamped on emitted events. Pure
	// observation, like onFirstToken.
	obs        *obs.Recorder
	prof       *obs.Profiler
	obsReplica int

	// Profiled estimates exposed to schedulers.
	avgIter       time.Duration
	avgPrefillTok time.Duration

	iterations    int64
	prefillIters  int64
	decodeIters   int64
	mixedIters    int64
	boundaryStall time.Duration

	arrivalsDone bool
	timedOut     bool

	// Session prefix-cache accounting. The cache itself lives in the KV
	// manager as pinned page-pool reservations (kvcache prefix pins); hits
	// shorten prefill for multi-turn sessions routed back to this engine.
	prefixHits          int64
	prefixHitTokens     int64
	prefixEvictedMisses int64
	hostReloadFallbacks int64
}

// New builds an engine for the given deployment.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cost, err := gpu.NewCostModel(cfg.GPU, cfg.Model)
	if err != nil {
		return nil, err
	}
	capTokens := cost.KVCapacityTokens(cfg.MemFraction)
	if capTokens < int64(cfg.PageTokens) {
		return nil, fmt.Errorf("engine: %s with mem fraction %.2f leaves no KV capacity for %s",
			cfg.GPU.Name, cfg.MemFraction, cfg.Model.Name)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.New()
	}
	ep := cfg.Fabric
	if ep == nil {
		ep = fabric.NewSingleHost(cfg.GPU.PCIeBytesPerSec(), cfg.GPU.PCIeBytesPerSec())
	} else if !ep.HostAttached() {
		// A pre-attached endpoint (e.g. an asymmetric host link pair built
		// for a study) keeps its own bandwidths.
		ep.AttachHost(cfg.GPU.PCIeBytesPerSec())
	}
	e := &Engine{
		cfg:   cfg,
		clock: clock,
		cost:  cost,
		ep:    ep,
		track: request.NewTracker(),
	}
	// One callback trio for the engine's lifetime: with at most one
	// iteration (or boundary stall) in flight, completion state lives on
	// the engine and these replace a per-iteration closure allocation.
	e.iterDoneFn = func(t simclock.Time) {
		e.gpuBusy = false
		e.completeIteration(t)
		e.kick(t)
	}
	e.stallDoneFn = func(t simclock.Time) {
		e.gpuBusy = false
		e.kick(t)
	}
	e.kickFn = func(t simclock.Time) { e.kick(t) }
	kvcfg := kvcache.Config{
		PageTokens:       cfg.PageTokens,
		GPUPages:         int(capTokens) / cfg.PageTokens,
		BytesPerToken:    cfg.Model.KVBytesPerToken(),
		Offload:          cfg.KV.Offload,
		WriteThrough:     cfg.KV.WriteThrough,
		ChunkedWriting:   cfg.KV.ChunkedWriting,
		LoadEvictOverlap: cfg.KV.LoadEvictOverlap,
		PriorityWrites:   cfg.KV.PriorityWrites,
		HostCache:        cfg.KV.HostCache,
		HostCachePages:   cfg.KV.HostCachePages,
	}
	if cfg.PrefixCacheFraction > 0 {
		kvcfg.PrefixPages = int(cfg.PrefixCacheFraction * float64(kvcfg.GPUPages))
	}
	e.mem, err = kvcache.New(kvcfg, e.clock, ep, kvcache.Callbacks{
		EvictDone:  e.onEvictDone,
		LoadDone:   e.onLoadDone,
		PinDrained: func(now simclock.Time) { e.kick(now) },
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// HostMirrorBytes reports the host-tier prefix-mirror footprint the
// engine's KV manager currently holds — the quantity the host-memory
// budget bounds and the cluster's telemetry series chart.
func (e *Engine) HostMirrorBytes() int64 { return e.mem.HostMirrorBytes() }

// SetObs installs the flight-recorder sinks on the engine and its KV
// manager, stamping events with the given replica id. Pure observation:
// it must not change any scheduling or memory decision.
func (e *Engine) SetObs(rec *obs.Recorder, prof *obs.Profiler, replica int) {
	e.obs = rec
	e.prof = prof
	e.obsReplica = replica
	e.mem.SetObs(rec, replica)
}

// Clock exposes the engine's virtual clock (for tests and harnesses).
func (e *Engine) Clock() *simclock.Clock { return e.clock }

// Mem exposes the KV manager (read-only use).
func (e *Engine) Mem() *kvcache.Manager { return e.mem }

// QueueLengths reports the live occupancy of the engine's queues
// (waiting, prefill backlog, running, preempted, loading) for telemetry.
func (e *Engine) QueueLengths() (waiting, backlog, running, preempted, loading int) {
	return len(e.waiting), len(e.backlog), len(e.running), len(e.preempted), len(e.loading)
}

// Run simulates the workload to completion and returns the result. It is
// the single-device entry point: Prime the workload, drive the clock, then
// Collect. Engines built on an injected shared clock are driven by their
// owner instead (see internal/cluster).
func (e *Engine) Run(w trace.Workload) (*Result, error) {
	if err := e.Prime(w); err != nil {
		return nil, err
	}
	deadline := simclock.Time(e.cfg.MaxSimTime)
	for e.clock.Step() {
		if e.clock.Now() > deadline {
			e.timedOut = true
			break
		}
	}
	return e.Collect(), nil
}

// ValidateWorkload checks that every request of the workload individually
// fits the engine's KV capacity.
func (e *Engine) ValidateWorkload(w trace.Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if w.Len() == 0 {
		return fmt.Errorf("engine: empty workload")
	}
	capTokens := e.mem.TotalPages() * e.cfg.PageTokens
	for i, it := range w.Items {
		if it.PromptLen+it.OutputLen+1 > capTokens {
			return fmt.Errorf("engine: request %d context %d exceeds KV capacity %d tokens",
				i, it.PromptLen+it.OutputLen, capTokens)
		}
	}
	return nil
}

// Prime validates the workload and schedules its arrival events (plus the
// sampling loop) on the engine's clock.
func (e *Engine) Prime(w trace.Workload) error {
	if err := e.ValidateWorkload(w); err != nil {
		return err
	}
	for i, it := range w.Items {
		it := it
		id := i
		e.clock.At(it.Arrival, func(now simclock.Time) {
			r := e.arena.New(id, now, it.PromptLen, it.OutputLen, it.Rate)
			r.Session, r.Turn = it.Session, it.Turn
			if id == w.Len()-1 {
				e.arrivalsDone = true
			}
			e.Inject(r, now)
		})
	}
	if e.cfg.SampleEvery > 0 {
		var sample func(now simclock.Time)
		sample = func(now simclock.Time) {
			e.track.Sample(now)
			if !e.done() {
				e.clock.After(e.cfg.SampleEvery, sample)
			}
		}
		e.clock.At(0, sample)
	}
	return nil
}

// Inject submits an externally created request at the current virtual time.
// The cluster router uses it to deliver routed arrivals; Prime uses it for
// the single-device path so both paths share one admission sequence. A
// session prefix-cache hit is assessed here, at arrival — and when the
// device pin is gone but a host-tier mirror survives, the arrival may
// first wait for a host-to-device reload (the wire time lands inside its
// TTFT, exactly like a cross-replica migration).
func (e *Engine) Inject(r *request.Request, now simclock.Time) {
	e.InjectCause(r, now, 0)
}

// InjectCause is Inject carrying the deferral-cause bits accumulated
// upstream of the engine (obs.QueueCauseGateway for gateway-drained
// arrivals, obs.QueueCauseMigrate for injects riding a migration
// completion); a host-reload deferral decided here ORs its own bit in.
// The cause reaches the queue event's payload so latency attribution can
// split the pre-queue gap exactly.
func (e *Engine) InjectCause(r *request.Request, now simclock.Time, cause int64) {
	if e.tryHostReload(r, now, cause) {
		return // delivered when the reloaded prefix is resident
	}
	e.injectNow(r, now, cause, now)
}

// injectNow registers and queues a request whose prefix state is settled.
// injectAt is when the engine first saw the request (InjectCause time);
// now − injectAt is the host-reload deferral, carried on the queue event.
func (e *Engine) injectNow(r *request.Request, now simclock.Time, cause int64, injectAt simclock.Time) {
	if r.Session != 0 {
		// A hit requires the new prompt to strictly extend the pinned
		// context (hit < PromptLen). A cached context at least as long as
		// the prompt means the conversation was truncated upstream — the
		// prefix no longer aligns, so it counts as a miss. The hit is
		// provisional: if memory pressure evicts the pin before this
		// request is admitted, admission revokes it (prefixEvictedMisses).
		if hit := e.mem.TakePrefix(r.Session); hit > 0 && hit < r.PromptLen {
			r.CachedPrompt = hit
			e.prefixHits++
			e.prefixHitTokens += int64(hit)
		}
	}
	e.track.Register(r)
	e.waiting = append(e.waiting, r)
	e.obs.Emit(now, obs.KindQueue, e.obsReplica, r.ID, r.Session,
		int64(r.CachedPrompt), obs.QueuePayload(cause, r.Turn),
		int64(r.Arrival), float64(now.Sub(injectAt)), "")
	e.notifyLoad()
	e.kick(now)
}

// tryHostReload decides the recompute-vs-reload break-even for an arriving
// session turn whose pinned prefix was evicted but host-mirrored: if the
// measured h2d backlog plus wire time undercuts the estimated prefill of
// the mirrored tokens, the mirror reloads and the inject rides the
// transfer completion (reload latency inside TTFT). It reports whether the
// inject was deferred.
func (e *Engine) tryHostReload(r *request.Request, now simclock.Time, cause int64) bool {
	if r.Session == 0 || !e.mem.HostCacheEnabled() {
		return false
	}
	if e.mem.PeekPrefix(r.Session) > 0 {
		return false // device pin present: the normal hit path applies
	}
	tokens := e.mem.HostMirrorTokens(r.Session)
	if tokens <= 0 || tokens >= r.PromptLen {
		return false
	}
	if e.mem.EstimateHostReload(r.Session, now) >= e.EstimatePrefill(tokens) {
		e.hostReloadFallbacks++
		return false // the wire loses: recompute the prefix
	}
	done, _, ok := e.mem.StartHostReload(r.Session, now)
	if !ok {
		return false
	}
	e.pendingInjects++
	e.notifyLoad()
	h := e.clock.At(done, func(t simclock.Time) {
		// The manager's install callback fired first (it was scheduled
		// first for the same instant), so a successful reload is already a
		// pin and injectNow assesses it as an ordinary hit; a dropped
		// install falls back to a full recompute.
		e.dropDeferred(r)
		e.pendingInjects--
		e.injectNow(r, t, cause|obs.QueueCauseReload, now)
	})
	e.deferred = append(e.deferred, deferredInject{req: r, handle: h})
	return true
}

// SetArrivalsDone marks that no further arrivals will be injected, letting
// the sampling loop terminate once all registered requests finish.
func (e *Engine) SetArrivalsDone() { e.arrivalsDone = true }

// SetFirstTokenObserver installs a callback fired when a request generates
// its first output token (TTFT is measurable at that instant). The
// autoscaling control loop uses it to maintain a windowed P99 TTFT.
func (e *Engine) SetFirstTokenObserver(fn func(r *request.Request, now simclock.Time)) {
	e.onFirstToken = fn
}

// SetLoadObserver installs a callback fired whenever OutstandingRequests
// changes — the per-change queue-depth stream a replica publishes to the
// cluster's prefix index. Like onFirstToken it is pure observation.
func (e *Engine) SetLoadObserver(fn func(outstanding int)) { e.onLoad = fn }

// notifyLoad fires the load observer when the outstanding total actually
// moved. Injection and completion are the only movers; internal state
// transitions conserve the sum and never reach the observer.
func (e *Engine) notifyLoad() {
	if e.onLoad == nil {
		return
	}
	if n := e.OutstandingRequests(); n != e.lastLoad {
		e.lastLoad = n
		e.onLoad(n)
	}
}

// MarkTimedOut records that the owning driver aborted the run at its
// simulation-time deadline.
func (e *Engine) MarkTimedOut() { e.timedOut = true }

// CachedPrefixTokens reports the session prefix tokens this engine's KV
// manager holds pinned, without perturbing eviction order (router probe).
func (e *Engine) CachedPrefixTokens(session int) int {
	return e.mem.PeekPrefix(session)
}

// Sample appends one point to the engine's queued/running time series.
func (e *Engine) Sample(now simclock.Time) { e.track.Sample(now) }

// FreeKVPages reports the free device KV pages (router hook).
func (e *Engine) FreeKVPages() int { return e.mem.FreePages() }

// TotalKVPages reports the device KV pool capacity in pages (the capacity
// signal heterogeneous-aware routers weigh).
func (e *Engine) TotalKVPages() int { return e.mem.TotalPages() }

// FreeKVTokens reports the free device KV capacity in tokens.
func (e *Engine) FreeKVTokens() int { return e.mem.FreePages() * e.cfg.PageTokens }

// KVPageTokens reports the KV page granularity in tokens (the conversion
// factor between the prefix index's page digests and token headroom).
func (e *Engine) KVPageTokens() int { return e.cfg.PageTokens }

// SetPrefixPublisher forwards the cluster's prefix-index publication hooks
// to the KV manager (see kvcache.Manager.SetPrefixPublisher).
func (e *Engine) SetPrefixPublisher(pin, mirror func(session, tokens int)) {
	e.mem.SetPrefixPublisher(pin, mirror)
}

// PinnedPrefixPages reports the pool pages currently held by session
// prefix pins (per-replica KV pressure telemetry).
func (e *Engine) PinnedPrefixPages() int { return e.mem.PinnedPrefixPages() }

// BeginPrefixMigration stakes the session's pinned prefix for migration to
// a peer replica, reporting the pinned tokens and wire size. The cluster
// books the interconnect transfer and calls CompletePrefixMigration when
// it finishes.
func (e *Engine) BeginPrefixMigration(session int) (tokens int, bytes int64, ok bool) {
	return e.mem.BeginMigrateOut(session)
}

// CompletePrefixMigration releases a migrated-out prefix; the freed pages
// may unblock stalled admissions, so the loop re-kicks.
func (e *Engine) CompletePrefixMigration(session int, now simclock.Time) {
	e.mem.CompleteMigrateOut(session)
	e.kick(now)
}

// InstallMigratedPrefix materializes a migrated-in session prefix as a
// pinned page-pool reservation on this replica.
func (e *Engine) InstallMigratedPrefix(session, tokens int, now simclock.Time) bool {
	return e.mem.InstallPrefix(session, tokens, now)
}

// HottestPrefixes lists up to k of this replica's pinned session prefixes
// in most-recently-used order (k <= 0 lists all) — the donor set for
// cluster-level KV pre-warming and drain hand-off.
func (e *Engine) HottestPrefixes(k int) []kvcache.PrefixInfo {
	return e.mem.HottestPrefixes(k)
}

// DropPrefix evicts a session's pinned prefix outright (drain hand-off
// when no peer can take it); freed pages may unblock stalled admissions.
func (e *Engine) DropPrefix(session int, now simclock.Time) bool {
	dropped := e.mem.DropPrefix(session, now)
	if dropped {
		e.kick(now)
	}
	return dropped
}

// OutstandingRequests reports how many injected requests have not finished
// generating: the queued+running load a router balances. Arrivals waiting
// on an in-flight host-tier prefix reload count — they are committed work
// this replica must still serve.
func (e *Engine) OutstandingRequests() int {
	return len(e.waiting) + len(e.backlog) + len(e.running) + len(e.preempted) +
		len(e.loading) + e.pendingInjects
}

// EstimatePrefill predicts the prefill compute time for n tokens on this
// device: the profiled per-token latency once iterations have landed, the
// roofline cost model before that. The migration and host-reload cost
// models weigh it against transfer time.
func (e *Engine) EstimatePrefill(tokens int) time.Duration {
	if tokens <= 0 {
		return 0
	}
	if e.avgPrefillTok > 0 {
		return time.Duration(tokens) * e.avgPrefillTok
	}
	return e.cost.PrefillTime(tokens)
}

// PrefixFootprint reports the session's pinned prefix tokens and wire size
// without perturbing the cache (the cluster's migration cost model sizes
// the transfer before committing it).
func (e *Engine) PrefixFootprint(session int) (tokens int, bytes int64) {
	return e.mem.PrefixFootprint(session)
}

// QoSParams exposes the report parameterization (for cluster-level merges).
func (e *Engine) QoSParams() metrics.QoSParams { return e.cfg.QoS }

// Collect tears down outstanding consumption events and assembles the
// Result after the clock has been driven to completion (or a deadline).
func (e *Engine) Collect() *Result {
	e.teardown()

	var makespan simclock.Time
	for _, r := range e.track.All() {
		if r.FinishedAt > makespan {
			makespan = r.FinishedAt
		}
		if r.Generated > 0 && r.TokenTimes[len(r.TokenTimes)-1] > makespan {
			makespan = r.TokenTimes[len(r.TokenTimes)-1]
		}
	}
	if makespan == 0 {
		makespan = e.clock.Now()
	}

	return &Result{
		Scheduler:           e.cfg.Scheduler.Name(),
		Report:              metrics.Analyze(e.track.All(), makespan, e.cfg.QoS),
		Samples:             e.track.Samples(),
		KV:                  e.mem.Stats(),
		Requests:            e.track.All(),
		Iterations:          e.iterations,
		PrefillIters:        e.prefillIters,
		DecodeIters:         e.decodeIters,
		MixedIters:          e.mixedIters,
		BoundaryStall:       e.boundaryStall,
		PrefixHits:          e.prefixHits,
		PrefixHitTokens:     e.prefixHitTokens,
		PrefixEvictedMisses: e.prefixEvictedMisses,
		HostReloadFallbacks: e.hostReloadFallbacks,
		Makespan:            time.Duration(makespan),
		TimedOut:            e.timedOut,
	}
}

// done reports whether all registered requests finished generating and no
// more arrivals are pending — including arrivals still waiting on an
// in-flight host-tier prefix reload, which are not registered yet.
func (e *Engine) done() bool {
	return e.arrivalsDone && e.pendingInjects == 0 && e.track.FinishedAll()
}

// teardown cancels outstanding consumption events after an aborted run.
func (e *Engine) teardown() {
	for _, r := range e.track.All() {
		r.CancelConsumption(e.clock)
	}
}

// view assembles the scheduler's View.
func (e *Engine) view(now simclock.Time) *sched.View {
	e.viewBacklog = e.viewBacklog[:0]
	for _, j := range e.backlog {
		e.viewBacklog = append(e.viewBacklog, j.req)
	}
	e.viewBuf = sched.View{
		Now:                now,
		Waiting:            e.waiting,
		PrefillBacklog:     e.viewBacklog,
		Running:            e.running,
		Preempted:          e.preempted,
		Loading:            e.loading,
		FreeTokens:         e.mem.FreePages() * e.cfg.PageTokens,
		TotalTokens:        e.mem.TotalPages() * e.cfg.PageTokens,
		PageTokens:         e.cfg.PageTokens,
		MaxBatch:           e.cfg.MaxBatch,
		Mem:                e.mem,
		Cost:               e.cost,
		AvgIterTime:        e.avgIter,
		AvgPrefillPerToken: e.avgPrefillTok,
	}
	return &e.viewBuf
}
