package engine

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func TestPrefixCachePutTakePeek(t *testing.T) {
	c := newPrefixCache(1000)
	if c.take(1) != 0 {
		t.Error("empty cache should miss")
	}
	c.put(1, 400)
	c.put(2, 300)
	if got := c.peek(1); got != 400 {
		t.Errorf("peek(1) = %d, want 400", got)
	}
	// Growing a session's context replaces its entry.
	c.put(1, 600)
	if got := c.take(1); got != 600 {
		t.Errorf("take(1) = %d, want 600", got)
	}
	if c.used != 900 {
		t.Errorf("used = %d, want 900", c.used)
	}
	// A smaller context (an earlier turn finishing late) never shrinks
	// the cached prefix.
	c.put(1, 400)
	if got := c.peek(1); got != 600 {
		t.Errorf("peek(1) after late smaller put = %d, want 600", got)
	}
}

func TestPrefixCacheEvictsLRU(t *testing.T) {
	c := newPrefixCache(1000)
	c.put(1, 400)
	c.put(2, 400)
	c.take(1) // touch 1: session 2 becomes LRU
	c.put(3, 400)
	if c.peek(2) != 0 {
		t.Error("session 2 should have been evicted as LRU")
	}
	if c.peek(1) != 400 || c.peek(3) != 400 {
		t.Error("sessions 1 and 3 should survive")
	}
}

func TestPrefixCacheRejectsOversized(t *testing.T) {
	c := newPrefixCache(100)
	c.put(1, 101)
	if c.peek(1) != 0 || c.used != 0 {
		t.Error("contexts larger than the budget must not be cached")
	}
	c.put(2, 0)
	if c.used != 0 {
		t.Error("empty contexts must not be cached")
	}
}

// TestPrefixCacheMissOnTruncatedPrompt: a follow-up whose prompt is not
// longer than the cached context means the conversation was truncated
// upstream — the prefix no longer aligns, so no hit may be granted.
func TestPrefixCacheMissOnTruncatedPrompt(t *testing.T) {
	w := trace.Workload{Name: "truncated", Items: []trace.Item{
		{Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1},
		// Turn 1's context is 320 tokens; a 300-token turn-2 prompt cannot
		// extend it.
		{Arrival: simclock.FromSeconds(30), PromptLen: 300, OutputLen: 64, Rate: 20, Session: 1, Turn: 2},
	}}
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), w)
	if res.PrefixHits != 0 {
		t.Errorf("truncated session granted %d prefix hits, want 0", res.PrefixHits)
	}
	if res.Report.Finished != 2 {
		t.Errorf("finished %d/2", res.Report.Finished)
	}
}

// twoTurnSession is one session: a 256-token opening prompt, then a
// follow-up whose 384-token prompt extends the first turn's full context
// (256 + 64 output + 64 new), arriving well after the first turn drains.
func twoTurnSession() trace.Workload {
	return trace.Workload{Name: "2turn", Items: []trace.Item{
		{Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1},
		{Arrival: simclock.FromSeconds(30), PromptLen: 384, OutputLen: 64, Rate: 20, Session: 1, Turn: 2},
	}}
}

// TestEnginePrefixCacheShortensPrefill runs a two-turn session through one
// engine and checks the second turn hit the cache and got its first token
// no later than without the cache.
func TestEnginePrefixCacheShortensPrefill(t *testing.T) {
	w := twoTurnSession()
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), w)
	if res.PrefixHits != 1 {
		t.Fatalf("prefix hits = %d, want 1", res.PrefixHits)
	}
	// Turn 1 context: 256 prompt + 64 output = 320 tokens, all covered.
	if res.PrefixHitTokens != 320 {
		t.Errorf("prefix hit tokens = %d, want 320", res.PrefixHitTokens)
	}

	// Disabling the cache removes the hits but not correctness.
	off := testConfig(sched.NewSGLang(), BaselineKVPolicy())
	off.PrefixCacheFraction = -1
	res2 := runWorkload(t, off, w)
	if res2.PrefixHits != 0 {
		t.Errorf("disabled cache still hit %d times", res2.PrefixHits)
	}
	if res2.Report.Finished != res.Report.Finished {
		t.Error("cache ablation changed completion")
	}
	if res.Report.Requests[1].TTFT > res2.Report.Requests[1].TTFT {
		t.Errorf("cached TTFT %v slower than uncached %v",
			res.Report.Requests[1].TTFT, res2.Report.Requests[1].TTFT)
	}
}
