package engine

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// These tests cover the unified residency model: the session prefix cache
// is not a compute-side shortcut but pinned pages in the device pool —
// charged, adopted by follow-up turns, and evicted under live-request
// pressure.

// TestPrefixCacheMissOnTruncatedPrompt: a follow-up whose prompt is not
// longer than the cached context means the conversation was truncated
// upstream — the prefix no longer aligns, so no hit may be granted.
func TestPrefixCacheMissOnTruncatedPrompt(t *testing.T) {
	w := trace.Workload{Name: "truncated", Items: []trace.Item{
		{Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1},
		// Turn 1's context is 320 tokens; a 300-token turn-2 prompt cannot
		// extend it.
		{Arrival: simclock.FromSeconds(30), PromptLen: 300, OutputLen: 64, Rate: 20, Session: 1, Turn: 2},
	}}
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), w)
	if res.PrefixHits != 0 {
		t.Errorf("truncated session granted %d prefix hits, want 0", res.PrefixHits)
	}
	if res.Report.Finished != 2 {
		t.Errorf("finished %d/2", res.Report.Finished)
	}
}

// twoTurnSession is one session: a 256-token opening prompt, then a
// follow-up whose 384-token prompt extends the first turn's full context
// (256 + 64 output + 64 new), arriving well after the first turn drains.
func twoTurnSession() trace.Workload {
	return trace.Workload{Name: "2turn", Items: []trace.Item{
		{Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1},
		{Arrival: simclock.FromSeconds(30), PromptLen: 384, OutputLen: 64, Rate: 20, Session: 1, Turn: 2},
	}}
}

// TestEnginePrefixCacheShortensPrefill runs a two-turn session through one
// engine and checks the second turn hit the cache and got its first token
// no later than without the cache.
func TestEnginePrefixCacheShortensPrefill(t *testing.T) {
	w := twoTurnSession()
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), w)
	if res.PrefixHits != 1 {
		t.Fatalf("prefix hits = %d, want 1", res.PrefixHits)
	}
	// Turn 1 context: 256 prompt + 64 output = 320 tokens, all covered.
	if res.PrefixHitTokens != 320 {
		t.Errorf("prefix hit tokens = %d, want 320", res.PrefixHitTokens)
	}
	// The hit adopted the pin instead of double-charging the pool.
	if res.KV.PrefixAdoptions != 1 {
		t.Errorf("prefix adoptions = %d, want 1", res.KV.PrefixAdoptions)
	}

	// Disabling the cache removes the hits but not correctness.
	off := testConfig(sched.NewSGLang(), BaselineKVPolicy())
	off.PrefixCacheFraction = -1
	res2 := runWorkload(t, off, w)
	if res2.PrefixHits != 0 {
		t.Errorf("disabled cache still hit %d times", res2.PrefixHits)
	}
	if res2.Report.Finished != res.Report.Finished {
		t.Error("cache ablation changed completion")
	}
	if res.Report.Requests[1].TTFT > res2.Report.Requests[1].TTFT {
		t.Errorf("cached TTFT %v slower than uncached %v",
			res.Report.Requests[1].TTFT, res2.Report.Requests[1].TTFT)
	}
}

// TestPrefixResidencyChargedToPool: a finished session turn leaves its
// context pinned in the page pool — visible as pinned pages, not free
// memory.
func TestPrefixResidencyChargedToPool(t *testing.T) {
	res := runWorkload(t, testConfig(sched.NewSGLang(), BaselineKVPolicy()), twoTurnSession())
	// Turn 2's context (384+64 = 448 tokens = 28 pages) remains pinned at
	// the end of the run.
	if res.KV.PinnedPages == 0 {
		t.Error("finished session should leave pinned prefix pages")
	}
	if res.KV.PeakPinnedPages < res.KV.PinnedPages {
		t.Errorf("peak pinned %d < final pinned %d", res.KV.PeakPinnedPages, res.KV.PinnedPages)
	}
	if res.KV.PrefixPins != 2 {
		t.Errorf("prefix pins = %d, want 2 (one per finished turn)", res.KV.PrefixPins)
	}
}

// TestPrefixEvictionUnderPressure is the residency model's stress case: a
// session pins its context, a sessionless burst overcommits the pool, and
// the pin must yield. At every event the pool must stay within capacity,
// the pin must be evicted (live requests outrank cached prefixes), and the
// session's next turn re-prefills at full cost.
func TestPrefixEvictionUnderPressure(t *testing.T) {
	w := trace.Workload{Name: "pressure"}
	// Turn 1 pins 320 tokens once it finishes.
	w.Items = append(w.Items, trace.Item{
		Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1,
	})
	// A burst that wants 8 × 448 = 3584 tokens of a ~2400-token pool.
	for i := 0; i < 8; i++ {
		w.Items = append(w.Items, trace.Item{
			Arrival: simclock.FromSeconds(20), PromptLen: 192, OutputLen: 256, Rate: 20,
		})
	}
	// Turn 2 arrives after the burst flushed the pin: full-cost prefill.
	w.Items = append(w.Items, trace.Item{
		Arrival: simclock.FromSeconds(120), PromptLen: 384, OutputLen: 64, Rate: 20,
		Session: 1, Turn: 2,
	})

	e, err := New(testConfig(sched.NewSGLang(), BaselineKVPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Prime(w); err != nil {
		t.Fatal(err)
	}
	for e.clock.Step() {
		free, used, total := e.mem.FreePages(), e.mem.UsedPages(), e.mem.TotalPages()
		if free < 0 || used > total {
			t.Fatalf("pool overcommitted at %v: free=%d used=%d total=%d",
				e.clock.Now(), free, used, total)
		}
	}
	res := e.Collect()
	if res.Report.Finished != len(w.Items) {
		t.Fatalf("finished %d/%d", res.Report.Finished, len(w.Items))
	}
	if res.KV.PrefixEvictions == 0 {
		t.Error("the burst should have evicted the pinned prefix")
	}
	// The evicted session re-prefilled at full cost: no hit was granted.
	if res.PrefixHits != 0 {
		t.Errorf("prefix hits = %d, want 0 (pin evicted before turn 2)", res.PrefixHits)
	}
	if r := res.Requests[len(res.Requests)-1]; r.Generated != 64 {
		t.Errorf("turn 2 generated %d/64 tokens", r.Generated)
	}
}
