package engine_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// pressureWorkload overcommits the prefix-pin budget: many sessions pin
// large contexts in a first wave, forcing LRU pin evictions, then every
// session returns with an extending prompt. With the host-tier cache the
// evicted sessions reload their prefix over h2d; without it they recompute.
func pressureWorkload(sessions int) trace.Workload {
	w := trace.Workload{Name: "kv-pressure"}
	for s := 1; s <= sessions; s++ {
		w.Items = append(w.Items, trace.Item{
			Arrival:   simclock.FromSeconds(0.5 * float64(s)),
			PromptLen: 2000, OutputLen: 128, Rate: 20, Session: s, Turn: 1,
		})
	}
	for s := 1; s <= sessions; s++ {
		w.Items = append(w.Items, trace.Item{
			Arrival:   simclock.FromSeconds(80 + 0.5*float64(s)),
			PromptLen: 2528, OutputLen: 128, Rate: 20, Session: s, Turn: 2,
		})
	}
	return w
}

func runHostCache(t *testing.T, ep *fabric.Endpoint, hostCache bool, w trace.Workload) *engine.Result {
	t.Helper()
	kv := engine.TokenFlowKVPolicy()
	kv.HostCache = hostCache
	e, err := engine.New(engine.Config{
		GPU:         gpu.RTX4090,
		Model:       model.Llama3_8B,
		MemFraction: 0.9,
		Scheduler:   core.MustNew(core.DefaultConfig()),
		KV:          kv,
		Fabric:      ep,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Report.Finished != w.Len() {
		t.Fatalf("finished %d/%d (timed out %v)", res.Report.Finished, w.Len(), res.TimedOut)
	}
	return res
}

// TestHostReloadBeatsRecomputeUnderPressure is the host-tier cache's
// acceptance claim: under a KV-pressure session workload whose pins are
// evicted between turns, reloading the host mirror over h2d beats
// recomputing the prefix on P99 TTFT.
func TestHostReloadBeatsRecomputeUnderPressure(t *testing.T) {
	w := pressureWorkload(24)
	on := runHostCache(t, nil, true, w)
	off := runHostCache(t, nil, false, w)

	if off.KV.PrefixEvictions == 0 {
		t.Fatal("workload exerts no pin pressure; the scenario is vacuous")
	}
	if on.KV.HostReloads == 0 {
		t.Fatal("host cache produced no reloads")
	}
	if on.KV.HostReloadTokens == 0 || on.KV.BytesReloaded == 0 {
		t.Errorf("reload accounting empty: %+v", on.KV)
	}
	if off.KV.HostReloads != 0 || off.KV.HostMirroredPages != 0 {
		t.Errorf("disabled cache recorded reloads/mirrors: %+v", off.KV)
	}
	if on.Report.P99TTFT >= off.Report.P99TTFT {
		t.Errorf("host-reload P99 TTFT %v should beat recompute %v",
			on.Report.P99TTFT, off.Report.P99TTFT)
	}
}

// TestHostReloadFallsBackOnStarvedLink: with the h2d link starved to
// 1 MB/s, the measured-backlog break-even must judge every reload slower
// than recompute and fall back — no reloads, counted fallbacks, and the
// run still completes.
func TestHostReloadFallsBackOnStarvedLink(t *testing.T) {
	w := pressureWorkload(24)
	// Asymmetric host pair: evictions drain at full PCIe speed (so mirrors
	// complete promptly) but reloads would crawl.
	ep := fabric.NewSingleHost(gpu.RTX4090.PCIeBytesPerSec(), 1e6)
	res := runHostCache(t, ep, true, w)

	if res.KV.HostReloads != 0 {
		t.Errorf("starved link still reloaded %d times", res.KV.HostReloads)
	}
	if res.HostReloadFallbacks == 0 {
		t.Error("no fallbacks counted: the break-even never fired")
	}
	if res.KV.HostMirroredPages == 0 {
		t.Error("mirrors should still exist (they are just not worth reading)")
	}
}
