package autoscale_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/autoscale"
)

// slosig builds slo-target signals: active replicas, observed windowed P99,
// and in-band work, in a 0..4 pool (scale-to-zero bounds).
func slosig(active int, p99 time.Duration, outstanding, arrivals, gateway int) autoscale.Signals {
	return autoscale.Signals{
		Active: active, Min: 0, Max: 4,
		Outstanding: outstanding, Arrivals: arrivals, Gateway: gateway,
		P99TTFT: p99, TickSeconds: 1, WarmupSeconds: 5,
	}
}

func TestSLOTargetControl(t *testing.T) {
	cfg := autoscale.SLOTargetConfig{
		TargetP99: 2 * time.Second,
		UpTicks:   2, DownTicks: 3, CooldownTicks: 2,
	}
	cases := []struct {
		name   string
		script []tick
	}{
		{
			// P99 above target for the streak scales up; the cooldown then
			// swallows the (lagging) high percentile.
			name: "over-target-scales-up",
			script: []tick{
				{slosig(1, 4*time.Second, 10, 5, 0), autoscale.Hold},
				{slosig(1, 4*time.Second, 10, 5, 0), autoscale.ScaleUp},
				{slosig(1, 4*time.Second, 10, 5, 0), autoscale.Hold}, // cooldown 1
				{slosig(1, 4*time.Second, 10, 5, 0), autoscale.Hold}, // cooldown 2
			},
		},
		{
			// A warm-up in flight blocks stacking even with P99 still high.
			name: "warming-blocks-stacking",
			script: []tick{
				{sigWarm(1, 1, 4*time.Second), autoscale.Hold},
				{sigWarm(1, 1, 4*time.Second), autoscale.Hold},
				{sigWarm(1, 1, 4*time.Second), autoscale.Hold},
			},
		},
		{
			// P99 inside the target band holds; only well below it (or
			// idle) shrinks, and never the last loaded replica.
			name: "in-band-holds-last-replica-stays",
			script: []tick{
				{slosig(1, 1900*time.Millisecond, 5, 2, 0), autoscale.Hold},
				{slosig(1, 1900*time.Millisecond, 5, 2, 0), autoscale.Hold},
				{slosig(1, 100*time.Millisecond, 5, 2, 0), autoscale.Hold}, // far below, but loaded
				{slosig(1, 100*time.Millisecond, 5, 2, 0), autoscale.Hold},
				{slosig(1, 100*time.Millisecond, 5, 2, 0), autoscale.Hold},
				{slosig(1, 100*time.Millisecond, 5, 2, 0), autoscale.Hold},
			},
		},
		{
			// A fully idle pool walks down to zero replicas.
			name: "idle-scales-to-zero",
			script: []tick{
				{slosig(1, 0, 0, 0, 0), autoscale.Hold},
				{slosig(1, 0, 0, 0, 0), autoscale.Hold},
				{slosig(1, 0, 0, 0, 0), autoscale.ScaleDown},
			},
		},
		{
			// Buffered gateway demand forces growth from zero even though
			// the empty TTFT window reads as zero pressure.
			name: "gateway-demand-scales-from-zero",
			script: []tick{
				{slosig(0, 0, 0, 3, 3), autoscale.Hold},
				{slosig(0, 0, 0, 2, 5), autoscale.ScaleUp},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runScript(t, autoscale.NewSLOTarget(cfg), tc.script)
		})
	}
}

// sigWarm is slosig with warming replicas.
func sigWarm(active, warming int, p99 time.Duration) autoscale.Signals {
	s := slosig(active, p99, 10, 5, 0)
	s.Warming = warming
	return s
}

// ratesig builds predictive signals from a per-tick arrival count.
func ratesig(active, arrivals int) autoscale.Signals {
	return autoscale.Signals{
		Active: active, Min: 0, Max: 4,
		Outstanding: 2 * arrivals, Arrivals: arrivals,
		TickSeconds: 1, WarmupSeconds: 4,
	}
}

// TestPredictivePreScalesOnTrend feeds a steadily ramping arrival rate and
// checks the policy grows the pool before the instantaneous rate alone
// would justify it — the forecast horizon covers the warm-up.
func TestPredictivePreScalesOnTrend(t *testing.T) {
	p := autoscale.NewPredictive(autoscale.PredictiveConfig{
		RatePerReplica: 2, UpTicks: 1, DownTicks: 8, CooldownTicks: 1,
	})
	scaledAt, rate := -1, 0.0
	for i := 0; i < 30; i++ {
		rate += 0.25 // ramp: +0.25 req/s per tick
		if d := p.Decide(ratesig(1, int(rate))); d == autoscale.ScaleUp {
			scaledAt = i
			break
		}
	}
	if scaledAt < 0 {
		t.Fatal("predictive never scaled up on a steady ramp")
	}
	// At 2 req/s one replica saturates (rate == RatePerReplica): a purely
	// reactive sizing needs rate > 2, i.e. tick 8+. The forecast must fire
	// earlier — it sees the trend crossing the threshold inside the
	// warm-up horizon.
	if instRate := float64(scaledAt+1) * 0.25; instRate > 2 {
		t.Errorf("scaled only at tick %d (rate %.2f): no earlier than reactive sizing",
			scaledAt, instRate)
	}
}

// TestPredictiveForecastError checks the Forecaster accounting: constant
// rate forecasts converge to (near) zero error, and scored sample counts
// grow once the horizon has passed.
func TestPredictiveForecastError(t *testing.T) {
	p := autoscale.NewPredictive(autoscale.PredictiveConfig{RatePerReplica: 10})
	for i := 0; i < 40; i++ {
		p.Decide(ratesig(1, 4))
	}
	mae, n := p.ForecastError()
	if n == 0 {
		t.Fatal("no forecasts scored after 40 ticks")
	}
	if mae > 1.0 {
		t.Errorf("constant 4 req/s rate: forecast MAE %.3f req/s too large", mae)
	}
	if math.IsNaN(mae) || mae < 0 {
		t.Errorf("degenerate MAE %v", mae)
	}
}

// TestPredictiveScaleToZero: a rate that decays to nothing walks the pool
// down, but never drains the last replica while work is outstanding.
func TestPredictiveScaleToZero(t *testing.T) {
	p := autoscale.NewPredictive(autoscale.PredictiveConfig{
		RatePerReplica: 2, DownTicks: 2, CooldownTicks: 1,
	})
	// Prime with load, then go idle.
	for i := 0; i < 5; i++ {
		p.Decide(ratesig(2, 4))
	}
	sawDown := false
	for i := 0; i < 20; i++ {
		s := ratesig(1, 0)
		s.Outstanding = 3 // still busy: must not orphan work
		if d := p.Decide(s); d == autoscale.ScaleDown {
			t.Fatalf("tick %d: drained the last replica with work outstanding", i)
		}
	}
	for i := 0; i < 20; i++ {
		if d := p.Decide(ratesig(1, 0)); d == autoscale.ScaleDown {
			sawDown = true
			break
		}
	}
	if !sawDown {
		t.Error("idle pool never scaled toward zero")
	}
}

// TestSLOTargetGatewayBlocksShrink: buffered arrivals pin the pool up even
// when the stale window reads far below target.
func TestSLOTargetGatewayBlocksShrink(t *testing.T) {
	p := autoscale.NewSLOTarget(autoscale.SLOTargetConfig{
		TargetP99: time.Second, DownTicks: 1, CooldownTicks: 1,
	})
	for i := 0; i < 10; i++ {
		s := slosig(2, 10*time.Millisecond, 0, 0, 4)
		if d := p.Decide(s); d == autoscale.ScaleDown {
			t.Fatalf("tick %d: scaled down with %d requests buffered in the gateway", i, s.Gateway)
		}
	}
}
