package autoscale

// Second-generation control policies: instead of reacting to the
// instantaneous queue, slo-target closes a feedback loop on the observed
// tail latency and predictive feeds a forward model of the arrival rate.
// Both keep the same hysteresis discipline (streaks + cooldown) as the
// reactive policies, and both understand scale-to-zero pools: a non-empty
// gateway is unconditional evidence of demand, and a fully idle pool may
// shrink to Min even when Min is zero.

import (
	"math"
	"time"
)

// SLOTargetConfig tunes the slo-target policy. Zero values select the
// defaults noted per field.
type SLOTargetConfig struct {
	// TargetP99 is the windowed P99 TTFT the controller drives toward
	// (default 2s).
	TargetP99 time.Duration

	// Kp and Ki are the proportional and integral gains over the relative
	// error (observed − target)/target (defaults 1.0 and 0.1). The
	// integral term accumulates per tick (scaled by the tick length) and
	// is clamped to ±IntegralClamp to stop windup across a long warm-up.
	Kp, Ki float64

	// IntegralClamp bounds the integral term (default 4).
	IntegralClamp float64

	// DownBand is how far below zero the control signal must sit before
	// the pool shrinks (default 0.5): observed P99 must be comfortably
	// inside the target, not merely touching it.
	DownBand float64

	// StackBand is the control-signal level above which growth no longer
	// waits for an in-flight warm-up (default 2 — observed P99 at 3× the
	// target): when the excursion is that deep, serial warm-ups would
	// converge too slowly and warm-ups may stack.
	StackBand float64

	// ShrinkPressure caps the post-shrink outstanding requests per
	// remaining replica (default 2). Latency is a cliff function of
	// capacity — a comfortable P99 says nothing about the P99 one replica
	// fewer would produce — so shrinking additionally requires the
	// surviving replicas to stay lightly loaded by queue count.
	ShrinkPressure float64

	// UpTicks / DownTicks are the consecutive control ticks a level must
	// hold before acting (defaults 2 and 8); CooldownTicks holds after any
	// action (default 4).
	UpTicks, DownTicks int
	CooldownTicks      int
}

func (c SLOTargetConfig) withDefaults() SLOTargetConfig {
	if c.TargetP99 == 0 {
		c.TargetP99 = 2 * time.Second
	}
	if c.Kp == 0 {
		c.Kp = 1.0
	}
	if c.Ki == 0 {
		c.Ki = 0.1
	}
	if c.IntegralClamp == 0 {
		c.IntegralClamp = 4
	}
	if c.DownBand == 0 {
		c.DownBand = 0.5
	}
	if c.StackBand == 0 {
		c.StackBand = 2
	}
	if c.ShrinkPressure == 0 {
		c.ShrinkPressure = 2
	}
	if c.UpTicks == 0 {
		c.UpTicks = 2
	}
	if c.DownTicks == 0 {
		c.DownTicks = 8
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = 4
	}
	return c
}

// SLOTarget is a PID-style controller on the observed windowed P99 TTFT:
// the error is the relative excursion from the target, the control signal
// is Kp·error + Ki·∫error, and the sign of the signal (through the
// hysteresis streaks) decides growth or shrinkage. Compared to
// queue-pressure it scales on the symptom the SLO actually names — tail
// latency — so it holds the target band on workloads where a fixed queue
// threshold would be mistuned.
type SLOTarget struct {
	cfg      SLOTargetConfig
	h        hysteresis
	integral float64
}

// NewSLOTarget returns an slo-target policy with the given tuning.
func NewSLOTarget(cfg SLOTargetConfig) *SLOTarget {
	cfg = cfg.withDefaults()
	return &SLOTarget{cfg: cfg, h: hysteresis{
		upTicks: cfg.UpTicks, downTicks: cfg.DownTicks, cooldownTicks: cfg.CooldownTicks,
	}}
}

// Name implements Policy.
func (p *SLOTarget) Name() string { return NameSLOTarget }

// Target reports the configured P99 TTFT goal.
func (p *SLOTarget) Target() time.Duration { return p.cfg.TargetP99 }

// ObservesTTFT implements TTFTObserver: the controller's feedback signal
// is the windowed P99.
func (p *SLOTarget) ObservesTTFT() bool { return true }

// Decide implements Policy.
func (p *SLOTarget) Decide(s Signals) Decision {
	target := p.cfg.TargetP99.Seconds()
	tick := s.TickSeconds
	if tick <= 0 {
		tick = 1
	}
	// An empty window is absence of evidence, not a zero-latency reading:
	// integrating its err = −1 through an idle stretch would wind the
	// integrator to the negative clamp and sit on the next burst's SLO
	// breach while it unwinds. With no samples the error is neutral and
	// the integral holds.
	err := 0.0
	if s.P99TTFT > 0 {
		err = (s.P99TTFT.Seconds() - target) / target
		p.integral += err * tick
		if p.integral > p.cfg.IntegralClamp {
			p.integral = p.cfg.IntegralClamp
		} else if p.integral < -p.cfg.IntegralClamp {
			p.integral = -p.cfg.IntegralClamp
		}
	}
	u := p.cfg.Kp*err + p.cfg.Ki*p.integral

	// A non-empty gateway means demand with zero capacity: latency is
	// accruing that no window sample shows yet. Growth requires live
	// demand — high window samples outlive a vanished burst by up to the
	// window length, and warming an idle pool on that ghost just burns a
	// warm-up. It normally also waits for any in-flight warm-up (the P99
	// signal lags the capacity it asked for; stacking warm-ups on a
	// sticky-high percentile over-scales) — unless the excursion is deep
	// enough (StackBand) that serial warm-ups would converge too slowly.
	demand := s.Outstanding > 0 || s.Arrivals > 0 || s.Gateway > 0
	wantUp := (u > 0 || s.Gateway > 0) && demand && s.Provisioned() < s.Max &&
		(s.Warming == 0 || u > p.cfg.StackBand)
	idle := s.Outstanding == 0 && s.Arrivals == 0 && s.Gateway == 0
	wantDown := s.Active > s.Min && s.Warming == 0 &&
		(u < -p.cfg.DownBand || idle) && s.Gateway == 0
	if wantDown && !idle {
		if rest := s.Provisioned() - 1; rest > 0 {
			// The queue guard: survivors must stay lightly loaded, or the
			// pool would fall off the latency cliff and flap back up.
			wantDown = float64(s.Outstanding)/float64(rest) <= p.cfg.ShrinkPressure
		} else {
			// The last replica only leaves when the pool is truly idle; a
			// below-target P99 with work in flight is success, not surplus.
			wantDown = false
		}
	}
	return p.h.decide(wantUp, wantDown)
}

// PredictiveConfig tunes the predictive policy. Zero values select the
// defaults noted per field.
type PredictiveConfig struct {
	// Alpha and Beta are the Holt double-exponential smoothing gains for
	// the arrival-rate level and trend (defaults 0.35 and 0.15).
	Alpha, Beta float64

	// RatePerReplica is the steady arrival rate (req/s) one replica
	// absorbs without queue growth — the capacity model the forecast is
	// divided by (default 0.6, roughly one RTX-4090 Llama3-8B replica on
	// the multi-turn session workloads; tune per deployment).
	RatePerReplica float64

	// Headroom scales the forecast before sizing the pool (default 1.0;
	// 1.2 provisions 20% above the forecast).
	Headroom float64

	// UpTicks / DownTicks are the consecutive ticks a pool-size verdict
	// must hold before acting (defaults 1 and 8 — the forecast is already
	// smoothed, so growth acts fast); CooldownTicks holds after any action
	// (default 2, short so a steep ramp can stack warm-ups).
	UpTicks, DownTicks int
	CooldownTicks      int
}

func (c PredictiveConfig) withDefaults() PredictiveConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.35
	}
	if c.Beta == 0 {
		c.Beta = 0.15
	}
	if c.RatePerReplica == 0 {
		c.RatePerReplica = 0.6
	}
	if c.Headroom == 0 {
		c.Headroom = 1.0
	}
	if c.UpTicks == 0 {
		c.UpTicks = 1
	}
	if c.DownTicks == 0 {
		c.DownTicks = 8
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = 2
	}
	return c
}

// pendingForecast is a rate prediction waiting for its due tick, scored
// against the rate actually observed then.
type pendingForecast struct {
	dueTick int
	rate    float64
}

// Predictive scales on a Holt (level + trend) forecast of the arrival
// rate, evaluated one warm-up latency ahead: if demand predicted for the
// moment a replica started now would finish warming exceeds what the
// provisioned pool absorbs, the warm-up starts now — hiding the warm-up
// stall a reactive policy pays after the queue has already built. The
// forecast error (MAE of rate predictions at their due ticks) is exposed
// through Forecaster.
type Predictive struct {
	cfg PredictiveConfig
	h   hysteresis

	init         bool
	level, trend float64

	tick    int
	pending []pendingForecast
	absErr  float64
	scored  int
}

// NewPredictive returns a predictive policy with the given tuning.
func NewPredictive(cfg PredictiveConfig) *Predictive {
	cfg = cfg.withDefaults()
	return &Predictive{cfg: cfg, h: hysteresis{
		upTicks: cfg.UpTicks, downTicks: cfg.DownTicks, cooldownTicks: cfg.CooldownTicks,
	}}
}

// Name implements Policy.
func (p *Predictive) Name() string { return NamePredictive }

// ForecastError implements Forecaster.
func (p *Predictive) ForecastError() (mae float64, samples int) {
	if p.scored == 0 {
		return 0, 0
	}
	return p.absErr / float64(p.scored), p.scored
}

// Decide implements Policy.
func (p *Predictive) Decide(s Signals) Decision {
	tick := s.TickSeconds
	if tick <= 0 {
		tick = 1
	}
	rate := float64(s.Arrivals) / tick

	// Score forecasts that have come due before folding in this tick.
	for len(p.pending) > 0 && p.pending[0].dueTick <= p.tick {
		p.absErr += math.Abs(p.pending[0].rate - rate)
		p.scored++
		p.pending = p.pending[1:]
	}

	if !p.init {
		p.init = true
		p.level = rate
	} else {
		prev := p.level
		p.level = p.cfg.Alpha*rate + (1-p.cfg.Alpha)*(p.level+p.trend)
		p.trend = p.cfg.Beta*(p.level-prev) + (1-p.cfg.Beta)*p.trend
	}

	// Forecast at the warm-up horizon: the rate expected when a replica
	// started this tick would begin taking traffic. The trend is a
	// per-tick slope (it advances once per Decide), so the horizon is
	// extrapolated in ticks, not seconds — the two only coincide at the
	// default 1s control period.
	horizon := s.WarmupSeconds + tick
	hTicks := int(math.Ceil(horizon / tick))
	if hTicks < 1 {
		hTicks = 1
	}
	forecast := p.level + p.trend*float64(hTicks)
	if forecast < 0 {
		forecast = 0
	}
	// Dead air is not a prediction: an idle pool (zero rate, zero
	// forecast) scoring |0 − 0| every tick would dilute the reported MAE
	// into flattery. Only live forecasts enter the score.
	if forecast > 0 || rate > 0 {
		p.pending = append(p.pending, pendingForecast{dueTick: p.tick + hTicks, rate: forecast})
	}
	p.tick++

	need := int(math.Ceil(forecast * p.cfg.Headroom / p.cfg.RatePerReplica))
	if s.Gateway > 0 && need < 1 {
		need = 1 // buffered demand is demand, whatever the smoothed rate says
	}
	if need > s.Max {
		need = s.Max
	}
	if need < s.Min {
		need = s.Min
	}
	wantUp := need > s.Provisioned()
	// Shrinking is gated on the trend: while demand is still rising a
	// momentary dip in the smoothed rate is noise, and giving capacity
	// back mid-ramp just buys another warm-up stall minutes later.
	wantDown := need < s.Provisioned() && p.trend <= 0 &&
		s.Warming == 0 && s.Active > s.Min && s.Gateway == 0
	if wantDown && s.Provisioned()-1 == 0 && s.Outstanding > 0 {
		wantDown = false // never orphan in-flight work into a cold start
	}
	return p.h.decide(wantUp, wantDown)
}
