// Package autoscale implements SLO-driven replica autoscaling for the
// multi-replica cluster simulation: a control loop (driven by the cluster
// on its virtual clock) samples per-tick cluster signals — queue pressure,
// KV utilization, warm-up progress — and a pluggable policy decides whether
// to grow or shrink the replica set between a configured minimum and
// maximum.
//
// Replicas move through a lifecycle the cluster enforces:
//
//	off ──scale-up──▶ warming ──warm-up latency──▶ active
//	active ──scale-down──▶ draining ──last request finishes──▶ off
//
// A warming replica occupies its GPU (model load + allocator init) but
// accepts no traffic; the cluster may overlap the warm-up with KV
// pre-warming, migrating the hottest pinned session prefixes to the new
// replica over the interconnect so its first requests hit the prefix cache
// instead of recomputing. A draining replica receives no new requests,
// finishes its in-flight work, and hands its pinned prefixes to the
// surviving replicas (or drops them) before releasing the GPU.
//
// Policies are deterministic and stateful: hysteresis (consecutive-tick
// streaks plus a post-action cooldown) keeps an oscillating load from
// flapping the replica set.
package autoscale

import (
	"fmt"
	"time"
)

// State is a replica's position in the autoscaler lifecycle.
type State int

const (
	// Off: the replica holds no GPU and receives no traffic.
	Off State = iota
	// Warming: the GPU is loading model weights and initializing the
	// allocator; no traffic yet, but GPU-seconds are already being paid.
	Warming
	// Active: the replica serves routed traffic.
	Active
	// Draining: no new traffic; in-flight requests finish and pinned
	// prefixes migrate out before the replica turns off.
	Draining
)

var stateNames = [...]string{"off", "warming", "active", "draining"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// InService reports whether the replica occupies its GPU (everything but
// Off) — the states that accrue GPU-seconds.
func (s State) InService() bool { return s != Off }

// Signals is the per-tick cluster view a policy decides from. All fields
// describe the instant of the control tick.
type Signals struct {
	// Active, Warming and Draining count replicas per lifecycle state;
	// Min and Max bound the active+warming set.
	Active, Warming, Draining int
	Min, Max                  int

	// Outstanding is the queued+running request count across active
	// replicas (draining replicas finish their own work and are excluded:
	// their load disappears on its own).
	Outstanding int

	// KVUtil is the used-page fraction pooled over active replicas
	// (0 when none are active).
	KVUtil float64

	// P99TTFT is the windowed observed P99 time-to-first-token across the
	// cluster at this tick (0 when no first token landed inside the
	// observation window) — the feedback signal of the slo-target policy.
	P99TTFT time.Duration

	// Arrivals counts the requests that arrived since the previous control
	// tick, gateway-buffered and shed arrivals included — the demand signal
	// the predictive policy forecasts from.
	Arrivals int

	// Gateway is the number of arrivals currently buffered in the
	// scale-to-zero gateway (0 unless the pool is at zero active replicas
	// with requests waiting on a cold start).
	Gateway int

	// TickSeconds is the control-loop period and WarmupSeconds the
	// scale-up latency — the lead time a predictive policy must forecast
	// past so capacity lands when the demand does.
	TickSeconds   float64
	WarmupSeconds float64
}

// SignalNames lists the telemetry-series names for the signal vector, in
// the order Vector emits them. The flight recorder charts one series per
// name under "autoscale/" every control tick, so a scale decision in the
// event log can be read against the exact signals that caused it.
var SignalNames = [...]string{
	"active", "warming", "draining", "outstanding",
	"kv_util", "p99_ttft_s", "arrivals", "gateway",
}

// Vector flattens the signals into the SignalNames order for telemetry
// recording. Durations convert to seconds.
func (s Signals) Vector() [len(SignalNames)]float64 {
	return [...]float64{
		float64(s.Active), float64(s.Warming), float64(s.Draining),
		float64(s.Outstanding), s.KVUtil, s.P99TTFT.Seconds(),
		float64(s.Arrivals), float64(s.Gateway),
	}
}

// Provisioned counts the replicas that are, or are about to be, serving
// capacity: active plus warming. Policies normalize pressure by it so a
// warm-up in flight already counts as an answer to the current load.
func (s Signals) Provisioned() int { return s.Active + s.Warming }

// Pressure is the outstanding requests per provisioned replica.
func (s Signals) Pressure() float64 {
	if p := s.Provisioned(); p > 0 {
		return float64(s.Outstanding) / float64(p)
	}
	return float64(s.Outstanding)
}

// Decision is a policy's verdict for one control tick.
type Decision int

const (
	// Hold keeps the replica set as is.
	Hold Decision = iota
	// ScaleUp asks the cluster to start warming one more replica.
	ScaleUp
	// ScaleDown asks the cluster to drain one active replica.
	ScaleDown
)

var decisionNames = [...]string{"hold", "scale-up", "scale-down"}

func (d Decision) String() string {
	if int(d) < len(decisionNames) {
		return decisionNames[d]
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// Policy decides scale actions from per-tick signals. Implementations keep
// hysteresis state; one Policy instance serves one cluster run.
type Policy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Decide returns the action for this control tick. The cluster
	// enforces Min/Max; policies should still respect them to keep their
	// hysteresis state honest.
	Decide(s Signals) Decision
}

// Policy names accepted by ByName.
const (
	NameQueuePressure = "queue-pressure"
	NameKVUtilization = "kv-utilization"
	NameSLOTarget     = "slo-target"
	NamePredictive    = "predictive"
)

// Names lists the built-in policy names.
func Names() []string {
	return []string{NameQueuePressure, NameKVUtilization, NameSLOTarget, NamePredictive}
}

// ByName constructs a fresh policy instance by name with default tuning.
func ByName(name string) (Policy, error) {
	switch name {
	case NameQueuePressure:
		return NewQueuePressure(QueuePressureConfig{}), nil
	case NameKVUtilization:
		return NewKVUtilization(KVUtilizationConfig{}), nil
	case NameSLOTarget:
		return NewSLOTarget(SLOTargetConfig{}), nil
	case NamePredictive:
		return NewPredictive(PredictiveConfig{}), nil
	default:
		return nil, fmt.Errorf("autoscale: unknown policy %q (have %v)", name, Names())
	}
}

// Forecaster is implemented by policies that forecast demand; the cluster
// surfaces the forecast error in its result so a study can tell whether a
// predictive policy was actually predicting or just reacting late.
type Forecaster interface {
	// ForecastError reports the mean absolute error between the policy's
	// arrival-rate forecasts and the rates actually observed (req/s), and
	// the number of forecasts scored.
	ForecastError() (mae float64, samples int)
}

// TTFTObserver marks policies that consume Signals.P99TTFT. The cluster
// only maintains the windowed estimator (observer hooks plus a per-tick
// sort) when the policy actually reads it.
type TTFTObserver interface {
	ObservesTTFT() bool
}

// ObservesTTFT reports whether the policy consumes the windowed P99 TTFT.
func ObservesTTFT(p Policy) bool {
	o, ok := p.(TTFTObserver)
	return ok && o.ObservesTTFT()
}

// hysteresis is the shared flap damper: an action fires only after its
// trigger condition held for a streak of consecutive ticks, and after any
// action the policy holds for a cooldown regardless of signals.
type hysteresis struct {
	upTicks, downTicks, cooldownTicks int

	upStreak, downStreak, cooldown int
}

// decide folds this tick's trigger readings into the streaks and returns
// the action, if any, that just crossed its streak threshold.
func (h *hysteresis) decide(wantUp, wantDown bool) Decision {
	if h.cooldown > 0 {
		h.cooldown--
		return Hold
	}
	if wantUp {
		h.upStreak++
		h.downStreak = 0
		if h.upStreak >= h.upTicks {
			h.fired()
			return ScaleUp
		}
		return Hold
	}
	if wantDown {
		h.downStreak++
		h.upStreak = 0
		if h.downStreak >= h.downTicks {
			h.fired()
			return ScaleDown
		}
		return Hold
	}
	h.upStreak, h.downStreak = 0, 0
	return Hold
}

// fired resets the streaks and arms the post-action cooldown.
func (h *hysteresis) fired() {
	h.upStreak, h.downStreak = 0, 0
	h.cooldown = h.cooldownTicks
}

// QueuePressureConfig tunes the queue/TTFT-pressure policy. Zero values
// select the defaults noted per field.
type QueuePressureConfig struct {
	// UpPressure is the outstanding-per-provisioned-replica level above
	// which the pool is under-provisioned (default 8 — roughly one decode
	// batch of headroom before TTFT starts stretching).
	UpPressure float64
	// DownPressure is the level below which the pool is over-provisioned
	// (default 1). Must stay below UpPressure for the hysteresis band.
	DownPressure float64
	// UpTicks / DownTicks are the consecutive control ticks a level must
	// hold before acting (defaults 2 and 8: scale up briskly, scale down
	// reluctantly).
	UpTicks, DownTicks int
	// CooldownTicks holds after any action (default 4).
	CooldownTicks int
}

func (c QueuePressureConfig) withDefaults() QueuePressureConfig {
	if c.UpPressure == 0 {
		c.UpPressure = 8
	}
	if c.DownPressure == 0 {
		c.DownPressure = 1
	}
	if c.UpTicks == 0 {
		c.UpTicks = 2
	}
	if c.DownTicks == 0 {
		c.DownTicks = 8
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = 4
	}
	return c
}

// QueuePressure scales on queue depth per provisioned replica — the
// TTFT-pressure proxy: outstanding requests beyond what the provisioned
// replicas can batch stretch time-to-first-token linearly. Hysteresis
// (streaks + cooldown) keeps oscillating load from flapping the pool.
type QueuePressure struct {
	cfg QueuePressureConfig
	h   hysteresis
}

// NewQueuePressure returns a queue-pressure policy with the given tuning.
func NewQueuePressure(cfg QueuePressureConfig) *QueuePressure {
	cfg = cfg.withDefaults()
	return &QueuePressure{cfg: cfg, h: hysteresis{
		upTicks: cfg.UpTicks, downTicks: cfg.DownTicks, cooldownTicks: cfg.CooldownTicks,
	}}
}

// Name implements Policy.
func (p *QueuePressure) Name() string { return NameQueuePressure }

// Decide implements Policy.
func (p *QueuePressure) Decide(s Signals) Decision {
	wantUp := s.Pressure() >= p.cfg.UpPressure && s.Provisioned() < s.Max
	// Shrinking is judged against the post-shrink pool: the remaining
	// replicas must still sit below the scale-up band, or the pool would
	// flap straight back up. Shrinking to zero replicas (Min = 0) is only
	// sane when nothing is outstanding — the gateway would buffer new
	// arrivals, but in-band work must not be orphaned into a cold start.
	wantDown := false
	if s.Active > s.Min && s.Warming == 0 {
		if rest := s.Provisioned() - 1; rest > 0 {
			after := float64(s.Outstanding) / float64(rest)
			wantDown = s.Pressure() <= p.cfg.DownPressure && after < p.cfg.UpPressure
		} else {
			wantDown = s.Outstanding == 0
		}
	}
	return p.h.decide(wantUp, wantDown)
}

// KVUtilizationConfig tunes the KV-utilization policy. Zero values select
// the defaults noted per field.
type KVUtilizationConfig struct {
	// HighUtil is the pooled used-page fraction above which the pool is
	// memory-pressured (default 0.85 — past it, admissions start stalling
	// and pinned prefixes get evicted).
	HighUtil float64
	// LowUtil is the fraction below which the pool is over-provisioned
	// (default 0.30).
	LowUtil float64
	// UpTicks / DownTicks are the consecutive control ticks a level must
	// hold before acting (defaults 2 and 8).
	UpTicks, DownTicks int
	// CooldownTicks holds after any action (default 4).
	CooldownTicks int
}

func (c KVUtilizationConfig) withDefaults() KVUtilizationConfig {
	if c.HighUtil == 0 {
		c.HighUtil = 0.85
	}
	if c.LowUtil == 0 {
		c.LowUtil = 0.30
	}
	if c.UpTicks == 0 {
		c.UpTicks = 2
	}
	if c.DownTicks == 0 {
		c.DownTicks = 8
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = 4
	}
	return c
}

// KVUtilization scales on pooled KV-page utilization: a pool running hot on
// KV memory evicts pinned prefixes and stalls admissions long before queues
// look deep, so memory is the earlier congestion signal for long-context
// session workloads. Scale-down additionally requires the queue to be
// near-empty — low memory use with a deep queue means short contexts, not
// idle capacity.
type KVUtilization struct {
	cfg KVUtilizationConfig
	h   hysteresis
}

// NewKVUtilization returns a KV-utilization policy with the given tuning.
func NewKVUtilization(cfg KVUtilizationConfig) *KVUtilization {
	cfg = cfg.withDefaults()
	return &KVUtilization{cfg: cfg, h: hysteresis{
		upTicks: cfg.UpTicks, downTicks: cfg.DownTicks, cooldownTicks: cfg.CooldownTicks,
	}}
}

// Name implements Policy.
func (p *KVUtilization) Name() string { return NameKVUtilization }

// Decide implements Policy.
func (p *KVUtilization) Decide(s Signals) Decision {
	wantUp := s.KVUtil >= p.cfg.HighUtil && s.Provisioned() < s.Max && s.Warming == 0
	wantDown := s.Active > s.Min && s.Warming == 0 &&
		s.KVUtil <= p.cfg.LowUtil && float64(s.Outstanding) <= float64(s.Active)
	if s.Min == 0 && s.Warming == 0 && s.Active > 0 &&
		s.Outstanding == 0 && s.Arrivals == 0 && s.Gateway == 0 {
		// Scale-to-zero: a pool with no work anywhere is idle no matter
		// what its pinned prefixes hold the utilization at — without this
		// override warm pins (often > LowUtil) would keep an empty pool
		// alive forever.
		wantDown = true
	}
	if wantDown && s.Provisioned() == 1 && s.Outstanding > 0 {
		// The last replica never drains with work in flight — in-band
		// requests must not be orphaned into a cold start (Min = 0 only;
		// with Min >= 1 Active > Min already implies a survivor).
		wantDown = false
	}
	return p.h.decide(wantUp, wantDown)
}
