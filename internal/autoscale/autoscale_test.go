package autoscale_test

import (
	"testing"

	"repro/internal/autoscale"
)

// tick is one scripted control tick: the signals fed in and the decision
// expected out.
type tick struct {
	s    autoscale.Signals
	want autoscale.Decision
}

// sig builds queue-pressure signals for active replicas with outstanding
// load in a 1..4 pool.
func sig(active, warming, outstanding int) autoscale.Signals {
	return autoscale.Signals{
		Active: active, Warming: warming, Min: 1, Max: 4,
		Outstanding: outstanding,
	}
}

// kvsig builds KV-utilization signals.
func kvsig(active int, util float64, outstanding int) autoscale.Signals {
	return autoscale.Signals{
		Active: active, Min: 1, Max: 4,
		Outstanding: outstanding, KVUtil: util,
	}
}

func runScript(t *testing.T, p autoscale.Policy, script []tick) {
	t.Helper()
	for i, tk := range script {
		if got := p.Decide(tk.s); got != tk.want {
			t.Fatalf("tick %d: Decide(%+v) = %v, want %v", i, tk.s, got, tk.want)
		}
	}
}

func TestQueuePressureHysteresis(t *testing.T) {
	cfg := autoscale.QueuePressureConfig{
		UpPressure: 8, DownPressure: 1,
		UpTicks: 2, DownTicks: 3, CooldownTicks: 2,
	}
	cases := []struct {
		name   string
		script []tick
	}{
		{
			// Sustained pressure scales up only after the streak, then the
			// cooldown swallows continued pressure.
			name: "sustained-pressure-one-scale-up",
			script: []tick{
				{sig(1, 0, 20), autoscale.Hold},    // streak 1/2
				{sig(1, 0, 20), autoscale.ScaleUp}, // streak 2/2 fires
				{sig(1, 1, 20), autoscale.Hold},    // cooldown 1
				{sig(1, 1, 20), autoscale.Hold},    // cooldown 2
				{sig(1, 1, 20), autoscale.Hold},    // warming counts as provisioned: 20/2 >= 8, streak 1/2
				{sig(1, 1, 20), autoscale.ScaleUp}, // still pressured with the warm-up counted: fire again
			},
		},
		{
			// Load oscillating across the up threshold every tick never
			// completes a streak: no flapping.
			name: "oscillating-load-never-fires",
			script: []tick{
				{sig(2, 0, 20), autoscale.Hold}, // pressure 10: streak 1/2
				{sig(2, 0, 4), autoscale.Hold},  // pressure 2: streaks reset
				{sig(2, 0, 20), autoscale.Hold},
				{sig(2, 0, 4), autoscale.Hold},
				{sig(2, 0, 20), autoscale.Hold},
				{sig(2, 0, 4), autoscale.Hold},
			},
		},
		{
			// Idle pool shrinks only after the (longer) down streak.
			name: "idle-scales-down-after-streak",
			script: []tick{
				{sig(3, 0, 0), autoscale.Hold},
				{sig(3, 0, 0), autoscale.Hold},
				{sig(3, 0, 0), autoscale.ScaleDown},
				{sig(2, 0, 0), autoscale.Hold}, // cooldown 1
				{sig(2, 0, 0), autoscale.Hold}, // cooldown 2
				{sig(2, 0, 0), autoscale.Hold}, // streak 1/3
				{sig(2, 0, 0), autoscale.Hold},
				{sig(2, 0, 0), autoscale.ScaleDown},
			},
		},
		{
			// At Min the pool never shrinks; at Max (counting warming) it
			// never grows.
			name: "min-max-bounds-hold",
			script: []tick{
				{sig(1, 0, 0), autoscale.Hold},
				{sig(1, 0, 0), autoscale.Hold},
				{sig(1, 0, 0), autoscale.Hold},
				{sig(1, 0, 0), autoscale.Hold},
				{sig(3, 1, 100), autoscale.Hold}, // provisioned == max
				{sig(3, 1, 100), autoscale.Hold},
				{sig(3, 1, 100), autoscale.Hold},
			},
		},
		{
			// A shrink that would push the survivors back over the up
			// threshold is refused: no up/down flapping at moderate load.
			name: "no-shrink-into-pressure",
			script: []tick{
				{sig(4, 0, 4), autoscale.Hold}, // pressure 1 <= down, but 4/3 load after... fine
				{sig(4, 0, 4), autoscale.Hold},
				{sig(4, 0, 4), autoscale.ScaleDown}, // after: 4/3 < 8: allowed
				{sig(3, 0, 30), autoscale.Hold},     // cooldown 1
				{sig(3, 0, 30), autoscale.Hold},     // cooldown 2
				{sig(3, 0, 3), autoscale.Hold},      // pressure 1, but after-shrink 3/2=1.5 < 8: streak 1/3
				{sig(3, 0, 24), autoscale.Hold},     // pressure 8: up streak 1/2, down reset
				{sig(3, 0, 3), autoscale.Hold},      // down streak 1/3 again
				{sig(3, 0, 24), autoscale.Hold},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runScript(t, autoscale.NewQueuePressure(cfg), tc.script)
		})
	}
}

func TestKVUtilizationHysteresis(t *testing.T) {
	cfg := autoscale.KVUtilizationConfig{
		HighUtil: 0.8, LowUtil: 0.3,
		UpTicks: 2, DownTicks: 3, CooldownTicks: 1,
	}
	cases := []struct {
		name   string
		script []tick
	}{
		{
			name: "hot-memory-scales-up",
			script: []tick{
				{kvsig(2, 0.9, 10), autoscale.Hold},
				{kvsig(2, 0.9, 10), autoscale.ScaleUp},
				{kvsig(2, 0.9, 10), autoscale.Hold}, // cooldown
			},
		},
		{
			// Utilization bouncing across the high-water mark never fires.
			name: "oscillating-utilization-never-fires",
			script: []tick{
				{kvsig(2, 0.9, 10), autoscale.Hold},
				{kvsig(2, 0.5, 10), autoscale.Hold},
				{kvsig(2, 0.9, 10), autoscale.Hold},
				{kvsig(2, 0.5, 10), autoscale.Hold},
			},
		},
		{
			// Low memory with a deep queue is short contexts, not idle
			// capacity: no scale-down.
			name: "low-util-deep-queue-holds",
			script: []tick{
				{kvsig(2, 0.1, 50), autoscale.Hold},
				{kvsig(2, 0.1, 50), autoscale.Hold},
				{kvsig(2, 0.1, 50), autoscale.Hold},
				{kvsig(2, 0.1, 50), autoscale.Hold},
			},
		},
		{
			name: "cold-idle-pool-scales-down",
			script: []tick{
				{kvsig(2, 0.1, 1), autoscale.Hold},
				{kvsig(2, 0.1, 1), autoscale.Hold},
				{kvsig(2, 0.1, 1), autoscale.ScaleDown},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runScript(t, autoscale.NewKVUtilization(cfg), tc.script)
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range autoscale.Names() {
		p, err := autoscale.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := autoscale.ByName("nope"); err == nil {
		t.Error("unknown policy should fail")
	}
}
