package cluster

// White-box transfer-contention tests: pre-warm and drain hand-off are
// background traffic, but they ride the same fabric links as everything
// else — on a shared NIC they serialize, and a pin that serializes behind
// another transfer can land after the warm-up window it was meant to beat.

import (
	"testing"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/simclock"
)

func buildSmall(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
	return engine.New(engine.Config{
		GPU:         gpu.RTX4090,
		Model:       model.Llama3_8B,
		MemFraction: 0.9,
		Scheduler:   core.MustNew(core.DefaultConfig()),
		KV:          engine.TokenFlowKVPolicy(),
		Clock:       clock,
		Fabric:      ep,
	})
}

// contentionCluster builds a 3-replica cluster on the given topology with
// two 1024-token pins installed on replica 0, then books a pre-warm
// (0 → 1) and a drain hand-off (0 → 2) at t=0.
func contentionCluster(t *testing.T, spec *fabric.Spec) *Cluster {
	t.Helper()
	c, err := New(Config{
		Replicas: 3,
		Policy:   router.NewRoundRobin(),
		Migrate:  true,
		Topology: spec,
		Autoscale: &AutoscaleConfig{
			Policy: autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
			Min:    1, Max: 3, Initial: 3,
		},
	}, buildSmall)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 2; s++ {
		if !c.replicas[0].eng.InstallMigratedPrefix(s, 1024, 0) {
			t.Fatalf("installing pin %d failed", s)
		}
	}
	if !c.migratePin(c.replicas[0], c.replicas[1], 1, fabric.ClassPrewarm, 0,
		&c.prewarms, &c.prewarmedTokens, nil, nil) {
		t.Fatal("prewarm migration did not start")
	}
	if !c.migratePin(c.replicas[0], c.replicas[2], 2, fabric.ClassDrain, 0,
		&c.drainMigrations, nil, nil, nil) {
		t.Fatal("drain migration did not start")
	}
	return c
}

// TestPrewarmDrainShareUplinkExtendWarmup: a pre-warm (replica 0 → 1) and
// a drain hand-off (replica 0 → 2) booked at the same instant serialize on
// replica 0's egress NIC, pushing the second pin's arrival past a warm-up
// window a dedicated pair link comfortably beats — the warm-up-stall
// window is extended by exactly the contention. Under the full mesh the
// two transfers run in parallel and both land within the window.
func TestPrewarmDrainShareUplinkExtendWarmup(t *testing.T) {
	const gbps = 0.5
	shared := contentionCluster(t, &fabric.Spec{Kind: fabric.SharedNIC, LinkGBps: gbps})
	mesh := contentionCluster(t, &fabric.Spec{Kind: fabric.FullMesh, LinkGBps: gbps})

	// Recover the wire time from the mesh booking itself: each dedicated
	// pair link holds exactly one transfer.
	oneWire := mesh.fab.Topology().Path(0, 1)[0].BusyUntil()
	if oneWire <= 0 {
		t.Fatal("mesh pair link idle")
	}
	warmup := oneWire + oneWire/2 // one wire < warmup < two wires

	// Shared NIC: both transfers cross egress-0 and serialize.
	egress := shared.fab.Topology().Path(0, 2)[0]
	if got := egress.BusyUntil(); got != 2*oneWire {
		t.Errorf("shared egress drains at %v, want serialized 2×wire %v", got, 2*oneWire)
	}
	if got := egress.BusyUntil(); got <= warmup {
		t.Errorf("serialized hand-off %v should overrun the %v warm-up window", got, warmup)
	}

	// Full mesh: disjoint pair links, both inside the window.
	for _, to := range []int{1, 2} {
		if done := mesh.fab.Topology().Path(0, to)[0].BusyUntil(); done != oneWire || done >= warmup {
			t.Errorf("mesh pair 0→%d drains at %v, want one wire %v inside window %v",
				to, done, oneWire, warmup)
		}
	}

	// End to end: the serialized pins still both arrive, and the ledger
	// carries one transfer per class.
	for shared.clock.Step() {
	}
	if shared.replicas[1].eng.CachedPrefixTokens(1) != 1024 ||
		shared.replicas[2].eng.CachedPrefixTokens(2) != 1024 {
		t.Error("pins did not land on their targets")
	}
	stats := map[fabric.Class]fabric.ClassStats{}
	for _, cs := range shared.fab.ClassStats() {
		stats[cs.Class] = cs
	}
	if stats[fabric.ClassPrewarm].Transfers != 1 || stats[fabric.ClassDrain].Transfers != 1 {
		t.Errorf("class ledger %+v", stats)
	}
}
