package cluster

// Replica lifecycle: the autoscaler control loop. Runs on the cluster's
// virtual clock (Config.Autoscale.ControlEvery); each tick sweeps draining
// replicas, gathers cluster signals, and executes the policy's decision.
//
//	off ──scaleUp──▶ warming ──Warmup elapses──▶ active
//	active ──scaleDown──▶ draining ──outstanding = 0, pins handed off──▶ off
//
// Scale-up optionally overlaps the warm-up latency with KV pre-warming:
// the hottest pinned session prefixes across the active replicas migrate
// to the warming replica over the interconnect mesh, so the sessions most
// likely to return find their KV waiting when the replica starts taking
// traffic. Scale-down routes no new work to the replica (enforced by
// Cluster.routable), lets in-flight requests finish, and hands pinned
// prefixes to the surviving replicas — or drops them when no peer can
// take them.

import (
	"sort"
	"sync"

	"repro/internal/autoscale"
	"repro/internal/fabric"
	"repro/internal/kvcache"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/simclock"
)

// event appends one lifecycle transition to the scale-event log.
func (c *Cluster) event(at simclock.Time, kind ScaleKind, replica int) {
	c.scaleEvents = append(c.scaleEvents, ScaleEvent{At: at, Kind: kind, Replica: replica})
}

// controlTick is one pass of the autoscaler control loop.
func (c *Cluster) controlTick(now simclock.Time) {
	t0 := c.prof.Begin()
	defer c.prof.End(obs.PhaseControlTick, t0)
	c.sweepDrained(now)
	s := c.signals()
	s.Arrivals = c.arrivalsThisTick
	c.arrivalsThisTick = 0
	s.Gateway = len(c.gateway)
	s.TickSeconds = c.cfg.Autoscale.ControlEvery.Seconds()
	s.WarmupSeconds = c.cfg.Autoscale.Warmup.Seconds()
	if c.ttftWin != nil {
		s.P99TTFT = c.ttftWin.Quantile(now, 0.99)
	}
	c.recordControlSeries(now, s)
	d := c.cfg.Autoscale.Policy.Decide(s)
	if d != autoscale.Hold {
		// The decision event carries the headline signals that caused it
		// (the full vector is in the control series at the same instant).
		c.rec.Emit(now, obs.KindScaleDecision, -1, -1, 0,
			int64(s.Outstanding), int64(s.Gateway), int64(s.P99TTFT),
			s.KVUtil, d.String())
	}
	switch d {
	case autoscale.ScaleUp:
		c.scaleUp(now)
	case autoscale.ScaleDown:
		c.scaleDown(now, s.Active)
	}
	point := ReplicaCountPoint{At: now}
	for _, rep := range c.replicas {
		switch rep.state {
		case autoscale.Active:
			point.Active++
		case autoscale.Warming:
			point.Warming++
		case autoscale.Draining:
			point.Draining++
		}
	}
	c.replicaSeries = append(c.replicaSeries, point)
	if c.gatewayEnabled() {
		c.gatewaySeries = append(c.gatewaySeries, GatewayPoint{At: now, Depth: len(c.gateway)})
	}
}

// signalFold is one shard's partial sum of the per-replica signal sweep:
// exact integer counts, so partial sums merge to the single-threaded
// vector bit for bit.
type signalFold struct {
	active, warming, draining int
	outstanding, used, total  int
}

func (f *signalFold) add(g signalFold) {
	f.active += g.active
	f.warming += g.warming
	f.draining += g.draining
	f.outstanding += g.outstanding
	f.used += g.used
	f.total += g.total
}

// foldSignals sums the signal contributions of the replicas owned by one
// shard (every replica when shard < 0).
func (c *Cluster) foldSignals(shard int) signalFold {
	var f signalFold
	for _, rep := range c.replicas {
		if shard >= 0 && rep.id%len(c.shards) != shard {
			continue
		}
		switch rep.state {
		case autoscale.Active:
			f.active++
			f.outstanding += rep.eng.OutstandingRequests()
			f.total += rep.eng.TotalKVPages()
			f.used += rep.eng.TotalKVPages() - rep.eng.FreeKVPages()
		case autoscale.Warming:
			f.warming++
		case autoscale.Draining:
			f.draining++
		}
	}
	return f
}

// signals assembles the per-tick cluster view the policy decides from. In
// sharded runs the per-replica sweep fans out: each worker folds its own
// shard's replicas (the control tick is a coordinator event, so every
// engine is quiescent and each goroutine reads only its shard's state) and
// the exact integer partials merge in shard order — deep-equal to the
// single-threaded sweep at any shard count.
func (c *Cluster) signals() autoscale.Signals {
	var f signalFold
	if len(c.shards) > 1 {
		folds := make([]signalFold, len(c.shards))
		var wg sync.WaitGroup
		wg.Add(len(c.shards))
		for s := range c.shards {
			s := s
			go func() {
				defer wg.Done()
				folds[s] = c.foldSignals(s)
			}()
		}
		wg.Wait()
		for _, g := range folds {
			f.add(g)
		}
	} else {
		f = c.foldSignals(-1)
	}
	s := autoscale.Signals{
		Min: c.cfg.Autoscale.Min, Max: c.cfg.Autoscale.Max,
		Active: f.active, Warming: f.warming, Draining: f.draining,
		Outstanding: f.outstanding,
	}
	if f.total > 0 {
		s.KVUtil = float64(f.used) / float64(f.total)
	}
	return s
}

// scaleUp brings one more replica toward the active set. A draining
// replica is reactivated first — it is still warm, its KV is still
// resident, and cancelling the drain delivers capacity instantly — and
// only when none is draining does the lowest-ID off replica start paying
// the warm-up (and pre-warming, when enabled).
func (c *Cluster) scaleUp(now simclock.Time) {
	for _, rep := range c.replicas {
		if rep.state == autoscale.Draining {
			rep.state = autoscale.Active
			c.noteActive(rep.id, true)
			c.event(now, ScaleReactivate, rep.id)
			c.drainGateway(rep, now)
			return
		}
	}
	var target *replica
	for _, rep := range c.replicas {
		if rep.state == autoscale.Off {
			target = rep
			break
		}
	}
	if target == nil {
		return // every replica is already active or warming
	}
	target.state = autoscale.Warming
	target.sinceOn = now
	c.event(now, ScaleWarmup, target.id)
	if c.chaos != nil && target.eng.Crashed() {
		// Backfill: the warm-up path resurrects a crash-dead engine — the
		// replacement replica boots on the same slot.
		target.eng.ClearCrashed()
		c.chaos.backfills++
	}
	if c.cfg.Autoscale.Prewarm {
		c.prewarm(target, now)
	}
	c.clock.After(c.cfg.Autoscale.Warmup, func(t simclock.Time) {
		if target.state == autoscale.Warming {
			target.state = autoscale.Active
			c.noteActive(target.id, true)
			c.event(t, ScaleActivate, target.id)
			c.drainGateway(target, t)
		}
	})
}

// prewarm overlaps a replica's warm-up with KV pre-warming: the hottest
// pinned session prefixes across the active replicas (merged most-recently-
// used first, larger prefixes and lower donor IDs breaking ties) migrate to
// the warming replica over the interconnect. The donors lose the pins —
// affinity routing will follow the sessions to the new replica, which is
// exactly the rebalancing a scale-up wants.
func (c *Cluster) prewarm(target *replica, now simclock.Time) {
	type candidate struct {
		donor *replica
		info  kvcache.PrefixInfo
		rank  int
	}
	topK := c.cfg.Autoscale.PrewarmTopK
	var cands []candidate
	for _, rep := range c.replicas {
		if rep.state != autoscale.Active {
			continue
		}
		for rank, info := range rep.eng.HottestPrefixes(topK) {
			cands = append(cands, candidate{donor: rep, info: info, rank: rank})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].rank != cands[j].rank {
			return cands[i].rank < cands[j].rank
		}
		if cands[i].info.Tokens != cands[j].info.Tokens {
			return cands[i].info.Tokens > cands[j].info.Tokens
		}
		return cands[i].donor.id < cands[j].donor.id
	})
	shipped := 0
	for _, cd := range cands {
		if shipped == topK {
			break
		}
		if c.migratePin(cd.donor, target, cd.info.Session, fabric.ClassPrewarm, now,
			&c.prewarms, &c.prewarmedTokens, nil, nil) {
			shipped++
		}
	}
}

// scaleDown drains the active replica that will empty soonest: fewest
// outstanding requests, ties broken by highest ID (last scaled up, first
// drained — the reverse of scale-up order).
func (c *Cluster) scaleDown(now simclock.Time, active int) {
	if active <= c.cfg.Autoscale.Min {
		return
	}
	var target *replica
	for _, rep := range c.replicas {
		if rep.state != autoscale.Active {
			continue
		}
		if target == nil || rep.eng.OutstandingRequests() <= target.eng.OutstandingRequests() {
			target = rep
		}
	}
	if target == nil {
		return
	}
	target.state = autoscale.Draining
	c.noteActive(target.id, false)
	c.event(now, ScaleDrain, target.id)
	c.drainPins(target, now)
}

// drainPins hands a draining replica's pinned prefixes to the surviving
// active replicas — each pin migrates to the peer with the most free KV
// headroom (lowest ID on ties) — or drops them when no active peer
// exists. Headroom counts the pages already planned onto a peer in this
// pass: installs only charge the pool when the transfer lands, so
// FreeKVPages alone would send every pin to the same peer and overflow
// it. Idempotent: pins already on the wire are skipped, so it runs again
// at sweep time for pins created by requests that finished during the
// drain.
func (c *Cluster) drainPins(rep *replica, now simclock.Time) {
	planned := make(map[*replica]int)
	for _, info := range rep.eng.HottestPrefixes(0) {
		var dst *replica
		head := 0
		for _, peer := range c.replicas {
			if peer.state != autoscale.Active {
				continue
			}
			if h := peer.eng.FreeKVPages() - planned[peer]; dst == nil || h > head {
				dst, head = peer, h
			}
		}
		if dst == nil {
			if rep.eng.DropPrefix(info.Session, now) {
				c.drainDroppedPins++
			}
			continue
		}
		if c.migratePin(rep, dst, info.Session, fabric.ClassDrain, now,
			&c.drainMigrations, nil, nil, nil) {
			planned[dst] += info.Pages
		}
	}
}

// migratePin ships one pinned prefix from donor to target over the
// fabric, booked under the given transfer class and accounted against the
// given counters; every cross-replica transfer (routing migration,
// pre-warm, drain hand-off) funnels through it so the in/out-migration
// gating stays in one place — and so all three classes contend for the
// same topology links. onDone, if set, runs after the install attempt at
// transfer completion (the routing path injects its deferred request
// there); req is that path's deferred request, registered with the chaos
// flight so a crash or link flap that tears the transfer down can still
// deliver or retry it. It reports whether a migration started.
func (c *Cluster) migratePin(donor, target *replica, session int, class fabric.Class,
	now simclock.Time, count, tokenCount *int64, req *request.Request,
	onDone func(now simclock.Time)) bool {
	if c.chaos != nil && !c.linkUp(donor.id, target.id, now) {
		return false // the pair is flapped dark; the turn recomputes
	}
	tokens, bytes, ok := donor.eng.BeginPrefixMigration(session)
	if !ok {
		return false
	}
	kind := obs.KindMigrateAccept
	switch class {
	case fabric.ClassPrewarm:
		kind = obs.KindPrewarm
	case fabric.ClassDrain:
		kind = obs.KindDrain
	}
	c.recFor(donor.id).Emit(now, kind, donor.id, -1, session,
		int64(target.id), int64(tokens), bytes, 0, "")
	*count++
	if tokenCount != nil {
		*tokenCount += int64(tokens)
	}
	c.migrationsInFlight++
	donor.outMigrations++
	target.inMigrations++
	var fl *flight
	_, done := c.fab.BookBetween(class, donor.id, target.id, now, bytes)
	handle := c.clock.At(done, func(t simclock.Time) {
		if fl != nil {
			c.removeFlight(fl)
		}
		donor.eng.CompletePrefixMigration(session, t)
		donor.outMigrations--
		target.inMigrations--
		if !target.eng.InstallMigratedPrefix(session, tokens, t) {
			c.migrationDrops++
		}
		c.migrationsInFlight--
		if onDone != nil {
			onDone(t)
		}
	})
	if c.chaos != nil {
		fl = &flight{donor: donor, target: target, session: session, handle: handle, req: req}
		c.registerFlight(fl)
	}
	return true
}

// sweepDrained retires draining replicas whose work has run dry: no
// outstanding requests, nothing inbound on the wire (a routed request
// whose KV is still in flight is in no engine queue yet), and no pins
// left to hand off. Late pins — created by requests that finished after
// the drain began — get one more migration pass first.
func (c *Cluster) sweepDrained(now simclock.Time) {
	for _, rep := range c.replicas {
		if rep.state != autoscale.Draining {
			continue
		}
		if rep.eng.OutstandingRequests() > 0 || rep.inMigrations > 0 {
			continue
		}
		if pins := rep.eng.HottestPrefixes(0); len(pins) > 0 {
			c.drainPins(rep, now)
		}
		if rep.outMigrations > 0 || len(rep.eng.HottestPrefixes(0)) > 0 {
			continue // transfers still on the wire; retry next tick
		}
		rep.state = autoscale.Off
		rep.busy += now.Sub(rep.sinceOn)
		rep.sinceOn = 0
		c.event(now, ScaleOff, rep.id)
	}
}
