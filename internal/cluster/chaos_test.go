package cluster_test

// Black-box chaos suite: end-to-end recovery scenarios checked against
// the full invariant set, the chaos determinism grid (single-threaded ×
// sharded, run under -race in CI), the zero-fault byte-identity gate,
// and the recovery benchmark.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// buildTokenFlowHost is buildTokenFlow with the host-tier prefix cache
// enabled, which the redundancy mirrors live in.
func buildTokenFlowHost() cluster.BuildEngine {
	return func(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		kv := engine.TokenFlowKVPolicy()
		kv.HostCache = true
		return engine.New(engine.Config{
			GPU:         gpu.RTX4090,
			Model:       model.Llama3_8B,
			MemFraction: 0.9,
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          kv,
			Clock:       clock,
			Fabric:      ep,
		})
	}
}

func crashFault(replica int, atSec float64) chaos.Fault {
	return chaos.Fault{Kind: chaos.Crash, At: simclock.FromSeconds(atSec), Replica: replica}
}

// TestChaosRecoveryScenarios runs end-to-end fault scenarios and holds
// each to the full invariant set plus scenario-specific recovery claims.
// Every request must be accounted for — finished, shed, or counted as a
// permanent retry failure — whatever the fault plan does to the pool.
func TestChaosRecoveryScenarios(t *testing.T) {
	w := sessionWorkload(t)
	scenarios := []struct {
		name   string
		make   func() (cluster.Config, cluster.BuildEngine)
		assert func(t *testing.T, res *cluster.Result)
	}{
		{
			// The pool scales to zero before traffic, so the first arrivals
			// buffer in the gateway behind a cold start — and the warming
			// replica crashes before its window ends. The orphan-free crash
			// must backfill through a second cold start and still drain the
			// gateway: nothing is lost, at most re-buffered.
			name: "crash-while-gateway-drains-into-warming-replica",
			make: func() (cluster.Config, cluster.BuildEngine) {
				return cluster.Config{
					Replicas: 2,
					Policy:   router.NewSessionAffinity(),
					Chaos:    &chaos.Spec{Faults: []chaos.Fault{crashFault(0, 1.0)}},
					Autoscale: &cluster.AutoscaleConfig{
						Policy:      autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
						Max:         2,
						Warmup:      3 * time.Second,
						ScaleToZero: true,
					},
				}, buildTokenFlow()
			},
			assert: func(t *testing.T, res *cluster.Result) {
				if res.Crashes != 1 {
					t.Errorf("crashes = %d, want 1", res.Crashes)
				}
				if res.Backfills < 1 {
					t.Errorf("backfills = %d, want the crashed replica resurrected", res.Backfills)
				}
				if res.RetryFailures != 0 {
					t.Errorf("%d requests failed permanently despite the gateway", res.RetryFailures)
				}
			},
		},
		{
			// Both replicas die in quick succession with no autoscaler to
			// backfill: orphans burn their whole retry budget against an
			// empty pool and count failed; arrivals after the second crash
			// shed at the gateway-less front door. The invariant suite checks
			// the exact conservation (finished + failed == admitted, sheds
			// in the admission ledger).
			name: "double-crash-before-backfill",
			make: func() (cluster.Config, cluster.BuildEngine) {
				return cluster.Config{
					Replicas: 2,
					Policy:   router.NewSessionAffinity(),
					Chaos: &chaos.Spec{
						Faults: []chaos.Fault{crashFault(0, 8), crashFault(1, 8.2)},
					},
				}, buildTokenFlow()
			},
			assert: func(t *testing.T, res *cluster.Result) {
				if res.Crashes != 2 {
					t.Errorf("crashes = %d, want 2", res.Crashes)
				}
				if res.RetryFailures == 0 {
					t.Error("no permanent retry failures with the whole pool dead")
				}
				if res.GatewayShed == 0 {
					t.Error("no arrivals shed after the pool died")
				}
				if res.Backfills != 0 {
					t.Errorf("backfills = %d without an autoscaler", res.Backfills)
				}
			},
		},
		{
			// The whole live pool dies with an autoscaler watching: under
			// scale-to-zero the light load keeps one replica in service, so
			// the scripted pair of crashes kills every live replica (a crash
			// aimed at an already-off replica is a no-op). The control loop
			// backfills through the warm-up path, and retries that found
			// nothing alive re-enter the scale-to-zero gateway instead of
			// failing.
			name: "live-pool-crash-then-autoscale-backfill",
			make: func() (cluster.Config, cluster.BuildEngine) {
				return cluster.Config{
					Replicas: 2,
					Policy:   router.NewSessionAffinity(),
					Chaos: &chaos.Spec{
						Faults: []chaos.Fault{crashFault(0, 8), crashFault(1, 8.2)},
					},
					Autoscale: &cluster.AutoscaleConfig{
						Policy:      autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
						Max:         2,
						Warmup:      2 * time.Second,
						ScaleToZero: true,
					},
				}, buildTokenFlow()
			},
			assert: func(t *testing.T, res *cluster.Result) {
				if res.Crashes < 1 {
					t.Errorf("crashes = %d, want the live pool killed", res.Crashes)
				}
				if res.Backfills < 1 {
					t.Errorf("backfills = %d, want at least one resurrection", res.Backfills)
				}
				if res.RetryFailures != 0 {
					t.Errorf("%d orphans failed despite gateway and backfill", res.RetryFailures)
				}
			},
		},
		{
			// A brownout is not a crash: the slow window inflates latency but
			// orphans nothing and triggers no recovery machinery.
			name: "brownout-recovers-alone",
			make: func() (cluster.Config, cluster.BuildEngine) {
				return cluster.Config{
					Replicas: 2,
					Policy:   router.NewSessionAffinity(),
					Chaos: &chaos.Spec{
						Faults: []chaos.Fault{{Kind: chaos.Brownout,
							At: simclock.FromSeconds(5), Replica: 0,
							Factor: 4, Duration: 10 * time.Second}},
					},
				}, buildTokenFlow()
			},
			assert: func(t *testing.T, res *cluster.Result) {
				if res.Brownouts != 1 {
					t.Errorf("brownouts = %d, want 1", res.Brownouts)
				}
				if res.Crashes != 0 || res.Retries != 0 || res.RetryFailures != 0 {
					t.Errorf("brownout triggered crash machinery: %d crashes, %d retries, %d failed",
						res.Crashes, res.Retries, res.RetryFailures)
				}
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg, build := sc.make()
			cl, err := cluster.New(cfg, build)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if err := cluster.CheckInvariants(res, w.Len()); err != nil {
				t.Fatal(err)
			}
			sc.assert(t, res)
		})
	}
}

// chaosDeterminismGrid spans the chaos dimensions: scripted mixed
// faults, redundancy replication, seeded random plans, and a crash
// under autoscale + gateway.
func chaosDeterminismGrid() []struct {
	name string
	make func() (cluster.Config, cluster.BuildEngine)
} {
	return []struct {
		name string
		make func() (cluster.Config, cluster.BuildEngine)
	}{
		{"scripted-mixed-faults", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
				Chaos: &chaos.Spec{Faults: []chaos.Fault{
					{Kind: chaos.Brownout, At: simclock.FromSeconds(4), Replica: 2,
						Factor: 3, Duration: 5 * time.Second},
					{Kind: chaos.LinkFlap, At: simclock.FromSeconds(6),
						From: 0, To: 2, Duration: 3 * time.Second},
					crashFault(1, 8),
				}},
			}, buildTokenFlowHost()
		}},
		{"crash-with-redundancy", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
				Chaos: &chaos.Spec{
					Faults:     []chaos.Fault{crashFault(1, 8)},
					Redundancy: 2,
				},
			}, buildTokenFlowHost()
		}},
		{"random-seeded-plan", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewLeastQueue(),
				Chaos: &chaos.Spec{
					RandomFaults: 3, Seed: 11,
					Horizon:    simclock.FromSeconds(30),
					Redundancy: 2,
				},
			}, buildTokenFlowHost()
		}},
		{"crash-under-autoscale-gateway", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(),
				Chaos: &chaos.Spec{Faults: []chaos.Fault{crashFault(0, 8), crashFault(2, 12)}},
				Autoscale: &cluster.AutoscaleConfig{
					Policy:      autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
					Max:         3,
					Warmup:      2 * time.Second,
					ScaleToZero: true,
				},
			}, buildTokenFlowHost()
		}},
	}
}

// TestChaosDeterminismGrid: an identical ChaosSpec must produce a deeply
// identical Result across repeated runs and across shard counts — every
// fault fires as a coordinator event while the shards are quiescent, so
// chaos must be exactly as deterministic as the fault-free engine. CI
// runs this under -race.
func TestChaosDeterminismGrid(t *testing.T) {
	w := sessionWorkload(t)
	for _, row := range chaosDeterminismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			run := func(shards int) *cluster.Result {
				cfg, build := row.make()
				cfg.Shards = shards
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			single := run(0)
			if err := cluster.CheckInvariants(single, w.Len()); err != nil {
				t.Fatal(err)
			}
			if again := run(0); !reflect.DeepEqual(single, again) {
				t.Fatal("repeated chaos runs differ on the same spec")
			}
			for _, shards := range []int{2, 3} {
				got := run(shards)
				if reflect.DeepEqual(single, got) {
					continue
				}
				switch {
				case !reflect.DeepEqual(single.Report, got.Report):
					t.Fatalf("shards=%d: reports differ:\n%+v\n%+v", shards, single.Report, got.Report)
				case !reflect.DeepEqual(single.ScaleEvents, got.ScaleEvents):
					t.Fatalf("shards=%d: scale events differ:\n%+v\n%+v",
						shards, single.ScaleEvents, got.ScaleEvents)
				case single.Crashes != got.Crashes || single.Retries != got.Retries ||
					single.Replications != got.Replications:
					t.Fatalf("shards=%d: chaos counters differ: %d/%d/%d vs %d/%d/%d",
						shards, got.Crashes, got.Retries, got.Replications,
						single.Crashes, single.Retries, single.Replications)
				default:
					t.Fatalf("shards=%d: chaos result diverged from single-threaded run", shards)
				}
			}
		})
	}
}

// TestChaosZeroFaultByteIdentity is the purity gate: a present-but-empty
// ChaosSpec (no faults, no redundancy) must reproduce the fault-free run
// exactly — same Result, byte-identical event log and series export. The
// whole chaos layer must cost nothing when it does nothing.
func TestChaosZeroFaultByteIdentity(t *testing.T) {
	w := sessionWorkload(t)
	run := func(spec *chaos.Spec) (*cluster.Result, string, string) {
		cl, err := cluster.New(cluster.Config{
			Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
			Chaos:       spec,
			SampleEvery: 250 * time.Millisecond,
			Obs:         obs.Options{Events: true, Series: true, Attribution: true, SampleEvery: 2},
		}, buildTokenFlowHost())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		var jsonl, csv strings.Builder
		if err := res.Obs.Events.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := res.Obs.Series.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return res, jsonl.String(), csv.String()
	}
	plain, pj, pc := run(nil)
	empty, ej, ec := run(&chaos.Spec{})
	if pj != ej {
		t.Error("zero-fault spec changed the event JSONL export")
	}
	if pc != ec {
		t.Error("zero-fault spec changed the series CSV export")
	}
	if !reflect.DeepEqual(plain.Attribution, empty.Attribution) {
		t.Error("zero-fault spec changed the attribution report")
	}
	plain.Obs, empty.Obs = nil, nil
	plain.Attribution, empty.Attribution = nil, nil
	if !reflect.DeepEqual(plain, empty) {
		t.Error("zero-fault spec changed the cluster result")
	}
}

// BenchmarkChaosRecovery prices the full recovery path — crash, retries,
// mirror repins, redundancy replication — on a 3-replica cluster, for
// the CI bench smoke ledger.
func BenchmarkChaosRecovery(b *testing.B) {
	w := trace.Sessions("bench-chaos", trace.SessionConfig{
		Sessions: 24,
		Duration: simclock.FromSeconds(60),
		Rates:    trace.FixedRate(20),
		Seed:     7,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl, err := cluster.New(cluster.Config{
			Replicas: 3, Policy: router.NewSessionAffinity(),
			Chaos: &chaos.Spec{
				Faults:     []chaos.Fault{crashFault(1, 10)},
				Redundancy: 2,
			},
		}, buildTokenFlowHost())
		if err != nil {
			b.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		if res.Crashes != 1 {
			b.Fatalf("crashes = %d", res.Crashes)
		}
	}
}
