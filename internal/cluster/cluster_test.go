package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// buildTokenFlow returns a BuildEngine producing fresh TokenFlow engines
// on the shared clock and fabric.
func buildTokenFlow() cluster.BuildEngine {
	return func(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		return engine.New(engine.Config{
			GPU:         gpu.RTX4090,
			Model:       model.Llama3_8B,
			MemFraction: 0.9,
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          engine.TokenFlowKVPolicy(),
			Clock:       clock,
			Fabric:      ep,
		})
	}
}

func sessionWorkload(t *testing.T) trace.Workload {
	t.Helper()
	w := trace.Sessions("test-sessions", trace.SessionConfig{
		Sessions: 24,
		Duration: simclock.FromSeconds(60),
		Rates:    trace.FixedRate(20),
		Seed:     7,
	})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func runPolicy(t *testing.T, replicas int, policy router.Policy, w trace.Workload) *cluster.Result {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Replicas: replicas, Policy: policy}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterInvariants checks, for every policy, that per-replica results
// decompose the cluster totals exactly.
func TestClusterInvariants(t *testing.T) {
	w := sessionWorkload(t)
	for _, name := range router.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := router.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res := runPolicy(t, 4, pol, w)
			if res.TimedOut {
				t.Fatal("cluster run timed out")
			}
			if res.Report.N != w.Len() {
				t.Fatalf("cluster saw %d requests, workload has %d", res.Report.N, w.Len())
			}
			var routed, n, finished int
			var out, hits int64
			for _, rs := range res.PerReplica {
				routed += rs.Routed
				n += rs.Result.Report.N
				finished += rs.Result.Report.Finished
				out += rs.Result.Report.TotalOut
				hits += rs.Result.PrefixHits
			}
			if routed != w.Len() || n != w.Len() {
				t.Errorf("routed=%d registered=%d, want %d", routed, n, w.Len())
			}
			if finished != res.Report.Finished {
				t.Errorf("per-replica finished sum %d != cluster %d", finished, res.Report.Finished)
			}
			if out != res.Report.TotalOut {
				t.Errorf("per-replica token sum %d != cluster %d", out, res.Report.TotalOut)
			}
			if hits != res.PrefixHits {
				t.Errorf("per-replica prefix hits sum %d != cluster %d", hits, res.PrefixHits)
			}
			if res.Imbalance < 1 {
				t.Errorf("imbalance %v < 1", res.Imbalance)
			}
			for i := 1; i < len(res.Requests); i++ {
				if res.Requests[i].ID <= res.Requests[i-1].ID {
					t.Fatalf("merged requests out of ID order at %d", i)
				}
			}
		})
	}
}

// TestClusterDeterminism checks that two identical runs produce identical
// reports.
func TestClusterDeterminism(t *testing.T) {
	w := sessionWorkload(t)
	a := runPolicy(t, 3, router.NewSessionAffinity(), w)
	b := runPolicy(t, 3, router.NewSessionAffinity(), w)
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Error("cluster runs are not deterministic")
	}
	if !reflect.DeepEqual(a.Imbalance, b.Imbalance) || a.PrefixHits != b.PrefixHits {
		t.Error("cluster routing stats are not deterministic")
	}
}

// TestSingleReplicaMatchesEngine checks that a 1-replica cluster with
// round-robin routing reproduces the standalone engine run exactly.
func TestSingleReplicaMatchesEngine(t *testing.T) {
	w := sessionWorkload(t)
	res := runPolicy(t, 1, router.NewRoundRobin(), w)

	eng, err := buildTokenFlow()(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report, solo.Report) {
		t.Errorf("1-replica cluster report differs from engine report:\ncluster: %+v\nengine:  %+v",
			res.Report, solo.Report)
	}
	if res.Makespan != solo.Makespan {
		t.Errorf("makespan %v != %v", res.Makespan, solo.Makespan)
	}
	if res.PrefixHits != solo.PrefixHits {
		t.Errorf("prefix hits %d != %d", res.PrefixHits, solo.PrefixHits)
	}
}

// TestAffinityRoutesTurnsTogether checks that under session-affinity, all
// turns of a session land on one replica when no eviction intervenes.
func TestAffinityRoutesTurnsTogether(t *testing.T) {
	w := sessionWorkload(t)
	res := runPolicy(t, 4, router.NewSessionAffinity(), w)
	// Each non-first turn whose previous turn finished before it arrived
	// should have hit the prefix cache; globally that means a substantial
	// hit count on a think-time-gapped workload.
	turns := 0
	for _, it := range w.Items {
		if it.Turn > 1 {
			turns++
		}
	}
	if res.PrefixHits == 0 {
		t.Fatal("affinity routing produced no prefix-cache hits")
	}
	if res.PrefixHits < int64(turns)/2 {
		t.Errorf("only %d/%d follow-up turns hit the prefix cache", res.PrefixHits, turns)
	}
}

// fixedPolicy routes each request ID to a preassigned replica (testing
// harness for deterministic migration scenarios).
type fixedPolicy struct{ m map[int]int }

func (p *fixedPolicy) Name() string { return "fixed" }
func (p *fixedPolicy) Pick(req router.Request, _ []router.Replica) int {
	return p.m[req.ID]
}

// buildHetero returns a BuildEngine with one H200 replica (index 0) ahead
// of RTX-4090 replicas.
func buildHetero() cluster.BuildEngine {
	return func(i int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		g := gpu.RTX4090
		if i == 0 {
			g = gpu.H200
		}
		return engine.New(engine.Config{
			GPU:         g,
			Model:       model.Llama3_8B,
			MemFraction: 0.9,
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          engine.TokenFlowKVPolicy(),
			Clock:       clock,
			Fabric:      ep,
		})
	}
}

// TestHeterogeneousWeightedRouting: on a mixed H200/4090 pool the
// capacity-weighted policy sends the big replica proportionally more work
// than its small peers, and everything still completes.
func TestHeterogeneousWeightedRouting(t *testing.T) {
	w := sessionWorkload(t)
	cl, err := cluster.New(cluster.Config{
		Replicas: 3,
		Policy:   router.NewWeightedCapacity(),
	}, buildHetero())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Finished != w.Len() {
		t.Fatalf("finished %d/%d", res.Report.Finished, w.Len())
	}
	if h, small := res.PerReplica[0].Routed, res.PerReplica[1].Routed; h <= small {
		t.Errorf("H200 routed %d <= 4090's %d; capacity weighting should load the big replica more",
			h, small)
	}
}

// TestMigrationShipsPinnedPrefix pins a session's context on replica 0,
// routes its second turn to replica 1, and checks that with migration the
// prefix arrives there — the turn hits the cache on a replica that never
// served it — while without migration it recomputes.
func TestMigrationShipsPinnedPrefix(t *testing.T) {
	w := trace.Workload{Name: "migrate", Items: []trace.Item{
		{Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1},
		{Arrival: simclock.FromSeconds(30), PromptLen: 384, OutputLen: 64, Rate: 20, Session: 1, Turn: 2},
	}}
	run := func(migrate bool) *cluster.Result {
		cl, err := cluster.New(cluster.Config{
			Replicas: 2,
			Policy:   &fixedPolicy{m: map[int]int{0: 0, 1: 1}},
			Migrate:  migrate,
		}, buildTokenFlow())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Finished != 2 {
			t.Fatalf("finished %d/2", res.Report.Finished)
		}
		return res
	}

	with := run(true)
	without := run(false)

	if with.Migrations != 1 || with.MigratedTokens != 320 {
		t.Errorf("migrations = %d (%d tokens), want 1 (320 tokens)",
			with.Migrations, with.MigratedTokens)
	}
	if with.PrefixHits != 1 {
		t.Errorf("migrated run prefix hits = %d, want 1 (hit on the target replica)", with.PrefixHits)
	}
	if without.Migrations != 0 || without.PrefixHits != 0 {
		t.Errorf("migration-off run: migrations=%d hits=%d, want 0/0",
			without.Migrations, without.PrefixHits)
	}
	// Shipping 320 tokens of KV must beat recomputing them.
	mTTFT := with.Report.Requests[1].TTFT
	rTTFT := without.Report.Requests[1].TTFT
	if mTTFT >= rTTFT {
		t.Errorf("migrated turn TTFT %v >= recompute TTFT %v", mTTFT, rTTFT)
	}
}

// TestImbalanceSeriesTracksLoad: sampling produces a per-tick imbalance
// series aligned with the merged samples.
func TestImbalanceSeriesTracksLoad(t *testing.T) {
	w := sessionWorkload(t)
	cl, err := cluster.New(cluster.Config{
		Replicas:    4,
		Policy:      router.NewRoundRobin(),
		SampleEvery: 5 * time.Second,
	}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ImbalanceSeries) == 0 {
		t.Fatal("sampling enabled but imbalance series empty")
	}
	if len(res.ImbalanceSeries) != len(res.Samples) {
		t.Errorf("imbalance series has %d points, merged samples %d",
			len(res.ImbalanceSeries), len(res.Samples))
	}
	for i, p := range res.ImbalanceSeries {
		if p.Value < 1 {
			t.Fatalf("imbalance point %d = %v < 1", i, p.Value)
		}
		if p.At != res.Samples[i].At {
			t.Fatalf("imbalance point %d at %v, sample at %v", i, p.At, res.Samples[i].At)
		}
	}
}

func TestClusterConfigErrors(t *testing.T) {
	if _, err := cluster.New(cluster.Config{Replicas: 2}, buildTokenFlow()); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := cluster.New(cluster.Config{Replicas: -1, Policy: router.NewRoundRobin()}, buildTokenFlow()); err == nil {
		t.Error("negative replicas should fail")
	}
	if _, err := cluster.New(cluster.Config{Replicas: 2, Policy: router.NewRoundRobin()}, nil); err == nil {
		t.Error("nil builder should fail")
	}
	cl, err := cluster.New(cluster.Config{Replicas: 2, Policy: router.NewRoundRobin()}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(trace.Workload{Name: "empty"}); err == nil {
		t.Error("empty workload should fail")
	}
}

// TestFullMeshTopologyMatchesDefault is the refactor's equivalence anchor:
// an explicit full-mesh TopologySpec with per-pair dedicated links at the
// default bandwidth must reproduce the nil-topology (pre-fabric) cluster
// results exactly — for a migrating static cluster and for an autoscaled
// one with pre-warming.
func TestFullMeshTopologyMatchesDefault(t *testing.T) {
	w := sessionWorkload(t)

	runStatic := func(topo *fabric.Spec) *cluster.Result {
		cl, err := cluster.New(cluster.Config{
			Replicas: 3,
			Policy:   router.NewSessionAffinity(),
			Migrate:  true,
			Topology: topo,
		}, buildHetero())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := runStatic(nil)
	mesh := runStatic(&fabric.Spec{Kind: fabric.FullMesh, LinkGBps: 25})
	if !reflect.DeepEqual(def.Report, mesh.Report) {
		t.Errorf("explicit full mesh diverges from default:\ndefault: %+v\nmesh:    %+v",
			def.Report, mesh.Report)
	}
	if def.Migrations != mesh.Migrations || def.MigratedTokens != mesh.MigratedTokens {
		t.Errorf("migrations %d/%d tokens differ from %d/%d",
			def.Migrations, def.MigratedTokens, mesh.Migrations, mesh.MigratedTokens)
	}

	runScaled := func(topo *fabric.Spec) *cluster.Result {
		cl, err := cluster.New(cluster.Config{
			Replicas: 3,
			Policy:   router.NewSessionAffinity(),
			Topology: topo,
			Autoscale: &cluster.AutoscaleConfig{
				Policy: autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
				Min:    1, Max: 3,
				Warmup:  2 * time.Second,
				Prewarm: true,
			},
		}, buildTokenFlow())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sdef := runScaled(nil)
	smesh := runScaled(&fabric.Spec{Kind: fabric.FullMesh, LinkGBps: 25})
	if !reflect.DeepEqual(sdef.Report, smesh.Report) {
		t.Errorf("autoscaled full mesh diverges from default:\ndefault: %+v\nmesh:    %+v",
			sdef.Report, smesh.Report)
	}
	if sdef.Prewarms != smesh.Prewarms || sdef.GPUSeconds != smesh.GPUSeconds {
		t.Errorf("prewarm/GPU-seconds differ: %d/%.1f vs %d/%.1f",
			sdef.Prewarms, sdef.GPUSeconds, smesh.Prewarms, smesh.GPUSeconds)
	}
}

// TestCostModelDeclinesMigrationOnNarrowNIC is the migration cost model's
// acceptance scenario: a divert the always-migrate policy ships over a
// starved shared NIC gets declined by the cost model — recomputing the
// prefix on the target is faster than the queued wire — and the declined
// run ends with strictly better tail TTFT on that topology. On a fat
// interconnect the same cost model still migrates.
func TestCostModelDeclinesMigrationOnNarrowNIC(t *testing.T) {
	w := trace.Workload{Name: "divert", Items: []trace.Item{
		{Arrival: 0, PromptLen: 256, OutputLen: 64, Rate: 20, Session: 1, Turn: 1},
		{Arrival: simclock.FromSeconds(30), PromptLen: 384, OutputLen: 64, Rate: 20, Session: 1, Turn: 2},
	}}
	run := func(policy cluster.MigrationPolicy, topo *fabric.Spec) *cluster.Result {
		cl, err := cluster.New(cluster.Config{
			Replicas:        2,
			Policy:          &fixedPolicy{m: map[int]int{0: 0, 1: 1}},
			Migrate:         true,
			MigrationPolicy: policy,
			Topology:        topo,
		}, buildTokenFlow())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Finished != 2 {
			t.Fatalf("finished %d/2", res.Report.Finished)
		}
		return res
	}

	narrow := &fabric.Spec{Kind: fabric.SharedNIC, LinkGBps: 0.01}
	always := run(cluster.MigrateAlways, narrow)
	cost := run(cluster.MigrateCost, narrow)

	if always.Migrations != 1 {
		t.Fatalf("always-migrate shipped %d migrations, want 1", always.Migrations)
	}
	if cost.Migrations != 0 || cost.MigrationsDeclined != 1 {
		t.Errorf("cost model: %d migrations, %d declined; want 0 and 1",
			cost.Migrations, cost.MigrationsDeclined)
	}
	if cost.Report.P99TTFT >= always.Report.P99TTFT {
		t.Errorf("declining the starved wire should win: cost P99 %v >= always %v",
			cost.Report.P99TTFT, always.Report.P99TTFT)
	}

	// A fat mesh flips the break-even: the same cost model migrates.
	fat := run(cluster.MigrateCost, &fabric.Spec{Kind: fabric.FullMesh, LinkGBps: 25})
	if fat.Migrations != 1 || fat.MigrationsDeclined != 0 {
		t.Errorf("fat-link cost model: %d migrations, %d declined; want 1 and 0",
			fat.Migrations, fat.MigrationsDeclined)
	}
}

// TestTransferClassLedger: the cluster result carries the fabric's
// per-class ledger, and engine-side traffic (sync, evict, load) lands in
// it alongside interconnect migrations.
func TestTransferClassLedger(t *testing.T) {
	w := sessionWorkload(t)
	res := runPolicy(t, 2, router.NewSessionAffinity(), w)
	classes := map[string]fabric.ClassStats{}
	for _, cs := range res.TransferClasses {
		classes[cs.Class.String()] = cs
	}
	if len(classes) != 9 {
		t.Fatalf("ledger has %d classes: %+v", len(classes), res.TransferClasses)
	}
	if classes["sync"].Bytes == 0 {
		t.Error("write-through traffic missing from the sync class")
	}
}
