package cluster_test

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// buildTokenFlow returns a BuildEngine producing fresh TokenFlow engines
// on the shared clock.
func buildTokenFlow() cluster.BuildEngine {
	return func(_ int, clock *simclock.Clock) (*engine.Engine, error) {
		return engine.New(engine.Config{
			GPU:         gpu.RTX4090,
			Model:       model.Llama3_8B,
			MemFraction: 0.9,
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          engine.TokenFlowKVPolicy(),
			Clock:       clock,
		})
	}
}

func sessionWorkload(t *testing.T) trace.Workload {
	t.Helper()
	w := trace.Sessions("test-sessions", trace.SessionConfig{
		Sessions: 24,
		Duration: simclock.FromSeconds(60),
		Rates:    trace.FixedRate(20),
		Seed:     7,
	})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func runPolicy(t *testing.T, replicas int, policy router.Policy, w trace.Workload) *cluster.Result {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Replicas: replicas, Policy: policy}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterInvariants checks, for every policy, that per-replica results
// decompose the cluster totals exactly.
func TestClusterInvariants(t *testing.T) {
	w := sessionWorkload(t)
	for _, name := range router.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := router.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res := runPolicy(t, 4, pol, w)
			if res.TimedOut {
				t.Fatal("cluster run timed out")
			}
			if res.Report.N != w.Len() {
				t.Fatalf("cluster saw %d requests, workload has %d", res.Report.N, w.Len())
			}
			var routed, n, finished int
			var out, hits int64
			for _, rs := range res.PerReplica {
				routed += rs.Routed
				n += rs.Result.Report.N
				finished += rs.Result.Report.Finished
				out += rs.Result.Report.TotalOut
				hits += rs.Result.PrefixHits
			}
			if routed != w.Len() || n != w.Len() {
				t.Errorf("routed=%d registered=%d, want %d", routed, n, w.Len())
			}
			if finished != res.Report.Finished {
				t.Errorf("per-replica finished sum %d != cluster %d", finished, res.Report.Finished)
			}
			if out != res.Report.TotalOut {
				t.Errorf("per-replica token sum %d != cluster %d", out, res.Report.TotalOut)
			}
			if hits != res.PrefixHits {
				t.Errorf("per-replica prefix hits sum %d != cluster %d", hits, res.PrefixHits)
			}
			if res.Imbalance < 1 {
				t.Errorf("imbalance %v < 1", res.Imbalance)
			}
			for i := 1; i < len(res.Requests); i++ {
				if res.Requests[i].ID <= res.Requests[i-1].ID {
					t.Fatalf("merged requests out of ID order at %d", i)
				}
			}
		})
	}
}

// TestClusterDeterminism checks that two identical runs produce identical
// reports.
func TestClusterDeterminism(t *testing.T) {
	w := sessionWorkload(t)
	a := runPolicy(t, 3, router.NewSessionAffinity(), w)
	b := runPolicy(t, 3, router.NewSessionAffinity(), w)
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Error("cluster runs are not deterministic")
	}
	if !reflect.DeepEqual(a.Imbalance, b.Imbalance) || a.PrefixHits != b.PrefixHits {
		t.Error("cluster routing stats are not deterministic")
	}
}

// TestSingleReplicaMatchesEngine checks that a 1-replica cluster with
// round-robin routing reproduces the standalone engine run exactly.
func TestSingleReplicaMatchesEngine(t *testing.T) {
	w := sessionWorkload(t)
	res := runPolicy(t, 1, router.NewRoundRobin(), w)

	eng, err := buildTokenFlow()(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := eng.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report, solo.Report) {
		t.Errorf("1-replica cluster report differs from engine report:\ncluster: %+v\nengine:  %+v",
			res.Report, solo.Report)
	}
	if res.Makespan != solo.Makespan {
		t.Errorf("makespan %v != %v", res.Makespan, solo.Makespan)
	}
	if res.PrefixHits != solo.PrefixHits {
		t.Errorf("prefix hits %d != %d", res.PrefixHits, solo.PrefixHits)
	}
}

// TestAffinityRoutesTurnsTogether checks that under session-affinity, all
// turns of a session land on one replica when no eviction intervenes.
func TestAffinityRoutesTurnsTogether(t *testing.T) {
	w := sessionWorkload(t)
	res := runPolicy(t, 4, router.NewSessionAffinity(), w)
	// Each non-first turn whose previous turn finished before it arrived
	// should have hit the prefix cache; globally that means a substantial
	// hit count on a think-time-gapped workload.
	turns := 0
	for _, it := range w.Items {
		if it.Turn > 1 {
			turns++
		}
	}
	if res.PrefixHits == 0 {
		t.Fatal("affinity routing produced no prefix-cache hits")
	}
	if res.PrefixHits < int64(turns)/2 {
		t.Errorf("only %d/%d follow-up turns hit the prefix cache", res.PrefixHits, turns)
	}
}

func TestClusterConfigErrors(t *testing.T) {
	if _, err := cluster.New(cluster.Config{Replicas: 2}, buildTokenFlow()); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := cluster.New(cluster.Config{Replicas: -1, Policy: router.NewRoundRobin()}, buildTokenFlow()); err == nil {
		t.Error("negative replicas should fail")
	}
	if _, err := cluster.New(cluster.Config{Replicas: 2, Policy: router.NewRoundRobin()}, nil); err == nil {
		t.Error("nil builder should fail")
	}
	cl, err := cluster.New(cluster.Config{Replicas: 2, Policy: router.NewRoundRobin()}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(trace.Workload{Name: "empty"}); err == nil {
		t.Error("empty workload should fail")
	}
}
