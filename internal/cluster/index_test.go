package cluster_test

// Equivalence and staleness tests for the event-published prefix index.
//
// The load-bearing claim behind the indexed routing policies is that the
// index is a pure restatement of replica state: with the degenerate spec
// (zero delay, zero drops, per-change load signalling) every indexed pick
// equals its omniscient twin's, so whole runs must be deep-equal once the
// index's own accounting is set aside. With staleness dialed in, runs must
// still complete and satisfy every conservation law — a dropped evict
// produces a detour, never a stall. CI runs these under -race (the names
// carry Determinism / Sharded / Invariant).

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/prefixindex"
	"repro/internal/router"
)

// indexedTwin maps an omniscient policy onto its indexed variant, or nil
// when it has none.
func indexedTwin(name string) router.Policy {
	switch name {
	case router.NameLeastQueue:
		return router.NewIndexedLeastQueue()
	case router.NameSessionAffinity:
		return router.NewIndexedSessionAffinity()
	}
	return nil
}

// normalizeIndexed strips the fields that legitimately differ between an
// indexed run and its omniscient twin: the policy name, the index's own
// stats, and the ClassIndex ledger row (publications travel the fabric in
// the indexed run only). Everything else — every request timeline, report
// percentile, migration count, scale event — must match exactly.
func normalizeIndexed(res *cluster.Result) {
	res.Policy = ""
	res.PrefixIndex = nil
	for i := range res.TransferClasses {
		if res.TransferClasses[i].Class == fabric.ClassIndex {
			res.TransferClasses[i] = fabric.ClassStats{Class: fabric.ClassIndex}
		}
	}
}

// TestIndexedDeterminismEquivalence: with the degenerate index spec the
// indexed policies must reproduce their omniscient twins decision for
// decision — whole-run Results deep-equal across the determinism grid
// (autoscale × topology × migration), which exercises lifecycle
// SetActive transitions, migration donor lookups, and prewarm/drain
// publication paths.
func TestIndexedDeterminismEquivalence(t *testing.T) {
	w := sessionWorkload(t)
	for _, row := range determinismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			base, _ := row.make()
			if indexedTwin(base.Policy.Name()) == nil {
				t.Skipf("policy %s has no indexed variant", base.Policy.Name())
			}
			run := func(indexed bool) *cluster.Result {
				cfg, build := row.make()
				if indexed {
					cfg.Policy = indexedTwin(cfg.Policy.Name())
				}
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			omni, idx := run(false), run(true)
			if idx.PrefixIndex == nil {
				t.Fatal("indexed run reported no index stats")
			}
			if idx.PrefixIndex.Published == 0 {
				t.Fatal("indexed run published no events")
			}
			if idx.PrefixIndex.Pending != 0 || idx.PrefixIndex.Dropped != 0 {
				t.Fatalf("degenerate index must apply everything: %+v", idx.PrefixIndex)
			}
			if omni.EventsProcessed != idx.EventsProcessed {
				t.Fatalf("degenerate index scheduled clock events: %d vs %d",
					omni.EventsProcessed, idx.EventsProcessed)
			}
			normalizeIndexed(omni)
			normalizeIndexed(idx)
			if !reflect.DeepEqual(omni, idx) {
				switch {
				case !reflect.DeepEqual(omni.Report, idx.Report):
					t.Fatalf("reports differ:\nomniscient %+v\nindexed    %+v", omni.Report, idx.Report)
				case !reflect.DeepEqual(omni.ScaleEvents, idx.ScaleEvents):
					t.Fatalf("scale events differ:\n%+v\n%+v", omni.ScaleEvents, idx.ScaleEvents)
				case omni.Migrations != idx.Migrations:
					t.Fatalf("migrations differ: %d vs %d", omni.Migrations, idx.Migrations)
				default:
					t.Fatal("indexed run diverged from omniscient twin")
				}
			}
		})
	}
}

// TestShardedIndexedDeterminism: the sharded executor must produce the
// exact Result of the single-threaded run with the index on — including
// under propagation delay, drops, and heartbeats, where publications are
// buffered per shard and merged at barriers. Run under -race in CI.
func TestShardedIndexedDeterminism(t *testing.T) {
	w := sessionWorkload(t)
	specs := []*prefixindex.Spec{
		{}, // degenerate: synchronous publications
		{PropagationDelay: 50 * time.Millisecond, DropRate: 0.2,
			HeartbeatEvery: 250 * time.Millisecond, Seed: 11},
	}
	for _, spec := range specs {
		for _, shards := range []int{0, 2, 3} {
			run := func() *cluster.Result {
				cl, err := cluster.New(cluster.Config{
					Replicas:    3,
					Policy:      router.NewIndexedSessionAffinity(),
					Migrate:     true,
					Shards:      shards,
					PrefixIndex: spec,
				}, buildTokenFlow())
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("spec %+v shards=%d: repeated runs differ", *spec, shards)
			}
			if shards == 0 {
				continue
			}
			cl, err := cluster.New(cluster.Config{
				Replicas:    3,
				Policy:      router.NewIndexedSessionAffinity(),
				Migrate:     true,
				PrefixIndex: spec,
			}, buildTokenFlow())
			if err != nil {
				t.Fatal(err)
			}
			single, err := cl.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(single, a) {
				switch {
				case !reflect.DeepEqual(single.Report, a.Report):
					t.Fatalf("spec %+v shards=%d: reports differ:\n%+v\n%+v",
						*spec, shards, single.Report, a.Report)
				case !reflect.DeepEqual(single.PrefixIndex, a.PrefixIndex):
					t.Fatalf("spec %+v shards=%d: index stats differ:\n%+v\n%+v",
						*spec, shards, single.PrefixIndex, a.PrefixIndex)
				default:
					t.Fatalf("spec %+v shards=%d: sharded run diverged from single-threaded",
						*spec, shards)
				}
			}
		}
	}
}

// TestIndexedStalenessInvariants covers the staleness edge cases at cluster
// level: under aggressive drops and propagation delay the run must complete
// every request (a stale positive degrades to a prefix miss + recompute or
// a fallback divert, never a stall), the publication ledger must balance,
// and every cross-subsystem conservation law must hold. Run under -race in
// CI via the Invariant name.
func TestIndexedStalenessInvariants(t *testing.T) {
	w := sessionWorkload(t)
	for _, spec := range []*prefixindex.Spec{
		{DropRate: 0.5, Seed: 3},
		{PropagationDelay: 2 * time.Second, DropRate: 0.3,
			HeartbeatEvery: time.Second, Seed: 7},
	} {
		cl, err := cluster.New(cluster.Config{
			Replicas:    3,
			Policy:      router.NewIndexedSessionAffinity(),
			Migrate:     true,
			PrefixIndex: spec,
		}, buildTokenFlow())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("spec %+v: staleness stalled the run", *spec)
		}
		if res.Report.Finished != w.Len() {
			t.Fatalf("spec %+v: finished %d of %d requests",
				*spec, res.Report.Finished, w.Len())
		}
		st := res.PrefixIndex
		if st == nil || st.Published == 0 {
			t.Fatalf("spec %+v: no index accounting", *spec)
		}
		if st.Dropped == 0 {
			t.Fatalf("spec %+v: drop rate %v lost nothing over %d events",
				*spec, spec.DropRate, st.Published)
		}
		if err := cluster.CheckInvariants(res, w.Len()); err != nil {
			t.Fatalf("spec %+v: %v", *spec, err)
		}
	}
}
