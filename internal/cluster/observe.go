package cluster

// Flight-recorder telemetry series (the registry half of Config.Obs; the
// event half is emitted inline at each lifecycle site). Per-replica series
// sample on the SampleEvery loop, thinned by the registry's stride;
// autoscale-signal series sample on the control loop, one point per tick.
// Everything here is pure observation: recording reads engine and fabric
// state through the same accessors routing uses and never schedules clock
// events, so an instrumented run's Result is deep-equal to an
// uninstrumented one.

import (
	"strconv"

	"repro/internal/autoscale"
	"repro/internal/obs/attribution"
	"repro/internal/simclock"
)

// replicaSeriesNames holds one replica's precomputed series names, so
// per-tick recording does no string building.
type replicaSeriesNames struct {
	queue  string // replica<i>/queue_depth: outstanding (queued+running)
	kvUtil string // replica<i>/kv_util: used device-pool page fraction
	mirror string // replica<i>/host_mirror_bytes: host-tier mirror footprint
}

// Series names that are not per-replica or per-link.
const (
	seriesActiveReplicas = "cluster/active_replicas"
	seriesGatewayDepth   = "gateway/depth"
	seriesAttribRequests = "attrib/requests"
	seriesIndexPending   = "index/pending"
	seriesIndexSessions  = "index/sessions"
	seriesIndexHits      = "index/affinity_hits"
	seriesIndexFallbacks = "index/fallbacks"
	seriesChaosCrashed   = "chaos/crashed_replicas"
	seriesChaosRetries   = "chaos/retry_pending"
	seriesChaosCopies    = "chaos/replications_in_flight"
)

// attribSeriesNames maps each attribution phase onto its running-mean
// series name, in Phase order.
var attribSeriesNames = func() [attribution.NumPhases]string {
	var out [attribution.NumPhases]string
	for p := attribution.Phase(0); p < attribution.NumPhases; p++ {
		out[p] = "attrib/" + p.String() + "_mean_s"
	}
	return out
}()

// autoscaleSeriesNames maps the autoscale signal vector onto registry
// names, in autoscale.SignalNames order.
var autoscaleSeriesNames = func() [len(autoscale.SignalNames)]string {
	var out [len(autoscale.SignalNames)]string
	for i, n := range autoscale.SignalNames {
		out[i] = "autoscale/" + n
	}
	return out
}()

// initObsSeries precomputes series names. Link names come from the
// topology the fabric already built, so the series track exactly the links
// the run books on.
func (c *Cluster) initObsSeries() {
	if c.reg == nil {
		return
	}
	for _, rep := range c.replicas {
		id := strconv.Itoa(rep.id)
		c.repSeries = append(c.repSeries, replicaSeriesNames{
			queue:  "replica" + id + "/queue_depth",
			kvUtil: "replica" + id + "/kv_util",
			mirror: "replica" + id + "/host_mirror_bytes",
		})
	}
	for _, snap := range c.fab.LinkSnapshots(0) {
		c.linkBusy = append(c.linkBusy, "link/"+snap.Name+"/busy_s")
		c.linkBacklog = append(c.linkBacklog, "link/"+snap.Name+"/backlog_s")
	}
}

// recordSampleSeries records one point of every sampling-loop series: per
// replica the queue depth, device KV utilization, and host-mirror bytes;
// per fabric link the cumulative busy seconds and instantaneous backlog;
// and the active-replica count.
func (c *Cluster) recordSampleSeries(now simclock.Time) {
	for i, rep := range c.replicas {
		n := &c.repSeries[i]
		c.reg.Observe(n.queue, now, float64(rep.eng.OutstandingRequests()))
		util := 0.0
		if total := rep.eng.TotalKVPages(); total > 0 {
			util = float64(total-rep.eng.FreeKVPages()) / float64(total)
		}
		c.reg.Observe(n.kvUtil, now, util)
		c.reg.Observe(n.mirror, now, float64(rep.eng.HostMirrorBytes()))
	}
	for i, snap := range c.fab.LinkSnapshots(now) {
		if i >= len(c.linkBusy) {
			break
		}
		c.reg.Observe(c.linkBusy[i], now, snap.Busy.Seconds())
		c.reg.Observe(c.linkBacklog[i], now, snap.Backlog.Seconds())
	}
	c.reg.Observe(seriesActiveReplicas, now, float64(c.activeCount()))
	if c.idx != nil {
		// Staleness at a glance: in-flight publications, indexed sessions,
		// and the cumulative hit / fallback split of indexed decisions.
		st := c.idx.Stats()
		c.reg.Observe(seriesIndexPending, now, float64(st.Pending))
		c.reg.Observe(seriesIndexSessions, now, float64(st.Sessions))
		c.reg.Observe(seriesIndexHits, now, float64(st.AffinityHits))
		c.reg.Observe(seriesIndexFallbacks, now, float64(st.AffinityMisses+
			st.StaleFallbacks+st.HeadroomFallbacks+st.OverloadFallbacks))
	}
	if c.chaos != nil {
		crashed := 0
		for _, rep := range c.replicas {
			if rep.eng.Crashed() {
				crashed++
			}
		}
		c.reg.Observe(seriesChaosCrashed, now, float64(crashed))
		c.reg.Observe(seriesChaosRetries, now, float64(c.chaos.retryPending))
		c.reg.Observe(seriesChaosCopies, now, float64(c.chaos.replicationsInFlight))
	}
	c.recordAttributionSeries(now)
}

// recordAttributionSeries samples the streaming attribution aggregators:
// completed-request count and the running mean of each span phase. Safe
// on the coordinator even in sharded runs — the sampling tick is a
// barrier event, so every shard aggregator is quiescent. Sums fold
// across shards without materializing a merged grid.
func (c *Cluster) recordAttributionSeries(now simclock.Time) {
	if len(c.collectors) == 0 {
		return
	}
	var requests int64
	for _, col := range c.collectors {
		requests += col.Aggregator().Requests()
	}
	c.reg.Observe(seriesAttribRequests, now, float64(requests))
	for p := attribution.Phase(0); p < attribution.NumPhases; p++ {
		var count, total int64
		for _, col := range c.collectors {
			n, t := col.Aggregator().PhaseTotal(p)
			count += n
			total += t
		}
		mean := 0.0
		if count > 0 {
			// Exact integer sums first: the mean is bit-identical whatever
			// the shard count, keeping series exports byte-stable.
			mean = float64(total) / float64(count) / 1e9
		}
		c.reg.Observe(attribSeriesNames[p], now, mean)
	}
}

// recordControlSeries records one point per control tick: the full signal
// vector the policy decided from, and the gateway depth under
// scale-to-zero. Unstrided — control ticks are already sparse, and a scale
// decision in the event log should always line up with a recorded vector.
func (c *Cluster) recordControlSeries(now simclock.Time, s autoscale.Signals) {
	if c.reg == nil {
		return
	}
	v := s.Vector()
	for i, name := range autoscaleSeriesNames {
		c.reg.Observe(name, now, v[i])
	}
	if c.gatewayEnabled() {
		c.reg.Observe(seriesGatewayDepth, now, float64(len(c.gateway)))
	}
}
