package cluster

// Gateway prefix-index wiring (internal/prefixindex): replicas publish KV
// lifecycle events and load signals as they mutate; the gateway-side index
// consumes them after the spec's propagation delay, minus its drop rate,
// and indexed routing policies decide against that eventually-consistent
// view in O(1) instead of scanning the pool.
//
// Publication rides the choke points the engines already own: the KV
// manager's pin and mirror mutations (kvcache.SetPrefixPublisher) and the
// engine's outstanding-count changes (engine.SetLoadObserver; replaced by
// coordinator heartbeat digests when the spec sets a stride). Every
// publication is accounted on the fabric's index class — the control-plane
// traffic an event-sync gateway actually pays — and emitted to the flight
// recorder.
//
// Threading follows the cluster's single-writer discipline: a replica's
// publications are produced either on its shard goroutine (engine events)
// or by the coordinator while shards are quiescent (injection, migration
// installs, heartbeats). Sharded runs buffer publications per shard and the
// coordinator merges them at every barrier in (emission time, replica,
// sequence) order — the same total order a single-threaded run produces —
// so the index state at every read is identical across shard counts.
//
// The degenerate spec (zero delay, zero drops, no heartbeat) applies every
// publication at its emission instant and schedules no clock events, so the
// index equals the live state at every routing decision and indexed
// policies reproduce their omniscient twins decision for decision.

import (
	"repro/internal/autoscale"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/prefixindex"
	"repro/internal/router"
	"repro/internal/simclock"
)

// digestBuckets quantizes heartbeat free-page digests: the gateway sees a
// replica's free pool in sixteenths of its capacity, not exact pages —
// coarse load information is the point of a digest.
const digestBuckets = 16

// initPrefixIndex builds the gateway index when the run asks for one:
// explicitly via Config.PrefixIndex, or implicitly (with the degenerate
// synchronous spec) when the routing policy routes against an index. The
// implicit path keeps indexed policies usable anywhere an omniscient one
// is — tests iterating router.Names() included.
func (c *Cluster) initPrefixIndex() error {
	spec := c.cfg.PrefixIndex
	if spec == nil {
		if _, ok := c.cfg.Policy.(router.IndexBinder); !ok {
			return nil
		}
		spec = &prefixindex.Spec{} // degenerate: index == live state
	}
	idx, err := prefixindex.New(*spec, len(c.replicas))
	if err != nil {
		return err
	}
	c.idx, c.idxSpec = idx, *spec
	for _, rep := range c.replicas {
		idx.SeedReplica(rep.id, rep.eng.TotalKVPages(), rep.eng.KVPageTokens())
		idx.SetActive(rep.id, rep.state == autoscale.Active)
	}
	if b, ok := c.cfg.Policy.(router.IndexBinder); ok {
		b.BindIndex(idx)
	}
	c.installPublishers()
	return nil
}

// installPublishers hooks every replica's KV manager and engine into the
// publication stream. Each replica owns a sequence counter (pubSeq); the
// drop decision is a deterministic function of (seed, replica, sequence),
// so a run reproduces its losses whatever the shard count. Fabric
// accounting for the publication stream is deferred: pubSeq already counts
// every wire event per replica, and settleIndexTraffic folds the totals
// into the index class's ledger at collection time — one ledger write per
// replica instead of one per event, with nothing reading the class ledger
// mid-run.
func (c *Cluster) installPublishers() {
	c.pubFns = make([]func(prefixindex.EvKind, int, int64, int64), len(c.replicas))
	c.pubSeq = make([]uint64, len(c.replicas))
	for _, rep := range c.replicas {
		i := rep.id
		clk := c.clock
		var sh *shard
		if len(c.shards) > 0 {
			sh = c.shardOf(i)
			clk = sh.clock
		}
		rec := c.recFor(i) // recorders are fixed before publishers install
		emit := func(kind prefixindex.EvKind, session int, val, aux int64) {
			now := clk.Now()
			p := prefixindex.Pub{
				At:      now,
				ApplyAt: now.Add(c.idxSpec.PropagationDelay),
				Replica: i, Seq: c.pubSeq[i],
				Kind: kind, Session: session, Val: val, Aux: aux,
			}
			c.pubSeq[i]++
			// Only KV lifecycle events are lossy; load signals model a
			// reliable stream (heartbeats are themselves the recovery path).
			if kind == prefixindex.EvPin || kind == prefixindex.EvMirror {
				p.Dropped = prefixindex.Drop(c.idxSpec.Seed, i, p.Seq, c.idxSpec.DropRate)
			}
			if rec != nil {
				dropped := int64(0)
				if p.Dropped {
					dropped = 1
				}
				rec.Emit(now, obs.KindIndexPublish, i, -1, session,
					int64(kind), val, dropped, 0, kind.String())
			}
			if sh != nil {
				// Shard goroutines never touch the index: publications
				// buffer locally and the coordinator merges them at the
				// next barrier (mergePubs).
				sh.pubs = append(sh.pubs, p)
				return
			}
			c.idx.Publish(p)
		}
		c.pubFns[i] = emit
		rep.eng.SetPrefixPublisher(
			func(session, tokens int) { emit(prefixindex.EvPin, session, int64(tokens), 0) },
			func(session, tokens int) { emit(prefixindex.EvMirror, session, int64(tokens), 0) },
		)
		if c.idxSpec.HeartbeatEvery == 0 {
			rep.eng.SetLoadObserver(func(outstanding int) {
				emit(prefixindex.EvLoad, 0, int64(outstanding), 0)
			})
		}
	}
}

// settleIndexTraffic folds the publication stream's control-plane bytes
// into the fabric's index-class ledger: pubSeq counts every publication a
// replica put on the wire (dropped ones included — they consumed fabric
// bytes). Runs once at collection, on the coordinator with shards joined;
// the resulting ledger is identical to per-event accounting because
// nothing reads the class ledger before collection.
func (c *Cluster) settleIndexTraffic() {
	for i, n := range c.pubSeq {
		if n > 0 {
			c.fab.AccountN(fabric.ClassIndex, i, prefixindex.PubBytes, int64(n))
		}
	}
}

// mergePubs folds the shard-buffered publications gathered since the
// previous barrier into the index in (emission time, replica, sequence)
// order — the total order a single-threaded run publishes in, so the index
// trajectory is independent of shard scheduling. Runs on the coordinator
// with every shard quiescent.
func (c *Cluster) mergePubs() {
	if c.idx == nil {
		return
	}
	merged := c.pubScratch[:0]
	for _, sh := range c.shards {
		merged = append(merged, sh.pubs...)
		sh.pubs = sh.pubs[:0]
	}
	c.pubScratch = merged
	if len(merged) == 0 {
		return
	}
	sortPubs(merged)
	for _, p := range merged {
		c.idx.Publish(p)
	}
}

// sortPubs orders publications by (emission time, replica, sequence).
// Insertion sort: barrier batches are tiny (usually one shard's worth,
// already ordered) and the common case is an already-sorted run.
func sortPubs(ps []prefixindex.Pub) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && pubLess(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func pubLess(a, b prefixindex.Pub) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Replica != b.Replica {
		return a.Replica < b.Replica
	}
	return a.Seq < b.Seq
}

// scheduleHeartbeats installs the digest loop when the spec sets a stride:
// every HeartbeatEvery the coordinator publishes each in-service replica's
// outstanding count and bucket-quantized free pages. The loop runs on the
// coordinator clock — shards are quiescent, so the engine reads are the
// same safe snapshot the control loop takes.
func (c *Cluster) scheduleHeartbeats() {
	if c.idx == nil || c.idxSpec.HeartbeatEvery == 0 {
		return
	}
	var beat func(now simclock.Time)
	beat = func(now simclock.Time) {
		c.publishDigests()
		if !c.done() || c.scaleToZeroPending() {
			c.clock.After(c.idxSpec.HeartbeatEvery, beat)
		}
	}
	c.clock.At(0, beat)
}

// publishDigests emits one heartbeat digest per in-service replica. Free
// pages quantize to digestBuckets of the replica's own capacity: the
// gateway's headroom view is deliberately coarse, like a load report field,
// not an allocator mirror.
func (c *Cluster) publishDigests() {
	for _, rep := range c.replicas {
		if !rep.state.InService() {
			continue
		}
		free := rep.eng.FreeKVPages()
		quant := free
		if total := rep.eng.TotalKVPages(); total > 0 {
			quant = free * digestBuckets / total * total / digestBuckets
		}
		c.pubFns[rep.id](prefixindex.EvDigest, 0,
			int64(rep.eng.OutstandingRequests()), int64(quant))
	}
}

// noteActive mirrors a lifecycle transition into the index. Activation is
// control-plane state the gateway itself owns, so it applies synchronously:
// the index never routes to a replica the cluster would not.
func (c *Cluster) noteActive(replica int, active bool) {
	if c.idx != nil {
		c.idx.SetActive(replica, active)
	}
}
