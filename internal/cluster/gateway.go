package cluster

// The scale-to-zero gateway: a bounded FIFO admission stage ahead of
// routing. When Autoscale.ScaleToZero lets the pool idle down to zero
// active replicas, arrivals that find no capacity do not hit the router —
// they are buffered here (or shed when the buffer is full), each one
// doubling as a cold-start trigger. The moment the first replica reaches
// Active (a fresh warm-up or a cancelled drain), the whole buffer drains
// into it in arrival order; the buffered wait plus the residual warm-up is
// inside each request's TTFT, because the request object was stamped with
// its true arrival time when it entered the gateway.

import (
	"repro/internal/autoscale"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// gatewayEnabled reports whether the admission gateway fronts this cluster.
func (c *Cluster) gatewayEnabled() bool {
	return c.cfg.Autoscale != nil && c.cfg.Autoscale.ScaleToZero
}

// gatewayCap resolves the configured buffer bound: negative GatewayDepth
// means a zero-capacity gateway (every zero-replica arrival sheds).
func (c *Cluster) gatewayCap() int {
	if d := c.cfg.Autoscale.GatewayDepth; d > 0 {
		return d
	}
	return 0
}

// activeCount reports the replicas currently in the Active state.
func (c *Cluster) activeCount() int {
	n := 0
	for _, rep := range c.replicas {
		if rep.state == autoscale.Active {
			n++
		}
	}
	return n
}

// scaleToZeroPending reports whether a scale-to-zero pool still has
// replicas in service — the control loop keeps ticking until the policy
// has turned them all off, so the idle-drain tail is part of the run.
func (c *Cluster) scaleToZeroPending() bool {
	if !c.gatewayEnabled() {
		return false
	}
	for _, rep := range c.replicas {
		if rep.state != autoscale.Off {
			return true
		}
	}
	return false
}

// ensureColdStart wakes a zero-active pool: if no replica is active or
// already warming, one scale-up starts immediately — reactivating a
// draining replica when possible (it is still warm), otherwise paying a
// cold warm-up. Arrivals call it at their own instant rather than waiting
// for the next control tick, so the cold-start clock starts with the
// demand, not up to one tick later.
func (c *Cluster) ensureColdStart(now simclock.Time) {
	for _, rep := range c.replicas {
		if rep.state == autoscale.Active || rep.state == autoscale.Warming {
			return
		}
	}
	c.scaleUp(now)
}

// gatewayAdmit buffers one arrival that found zero active replicas, or
// sheds it when the gateway is full. Shed requests never enter the
// simulation: they appear in no replica's results, only in GatewayShed.
func (c *Cluster) gatewayAdmit(id int, it trace.Item, now simclock.Time) {
	if len(c.gateway) >= c.gatewayCap() {
		c.gatewayShed++
		c.rec.Emit(now, obs.KindGatewayShed, -1, id, it.Session,
			int64(it.PromptLen), int64(it.OutputLen), 0, 0, "")
		return
	}
	r := request.New(id, now, it.PromptLen, it.OutputLen, it.Rate)
	r.Session, r.Turn = it.Session, it.Turn
	c.gateway = append(c.gateway, r)
	c.gatewayBuffered++
	c.rec.Emit(now, obs.KindGatewayBuffer, -1, id, it.Session,
		int64(len(c.gateway)), 0, 0, 0, "")
	for _, rep := range c.replicas {
		if rep.state == autoscale.Warming {
			// Demand the cold start has answered but cannot serve yet.
			c.warmupStalls++
			break
		}
	}
}

// drainGateway hands every buffered request to the replica that just
// became active, in FIFO arrival order. Requests keep their gateway-entry
// arrival stamps, so the buffered wait lands inside TTFT. No routing or
// migration applies: off replicas hold no pins (the drain guarantee), so
// the first warmed replica is the only capacity there is.
func (c *Cluster) drainGateway(rep *replica, now simclock.Time) {
	if len(c.gateway) == 0 {
		return
	}
	q := c.gateway
	c.gateway = nil
	for _, r := range q {
		rep.routed++
		rep.eng.InjectCause(r, now, obs.QueueCauseGateway)
	}
}
