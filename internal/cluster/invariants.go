package cluster

// Cross-subsystem conservation laws. Four PRs of subsystems — cluster,
// kvcache, autoscale, fabric — interact through shared ledgers on one
// virtual clock; CheckInvariants cross-checks their joint accounting after
// any run. It lives in the package proper (not a _test file) so both the
// invariant test suite and the root benchmark smoke pass can call it on
// arbitrary (including randomized) specs.

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/attribution"
	"repro/internal/prefixindex"
)

// CheckInvariants verifies the conservation laws that tie the subsystems
// together on a finished run of a workload with wLen requests:
//
//  1. Fabric ledger ↔ kvcache accounting: per transfer class, the bytes
//     the fabric booked equal the bytes the KV managers moved (sync,
//     evict+pin drains, load, reload, and migrate+prewarm+drain against
//     the staked migration bytes).
//  2. Residency: no replica's pinned prefix pages ever exceeded its pool.
//  3. GPU-seconds equal the exact integral of the in-service replica
//     count reconstructed from the scale-event log.
//  4. Every admitted request appears exactly once in the merged results;
//     admitted plus shed covers the workload.
//  5. When the run recorded lifecycle events (Config.Obs.Events), the
//     summed event counts reconcile with the aggregate counters: arrivals
//     cover the workload, completions match the finished population,
//     sheds/migrations/declines/pre-warms/drain hand-offs match their
//     Result counters. A flight recorder that disagreed with the ledgers
//     it observes would be worse than none.
//  6. Chaos conservation: on a finished run every admitted request either
//     finished generating or exhausted the chaos retry budget (crashes
//     lose work, never requests), and the fabric's replicate class booked
//     exactly the redundancy bytes the chaos runtime accounted. The
//     GPU-seconds integral (law 3) and the request/event ledgers (laws 4
//     and 5) are themselves chaos-aware: a crash ends a replica's
//     in-service interval at the fault, failed requests belong to no
//     replica, and retry events reconcile against the retry counters.
//  7. Exact latency accounting: the causal spans derived from the event
//     stream (internal/obs/attribution) partition each completed
//     request's measured lifetime — gateway + wire + queue + prefill
//     equals its TTFT to the nanosecond, adding decode + preempted
//     reaches its end-to-end latency, and no phase is negative. When the
//     streaming attribution layer also ran, its report covers exactly
//     the derived spans. An attribution that leaked or double-counted
//     time would mislead precisely where it claims to explain.
//
// It returns the first violated law as an error, nil when all hold.
func CheckInvariants(res *Result, wLen int) error {
	if err := checkTransferConservation(res); err != nil {
		return err
	}
	if err := checkResidency(res); err != nil {
		return err
	}
	if err := checkGPUSeconds(res); err != nil {
		return err
	}
	if err := checkRequestConservation(res, wLen); err != nil {
		return err
	}
	if err := checkIndexConservation(res); err != nil {
		return err
	}
	if err := checkEventReconciliation(res, wLen); err != nil {
		return err
	}
	if err := checkChaosAccounting(res, wLen); err != nil {
		return err
	}
	return checkAttribution(res)
}

// checkChaosAccounting verifies the chaos-aware conservation laws: on a
// finished run, every admitted request either generated all its tokens or
// is one of the RetryFailures that exhausted the retry budget — crashes
// lose work but never lose requests — and the fabric's replicate class
// booked exactly the redundancy bytes the chaos runtime accounted
// (proactive mirror copies plus post-crash re-pins).
func checkChaosAccounting(res *Result, wLen int) error {
	if !res.TimedOut {
		var finished, unfinished int64
		for _, r := range res.Requests {
			if r.GenerationDone() {
				finished++
			} else {
				unfinished++
			}
		}
		if unfinished != res.RetryFailures {
			return fmt.Errorf("invariant: %d unfinished requests in results, %d retry failures",
				unfinished, res.RetryFailures)
		}
		admitted := int64(wLen) - res.GatewayShed
		if finished+res.RetryFailures != admitted {
			return fmt.Errorf("invariant: %d finished + %d retry failures != %d admitted",
				finished, res.RetryFailures, admitted)
		}
	}
	var replicate int64
	for _, cs := range res.TransferClasses {
		if cs.Class == fabric.ClassReplicate {
			replicate = cs.Bytes
		}
	}
	if replicate != res.ReplicatedBytes {
		return fmt.Errorf("invariant: fabric replicate class booked %d bytes, chaos accounts %d",
			replicate, res.ReplicatedBytes)
	}
	return nil
}

// checkIndexConservation ties the prefix index's publication ledger to the
// fabric's index-class accounting: every publication — applied, dropped, or
// still pending — was booked on the wire at exactly PubBytes, and the three
// dispositions partition the published total.
func checkIndexConservation(res *Result) error {
	var transfers, bytes int64
	for _, cs := range res.TransferClasses {
		if cs.Class == fabric.ClassIndex {
			transfers, bytes = cs.Transfers, cs.Bytes
		}
	}
	if res.PrefixIndex == nil {
		if transfers != 0 || bytes != 0 {
			return fmt.Errorf("invariant: fabric index class booked %d transfers / %d bytes with no prefix index",
				transfers, bytes)
		}
		return nil
	}
	st := res.PrefixIndex
	if transfers != st.Published || bytes != st.Published*prefixindex.PubBytes {
		return fmt.Errorf("invariant: fabric index class booked %d transfers / %d bytes, index published %d (%d bytes)",
			transfers, bytes, st.Published, st.Published*prefixindex.PubBytes)
	}
	if st.Applied+st.Dropped+st.Pending != st.Published {
		return fmt.Errorf("invariant: index publications leak: %d applied + %d dropped + %d pending != %d published",
			st.Applied, st.Dropped, st.Pending, st.Published)
	}
	return nil
}

// checkAttribution verifies the exact-accounting law over the spans the
// attribution pass derives from the recorded event stream. A no-op when
// the run kept no event recorder.
func checkAttribution(res *Result) error {
	if res.Obs == nil || res.Obs.Events == nil {
		return nil
	}
	spans := attribution.Derive(res.Obs.Events.Events())
	byID := make(map[int32]int, len(res.Requests))
	for i, r := range res.Requests {
		byID[int32(r.ID)] = i
	}
	for i := range spans {
		s := &spans[i]
		ri, ok := byID[s.Request]
		if !ok {
			return fmt.Errorf("invariant: span derived for request %d absent from results", s.Request)
		}
		r := res.Requests[ri]
		if s.Arrival != r.Arrival || s.FirstAt != r.FirstTokenAt || s.CompleteAt != r.FinishedAt {
			return fmt.Errorf("invariant: span timestamps for request %d (arrival %d first %d complete %d) disagree with result (%d %d %d)",
				s.Request, s.Arrival, s.FirstAt, s.CompleteAt, r.Arrival, r.FirstTokenAt, r.FinishedAt)
		}
		for p := attribution.Phase(0); p < attribution.NumPhases; p++ {
			if s.Phases[p] < 0 {
				return fmt.Errorf("invariant: request %d derived a negative %s phase (%v)",
					s.Request, p, s.Phases[p])
			}
		}
		if got, want := s.PhaseSumTTFT(), r.TTFT(); got != want {
			return fmt.Errorf("invariant: request %d pre-first-token phases sum to %v, measured TTFT %v",
				s.Request, got, want)
		}
		if got, want := s.PhaseSum(), r.FinishedAt.Sub(r.Arrival); got != want {
			return fmt.Errorf("invariant: request %d phases sum to %v, measured E2E %v",
				s.Request, got, want)
		}
	}
	// Every finished request must derive exactly one span — including
	// crash-retried requests, whose doomed attempts reset the derivation
	// state so only the surviving attempt finalizes. Retry failures never
	// complete and derive none; a timed-out run legitimately leaves
	// requests mid-flight.
	if !res.TimedOut {
		if want := len(res.Requests) - int(res.RetryFailures); len(spans) != want {
			return fmt.Errorf("invariant: %d spans derived for %d completed requests",
				len(spans), want)
		}
	}
	if res.Attribution != nil && !res.TimedOut {
		if got, want := res.Attribution.Requests, int64(len(spans)); got != want {
			return fmt.Errorf("invariant: attribution report covers %d requests, %d spans derived",
				got, want)
		}
	}
	return nil
}

// checkEventReconciliation sums the recorded lifecycle events and compares
// them against the Result's aggregate counters. A no-op when the run kept
// no event recorder.
func checkEventReconciliation(res *Result, wLen int) error {
	if res.Obs == nil || res.Obs.Events == nil {
		return nil
	}
	rec := res.Obs.Events
	type eventCheck struct {
		name string
		kind obs.Kind
		want int64
	}
	checks := []eventCheck{
		{"arrival", obs.KindArrival, int64(wLen)},
		{"gateway-shed", obs.KindGatewayShed, res.GatewayShed},
		{"gateway-buffer", obs.KindGatewayBuffer, res.GatewayBuffered},
		{"migrate-accept", obs.KindMigrateAccept, res.Migrations},
		{"migrate-decline", obs.KindMigrateDecline, res.MigrationsDeclined},
		{"prewarm", obs.KindPrewarm, res.Prewarms},
		{"drain", obs.KindDrain, res.DrainMigrations},
		{"crash", obs.KindCrash, res.Crashes},
		{"replicate", obs.KindReplicate, res.Replications},
		{"retry", obs.KindRetry, res.Retries + res.RetryFailures},
	}
	if st := res.PrefixIndex; st != nil {
		checks = append(checks,
			eventCheck{"index-publish", obs.KindIndexPublish, st.Published},
			eventCheck{"index-fallback", obs.KindIndexFallback, st.AffinityMisses +
				st.StaleFallbacks + st.HeadroomFallbacks + st.OverloadFallbacks})
	}
	for _, ck := range checks {
		if got := int64(rec.CountKind(ck.kind)); got != ck.want {
			return fmt.Errorf("invariant: %d %s events recorded, aggregates say %d",
				got, ck.name, ck.want)
		}
	}
	// Every admitted request must have been routed (directly or out of the
	// gateway) and, on a run that finished, completed exactly once. A timed-
	// out run legitimately leaves requests mid-flight.
	admitted := int64(wLen) - res.GatewayShed
	routed := int64(rec.CountKind(obs.KindRouteDecision)) + res.GatewayBuffered
	if routed != admitted {
		return fmt.Errorf("invariant: %d route events + %d gateway-buffered != %d admitted",
			routed-res.GatewayBuffered, res.GatewayBuffered, admitted)
	}
	if !res.TimedOut {
		if got, want := int64(rec.CountKind(obs.KindComplete)), admitted-res.RetryFailures; got != want {
			return fmt.Errorf("invariant: %d complete events recorded, %d requests admitted and not failed",
				got, want)
		}
	}
	return nil
}

// checkTransferConservation ties the fabric's per-class byte ledger to the
// KV managers' own byte counters.
func checkTransferConservation(res *Result) error {
	classes := map[fabric.Class]int64{}
	for _, cs := range res.TransferClasses {
		classes[cs.Class] = cs.Bytes
	}
	var synced, evicted, drained, loaded, reloaded, migratedOut int64
	for _, rs := range res.PerReplica {
		kv := rs.Result.KV
		synced += kv.BytesSynced
		evicted += kv.BytesEvicted
		drained += kv.PrefixBytesDrained
		loaded += kv.BytesLoaded
		reloaded += kv.BytesReloaded
		migratedOut += kv.MigratedOutBytes
	}
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"sync", classes[fabric.ClassSync], synced},
		{"evict", classes[fabric.ClassEvict], evicted + drained},
		{"load", classes[fabric.ClassLoad], loaded},
		{"reload", classes[fabric.ClassReload], reloaded},
		{"migrate+prewarm+drain",
			classes[fabric.ClassMigrate] + classes[fabric.ClassPrewarm] + classes[fabric.ClassDrain],
			migratedOut},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			return fmt.Errorf("invariant: fabric %s class booked %d bytes, kvcache accounts %d",
				ck.name, ck.got, ck.want)
		}
	}
	return nil
}

// checkResidency verifies pinned prefixes never outgrew any pool.
func checkResidency(res *Result) error {
	for _, rs := range res.PerReplica {
		kv := rs.Result.KV
		if kv.PeakPinnedPages > kv.PoolPages {
			return fmt.Errorf("invariant: replica %d peak pinned pages %d exceed pool %d",
				rs.ID, kv.PeakPinnedPages, kv.PoolPages)
		}
		if kv.PinnedPages < 0 || kv.PinnedPages > kv.PeakPinnedPages {
			return fmt.Errorf("invariant: replica %d pinned pages %d outside [0, peak %d]",
				rs.ID, kv.PinnedPages, kv.PeakPinnedPages)
		}
	}
	return nil
}

// checkGPUSeconds integrates the in-service replica count from the
// scale-event log (off→warming is +1, draining→off is −1; activate,
// reactivate, and drain do not change in-service membership) across
// [0, SimEnd] and compares the integral against the reported GPU-seconds.
// The integral is computed in exact virtual-time arithmetic; the float
// comparison allows only conversion-level error.
func checkGPUSeconds(res *Result) error {
	inService := res.InitialInService
	var last time.Duration
	var integral time.Duration
	for _, ev := range res.ScaleEvents {
		at := time.Duration(ev.At)
		if at < last {
			return fmt.Errorf("invariant: scale event log out of order at %v after %v", at, last)
		}
		integral += time.Duration(inService) * (at - last)
		last = at
		switch ev.Kind {
		case ScaleWarmup:
			inService++
		case ScaleOff:
			inService--
		case ScaleCrash:
			// A crash drops the replica out of service instantly; its
			// GPU-seconds stop accruing at the fault, not at a drain.
			inService--
		}
		if inService < 0 {
			return fmt.Errorf("invariant: in-service replica count went negative at %v", at)
		}
	}
	if res.SimEnd < last {
		return fmt.Errorf("invariant: run ended at %v before last scale event %v", res.SimEnd, last)
	}
	integral += time.Duration(inService) * (res.SimEnd - last)
	want := integral.Seconds()
	if diff := res.GPUSeconds - want; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("invariant: GPU-seconds %.9f != replica-count integral %.9f",
			res.GPUSeconds, want)
	}
	return nil
}

// checkRequestConservation verifies every admitted request appears exactly
// once in the merged results and that admitted plus shed covers the
// workload.
func checkRequestConservation(res *Result, wLen int) error {
	admitted := int64(wLen) - res.GatewayShed
	if got := int64(len(res.Requests)); got != admitted {
		return fmt.Errorf("invariant: %d requests in results, %d admitted (%d workload - %d shed)",
			got, admitted, wLen, res.GatewayShed)
	}
	seen := make(map[int]bool, len(res.Requests))
	for _, r := range res.Requests {
		if seen[r.ID] {
			return fmt.Errorf("invariant: request %d appears more than once in results", r.ID)
		}
		seen[r.ID] = true
	}
	var perReplica int
	for _, rs := range res.PerReplica {
		perReplica += rs.Result.Report.N
	}
	// Requests that exhausted the chaos retry budget belong to no replica:
	// the crashed engine disowned them and no survivor ever served them.
	if perReplica+int(res.RetryFailures) != len(res.Requests) {
		return fmt.Errorf("invariant: per-replica request sum %d + %d retry failures != merged %d",
			perReplica, res.RetryFailures, len(res.Requests))
	}
	if res.Report.N != len(res.Requests) {
		return fmt.Errorf("invariant: cluster report covers %d requests, merged %d",
			res.Report.N, len(res.Requests))
	}
	return nil
}
