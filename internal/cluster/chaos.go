package cluster

// Chaos wiring: fault injection on the virtual clock (internal/chaos) and
// the recovery machinery that answers it. Every fault fires as a
// coordinator-clock event — in sharded runs the shards are quiescent at
// that instant, so the coordinator may tear down shard-owned engines and
// cancel shard-clock events without racing — which keeps a chaos run
// deterministic at any shard count.
//
// Crash: the replica's engine is killed in place (internal/engine Crash):
// every in-flight request is orphaned, its pins and host mirrors vanish,
// and routing stops seeing the replica immediately. The gateway notices
// after DetectDelay (the missed-heartbeat model) and re-enters each orphan
// through a capped exponential-backoff retry: a survivor is picked by
// least outstanding work, the request resets (its partial output died with
// the replica; its arrival stamp survives, so TTFT stays honest), and it
// injects under QueueCauseRetry so attribution charges the loss to the
// retry phase. When no survivor exists the orphan re-enters the
// scale-to-zero gateway if there is one, otherwise it backs off and tries
// again until RetryMax, after which it counts failed. Under autoscaling
// the crashed replica is off; the normal control loop backfills it through
// the warm-up path (Backfills counts crashed replicas resurrected that
// way).
//
// Brownout: the replica's engine multiplies every iteration launched in
// the window by Factor — the slow-node model — and recovers by itself.
//
// Link flap: the unordered replica pair goes dark for the window. Pin
// transfers already on the wire across the pair abort — the booking stays
// booked (book-time accounting, mirroring the fabric ledger), the donor
// un-stakes its pin, and a routed request waiting on the aborted KV is
// delivered anyway to recompute. New transfers across a down pair are
// declined at migratePin.
//
// Redundancy (Spec.Redundancy K >= 2): a coordinator loop copies every
// pinned session prefix to K-1 backup replicas' host-mirror tiers over the
// fabric's replicate class, bounded by ReplicateConcurrency. After a
// crash, sessions whose pins died but whose mirrors survive on a backup
// re-pin from that mirror over the backup's own h2d link — retried turns
// reload instead of recomputing, which is exactly the post-crash tail
// damage the chaos experiment prices against the replication traffic.

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// linkKey canonicalizes an unordered interconnect pair (a < b).
type linkKey struct{ a, b int }

func pairKey(x, y int) linkKey {
	if x > y {
		x, y = y, x
	}
	return linkKey{x, y}
}

// flight is one pin transfer on the interconnect wire, registered so a
// crash or link flap can tear it down mid-flight. req, when set, is the
// routed request whose inject rides the transfer completion.
type flight struct {
	donor, target *replica
	session       int
	handle        simclock.Handle
	req           *request.Request
}

// repinJob asks one surviving replica to re-pin a session from its own
// host mirror after the pin holder crashed.
type repinJob struct {
	rep     *replica
	session int
}

// copyKey identifies one in-flight redundancy copy (target, session), so
// consecutive replication ticks do not re-book a copy already on the wire.
type copyKey struct {
	target  int
	session int
}

// chaosRuntime is the cluster's chaos state. Nil when the spec is
// inactive — every chaos hook is gated on that nil, which is what makes a
// zero-fault spec byte-identical to no spec at all.
type chaosRuntime struct {
	spec *chaos.Spec
	plan []chaos.Fault

	// retryPending counts orphans between crash and re-entry;
	// replicationsInFlight bounds concurrent redundancy transfers (copies
	// and re-pins share the budget). Both hold done() false.
	retryPending         int
	replicationsInFlight int

	// repinQueue holds post-crash mirror re-pins awaiting a concurrency
	// slot; copying marks redundancy copies already on the wire; failed
	// collects requests that exhausted their retry budget.
	repinQueue []repinJob
	copying    map[copyKey]bool
	failed     []*request.Request

	// linkDown maps a flapped pair to the instant it recovers; flights is
	// the in-flight pin-transfer registry aborts tear down.
	linkDown map[linkKey]simclock.Time
	flights  []*flight

	crashes, retries, retryFailures, backfills int64
	replications, replicatedBytes              int64
	brownouts, linkFlaps, migrationsAborted    int64
}

// initChaos validates the spec and arms the runtime when it is active.
func (c *Cluster) initChaos() error {
	spec := c.cfg.Chaos
	if err := spec.Validate(len(c.replicas)); err != nil {
		return err
	}
	if !spec.Active() {
		return nil
	}
	c.chaos = &chaosRuntime{
		spec:     spec,
		plan:     spec.Resolved(len(c.replicas)),
		copying:  map[copyKey]bool{},
		linkDown: map[linkKey]simclock.Time{},
	}
	return nil
}

// scheduleChaos places every resolved fault on the coordinator clock and
// arms the redundancy replication loop.
func (c *Cluster) scheduleChaos() {
	if c.chaos == nil {
		return
	}
	for _, f := range c.chaos.plan {
		f := f
		switch f.Kind {
		case chaos.Crash:
			c.clock.At(f.At, func(now simclock.Time) {
				c.injectCrash(c.replicas[f.Replica], now)
			})
		case chaos.Brownout:
			c.clock.At(f.At, func(now simclock.Time) {
				c.injectBrownout(c.replicas[f.Replica], f, now)
			})
		case chaos.LinkFlap:
			c.clock.At(f.At, func(now simclock.Time) {
				c.injectLinkFlap(f, now)
			})
		}
	}
	if c.chaos.spec.Redundancy > 1 {
		every := c.chaos.spec.ReplicateEveryOrDefault()
		var tick func(now simclock.Time)
		tick = func(now simclock.Time) {
			c.replicateTick(now)
			if !c.done() {
				c.clock.After(every, tick)
			}
		}
		c.clock.After(every, tick)
	}
}

// linkUp reports whether the interconnect pair is currently usable. At the
// exact recovery instant the link counts as up, whatever the event order.
func (c *Cluster) linkUp(a, b int, now simclock.Time) bool {
	if c.chaos == nil || len(c.chaos.linkDown) == 0 {
		return true
	}
	until, ok := c.chaos.linkDown[pairKey(a, b)]
	return !ok || now >= until
}

// injectCrash kills one replica at now. A replica already crashed (or
// never in service) absorbs the fault as a no-op.
func (c *Cluster) injectCrash(rep *replica, now simclock.Time) {
	if rep.eng.Crashed() || (c.cfg.Autoscale != nil && rep.state == autoscale.Off) {
		return
	}
	// Snapshot the pinned sessions before the engine wipes them: these are
	// the pins whose surviving host mirrors re-pin after detection.
	lost := rep.eng.HottestPrefixes(0)
	orphans, pinsLost, mirrorsLost := rep.eng.Crash(now)
	if rep.state.InService() {
		rep.busy += now.Sub(rep.sinceOn)
		rep.sinceOn = 0
	}
	rep.state = autoscale.Off
	c.noteActive(rep.id, false)
	c.event(now, ScaleCrash, rep.id)
	c.chaos.crashes++
	c.recFor(rep.id).Emit(now, obs.KindCrash, rep.id, -1, 0,
		int64(len(orphans)), int64(pinsLost), int64(mirrorsLost), 0, "")

	// Pin transfers touching the dead replica die with it.
	for _, fl := range c.flightsTouching(rep) {
		c.abortFlight(fl, now)
	}

	detect := now.Add(c.chaos.spec.DetectDelayOrDefault())
	backoff := c.chaos.spec.RetryBackoffOrDefault()
	for _, r := range orphans {
		attempt := r.Retries + 1
		c.scheduleRetry(r, attempt, detect.Add(retryDelay(backoff, attempt)))
	}

	// Queue the mirror-driven re-pins: for each lost pin, the first
	// surviving replica holding a host mirror of the session restores the
	// device copy from it, once the crash is detected.
	var jobs []repinJob
	for _, info := range lost {
		for _, peer := range c.replicas {
			if peer == rep || peer.eng.Crashed() {
				continue
			}
			if c.cfg.Autoscale != nil && !peer.state.InService() {
				continue
			}
			if peer.eng.HostMirrorSize(info.Session) > 0 {
				jobs = append(jobs, repinJob{rep: peer, session: info.Session})
				break
			}
		}
	}
	if len(jobs) > 0 {
		c.clock.At(detect, func(t simclock.Time) {
			c.chaos.repinQueue = append(c.chaos.repinQueue, jobs...)
			c.startRepins(t)
		})
	}
}

// retryDelay is the exponential backoff for the attempt-th re-entry.
func retryDelay(base time.Duration, attempt int) time.Duration {
	return base << uint(attempt-1)
}

// scheduleRetry arms one orphan's re-entry. retryPending holds the run
// open until every orphan resolves (re-routed, buffered, or failed).
func (c *Cluster) scheduleRetry(r *request.Request, attempt int, at simclock.Time) {
	c.chaos.retryPending++
	c.clock.At(at, func(now simclock.Time) {
		c.chaos.retryPending--
		c.retryNow(r, attempt, now)
	})
}

// retryNow re-enters one orphaned request: re-route to the survivor with
// the least outstanding work, fall back to the scale-to-zero gateway when
// nothing survives, back off and try again while the budget lasts, and
// fail permanently past RetryMax. Re-entries never emit a route decision —
// the request was already routed once at arrival — so the admission ledger
// counts each request exactly once.
func (c *Cluster) retryNow(r *request.Request, attempt int, now simclock.Time) {
	spec := c.chaos.spec
	views := c.routable()
	if len(views) == 0 {
		if c.gatewayEnabled() {
			c.ensureColdStart(now)
			if len(c.gateway) < c.gatewayCap() {
				// Re-enter through the gateway without touching its
				// admission counters: this request was already admitted.
				r.ResetForRetry(c.clock)
				c.gateway = append(c.gateway, r)
				c.chaos.retries++
				c.rec.Emit(now, obs.KindRetry, -1, r.ID, r.Session,
					int64(attempt), 0, 0, 0, "gateway")
				return
			}
		}
		if attempt < spec.RetryMaxOrDefault() {
			// No capacity yet (a double crash before backfill lands here):
			// burn one attempt and back off again.
			c.scheduleRetry(r, attempt+1, now.Add(retryDelay(spec.RetryBackoffOrDefault(), attempt+1)))
			return
		}
		r.ResetForRetry(c.clock)
		c.chaos.failed = append(c.chaos.failed, r)
		c.chaos.retryFailures++
		c.rec.Emit(now, obs.KindRetry, -1, r.ID, r.Session,
			int64(attempt), 0, 0, 0, "failed")
		return
	}
	// Prefix-aware placement: a survivor already holding the session's
	// pin (a completed repin) or a host mirror of it (redundancy copy,
	// reloadable without recompute) beats the least-loaded one — the
	// orphan's prefill is the expensive part of the retry. Ties fall
	// back to fewest outstanding requests; view order is id order, so
	// the pick is deterministic.
	var rep *replica
	var best int
	for _, v := range views {
		cand := v.(*replica)
		score := cand.eng.CachedPrefixTokens(r.Session)
		if m := cand.eng.HostMirrorSize(r.Session); m > score {
			score = m
		}
		if rep == nil || score > best ||
			(score == best && cand.eng.OutstandingRequests() < rep.eng.OutstandingRequests()) {
			rep, best = cand, score
		}
	}
	r.ResetForRetry(c.clock)
	rep.routed++
	c.chaos.retries++
	c.recFor(rep.id).Emit(now, obs.KindRetry, rep.id, r.ID, r.Session,
		int64(attempt), 0, 0, 0, "reroute")
	rep.eng.InjectCause(r, now, obs.QueueCauseRetry)
}

// shedCrashed drops an arrival that found every replica dead and no
// gateway to wait in — the cluster-level 503. It rides the gateway-shed
// ledger (and its event kind), so the admission conservation laws hold
// unchanged.
func (c *Cluster) shedCrashed(id int, it trace.Item, now simclock.Time) {
	c.gatewayShed++
	c.rec.Emit(now, obs.KindGatewayShed, -1, id, it.Session,
		int64(it.PromptLen), int64(it.OutputLen), 0, 0, "crash")
}

// injectBrownout opens one slow-node window: iterations launched inside it
// cost Factor times their modelled duration.
func (c *Cluster) injectBrownout(rep *replica, f chaos.Fault, now simclock.Time) {
	c.chaos.brownouts++
	rep.eng.SetSlowdown(f.Factor)
	c.recFor(rep.id).Emit(now, obs.KindBrownout, rep.id, -1, 0, 0, 0, 0, f.Factor, "begin")
	c.clock.At(now.Add(f.Duration), func(t simclock.Time) {
		rep.eng.SetSlowdown(1)
		c.recFor(rep.id).Emit(t, obs.KindBrownout, rep.id, -1, 0, 0, 0, 0, f.Factor, "end")
	})
}

// injectLinkFlap takes one interconnect pair down for the fault's window:
// in-flight pin transfers across the pair abort, and new ones are declined
// until recovery. Overlapping flaps extend the window; only the flap whose
// deadline still stands emits the recovery event.
func (c *Cluster) injectLinkFlap(f chaos.Fault, now simclock.Time) {
	key := pairKey(f.From, f.To)
	until := now.Add(f.Duration)
	if cur, ok := c.chaos.linkDown[key]; !ok || until > cur {
		c.chaos.linkDown[key] = until
	}
	c.chaos.linkFlaps++
	aborted := 0
	for _, fl := range c.flightsCrossing(key) {
		c.abortFlight(fl, now)
		aborted++
	}
	c.recFor(f.From).Emit(now, obs.KindLinkFlap, f.From, -1, 0,
		int64(f.To), int64(aborted), 0, 0, "down")
	c.clock.At(until, func(t simclock.Time) {
		if c.chaos.linkDown[key] == until {
			delete(c.chaos.linkDown, key)
			c.recFor(f.From).Emit(t, obs.KindLinkFlap, f.From, -1, 0,
				int64(f.To), 0, 0, 0, "up")
		}
	})
}

// flightsTouching lists the in-flight pin transfers with the replica at
// either end, in booking order.
func (c *Cluster) flightsTouching(rep *replica) []*flight {
	var out []*flight
	for _, fl := range c.chaos.flights {
		if fl.donor == rep || fl.target == rep {
			out = append(out, fl)
		}
	}
	return out
}

// flightsCrossing lists the in-flight pin transfers over the pair, in
// booking order.
func (c *Cluster) flightsCrossing(key linkKey) []*flight {
	var out []*flight
	for _, fl := range c.chaos.flights {
		if pairKey(fl.donor.id, fl.target.id) == key {
			out = append(out, fl)
		}
	}
	return out
}

// registerFlight records one pin transfer in the abort registry.
func (c *Cluster) registerFlight(fl *flight) {
	if c.chaos != nil {
		c.chaos.flights = append(c.chaos.flights, fl)
	}
}

// removeFlight forgets a flight that completed or aborted.
func (c *Cluster) removeFlight(fl *flight) {
	if c.chaos == nil {
		return
	}
	for i, f := range c.chaos.flights {
		if f == fl {
			c.chaos.flights = append(c.chaos.flights[:i], c.chaos.flights[i+1:]...)
			return
		}
	}
}

// abortFlight tears one pin transfer off the wire: the completion event
// cancels, the migration gating unwinds, a surviving donor un-stakes its
// pin, and a routed request riding the transfer is delivered to recompute —
// or handed to the retry path when its target is the replica that died.
// The booked bytes stay booked on both ledgers (book-time accounting).
func (c *Cluster) abortFlight(fl *flight, now simclock.Time) {
	c.removeFlight(fl)
	c.clock.Cancel(fl.handle)
	c.migrationsInFlight--
	fl.donor.outMigrations--
	fl.target.inMigrations--
	c.chaos.migrationsAborted++
	if !fl.donor.eng.Crashed() {
		fl.donor.eng.AbortPrefixMigration(fl.session)
	}
	if fl.req == nil {
		return
	}
	if !fl.target.eng.Crashed() {
		// The KV never arrived; the routed request proceeds without it and
		// the target recomputes the prefix.
		fl.target.eng.InjectCause(fl.req, now, obs.QueueCauseMigrate)
		return
	}
	attempt := fl.req.Retries + 1
	detect := now.Add(c.chaos.spec.DetectDelayOrDefault())
	c.scheduleRetry(fl.req, attempt,
		detect.Add(retryDelay(c.chaos.spec.RetryBackoffOrDefault(), attempt)))
}

// startRepins drains the post-crash re-pin queue under the replication
// concurrency bound: each job re-pins one session on the survivor holding
// its mirror, over that replica's own h2d link on the replicate class.
// Completions free a slot and pull the next job.
func (c *Cluster) startRepins(now simclock.Time) {
	conc := c.chaos.spec.ReplicateConcurrencyOrDefault()
	for c.chaos.replicationsInFlight < conc && len(c.chaos.repinQueue) > 0 {
		job := c.chaos.repinQueue[0]
		c.chaos.repinQueue = c.chaos.repinQueue[1:]
		if job.rep.eng.Crashed() {
			continue
		}
		done, tokens, bytes, ok := job.rep.eng.RepinFromMirror(job.session, now)
		if !ok {
			continue
		}
		c.chaos.replicationsInFlight++
		c.chaos.replications++
		c.chaos.replicatedBytes += bytes
		c.recFor(job.rep.id).Emit(now, obs.KindReplicate, job.rep.id, -1, job.session,
			int64(job.rep.id), int64(tokens), bytes, 0, "repin")
		c.clock.At(done, func(t simclock.Time) {
			c.chaos.replicationsInFlight--
			c.startRepins(t)
		})
	}
}

// replicateTick is one pass of the redundancy loop: every in-service
// replica's pinned session prefixes copy to the next Redundancy-1
// in-service peers' host-mirror tiers over the fabric's replicate class,
// bounded by the shared concurrency budget. Peers already holding a mirror
// at least as large are skipped, as are pairs currently flapped down.
func (c *Cluster) replicateTick(now simclock.Time) {
	spec := c.chaos.spec
	conc := spec.ReplicateConcurrencyOrDefault()
	for _, src := range c.replicas {
		if src.eng.Crashed() {
			continue
		}
		if c.cfg.Autoscale != nil && src.state != autoscale.Active {
			continue
		}
		for _, info := range src.eng.HottestPrefixes(0) {
			for _, dst := range c.backupsFor(src, spec.Redundancy-1) {
				if c.chaos.replicationsInFlight >= conc {
					return
				}
				key := copyKey{target: dst.id, session: info.Session}
				if c.chaos.copying[key] || !dst.eng.HostCacheEnabled() {
					continue
				}
				if dst.eng.HostMirrorSize(info.Session) >= info.Tokens {
					continue
				}
				if !c.linkUp(src.id, dst.id, now) {
					continue
				}
				tokens, bytes := src.eng.PrefixFootprint(info.Session)
				if tokens == 0 {
					continue
				}
				_, done := c.fab.BookBetween(fabric.ClassReplicate, src.id, dst.id, now, bytes)
				c.chaos.copying[key] = true
				c.chaos.replicationsInFlight++
				c.chaos.replications++
				c.chaos.replicatedBytes += bytes
				c.recFor(src.id).Emit(now, obs.KindReplicate, src.id, -1, info.Session,
					int64(dst.id), int64(tokens), bytes, 0, "copy")
				dst := dst
				session := info.Session
				c.clock.At(done, func(t simclock.Time) {
					c.chaos.replicationsInFlight--
					delete(c.chaos.copying, copyKey{target: dst.id, session: session})
					if !dst.eng.Crashed() {
						dst.eng.AdoptHostMirror(session, tokens, t)
					}
				})
			}
		}
	}
}

// backupsFor lists the next n in-service replicas after src in id order
// (wrapping) — the deterministic backup assignment of the redundancy loop.
func (c *Cluster) backupsFor(src *replica, n int) []*replica {
	var out []*replica
	for off := 1; off < len(c.replicas) && len(out) < n; off++ {
		peer := c.replicas[(src.id+off)%len(c.replicas)]
		if peer.eng.Crashed() {
			continue
		}
		if c.cfg.Autoscale != nil && !peer.state.InService() {
			continue
		}
		out = append(out, peer)
	}
	return out
}
