package cluster

// Seeded random cluster scenarios for the invariant suite and the CI
// bench smoke pass: a testing/quick-style generator that draws a valid
// (Config, BuildEngine, Workload) triple covering the autoscale ×
// topology × migration-policy × gateway space. Deterministic per rng
// state, so a failing scenario reproduces from its seed alone.

import (
	"math/rand"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Scenario is one randomized cluster run specification.
type Scenario struct {
	Config   Config
	Build    BuildEngine
	Workload trace.Workload
}

// RandomScenario draws a random valid scenario from rng. Sizes are kept
// small (≤3 replicas, ≤20 sessions) so a sweep of scenarios stays cheap
// enough for CI.
func RandomScenario(rng *rand.Rand) Scenario {
	replicas := 1 + rng.Intn(3)

	routers := router.Names()
	pol, err := router.ByName(routers[rng.Intn(len(routers))])
	if err != nil {
		panic(err) // names come from the router package itself
	}

	cfg := Config{
		Replicas: replicas,
		Policy:   pol,
		Migrate:  rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		cfg.MigrationPolicy = MigrateCost
	}
	switch rng.Intn(3) {
	case 0:
		// default full mesh
	case 1:
		cfg.Topology = &fabric.Spec{Kind: fabric.FullMesh, LinkGBps: 0.5 + 25*rng.Float64()}
	case 2:
		spec := &fabric.Spec{Kind: fabric.SharedNIC, LinkGBps: 0.5 + 10*rng.Float64()}
		if rng.Intn(2) == 0 {
			spec.SwitchGBps = 1 + 10*rng.Float64()
		}
		cfg.Topology = spec
	}

	if rng.Intn(4) > 0 { // 3 in 4 scenarios autoscale
		var ap autoscale.Policy
		switch rng.Intn(4) {
		case 0:
			ap = autoscale.NewQueuePressure(autoscale.QueuePressureConfig{})
		case 1:
			ap = autoscale.NewKVUtilization(autoscale.KVUtilizationConfig{})
		case 2:
			ap = autoscale.NewSLOTarget(autoscale.SLOTargetConfig{
				TargetP99: time.Duration(1+rng.Intn(4)) * time.Second,
			})
		case 3:
			ap = autoscale.NewPredictive(autoscale.PredictiveConfig{})
		}
		// A zero draw means instant warm-up, which the config spells as
		// negative (zero itself would select the 8s default).
		warmSec := rng.Intn(6)
		if warmSec == 0 {
			warmSec = -1
		}
		as := &AutoscaleConfig{
			Policy: ap,
			Max:    replicas,
			Warmup: time.Duration(warmSec) * time.Second,
		}
		if rng.Intn(2) == 0 {
			as.Prewarm = true
		}
		if rng.Intn(2) == 0 {
			as.ScaleToZero = true
			switch rng.Intn(3) {
			case 0:
				as.GatewayDepth = -1 // zero capacity: everything sheds
			case 1:
				as.GatewayDepth = 1 + rng.Intn(8)
			}
		}
		cfg.Autoscale = as
	}

	hostCache := rng.Intn(2) == 0

	if replicas >= 2 && rng.Intn(2) == 0 {
		// Fault dimension: half the multi-replica scenarios inject a
		// seeded random fault plan (crashes, brownouts, link flaps), so
		// the invariant sweep and the determinism grid exercise the chaos
		// recovery paths across the whole configuration space.
		cfg.Chaos = &chaos.Spec{
			RandomFaults: 1 + rng.Intn(3),
			Seed:         rng.Int63(),
			Horizon:      simclock.FromSeconds(20),
		}
		if rng.Intn(2) == 0 {
			cfg.Chaos.Redundancy = 2
		}
	}

	build := func(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		kv := engine.TokenFlowKVPolicy()
		kv.HostCache = hostCache
		return engine.New(engine.Config{
			GPU:         gpu.RTX4090,
			Model:       model.Llama3_8B,
			MemFraction: 0.9,
			Scheduler:   core.MustNew(core.DefaultConfig()),
			KV:          kv,
			Clock:       clock,
			Fabric:      ep,
		})
	}

	w := trace.Sessions("randspec", trace.SessionConfig{
		Sessions: 6 + rng.Intn(15),
		Duration: simclock.FromSeconds(20 + 40*rng.Float64()),
		Rates:    trace.FixedRate(20),
		Seed:     rng.Int63(),
	})
	return Scenario{Config: cfg, Build: build, Workload: w}
}
