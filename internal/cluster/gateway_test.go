package cluster_test

import (
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// buildFCFS returns a BuildEngine with the SGLang FCFS scheduler, so
// admission order (and therefore first-token order) follows injection
// order — the observable the FIFO-drain test pins.
func buildFCFS() cluster.BuildEngine {
	return func(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
		return engine.New(engine.Config{
			GPU:         gpu.RTX4090,
			Model:       model.Llama3_8B,
			MemFraction: 0.9,
			Scheduler:   sched.NewSGLang(),
			KV:          engine.BaselineKVPolicy(),
			Clock:       clock,
			Fabric:      ep,
		})
	}
}

// coldArrivals is n single-shot requests arriving one second apart from
// t=0, while the scale-to-zero pool is still cold (warm-up is 3s, so use
// n <= 3 to keep every arrival ahead of activation).
func coldArrivals(n int) trace.Workload {
	w := trace.Workload{Name: "cold"}
	for i := 0; i < n; i++ {
		w.Items = append(w.Items, trace.Item{
			Arrival:   simclock.FromSeconds(float64(i)),
			PromptLen: 128, OutputLen: 16, Rate: 0,
		})
	}
	return w
}

// coldBurst is n single-shot requests all arriving at t=0 into a cold
// pool.
func coldBurst(n int) trace.Workload {
	w := trace.Workload{Name: "cold-burst"}
	for i := 0; i < n; i++ {
		w.Items = append(w.Items, trace.Item{
			Arrival: 0, PromptLen: 128, OutputLen: 16, Rate: 0,
		})
	}
	return w
}

// runGateway runs a 2-replica scale-to-zero cluster with the given
// gateway depth and scripted decisions.
func runGateway(t *testing.T, depth int, w trace.Workload, decisions map[int]autoscale.Decision) *cluster.Result {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Replicas: 2,
		Policy:   router.NewLeastQueue(),
		Autoscale: &cluster.AutoscaleConfig{
			Policy:       &scriptPolicy{decisions: decisions},
			Max:          2,
			Warmup:       3 * time.Second,
			ScaleToZero:  true,
			GatewayDepth: depth,
		},
	}, buildFCFS())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("gateway run timed out")
	}
	return res
}

// TestGatewayEdgeCases is the table of scale-to-zero gateway behaviors:
// shedding bounds, FIFO drain, and the cancelled cold start.
func TestGatewayEdgeCases(t *testing.T) {
	// Every scripted policy eventually walks the pool back to zero so the
	// scale-to-zero control loop terminates.
	downAt := func(ticks ...int) map[int]autoscale.Decision {
		m := map[int]autoscale.Decision{}
		for _, tk := range ticks {
			m[tk] = autoscale.ScaleDown
		}
		return m
	}
	cases := []struct {
		name         string
		depth        int
		n            int
		burst        bool
		wantBuffered int64
		wantShed     int64
		wantServed   int
	}{
		// A zero-capacity gateway sheds every cold arrival immediately;
		// the cold start still fires (asserted below via scale events).
		{"zero-capacity-sheds-immediately", -1, 3, false, 0, 3, 0},
		// A bounded gateway buffers a cold burst to its depth and sheds
		// the excess.
		{"bounded-buffer-sheds-excess", 2, 5, true, 2, 3, 2},
		// A deep gateway buffers everything that arrives before activation
		// (warm-up 3s, arrivals at t=0,1,2) and serves it all.
		{"deep-buffer-serves-all", 64, 3, false, 3, 0, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := coldArrivals(tc.n)
			if tc.burst {
				w = coldBurst(tc.n)
			}
			res := runGateway(t, tc.depth, w, downAt(30, 40))
			if res.GatewayBuffered != tc.wantBuffered || res.GatewayShed != tc.wantShed {
				t.Errorf("buffered/shed = %d/%d, want %d/%d",
					res.GatewayBuffered, res.GatewayShed, tc.wantBuffered, tc.wantShed)
			}
			if len(res.Requests) != tc.wantServed || res.Report.Finished != tc.wantServed {
				t.Errorf("served %d (finished %d), want %d",
					len(res.Requests), res.Report.Finished, tc.wantServed)
			}
			// The first cold arrival triggers the scale-up at its own
			// instant, not at the next control tick.
			if len(res.ScaleEvents) == 0 || res.ScaleEvents[0].Kind != cluster.ScaleWarmup ||
				res.ScaleEvents[0].At != 0 {
				t.Errorf("cold start not triggered at t=0: %+v", res.ScaleEvents)
			}
			if err := cluster.CheckInvariants(res, tc.n); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestGatewayDrainIsFIFO: requests buffered across a warm-up drain into
// the first warmed replica in arrival order, with the buffered wait inside
// their TTFT.
func TestGatewayDrainIsFIFO(t *testing.T) {
	res := runGateway(t, 64, coldArrivals(3), map[int]autoscale.Decision{20: autoscale.ScaleDown, 30: autoscale.ScaleDown})
	if res.Report.Finished != 3 {
		t.Fatalf("finished %d/3", res.Report.Finished)
	}
	// All three landed on the single warmed replica.
	served := 0
	for _, rs := range res.PerReplica {
		if rs.Routed > 0 {
			served++
			if rs.Routed != 3 {
				t.Errorf("replica %d served %d requests, want all 3 on the first warmed replica",
					rs.ID, rs.Routed)
			}
		}
	}
	if served != 1 {
		t.Errorf("%d replicas served traffic, want exactly 1", served)
	}
	// FIFO: first-token instants follow arrival order under FCFS.
	for i := 1; i < len(res.Requests); i++ {
		if res.Requests[i].FirstTokenAt < res.Requests[i-1].FirstTokenAt {
			t.Errorf("request %d generated its first token at %v, before request %d at %v",
				res.Requests[i].ID, res.Requests[i].FirstTokenAt,
				res.Requests[i-1].ID, res.Requests[i-1].FirstTokenAt)
		}
	}
	// Queue time is inside TTFT: the t=0 arrival waited out the whole 3s
	// warm-up before it could even prefill.
	if ttft := res.Requests[0].TTFT(); ttft < 3*time.Second {
		t.Errorf("buffered request TTFT %v does not cover the 3s warm-up", ttft)
	}
}

// TestCancelledColdStart: the load vanishes mid-warm-up (a zero-capacity
// gateway shed it), so the replica activates into an empty pool, serves
// nothing, re-buffers nothing, and the policy walks the pool back to zero.
func TestCancelledColdStart(t *testing.T) {
	w := trace.Workload{Name: "one-shot", Items: []trace.Item{
		{Arrival: 0, PromptLen: 128, OutputLen: 16, Rate: 0},
	}}
	res := runGateway(t, -1, w, map[int]autoscale.Decision{6: autoscale.ScaleDown})

	if res.GatewayBuffered != 0 || res.GatewayShed != 1 {
		t.Fatalf("buffered/shed = %d/%d, want 0/1", res.GatewayBuffered, res.GatewayShed)
	}
	if len(res.Requests) != 0 {
		t.Fatalf("%d requests served after a full shed", len(res.Requests))
	}
	// Lifecycle: warm-up at the arrival instant, activation 3s later into
	// a dead pool, then drain and off — back to zero replicas.
	var kinds []cluster.ScaleKind
	for _, ev := range res.ScaleEvents {
		kinds = append(kinds, ev.Kind)
	}
	want := []cluster.ScaleKind{cluster.ScaleWarmup, cluster.ScaleActivate,
		cluster.ScaleDrain, cluster.ScaleOff}
	if len(kinds) != len(want) {
		t.Fatalf("scale events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("scale events %v, want %v", kinds, want)
		}
	}
	for _, rs := range res.PerReplica {
		if rs.State != autoscale.Off {
			t.Errorf("replica %d ended %v, want off", rs.ID, rs.State)
		}
	}
	// The aborted cold start still burned GPU-seconds — warm-up is paid
	// whether or not the demand survives it.
	if res.GPUSeconds <= 0 {
		t.Error("cancelled cold start reported no GPU-seconds")
	}
	if err := cluster.CheckInvariants(res, 1); err != nil {
		t.Error(err)
	}
}

// TestScaleToZeroTerminatesAllPolicies: every built-in policy must walk
// an idle scale-to-zero pool back to Off in bounded time — the control
// loop keeps ticking until the pool is dark, so a policy that can never
// decide "down" when idle (e.g. kv-utilization judging pinned-prefix
// utilization) would spin the clock to the 4-hour MaxSimTime.
func TestScaleToZeroTerminatesAllPolicies(t *testing.T) {
	w := trace.Sessions("terminate", trace.SessionConfig{
		Sessions: 8,
		Duration: simclock.FromSeconds(30),
		Rates:    trace.FixedRate(20),
		Seed:     3,
	})
	for _, name := range autoscale.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := autoscale.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := cluster.New(cluster.Config{
				Replicas: 2,
				Policy:   router.NewLeastQueue(),
				Autoscale: &cluster.AutoscaleConfig{
					Policy:      pol,
					Max:         2,
					Warmup:      2 * time.Second,
					ScaleToZero: true,
				},
			}, buildTokenFlow())
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if res.TimedOut {
				t.Fatal("scale-to-zero run timed out: the policy never reached zero")
			}
			for _, rs := range res.PerReplica {
				if rs.State != autoscale.Off {
					t.Errorf("replica %d ended %v, want off", rs.ID, rs.State)
				}
			}
			// The idle-drain tail must be minutes, not hours: the pool
			// dies within a few down-streaks of the last token.
			if res.SimEnd.Seconds() > res.Makespan.Seconds()+120 {
				t.Errorf("pool lingered %ds after the last token (SimEnd %v, makespan %v)",
					int(res.SimEnd.Seconds()-res.Makespan.Seconds()), res.SimEnd, res.Makespan)
			}
			if err := cluster.CheckInvariants(res, w.Len()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestScaleToZeroRoundTrip: with a latency-driven policy, a workload with
// a long idle gap drops the pool to zero between bursts, cold-starts on
// the second burst, and still serves everything.
func TestScaleToZeroRoundTrip(t *testing.T) {
	var w trace.Workload
	w.Name = "two-bursts"
	for i := 0; i < 4; i++ {
		w.Items = append(w.Items, trace.Item{
			Arrival:   simclock.FromSeconds(float64(i)),
			PromptLen: 256, OutputLen: 32, Rate: 20,
		})
	}
	for i := 0; i < 4; i++ {
		w.Items = append(w.Items, trace.Item{
			Arrival:   simclock.FromSeconds(120 + float64(i)),
			PromptLen: 256, OutputLen: 32, Rate: 20,
		})
	}

	cl, err := cluster.New(cluster.Config{
		Replicas: 2,
		Policy:   router.NewLeastQueue(),
		Autoscale: &cluster.AutoscaleConfig{
			Policy: autoscale.NewSLOTarget(autoscale.SLOTargetConfig{
				TargetP99: 2 * time.Second, DownTicks: 4, CooldownTicks: 2,
			}),
			Max:         2,
			Warmup:      2 * time.Second,
			ScaleToZero: true,
		},
	}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("round trip timed out")
	}
	if res.Report.Finished != len(w.Items) {
		t.Fatalf("finished %d/%d", res.Report.Finished, len(w.Items))
	}
	// The pool went dark between the bursts (an Off event before the
	// second burst's arrival) and cold-started again (a second Warmup).
	var offBeforeSecond, warmups int
	for _, ev := range res.ScaleEvents {
		if ev.Kind == cluster.ScaleOff && ev.At < simclock.FromSeconds(120) {
			offBeforeSecond++
		}
		if ev.Kind == cluster.ScaleWarmup {
			warmups++
		}
	}
	if offBeforeSecond == 0 {
		t.Error("pool never reached zero replicas during the idle gap")
	}
	if warmups < 2 {
		t.Errorf("only %d warm-ups: the second burst should have cold-started", warmups)
	}
	// Scale-to-zero pays: GPU-seconds must undercut keeping one replica
	// alive for the whole run.
	if res.GPUSeconds >= res.SimEnd.Seconds() {
		t.Errorf("GPU-seconds %.1f >= always-on single replica %.1f",
			res.GPUSeconds, res.SimEnd.Seconds())
	}
	if res.GatewayBuffered == 0 {
		t.Error("second burst should have buffered in the gateway")
	}
	if err := cluster.CheckInvariants(res, len(w.Items)); err != nil {
		t.Error(err)
	}
}
