package cluster_test

// Determinism regression: same seed + same spec must produce a deeply
// identical Result across two runs, for a grid of specs covering
// autoscale × topology × migration-policy. reflect.DeepEqual descends
// every field — reports, per-request token timelines, fabric ledgers,
// scale events — so any map-iteration or clock-ordering nondeterminism
// anywhere in the stack shows up as a diff. CI additionally runs this
// test under -race, which catches ordering bugs the single run hides.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/trace"
)

// determinismGrid spans the policy generations, topologies, and migration
// policies; each row is a fresh-config factory because policies and
// clusters are stateful one-run objects.
func determinismGrid() []struct {
	name string
	make func() (cluster.Config, cluster.BuildEngine)
} {
	topoFor := func(kind fabric.Kind, link, sw float64) *fabric.Spec {
		return &fabric.Spec{Kind: kind, LinkGBps: link, SwitchGBps: sw}
	}
	return []struct {
		name string
		make func() (cluster.Config, cluster.BuildEngine)
	}{
		{"static-mesh-always", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
			}, buildTokenFlow()
		}},
		{"static-shared-nic-cost", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
				MigrationPolicy: cluster.MigrateCost,
				Topology:        topoFor(fabric.SharedNIC, 1, 2),
			}, buildHetero()
		}},
		{"queue-pressure-prewarm-mesh", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
				Autoscale: &cluster.AutoscaleConfig{
					Policy:  autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
					Max:     3,
					Warmup:  2 * time.Second,
					Prewarm: true,
				},
			}, buildTokenFlow()
		}},
		{"slo-target-zero-shared-nic", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewLeastQueue(),
				Topology: topoFor(fabric.SharedNIC, 2, 0),
				Autoscale: &cluster.AutoscaleConfig{
					Policy:      autoscale.NewSLOTarget(autoscale.SLOTargetConfig{}),
					Max:         3,
					Warmup:      2 * time.Second,
					ScaleToZero: true,
				},
			}, buildTokenFlow()
		}},
		{"predictive-zero-cost-mesh", func() (cluster.Config, cluster.BuildEngine) {
			return cluster.Config{
				Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
				MigrationPolicy: cluster.MigrateCost,
				Autoscale: &cluster.AutoscaleConfig{
					Policy:      autoscale.NewPredictive(autoscale.PredictiveConfig{}),
					Max:         3,
					Warmup:      3 * time.Second,
					Prewarm:     true,
					ScaleToZero: true,
				},
			}, buildTokenFlow()
		}},
	}
}

// TestDeterminismGrid runs every grid row twice and requires byte-level
// equality of the full Result.
func TestDeterminismGrid(t *testing.T) {
	w := sessionWorkload(t)
	for _, row := range determinismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			run := func() *cluster.Result {
				cfg, build := row.make()
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				// Narrow the diff for the report before failing.
				switch {
				case !reflect.DeepEqual(a.Report, b.Report):
					t.Fatalf("reports differ:\n%+v\n%+v", a.Report, b.Report)
				case !reflect.DeepEqual(a.ScaleEvents, b.ScaleEvents):
					t.Fatalf("scale events differ:\n%+v\n%+v", a.ScaleEvents, b.ScaleEvents)
				case !reflect.DeepEqual(a.TransferClasses, b.TransferClasses):
					t.Fatalf("transfer ledgers differ:\n%+v\n%+v", a.TransferClasses, b.TransferClasses)
				default:
					t.Fatal("cluster results differ between identical runs")
				}
			}
		})
	}
}

// TestObsPurityGrid proves the flight recorder is pure observation across
// the same autoscale × topology × migration grid: a fully instrumented run
// (events + series + profiling + attribution) must yield a Result
// deep-equal to the uninstrumented run once the capture and attribution
// report are set aside, and the recorded event log and series must export
// byte-identically across repeated runs (the same-instant tie-break of
// the event ordering). CI also runs this under -race.
func TestObsPurityGrid(t *testing.T) {
	w := sessionWorkload(t)
	for _, row := range determinismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			run := func(o obs.Options) *cluster.Result {
				cfg, build := row.make()
				// Sampling on for both runs so the series layer records;
				// identical across runs, so it cannot mask an obs effect.
				cfg.SampleEvery = 250 * time.Millisecond
				cfg.Obs = o
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			full := obs.Options{Events: true, Series: true, Profile: true,
				Attribution: true, SampleEvery: 2}
			off, on, on2 := run(obs.Options{}), run(full), run(full)
			if off.Obs != nil {
				t.Fatal("obs-off run produced a capture")
			}
			if off.Attribution != nil {
				t.Fatal("obs-off run produced an attribution report")
			}
			if on.Obs == nil || on.Obs.Events.Len() == 0 {
				t.Fatal("instrumented run recorded no events")
			}
			if len(on.Obs.Series.All()) == 0 {
				t.Fatal("instrumented run recorded no series")
			}
			if on.Attribution == nil || on.Attribution.Requests == 0 {
				t.Fatal("instrumented run produced no attribution report")
			}
			var j1, j2 bytes.Buffer
			if err := on.Obs.Events.WriteJSONL(&j1); err != nil {
				t.Fatal(err)
			}
			if err := on2.Obs.Events.WriteJSONL(&j2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Fatal("event JSONL is not byte-stable across identical runs")
			}
			var c1, c2 bytes.Buffer
			if err := on.Obs.Series.WriteCSV(&c1); err != nil {
				t.Fatal(err)
			}
			if err := on2.Obs.Series.WriteCSV(&c2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
				t.Fatal("series CSV is not byte-stable across identical runs")
			}
			if !reflect.DeepEqual(on.Attribution, on2.Attribution) {
				t.Fatal("attribution reports differ across identical runs")
			}
			on.Obs, on2.Obs = nil, nil
			on.Attribution, on2.Attribution = nil, nil
			if !reflect.DeepEqual(off, on) {
				t.Fatal("instrumented run diverged from uninstrumented run")
			}
			if !reflect.DeepEqual(on, on2) {
				t.Fatal("repeated instrumented runs diverged")
			}
		})
	}
}

// TestDeterminismRandomScenario re-runs one random scenario from an
// identically seeded generator: generator and simulator must both be
// deterministic for resume-from-seed debugging to work.
func TestDeterminismRandomScenario(t *testing.T) {
	run := func() (*cluster.Result, trace.Workload) {
		sc := cluster.RandomScenario(rand.New(rand.NewSource(42)))
		cl, err := cluster.New(sc.Config, sc.Build)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(sc.Workload)
		if err != nil {
			t.Fatal(err)
		}
		return res, sc.Workload
	}
	a, wa := run()
	b, wb := run()
	if !reflect.DeepEqual(wa, wb) {
		t.Fatal("random scenario generator is not deterministic per seed")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("random scenario runs differ between identical seeds")
	}
}
