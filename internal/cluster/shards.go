package cluster

// Sharded parallel execution: Config.Shards > 1 partitions the replicas
// across worker goroutines. Replica i lives on shard i mod Shards, and each
// shard owns a private simclock sub-clock carrying that replica subset's
// engine events (iterations, consumption ticks, KV transfers on the
// replica's own host links). The cluster's coordinator clock keeps
// everything cross-replica: arrivals and routing, the sampling and
// autoscale control loops, gateway drains, and migration completions.
//
// Execution alternates between the coordinator and the shards. Before the
// coordinator fires its next event at time T, every shard runs its own
// events strictly before T in parallel and then aligns its clock at T
// (simclock.AdvanceTo), so a cross-shard effect landing at T — an injected
// arrival, a migration install — observes a consistent "now" everywhere.
// At an exact tie the coordinator goes first. Shards never touch the
// coordinator clock, another shard's clock, or another shard's engines;
// the only cross-shard state written from shard goroutines is the
// per-shard first-token buffer, merged into the shared TTFT window at each
// barrier in deterministic (time, replica) order. Fabric class accounting
// is per-replica-row (single writer) and interconnect links are booked
// only by the coordinator, so bookings from parallel shards never race.
//
// The flight recorder follows the same single-writer discipline: each
// shard owns a recorder and profiler, and every emission routes by the
// event's replica (Cluster.recFor) — a replica's lifecycle events are
// written either by its shard goroutine or by the coordinator while the
// shards are quiescent, never both at once. The per-shard streams merge
// deterministically at collect on the total (time, replica, recorder,
// sequence) order, producing exports byte-identical to the
// single-threaded run.
//
// The result is deterministic and — because engine event times are
// float-derived while coordinator timers tick at configured intervals, so
// cross-clock ties do not arise in practice — identical to the
// single-threaded run of the same configuration; the determinism suite
// asserts deep equality across shard counts. The one intentional
// divergence: a run that hits MaxSimTime stops sharded execution at the
// deadline instead of one event past it, so only TimedOut runs may differ.
//
// When the configuration needs no coordinator events at all — static
// replica set, round-robin routing, no migration, no sampling — arrivals
// are pre-routed onto the shard clocks at prime time and the whole run is
// one parallel drain with zero barriers.

import (
	"sort"
	"sync"
	"time"

	"repro/internal/prefixindex"
	"repro/internal/request"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ttftSample is one shard-buffered first-token observation awaiting its
// barrier merge into the shared TTFT window.
type ttftSample struct {
	at      simclock.Time
	replica int
	ttft    time.Duration
}

// shard is one replica partition: a private sub-clock plus the scratch
// state its worker goroutine owns between barriers.
type shard struct {
	id    int
	clock *simclock.Clock
	// arena batch-allocates fast-path arrival requests on the shard that
	// will serve them, keeping the hot-path allocator uncontended.
	arena request.Arena
	// ttft buffers first-token observations made by this shard's engines
	// since the last barrier (only filled when a TTFT-driven autoscale
	// policy is active).
	ttft []ttftSample
	// pubs buffers prefix-index publications emitted by this shard's
	// replicas since the last barrier; the coordinator merges them into
	// the index in (time, replica, sequence) order (index.go).
	pubs []prefixindex.Pub
}

// advance runs every shard event strictly before barrier — never past the
// deadline — then aligns the shard clock at the barrier. Runs on a worker
// goroutine when several shards have work, inline otherwise.
func (sh *shard) advance(barrier, deadline simclock.Time) {
	clk := sh.clock
	for {
		t := clk.Peek()
		if t >= barrier || t > deadline {
			break
		}
		clk.Step()
	}
	if barrier != simclock.Forever && barrier <= deadline {
		clk.AdvanceTo(barrier)
	}
}

// shardOf maps a replica id to its owning shard.
func (c *Cluster) shardOf(replica int) *shard {
	return c.shards[replica%len(c.shards)]
}

// fastShardPath reports whether the run needs no coordinator events:
// static replica set, round-robin routing (whose pick for arrival k is
// k mod replicas by construction), no migration, no sampling loop, and
// no event retention (the routed path emits arrival and route-decision
// events the fast path skips; attribution is fine — it reads only the
// replica-scoped lifecycle events the engines emit on either path).
// Arrivals then pre-route straight onto the shard clocks and the whole
// simulation is one barrier-free parallel drain.
func (c *Cluster) fastShardPath() bool {
	return len(c.shards) > 0 &&
		c.cfg.Autoscale == nil &&
		c.chaos == nil &&
		!c.cfg.Migrate &&
		c.cfg.SampleEvery == 0 &&
		!c.cfg.Obs.Events &&
		c.idx == nil &&
		c.cfg.Policy.Name() == router.NameRoundRobin
}

// primeSharded schedules the workload's arrivals directly on the shard
// clocks (fast path only). Equivalent to the routed path: round-robin
// assigns arrival k to replica k mod N, requests allocate from the owning
// shard's arena, and arrival order within a shard follows arrival id.
func (c *Cluster) primeSharded(w trace.Workload) {
	n := len(c.replicas)
	for i, it := range w.Items {
		it := it
		id := i
		rep := c.replicas[i%n]
		rep.routed++
		sh := c.shardOf(rep.id)
		sh.clock.At(it.Arrival, func(now simclock.Time) {
			r := sh.arena.New(id, now, it.PromptLen, it.OutputLen, it.Rate)
			r.Session, r.Turn = it.Session, it.Turn
			rep.eng.Inject(r, now)
		})
	}
	c.arrivalsDone = true
	for _, rep := range c.replicas {
		rep.eng.SetArrivalsDone()
	}
}

// runSharded is the sharded main loop: run shards up to each coordinator
// event, fire it, repeat; when the coordinator runs dry (or its next event
// lies past the deadline), drain the shards and stop. It reports whether
// the run timed out — sharded runs stop at the deadline rather than one
// event past it, the only behavioral difference from the legacy loop.
func (c *Cluster) runSharded(deadline simclock.Time) (timedOut bool) {
	for {
		next := c.clock.Peek()
		if next == simclock.Forever {
			c.advanceShards(simclock.Forever, deadline)
			break
		}
		if next > deadline {
			c.advanceShards(simclock.Forever, deadline)
			timedOut = true
			break
		}
		c.advanceShards(next, deadline)
		c.clock.Step()
	}
	if !timedOut {
		for _, sh := range c.shards {
			if sh.clock.Peek() != simclock.Forever {
				timedOut = true // shard work remains beyond the deadline
				break
			}
		}
	}
	// Align every drained shard clock at the cluster's final instant. In a
	// single-clock run every engine reads the same final time (an idle
	// replica's report falls back to it for its makespan); shard clocks
	// must agree or a zero-routed replica's numbers would depend on its
	// shard assignment. Shards still holding events (timed out) keep their
	// own position.
	end := c.endNow()
	for _, sh := range c.shards {
		if sh.clock.Peek() == simclock.Forever {
			sh.clock.AdvanceTo(end)
		}
	}
	return timedOut
}

// advanceShards brings every shard to the barrier: shards with runnable
// work execute it (in parallel when more than one has any — the common
// stretch between consecutive coordinator events has at most one, which
// runs inline without spawning), idle shards just align their clocks. The
// shard-buffered TTFT observations merge afterwards, on the coordinator.
func (c *Cluster) advanceShards(barrier, deadline simclock.Time) {
	busy := c.busyShards[:0]
	for _, sh := range c.shards {
		if t := sh.clock.Peek(); t < barrier && t <= deadline {
			busy = append(busy, sh)
		} else if barrier != simclock.Forever && barrier <= deadline {
			sh.clock.AdvanceTo(barrier)
		}
	}
	c.busyShards = busy
	switch len(busy) {
	case 0:
	case 1:
		busy[0].advance(barrier, deadline)
	default:
		var wg sync.WaitGroup
		wg.Add(len(busy))
		for _, sh := range busy {
			sh := sh
			go func() {
				defer wg.Done()
				sh.advance(barrier, deadline)
			}()
		}
		wg.Wait()
	}
	c.mergeTTFT()
	c.mergePubs()
}

// mergeTTFT folds the shard-local first-token observations gathered since
// the previous barrier into the shared TTFT window in deterministic
// (time, replica) order, so the control loop's P99 signal is independent
// of shard scheduling. Within one replica observations are already in
// time order, so the stable sort is a full ordering.
func (c *Cluster) mergeTTFT() {
	if c.ttftWin == nil {
		return
	}
	merged := c.ttftScratch[:0]
	for _, sh := range c.shards {
		merged = append(merged, sh.ttft...)
		sh.ttft = sh.ttft[:0]
	}
	c.ttftScratch = merged
	if len(merged) == 0 {
		return
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].at != merged[j].at {
			return merged[i].at < merged[j].at
		}
		return merged[i].replica < merged[j].replica
	})
	for _, s := range merged {
		c.ttftWin.Observe(s.at, s.ttft)
	}
}

// endNow is the final simulation instant: the coordinator clock in
// single-threaded runs, the furthest clock across coordinator and shards
// in sharded ones (a drained shard's last event can outlast the last
// coordinator event).
func (c *Cluster) endNow() simclock.Time {
	t := c.clock.Now()
	for _, sh := range c.shards {
		if n := sh.clock.Now(); n > t {
			t = n
		}
	}
	return t
}

// eventsProcessed totals fired events across every clock of the run — a
// determinism witness: a sharded run fires exactly the events of its
// single-threaded twin, just distributed over sub-clocks.
func (c *Cluster) eventsProcessed() uint64 {
	n := c.clock.Processed()
	for _, sh := range c.shards {
		n += sh.clock.Processed()
	}
	return n
}
