package cluster_test

// Sharded-vs-single-threaded equivalence: for every row of the
// determinism grid (autoscale × topology × migration), a run partitioned
// across parallel shard goroutines must produce a Result deeply identical
// to the single-threaded run of the same seed and spec — reports,
// per-request token timelines, fabric ledgers, scale events, event
// counts, everything. CI runs these under -race, so a shard touching
// state it does not own fails even when the merged result happens to
// match.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/router"
)

// TestShardedDeterminismGrid proves sharded execution is a pure
// performance change across the full grid: Shards ∈ {2, 3, 8} (8 clamps
// to the replica count) against the single-threaded baseline.
func TestShardedDeterminismGrid(t *testing.T) {
	w := sessionWorkload(t)
	for _, row := range determinismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			run := func(shards int) *cluster.Result {
				cfg, build := row.make()
				cfg.Shards = shards
				// Sampling on so the merged series and imbalance series
				// must match too, not just the end-of-run scalars.
				cfg.SampleEvery = 250 * time.Millisecond
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			single := run(0)
			for _, shards := range []int{2, 3, 8} {
				got := run(shards)
				if reflect.DeepEqual(single, got) {
					continue
				}
				switch {
				case !reflect.DeepEqual(single.Report, got.Report):
					t.Fatalf("shards=%d: reports differ:\n%+v\n%+v", shards, single.Report, got.Report)
				case !reflect.DeepEqual(single.ScaleEvents, got.ScaleEvents):
					t.Fatalf("shards=%d: scale events differ:\n%+v\n%+v", shards, single.ScaleEvents, got.ScaleEvents)
				case !reflect.DeepEqual(single.TransferClasses, got.TransferClasses):
					t.Fatalf("shards=%d: transfer ledgers differ:\n%+v\n%+v", shards, single.TransferClasses, got.TransferClasses)
				case single.EventsProcessed != got.EventsProcessed:
					t.Fatalf("shards=%d: processed %d events, single-threaded processed %d",
						shards, got.EventsProcessed, single.EventsProcessed)
				default:
					t.Fatalf("shards=%d: result diverged from single-threaded run", shards)
				}
			}
		})
	}
}

// TestShardedFastPathMatchesLegacy exercises the barrier-free fast path —
// static pool, round-robin routing, no migration, no sampling — where
// arrivals pre-route straight onto the shard clocks, and requires deep
// equality with the single-threaded routed run.
func TestShardedFastPathMatchesLegacy(t *testing.T) {
	w := sessionWorkload(t)
	run := func(shards int) *cluster.Result {
		cfg := cluster.Config{
			Replicas: 3,
			Policy:   router.NewRoundRobin(),
			Shards:   shards,
		}
		_, build := determinismGrid()[0].make()
		cl, err := cluster.New(cfg, build)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(0)
	for _, shards := range []int{2, 3} {
		if got := run(shards); !reflect.DeepEqual(single, got) {
			t.Fatalf("shards=%d: fast-path result diverged from single-threaded run", shards)
		}
	}
}

// TestShardedObsByteIdentity is the sharded-safe-recording acceptance
// gate: for every determinism-grid row, a sharded run with the full
// flight recorder on must export the exact bytes of the single-threaded
// run — the JSONL event stream, the Chrome trace, and the series CSV —
// and derive a deeply identical attribution report. Per-shard recorders
// plus the deterministic (time, replica, recorder, sequence) merge are
// what make this hold; CI runs it under -race so a shard writing a sink
// it does not own fails even when the merged bytes happen to match.
func TestShardedObsByteIdentity(t *testing.T) {
	w := sessionWorkload(t)
	type export struct {
		res    *cluster.Result
		jsonl  string
		trace  string
		csv    string
		events int
	}
	for _, row := range determinismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			run := func(shards int) export {
				cfg, build := row.make()
				cfg.Shards = shards
				cfg.SampleEvery = 250 * time.Millisecond
				cfg.Obs = obs.Options{
					Events: true, Series: true, Profile: true, Attribution: true,
					SampleEvery: 2,
				}
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				rec := res.Obs.Events
				var jsonl, trace, csv strings.Builder
				if err := rec.WriteJSONL(&jsonl); err != nil {
					t.Fatal(err)
				}
				if err := rec.WriteChromeTrace(&trace); err != nil {
					t.Fatal(err)
				}
				if err := res.Obs.Series.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				return export{res, jsonl.String(), trace.String(), csv.String(), rec.Len()}
			}
			single := run(0)
			if single.events == 0 {
				t.Fatal("single-threaded run recorded no events")
			}
			if err := cluster.CheckInvariants(single.res, w.Len()); err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 8} {
				got := run(shards)
				if got.jsonl != single.jsonl {
					t.Fatalf("shards=%d: JSONL export differs from single-threaded run", shards)
				}
				if got.trace != single.trace {
					t.Fatalf("shards=%d: Chrome trace export differs from single-threaded run", shards)
				}
				if got.csv != single.csv {
					t.Fatalf("shards=%d: series CSV export differs from single-threaded run", shards)
				}
				if !reflect.DeepEqual(got.res.Attribution, single.res.Attribution) {
					t.Fatalf("shards=%d: attribution report differs:\n%+v\n%+v",
						shards, got.res.Attribution, single.res.Attribution)
				}
				if err := cluster.CheckInvariants(got.res, w.Len()); err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
			}
		})
	}
}

// TestShardedAttributionOnFastPath: attribution alone keeps the
// barrier-free fast path (it needs no coordinator events), and its
// streaming report still matches the single-threaded run's exactly.
func TestShardedAttributionOnFastPath(t *testing.T) {
	w := sessionWorkload(t)
	run := func(shards int) *cluster.Result {
		cfg := cluster.Config{
			Replicas: 3,
			Policy:   router.NewRoundRobin(),
			Shards:   shards,
			Obs:      obs.Options{Attribution: true},
		}
		_, build := determinismGrid()[0].make()
		cl, err := cluster.New(cfg, build)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(0)
	if single.Attribution == nil || single.Attribution.Requests == 0 {
		t.Fatal("attribution-only run produced no report")
	}
	if single.Obs != nil {
		t.Fatalf("attribution-only run retained a capture: %+v", single.Obs)
	}
	for _, shards := range []int{2, 3} {
		got := run(shards)
		if !reflect.DeepEqual(single, got) {
			t.Fatalf("shards=%d: attribution-only result diverged from single-threaded run", shards)
		}
	}
}
