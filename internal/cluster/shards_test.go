package cluster_test

// Sharded-vs-single-threaded equivalence: for every row of the
// determinism grid (autoscale × topology × migration), a run partitioned
// across parallel shard goroutines must produce a Result deeply identical
// to the single-threaded run of the same seed and spec — reports,
// per-request token timelines, fabric ledgers, scale events, event
// counts, everything. CI runs these under -race, so a shard touching
// state it does not own fails even when the merged result happens to
// match.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/router"
)

// TestShardedDeterminismGrid proves sharded execution is a pure
// performance change across the full grid: Shards ∈ {2, 3, 8} (8 clamps
// to the replica count) against the single-threaded baseline.
func TestShardedDeterminismGrid(t *testing.T) {
	w := sessionWorkload(t)
	for _, row := range determinismGrid() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			run := func(shards int) *cluster.Result {
				cfg, build := row.make()
				cfg.Shards = shards
				// Sampling on so the merged series and imbalance series
				// must match too, not just the end-of-run scalars.
				cfg.SampleEvery = 250 * time.Millisecond
				cl, err := cluster.New(cfg, build)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cl.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			single := run(0)
			for _, shards := range []int{2, 3, 8} {
				got := run(shards)
				if reflect.DeepEqual(single, got) {
					continue
				}
				switch {
				case !reflect.DeepEqual(single.Report, got.Report):
					t.Fatalf("shards=%d: reports differ:\n%+v\n%+v", shards, single.Report, got.Report)
				case !reflect.DeepEqual(single.ScaleEvents, got.ScaleEvents):
					t.Fatalf("shards=%d: scale events differ:\n%+v\n%+v", shards, single.ScaleEvents, got.ScaleEvents)
				case !reflect.DeepEqual(single.TransferClasses, got.TransferClasses):
					t.Fatalf("shards=%d: transfer ledgers differ:\n%+v\n%+v", shards, single.TransferClasses, got.TransferClasses)
				case single.EventsProcessed != got.EventsProcessed:
					t.Fatalf("shards=%d: processed %d events, single-threaded processed %d",
						shards, got.EventsProcessed, single.EventsProcessed)
				default:
					t.Fatalf("shards=%d: result diverged from single-threaded run", shards)
				}
			}
		})
	}
}

// TestShardedFastPathMatchesLegacy exercises the barrier-free fast path —
// static pool, round-robin routing, no migration, no sampling — where
// arrivals pre-route straight onto the shard clocks, and requires deep
// equality with the single-threaded routed run.
func TestShardedFastPathMatchesLegacy(t *testing.T) {
	w := sessionWorkload(t)
	run := func(shards int) *cluster.Result {
		cfg := cluster.Config{
			Replicas: 3,
			Policy:   router.NewRoundRobin(),
			Shards:   shards,
		}
		_, build := determinismGrid()[0].make()
		cl, err := cluster.New(cfg, build)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(0)
	for _, shards := range []int{2, 3} {
		if got := run(shards); !reflect.DeepEqual(single, got) {
			t.Fatalf("shards=%d: fast-path result diverged from single-threaded run", shards)
		}
	}
}

// TestShardedRejectsUnshardedObsSinks pins the validation: the event bus
// and phase profiler are single-writer sinks, so sharded execution must
// refuse them up front instead of racing at runtime. The series layer is
// coordinator-driven and stays allowed.
func TestShardedRejectsUnshardedObsSinks(t *testing.T) {
	_, build := determinismGrid()[0].make()
	for _, o := range []obs.Options{{Events: true}, {Profile: true}} {
		cfg := cluster.Config{Replicas: 3, Policy: router.NewRoundRobin(), Shards: 2, Obs: o}
		if _, err := cluster.New(cfg, build); err == nil {
			t.Fatalf("Shards=2 with %+v: expected a config error, got none", o)
		}
	}
	cfg := cluster.Config{Replicas: 3, Policy: router.NewRoundRobin(), Shards: 2,
		Obs: obs.Options{Series: true}}
	if _, err := cluster.New(cfg, build); err != nil {
		t.Fatalf("Shards=2 with series-only obs should be allowed: %v", err)
	}
}
