package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// scriptPolicy replays a fixed decision per control tick (autoscaler test
// harness); unscripted ticks hold.
type scriptPolicy struct {
	decisions map[int]autoscale.Decision
	tick      int
}

func (p *scriptPolicy) Name() string { return "script" }
func (p *scriptPolicy) Decide(autoscale.Signals) autoscale.Decision {
	d := p.decisions[p.tick]
	p.tick++
	return d
}

// TestAutoscaleStaticEquality: a min=max autoscaled cluster must reproduce
// the static cluster of the same size exactly — the control loop runs but
// can never act, and its presence must not perturb the simulation.
func TestAutoscaleStaticEquality(t *testing.T) {
	w := sessionWorkload(t)
	static := runPolicy(t, 2, router.NewSessionAffinity(), w)

	cl, err := cluster.New(cluster.Config{
		Replicas: 2,
		Policy:   router.NewSessionAffinity(),
		Autoscale: &cluster.AutoscaleConfig{
			Policy: autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}),
			Min:    2, Max: 2,
		},
	}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(static.Report, scaled.Report) {
		t.Errorf("min=max autoscaled report differs from static:\nstatic: %+v\nscaled: %+v",
			static.Report, scaled.Report)
	}
	if static.Makespan != scaled.Makespan || static.PrefixHits != scaled.PrefixHits {
		t.Errorf("makespan/hits differ: %v/%d vs %v/%d",
			static.Makespan, static.PrefixHits, scaled.Makespan, scaled.PrefixHits)
	}
	if static.Imbalance != scaled.Imbalance {
		t.Errorf("imbalance differs: %v vs %v", static.Imbalance, scaled.Imbalance)
	}
	if len(scaled.ScaleEvents) != 0 {
		t.Errorf("min=max cluster logged scale events: %+v", scaled.ScaleEvents)
	}
	if scaled.GPUSeconds <= 0 {
		t.Error("autoscaled run reported no GPU-seconds")
	}
}

// TestWarmupGatesTraffic: a scripted scale-up must keep the new replica
// invisible to routing until the warm-up latency elapses.
func TestWarmupGatesTraffic(t *testing.T) {
	w := trace.Poisson("steady", 3, simclock.FromSeconds(40), trace.NormalLengths{
		PromptMean: 256, PromptStd: 32, OutputMean: 64, OutputStd: 8,
		Min: 16, Max: 2048,
	}, trace.FixedRate(0), 11)

	warmup := 10 * time.Second
	cl, err := cluster.New(cluster.Config{
		Policy: router.NewLeastQueue(),
		Autoscale: &cluster.AutoscaleConfig{
			Policy: &scriptPolicy{decisions: map[int]autoscale.Decision{2: autoscale.ScaleUp}},
			Min:    1, Max: 2, Warmup: warmup,
		},
	}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	var warmAt, activeAt simclock.Time = -1, -1
	for _, ev := range res.ScaleEvents {
		switch ev.Kind {
		case cluster.ScaleWarmup:
			warmAt = ev.At
		case cluster.ScaleActivate:
			activeAt = ev.At
		}
	}
	if warmAt < 0 || activeAt < 0 {
		t.Fatalf("missing warm-up/activate events: %+v", res.ScaleEvents)
	}
	if got := activeAt.Sub(warmAt); got != warmup {
		t.Errorf("warm-up took %v, want %v", got, warmup)
	}
	rep1 := res.PerReplica[1]
	if rep1.Routed == 0 {
		t.Fatal("scaled-up replica received no traffic after activation")
	}
	for _, r := range rep1.Result.Requests {
		if r.Arrival < activeAt {
			t.Errorf("request %d arrived at %v, before replica 1 activated at %v",
				r.ID, r.Arrival, activeAt)
		}
	}
	if res.WarmupStalls == 0 {
		t.Error("arrivals during the 10s warm-up should count as warm-up stalls")
	}
	if res.GPUSeconds >= 2*res.Makespan.Seconds() {
		t.Errorf("GPU-seconds %.1f should be under 2 replicas × makespan %.1fs",
			res.GPUSeconds, res.Makespan.Seconds())
	}
}

// TestDrainSemantics: after a scripted scale-down, no request is ever
// routed to the draining replica, its pinned prefixes migrate to the
// survivor, and the replica eventually turns off.
func TestDrainSemantics(t *testing.T) {
	// Multi-turn sessions so the drained replica holds pins when it drains.
	w := sessionWorkload(t)
	cl, err := cluster.New(cluster.Config{
		Policy: router.NewLeastQueue(),
		Autoscale: &cluster.AutoscaleConfig{
			Policy: &scriptPolicy{decisions: map[int]autoscale.Decision{20: autoscale.ScaleDown}},
			Min:    1, Max: 2, Initial: 2,
		},
	}, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Finished != w.Len() {
		t.Fatalf("finished %d/%d", res.Report.Finished, w.Len())
	}

	var drainAt, offAt simclock.Time = -1, -1
	drained := -1
	for _, ev := range res.ScaleEvents {
		switch ev.Kind {
		case cluster.ScaleDrain:
			drainAt, drained = ev.At, ev.Replica
		case cluster.ScaleOff:
			offAt = ev.At
		}
	}
	if drained < 0 {
		t.Fatalf("no drain event: %+v", res.ScaleEvents)
	}
	// The drain guarantee: every request on the drained replica arrived
	// before the drain began.
	for _, r := range res.PerReplica[drained].Result.Requests {
		if r.Arrival > drainAt {
			t.Errorf("request %d arrived at %v, after replica %d began draining at %v",
				r.ID, r.Arrival, drained, drainAt)
		}
	}
	// Pins hand off cleanly: the drained replica ends with nothing pinned,
	// and the hand-off is accounted as migrations or drops.
	if got := res.PerReplica[drained].Result.KV.PinnedPages; got != 0 {
		t.Errorf("drained replica still pins %d pages", got)
	}
	if res.DrainMigrations == 0 && res.DrainDroppedPins == 0 {
		t.Error("drain moved no pins: expected migrations or drops on a session workload")
	}
	if res.DrainMigrations > 0 {
		survivor := 1 - drained
		if res.PerReplica[survivor].Result.KV.MigratedInTokens == 0 {
			t.Error("survivor installed no migrated-in prefix tokens")
		}
	}
	if offAt < 0 {
		t.Errorf("drained replica never turned off: %+v", res.ScaleEvents)
	} else if res.PerReplica[drained].State != autoscale.Off {
		t.Errorf("drained replica final state %v, want off", res.PerReplica[drained].State)
	}
	if offAt >= 0 && offAt < drainAt {
		t.Errorf("off at %v before drain at %v", offAt, drainAt)
	}
}

// TestPrewarmSeedsWarmingReplica: a scripted scale-up with pre-warming
// ships the hottest pins onto the new replica while it warms.
func TestPrewarmSeedsWarmingReplica(t *testing.T) {
	w := sessionWorkload(t)
	run := func(prewarm bool) *cluster.Result {
		cl, err := cluster.New(cluster.Config{
			Policy: router.NewSessionAffinity(),
			Autoscale: &cluster.AutoscaleConfig{
				Policy: &scriptPolicy{decisions: map[int]autoscale.Decision{25: autoscale.ScaleUp}},
				Min:    1, Max: 2,
				Warmup:      5 * time.Second,
				Prewarm:     prewarm,
				PrewarmTopK: 4,
			},
		}, buildTokenFlow())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	warm := run(true)
	cold := run(false)

	if warm.Prewarms == 0 || warm.PrewarmedTokens == 0 {
		t.Fatalf("prewarm shipped nothing: %d migrations, %d tokens",
			warm.Prewarms, warm.PrewarmedTokens)
	}
	if cold.Prewarms != 0 {
		t.Errorf("cold run pre-warmed %d pins", cold.Prewarms)
	}
	if warm.PerReplica[1].Result.KV.MigratedInTokens == 0 {
		t.Error("warming replica installed no pre-warmed tokens")
	}
	// The pre-warmed replica should convert its seeded pins into prefix
	// hits the cold replica has to recompute.
	if wh, ch := warm.PerReplica[1].Result.PrefixHits, cold.PerReplica[1].Result.PrefixHits; wh <= ch {
		t.Errorf("pre-warmed replica hits %d <= cold replica hits %d", wh, ch)
	}
}
