package cluster_test

// The cross-subsystem invariant suite: after any run — every
// experiment-shaped spec plus a seeded random sweep — the conservation
// laws of CheckInvariants must hold: fabric bytes match kvcache bytes per
// class, pins never outgrow pools, GPU-seconds equal the replica-count
// integral, and every admitted request appears exactly once.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/router"
)

// experimentSpecs mirrors the shapes the experiment suite runs — static
// scaling, heterogeneous migration, autoscaling with pre-warm, shared-NIC
// fabric, cost-model migration, scale-to-zero with every policy
// generation — as (name, Config, BuildEngine) rows over the shared
// session workload.
func experimentSpecs() []struct {
	name  string
	cfg   cluster.Config
	build cluster.BuildEngine
} {
	asCfg := func(pol autoscale.Policy, scaleToZero, prewarm bool) *cluster.AutoscaleConfig {
		return &cluster.AutoscaleConfig{
			Policy:      pol,
			Max:         3,
			Warmup:      2 * time.Second,
			Prewarm:     prewarm,
			ScaleToZero: scaleToZero,
		}
	}
	return []struct {
		name  string
		cfg   cluster.Config
		build cluster.BuildEngine
	}{
		{"static-4x-affinity", cluster.Config{
			Replicas: 4, Policy: router.NewSessionAffinity(),
		}, buildTokenFlow()},
		{"hetero-migrate", cluster.Config{
			Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
		}, buildHetero()},
		{"hetero-migrate-cost-shared-nic", cluster.Config{
			Replicas: 3, Policy: router.NewSessionAffinity(), Migrate: true,
			MigrationPolicy: cluster.MigrateCost,
			Topology:        &fabric.Spec{Kind: fabric.SharedNIC, LinkGBps: 1},
		}, buildHetero()},
		{"autoscale-queue-pressure-prewarm", cluster.Config{
			Replicas: 3, Policy: router.NewSessionAffinity(),
			Autoscale: asCfg(autoscale.NewQueuePressure(autoscale.QueuePressureConfig{}), false, true),
		}, buildTokenFlow()},
		{"autoscale-kv-utilization", cluster.Config{
			Replicas: 3, Policy: router.NewLeastQueue(),
			Autoscale: asCfg(autoscale.NewKVUtilization(autoscale.KVUtilizationConfig{}), false, false),
		}, buildTokenFlow()},
		{"autoscale-slo-target-scale-to-zero", cluster.Config{
			Replicas: 3, Policy: router.NewSessionAffinity(),
			Autoscale: asCfg(autoscale.NewSLOTarget(autoscale.SLOTargetConfig{}), true, true),
		}, buildTokenFlow()},
		{"autoscale-predictive-scale-to-zero", cluster.Config{
			Replicas: 3, Policy: router.NewLeastQueue(),
			Autoscale: asCfg(autoscale.NewPredictive(autoscale.PredictiveConfig{}), true, false),
		}, buildTokenFlow()},
		{"migrate-shared-nic-switch", cluster.Config{
			Replicas: 4, Policy: router.NewSessionAffinity(), Migrate: true,
			Topology: &fabric.Spec{Kind: fabric.SharedNIC, LinkGBps: 2, SwitchGBps: 4},
		}, buildTokenFlow()},
	}
}

// TestInvariantsOnExperimentSpecs runs the conservation laws over every
// experiment-shaped spec.
func TestInvariantsOnExperimentSpecs(t *testing.T) {
	w := sessionWorkload(t)
	for _, spec := range experimentSpecs() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			// Events on: the suite also checks law 5 (event reconciliation)
			// and law 6 (exact latency attribution); Attribution on so the
			// streaming report is cross-checked against the derived spans.
			spec.cfg.Obs = obs.Options{Events: true, Attribution: true}
			cl, err := cluster.New(spec.cfg, spec.build)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if res.TimedOut {
				t.Fatal("run timed out")
			}
			if err := cluster.CheckInvariants(res, w.Len()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestInvariantsOnRandomSpecs sweeps seeded random scenarios through the
// same laws — the testing/quick-style net under the whole configuration
// space. A failure reproduces from the printed seed alone.
func TestInvariantsOnRandomSpecs(t *testing.T) {
	const scenarios = 24
	for seed := int64(0); seed < scenarios; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			sc := cluster.RandomScenario(rand.New(rand.NewSource(seed)))
			sc.Config.Obs = obs.Options{Events: true, Attribution: true}
			cl, err := cluster.New(sc.Config, sc.Build)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := cl.Run(sc.Workload)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.TimedOut {
				t.Fatalf("seed %d: run timed out", seed)
			}
			if err := cluster.CheckInvariants(res, sc.Workload.Len()); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestInvariantCatchesViolation sanity-checks the checker itself: a
// corrupted result must fail, or the whole suite is vacuous.
func TestInvariantCatchesViolation(t *testing.T) {
	w := sessionWorkload(t)
	res := runPolicy(t, 2, router.NewSessionAffinity(), w)
	if err := cluster.CheckInvariants(res, w.Len()); err != nil {
		t.Fatalf("clean run violates invariants: %v", err)
	}
	res.GPUSeconds += 1
	if err := cluster.CheckInvariants(res, w.Len()); err == nil {
		t.Error("corrupted GPU-seconds passed the invariant check")
	}
	res.GPUSeconds -= 1
	res.Requests = res.Requests[1:]
	if err := cluster.CheckInvariants(res, w.Len()); err == nil {
		t.Error("dropped request passed the invariant check")
	}

	// The attribution law must also bite: a recorded run whose streaming
	// report disagrees with the derived spans fails law 6.
	cfg := cluster.Config{
		Replicas: 2, Policy: router.NewSessionAffinity(),
		Obs: obs.Options{Events: true, Attribution: true},
	}
	cl, err := cluster.New(cfg, buildTokenFlow())
	if err != nil {
		t.Fatal(err)
	}
	ores, err := cl.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckInvariants(ores, w.Len()); err != nil {
		t.Fatalf("clean recorded run violates invariants: %v", err)
	}
	ores.Attribution.Requests++
	if err := cluster.CheckInvariants(ores, w.Len()); err == nil {
		t.Error("corrupted attribution request count passed the invariant check")
	}
}
