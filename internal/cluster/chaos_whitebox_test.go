package cluster

// White-box chaos recovery edge cases at the exact instants the
// machinery must get right: a crash or link flap landing while a pin
// transfer is on the wire, and the sole holder of a session's pin dying
// with and without a surviving host mirror. These drive the coordinator
// clock by hand (contention_test.go style) so the fault can be placed
// mid-transfer deterministically.

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/simclock"
)

// buildSmallHost is buildSmall with the host-tier prefix cache enabled
// (mirrors are host-side, so the repin tests need it).
func buildSmallHost(_ int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error) {
	kv := engine.TokenFlowKVPolicy()
	kv.HostCache = true
	return engine.New(engine.Config{
		GPU:         gpu.RTX4090,
		Model:       model.Llama3_8B,
		MemFraction: 0.9,
		Scheduler:   core.MustNew(core.DefaultConfig()),
		KV:          kv,
		Clock:       clock,
		Fabric:      ep,
	})
}

// chaosTransferCluster builds a 3-replica cluster on a slow shared NIC
// (a 1024-token pin takes ~2.7s on the wire) with the given fault plan,
// installs a pin for session 1 on replica 0, and books one pin transfer
// 0 → target at t=0 so the scripted fault lands mid-flight.
func chaosTransferCluster(t *testing.T, spec *chaos.Spec, target int, class fabric.Class) *Cluster {
	t.Helper()
	c, err := New(Config{
		Replicas: 3,
		Policy:   router.NewRoundRobin(),
		Migrate:  true,
		Topology: &fabric.Spec{Kind: fabric.SharedNIC, LinkGBps: 0.05},
		Chaos:    spec,
	}, buildSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !c.replicas[0].eng.InstallMigratedPrefix(1, 1024, 0) {
		t.Fatal("installing pin failed")
	}
	var count int64
	if !c.migratePin(c.replicas[0], c.replicas[target], 1, class, 0, &count, nil, nil, nil) {
		t.Fatal("pin transfer did not start")
	}
	if len(c.chaos.flights) != 1 {
		t.Fatalf("flight registry has %d entries, want 1", len(c.chaos.flights))
	}
	c.scheduleChaos()
	return c
}

// TestChaosCrashAbortsDrainHandoff: the donor of a drain hand-off dies at
// t=1s while the pin is still on the wire. The transfer must tear down —
// completion cancelled, gating unwound — and the pin lands nowhere: the
// donor's copy died with it and the target's never arrived.
func TestChaosCrashAbortsDrainHandoff(t *testing.T) {
	c := chaosTransferCluster(t, &chaos.Spec{
		Faults: []chaos.Fault{{Kind: chaos.Crash, At: simclock.FromSeconds(1), Replica: 0}},
	}, 2, fabric.ClassDrain)
	for c.clock.Step() {
	}
	if !c.replicas[0].eng.Crashed() {
		t.Fatal("donor did not crash")
	}
	if c.chaos.crashes != 1 || c.chaos.migrationsAborted != 1 {
		t.Errorf("crashes=%d aborted=%d, want 1/1", c.chaos.crashes, c.chaos.migrationsAborted)
	}
	if len(c.chaos.flights) != 0 {
		t.Errorf("flight registry still holds %d entries", len(c.chaos.flights))
	}
	if got := c.replicas[2].eng.CachedPrefixTokens(1); got != 0 {
		t.Errorf("aborted hand-off landed %d tokens on the target", got)
	}
	if c.migrationsInFlight != 0 {
		t.Errorf("migrationsInFlight=%d after abort", c.migrationsInFlight)
	}
}

// TestChaosLinkFlapAbortsMidMigration: the 0-1 pair goes dark at t=1s
// with a pre-warm transfer on the wire. The transfer aborts but the donor
// survives, so it un-stakes and keeps its pin; while the window is open
// new transfers across the pair are declined, and after recovery the
// link books again.
func TestChaosLinkFlapAbortsMidMigration(t *testing.T) {
	c := chaosTransferCluster(t, &chaos.Spec{
		Faults: []chaos.Fault{{Kind: chaos.LinkFlap, At: simclock.FromSeconds(1),
			From: 0, To: 1, Duration: simclock.Duration(10)}},
	}, 1, fabric.ClassPrewarm)

	// Step to the flap, then probe mid-window before recovery runs.
	for len(c.chaos.linkDown) == 0 && c.clock.Step() {
	}
	now := c.clock.Now()
	if c.chaos.linkFlaps != 1 || c.chaos.migrationsAborted != 1 {
		t.Fatalf("flaps=%d aborted=%d, want 1/1", c.chaos.linkFlaps, c.chaos.migrationsAborted)
	}
	if c.linkUp(0, 1, now) || c.linkUp(1, 0, now) {
		t.Error("downed pair reports up mid-window")
	}
	if got := c.replicas[0].eng.CachedPrefixTokens(1); got != 1024 {
		t.Errorf("surviving donor lost its pin: %d tokens", got)
	}
	var count int64
	if c.migratePin(c.replicas[0], c.replicas[1], 1, fabric.ClassPrewarm, now, &count, nil, nil, nil) {
		t.Error("new transfer booked across a downed pair")
	}
	if c.linkUp(0, 2, now) {
		// Pairs not named by the flap stay usable.
	} else {
		t.Error("unrelated pair 0-2 reports down")
	}

	for c.clock.Step() {
	}
	if len(c.chaos.linkDown) != 0 {
		t.Error("link still down after recovery")
	}
	if !c.linkUp(0, 1, c.clock.Now()) {
		t.Error("recovered pair reports down")
	}
	if got := c.replicas[1].eng.CachedPrefixTokens(1); got != 0 {
		t.Errorf("aborted pre-warm landed %d tokens on the target", got)
	}
}

// TestChaosSolePinHolderCrash: replica 0 is the only holder of session
// 7's pin. With a surviving host mirror on replica 1 the crash triggers
// a repin — the mirror restores the device copy over the replicate
// class. Without one, the pin is simply gone: no repin, no survivor copy.
func TestChaosSolePinHolderCrash(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mirror bool
	}{
		{"with-host-mirror", true},
		{"without-host-mirror", false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(Config{
				Replicas: 2,
				Policy:   router.NewRoundRobin(),
				Chaos: &chaos.Spec{
					Faults: []chaos.Fault{{Kind: chaos.Crash, At: simclock.FromSeconds(1), Replica: 0}},
				},
			}, buildSmallHost)
			if err != nil {
				t.Fatal(err)
			}
			if !c.replicas[0].eng.InstallMigratedPrefix(7, 1024, 0) {
				t.Fatal("installing pin failed")
			}
			if tc.mirror {
				if !c.replicas[1].eng.AdoptHostMirror(7, 1024, 0) {
					t.Fatal("adopting host mirror failed")
				}
			}
			c.scheduleChaos()
			for c.clock.Step() {
			}
			if !c.replicas[0].eng.Crashed() {
				t.Fatal("replica 0 did not crash")
			}
			got := c.replicas[1].eng.CachedPrefixTokens(7)
			if tc.mirror {
				if got != 1024 {
					t.Errorf("repin restored %d tokens on the survivor, want 1024", got)
				}
				if c.chaos.replications != 1 || c.chaos.replicatedBytes == 0 {
					t.Errorf("repins=%d bytes=%d, want one repin with bytes",
						c.chaos.replications, c.chaos.replicatedBytes)
				}
			} else {
				if got != 0 {
					t.Errorf("survivor conjured %d pinned tokens from nowhere", got)
				}
				if c.chaos.replications != 0 {
					t.Errorf("repins=%d without any mirror", c.chaos.replications)
				}
			}
			if c.chaos.replicationsInFlight != 0 {
				t.Errorf("replicationsInFlight=%d after drain", c.chaos.replicationsInFlight)
			}
		})
	}
}
