// Package cluster simulates a multi-replica serving deployment: N engine
// replicas — possibly heterogeneous (mixed GPUs, pool sizes, compute
// costs; the BuildEngine callback decides per index) — sharing one virtual
// clock, fronted by a pluggable routing policy (internal/router) that
// assigns each arriving request to a replica at its arrival instant.
// Per-replica results are aggregated into a cluster-level report with
// merged TTFT percentiles, total throughput, QoS, and load-imbalance
// statistics (end-of-run and per-sample-tick).
//
// With migration enabled the replicas are joined by an interconnect link
// mesh: when the routing policy steers a multi-turn request away from the
// replica holding its pinned prefix KV (typically because that replica is
// overloaded), the cluster ships the pinned pages to the chosen replica
// over the mesh instead of letting it recompute them. The request is
// delivered when its KV arrives, so migration latency is on the virtual
// clock and inside the request's TTFT.
//
// A single-replica cluster with round-robin routing reduces exactly to the
// single-device engine.Run path: same clock, same admission sequence, same
// metrics — byte for byte.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/request"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Config describes the cluster topology and routing.
type Config struct {
	// Replicas is the number of engine replicas (default 1).
	Replicas int

	// Policy routes arriving requests to replicas. Required; one policy
	// instance serves one run (policies may keep state).
	Policy router.Policy

	// SampleEvery enables cluster-wide queued/running time-series sampling
	// (per replica plus the merged series and the imbalance series); zero
	// disables it.
	SampleEvery time.Duration

	// MaxSimTime aborts runaway simulations (default 4 simulated hours).
	MaxSimTime time.Duration

	// Migrate enables cross-replica KV migration: when the policy routes a
	// session away from the replica pinning its prefix, the pinned pages
	// ship over the interconnect mesh instead of being recomputed.
	Migrate bool

	// InterconnectGBps is the per-directed-pair bandwidth of the replica
	// interconnect mesh (default 25, RDMA-class).
	InterconnectGBps float64
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 4 * time.Hour
	}
	if c.InterconnectGBps == 0 {
		c.InterconnectGBps = 25
	}
	return c
}

// BuildEngine constructs replica i's engine on the shared clock. Each call
// must return a fresh engine with a fresh scheduler (schedulers are
// stateful). The engine must not enable its own SampleEvery: the cluster
// drives sampling.
type BuildEngine func(replica int, clock *simclock.Clock) (*engine.Engine, error)

// replica pairs an engine with its routing bookkeeping; it implements
// router.Replica.
type replica struct {
	id     int
	eng    *engine.Engine
	routed int
}

func (r *replica) ID() int                            { return r.id }
func (r *replica) QueueDepth() int                    { return r.eng.OutstandingRequests() }
func (r *replica) FreeKVPages() int                   { return r.eng.FreeKVPages() }
func (r *replica) TotalKVPages() int                  { return r.eng.TotalKVPages() }
func (r *replica) FreeKVTokens() int                  { return r.eng.FreeKVTokens() }
func (r *replica) CachedPrefixTokens(session int) int { return r.eng.CachedPrefixTokens(session) }

// ReplicaStats reports one replica's share of a finished run.
type ReplicaStats struct {
	ID int
	// Routed counts requests the policy assigned to this replica.
	Routed int
	// Result is the replica's own engine result (its report covers only
	// the requests it served).
	Result *engine.Result
}

// Result is the outcome of one cluster run.
type Result struct {
	Policy   string
	Replicas int

	// Report merges every replica's requests into one cluster-level
	// analysis: TTFT percentiles, throughput, effective throughput, and
	// QoS over the whole population.
	Report metrics.Report

	// Samples is the merged queued/running time series (sums across
	// replicas at each tick).
	Samples []request.Sample

	// Makespan is the time of the cluster's last generated token.
	Makespan time.Duration

	// TimedOut is set when the run hit MaxSimTime before completing.
	TimedOut bool

	// Imbalance is the peak-to-mean ratio of per-replica generated output
	// tokens (1.0 = perfectly balanced).
	Imbalance float64

	// ImbalanceSeries samples the per-replica load imbalance over time:
	// at each sampling tick, the peak-to-mean ratio of outstanding
	// (queued + running) requests across replicas. Empty when sampling is
	// disabled.
	ImbalanceSeries []ImbalancePoint

	// Migrations counts cross-replica prefix migrations the cluster
	// performed; MigratedTokens the KV tokens shipped over the mesh;
	// MigrationDrops the installs the target replica had to reject for
	// lack of memory.
	Migrations     int64
	MigratedTokens int64
	MigrationDrops int64

	// PrefixHits and PrefixHitTokens total the session prefix-cache hits
	// across replicas (the reuse affinity routing preserved).
	PrefixHits      int64
	PrefixHitTokens int64

	// PerReplica lists each replica's stats in replica order.
	PerReplica []ReplicaStats

	// Requests holds every request across replicas, ordered by ID.
	Requests []*request.Request
}

// ImbalancePoint is one sample of the per-replica load imbalance.
type ImbalancePoint struct {
	At simclock.Time
	// Value is the peak-to-mean ratio of per-replica outstanding requests
	// at the instant (1.0 = perfectly balanced or idle).
	Value float64
}

// Cluster is a primed multi-replica simulation.
type Cluster struct {
	cfg          Config
	clock        *simclock.Clock
	replicas     []*replica
	views        []router.Replica
	arrivalsDone bool

	// ic is the interconnect mesh: ic[i][j] carries prefix KV from
	// replica i to replica j (nil on the diagonal; built only when
	// migration is enabled).
	ic [][]*gpu.Link

	migrationsInFlight int
	migrations         int64
	migratedTokens     int64
	migrationDrops     int64
}

// New builds a cluster of cfg.Replicas engines on one shared clock.
func New(cfg Config, build BuildEngine) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replica count %d must be >= 1", cfg.Replicas)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: nil routing policy")
	}
	if build == nil {
		return nil, fmt.Errorf("cluster: nil engine builder")
	}
	c := &Cluster{cfg: cfg, clock: simclock.New()}
	for i := 0; i < cfg.Replicas; i++ {
		eng, err := build(i, c.clock)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		rep := &replica{id: i, eng: eng}
		c.replicas = append(c.replicas, rep)
		c.views = append(c.views, rep)
	}
	if cfg.Migrate {
		c.ic = make([][]*gpu.Link, cfg.Replicas)
		for i := range c.ic {
			c.ic[i] = make([]*gpu.Link, cfg.Replicas)
			for j := range c.ic[i] {
				if i != j {
					c.ic[i][j] = gpu.NewLink(fmt.Sprintf("ic-%d-%d", i, j),
						cfg.InterconnectGBps*1e9)
				}
			}
		}
	}
	return c, nil
}

// Run simulates the workload across the cluster to completion.
func (c *Cluster) Run(w trace.Workload) (*Result, error) {
	// Every request must individually fit every replica: in a
	// heterogeneous pool any policy may route any request anywhere, so the
	// smallest replica bounds admissible request sizes.
	for _, rep := range c.replicas {
		if err := rep.eng.ValidateWorkload(w); err != nil {
			return nil, fmt.Errorf("replica %d: %w", rep.id, err)
		}
	}

	// Arrivals: the routing decision happens at the arrival instant, when
	// the policy sees live replica state.
	for i, it := range w.Items {
		it := it
		id := i
		c.clock.At(it.Arrival, func(now simclock.Time) {
			rep := c.replicas[c.route(id, it)]
			rep.routed++
			r := request.New(id, now, it.PromptLen, it.OutputLen, it.Rate)
			r.Session, r.Turn = it.Session, it.Turn
			if id == w.Len()-1 {
				c.arrivalsDone = true
				for _, rp := range c.replicas {
					rp.eng.SetArrivalsDone()
				}
			}
			if c.maybeMigrate(r, it, rep, now) {
				return // Inject happens when the KV arrives.
			}
			rep.eng.Inject(r, now)
		})
	}

	if c.cfg.SampleEvery > 0 {
		var sample func(now simclock.Time)
		sample = func(now simclock.Time) {
			for _, rep := range c.replicas {
				rep.eng.Sample(now)
			}
			if !c.done() {
				c.clock.After(c.cfg.SampleEvery, sample)
			}
		}
		c.clock.At(0, sample)
	}

	timedOut := false
	deadline := simclock.Time(c.cfg.MaxSimTime)
	for c.clock.Step() {
		if c.clock.Now() > deadline {
			timedOut = true
			break
		}
	}
	return c.collect(timedOut), nil
}

// route asks the policy for a replica index, guarding against out-of-range
// picks (a policy bug would otherwise panic deep in the event loop).
func (c *Cluster) route(id int, it trace.Item) int {
	pick := c.cfg.Policy.Pick(router.Request{
		ID:        id,
		Session:   it.Session,
		Turn:      it.Turn,
		PromptLen: it.PromptLen,
		OutputLen: it.OutputLen,
	}, c.views)
	if pick < 0 || pick >= len(c.replicas) {
		panic(fmt.Sprintf("cluster: policy %s picked replica %d of %d",
			c.cfg.Policy.Name(), pick, len(c.replicas)))
	}
	return pick
}

// maybeMigrate ships a session's pinned prefix KV to the routed replica
// when a different replica holds it: the donor's pages travel the
// interconnect mesh and the request is delivered with its KV, so the
// transfer is on the clock and inside the request's TTFT. It reports
// whether a migration was started (and the inject deferred).
func (c *Cluster) maybeMigrate(r *request.Request, it trace.Item, target *replica, now simclock.Time) bool {
	if c.ic == nil || it.Session == 0 {
		return false
	}
	// The donor is the replica pinning the most of this session's prefix —
	// but only a strictly extendable prefix (smaller than the prompt) is
	// worth shipping, and only if it beats what the target already holds.
	donor, best := -1, target.eng.CachedPrefixTokens(it.Session)
	for _, rep := range c.replicas {
		if rep == target {
			continue
		}
		if t := rep.eng.CachedPrefixTokens(it.Session); t > best && t < it.PromptLen {
			donor, best = rep.id, t
		}
	}
	if donor < 0 {
		return false
	}
	tokens, bytes, ok := c.replicas[donor].eng.BeginPrefixMigration(it.Session)
	if !ok {
		return false
	}
	c.migrations++
	c.migratedTokens += int64(tokens)
	c.migrationsInFlight++
	_, done := c.ic[donor][target.id].Enqueue(now, bytes)
	c.clock.At(done, func(t simclock.Time) {
		c.replicas[donor].eng.CompletePrefixMigration(it.Session, t)
		if !target.eng.InstallMigratedPrefix(it.Session, tokens, t) {
			c.migrationDrops++
		}
		c.migrationsInFlight--
		target.eng.Inject(r, t)
	})
	return true
}

// done reports whether all arrivals were injected (including requests
// waiting on an in-flight KV migration) and every replica drained its
// share (a replica routed zero requests counts as drained).
func (c *Cluster) done() bool {
	if !c.arrivalsDone || c.migrationsInFlight > 0 {
		return false
	}
	for _, rep := range c.replicas {
		if rep.eng.OutstandingRequests() > 0 {
			return false
		}
	}
	return true
}

// collect tears down every replica and assembles the cluster result.
func (c *Cluster) collect(timedOut bool) *Result {
	res := &Result{
		Policy:   c.cfg.Policy.Name(),
		Replicas: len(c.replicas),
		TimedOut: timedOut,
	}
	loads := make([]float64, len(c.replicas))
	for i, rep := range c.replicas {
		if timedOut {
			rep.eng.MarkTimedOut()
		}
		er := rep.eng.Collect()
		res.PerReplica = append(res.PerReplica, ReplicaStats{ID: rep.id, Routed: rep.routed, Result: er})
		res.Requests = append(res.Requests, er.Requests...)
		res.PrefixHits += er.PrefixHits
		res.PrefixHitTokens += er.PrefixHitTokens
		loads[i] = float64(er.Report.TotalOut)
	}
	sort.SliceStable(res.Requests, func(i, j int) bool { return res.Requests[i].ID < res.Requests[j].ID })

	// Cluster makespan: the last generated token across replicas, falling
	// back to the final clock reading for degenerate runs — the same rule
	// the engine applies to its own population.
	var makespan simclock.Time
	for _, r := range res.Requests {
		if r.FinishedAt > makespan {
			makespan = r.FinishedAt
		}
		if r.Generated > 0 && r.TokenTimes[len(r.TokenTimes)-1] > makespan {
			makespan = r.TokenTimes[len(r.TokenTimes)-1]
		}
	}
	if makespan == 0 {
		makespan = c.clock.Now()
	}
	res.Makespan = time.Duration(makespan)
	res.Report = metrics.Analyze(res.Requests, makespan, c.replicas[0].eng.QoSParams())
	res.Imbalance = metrics.Imbalance(loads)
	res.Samples = mergeSamples(res.PerReplica)
	res.ImbalanceSeries = imbalanceSeries(res.PerReplica)
	res.Migrations = c.migrations
	res.MigratedTokens = c.migratedTokens
	res.MigrationDrops = c.migrationDrops
	return res
}

// imbalanceSeries computes, per sampling tick, the peak-to-mean ratio of
// per-replica outstanding (queued + running) requests — the over-time view
// of the end-of-run Imbalance scalar.
func imbalanceSeries(per []ReplicaStats) []ImbalancePoint {
	if len(per) == 0 || len(per[0].Result.Samples) == 0 {
		return nil
	}
	n := len(per[0].Result.Samples)
	out := make([]ImbalancePoint, 0, n)
	loads := make([]float64, len(per))
	for i := 0; i < n; i++ {
		at := per[0].Result.Samples[i].At
		for j, rs := range per {
			loads[j] = 0
			if i < len(rs.Result.Samples) {
				s := rs.Result.Samples[i]
				loads[j] = float64(s.Queued + s.Running)
			}
		}
		out = append(out, ImbalancePoint{At: at, Value: metrics.Imbalance(loads)})
	}
	return out
}

// mergeSamples sums the per-replica queued/running series tick by tick.
// Replicas sample at identical instants (the cluster drives them), so the
// series align by index.
func mergeSamples(per []ReplicaStats) []request.Sample {
	var out []request.Sample
	for _, rs := range per {
		for i, s := range rs.Result.Samples {
			if i == len(out) {
				out = append(out, request.Sample{At: s.At})
			}
			out[i].Queued += s.Queued
			out[i].Running += s.Running
		}
	}
	return out
}
