// Package cluster simulates a multi-replica serving deployment: N engine
// replicas — possibly heterogeneous (mixed GPUs, pool sizes, compute
// costs; the BuildEngine callback decides per index) — sharing one virtual
// clock, fronted by a pluggable routing policy (internal/router) that
// assigns each arriving request to a replica at its arrival instant.
// Per-replica results are aggregated into a cluster-level report with
// merged TTFT percentiles, total throughput, QoS, and load-imbalance
// statistics (end-of-run and per-sample-tick).
//
// Every KV byte the cluster moves — write-through sync, evictions, loads,
// host-tier reloads, routing migrations, pre-warm, drain hand-off — is
// booked on one transfer fabric (internal/fabric): a topology of named
// links covering each replica's host PCIe pair and the replica
// interconnect. The interconnect is either a full mesh of dedicated
// per-pair links (the default, equivalent to earlier revisions) or shared
// per-replica NIC uplinks behind an optional switch, where concurrent
// transfers that share an endpoint serialize.
//
// With migration enabled, when the routing policy steers a multi-turn
// request away from the replica holding its pinned prefix KV (typically
// because that replica is overloaded), the cluster ships the pinned pages
// to the chosen replica over the fabric instead of letting it recompute
// them. The request is delivered when its KV arrives, so migration latency
// is on the virtual clock and inside the request's TTFT. Under
// MigrateCost the cluster first weighs the queued transfer time on the
// real topology against the target's estimated prefix recompute time and
// skips the migration when the wire loses.
//
// With autoscaling enabled (Config.Autoscale) the replica set is dynamic:
// a control loop on the same virtual clock drives replicas between off,
// warming, active, and draining states under a pluggable policy (see
// internal/autoscale and lifecycle.go). Routing only ever sees active
// replicas; scale-up pays a warm-up latency, optionally overlapped with
// pre-warming the hottest pinned prefixes over the interconnect; scale-down
// drains a replica and hands its pins to the survivors.
//
// A single-replica cluster with round-robin routing reduces exactly to the
// single-device engine.Run path: same clock, same admission sequence, same
// metrics — byte for byte. Likewise a min=max autoscaled cluster reduces
// exactly to the static cluster of the same size.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/attribution"
	"repro/internal/prefixindex"
	"repro/internal/request"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Config describes the cluster topology and routing.
type Config struct {
	// Replicas is the number of engine replicas (default 1).
	Replicas int

	// Policy routes arriving requests to replicas. Required; one policy
	// instance serves one run (policies may keep state).
	Policy router.Policy

	// SampleEvery enables cluster-wide queued/running time-series sampling
	// (per replica plus the merged series and the imbalance series); zero
	// disables it.
	SampleEvery time.Duration

	// Shards partitions the replicas across parallel worker goroutines
	// (see shards.go): replica i runs its engine events on the sub-clock
	// of shard i mod Shards, synchronized with the coordinator clock at
	// every cross-replica event. 0 or 1 keeps the single-threaded loop.
	// Results are identical either way (the determinism suite asserts deep
	// equality), except that a sharded run which hits MaxSimTime stops at
	// the deadline instead of one event past it. Clamped to Replicas.
	// The flight recorder is sharded-safe: each shard records onto its own
	// recorder and profiler, emissions route by the event's replica, and
	// the streams merge deterministically at collect — event and trace
	// exports are byte-identical to the single-threaded run.
	Shards int

	// MaxSimTime aborts runaway simulations (default 4 simulated hours).
	MaxSimTime time.Duration

	// Migrate enables cross-replica KV migration: when the policy routes a
	// session away from the replica pinning its prefix, the pinned pages
	// ship over the interconnect instead of being recomputed.
	Migrate bool

	// MigrationPolicy selects how migrations are committed: MigrateAlways
	// (the default) ships whenever a divert finds a better donor, while
	// MigrateCost first compares the queued transfer time on the real
	// topology against the target's estimated prefix recompute time and
	// declines when the wire loses.
	MigrationPolicy MigrationPolicy

	// InterconnectGBps is the interconnect link bandwidth in GB/s (default
	// 25, RDMA-class): per directed pair under the default full mesh, per
	// NIC direction under a shared-NIC Topology.
	InterconnectGBps float64

	// Topology selects the interconnect layout. Nil selects the full mesh
	// of dedicated per-pair links at InterconnectGBps — the configuration
	// earlier revisions hard-coded, under which no two transfers between
	// different replica pairs ever contend.
	Topology *fabric.Spec

	// Autoscale enables the dynamic replica lifecycle: the cluster builds
	// Autoscale.Max replicas (overriding Replicas) and a control loop
	// grows and shrinks the active set. Nil keeps the static pool. The
	// interconnect mesh is always built under autoscaling (pre-warm and
	// drain hand-off use it) even when Migrate is off.
	Autoscale *AutoscaleConfig

	// PrefixIndex enables the event-published global prefix index
	// (internal/prefixindex): replicas publish KV lifecycle events and
	// load signals, and the gateway maintains the eventually-consistent
	// session → holder map plus load digests that indexed routing policies
	// read in O(1). Nil disables the index — unless the Policy routes
	// against one (router.IndexBinder), in which case the degenerate
	// synchronous spec is assumed and the index mirrors live state
	// exactly. The migration donor scan also reads the index when present.
	PrefixIndex *prefixindex.Spec

	// Obs selects the flight-recorder layers (internal/obs): lifecycle
	// events, per-tick telemetry series, phase self-profiling, and
	// streaming latency attribution (internal/obs/attribution — the
	// per-request span decomposition behind Result.Attribution, recorded
	// through bounded-memory sketches so it scales to runs too large to
	// retain events). The zero value disables everything and the run is
	// byte-identical to a cluster without the recorder. Series sampling
	// rides the SampleEvery loop (per replica) and the control loop
	// (autoscale signals), so series stay empty unless those loops run.
	Obs obs.Options

	// Chaos injects faults — replica crashes, brownouts, link flaps — on
	// the virtual clock, with gateway-driven recovery (internal/chaos and
	// chaos.go). Nil, or a spec with no faults and no redundancy, leaves
	// the run byte-identical to a cluster without the field.
	Chaos *chaos.Spec
}

// AutoscaleConfig parameterizes the cluster's dynamic replica lifecycle.
type AutoscaleConfig struct {
	// Policy decides per-tick scale actions. Required; one instance
	// serves one run (policies keep hysteresis state).
	Policy autoscale.Policy

	// Min and Max bound the in-service replica set (defaults 1 and the
	// Config's Replicas). Initial is the active count at t=0 (default
	// Min).
	Min, Max, Initial int

	// ScaleToZero forces Min to 0 and fronts the cluster with a gateway
	// queue: arrivals while no replica is active are buffered (bounded by
	// GatewayDepth, excess shed), trigger a cold-start scale-up, and drain
	// FIFO into the first replica that warms — with the whole buffered
	// wait inside their TTFT.
	ScaleToZero bool

	// GatewayDepth bounds the scale-to-zero gateway buffer (default 512).
	// Negative means zero capacity: every arrival at zero active replicas
	// sheds, though each still triggers the cold start.
	GatewayDepth int

	// P99Window is the observation horizon of the windowed P99 TTFT fed
	// to latency-driven policies (default metrics.DefaultTTFTWindow).
	P99Window time.Duration

	// Warmup is the latency a scale-up pays before the new replica
	// accepts traffic — model load plus allocator init (default 8s).
	Warmup time.Duration

	// ControlEvery is the control-loop tick (default 1s).
	ControlEvery time.Duration

	// Prewarm overlaps each warm-up with KV pre-warming: the hottest
	// pinned session prefixes of the active replicas migrate to the
	// warming replica over the interconnect, so its first requests hit
	// the prefix cache instead of recomputing.
	Prewarm bool

	// PrewarmTopK caps the pins shipped per pre-warm (default 8).
	PrewarmTopK int
}

func (a *AutoscaleConfig) withDefaults(replicas int) *AutoscaleConfig {
	out := *a
	if out.ScaleToZero {
		out.Min = 0
	} else if out.Min == 0 {
		out.Min = 1
	}
	if out.Max == 0 {
		out.Max = replicas
	}
	if out.Max < out.Min {
		out.Max = out.Min
	}
	if out.Max < 1 {
		out.Max = 1
	}
	if out.Initial == 0 {
		out.Initial = out.Min
	}
	if out.GatewayDepth == 0 {
		out.GatewayDepth = 512
	}
	if out.Warmup == 0 {
		out.Warmup = 8 * time.Second
	} else if out.Warmup < 0 {
		out.Warmup = 0 // negative means "free warm-up", not a clock error
	}
	// The control loop reschedules itself every ControlEvery; zero or
	// negative would spin the clock in place, so both select the default.
	if out.ControlEvery <= 0 {
		out.ControlEvery = time.Second
	}
	if out.PrewarmTopK == 0 {
		out.PrewarmTopK = 8
	}
	return &out
}

// MigrationPolicy selects how cross-replica migrations are committed.
type MigrationPolicy string

// Migration policies.
const (
	// MigrateAlways ships a pinned prefix whenever routing diverts its
	// session to a replica holding less of it (the pre-cost-model
	// behavior).
	MigrateAlways MigrationPolicy = "always"
	// MigrateCost ships only when the queued transfer time on the real
	// topology beats the target's estimated recompute of the prefix
	// tokens the migration would save.
	MigrateCost MigrationPolicy = "cost"
)

// MigrationPolicies lists the migration policies.
func MigrationPolicies() []MigrationPolicy {
	return []MigrationPolicy{MigrateAlways, MigrateCost}
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 4 * time.Hour
	}
	if c.InterconnectGBps == 0 {
		c.InterconnectGBps = 25
	}
	if c.MigrationPolicy == "" {
		c.MigrationPolicy = MigrateAlways
	}
	spec := fabric.Spec{Kind: fabric.FullMesh, LinkGBps: c.InterconnectGBps}
	if c.Topology != nil {
		spec = *c.Topology
		if spec.Kind == "" {
			spec.Kind = fabric.FullMesh
		}
		if spec.LinkGBps == 0 {
			spec.LinkGBps = c.InterconnectGBps
		}
	}
	c.Topology = &spec
	if c.Autoscale != nil {
		c.Autoscale = c.Autoscale.withDefaults(c.Replicas)
		c.Replicas = c.Autoscale.Max
	}
	return c
}

// BuildEngine constructs replica i's engine on the shared clock and the
// replica's endpoint on the cluster's transfer fabric (pass it through as
// engine.Config.Fabric so host transfers are class-accounted on the shared
// topology). Each call must return a fresh engine with a fresh scheduler
// (schedulers are stateful). The engine must not enable its own
// SampleEvery: the cluster drives sampling.
type BuildEngine func(replica int, clock *simclock.Clock, ep *fabric.Endpoint) (*engine.Engine, error)

// replica pairs an engine with its routing and lifecycle bookkeeping; it
// implements router.Replica.
type replica struct {
	id     int
	eng    *engine.Engine
	routed int

	// state is the autoscaler lifecycle position (always Active in a
	// static cluster). sinceOn stamps the last off→in-service transition
	// and busy accumulates completed in-service periods (GPU-seconds).
	state   autoscale.State
	sinceOn simclock.Time
	busy    time.Duration

	// outMigrations counts this replica's pinned prefixes currently on
	// the interconnect wire; inMigrations counts transfers (and their
	// deferred request injects) still inbound. A draining replica turns
	// off only once both reach zero.
	outMigrations int
	inMigrations  int
}

func (r *replica) ID() int                            { return r.id }
func (r *replica) QueueDepth() int                    { return r.eng.OutstandingRequests() }
func (r *replica) FreeKVPages() int                   { return r.eng.FreeKVPages() }
func (r *replica) TotalKVPages() int                  { return r.eng.TotalKVPages() }
func (r *replica) FreeKVTokens() int                  { return r.eng.FreeKVTokens() }
func (r *replica) CachedPrefixTokens(session int) int { return r.eng.CachedPrefixTokens(session) }

// ReplicaStats reports one replica's share of a finished run.
type ReplicaStats struct {
	ID int
	// Routed counts requests the policy assigned to this replica.
	Routed int
	// State is the replica's lifecycle state at the end of the run
	// (always Active in a static cluster).
	State autoscale.State
	// GPUSeconds is the simulated time this replica spent in service
	// (warming, active, or draining).
	GPUSeconds float64
	// Result is the replica's own engine result (its report covers only
	// the requests it served).
	Result *engine.Result
}

// Result is the outcome of one cluster run.
type Result struct {
	Policy   string
	Replicas int

	// Report merges every replica's requests into one cluster-level
	// analysis: TTFT percentiles, throughput, effective throughput, and
	// QoS over the whole population.
	Report metrics.Report

	// Samples is the merged queued/running time series (sums across
	// replicas at each tick).
	Samples []request.Sample

	// Makespan is the time of the cluster's last generated token.
	Makespan time.Duration

	// TimedOut is set when the run hit MaxSimTime before completing.
	TimedOut bool

	// Imbalance is the peak-to-mean ratio of per-replica generated output
	// tokens (1.0 = perfectly balanced).
	Imbalance float64

	// ImbalanceSeries samples the per-replica load imbalance over time:
	// at each sampling tick, the peak-to-mean ratio of outstanding
	// (queued + running) requests across replicas. Empty when sampling is
	// disabled.
	ImbalanceSeries []ImbalancePoint

	// Migrations counts cross-replica prefix migrations the cluster
	// performed; MigratedTokens the KV tokens shipped over the fabric;
	// MigrationDrops the installs the target replica had to reject for
	// lack of memory. MigrationsDeclined counts diverts where MigrateCost
	// judged the queued wire slower than recomputing and skipped the
	// transfer (always zero under MigrateAlways).
	Migrations         int64
	MigratedTokens     int64
	MigrationDrops     int64
	MigrationsDeclined int64

	// TransferClasses totals the fabric traffic per transfer class (sync,
	// evict, load, reload, migrate, prewarm, drain) across every link of
	// the topology — the movement-cost ledger of the run.
	TransferClasses []fabric.ClassStats

	// HostReloads / HostReloadTokens total the host-tier prefix reloads
	// across replicas (evicted pins brought back over h2d instead of
	// recomputed); HostReloadFallbacks the reloads declined by the
	// recompute-vs-reload break-even; HostReloadDrops the reloads whose
	// pin could not be installed when the transfer landed (the wire was
	// paid but the turn recomputed anyway).
	HostReloads         int64
	HostReloadTokens    int64
	HostReloadFallbacks int64
	HostReloadDrops     int64

	// PrefixHits and PrefixHitTokens total the session prefix-cache hits
	// across replicas (the reuse affinity routing preserved).
	PrefixHits      int64
	PrefixHitTokens int64

	// Autoscaling outcome (zero / empty in a static cluster).
	//
	// ScaleEvents logs every lifecycle transition the control loop drove;
	// ReplicaSeries samples the per-state replica counts at every control
	// tick. GPUSeconds totals the simulated time replicas spent in
	// service (warming, active, or draining) — the cost axis autoscaling
	// trades against tail latency; a static cluster reports
	// replicas × final-clock-time. WarmupStalls counts arrivals routed
	// while at least one replica was still warming: demand the pool had
	// already answered but could not serve yet. Prewarms / PrewarmedTokens
	// total the pre-warm migrations that seeded warming replicas;
	// DrainMigrations / DrainDroppedPins account the pinned prefixes a
	// draining replica handed off or discarded.
	ScaleEvents      []ScaleEvent
	ReplicaSeries    []ReplicaCountPoint
	GPUSeconds       float64
	WarmupStalls     int64
	Prewarms         int64
	PrewarmedTokens  int64
	DrainMigrations  int64
	DrainDroppedPins int64

	// Scale-to-zero gateway outcome (zero / empty unless ScaleToZero).
	//
	// GatewayBuffered counts arrivals held in the gateway while no replica
	// was active; GatewayShed the arrivals dropped because the gateway was
	// full — or, under chaos, because every replica was crash-dead with no
	// gateway to wait in (they never enter Requests). GatewaySeries
	// samples the gateway depth at every control tick.
	GatewayBuffered int64
	GatewayShed     int64
	GatewaySeries   []GatewayPoint

	// ForecastError is the predictive policy's mean absolute arrival-rate
	// forecast error in req/s over ForecastSamples scored forecasts (zero
	// for non-forecasting policies).
	ForecastError   float64
	ForecastSamples int

	// PrefixIndex is the gateway index's end-of-run accounting: the
	// publication ledger (published / dropped / applied / pending), the
	// heartbeat count, and the indexed-affinity outcome counters. Nil when
	// the run maintained no index.
	PrefixIndex *prefixindex.Stats

	// Obs is the run's flight-recorder capture: lifecycle events, telemetry
	// series, and phase timings, per Config.Obs. Nil when every layer was
	// off. The capture is observation only — nilling this field yields a
	// Result deep-equal to the same run without the recorder.
	Obs *obs.Capture

	// Chaos outcome (all zero without an active Config.Chaos; see
	// chaos.go). Crashes counts replica crash faults that landed on a live
	// replica; Retries the orphaned requests re-entered (re-routed to a
	// survivor or re-buffered through the gateway); RetryFailures the
	// requests that exhausted the retry budget and failed permanently
	// (they stay in Requests, unfinished, with censored TTFT). Backfills
	// counts crashed replicas the autoscaler resurrected through the
	// warm-up path. Replications / ReplicatedBytes total the redundancy
	// traffic (proactive mirror copies plus post-crash re-pins) on the
	// fabric's replicate class. Brownouts and LinkFlaps count the faults
	// injected; MigrationsAborted the pin transfers a crash or flap tore
	// off the wire.
	Crashes           int64
	Retries           int64
	RetryFailures     int64
	Backfills         int64
	Replications      int64
	ReplicatedBytes   int64
	Brownouts         int64
	LinkFlaps         int64
	MigrationsAborted int64

	// Attribution is the critical-path latency attribution report
	// (Config.Obs.Attribution): per-phase latency distributions split by
	// request class and replica, plus the slowest spans for per-request
	// waterfalls. Nil when the layer was off. Observation only, like Obs.
	Attribution *attribution.Report

	// SimEnd is the final virtual-clock reading and InitialInService the
	// replicas in service at t=0 — together with ScaleEvents they let the
	// invariant suite integrate the replica-count trajectory exactly and
	// compare it against GPUSeconds.
	SimEnd           time.Duration
	InitialInService int

	// EventsProcessed counts the simulation events fired across every
	// clock of the run (the coordinator clock plus any shard sub-clocks) —
	// the denominator of per-event cost in the core benchmark and a
	// determinism witness: a sharded run fires exactly the events of its
	// single-threaded twin.
	EventsProcessed uint64

	// PerReplica lists each replica's stats in replica order.
	PerReplica []ReplicaStats

	// Requests holds every request across replicas, ordered by ID.
	Requests []*request.Request
}

// GatewayPoint samples the scale-to-zero gateway depth at one control tick.
type GatewayPoint struct {
	At    simclock.Time
	Depth int
}

// ScaleKind labels a lifecycle transition in the scale-event log.
type ScaleKind string

// Scale-event kinds.
const (
	// ScaleWarmup: off → warming (scale-up started paying warm-up).
	ScaleWarmup ScaleKind = "warmup"
	// ScaleActivate: warming → active (warm-up elapsed).
	ScaleActivate ScaleKind = "activate"
	// ScaleReactivate: draining → active (a scale-up cancelled an
	// in-progress drain; the replica was still warm, so no warm-up paid).
	ScaleReactivate ScaleKind = "reactivate"
	// ScaleDrain: active → draining (scale-down stopped routing to it).
	ScaleDrain ScaleKind = "drain"
	// ScaleOff: draining → off (in-flight work finished, pins handed off).
	ScaleOff ScaleKind = "off"
	// ScaleCrash: in-service → off by fault injection (chaos.go): the
	// replica died mid-flight, outside the control loop's will.
	ScaleCrash ScaleKind = "crash"
)

// ScaleEvent is one replica lifecycle transition.
type ScaleEvent struct {
	At      simclock.Time
	Kind    ScaleKind
	Replica int
}

// ReplicaCountPoint samples the per-state replica counts at one control
// tick.
type ReplicaCountPoint struct {
	At                        simclock.Time
	Active, Warming, Draining int
}

// ImbalancePoint is one sample of the per-replica load imbalance.
type ImbalancePoint struct {
	At simclock.Time
	// Value is the peak-to-mean ratio of per-replica outstanding requests
	// at the instant (1.0 = perfectly balanced or idle).
	Value float64
}

// Cluster is a primed multi-replica simulation.
type Cluster struct {
	cfg          Config
	clock        *simclock.Clock
	replicas     []*replica
	views        []router.Replica
	arrivalsDone bool

	// Sharded execution (see shards.go): shards[s] owns the sub-clock of
	// replicas with id ≡ s (mod len(shards)); empty when single-threaded.
	// busyShards and ttftScratch are reused barrier scratch buffers.
	shards      []*shard
	busyShards  []*shard
	ttftScratch []ttftSample

	// fab is the unified transfer fabric: every replica's host link pair
	// plus the interconnect the Topology spec lays out. Routing
	// migrations, pre-warm, and drain hand-off book on it — and so does
	// every engine-side sync, evict, load, and reload, through the
	// endpoints handed to BuildEngine.
	fab *fabric.TransferScheduler

	migrationsInFlight int
	migrations         int64
	migratedTokens     int64
	migrationDrops     int64
	migrationsDeclined int64

	// Autoscaler bookkeeping (see lifecycle.go).
	scaleEvents      []ScaleEvent
	replicaSeries    []ReplicaCountPoint
	warmupStalls     int64
	prewarms         int64
	prewarmedTokens  int64
	drainMigrations  int64
	drainDroppedPins int64

	// Scale-to-zero gateway (see gateway.go) and the windowed TTFT
	// estimator feeding latency-driven policies. arrivalsThisTick counts
	// arrivals between control ticks — the predictive policy's rate
	// sample.
	gateway          []*request.Request
	gatewayBuffered  int64
	gatewayShed      int64
	gatewaySeries    []GatewayPoint
	ttftWin          *metrics.TTFTWindow
	arrivalsThisTick int

	// Gateway prefix index (see index.go). idx is read and advanced only on
	// the coordinator; pubFns are the per-replica publication closures
	// (heartbeat digests reuse them); pubSeq the per-replica publication
	// counters (sequence numbers, and the count behind the deferred fabric
	// accounting — each slot has the same single writer as the closure);
	// pubScratch is the barrier merge buffer for shard-buffered
	// publications.
	idx        *prefixindex.Index
	idxSpec    prefixindex.Spec
	pubFns     []func(kind prefixindex.EvKind, session int, val, aux int64)
	pubSeq     []uint64
	pubScratch []prefixindex.Pub

	// svcMask records, per sampling tick, which replicas could hold load
	// at that instant (active or draining) — the denominator of the
	// per-tick imbalance series.
	svcMask [][]bool

	// Flight recorder (see observe.go). rec/reg/prof are the nil-safe
	// coordinator-side layers, cached so every emission site is one
	// nil-guarded call. Sharded runs add one recorder and profiler per
	// shard: every emission routes by the event's replica (recFor /
	// profFor) so each sink has exactly one writing goroutine, and the
	// streams merge deterministically at collect. The name slices
	// precompute per-replica and per-link series names, so per-tick
	// recording builds no strings.
	// Chaos fault-injection runtime (chaos.go); nil when Config.Chaos is
	// absent or inactive, which gates every chaos hook off the hot path.
	chaos *chaosRuntime

	rec         *obs.Recorder
	reg         *obs.Registry
	prof        *obs.Profiler
	shardRecs   []*obs.Recorder
	shardProfs  []*obs.Profiler
	collectors  []*attribution.Collector
	repSeries   []replicaSeriesNames
	linkBusy    []string
	linkBacklog []string
}

// recFor returns the recorder that must capture an event scoped to the
// given replica: the owning shard's recorder in sharded runs, the run's
// single recorder otherwise. Cluster-scoped events (replica < 0) always
// land on the coordinator recorder. The coordinator may write a shard
// recorder directly — shards are quiescent while a coordinator event
// runs (shards.go) — and each replica's events live in exactly one
// recorder, so the merged order matches the single-threaded stream.
func (c *Cluster) recFor(replica int) *obs.Recorder {
	if replica >= 0 && len(c.shardRecs) > 0 {
		return c.shardRecs[replica%len(c.shardRecs)]
	}
	return c.rec
}

// profFor mirrors recFor for the phase profiler.
func (c *Cluster) profFor(replica int) *obs.Profiler {
	if replica >= 0 && len(c.shardProfs) > 0 {
		return c.shardProfs[replica%len(c.shardProfs)]
	}
	return c.prof
}

// New builds a cluster of cfg.Replicas engines on one shared clock (with
// autoscaling, Autoscale.Max engines of which Autoscale.Initial start
// active).
func New(cfg Config, build BuildEngine) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replica count %d must be >= 1", cfg.Replicas)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: nil routing policy")
	}
	if build == nil {
		return nil, fmt.Errorf("cluster: nil engine builder")
	}
	if a := cfg.Autoscale; a != nil {
		switch {
		case a.Policy == nil:
			return nil, fmt.Errorf("cluster: autoscaling enabled with nil policy")
		case !a.ScaleToZero && a.Min < 1:
			return nil, fmt.Errorf("cluster: autoscale min %d must be >= 1 (set ScaleToZero for min 0)", a.Min)
		case a.Initial < a.Min || a.Initial > a.Max:
			return nil, fmt.Errorf("cluster: autoscale initial %d outside [%d, %d]",
				a.Initial, a.Min, a.Max)
		}
	}
	switch cfg.MigrationPolicy {
	case MigrateAlways, MigrateCost:
	default:
		return nil, fmt.Errorf("cluster: unknown migration policy %q (have %v)",
			cfg.MigrationPolicy, MigrationPolicies())
	}
	if cfg.Shards > cfg.Replicas {
		cfg.Shards = cfg.Replicas
	}
	topo, err := fabric.NewTopology(cfg.Replicas, *cfg.Topology)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, clock: simclock.New(), fab: fabric.NewScheduler(topo)}
	if cfg.Shards > 1 {
		for s := 0; s < cfg.Shards; s++ {
			c.shards = append(c.shards, &shard{id: s, clock: simclock.New()})
		}
	}
	// Flight recorder. Events and Attribution both need lifecycle
	// emissions; when only attribution is on the recorders run
	// store-disabled, feeding the span collectors without retaining the
	// stream. Sharded runs add one recorder/profiler per shard so each
	// sink has a single writing goroutine (recFor/profFor route every
	// emission by the event's replica); collect merges them back into one
	// canonical capture.
	if cfg.Obs.Events || cfg.Obs.Attribution {
		c.rec = obs.NewRecorder()
		if !cfg.Obs.Events {
			c.rec.DisableStore()
		}
		for s := range c.shards {
			r := obs.NewShardRecorder(1 + s)
			if !cfg.Obs.Events {
				r.DisableStore()
			}
			c.shardRecs = append(c.shardRecs, r)
		}
	}
	if cfg.Obs.Series {
		c.reg = obs.NewRegistry(cfg.Obs.SampleEvery)
	}
	if cfg.Obs.Profile {
		c.prof = obs.NewProfiler()
		for range c.shards {
			c.shardProfs = append(c.shardProfs, obs.NewProfiler())
		}
	}
	if cfg.Obs.Attribution {
		// One collector per data-bearing recorder: lifecycle events are
		// replica-scoped, so each shard's collector sees complete request
		// histories and the per-shard aggregators fold at collect.
		taps := c.shardRecs
		if len(taps) == 0 {
			taps = []*obs.Recorder{c.rec}
		}
		for _, r := range taps {
			col := attribution.NewCollector(attribution.NewAggregator(cfg.Replicas))
			r.SetTap(col.Observe)
			c.collectors = append(c.collectors, col)
		}
	}
	c.fab.SetObs(c.rec, c.prof)
	for i := 0; i < cfg.Replicas; i++ {
		clk := c.clock
		if len(c.shards) > 0 {
			clk = c.shardOf(i).clock
			c.fab.SetReplicaObs(i, c.recFor(i), c.profFor(i))
		}
		eng, err := build(i, clk, c.fab.Endpoint(i))
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		// Installed after build so every builder — experiments, tests,
		// random scenarios — records without opting in.
		eng.SetObs(c.recFor(i), c.profFor(i), i)
		rep := &replica{id: i, eng: eng, state: autoscale.Active}
		if cfg.Autoscale != nil && i >= cfg.Autoscale.Initial {
			rep.state = autoscale.Off
		}
		c.replicas = append(c.replicas, rep)
		c.views = append(c.views, rep)
	}
	if cfg.Autoscale != nil && autoscale.ObservesTTFT(cfg.Autoscale.Policy) {
		// The windowed TTFT estimator feeds latency-driven policies
		// (slo-target); every replica's first tokens land in one window.
		// Observation only — it adds no clock events, so the simulation
		// itself is byte-unaffected. Policies that never read the signal
		// skip the estimator (and its per-tick sort) entirely.
		c.ttftWin = metrics.NewTTFTWindow(cfg.Autoscale.P99Window)
		for _, rep := range c.replicas {
			if len(c.shards) > 0 {
				// First tokens fire on shard goroutines: buffer them
				// shard-locally and merge at the next barrier (shards.go),
				// so the shared window is only ever written by the
				// coordinator.
				id := rep.id
				sh := c.shardOf(id)
				rep.eng.SetFirstTokenObserver(func(r *request.Request, t simclock.Time) {
					sh.ttft = append(sh.ttft, ttftSample{at: t, replica: id, ttft: t.Sub(r.Arrival)})
				})
				continue
			}
			rep.eng.SetFirstTokenObserver(func(r *request.Request, t simclock.Time) {
				c.ttftWin.Observe(t, t.Sub(r.Arrival))
			})
		}
	}
	if err := c.initPrefixIndex(); err != nil {
		return nil, err
	}
	if err := c.initChaos(); err != nil {
		return nil, err
	}
	c.initObsSeries()
	return c, nil
}

// Fabric exposes the cluster's transfer scheduler (telemetry and tests).
func (c *Cluster) Fabric() *fabric.TransferScheduler { return c.fab }

// Run simulates the workload across the cluster to completion.
func (c *Cluster) Run(w trace.Workload) (*Result, error) {
	// Every request must individually fit every replica: in a
	// heterogeneous pool any policy may route any request anywhere, so the
	// smallest replica bounds admissible request sizes.
	for _, rep := range c.replicas {
		if err := rep.eng.ValidateWorkload(w); err != nil {
			return nil, fmt.Errorf("replica %d: %w", rep.id, err)
		}
	}

	// Arrivals: the routing decision happens at the arrival instant, when
	// the policy sees live replica state. Under scale-to-zero an arrival
	// that finds no active replica goes through the gateway instead
	// (gateway.go): buffered or shed, and always a cold-start trigger.
	// A sharded run whose configuration needs no coordinator events at all
	// pre-routes arrivals straight onto the shard clocks instead.
	if c.fastShardPath() {
		c.primeSharded(w)
		timedOut := c.runSharded(simclock.Time(c.cfg.MaxSimTime))
		return c.collect(timedOut), nil
	}
	c.scheduleHeartbeats()
	c.scheduleChaos()
	for i, it := range w.Items {
		it := it
		id := i
		c.clock.At(it.Arrival, func(now simclock.Time) {
			c.arrivalsThisTick++
			c.rec.Emit(now, obs.KindArrival, -1, id, it.Session,
				int64(it.PromptLen), int64(it.OutputLen), int64(it.Turn), 0, "")
			if id == w.Len()-1 {
				c.arrivalsDone = true
				for _, rp := range c.replicas {
					rp.eng.SetArrivalsDone()
				}
			}
			if c.gatewayEnabled() && c.activeCount() == 0 {
				// A draining replica is still warm; reactivating it beats
				// buffering behind a cold start.
				c.ensureColdStart(now)
			}
			if c.gatewayEnabled() && c.activeCount() == 0 {
				c.gatewayAdmit(id, it, now)
				return
			}
			if c.chaos != nil && len(c.routable()) == 0 {
				// Every replica is crash-dead and there is no gateway to
				// wait in: the arrival sheds at the cluster edge.
				c.shedCrashed(id, it, now)
				return
			}
			rep := c.route(id, it)
			rep.routed++
			r := request.New(id, now, it.PromptLen, it.OutputLen, it.Rate)
			r.Session, r.Turn = it.Session, it.Turn
			if c.maybeMigrate(r, it, rep, now) {
				return // Inject happens when the KV arrives.
			}
			rep.eng.Inject(r, now)
		})
	}

	if c.cfg.SampleEvery > 0 {
		var sample func(now simclock.Time)
		sample = func(now simclock.Time) {
			mask := make([]bool, len(c.replicas))
			for i, rep := range c.replicas {
				rep.eng.Sample(now)
				mask[i] = rep.state == autoscale.Active || rep.state == autoscale.Draining
			}
			c.svcMask = append(c.svcMask, mask)
			if c.reg != nil && c.reg.Tick() {
				c.recordSampleSeries(now)
			}
			if !c.done() {
				c.clock.After(c.cfg.SampleEvery, sample)
			}
		}
		c.clock.At(0, sample)
	}

	if c.cfg.Autoscale != nil {
		var control func(now simclock.Time)
		control = func(now simclock.Time) {
			c.controlTick(now)
			// A scale-to-zero pool keeps ticking until the policy has
			// walked every replica back to Off: the run's cost accounting
			// should include the idle tail the policy takes to decide the
			// pool is dead, not stop at the last token.
			if !c.done() || c.scaleToZeroPending() {
				c.clock.After(c.cfg.Autoscale.ControlEvery, control)
			}
		}
		c.clock.At(0, control)
	}

	timedOut := false
	deadline := simclock.Time(c.cfg.MaxSimTime)
	if len(c.shards) > 0 {
		timedOut = c.runSharded(deadline)
	} else {
		for c.clock.Step() {
			if c.clock.Now() > deadline {
				timedOut = true
				break
			}
		}
	}
	return c.collect(timedOut), nil
}

// routable is the policy's view: only active replicas receive traffic.
// Warming, draining, and off replicas are invisible to routing — the
// drain guarantee (no request ever lands on a draining replica) is
// enforced here, by construction. The slice preserves replica-ID order, so
// the router's by-ID tie-breaking matches by-index iteration.
func (c *Cluster) routable() []router.Replica {
	if c.cfg.Autoscale == nil {
		if c.chaos == nil {
			return c.views
		}
		out := make([]router.Replica, 0, len(c.replicas))
		for _, rep := range c.replicas {
			if !rep.eng.Crashed() {
				out = append(out, rep)
			}
		}
		return out
	}
	out := make([]router.Replica, 0, len(c.replicas))
	for _, rep := range c.replicas {
		if rep.state == autoscale.Active {
			out = append(out, rep)
		}
	}
	return out
}

// route asks the policy to pick among the currently active replicas,
// guarding against out-of-range picks (a policy bug would otherwise panic
// deep in the event loop).
func (c *Cluster) route(id int, it trace.Item) *replica {
	views := c.routable()
	if len(views) == 0 {
		// Without scale-to-zero, Min >= 1 and scale-down stops at Min; with
		// it, the gateway intercepts zero-active arrivals before routing.
		// An empty active set here is a lifecycle bug, not a policy bug.
		panic("cluster: no active replicas to route to")
	}
	if c.cfg.Autoscale != nil && len(views) < len(c.replicas) {
		for _, rep := range c.replicas {
			if rep.state == autoscale.Warming {
				// Capacity this arrival could have used is still loading.
				c.warmupStalls++
				break
			}
		}
	}
	rr := router.Request{
		ID:        id,
		Session:   it.Session,
		Turn:      it.Turn,
		PromptLen: it.PromptLen,
		OutputLen: it.OutputLen,
	}
	if c.idx != nil {
		// Absorb every publication due by now, so the policy reads a
		// consistent snapshot of the index at the decision instant.
		c.idx.AdvanceTo(c.clock.Now())
	}
	pick := c.cfg.Policy.Pick(rr, views)
	if pick < 0 || pick >= len(views) {
		panic(fmt.Sprintf("cluster: policy %s picked replica %d of %d",
			c.cfg.Policy.Name(), pick, len(views)))
	}
	rep := views[pick].(*replica)
	if c.idx != nil {
		// The policy noted what its indexed decision did; surface the
		// diversions (miss, stale, headroom, overload) to the recorder.
		if o := c.idx.TakeOutcome(); o.Fallback() {
			c.recFor(rep.id).Emit(c.clock.Now(), obs.KindIndexFallback, rep.id, id,
				it.Session, int64(o), 0, 0, 0, o.String())
		}
	}
	if c.rec != nil {
		// The policy's figure of merit for the winner rides the event, so a
		// trace explains the pick. Scoring is read-only (router.Scorer
		// contract), so recording cannot change the route.
		score := 0.0
		if sc, ok := c.cfg.Policy.(router.Scorer); ok {
			score = sc.Score(rr, views[pick])
		}
		c.recFor(rep.id).Emit(c.clock.Now(), obs.KindRouteDecision, rep.id, id, it.Session,
			int64(len(views)), 0, 0, score, c.cfg.Policy.Name())
	}
	return rep
}

// maybeMigrate ships a session's pinned prefix KV to the routed replica
// when a different replica holds it: the donor's pages travel the
// interconnect and the request is delivered with its KV, so the transfer
// is on the clock and inside the request's TTFT. Under MigrateCost the
// transfer is first priced on the real topology — queued path backlog plus
// bottleneck wire time — against the target's estimated recompute of the
// prefix tokens the migration would save, and skipped when the wire loses
// (the donor keeps its pin; the turn recomputes). It reports whether a
// migration was started (and the inject deferred).
func (c *Cluster) maybeMigrate(r *request.Request, it trace.Item, target *replica, now simclock.Time) bool {
	if !c.cfg.Migrate || it.Session == 0 {
		return false
	}
	// The donor is the replica pinning the most of this session's prefix —
	// but only a strictly extendable prefix (smaller than the prompt) is
	// worth shipping, and only if it beats what the target already holds.
	// Off replicas hold no pins; warming and draining replicas may (a
	// pre-warmed or not-yet-drained pin), and donating is exactly what
	// they should do.
	targetOwn := target.eng.CachedPrefixTokens(it.Session)
	donor, best := -1, targetOwn
	if c.idx != nil {
		// The index's holder map replaces the full pool scan: O(holders)
		// instead of O(replicas), and the gateway decides on its own
		// (possibly stale) view — a believed donor whose pin is already
		// gone fails BeginPrefixMigration below and the turn recomputes.
		if r, t, ok := c.idx.DonorFor(it.Session, target.id, targetOwn, it.PromptLen); ok {
			donor, best = r, t
		}
	} else {
		for _, rep := range c.replicas {
			if rep == target {
				continue
			}
			if t := rep.eng.CachedPrefixTokens(it.Session); t > best && t < it.PromptLen {
				donor, best = rep.id, t
			}
		}
	}
	if donor < 0 {
		return false
	}
	if c.cfg.MigrationPolicy == MigrateCost {
		_, bytes := c.replicas[donor].eng.PrefixFootprint(it.Session)
		eta := c.fab.ETABetween(donor, target.id, now, bytes)
		// Migrating saves the target from prefilling the donor's prefix
		// beyond what it already caches.
		recompute := target.eng.EstimatePrefill(best - targetOwn)
		if eta >= recompute {
			c.migrationsDeclined++
			c.recFor(donor).Emit(now, obs.KindMigrateDecline, donor, r.ID, it.Session,
				int64(target.id), int64(eta), int64(recompute),
				float64(best-targetOwn), "")
			return false
		}
	}
	// The deferred inject rides the transfer completion: the request is
	// delivered together with its KV, so the wire time lands inside TTFT.
	return c.migratePin(c.replicas[donor], target, it.Session, fabric.ClassMigrate, now,
		&c.migrations, &c.migratedTokens, r, func(t simclock.Time) {
			target.eng.InjectCause(r, t, obs.QueueCauseMigrate)
		})
}

// done reports whether all arrivals were injected (including requests
// waiting on an in-flight KV migration or buffered in the gateway) and
// every replica drained its share (a replica routed zero requests counts
// as drained).
func (c *Cluster) done() bool {
	if !c.arrivalsDone || c.migrationsInFlight > 0 || len(c.gateway) > 0 {
		return false
	}
	if c.chaos != nil && (c.chaos.retryPending > 0 || c.chaos.replicationsInFlight > 0) {
		return false
	}
	for _, rep := range c.replicas {
		if rep.eng.OutstandingRequests() > 0 {
			return false
		}
	}
	return true
}

// collect tears down every replica and assembles the cluster result.
func (c *Cluster) collect(timedOut bool) *Result {
	end := c.endNow()
	res := &Result{
		Policy:   c.cfg.Policy.Name(),
		Replicas: len(c.replicas),
		TimedOut: timedOut,
	}
	// Under autoscaling, Imbalance is computed over the replicas that
	// participated (routed at least one request): a replica that stayed
	// off, warmed too late, or drained early served zero by design, and
	// counting its zero load would report imbalance where there was none
	// to balance. In a static cluster every replica is always available,
	// so a zero-routed replica there is genuine imbalance and counts.
	var loads []float64
	for _, rep := range c.replicas {
		if rep.state.InService() {
			rep.busy += end.Sub(rep.sinceOn)
			rep.sinceOn = end
		}
		if timedOut {
			rep.eng.MarkTimedOut()
		}
		er := rep.eng.Collect()
		res.PerReplica = append(res.PerReplica, ReplicaStats{
			ID: rep.id, Routed: rep.routed, State: rep.state,
			GPUSeconds: rep.busy.Seconds(), Result: er,
		})
		res.Requests = append(res.Requests, er.Requests...)
		res.PrefixHits += er.PrefixHits
		res.PrefixHitTokens += er.PrefixHitTokens
		res.GPUSeconds += rep.busy.Seconds()
		if c.cfg.Autoscale == nil || rep.routed > 0 {
			loads = append(loads, float64(er.Report.TotalOut))
		}
	}
	if ch := c.chaos; ch != nil {
		// Requests that exhausted the retry budget belong to no replica;
		// they enter the population unfinished (censored TTFT, zero output)
		// so the cluster report prices the failures it caused.
		res.Requests = append(res.Requests, ch.failed...)
		res.Crashes = ch.crashes
		res.Retries = ch.retries
		res.RetryFailures = ch.retryFailures
		res.Backfills = ch.backfills
		res.Replications = ch.replications
		res.ReplicatedBytes = ch.replicatedBytes
		res.Brownouts = ch.brownouts
		res.LinkFlaps = ch.linkFlaps
		res.MigrationsAborted = ch.migrationsAborted
	}
	sort.SliceStable(res.Requests, func(i, j int) bool { return res.Requests[i].ID < res.Requests[j].ID })

	// Cluster makespan: the last generated token across replicas, falling
	// back to the final clock reading for degenerate runs — the same rule
	// the engine applies to its own population.
	var makespan simclock.Time
	for _, r := range res.Requests {
		if r.FinishedAt > makespan {
			makespan = r.FinishedAt
		}
		if r.Generated > 0 && r.TokenTimes[len(r.TokenTimes)-1] > makespan {
			makespan = r.TokenTimes[len(r.TokenTimes)-1]
		}
	}
	if makespan == 0 {
		makespan = end
	}
	res.Makespan = time.Duration(makespan)
	res.Report = metrics.Analyze(res.Requests, makespan, c.replicas[0].eng.QoSParams())
	res.Imbalance = metrics.Imbalance(loads)
	res.Samples = mergeSamples(res.PerReplica)
	res.ImbalanceSeries = imbalanceSeries(res.PerReplica, c.svcMask)
	res.Migrations = c.migrations
	res.MigratedTokens = c.migratedTokens
	res.MigrationDrops = c.migrationDrops
	res.MigrationsDeclined = c.migrationsDeclined
	c.settleIndexTraffic()
	res.TransferClasses = c.fab.ClassStats()
	for _, rs := range res.PerReplica {
		res.HostReloads += rs.Result.KV.HostReloads
		res.HostReloadTokens += rs.Result.KV.HostReloadTokens
		res.HostReloadFallbacks += rs.Result.HostReloadFallbacks
		res.HostReloadDrops += rs.Result.KV.HostReloadDrops
	}
	res.ScaleEvents = c.scaleEvents
	res.ReplicaSeries = c.replicaSeries
	res.WarmupStalls = c.warmupStalls
	res.Prewarms = c.prewarms
	res.PrewarmedTokens = c.prewarmedTokens
	res.DrainMigrations = c.drainMigrations
	res.DrainDroppedPins = c.drainDroppedPins
	res.GatewayBuffered = c.gatewayBuffered
	res.GatewayShed = c.gatewayShed
	res.GatewaySeries = c.gatewaySeries
	// Attribution report first (timed on the coordinator profiler, so the
	// finalize cost lands in the merged profile), then the capture: the
	// per-shard recorder and profiler streams fold into one canonical
	// view, byte-identical to a single-threaded run's.
	if len(c.collectors) > 0 {
		t0 := c.prof.Begin()
		agg := c.collectors[0].Aggregator()
		for _, col := range c.collectors[1:] {
			agg.Add(col.Aggregator())
		}
		res.Attribution = agg.Report()
		c.prof.End(obs.PhaseAttribution, t0)
	}
	if c.cfg.Obs.Events || c.cfg.Obs.Series || c.cfg.Obs.Profile {
		cap := &obs.Capture{Series: c.reg}
		if c.cfg.Obs.Events {
			cap.Events = obs.Merge(append([]*obs.Recorder{c.rec}, c.shardRecs...)...)
		}
		if c.cfg.Obs.Profile {
			cap.Profile = obs.MergeProfilers(append([]*obs.Profiler{c.prof}, c.shardProfs...)...)
		}
		res.Obs = cap
	}
	if c.idx != nil {
		c.idx.AdvanceTo(end)
		st := c.idx.Stats()
		res.PrefixIndex = &st
	}
	res.SimEnd = time.Duration(end)
	res.EventsProcessed = c.eventsProcessed()
	res.InitialInService = len(c.replicas)
	if a := c.cfg.Autoscale; a != nil {
		res.InitialInService = a.Initial
		if f, ok := a.Policy.(autoscale.Forecaster); ok {
			res.ForecastError, res.ForecastSamples = f.ForecastError()
		}
	}
	return res
}

// imbalanceSeries computes, per sampling tick, the peak-to-mean ratio of
// per-replica outstanding (queued + running) requests — the over-time view
// of the end-of-run Imbalance scalar. Only replicas in service at the tick
// (per svc, recorded at sampling time) enter the ratio: an off or warming
// replica holds no load by construction, and counting its zero would
// manufacture imbalance. Series lengths are taken per replica (not from
// replica 0) so a replica with a short series cannot truncate or skew the
// merge.
func imbalanceSeries(per []ReplicaStats, svc [][]bool) []ImbalancePoint {
	n := 0
	for _, rs := range per {
		if len(rs.Result.Samples) > n {
			n = len(rs.Result.Samples)
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]ImbalancePoint, 0, n)
	for i := 0; i < n; i++ {
		var at simclock.Time
		var loads []float64
		for j, rs := range per {
			if i >= len(rs.Result.Samples) {
				continue
			}
			s := rs.Result.Samples[i]
			at = s.At
			if i < len(svc) && j < len(svc[i]) && !svc[i][j] {
				continue
			}
			loads = append(loads, float64(s.Queued+s.Running))
		}
		out = append(out, ImbalancePoint{At: at, Value: metrics.Imbalance(loads)})
	}
	return out
}

// mergeSamples sums the per-replica queued/running series tick by tick.
// Replicas sample at identical instants (the cluster drives them), so the
// series align by index.
func mergeSamples(per []ReplicaStats) []request.Sample {
	var out []request.Sample
	for _, rs := range per {
		for i, s := range rs.Result.Samples {
			if i == len(out) {
				out = append(out, request.Sample{At: s.At})
			}
			out[i].Queued += s.Queued
			out[i].Running += s.Running
		}
	}
	return out
}
