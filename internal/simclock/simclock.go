// Package simclock provides the discrete-event simulation core used by the
// TokenFlow serving simulator: a virtual clock and a cancellable event queue
// with deterministic FIFO ordering for simultaneous events.
//
// All simulation components share one Clock. Time is virtual: it only
// advances when events are processed, so simulations are exactly
// reproducible for a given workload seed regardless of host speed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation.
type Time int64

// Zero is the origin of simulation time.
const Zero Time = 0

// Forever is a sentinel time later than any event a simulation schedules.
const Forever Time = Time(1<<63 - 1)

// FromSeconds converts a duration in seconds to a Time offset from Zero.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// Seconds reports t as a floating-point number of seconds since Zero.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Add returns t shifted later by d. Negative d shifts earlier.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a floating-point number of seconds to a time.Duration.
func Duration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// String formats t as seconds with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// Event is a scheduled callback. Events are created by Clock.At and
// Clock.After and may be cancelled before they fire.
type Event struct {
	at       Time
	seq      uint64 // insertion order; breaks ties deterministically
	index    int    // heap index, -1 when not queued
	fn       func(now Time)
	canceled bool
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.canceled }

// Clock is a virtual clock with an event queue. The zero value is not
// usable; call New.
type Clock struct {
	now Time
	pq  eventHeap
	seq uint64
	// processed counts events that have fired (not cancelled ones).
	processed uint64
}

// New returns a Clock positioned at time Zero with an empty queue.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Len reports the number of pending (non-cancelled) events.
func (c *Clock) Len() int {
	n := 0
	for _, e := range c.pq {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Processed reports how many events have fired since the clock was created.
func (c *Clock) Processed() uint64 { return c.processed }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: that is always a simulation logic bug, and silently clamping
// would mask it.
func (c *Clock) At(at Time, fn func(now Time)) *Event {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if at < c.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", at, c.now))
	}
	e := &Event{at: at, seq: c.seq, fn: fn, index: -1}
	c.seq++
	heap.Push(&c.pq, e)
	return e
}

// After schedules fn to run d after the current time. Negative d panics.
func (c *Clock) After(d time.Duration, fn func(now Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// Cancel removes a pending event from the queue. Cancelling a fired or
// already-cancelled event is a no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	heap.Remove(&c.pq, e.index)
	e.index = -1
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. If the event already fired or was cancelled, Reschedule
// schedules it afresh.
func (c *Clock) Reschedule(e *Event, at Time) {
	if at < c.now {
		panic(fmt.Sprintf("simclock: rescheduling event at %v before now %v", at, c.now))
	}
	if e.index >= 0 && !e.canceled {
		e.at = at
		e.seq = c.seq
		c.seq++
		heap.Fix(&c.pq, e.index)
		return
	}
	e.canceled = false
	e.at = at
	e.seq = c.seq
	c.seq++
	heap.Push(&c.pq, e)
}

// Peek reports the time of the next pending event, or Forever if the queue
// is empty.
func (c *Clock) Peek() Time {
	if len(c.pq) == 0 {
		return Forever
	}
	return c.pq[0].at
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports false when the queue is empty.
func (c *Clock) Step() bool {
	for len(c.pq) > 0 {
		e := heap.Pop(&c.pq).(*Event)
		e.index = -1
		if e.canceled {
			continue
		}
		c.now = e.at
		c.processed++
		e.fn(c.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the queue is exhausted or the next
// event lies strictly after deadline. The clock ends at the later of its
// current time and deadline (but never moves backwards).
func (c *Clock) RunUntil(deadline Time) {
	for {
		next := c.Peek()
		if next > deadline {
			break
		}
		c.Step()
	}
	if deadline > c.now && deadline != Forever {
		c.now = deadline
	}
}

// Run fires events until none remain.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// eventHeap orders events by (time, insertion sequence), so events scheduled
// for the same instant fire in the order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
