// Package simclock provides the discrete-event simulation core used by the
// TokenFlow serving simulator: a virtual clock and a cancellable event queue
// with deterministic FIFO ordering for simultaneous events.
//
// All simulation components share one Clock. Time is virtual: it only
// advances when events are processed, so simulations are exactly
// reproducible for a given workload seed regardless of host speed.
//
// The event queue is allocation-free in steady state: fired and cancelled
// events return to a per-clock free list and are recycled by the next At or
// After. Handles are generation-counted, so holding a Handle past its
// event's firing is always safe — Cancel and Pending on a stale handle are
// no-ops rather than acting on whatever event reused the slot.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation.
type Time int64

// Zero is the origin of simulation time.
const Zero Time = 0

// Forever is a sentinel time later than any event a simulation schedules.
const Forever Time = Time(1<<63 - 1)

// FromSeconds converts a duration in seconds to a Time offset from Zero.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// Seconds reports t as a floating-point number of seconds since Zero.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Add returns t shifted later by d. Negative d shifts earlier.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a floating-point number of seconds to a time.Duration.
func Duration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// String formats t as seconds with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// event is one scheduled callback slot. Slots are owned by the clock and
// recycled through a free list; external code only ever sees Handles.
type event struct {
	at       Time
	seq      uint64 // insertion order; breaks ties deterministically
	gen      uint64 // bumped on recycle; stale Handles fail the gen check
	index    int    // heap index, -1 when not queued
	fn       func(now Time)
	canceled bool
}

// Handle identifies a scheduled event. The zero Handle is valid and refers
// to nothing: Pending reports false and Cancel is a no-op. A Handle stays
// safe to use after its event fires or is cancelled — the underlying slot
// is generation-counted, so a stale Handle can never affect an event that
// reused it.
type Handle struct {
	ev  *event
	gen uint64
}

// At reports the time the event is scheduled to fire, or Forever for a
// stale or zero handle.
func (h Handle) At() Time {
	if !h.Pending() {
		return Forever
	}
	return h.ev.at
}

// Pending reports whether the handle's event is still queued and not
// cancelled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled
}

// Clock is a virtual clock with an event queue. The zero value is not
// usable; call New.
type Clock struct {
	now Time
	pq  eventHeap
	seq uint64
	// processed counts events that have fired (not cancelled ones).
	processed uint64
	// canceled counts queue slots holding lazily-cancelled events; when the
	// fraction grows past compactAt the heap is rebuilt without them.
	canceled int
	free     []*event
}

// compactAt bounds how much of the heap cancelled events may occupy before
// a compaction sweep reclaims them, so long-horizon cancels (drain timers,
// consumption ticks of torn-down requests) cannot bloat the queue.
const compactAt = 64

// New returns a Clock positioned at time Zero with an empty queue.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Len reports the number of pending (non-cancelled) events.
func (c *Clock) Len() int { return len(c.pq) - c.canceled }

// Processed reports how many events have fired since the clock was created.
func (c *Clock) Processed() uint64 { return c.processed }

// alloc takes an event slot from the free list, or allocates one.
func (c *Clock) alloc() *event {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &event{index: -1}
}

// recycle retires a fired or swept event slot: the generation bump
// invalidates every outstanding Handle before the slot is reused.
func (c *Clock) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.canceled = false
	e.index = -1
	c.free = append(c.free, e)
}

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: that is always a simulation logic bug, and silently clamping
// would mask it.
func (c *Clock) At(at Time, fn func(now Time)) Handle {
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if at < c.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", at, c.now))
	}
	e := c.alloc()
	e.at = at
	e.seq = c.seq
	e.fn = fn
	c.seq++
	heap.Push(&c.pq, e)
	return Handle{ev: e, gen: e.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (c *Clock) After(d time.Duration, fn func(now Time)) Handle {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// Cancel removes a pending event from the queue. Cancelling a fired,
// already-cancelled, or zero handle is a no-op. The cancel itself is O(1):
// the slot is marked dead and swept either when it surfaces at the top of
// the heap or by the next compaction, whichever comes first.
func (c *Clock) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	h.ev.canceled = true
	c.canceled++
	if c.canceled >= compactAt && c.canceled*2 > len(c.pq) {
		c.compact()
	}
}

// compact rebuilds the heap without cancelled events, recycling their slots.
func (c *Clock) compact() {
	live := c.pq[:0]
	for _, e := range c.pq {
		if e.canceled {
			c.recycle(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(c.pq); i++ {
		c.pq[i] = nil
	}
	c.pq = live
	c.canceled = 0
	heap.Init(&c.pq)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback, and returns its handle. If the event already fired or was
// cancelled, Reschedule panics — the callback is gone with the slot, so
// the caller must schedule afresh with At.
func (c *Clock) Reschedule(h Handle, at Time) Handle {
	if at < c.now {
		panic(fmt.Sprintf("simclock: rescheduling event at %v before now %v", at, c.now))
	}
	if !h.Pending() {
		panic("simclock: rescheduling a fired or cancelled event")
	}
	e := h.ev
	e.at = at
	e.seq = c.seq
	c.seq++
	heap.Fix(&c.pq, e.index)
	return h
}

// Peek reports the time of the next pending event, or Forever if the queue
// is empty. Cancelled events surfacing at the top are swept as a side
// effect, so the reported time is always that of a live event.
func (c *Clock) Peek() Time {
	for len(c.pq) > 0 {
		top := c.pq[0]
		if !top.canceled {
			return top.at
		}
		heap.Pop(&c.pq)
		c.canceled--
		c.recycle(top)
	}
	return Forever
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports false when the queue is empty.
func (c *Clock) Step() bool {
	for len(c.pq) > 0 {
		e := heap.Pop(&c.pq).(*event)
		e.index = -1
		if e.canceled {
			c.canceled--
			c.recycle(e)
			continue
		}
		c.now = e.at
		c.processed++
		fn := e.fn
		c.recycle(e)
		fn(c.now)
		return true
	}
	return false
}

// AdvanceTo moves the clock forward to t without firing anything. It
// panics when t precedes the current time or when a pending event lies
// before t — skipping scheduled work is always a simulation bug. The
// sharded cluster runner uses this to align a drained shard clock with the
// barrier instant before cross-shard work (injects, migrations) lands.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: advancing to %v before now %v", t, c.now))
	}
	if next := c.Peek(); next < t {
		panic(fmt.Sprintf("simclock: advancing to %v past pending event at %v", t, next))
	}
	c.now = t
}

// RunUntil fires events in order until the queue is exhausted or the next
// event lies strictly after deadline. The clock ends at the later of its
// current time and deadline (but never moves backwards).
func (c *Clock) RunUntil(deadline Time) {
	for {
		next := c.Peek()
		if next > deadline {
			break
		}
		c.Step()
	}
	if deadline > c.now && deadline != Forever {
		c.now = deadline
	}
}

// Run fires events until none remain.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// eventHeap orders events by (time, insertion sequence), so events scheduled
// for the same instant fire in the order they were scheduled.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
