package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != Time(1500*time.Millisecond) {
		t.Errorf("FromSeconds(1.5) = %d", got)
	}
	if got := FromSeconds(2).Seconds(); got != 2.0 {
		t.Errorf("Seconds round-trip = %v", got)
	}
	base := FromSeconds(1)
	if got := base.Add(500 * time.Millisecond); got != FromSeconds(1.5) {
		t.Errorf("Add = %v", got)
	}
	if got := FromSeconds(3).Sub(FromSeconds(1)); got != 2*time.Second {
		t.Errorf("Sub = %v", got)
	}
	if got := Duration(0.25); got != 250*time.Millisecond {
		t.Errorf("Duration(0.25) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	if got := FromSeconds(12.3456).String(); got != "12.346s" {
		t.Errorf("String = %q", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.At(FromSeconds(3), func(Time) { order = append(order, 3) })
	c.At(FromSeconds(1), func(Time) { order = append(order, 1) })
	c.At(FromSeconds(2), func(Time) { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != FromSeconds(3) {
		t.Errorf("final time = %v", c.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	c := New()
	var order []int
	at := FromSeconds(1)
	for i := 0; i < 10; i++ {
		i := i
		c.At(at, func(Time) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of insertion order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	c := New()
	var fired Time
	c.At(FromSeconds(5), func(now Time) {
		c.After(2*time.Second, func(now Time) { fired = now })
	})
	c.Run()
	if fired != FromSeconds(7) {
		t.Errorf("After fired at %v, want 7s", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	e := c.At(FromSeconds(1), func(Time) { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending before cancel")
	}
	c.Cancel(e)
	if e.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling again is a no-op.
	c.Cancel(e)
	c.Cancel(Handle{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	c := New()
	var events []Handle
	var fired []int
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, c.At(FromSeconds(float64(i)), func(Time) {
			fired = append(fired, i)
		}))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		c.Cancel(events[i])
	}
	c.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 13 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	c := New()
	var at Time
	e := c.At(FromSeconds(1), func(now Time) { at = now })
	c.Reschedule(e, FromSeconds(4))
	c.Run()
	if at != FromSeconds(4) {
		t.Errorf("rescheduled event fired at %v, want 4s", at)
	}
}

func TestRescheduleCancelledEventPanics(t *testing.T) {
	c := New()
	e := c.At(FromSeconds(1), func(Time) {})
	c.Cancel(e)
	defer func() {
		if recover() == nil {
			t.Error("rescheduling a cancelled event should panic")
		}
	}()
	c.Reschedule(e, FromSeconds(2))
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := New()
	fired := 0
	c.At(FromSeconds(1), func(Time) { fired++ })
	c.At(FromSeconds(10), func(Time) { fired++ })
	c.RunUntil(FromSeconds(5))
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if c.Now() != FromSeconds(5) {
		t.Errorf("now = %v, want 5s", c.Now())
	}
	// Event at 10s still pending.
	if c.Len() != 1 {
		t.Errorf("pending = %d, want 1", c.Len())
	}
	if c.Peek() != FromSeconds(10) {
		t.Errorf("peek = %v", c.Peek())
	}
}

func TestRunUntilInclusiveOfDeadline(t *testing.T) {
	c := New()
	fired := false
	c.At(FromSeconds(5), func(Time) { fired = true })
	c.RunUntil(FromSeconds(5))
	if !fired {
		t.Error("event exactly at deadline should fire")
	}
}

func TestPeekEmptyQueue(t *testing.T) {
	c := New()
	if c.Peek() != Forever {
		t.Errorf("Peek on empty queue = %v, want Forever", c.Peek())
	}
	if c.Step() {
		t.Error("Step on empty queue should report false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.At(FromSeconds(1), func(Time) {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	c.At(FromSeconds(0.5), func(Time) {})
}

func TestNegativeAfterPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	c.After(-time.Second, func(Time) {})
}

func TestNilCallbackPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Error("nil callback should panic")
		}
	}()
	c.At(FromSeconds(1), nil)
}

func TestProcessedCountsOnlyFired(t *testing.T) {
	c := New()
	e := c.At(FromSeconds(1), func(Time) {})
	c.At(FromSeconds(2), func(Time) {})
	c.Cancel(e)
	c.Run()
	if c.Processed() != 1 {
		t.Errorf("Processed = %d, want 1", c.Processed())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	c := New()
	depth := 0
	var schedule func(now Time)
	schedule = func(now Time) {
		depth++
		if depth < 100 {
			c.After(time.Millisecond, schedule)
		}
	}
	c.At(Zero, schedule)
	c.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if c.Now() != Zero.Add(99*time.Millisecond) {
		t.Errorf("final time = %v", c.Now())
	}
}

// Property: for any set of (time, id) pairs, events fire sorted by time with
// ties broken by insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) > 500 {
			offsets = offsets[:500]
		}
		c := New()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, off := range offsets {
			i := i
			at := Time(off) * Time(time.Millisecond)
			c.At(at, func(now Time) { fired = append(fired, firing{now, i}) })
		}
		c.Run()
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: random interleavings of schedule/cancel never fire a cancelled
// event and always fire every non-cancelled one.
func TestPropertyCancelSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		fired := make(map[int]bool)
		cancelled := make(map[int]bool)
		var events []Handle
		n := 200
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(1000)) * Time(time.Millisecond)
			events = append(events, c.At(at, func(Time) { fired[i] = true }))
		}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				c.Cancel(events[i])
				cancelled[i] = true
			}
		}
		c.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && fired[i] {
				return false
			}
			if !cancelled[i] && !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	c := New()
	for i := 0; i < b.N; i++ {
		c.After(time.Duration(i%1000)*time.Microsecond, func(Time) {})
		if i%1024 == 1023 {
			c.Run()
		}
	}
	c.Run()
}

// A handle held past its event's firing must never affect the event that
// recycled the slot: Cancel through the stale handle is a no-op and Pending
// reports false, even though the underlying slot is live again.
func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	c := New()
	fired := false
	stale := c.At(FromSeconds(1), func(Time) {})
	c.Run() // fires and recycles the slot
	if stale.Pending() {
		t.Fatal("handle to a fired event should not be pending")
	}
	fresh := c.At(FromSeconds(2), func(Time) { fired = true })
	c.Cancel(stale) // must not cancel the recycled slot's new occupant
	if !fresh.Pending() {
		t.Fatal("stale Cancel reached the recycled event")
	}
	c.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if stale.At() != Forever {
		t.Errorf("stale At = %v, want Forever", stale.At())
	}
}

// Cancelled events must not linger in the queue until their deadline:
// once the cancelled fraction crosses the compaction threshold, the heap
// shrinks immediately even though none of the deadlines have passed.
func TestCancelledEventsCompacted(t *testing.T) {
	c := New()
	var hs []Handle
	n := 4 * compactAt
	for i := 0; i < n; i++ {
		hs = append(hs, c.At(FromSeconds(float64(1000+i)), func(Time) {}))
	}
	for _, h := range hs[1:] { // cancel all but the first
		c.Cancel(h)
	}
	if got := len(c.pq); got >= n/2 {
		t.Fatalf("heap holds %d slots after cancelling %d of %d events; compaction did not run", got, n-1, n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	fired := 0
	c.At(FromSeconds(1), func(Time) { fired++ })
	c.Run()
	if fired != 1 || c.Processed() != 2 {
		t.Fatalf("fired=%d processed=%d, want 1 and 2", fired, c.Processed())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.At(FromSeconds(5), func(Time) {})
	c.AdvanceTo(FromSeconds(3))
	if c.Now() != FromSeconds(3) {
		t.Fatalf("now = %v, want 3s", c.Now())
	}
	c.AdvanceTo(FromSeconds(3)) // advancing to now is a no-op
	for _, bad := range []Time{FromSeconds(2), FromSeconds(6)} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AdvanceTo(%v) should panic", bad)
				}
			}()
			c.AdvanceTo(bad)
		}()
	}
}

// Steady-state scheduling must not allocate: fired and cancelled events are
// recycled through the free list, so a schedule/fire or schedule/cancel
// cycle reuses slots instead of growing the heap or the garbage collector's
// workload. (Mirrors aibrix's BenchmarkAddRequest allocation discipline.)
func TestScheduleFireCycleDoesNotAllocate(t *testing.T) {
	c := New()
	fn := func(Time) {}
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		c.After(time.Millisecond, fn)
	}
	c.Run()
	avg := testing.AllocsPerRun(1000, func() {
		h := c.After(time.Millisecond, fn)
		c.Cancel(h)
		c.After(2*time.Millisecond, fn)
		c.Run()
	})
	if avg > 0 {
		t.Errorf("schedule/cancel/fire cycle allocates %.1f objects per run, want 0", avg)
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	c := New()
	fn := func(Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := c.After(time.Duration(i%1000)*time.Microsecond, fn)
		c.Cancel(h)
		if i%1024 == 1023 {
			c.Run()
		}
	}
	c.Run()
}
