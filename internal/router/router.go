// Package router implements pluggable request-routing policies for the
// multi-replica cluster simulation: the gateway layer that fronts N engine
// replicas and decides, per arriving request, which replica serves it.
// Policies range from the stateless round-robin baseline to the AIBrix-
// style prefix-affinity policy that sticks multi-turn sessions to the
// replica holding their KV prefix and falls back to load balancing when no
// replica does.
//
// Policies are deterministic: given the same request sequence and replica
// states they always pick the same replica, so cluster simulations are
// exactly reproducible.
package router

import (
	"fmt"
)

// Request is the routing-relevant view of one arriving request.
type Request struct {
	ID int
	// Session and Turn mark multi-turn conversation membership (Session 0 =
	// stateless). Affinity policies key on Session.
	Session int
	Turn    int
	// PromptLen and OutputLen are the request's token lengths.
	PromptLen, OutputLen int
}

// Replica is the router's read-only view of one engine replica.
type Replica interface {
	// ID is the replica's index in the cluster, stable across the run.
	ID() int
	// QueueDepth reports the replica's outstanding (queued + running)
	// request count.
	QueueDepth() int
	// FreeKVPages reports the replica's free device KV pages.
	FreeKVPages() int
	// CachedPrefixTokens reports how many tokens of the session's prefix
	// the replica's KV cache still holds (0 for unknown sessions). Probing
	// must not perturb the cache's eviction order.
	CachedPrefixTokens(session int) int
}

// Policy picks a serving replica for each arriving request. Implementations
// may keep state (e.g. the round-robin cursor); one Policy instance serves
// one cluster run.
type Policy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Pick returns the index into replicas of the chosen replica. The
	// slice is never empty.
	Pick(req Request, replicas []Replica) int
}

// Policy names accepted by ByName.
const (
	NameRoundRobin      = "round-robin"
	NameLeastQueue      = "least-queue"
	NameLeastKV         = "least-kv"
	NameSessionAffinity = "session-affinity"
)

// Names lists the built-in policy names.
func Names() []string {
	return []string{NameRoundRobin, NameLeastQueue, NameLeastKV, NameSessionAffinity}
}

// ByName constructs a fresh policy instance by name.
func ByName(name string) (Policy, error) {
	switch name {
	case NameRoundRobin:
		return NewRoundRobin(), nil
	case NameLeastQueue:
		return NewLeastQueue(), nil
	case NameLeastKV:
		return NewLeastKV(), nil
	case NameSessionAffinity:
		return NewSessionAffinity(), nil
	default:
		return nil, fmt.Errorf("router: unknown policy %q (have %v)", name, Names())
	}
}

// RoundRobin cycles through replicas in index order, ignoring load: the
// stateless baseline every gateway ships.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return NameRoundRobin }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ Request, replicas []Replica) int {
	i := p.next % len(replicas)
	p.next++
	return i
}

// LeastQueue routes to the replica with the fewest outstanding requests
// (queued + running), breaking ties by lowest replica index.
type LeastQueue struct{}

// NewLeastQueue returns the least-queue policy.
func NewLeastQueue() *LeastQueue { return &LeastQueue{} }

// Name implements Policy.
func (p *LeastQueue) Name() string { return NameLeastQueue }

// Pick implements Policy.
func (p *LeastQueue) Pick(_ Request, replicas []Replica) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		if replicas[i].QueueDepth() < replicas[best].QueueDepth() {
			best = i
		}
	}
	return best
}

// LeastKV routes to the replica with the most free KV pages — memory
// headroom as the load signal — breaking ties by lowest replica index.
type LeastKV struct{}

// NewLeastKV returns the least-KV policy.
func NewLeastKV() *LeastKV { return &LeastKV{} }

// Name implements Policy.
func (p *LeastKV) Name() string { return NameLeastKV }

// Pick implements Policy.
func (p *LeastKV) Pick(_ Request, replicas []Replica) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		if replicas[i].FreeKVPages() > replicas[best].FreeKVPages() {
			best = i
		}
	}
	return best
}

// SessionAffinity sticks multi-turn requests to the replica holding their
// prefix KV (the replica reporting the largest cached prefix for the
// session), falling back to least-queue for stateless requests, first
// turns, and sessions whose prefix no replica retains — the AIBrix-style
// prefix-cache-aware routing policy.
type SessionAffinity struct {
	fallback LeastQueue
}

// NewSessionAffinity returns the session-affinity policy.
func NewSessionAffinity() *SessionAffinity { return &SessionAffinity{} }

// Name implements Policy.
func (p *SessionAffinity) Name() string { return NameSessionAffinity }

// Pick implements Policy.
func (p *SessionAffinity) Pick(req Request, replicas []Replica) int {
	if req.Session != 0 {
		best, bestTokens := -1, 0
		for i, r := range replicas {
			if t := r.CachedPrefixTokens(req.Session); t > bestTokens {
				best, bestTokens = i, t
			}
		}
		if best >= 0 {
			return best
		}
	}
	return p.fallback.Pick(req, replicas)
}
