// Package router implements pluggable request-routing policies for the
// multi-replica cluster simulation: the gateway layer that fronts N engine
// replicas and decides, per arriving request, which replica serves it.
// Policies range from the stateless round-robin baseline to the AIBrix-
// style prefix-affinity policy that sticks multi-turn sessions to the
// replica holding their KV prefix and falls back to load balancing when no
// replica does.
//
// Policies are deterministic: given the same request sequence and replica
// states they always pick the same replica, so cluster simulations are
// exactly reproducible.
package router

import (
	"fmt"
)

// Request is the routing-relevant view of one arriving request.
type Request struct {
	ID int
	// Session and Turn mark multi-turn conversation membership (Session 0 =
	// stateless). Affinity policies key on Session.
	Session int
	Turn    int
	// PromptLen and OutputLen are the request's token lengths.
	PromptLen, OutputLen int
}

// Replica is the router's read-only view of one engine replica.
type Replica interface {
	// ID is the replica's index in the cluster, stable across the run.
	ID() int
	// QueueDepth reports the replica's outstanding (queued + running)
	// request count.
	QueueDepth() int
	// FreeKVPages reports the replica's free device KV pages.
	FreeKVPages() int
	// TotalKVPages reports the replica's KV pool capacity in pages. In a
	// heterogeneous pool this is the capacity signal weighted policies
	// normalize by.
	TotalKVPages() int
	// FreeKVTokens reports the replica's free device KV capacity in
	// tokens (free pages × page granularity).
	FreeKVTokens() int
	// CachedPrefixTokens reports how many tokens of the session's prefix
	// the replica's KV cache still holds pinned (0 for unknown sessions).
	// Probing must not perturb the cache's eviction order.
	CachedPrefixTokens(session int) int
}

// Policy picks a serving replica for each arriving request. Implementations
// may keep state (e.g. the round-robin cursor); one Policy instance serves
// one cluster run.
type Policy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Pick returns the index into replicas of the chosen replica. The
	// slice is never empty.
	Pick(req Request, replicas []Replica) int
}

// Scorer is an optional Policy extension for observability. Score reports
// the policy's figure of merit for routing req to r — the number the
// flight recorder attaches to route-decision events so a trace shows *why*
// a replica won, not just that it did. Scoring is read-only: it must not
// advance cursors or otherwise mutate policy state, and the routed outcome
// must be identical whether or not anyone calls it.
type Scorer interface {
	Score(req Request, r Replica) float64
}

// Policy names accepted by ByName.
const (
	NameRoundRobin             = "round-robin"
	NameLeastQueue             = "least-queue"
	NameLeastKV                = "least-kv"
	NameWeightedCapacity       = "weighted-capacity"
	NameSessionAffinity        = "session-affinity"
	NameIndexedLeastQueue      = "indexed-least-queue"
	NameIndexedSessionAffinity = "indexed-session-affinity"
)

// Names lists the built-in policy names. The indexed variants route
// against the event-published prefix index (see indexed.go); a cluster run
// binds its index to them automatically, defaulting to the synchronous
// index spec when none is configured.
func Names() []string {
	return []string{NameRoundRobin, NameLeastQueue, NameLeastKV,
		NameWeightedCapacity, NameSessionAffinity,
		NameIndexedLeastQueue, NameIndexedSessionAffinity}
}

// ByName constructs a fresh policy instance by name.
func ByName(name string) (Policy, error) {
	switch name {
	case NameRoundRobin:
		return NewRoundRobin(), nil
	case NameLeastQueue:
		return NewLeastQueue(), nil
	case NameLeastKV:
		return NewLeastKV(), nil
	case NameWeightedCapacity:
		return NewWeightedCapacity(), nil
	case NameSessionAffinity:
		return NewSessionAffinity(), nil
	case NameIndexedLeastQueue:
		return NewIndexedLeastQueue(), nil
	case NameIndexedSessionAffinity:
		return NewIndexedSessionAffinity(), nil
	default:
		return nil, fmt.Errorf("router: unknown policy %q (have %v)", name, Names())
	}
}

// RoundRobin cycles through replicas in index order, ignoring load: the
// stateless baseline every gateway ships.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return NameRoundRobin }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ Request, replicas []Replica) int {
	i := p.next % len(replicas)
	p.next++
	return i
}

// Score implements Scorer. Round-robin consults no load signal, so every
// replica scores zero; notably it does NOT advance the cursor.
func (p *RoundRobin) Score(_ Request, _ Replica) float64 { return 0 }

// LeastQueue routes to the replica with the fewest outstanding requests
// (queued + running), breaking ties by lowest replica ID. Tie-breaking on
// the ID rather than the slice position keeps picks stable however the
// caller orders its view (an autoscaled cluster routes over the shifting
// subset of active replicas).
type LeastQueue struct{}

// NewLeastQueue returns the least-queue policy.
func NewLeastQueue() *LeastQueue { return &LeastQueue{} }

// Name implements Policy.
func (p *LeastQueue) Name() string { return NameLeastQueue }

// Pick implements Policy.
func (p *LeastQueue) Pick(_ Request, replicas []Replica) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		qi, qb := replicas[i].QueueDepth(), replicas[best].QueueDepth()
		if qi < qb || (qi == qb && replicas[i].ID() < replicas[best].ID()) {
			best = i
		}
	}
	return best
}

// Score implements Scorer: the replica's outstanding queue depth (lower
// wins).
func (p *LeastQueue) Score(_ Request, r Replica) float64 {
	return float64(r.QueueDepth())
}

// LeastKV routes to the replica with the most free KV pages — memory
// headroom as the load signal — breaking ties by lowest replica ID.
type LeastKV struct{}

// NewLeastKV returns the least-KV policy.
func NewLeastKV() *LeastKV { return &LeastKV{} }

// Name implements Policy.
func (p *LeastKV) Name() string { return NameLeastKV }

// Pick implements Policy.
func (p *LeastKV) Pick(_ Request, replicas []Replica) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		fi, fb := replicas[i].FreeKVPages(), replicas[best].FreeKVPages()
		if fi > fb || (fi == fb && replicas[i].ID() < replicas[best].ID()) {
			best = i
		}
	}
	return best
}

// Score implements Scorer: the replica's free KV pages (higher wins).
func (p *LeastKV) Score(_ Request, r Replica) float64 {
	return float64(r.FreeKVPages())
}

// WeightedCapacity routes to the replica with the lowest outstanding load
// per unit of KV capacity — the heterogeneous-pool load balancer: a
// replica with twice the pool absorbs twice the queue before it looks as
// busy as its smaller peer. Ties break by larger capacity, then lowest
// replica ID (stable under any view ordering, including an autoscaled
// cluster's shifting active subset).
type WeightedCapacity struct{}

// NewWeightedCapacity returns the capacity-weighted policy.
func NewWeightedCapacity() *WeightedCapacity { return &WeightedCapacity{} }

// Name implements Policy.
func (p *WeightedCapacity) Name() string { return NameWeightedCapacity }

// Pick implements Policy.
func (p *WeightedCapacity) Pick(_ Request, replicas []Replica) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		// Compare q_i/cap_i < q_best/cap_best by cross-multiplying (exact
		// integer arithmetic keeps picks deterministic).
		qi, ci := replicas[i].QueueDepth(), replicas[i].TotalKVPages()
		qb, cb := replicas[best].QueueDepth(), replicas[best].TotalKVPages()
		li, lb := qi*cb, qb*ci
		if li < lb || (li == lb && (ci > cb || (ci == cb && replicas[i].ID() < replicas[best].ID()))) {
			best = i
		}
	}
	return best
}

// Score implements Scorer: outstanding load per unit of KV capacity (lower
// wins). A zero-capacity replica scores its raw queue depth.
func (p *WeightedCapacity) Score(_ Request, r Replica) float64 {
	q := float64(r.QueueDepth())
	if c := r.TotalKVPages(); c > 0 {
		return q / float64(c)
	}
	return q
}

// SessionAffinity sticks multi-turn requests to the replica holding their
// prefix KV (the replica reporting the largest pinned prefix for the
// session) — the AIBrix-style prefix-cache-aware routing policy. Under the
// unified residency model the prefix competes with live requests for
// pages, so the policy consults the target before sticking and falls back
// to least-queue when the target cannot serve the session well:
//
//   - Memory: a replica too full to hold the request's full lifetime
//     context (prompt plus decode growth, counting the pinned prefix
//     itself, which admission folds into the allocation) would evict the
//     very prefix the request came for, or preempt its neighbors.
//   - Load: a replica queueing far beyond its lightest peer (more than
//     2× the minimum queue plus a fixed slack) would stall the request
//     longer than recomputing the prefix elsewhere costs.
//
// In both cases the cluster may migrate the pinned prefix to the fallback
// replica instead of recomputing it. Stateless requests, first turns, and
// sessions whose prefix every replica evicted also fall back. The
// fallback is capacity-weighted: on a homogeneous pool it reduces to
// least-queue, and on a mixed pool it steers displaced sessions toward
// the replicas with the room to hold them.
type SessionAffinity struct {
	fallback WeightedCapacity
}

// affinityOverloadSlack is the queue-depth headroom an affinity target
// gets over 2× the cluster's lightest queue before it counts as
// overloaded.
const affinityOverloadSlack = 4

// NewSessionAffinity returns the session-affinity policy.
func NewSessionAffinity() *SessionAffinity { return &SessionAffinity{} }

// Name implements Policy.
func (p *SessionAffinity) Name() string { return NameSessionAffinity }

// Pick implements Policy.
func (p *SessionAffinity) Pick(req Request, replicas []Replica) int {
	if req.Session != 0 {
		best, bestTokens := -1, 0
		minQueue := replicas[0].QueueDepth()
		for i, r := range replicas {
			if q := r.QueueDepth(); q < minQueue {
				minQueue = q
			}
			if t := r.CachedPrefixTokens(req.Session); t > bestTokens {
				best, bestTokens = i, t
			}
		}
		// The pinned prefix adopts into the admission, so it counts as
		// headroom alongside the free pool; the request then grows by its
		// output during decode.
		if best >= 0 &&
			replicas[best].FreeKVTokens()+bestTokens >= req.PromptLen+req.OutputLen &&
			replicas[best].QueueDepth() <= 2*minQueue+affinityOverloadSlack {
			return best
		}
	}
	return p.fallback.Pick(req, replicas)
}

// Score implements Scorer: the pinned prefix tokens the replica holds for
// the request's session (higher wins), falling back to the capacity-
// weighted load score when the replica holds none. Read-only — it probes
// CachedPrefixTokens, which by the Replica contract does not perturb
// eviction order.
func (p *SessionAffinity) Score(req Request, r Replica) float64 {
	if req.Session != 0 {
		if t := r.CachedPrefixTokens(req.Session); t > 0 {
			return float64(t)
		}
	}
	return p.fallback.Score(req, r)
}
