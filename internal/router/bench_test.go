package router

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/prefixindex"
)

// benchState builds n replicas in ID order with varied-but-deterministic
// load, plus a bound degenerate prefix index carrying the same view: every
// session 1..n is pinned somewhere, so affinity picks exercise the holder
// lookup rather than short-circuiting on a miss.
func benchState(n int) ([]Replica, *prefixindex.Index) {
	reps := make([]Replica, n)
	x, err := prefixindex.New(prefixindex.Spec{}, n)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		f := &fakeReplica{id: i, queue: (i * 7) % 13, freeKV: 200 + (i*37)%800,
			totalKV: 1000, cached: map[int]int{}}
		reps[i] = f
		x.SeedReplica(i, 1000, 16)
		x.SetActive(i, true)
		x.Publish(prefixindex.Pub{Replica: i, Kind: prefixindex.EvLoad,
			Session: -1, Val: int64(f.queue)})
	}
	for s := 1; s <= n; s++ {
		holder := (s * 13) % n
		reps[holder].(*fakeReplica).cached[s] = 640
		x.Publish(prefixindex.Pub{Replica: holder, Kind: prefixindex.EvPin,
			Session: s, Val: 640})
	}
	return reps, x
}

func benchPolicies(x *prefixindex.Index) []Policy {
	ilq, isa := NewIndexedLeastQueue(), NewIndexedSessionAffinity()
	ilq.BindIndex(x)
	isa.BindIndex(x)
	return []Policy{NewLeastQueue(), NewSessionAffinity(), ilq, isa}
}

// BenchmarkRouterPick measures one routing decision at 4, 64, and 500
// replicas. The omniscient policies scan the pool, so their per-decision
// cost grows with N; the indexed policies read the prefix index's maps and
// tournament-tree roots, so theirs must stay flat — the property
// TestRouterPickFlatness gates in CI.
func BenchmarkRouterPick(b *testing.B) {
	for _, n := range []int{4, 64, 500} {
		reps, x := benchState(n)
		for _, p := range benchPolicies(x) {
			b.Run(fmt.Sprintf("%s/replicas=%d", p.Name(), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					req := Request{ID: i, Session: 1 + i%n, Turn: 2,
						PromptLen: 512, OutputLen: 128}
					_ = p.Pick(req, reps)
				}
			})
		}
	}
}

// TestRouterPickFlatness is the scaling gate behind the indexed policies'
// O(1) claim: the per-decision cost at 500 replicas must stay within 1.5×
// of the 4-replica cost. The omniscient policies are exempt — their O(N)
// scans are the thing the index exists to avoid, and BenchmarkRouterPick
// shows the gap. Timing-sensitive, so it is opt-in via
// ROUTER_FLATNESS_GATE=1 and rides the CI bench-smoke step rather than the
// unit suite; each cost is the best of three testing.Benchmark runs to damp
// scheduler noise.
func TestRouterPickFlatness(t *testing.T) {
	if os.Getenv("ROUTER_FLATNESS_GATE") == "" {
		t.Skip("set ROUTER_FLATNESS_GATE=1 to run the scaling gate")
	}
	const flatness = 1.5
	cost := func(mk func(*prefixindex.Index) Policy, n int) float64 {
		reps, x := benchState(n)
		p := mk(x)
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					req := Request{ID: i, Session: 1 + i%n, Turn: 2,
						PromptLen: 512, OutputLen: 128}
					_ = p.Pick(req, reps)
				}
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	makers := map[string]func(*prefixindex.Index) Policy{
		NameIndexedLeastQueue: func(x *prefixindex.Index) Policy {
			p := NewIndexedLeastQueue()
			p.BindIndex(x)
			return p
		},
		NameIndexedSessionAffinity: func(x *prefixindex.Index) Policy {
			p := NewIndexedSessionAffinity()
			p.BindIndex(x)
			return p
		},
	}
	for name, mk := range makers {
		small, large := cost(mk, 4), cost(mk, 500)
		t.Logf("%s: %.1f ns/op at 4 replicas, %.1f ns/op at 500 (%.2fx)",
			name, small, large, large/small)
		if large > flatness*small {
			t.Errorf("%s: 500-replica pick costs %.1f ns/op, more than %.1fx the 4-replica %.1f ns/op",
				name, large, flatness, small)
		}
	}
}
