package router

import (
	"testing"
)

// fakeReplica is a synthetic replica state for policy tests.
type fakeReplica struct {
	id     int
	queue  int
	freeKV int
	cached map[int]int
}

func (f *fakeReplica) ID() int          { return f.id }
func (f *fakeReplica) QueueDepth() int  { return f.queue }
func (f *fakeReplica) FreeKVPages() int { return f.freeKV }
func (f *fakeReplica) CachedPrefixTokens(session int) int {
	return f.cached[session]
}

func replicas(fs ...*fakeReplica) []Replica {
	out := make([]Replica, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func TestPoliciesPick(t *testing.T) {
	// Three replicas: 0 busy but memory-rich, 1 idle but memory-poor,
	// 2 middling but holding session 7's prefix.
	state := func() []Replica {
		return replicas(
			&fakeReplica{id: 0, queue: 9, freeKV: 900, cached: map[int]int{}},
			&fakeReplica{id: 1, queue: 1, freeKV: 100, cached: map[int]int{}},
			&fakeReplica{id: 2, queue: 4, freeKV: 400, cached: map[int]int{7: 640}},
		)
	}
	session7 := Request{ID: 1, Session: 7, Turn: 2, PromptLen: 700, OutputLen: 100}
	stateless := Request{ID: 2, PromptLen: 512, OutputLen: 256}

	cases := []struct {
		policy Policy
		req    Request
		want   int
	}{
		{NewLeastQueue(), stateless, 1},
		{NewLeastQueue(), session7, 1},
		{NewLeastKV(), stateless, 0},
		{NewLeastKV(), session7, 0},
		// Affinity: session 7 sticks to replica 2 despite its load ...
		{NewSessionAffinity(), session7, 2},
		// ... but stateless requests and unknown sessions fall back to
		// least-queue.
		{NewSessionAffinity(), stateless, 1},
		{NewSessionAffinity(), Request{ID: 3, Session: 8, Turn: 2}, 1},
	}
	for _, c := range cases {
		if got := c.policy.Pick(c.req, state()); got != c.want {
			t.Errorf("%s.Pick(session=%d) = %d, want %d", c.policy.Name(), c.req.Session, got, c.want)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	reps := replicas(
		&fakeReplica{id: 0, queue: 100},
		&fakeReplica{id: 1},
		&fakeReplica{id: 2},
	)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Pick(Request{ID: i}, reps); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestTiesBreakByLowestIndex(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, queue: 2, freeKV: 50},
		&fakeReplica{id: 1, queue: 2, freeKV: 50},
	)
	if got := NewLeastQueue().Pick(Request{}, reps); got != 0 {
		t.Errorf("least-queue tie = %d, want 0", got)
	}
	if got := NewLeastKV().Pick(Request{}, reps); got != 0 {
		t.Errorf("least-kv tie = %d, want 0", got)
	}
}

func TestAffinityPrefersLargestPrefix(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, cached: map[int]int{5: 100}},
		&fakeReplica{id: 1, cached: map[int]int{5: 800}},
		&fakeReplica{id: 2, queue: 0},
	)
	if got := NewSessionAffinity().Pick(Request{Session: 5, Turn: 3}, reps); got != 1 {
		t.Errorf("affinity = %d, want 1 (largest cached prefix)", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("warm-pool"); err == nil {
		t.Error("ByName with unknown policy should fail")
	}
}
