package router

import (
	"testing"

	"repro/internal/prefixindex"
)

// fakeReplica is a synthetic replica state for policy tests; pages are
// 16 tokens, and a zero totalKV defaults to 1000 pages.
type fakeReplica struct {
	id      int
	queue   int
	freeKV  int
	totalKV int
	cached  map[int]int
}

func (f *fakeReplica) ID() int          { return f.id }
func (f *fakeReplica) QueueDepth() int  { return f.queue }
func (f *fakeReplica) FreeKVPages() int { return f.freeKV }
func (f *fakeReplica) TotalKVPages() int {
	if f.totalKV == 0 {
		return 1000
	}
	return f.totalKV
}
func (f *fakeReplica) FreeKVTokens() int { return f.freeKV * 16 }
func (f *fakeReplica) CachedPrefixTokens(session int) int {
	return f.cached[session]
}

func replicas(fs ...*fakeReplica) []Replica {
	out := make([]Replica, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func TestPoliciesPick(t *testing.T) {
	// Three replicas: 0 busy but memory-rich, 1 idle but memory-poor,
	// 2 middling but holding session 7's prefix.
	state := func() []Replica {
		return replicas(
			&fakeReplica{id: 0, queue: 9, freeKV: 900, cached: map[int]int{}},
			&fakeReplica{id: 1, queue: 1, freeKV: 100, cached: map[int]int{}},
			&fakeReplica{id: 2, queue: 4, freeKV: 400, cached: map[int]int{7: 640}},
		)
	}
	session7 := Request{ID: 1, Session: 7, Turn: 2, PromptLen: 700, OutputLen: 100}
	stateless := Request{ID: 2, PromptLen: 512, OutputLen: 256}

	cases := []struct {
		policy Policy
		req    Request
		want   int
	}{
		{NewLeastQueue(), stateless, 1},
		{NewLeastQueue(), session7, 1},
		{NewLeastKV(), stateless, 0},
		{NewLeastKV(), session7, 0},
		// Affinity: session 7 sticks to replica 2 despite its load ...
		{NewSessionAffinity(), session7, 2},
		// ... but stateless requests and unknown sessions fall back to
		// least-queue.
		{NewSessionAffinity(), stateless, 1},
		{NewSessionAffinity(), Request{ID: 3, Session: 8, Turn: 2}, 1},
	}
	for _, c := range cases {
		if got := c.policy.Pick(c.req, state()); got != c.want {
			t.Errorf("%s.Pick(session=%d) = %d, want %d", c.policy.Name(), c.req.Session, got, c.want)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	reps := replicas(
		&fakeReplica{id: 0, queue: 100},
		&fakeReplica{id: 1},
		&fakeReplica{id: 2},
	)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Pick(Request{ID: i}, reps); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestTiesBreakByLowestIndex(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, queue: 2, freeKV: 50},
		&fakeReplica{id: 1, queue: 2, freeKV: 50},
	)
	if got := NewLeastQueue().Pick(Request{}, reps); got != 0 {
		t.Errorf("least-queue tie = %d, want 0", got)
	}
	if got := NewLeastKV().Pick(Request{}, reps); got != 0 {
		t.Errorf("least-kv tie = %d, want 0", got)
	}
}

func TestAffinityPrefersLargestPrefix(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, freeKV: 500, cached: map[int]int{5: 100}},
		&fakeReplica{id: 1, freeKV: 500, cached: map[int]int{5: 800}},
		&fakeReplica{id: 2, freeKV: 500, queue: 0},
	)
	if got := NewSessionAffinity().Pick(Request{Session: 5, Turn: 3, PromptLen: 900}, reps); got != 1 {
		t.Errorf("affinity = %d, want 1 (largest cached prefix)", got)
	}
}

// TestAffinityFallsBackWhenTargetFull: the unified residency model means a
// replica with no free KV headroom for the prompt would evict the very
// prefix the session came for, so affinity yields to load balancing.
func TestAffinityFallsBackWhenTargetFull(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, queue: 3, freeKV: 500},
		// Replica 1 holds the prefix but only 32 free KV tokens.
		&fakeReplica{id: 1, queue: 5, freeKV: 2, cached: map[int]int{5: 800}},
		&fakeReplica{id: 2, queue: 1, freeKV: 500},
	)
	req := Request{Session: 5, Turn: 3, PromptLen: 900}
	if got := NewSessionAffinity().Pick(req, reps); got != 2 {
		t.Errorf("affinity with full target = %d, want 2 (least-queue fallback)", got)
	}
	// A prompt the target can still hold sticks as before.
	small := Request{Session: 5, Turn: 3, PromptLen: 32}
	if got := NewSessionAffinity().Pick(small, reps); got != 1 {
		t.Errorf("affinity with fitting prompt = %d, want 1", got)
	}
	// The pinned prefix itself counts as headroom: 32 free tokens + 800
	// adoptable cover an 830-token prompt.
	adoptable := Request{Session: 5, Turn: 3, PromptLen: 830}
	if got := NewSessionAffinity().Pick(adoptable, reps); got != 1 {
		t.Errorf("affinity with adoptable pin = %d, want 1", got)
	}
}

// TestAffinityFallsBackWhenTargetOverloaded: a pin holder queueing far
// beyond its lightest peer stalls the session longer than recomputing (or
// migrating) the prefix elsewhere, so affinity yields.
func TestAffinityFallsBackWhenTargetOverloaded(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, queue: 0, freeKV: 500},
		&fakeReplica{id: 1, queue: 12, freeKV: 500, cached: map[int]int{5: 800}},
	)
	req := Request{Session: 5, Turn: 3, PromptLen: 900}
	if got := NewSessionAffinity().Pick(req, reps); got != 0 {
		t.Errorf("affinity with overloaded target = %d, want 0 (least-queue fallback)", got)
	}
	// A moderately busy target still wins: affinity tolerates 2×min+slack.
	reps[1].(*fakeReplica).queue = 4
	if got := NewSessionAffinity().Pick(req, reps); got != 1 {
		t.Errorf("affinity with tolerable queue = %d, want 1", got)
	}
}

// TestWeightedCapacityNormalizesByPool: a big replica absorbs
// proportionally more queue before losing to a small one.
func TestWeightedCapacityNormalizesByPool(t *testing.T) {
	reps := replicas(
		&fakeReplica{id: 0, queue: 3, totalKV: 4000}, // 3/4000
		&fakeReplica{id: 1, queue: 1, totalKV: 1000}, // 4/4000
	)
	if got := NewWeightedCapacity().Pick(Request{}, reps); got != 0 {
		t.Errorf("weighted = %d, want 0 (lower load per capacity)", got)
	}
	// Equal normalized load ties toward the larger pool.
	tied := replicas(
		&fakeReplica{id: 0, queue: 1, totalKV: 1000},
		&fakeReplica{id: 1, queue: 4, totalKV: 4000},
	)
	if got := NewWeightedCapacity().Pick(Request{}, tied); got != 1 {
		t.Errorf("weighted tie = %d, want 1 (larger capacity)", got)
	}
	// Empty cluster-wide queue also ties toward capacity.
	idle := replicas(
		&fakeReplica{id: 0, totalKV: 1000},
		&fakeReplica{id: 1, totalKV: 4000},
	)
	if got := NewWeightedCapacity().Pick(Request{}, idle); got != 1 {
		t.Errorf("weighted idle = %d, want 1 (larger capacity)", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("warm-pool"); err == nil {
		t.Error("ByName with unknown policy should fail")
	}
}

// TestTieBreakStableByID: when two replicas report identical load signals,
// every selection policy must break the tie by the lower replica ID — not
// by slice position, which shifts as an autoscaled cluster's active subset
// changes. The views here are deliberately NOT in ID order.
func TestTieBreakStableByID(t *testing.T) {
	// Replicas 5 and 2 are indistinguishable on every signal; replica 9 is
	// strictly worse (deeper queue, less memory).
	state := func() []Replica {
		return replicas(
			&fakeReplica{id: 5, queue: 3, freeKV: 400, totalKV: 800},
			&fakeReplica{id: 9, queue: 7, freeKV: 100, totalKV: 800},
			&fakeReplica{id: 2, queue: 3, freeKV: 400, totalKV: 800},
		)
	}
	req := Request{ID: 1, PromptLen: 256, OutputLen: 128}

	for _, p := range []Policy{NewLeastQueue(), NewLeastKV(), NewWeightedCapacity(), NewSessionAffinity()} {
		views := state()
		pick := p.Pick(req, views)
		if got := views[pick].ID(); got != 2 {
			t.Errorf("%s: tied pick went to replica %d, want lowest ID 2", p.Name(), got)
		}
		// The same state permuted must pick the same replica.
		views = state()
		views[0], views[2] = views[2], views[0]
		pick = p.Pick(req, views)
		if got := views[pick].ID(); got != 2 {
			t.Errorf("%s: permuted tied pick went to replica %d, want 2", p.Name(), got)
		}
	}

	// The indexed variants must break the same tie the same way through the
	// prefix-index view: replicas 2 and 5 publish identical load, the
	// tournament trees must crown the lowest ID, and the pick must survive
	// view permutation (the tree returns a replica ID, not a slice slot).
	bindIndex := func(t *testing.T) *prefixindex.Index {
		t.Helper()
		x, err := prefixindex.New(prefixindex.Spec{}, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range state() {
			fr := f.(*fakeReplica)
			x.SeedReplica(fr.id, fr.TotalKVPages(), 16)
			x.SetActive(fr.id, true)
			x.Publish(prefixindex.Pub{Replica: fr.id, Kind: prefixindex.EvLoad,
				Session: -1, Val: int64(fr.queue)})
		}
		return x
	}
	for _, p := range []Policy{NewIndexedLeastQueue(), NewIndexedSessionAffinity()} {
		p.(IndexBinder).BindIndex(bindIndex(t))
		views := state()
		pick := p.Pick(req, views)
		if got := views[pick].ID(); got != 2 {
			t.Errorf("%s: tied pick went to replica %d, want lowest ID 2", p.Name(), got)
		}
		views = state()
		views[0], views[2] = views[2], views[0]
		pick = p.Pick(req, views)
		if got := views[pick].ID(); got != 2 {
			t.Errorf("%s: permuted tied pick went to replica %d, want 2", p.Name(), got)
		}
	}
}
