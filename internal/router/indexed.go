package router

import (
	"repro/internal/prefixindex"
)

// Indexed policies route against the event-published global prefix index
// instead of scanning the live replica slice: session lookups are a map
// read, load winners are tournament-tree root reads, and the per-decision
// cost is independent of pool size. The cluster binds its index before the
// run via IndexBinder; with the degenerate index spec (zero delay, zero
// drops, no heartbeat) each indexed policy reproduces its omniscient twin
// decision for decision.
//
// Bounded staleness: when the chosen replica's digest is older than the
// spec's staleness bound the policy diverts to the capacity-weighted tree
// winner — a fallback that is itself O(1), never a rescan of the pool.

// IndexBinder is implemented by policies that route against a prefix
// index. The cluster binds its index to the policy before the run starts.
type IndexBinder interface {
	// BindIndex installs the index the policy reads. Must be called
	// before the first Pick.
	BindIndex(x *prefixindex.Index)
}

// viewIndexOf locates the replica with the given ID in the router's view
// slice. The cluster passes views in ascending ID order with IDs dense
// from 0, so the direct probe or the binary search resolves in O(1) /
// O(log N) on the hot path; the linear sweep only backstops synthetic
// test views that shuffle replicas arbitrarily.
func viewIndexOf(replicas []Replica, id int) int {
	if id >= 0 && id < len(replicas) && replicas[id].ID() == id {
		return id
	}
	lo, hi := 0, len(replicas)
	for lo < hi {
		mid := (lo + hi) / 2
		if replicas[mid].ID() < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(replicas) && replicas[lo].ID() == id {
		return lo
	}
	for i, r := range replicas {
		if r.ID() == id {
			return i
		}
	}
	return -1
}

// IndexedLeastQueue routes to the index's least-queue tree winner — the
// same replica the omniscient LeastQueue scan would pick when the index is
// current — without touching any replica state. A stale winner digest
// diverts to the capacity-weighted winner.
type IndexedLeastQueue struct {
	idx *prefixindex.Index
	// scan is the safety net for a winner that is not in the caller's
	// view (an index/view disagreement no cluster run produces; synthetic
	// router tests can).
	scan LeastQueue
}

// NewIndexedLeastQueue returns an unbound indexed least-queue policy.
func NewIndexedLeastQueue() *IndexedLeastQueue { return &IndexedLeastQueue{} }

// Name implements Policy.
func (p *IndexedLeastQueue) Name() string { return NameIndexedLeastQueue }

// BindIndex implements IndexBinder.
func (p *IndexedLeastQueue) BindIndex(x *prefixindex.Index) { p.idx = x }

// Pick implements Policy.
func (p *IndexedLeastQueue) Pick(req Request, replicas []Replica) int {
	x := p.idx
	if x == nil {
		// Unbound (constructed outside a cluster run): behave as the
		// omniscient policy rather than crash.
		return p.scan.Pick(req, replicas)
	}
	w := x.LeastQueue()
	if w >= 0 && !x.Fresh(w) {
		x.Note(prefixindex.OutcomeStale)
		w = x.LeastLoad()
	}
	if w >= 0 {
		if vi := viewIndexOf(replicas, w); vi >= 0 {
			return vi
		}
	}
	return p.scan.Pick(req, replicas)
}

// Score implements Scorer: the index's view of the replica's queue depth
// (lower wins).
func (p *IndexedLeastQueue) Score(_ Request, r Replica) float64 {
	if p.idx == nil {
		return float64(r.QueueDepth())
	}
	return float64(p.idx.QueueOf(r.ID()))
}

// IndexedSessionAffinity sticks sessions to the replica the index believes
// holds their largest pinned prefix, guarded exactly like the omniscient
// SessionAffinity: the holder must have KV headroom for the request's
// lifetime context and must not queue beyond 2× the lightest replica plus
// slack. Under per-change signalling the headroom probe reads the holder's
// live free tokens (one replica, O(1)); under heartbeats it uses the
// digest's bucket-quantized estimate. Misses, stale digests, and failed
// guards divert to the capacity-weighted tree winner.
type IndexedSessionAffinity struct {
	idx *prefixindex.Index
	// scan backstops unbound use and index/view disagreement.
	scan SessionAffinity
}

// NewIndexedSessionAffinity returns an unbound indexed affinity policy.
func NewIndexedSessionAffinity() *IndexedSessionAffinity {
	return &IndexedSessionAffinity{}
}

// Name implements Policy.
func (p *IndexedSessionAffinity) Name() string { return NameIndexedSessionAffinity }

// BindIndex implements IndexBinder.
func (p *IndexedSessionAffinity) BindIndex(x *prefixindex.Index) { p.idx = x }

// Pick implements Policy.
func (p *IndexedSessionAffinity) Pick(req Request, replicas []Replica) int {
	x := p.idx
	if x == nil {
		return p.scan.Pick(req, replicas)
	}
	if req.Session != 0 {
		if holder, tokens, ok := x.HolderFor(req.Session); !ok {
			x.Note(prefixindex.OutcomeMiss)
		} else if !x.Fresh(holder) {
			x.Note(prefixindex.OutcomeStale)
		} else if vi := viewIndexOf(replicas, holder); vi >= 0 {
			free := x.FreeTokensOf(holder)
			if x.LiveHeadroom() {
				free = replicas[vi].FreeKVTokens()
			}
			switch {
			case free+tokens < req.PromptLen+req.OutputLen:
				x.Note(prefixindex.OutcomeHeadroom)
			case x.QueueOf(holder) > 2*x.MinQueue()+affinityOverloadSlack:
				x.Note(prefixindex.OutcomeOverload)
			default:
				x.Note(prefixindex.OutcomeHit)
				return vi
			}
		}
	}
	if w := x.LeastLoad(); w >= 0 {
		if vi := viewIndexOf(replicas, w); vi >= 0 {
			return vi
		}
	}
	return p.scan.Pick(req, replicas)
}

// Score implements Scorer: the indexed prefix tokens the replica holds for
// the session (higher wins), else the index's capacity-weighted load score.
func (p *IndexedSessionAffinity) Score(req Request, r Replica) float64 {
	x := p.idx
	if x == nil {
		return p.scan.Score(req, r)
	}
	if req.Session != 0 {
		if holder, tokens, ok := x.HolderFor(req.Session); ok && holder == r.ID() {
			return float64(tokens)
		}
	}
	q := float64(x.QueueOf(r.ID()))
	if c := r.TotalKVPages(); c > 0 {
		return q / float64(c)
	}
	return q
}
