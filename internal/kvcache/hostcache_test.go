package kvcache

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// hostRig is a prefix rig with the host-tier cache enabled.
func hostRig(t testing.TB) *testRig {
	cfg := fullConfig()
	cfg.PrefixPages = 32
	cfg.HostCache = true
	return newRig(t, cfg)
}

// TestEvictedPinLeavesHostMirror: evicting a pin under HostCache records a
// host mirror sized like the pin, surfaced in Stats, and the pool frees
// exactly as without the cache.
func TestEvictedPinLeavesHostMirror(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 7, 160, 0) // 10 pages
	rig.m.ReclaimPrefixPages(10, 0, 0)
	if rig.m.PeekPrefix(7) != 0 {
		t.Fatal("pin should be evicted")
	}
	rig.clock.Run()
	if rig.m.HostMirroredPages() != 10 {
		t.Errorf("mirrored pages = %d, want 10", rig.m.HostMirroredPages())
	}
	if got := rig.m.HostMirrorTokens(7); got != 160 {
		t.Errorf("mirror tokens = %d, want 160", got)
	}
	if s := rig.m.Stats(); s.HostMirroredPages != 10 {
		t.Errorf("stats mirrored pages = %d", s.HostMirroredPages)
	}
}

// TestReclaimNeverCountsHostMirroredPagesAsResident is the satellite
// invariant: host mirrors live in host memory only. After evictions turn
// pins into mirrors, the GPU pool must account to exactly its capacity
// with zero pinned pages — the mirrored pages appear nowhere in the
// device-side ledger, and the full pool is allocatable over them.
func TestReclaimNeverCountsHostMirroredPagesAsResident(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 1, 160, 0)
	finishAs(t, rig, 2, 2, 320, 0)
	rig.m.ReclaimPrefixPages(64, 0, 0) // flush every pin
	rig.clock.Run()

	if rig.m.HostMirroredPages() != 30 {
		t.Fatalf("mirrored pages = %d, want 30", rig.m.HostMirroredPages())
	}
	if rig.m.UsedPages() != 0 {
		t.Errorf("used pages = %d: host mirrors are being charged to the GPU pool", rig.m.UsedPages())
	}
	if rig.m.FreePages() != rig.m.TotalPages() {
		t.Errorf("free = %d of %d: mirrors must not hold pool pages",
			rig.m.FreePages(), rig.m.TotalPages())
	}
	if rig.m.PinnedPrefixPages() != 0 {
		t.Errorf("pinned pages = %d, want 0 after full reclaim", rig.m.PinnedPrefixPages())
	}
	if !rig.m.CanAllocate(rig.m.TotalPages() * 16) {
		t.Error("full pool must be allocatable while mirrors exist")
	}
	// And reclaiming again finds nothing: mirrors are not reclaimable GPU
	// residency.
	if got := rig.m.ReclaimPrefixPages(1, 0, 0); got != 0 {
		t.Errorf("reclaim freed %d pages from a pin-less pool", got)
	}
}

// TestHostReloadRematerializesPin: a reload books the h2d wire, lands as a
// fully synced pin, and the session hits again.
func TestHostReloadRematerializesPin(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	now := rig.clock.Now()

	est := rig.m.EstimateHostReload(7, now)
	if want := rig.h2d.TransferTime(10 * rig.m.PageBytes()); est != want {
		t.Errorf("reload estimate = %v, want wire %v", est, want)
	}
	done, tokens, ok := rig.m.StartHostReload(7, now)
	if !ok || tokens != 160 {
		t.Fatalf("StartHostReload = (%v, %d, %v)", done, tokens, ok)
	}
	if done != now.Add(est) {
		t.Errorf("reload done at %v, want %v", done, now.Add(est))
	}
	if rig.m.HostMirrorTokens(7) != 0 {
		t.Error("mirror mid-reload must not offer again")
	}
	if _, _, again := rig.m.StartHostReload(7, now); again {
		t.Error("double reload must fail")
	}
	rig.clock.Run()
	if got := rig.m.TakePrefix(7); got != 160 {
		t.Errorf("post-reload hit = %d, want 160", got)
	}
	if rig.m.PinnedPrefixPages() != 10 {
		t.Errorf("pinned pages = %d, want 10", rig.m.PinnedPrefixPages())
	}
	// The reloaded pin is fully synced: evicting it again is free.
	if got := rig.m.ReclaimPrefixPages(10, rig.clock.Now(), 0); got != 10 {
		t.Errorf("re-eviction freed %d immediately, want 10 (synced)", got)
	}
	s := rig.m.Stats()
	if s.HostReloads != 1 || s.HostReloadTokens != 160 || s.BytesReloaded != 10*rig.m.PageBytes() {
		t.Errorf("reload stats = %+v", s)
	}
}

// TestHostReloadWaitsForDrain: a mirror still draining to host cannot be
// read back before the drain lands; the reload starts at readyAt.
func TestHostReloadWaitsForDrain(t *testing.T) {
	cfg := fullConfig()
	cfg.WriteThrough = false // pin stays fully dirty: eviction drains 10 pages
	cfg.PrefixPages = 32
	cfg.HostCache = true
	rig := newRig(t, cfg)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)

	drain := rig.d2h.BusyUntil()
	if drain == 0 {
		t.Fatal("eviction should be draining")
	}
	est := rig.m.EstimateHostReload(7, 0)
	wire := rig.h2d.TransferTime(10 * rig.m.PageBytes())
	if est != drain.Sub(0)+wire {
		t.Errorf("estimate = %v, want drain wait %v + wire %v", est, drain, wire)
	}
	done, _, ok := rig.m.StartHostReload(7, 0)
	if !ok || done != drain.Add(wire) {
		t.Errorf("reload done at %v, want %v", done, drain.Add(wire))
	}
}

// TestHostReloadDropsWhenPoolFull: a reload landing on a pool held by live
// requests cannot install; the drop is counted and the mirror survives for
// a later attempt.
func TestHostReloadDropsWhenPoolFull(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()

	hog := newReq(2, 60*16, 1)
	if err := rig.m.AllocateResident(hog, 60*16); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := rig.m.StartHostReload(7, rig.clock.Now()); !ok {
		t.Fatal("reload should book")
	}
	rig.clock.Run()
	if rig.m.TakePrefix(7) != 0 {
		t.Error("dropped reload must not produce a pin")
	}
	if s := rig.m.Stats(); s.HostReloadDrops != 1 || s.HostReloads != 0 || s.HostReloadTokens != 0 {
		t.Errorf("dropped install must not count as a completed reload: %+v", s)
	}
	if rig.m.HostMirrorTokens(7) != 160 {
		t.Error("mirror should survive a dropped install")
	}
}

// TestLargerEvictionReplacesMirror: a bigger pin eviction supersedes the
// session's mirror; a smaller or equal one leaves it alone.
func TestLargerEvictionReplacesMirror(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	finishAs(t, rig, 2, 7, 320, rig.clock.Now()) // 20 pages, supersedes
	rig.m.ReclaimPrefixPages(20, rig.clock.Now(), 0)
	rig.clock.Run()
	if got := rig.m.HostMirrorTokens(7); got != 320 {
		t.Errorf("mirror tokens = %d, want 320", got)
	}
	if rig.m.HostMirroredPages() != 20 {
		t.Errorf("mirrored pages = %d, want 20 (old mirror replaced)", rig.m.HostMirroredPages())
	}
}

// TestNoMirrorWithoutHostCacheOrOffload: the mirror machinery is inert
// when disabled or when there is no host tier to mirror into.
func TestNoMirrorWithoutHostCacheOrOffload(t *testing.T) {
	plain := prefixRig(t) // HostCache off
	finishAs(t, plain, 1, 7, 160, 0)
	plain.m.ReclaimPrefixPages(10, 0, 0)
	plain.clock.Run()
	if plain.m.HostMirroredPages() != 0 || plain.m.HostMirrorTokens(7) != 0 {
		t.Error("mirrors recorded with HostCache off")
	}
	if _, _, ok := plain.m.StartHostReload(7, 0); ok {
		t.Error("reload must fail with HostCache off")
	}

	cfg := Config{PrefixPages: 32, HostCache: true} // no Offload
	rig := newRig(t, cfg)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	if rig.m.HostMirroredPages() != 0 {
		t.Error("no-offload eviction must not mirror")
	}
}

// budgetRig is a host rig with a HostCachePages budget: mirrors become a
// bounded spill buffer instead of the keep-forever tier.
func budgetRig(t testing.TB, pages int) *testRig {
	cfg := fullConfig()
	cfg.PrefixPages = 32
	cfg.HostCache = true
	cfg.HostCachePages = pages
	return newRig(t, cfg)
}

// TestHostMirrorBytesRiseAndFall: HostMirrorBytes — the quantity the
// telemetry series charts and the budget bounds — rises when an eviction
// mirrors a pin and falls back to zero when a budgeted reload consumes the
// mirror.
func TestHostMirrorBytesRiseAndFall(t *testing.T) {
	rig := budgetRig(t, 32)
	if got := rig.m.HostMirrorBytes(); got != 0 {
		t.Fatalf("fresh manager mirrors %d bytes", got)
	}
	finishAs(t, rig, 1, 7, 160, 0) // 10 pages
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	want := 10 * rig.m.PageBytes()
	if got := rig.m.HostMirrorBytes(); got != want {
		t.Fatalf("post-eviction mirror bytes = %d, want %d", got, want)
	}
	if s := rig.m.Stats(); s.HostMirrorBytes != want {
		t.Errorf("stats mirror bytes = %d, want %d", s.HostMirrorBytes, want)
	}
	if _, _, ok := rig.m.StartHostReload(7, rig.clock.Now()); !ok {
		t.Fatal("reload should book")
	}
	rig.clock.Run()
	if got := rig.m.TakePrefix(7); got != 160 {
		t.Fatalf("post-reload hit = %d, want 160", got)
	}
	if got := rig.m.HostMirrorBytes(); got != 0 {
		t.Errorf("budgeted reload must consume the mirror; %d bytes remain", got)
	}
}

// TestHostBudgetDropsOldestMirror: overflowing the budget drops the
// oldest mirror, keeping the newest within bounds.
func TestHostBudgetDropsOldestMirror(t *testing.T) {
	rig := budgetRig(t, 25)
	finishAs(t, rig, 1, 7, 160, 0) // 10 pages
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	finishAs(t, rig, 2, 8, 320, rig.clock.Now()) // 20 pages: 30 > 25
	rig.m.ReclaimPrefixPages(20, rig.clock.Now(), 0)
	rig.clock.Run()
	if got := rig.m.HostMirrorTokens(7); got != 0 {
		t.Errorf("oldest mirror survived the budget: %d tokens", got)
	}
	if got := rig.m.HostMirrorTokens(8); got != 320 {
		t.Errorf("newest mirror = %d tokens, want 320", got)
	}
	if got := rig.m.HostMirroredPages(); got != 20 {
		t.Errorf("mirrored pages = %d, want 20", got)
	}
}

// TestUnbudgetedReloadKeepsMirror pins the historical semantics: with
// HostCachePages zero the mirror tier is unlimited and a successful reload
// leaves the mirror in place.
func TestUnbudgetedReloadKeepsMirror(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	if _, _, ok := rig.m.StartHostReload(7, rig.clock.Now()); !ok {
		t.Fatal("reload should book")
	}
	rig.clock.Run()
	if got := rig.m.HostMirroredPages(); got != 10 {
		t.Errorf("unbudgeted reload must keep the mirror; %d pages remain", got)
	}
}

// TestHostMirrorObsEvents: the mirror lifecycle emits kv-mirror on
// eviction, kv-reload when the wire is booked, and kv-mirror-drop when the
// budgeted reload consumes the mirror.
func TestHostMirrorObsEvents(t *testing.T) {
	rig := budgetRig(t, 32)
	rec := obs.NewRecorder()
	rig.m.SetObs(rec, 3)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	if _, _, ok := rig.m.StartHostReload(7, rig.clock.Now()); !ok {
		t.Fatal("reload should book")
	}
	rig.clock.Run()
	for _, ck := range []struct {
		kind obs.Kind
		want int
	}{
		{obs.KindKVMirror, 1},
		{obs.KindKVReload, 1},
		{obs.KindKVMirrorDrop, 1},
		{obs.KindKVEvict, 1},
	} {
		if got := rec.CountKind(ck.kind); got != ck.want {
			t.Errorf("%d events of kind %v, want %d", got, ck.kind, ck.want)
		}
	}
	for _, ev := range rec.Events() {
		if ev.Replica != 3 {
			t.Fatalf("event stamped replica %d, want 3", ev.Replica)
		}
	}
}

// TestEstimateHostReloadSeesBacklog: h2d queueing inflates the reload
// estimate — the measured-backlog half of the recompute-vs-reload
// break-even.
func TestEstimateHostReloadSeesBacklog(t *testing.T) {
	rig := hostRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	rig.m.ReclaimPrefixPages(10, 0, 0)
	rig.clock.Run()
	base := rig.m.EstimateHostReload(7, rig.clock.Now())
	rig.h2d.Enqueue(rig.clock.Now(), 50e6) // 50 ms of backlog
	withQueue := rig.m.EstimateHostReload(7, rig.clock.Now())
	if withQueue != base+50*time.Millisecond {
		t.Errorf("backlogged estimate = %v, want %v + 50ms", withQueue, base)
	}
}
