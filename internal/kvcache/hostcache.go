package kvcache

// Host-tier prefix cache: the pin lifecycle extended past eviction. Under
// write-through, an evicted pin's pages already have (or are draining
// toward) a complete host mirror — before this extension the manager
// simply forgot that copy, so a returning session turn recomputed its
// whole prefix. With Config.HostCache the mirror outlives the pin as a
// hostPin: host memory only, never charged against the GPU pool. When the
// session's next turn arrives, the engine weighs reloading the mirror over
// the host-to-device link (queueing plus wire time, measured from the real
// link backlog) against recomputing the prefix, and books the reload
// through the fabric when the wire wins. The reload is charged inside the
// turn's TTFT, exactly like a cross-replica migration.
//
// Mirrors are content-addressed by session: a session's prompts only ever
// extend, so a shorter mirror stays a valid prefix of every later turn. A
// mirror is replaced when a larger pin for its session is evicted, and
// persists across pin adoption, supersession, and migration-out (the host
// copy remains on this replica even after the device copy leaves).

import (
	"container/list"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// hostPin is one session's host-tier prefix mirror.
type hostPin struct {
	session int
	// tokens is the mirrored context length; pages its host footprint.
	tokens int
	pages  int
	// readyAt is when the eviction drain completed the mirror; a reload
	// cannot start earlier.
	readyAt simclock.Time
	// reloading marks a mirror whose h2d transfer is on the wire.
	reloading bool
	// elem is the mirror's node in the manager's recency order (budget
	// drop order under Config.HostCachePages).
	elem *list.Element
}

// HostCacheEnabled reports whether evicted pins leave reloadable mirrors.
func (m *Manager) HostCacheEnabled() bool {
	return m.cfg.HostCache && m.cfg.Offload && m.PrefixEnabled()
}

// HostMirroredPages reports the host-memory pages currently held by
// evicted pins' mirrors. These are host pages: they never count toward
// UsedPages or against GPUPages.
func (m *Manager) HostMirroredPages() int { return m.hostMirroredPages }

// HostMirrorBytes reports the host-memory bytes the mirror tier holds —
// the byte accounting the host-memory budget manages and telemetry
// charts.
func (m *Manager) HostMirrorBytes() int64 {
	return int64(m.hostMirroredPages) * m.PageBytes()
}

// dropHostMirror releases one mirror's host pages (budget eviction,
// replacement by a larger mirror, or consumption by a reload).
func (m *Manager) dropHostMirror(hp *hostPin) {
	delete(m.hostPins, hp.session)
	m.hostPinOrder.Remove(hp.elem)
	hp.elem = nil
	m.hostMirroredPages -= hp.pages
	m.obs.Emit(m.clock.Now(), obs.KindKVMirrorDrop, m.obsReplica, -1, hp.session,
		int64(hp.tokens), int64(hp.pages), 0, 0, "")
	if m.pubMirror != nil {
		m.pubMirror(hp.session, 0)
	}
}

// enforceHostBudget drops the oldest non-reloading mirrors until the
// host tier fits Config.HostCachePages. A zero budget is unlimited.
func (m *Manager) enforceHostBudget() {
	if m.cfg.HostCachePages <= 0 {
		return
	}
	for el := m.hostPinOrder.Back(); el != nil && m.hostMirroredPages > m.cfg.HostCachePages; {
		hp := el.Value.(*hostPin)
		el = el.Prev()
		if hp.reloading {
			continue
		}
		m.dropHostMirror(hp)
	}
}

// mirrorEvictedPin records an evicted pin's host mirror, loadable once the
// eviction drain lands at readyAt. A smaller mirror for the session is
// replaced (the larger context covers it); a mirror mid-reload, or one at
// least as large, is kept.
func (m *Manager) mirrorEvictedPin(p *pin, readyAt simclock.Time) {
	if !m.HostCacheEnabled() {
		return
	}
	if old, ok := m.hostPins[p.session]; ok {
		if old.reloading || old.tokens >= p.tokens {
			return
		}
		m.dropHostMirror(old)
	}
	hp := &hostPin{
		session: p.session, tokens: p.tokens, pages: p.pages, readyAt: readyAt,
	}
	hp.elem = m.hostPinOrder.PushFront(hp)
	m.hostPins[p.session] = hp
	m.hostMirroredPages += p.pages
	m.obs.Emit(m.clock.Now(), obs.KindKVMirror, m.obsReplica, -1, p.session,
		int64(p.tokens), int64(p.pages), 0, 0, "")
	if m.pubMirror != nil {
		m.pubMirror(p.session, p.tokens)
	}
	m.enforceHostBudget()
}

// HostMirrorTokens reports the host-mirrored prefix tokens available for a
// session: zero when no mirror exists, a reload is already in flight, or a
// device pin makes the mirror redundant. A mirror still draining counts —
// the reload estimate folds the remaining wait in.
func (m *Manager) HostMirrorTokens(session int) int {
	hp, ok := m.hostPins[session]
	if !ok || hp.reloading {
		return 0
	}
	if _, pinned := m.pins[session]; pinned {
		return 0
	}
	return hp.tokens
}

// EstimateHostReload predicts the latency to bring a session's host mirror
// back onto the device, submitted now: any remaining drain wait, plus h2d
// queueing, plus wire time — the reload side of the recompute-vs-reload
// break-even, measured from the real link backlog.
func (m *Manager) EstimateHostReload(session int, now simclock.Time) time.Duration {
	hp, ok := m.hostPins[session]
	if !ok {
		return 0
	}
	var wait time.Duration
	if hp.readyAt > now {
		wait = hp.readyAt.Sub(now)
	}
	bytes := int64(hp.pages) * m.PageBytes()
	return wait + m.h2d.QueueDelay(now.Add(wait)) + m.h2d.TransferTime(bytes)
}

// StartHostReload books the host-to-device transfer that rematerializes a
// session's mirrored prefix as a device pin. The transfer starts after the
// mirror's drain completes and lands on the fabric's reload class; at
// completion the pin is installed (reclaiming colder pins if needed, and
// dropped — HostReloadDrops — when the pool cannot fit it). It returns the
// completion time, the mirrored tokens, and whether a reload started.
func (m *Manager) StartHostReload(session int, now simclock.Time) (done simclock.Time, tokens int, ok bool) {
	if !m.HostCacheEnabled() {
		return 0, 0, false
	}
	hp, exists := m.hostPins[session]
	if !exists || hp.reloading {
		return 0, 0, false
	}
	if _, pinned := m.pins[session]; pinned {
		return 0, 0, false
	}
	hp.reloading = true
	start := now
	if hp.readyAt > start {
		start = hp.readyAt
	}
	// BytesReloaded counts the booked wire traffic (like the other Bytes*
	// counters); HostReloads / HostReloadTokens count only at a successful
	// install — a dropped install recomputes, and must not read as a win.
	bytes := int64(hp.pages) * m.PageBytes()
	m.bytesReloaded += bytes
	m.obs.Emit(now, obs.KindKVReload, m.obsReplica, -1, session,
		int64(hp.tokens), bytes, 0, 0, "")
	_, done = m.ep.EnqueueH2D(fabric.ClassReload, start, bytes)
	crashEpoch := m.crashEpoch
	m.clock.At(done, func(t simclock.Time) {
		if m.crashEpoch != crashEpoch {
			return // the mirror died with the replica mid-flight
		}
		hp.reloading = false
		m.installReloadedPin(hp, t)
	})
	return done, hp.tokens, true
}

// installReloadedPin materializes a landed reload as a device pin, fully
// synced (the host copy stays valid, so a later eviction is free). The pin
// is dropped when a pin for the session appeared mid-flight or the pool
// cannot fit it even after reclaiming every colder pin; the mirror remains
// either way, and only a successful install counts as a completed reload.
func (m *Manager) installReloadedPin(hp *hostPin, now simclock.Time) {
	if _, pinned := m.pins[hp.session]; pinned || hp.pages > m.cfg.PrefixPages {
		m.hostReloadDrops++
		return
	}
	if !m.placePin(hp.session, hp.tokens, hp.pages, now) {
		m.hostReloadDrops++
		return
	}
	m.hostReloads++
	m.hostReloadTokens += int64(hp.tokens)
	// Under a host-memory budget the reload consumes the mirror: the KV is
	// back on the device, and a later eviction re-mirrors it for free
	// (installed pins are fully synced). Unbudgeted tiers keep the
	// historical keep-forever behavior.
	if m.cfg.HostCachePages > 0 {
		m.dropHostMirror(hp)
	}
}
