package kvcache

// Chaos support: the cache-side half of replica crash recovery. Crash
// wipes the device instantly (every residency, pin, and host mirror dies
// with the replica) and bumps the crash epoch so completion closures from
// transfers booked before the crash cannot resurrect state on the
// backfilled manager. AdoptMirror and RepinFromMirror are the pin-
// redundancy mechanics: a backup replica adopts host-tier copies of a
// peer's pinned prefixes, and after the peer crashes, re-pins them from
// its own mirror so retried session turns reload instead of recomputing.

import (
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Crash destroys every byte the manager holds: request residencies are
// invalidated (their epochs bump, killing in-flight sync/evict/load
// completions), all prefix pins and host mirrors vanish with index
// unpublications, and the pool resets to empty. Cumulative stats are
// preserved — the replica's history happened. It reports how many pins
// and mirrors were lost, for the crash event's payload.
func (m *Manager) Crash() (pinsLost, mirrorsLost int) {
	for _, e := range m.entries {
		e.epoch++
		e.gpuHeld = 0
		e.res = ResNone
	}
	m.entries = make(map[int]*entry)
	m.syncOrder = nil
	// Walk the recency lists, not the maps: unpublication order must be
	// deterministic for the index traffic ledger and event stream.
	for el := m.pinOrder.Front(); el != nil; {
		p := el.Value.(*pin)
		el = el.Next()
		m.removePin(p)
		pinsLost++
	}
	for el := m.hostPinOrder.Front(); el != nil; {
		hp := el.Value.(*hostPin)
		el = el.Next()
		m.dropHostMirror(hp)
		mirrorsLost++
	}
	m.free = m.cfg.GPUPages
	m.crashEpoch++
	return pinsLost, mirrorsLost
}

// AbortMigrateOut un-stakes a pin whose interconnect transfer was torn
// down mid-flight (a link flap): the pin returns to normal service — it
// hits, adopts, and evicts again — and its renewed availability is
// republished to the index. Byte counters are untouched: migratedOutBytes
// counts at stake time, mirroring the fabric's book-time accounting, and
// the aborted transfer's bytes were genuinely booked on the wire.
func (m *Manager) AbortMigrateOut(session int) {
	p, ok := m.pins[session]
	if !ok || !p.migrating {
		return
	}
	p.migrating = false
	if m.pubPin != nil {
		m.pubPin(p.session, p.tokens)
	}
}

// MirrorTokens reports the raw host-mirrored prefix tokens for a session —
// unlike HostMirrorTokens it ignores device pins and in-flight reloads, so
// the redundancy loop can tell whether a backup already holds a copy.
func (m *Manager) MirrorTokens(session int) int {
	hp, ok := m.hostPins[session]
	if !ok {
		return 0
	}
	return hp.tokens
}

// AdoptMirror installs a host-tier mirror copied in from a peer replica
// (the receiving half of a redundancy replication): usable once the wire
// transfer lands at readyAt, budget-enforced like any other mirror. A
// mirror at least as large, or one mid-reload, is kept instead. It
// reports whether the copy was adopted.
func (m *Manager) AdoptMirror(session, tokens int, readyAt simclock.Time) bool {
	if !m.HostCacheEnabled() || session == 0 || tokens <= 0 {
		return false
	}
	if old, ok := m.hostPins[session]; ok {
		if old.reloading || old.tokens >= tokens {
			return false
		}
		m.dropHostMirror(old)
	}
	hp := &hostPin{
		session: session, tokens: tokens, pages: m.Pages(tokens), readyAt: readyAt,
	}
	hp.elem = m.hostPinOrder.PushFront(hp)
	m.hostPins[session] = hp
	m.hostMirroredPages += hp.pages
	m.obs.Emit(m.clock.Now(), obs.KindKVMirror, m.obsReplica, -1, session,
		int64(tokens), int64(hp.pages), 0, 0, "")
	if m.pubMirror != nil {
		m.pubMirror(session, tokens)
	}
	m.enforceHostBudget()
	return true
}

// RepinFromMirror rematerializes a session's host mirror as a device pin
// over the h2d link on the fabric's replicate class — post-crash recovery
// restoring a pin the crashed replica held, from this surviving backup's
// mirror. Same admission rules as a host reload; the install is dropped
// (mirror kept) when a pin appeared mid-flight or the pool cannot fit it.
// It reports the completion time, the mirrored tokens, and the booked
// bytes.
func (m *Manager) RepinFromMirror(session int, now simclock.Time) (done simclock.Time, tokens int, bytes int64, ok bool) {
	if !m.HostCacheEnabled() {
		return 0, 0, 0, false
	}
	hp, exists := m.hostPins[session]
	if !exists || hp.reloading {
		return 0, 0, 0, false
	}
	if _, pinned := m.pins[session]; pinned {
		return 0, 0, 0, false
	}
	hp.reloading = true
	start := now
	if hp.readyAt > start {
		start = hp.readyAt
	}
	bytes = int64(hp.pages) * m.PageBytes()
	_, done = m.ep.EnqueueH2D(fabric.ClassReplicate, start, bytes)
	crashEpoch := m.crashEpoch
	m.clock.At(done, func(t simclock.Time) {
		if m.crashEpoch != crashEpoch {
			return // this replica crashed too before the re-pin landed
		}
		hp.reloading = false
		if _, pinned := m.pins[hp.session]; pinned || hp.pages > m.cfg.PrefixPages {
			return
		}
		if !m.placePin(hp.session, hp.tokens, hp.pages, t) {
			return
		}
		// Budgeted tiers consume the mirror on a successful re-pin, exactly
		// as installReloadedPin does.
		if m.cfg.HostCachePages > 0 {
			m.dropHostMirror(hp)
		}
	})
	return done, hp.tokens, bytes, true
}
