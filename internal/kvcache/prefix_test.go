package kvcache

import (
	"testing"

	"repro/internal/simclock"
)

// prefixRig is a rig with a 64-page pool and a 32-page prefix budget.
func prefixRig(t testing.TB) *testRig {
	cfg := fullConfig()
	cfg.PrefixPages = 32
	return newRig(t, cfg)
}

// finishAs allocates a request, marks its context computed, and converts
// it into a prefix pin for the session.
func finishAs(t *testing.T, rig *testRig, id, session, tokens int, now simclock.Time) {
	t.Helper()
	r := newReq(id, tokens, 1)
	r.PrefilledTokens = tokens
	if err := rig.m.AllocateResident(r, tokens); err != nil {
		t.Fatal(err)
	}
	rig.m.ReleaseAsPrefix(r, session, now)
}

func TestReleaseAsPrefixChargesPool(t *testing.T) {
	rig := prefixRig(t)
	finishAs(t, rig, 1, 7, 160, 0) // 10 pages
	if got := rig.m.PinnedPrefixPages(); got != 10 {
		t.Fatalf("pinned pages = %d, want 10", got)
	}
	if got := rig.m.UsedPages(); got != 10 {
		t.Fatalf("used pages = %d, want 10 (pin stays charged)", got)
	}
	if got := rig.m.PeekPrefix(7); got != 160 {
		t.Errorf("peek = %d, want 160", got)
	}
	if rig.m.PeekPrefix(8) != 0 {
		t.Error("unknown session should miss")
	}
}

func TestPrefixAdoptionFoldsPinIntoAllocation(t *testing.T) {
	rig := prefixRig(t)
	finishAs(t, rig, 1, 7, 160, 0) // 10 pages pinned
	free := rig.m.FreePages()      // 54

	// Next turn: 256-token prompt, 160 cached. Admission adopts the pin.
	r := newReq(2, 256, 8)
	if !rig.m.CanAdmit(256, 7) {
		t.Fatal("should fit with adoption")
	}
	if err := rig.m.AllocateWithPrefix(r, 256, 7); err != nil {
		t.Fatal(err)
	}
	// 16 pages total, 10 adopted: only 6 newly charged.
	if got := free - rig.m.FreePages(); got != 6 {
		t.Errorf("adoption charged %d new pages, want 6", got)
	}
	if rig.m.PinnedPrefixPages() != 0 {
		t.Error("adopted pin should leave the pinned total")
	}
	if rig.m.PeekPrefix(7) != 0 {
		t.Error("adopted pin should be gone")
	}
	if s := rig.m.Stats(); s.PrefixAdoptions != 1 {
		t.Errorf("adoptions = %d, want 1", s.PrefixAdoptions)
	}
}

func TestLargerContextSupersedesPin(t *testing.T) {
	rig := prefixRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	finishAs(t, rig, 2, 7, 320, 0) // 20 pages supersede the 10
	if got := rig.m.PeekPrefix(7); got != 320 {
		t.Errorf("peek = %d, want 320", got)
	}
	if got := rig.m.PinnedPrefixPages(); got != 20 {
		t.Errorf("pinned pages = %d, want 20", got)
	}
	if got := rig.m.UsedPages(); got != 20 {
		t.Errorf("used pages = %d, want 20 (old pin freed)", got)
	}
	// A smaller, late-finishing turn never shrinks the pin.
	finishAs(t, rig, 3, 7, 200, 0)
	if got := rig.m.PeekPrefix(7); got != 320 {
		t.Errorf("peek after late smaller finish = %d, want 320", got)
	}
	if got := rig.m.UsedPages(); got != 20 {
		t.Errorf("used pages = %d, want 20", got)
	}
}

func TestPinBudgetEvictsLRU(t *testing.T) {
	rig := prefixRig(t)                                  // 32-page prefix budget
	finishAs(t, rig, 1, 1, 240, 0)                       // 15 pages
	finishAs(t, rig, 2, 2, 240, 0)                       // 30 pinned
	rig.m.TakePrefix(1)                                  // session 2 becomes LRU
	finishAs(t, rig, 3, 3, 240, simclock.FromSeconds(1)) // 45 > 32: evict 2
	if rig.m.PeekPrefix(2) != 0 {
		t.Error("session 2 should be evicted as LRU")
	}
	if rig.m.PeekPrefix(1) != 240 || rig.m.PeekPrefix(3) != 240 {
		t.Error("sessions 1 and 3 should survive")
	}
	if got := rig.m.PinnedPrefixPages(); got != 30 {
		t.Errorf("pinned pages = %d, want 30", got)
	}
	if s := rig.m.Stats(); s.PrefixEvictions != 1 {
		t.Errorf("evictions = %d, want 1", s.PrefixEvictions)
	}
}

func TestOversizedContextNotPinned(t *testing.T) {
	rig := prefixRig(t)
	finishAs(t, rig, 1, 7, 33*16, 0) // 33 pages > 32 budget
	if rig.m.PeekPrefix(7) != 0 || rig.m.PinnedPrefixPages() != 0 {
		t.Error("contexts beyond the budget must not pin")
	}
	if rig.m.UsedPages() != 0 {
		t.Error("discarded context must free its pages")
	}
}

// TestEvictedPinDirtyPagesDrain: a pin whose pages were never synced to
// host frees nothing at eviction; its pages drain over the d2h link and
// free when the transfer completes, firing PinDrained.
func TestEvictedPinDirtyPagesDrain(t *testing.T) {
	cfg := fullConfig()
	cfg.WriteThrough = false // every page stays dirty
	cfg.PrefixPages = 32
	rig := newRig(t, cfg)
	drained := 0
	rig.m.cb.PinDrained = func(now simclock.Time) { drained++ }

	finishAs(t, rig, 1, 7, 160, 0) // 10 pages, all dirty
	if got := rig.m.ReclaimPrefixPages(10, 0, 0); got != 0 {
		t.Fatalf("dirty pin freed %d pages immediately, want 0", got)
	}
	if rig.m.PeekPrefix(7) != 0 {
		t.Fatal("pin should be evicted")
	}
	if rig.m.FreePages() != 54 {
		t.Fatalf("free = %d before drain, want 54", rig.m.FreePages())
	}
	for rig.clock.Step() {
	}
	if rig.m.FreePages() != 64 {
		t.Errorf("free = %d after drain, want 64", rig.m.FreePages())
	}
	if drained != 1 {
		t.Errorf("PinDrained fired %d times, want 1", drained)
	}
	if s := rig.m.Stats(); s.PrefixBytesDrained != 10*rig.m.PageBytes() {
		t.Errorf("drained bytes = %d", s.PrefixBytesDrained)
	}
}

// TestNoOffloadPinEvictsInstantly: without offload there is no host tier
// to mirror into, so an evicted pin discards its pages immediately — the
// same rule request preemption follows — instead of booking a drain.
func TestNoOffloadPinEvictsInstantly(t *testing.T) {
	cfg := Config{PrefixPages: 32} // all policies off (baseline)
	rig := newRig(t, cfg)
	finishAs(t, rig, 1, 7, 160, 0) // 10 pages, all dirty, no host tier
	if got := rig.m.ReclaimPrefixPages(10, 0, 0); got != 10 {
		t.Fatalf("no-offload eviction freed %d pages immediately, want 10", got)
	}
	if rig.m.FreePages() != 64 {
		t.Errorf("free = %d, want 64", rig.m.FreePages())
	}
	if s := rig.m.Stats(); s.PrefixBytesDrained != 0 {
		t.Errorf("no-offload eviction drained %d bytes, want 0", s.PrefixBytesDrained)
	}
}

// TestReclaimStopsAtCoveredNeed: reclaiming counts draining pages toward
// the need, so one small shortfall does not flush the entire pin set.
func TestReclaimStopsAtCoveredNeed(t *testing.T) {
	cfg := fullConfig()
	cfg.WriteThrough = false // pins stay dirty: eviction drains, frees later
	cfg.PrefixPages = 40
	rig := newRig(t, cfg)
	finishAs(t, rig, 1, 1, 160, 0) // 10 pages each
	finishAs(t, rig, 2, 2, 160, 0)
	finishAs(t, rig, 3, 3, 160, 0)
	if got := rig.m.ReclaimPrefixPages(1, 0, 0); got != 0 {
		t.Fatalf("dirty reclaim freed %d immediately, want 0", got)
	}
	// Only the LRU pin (session 1) should have been sacrificed.
	if rig.m.PeekPrefix(1) != 0 {
		t.Error("LRU pin should be evicted")
	}
	if rig.m.PeekPrefix(2) == 0 || rig.m.PeekPrefix(3) == 0 {
		t.Error("one draining pin covers the need; the rest must survive")
	}
}

// TestSyncedPinEvictsFree: under write-through a fully synced pin frees
// its whole footprint immediately at eviction.
func TestSyncedPinEvictsFree(t *testing.T) {
	rig := prefixRig(t)
	r := newReq(1, 160, 1)
	r.PrefilledTokens = 160
	if err := rig.m.AllocateResident(r, 160); err != nil {
		t.Fatal(err)
	}
	// Let background sync mirror everything.
	rig.m.BackgroundSync(0, simclock.Duration(10)) // generous interval
	for rig.clock.Step() {
	}
	rig.m.ReleaseAsPrefix(r, 7, rig.clock.Now())
	now := rig.clock.Now()
	if got := rig.m.ReclaimPrefixPages(10, now, 0); got != 10 {
		t.Fatalf("synced pin freed %d pages immediately, want 10", got)
	}
	if rig.m.FreePages() != 64 {
		t.Errorf("free = %d, want 64", rig.m.FreePages())
	}
}

func TestMigrateOutAndInstall(t *testing.T) {
	donor := prefixRig(t)
	target := prefixRig(t)
	finishAs(t, donor, 1, 7, 160, 0)

	tokens, bytes, ok := donor.m.BeginMigrateOut(7)
	if !ok || tokens != 160 || bytes != 10*donor.m.PageBytes() {
		t.Fatalf("BeginMigrateOut = (%d, %d, %v)", tokens, bytes, ok)
	}
	// While migrating, the pin neither hits nor evicts nor re-migrates.
	if donor.m.PeekPrefix(7) != 0 || donor.m.TakePrefix(7) != 0 {
		t.Error("migrating pin must not hit")
	}
	if got := donor.m.ReclaimPrefixPages(10, 0, 0); got != 0 {
		t.Error("migrating pin must not evict")
	}
	if _, _, again := donor.m.BeginMigrateOut(7); again {
		t.Error("double migrate-out must fail")
	}
	if donor.m.UsedPages() != 10 {
		t.Error("pages stay charged during the wire transfer")
	}

	donor.m.CompleteMigrateOut(7)
	if donor.m.UsedPages() != 0 || donor.m.PinnedPrefixPages() != 0 {
		t.Error("migrated-out pages should free on completion")
	}

	if !target.m.InstallPrefix(7, tokens, 0) {
		t.Fatal("install should succeed on an empty pool")
	}
	if target.m.PeekPrefix(7) != 160 || target.m.PinnedPrefixPages() != 10 {
		t.Error("installed pin should be pinned and visible")
	}
	s := donor.m.Stats()
	if s.MigratedOutTokens != 160 {
		t.Errorf("migrated-out tokens = %d", s.MigratedOutTokens)
	}
	if ts := target.m.Stats(); ts.MigratedInTokens != 160 {
		t.Errorf("migrated-in tokens = %d", ts.MigratedInTokens)
	}
}

func TestInstallPrefixDropsWhenNoRoom(t *testing.T) {
	rig := prefixRig(t)
	// Fill the pool with a live request: 60 of 64 pages.
	r := newReq(1, 60*16, 1)
	if err := rig.m.AllocateResident(r, 60*16); err != nil {
		t.Fatal(err)
	}
	if rig.m.InstallPrefix(7, 160, 0) {
		t.Error("install must drop when live requests hold the pool")
	}
	if s := rig.m.Stats(); s.MigrationDrops != 1 {
		t.Errorf("drops = %d, want 1", s.MigrationDrops)
	}
	if rig.m.UsedPages() != 60 {
		t.Error("dropped install must not leak pages")
	}
}

// TestInstallEvictsColderPins: installing a migrated prefix reclaims LRU
// pins rather than dropping, when their synced pages free enough room
// immediately.
func TestInstallEvictsColderPins(t *testing.T) {
	cfg := fullConfig()
	cfg.GPUPages = 32
	cfg.PrefixPages = 32
	rig := newRig(t, cfg)
	// Pin 30 of 32 pages, fully host-mirrored so eviction frees instantly.
	r := newReq(1, 30*16, 1)
	r.PrefilledTokens = 30 * 16
	if err := rig.m.AllocateResident(r, 30*16); err != nil {
		t.Fatal(err)
	}
	rig.m.BackgroundSync(0, simclock.Duration(10))
	for rig.clock.Step() {
	}
	rig.m.ReleaseAsPrefix(r, 1, rig.clock.Now())
	if !rig.m.InstallPrefix(2, 160, rig.clock.Now()) {
		t.Fatal("install should evict the colder pin")
	}
	if rig.m.PeekPrefix(1) != 0 {
		t.Error("cold pin should be evicted")
	}
	if rig.m.PeekPrefix(2) != 160 {
		t.Error("migrated pin should be installed")
	}
}

// TestPoolNeverOvercommitsUnderPrefixChurn drives random pin/adopt/evict
// traffic and asserts the pool accounting never goes negative or beyond
// capacity.
func TestPoolNeverOvercommitsUnderPrefixChurn(t *testing.T) {
	rig := prefixRig(t)
	check := func() {
		if rig.m.FreePages() < 0 || rig.m.UsedPages() > rig.m.TotalPages() {
			t.Fatalf("pool overcommitted: free=%d used=%d total=%d",
				rig.m.FreePages(), rig.m.UsedPages(), rig.m.TotalPages())
		}
		if rig.m.PinnedPrefixPages() > rig.m.Config().PrefixPages {
			t.Fatalf("pinned %d beyond budget %d",
				rig.m.PinnedPrefixPages(), rig.m.Config().PrefixPages)
		}
	}
	id := 1
	for i := 0; i < 200; i++ {
		now := simclock.FromSeconds(float64(i))
		session := 1 + i%5
		tokens := 16 * (1 + i%20)
		if rig.m.CanAdmit(tokens, session) {
			r := newReq(id, tokens, 1)
			r.PrefilledTokens = tokens
			if err := rig.m.AllocateWithPrefix(r, tokens, session); err != nil {
				t.Fatal(err)
			}
			check()
			rig.m.ReleaseAsPrefix(r, session, now)
		} else {
			rig.m.ReclaimPrefixPages(rig.m.Pages(tokens), now, session)
		}
		check()
		id++
		for rig.clock.Step() {
		}
		check()
	}
}

func TestHottestPrefixesMRUOrder(t *testing.T) {
	rig := prefixRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	finishAs(t, rig, 2, 8, 96, 0)
	finishAs(t, rig, 3, 9, 64, 0)
	// Touch session 7: it becomes MRU again.
	if rig.m.TakePrefix(7) != 160 {
		t.Fatal("take should hit")
	}

	got := rig.m.HottestPrefixes(2)
	if len(got) != 2 || got[0].Session != 7 || got[1].Session != 9 {
		t.Fatalf("top-2 = %+v, want sessions [7 9]", got)
	}
	if got[0].Tokens != 160 || got[0].Pages != 10 {
		t.Errorf("session 7 info = %+v, want 160 tokens / 10 pages", got[0])
	}

	all := rig.m.HottestPrefixes(0)
	if len(all) != 3 || all[2].Session != 8 {
		t.Fatalf("all pins = %+v, want [7 9 8]", all)
	}

	// A migrating pin is invisible: its pages are leaving the device.
	if _, _, ok := rig.m.BeginMigrateOut(9); !ok {
		t.Fatal("migrate-out should start")
	}
	if got := rig.m.HottestPrefixes(0); len(got) != 2 {
		t.Fatalf("migrating pin listed: %+v", got)
	}
}

func TestDropPrefixFreesPin(t *testing.T) {
	rig := prefixRig(t)
	finishAs(t, rig, 1, 7, 160, 0)
	free := rig.m.FreePages()
	if !rig.m.DropPrefix(7, 0) {
		t.Fatal("drop should find the pin")
	}
	rig.clock.Run() // drain any dirty pages
	if got := rig.m.FreePages() - free; got != 10 {
		t.Errorf("drop freed %d pages, want 10", got)
	}
	if rig.m.PeekPrefix(7) != 0 || rig.m.PinnedPrefixPages() != 0 {
		t.Error("pin should be gone")
	}
	if rig.m.DropPrefix(7, 0) {
		t.Error("second drop should miss")
	}
	if s := rig.m.Stats(); s.PrefixEvictions != 1 {
		t.Errorf("evictions = %d, want 1", s.PrefixEvictions)
	}
}
