package kvcache

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/request"
	"repro/internal/simclock"
)

// BackgroundSync implements the write-through policy with synchronous
// chunked writing (§5.1-5.2). Called at the start of each compute
// iteration with the iteration's estimated duration, it pulls dirty pages
// from resident requests and books device-to-host writes sized to complete
// within that interval, so writes never delay scheduling.
//
// Under PriorityWrites, requests with larger client buffers sync first
// (they are the likeliest preemption victims, §5.2); otherwise the write
// queue is FIFO by admission order.
func (m *Manager) BackgroundSync(now simclock.Time, iterDur time.Duration) {
	if !m.cfg.WriteThrough {
		return
	}
	// Budget: bytes the link can move during this iteration, starting from
	// its current backlog. With chunked writing we never book past the end
	// of the iteration; without it we book everything dirty immediately
	// (the engine then pays the boundary stall in IterBoundaryStall).
	var budget int64
	if m.cfg.ChunkedWriting {
		avail := iterDur - m.d2h.QueueDelay(now)
		if avail <= 0 {
			return
		}
		budget = int64(avail.Seconds() * m.d2h.BytesPerSec())
	} else {
		budget = 1 << 62
	}

	order := m.syncCandidates()
	pageBytes := m.PageBytes()
	for _, e := range order {
		if budget < pageBytes {
			break
		}
		dirty := e.dirtyPages()
		if dirty <= 0 {
			continue
		}
		chunk := int(budget / pageBytes)
		if chunk > dirty {
			chunk = dirty
		}
		bytes := int64(chunk) * pageBytes
		budget -= bytes
		e.inFlight += chunk
		epoch := e.epoch
		ent := e
		_, done := m.ep.EnqueueD2H(fabric.ClassSync, now, bytes)
		m.syncChunks++
		m.bytesSynced += bytes
		m.clock.At(done, func(t simclock.Time) {
			if ent.epoch != epoch {
				return // invalidated by preemption or discard
			}
			ent.inFlight -= chunk
			ent.synced += chunk
		})
	}
}

// syncCandidates lists resident entries in write-queue order. The returned
// slice aliases a per-manager scratch buffer — it runs once per compute
// iteration, so an allocation here would dominate the heap profile of
// million-request traces — and is only valid until the next call.
func (m *Manager) syncCandidates() []*entry {
	out := m.syncScratch[:0]
	for _, e := range m.syncOrder {
		if e.res == ResGPU && e.dirtyPages() > 0 {
			out = append(out, e)
		}
	}
	if m.cfg.PriorityWrites && len(out) > 1 {
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].req.BufferLen() > out[j].req.BufferLen()
		})
	}
	m.syncScratch = out
	return out
}

// IterBoundaryStall reports how long the engine must wait at an iteration
// boundary for outstanding write-through traffic to drain. With chunked
// writing this is always zero (writes were sized to fit); without it, the
// asynchronous writes create the scheduling dependency of §5.2.
func (m *Manager) IterBoundaryStall(now simclock.Time) time.Duration {
	if !m.cfg.WriteThrough || m.cfg.ChunkedWriting {
		return 0
	}
	return m.d2h.QueueDelay(now)
}

// Preempt begins evicting a resident request. With offload enabled, dirty
// pages are booked on the device-to-host link and the host copy completes
// at the returned time; already-synchronized pages are reclaimed
// immediately under load-evict overlap. With offload disabled the KV is
// discarded instantly and resumption must recompute.
//
// The EvictDone callback fires when the request's pages have fully left
// the device.
func (m *Manager) Preempt(r *request.Request, now simclock.Time) (simclock.Time, error) {
	e, ok := m.entries[r.ID]
	if !ok || e.res != ResGPU {
		return 0, fmt.Errorf("kvcache: preempting non-resident request %d", r.ID)
	}
	if !m.cfg.Offload {
		m.Discard(r)
		m.evictions++
		if m.cb.EvictDone != nil {
			m.cb.EvictDone(r, now)
		}
		return now, nil
	}

	// In-flight sync chunks are treated as dirty: their completions are
	// invalidated and the bytes retransmit as part of the eviction. This
	// is conservative (slightly overstates eviction traffic).
	e.epoch++
	dirty := e.pages - e.synced
	e.inFlight = 0
	e.res = ResEvicting
	m.evictions++

	if m.cfg.LoadEvictOverlap {
		// Synchronized pages reclaim immediately.
		reclaim := e.synced
		e.gpuHeld -= reclaim
		m.free += reclaim
	}

	if dirty == 0 {
		m.finishEvict(e, now)
		return now, nil
	}
	bytes := int64(dirty) * m.PageBytes()
	m.bytesEvicted += bytes
	_, done := m.ep.EnqueueD2H(fabric.ClassEvict, now, bytes)
	epoch := e.epoch
	m.clock.At(done, func(t simclock.Time) {
		if e.epoch != epoch {
			return
		}
		e.synced = e.pages
		m.finishEvict(e, t)
	})
	return done, nil
}

// finishEvict releases any still-held pages and notifies the engine.
func (m *Manager) finishEvict(e *entry, now simclock.Time) {
	m.free += e.gpuHeld
	e.gpuHeld = 0
	e.synced = e.pages
	e.res = ResHost
	if m.cb.EvictDone != nil {
		m.cb.EvictDone(e.req, now)
	}
}

// StartLoad books the host-to-device transfer that resumes a fully evicted
// request. Pages are claimed at call time, so the caller must check
// CanAllocate first. Without load-evict overlap the transfer additionally
// waits for all in-flight evictions to drain. LoadDone fires at completion.
func (m *Manager) StartLoad(r *request.Request, now simclock.Time) (simclock.Time, error) {
	e, ok := m.entries[r.ID]
	if !ok || e.res != ResHost {
		return 0, fmt.Errorf("kvcache: loading request %d with residency %v", r.ID, m.Residency(r))
	}
	if e.pages > m.free {
		return 0, fmt.Errorf("kvcache: loading request %d needs %d pages, %d free", r.ID, e.pages, m.free)
	}
	m.free -= e.pages
	e.gpuHeld = e.pages
	e.res = ResLoading
	m.loads++

	start := now
	if !m.cfg.LoadEvictOverlap && m.d2h.BusyUntil() > start {
		start = m.d2h.BusyUntil()
	}
	bytes := int64(e.pages) * m.PageBytes()
	m.bytesLoaded += bytes
	_, done := m.ep.EnqueueH2D(fabric.ClassLoad, start, bytes)
	epoch := e.epoch
	m.clock.At(done, func(t simclock.Time) {
		if e.epoch != epoch {
			return
		}
		e.res = ResGPU
		// The host copy remains valid: only pages appended after resume
		// are dirty (the incremental-update benefit of write-through).
		e.synced = e.pages
		if m.cb.LoadDone != nil {
			m.cb.LoadDone(e.req, t)
		}
	})
	return done, nil
}

// HostBytes reports the size of a request's host copy (0 when none).
func (m *Manager) HostBytes(r *request.Request) int64 {
	e, ok := m.entries[r.ID]
	if !ok || (e.res != ResHost && e.res != ResLoading) {
		return 0
	}
	return int64(e.pages) * m.PageBytes()
}

// EstimateLoad predicts the latency to resume a request from host memory
// right now: link queueing plus wire time (the t_load_queueing + t_load of
// §4.2.3). For a still-resident request it predicts the cost of a future
// load of its full current context.
func (m *Manager) EstimateLoad(r *request.Request, now simclock.Time) time.Duration {
	e, ok := m.entries[r.ID]
	if !ok {
		return 0
	}
	bytes := int64(e.pages) * m.PageBytes()
	delay := m.h2d.QueueDelay(now)
	if !m.cfg.LoadEvictOverlap {
		if d := m.d2h.QueueDelay(now); d > delay {
			delay = d
		}
	}
	return delay + m.h2d.TransferTime(bytes)
}

// EstimateEvict predicts the latency to fully evict a resident request
// right now: queueing plus wire time for its dirty pages (near zero under
// write-through once the background sync has caught up).
func (m *Manager) EstimateEvict(r *request.Request, now simclock.Time) time.Duration {
	e, ok := m.entries[r.ID]
	if !ok || e.res != ResGPU {
		return 0
	}
	if !m.cfg.Offload {
		return 0
	}
	dirty := e.pages - e.synced
	bytes := int64(dirty) * m.PageBytes()
	return m.d2h.QueueDelay(now) + m.d2h.TransferTime(bytes)
}

// Stats reports cumulative operation counts for reporting and tests.
type Stats struct {
	Evictions, Loads, Discards, SyncChunks int64
	BytesEvicted, BytesLoaded, BytesSynced int64

	// Prefix-pin residency counters (see prefix.go). PinnedPages and
	// PeakPinnedPages are pool pages held by session prefix pins — the
	// memory the prefix cache charges that the old compute-side model
	// pretended was free.
	PrefixPins, PrefixEvictions, PrefixAdoptions int64
	PrefixBytesDrained                           int64
	MigratedInTokens, MigratedOutTokens          int64
	// MigratedOutBytes is the wire size of every pin staked for migration
	// out of this replica (routing migrations, pre-warm, drain hand-off) —
	// the kvcache-side mirror of the fabric's interconnect classes.
	MigratedOutBytes             int64
	MigrationDrops               int64
	PinnedPages, PeakPinnedPages int

	// PoolPages is the device pool capacity — the ceiling no residency
	// counter may ever cross (the invariant suite checks PeakPinnedPages
	// against it).
	PoolPages int

	// Host-tier prefix cache counters (see hostcache.go). HostMirroredPages
	// is the current host-memory footprint of evicted pins' mirrors — host
	// pages only, never part of the GPU pool accounting. HostReloads /
	// HostReloadTokens count mirrors that actually landed as pins (reloaded
	// instead of recomputed); HostReloadDrops counts reloads whose pin
	// could not be installed when the transfer completed (those turns
	// recompute after all); BytesReloaded totals the booked reload wire
	// traffic, dropped installs included.
	HostMirroredPages int
	// HostMirrorBytes is HostMirroredPages in bytes — the quantity the
	// HostCachePages budget bounds and the telemetry series charts.
	HostMirrorBytes                int64
	HostReloads, HostReloadTokens  int64
	HostReloadDrops, BytesReloaded int64
}

// Stats returns cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Evictions: m.evictions, Loads: m.loads, Discards: m.discards,
		SyncChunks: m.syncChunks, BytesEvicted: m.bytesEvicted,
		BytesLoaded: m.bytesLoaded, BytesSynced: m.bytesSynced,
		PrefixPins: m.prefixPins, PrefixEvictions: m.prefixEvictions,
		PrefixAdoptions: m.prefixAdopts, PrefixBytesDrained: m.prefixBytesDrained,
		MigratedInTokens: m.migratedInTokens, MigratedOutTokens: m.migratedOutTokens,
		MigratedOutBytes: m.migratedOutBytes,
		MigrationDrops:   m.migrationDrops,
		PinnedPages:      m.pinnedPages, PeakPinnedPages: m.peakPinnedPages,
		PoolPages:         m.cfg.GPUPages,
		HostMirroredPages: m.hostMirroredPages,
		HostMirrorBytes:   m.HostMirrorBytes(),
		HostReloads:       m.hostReloads, HostReloadTokens: m.hostReloadTokens,
		HostReloadDrops: m.hostReloadDrops, BytesReloaded: m.bytesReloaded,
	}
}
