package kvcache

import (
	"container/list"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/simclock"
)

// Session prefix pins: the radix-cache analogue of the unified residency
// model. When a multi-turn request finishes, its context KV stays on the
// device as a pinned prefix for the session's next turn — charged against
// the same page pool live requests allocate from, LRU-evicted under
// pressure (dirty pages drain over the d2h link before their pages free,
// preserving the write-through host mirror), and reclaimed before any
// admission is allowed to stall. A later turn that hits the pin adopts its
// pages into its own allocation instead of double-charging the pool.
//
// Pins can also migrate between replicas: the cluster ships a pin's pages
// over an interconnect link and installs them on a peer manager, so an
// overloaded replica hands a session's KV off instead of forcing the peer
// to recompute it.

// pin is one session's pinned prefix.
type pin struct {
	session int
	// tokens is the cached context length; pages its pool footprint.
	tokens int
	pages  int
	// synced counts pages with a clean host mirror (inherited from the
	// finished request's write-through progress). Evicting a pin frees
	// synced pages immediately; dirty pages drain over d2h first.
	synced int
	// migrating marks a pin whose pages are on the interconnect wire; it
	// is excluded from eviction, adoption, and hits until released.
	migrating bool
	// elem is the pin's node in the manager's LRU order.
	elem *list.Element
}

// PrefixEnabled reports whether the manager pins session prefixes.
func (m *Manager) PrefixEnabled() bool { return m.cfg.PrefixPages > 0 }

// PinnedPrefixPages reports the pool pages currently held by prefix pins.
func (m *Manager) PinnedPrefixPages() int { return m.pinnedPages }

// PeekPrefix reports the pinned prefix tokens for a session without
// touching the LRU order (router and admission probes). A migrating pin
// reports zero: its pages are leaving this device.
func (m *Manager) PeekPrefix(session int) int {
	p, ok := m.pins[session]
	if !ok || p.migrating {
		return 0
	}
	return p.tokens
}

// TakePrefix reports the pinned prefix tokens for a session and marks the
// pin most recently used (a hit assessed at arrival).
func (m *Manager) TakePrefix(session int) int {
	p, ok := m.pins[session]
	if !ok || p.migrating {
		return 0
	}
	m.touchPin(p)
	return p.tokens
}

// touchPin moves a pin to the MRU end of the eviction order.
func (m *Manager) touchPin(p *pin) {
	m.pinOrder.MoveToFront(p.elem)
}

// insertPin registers a new pin as most recently used and charges its
// pages to the pinned total.
func (m *Manager) insertPin(p *pin) {
	m.pins[p.session] = p
	p.elem = m.pinOrder.PushFront(p)
	m.pinnedPages += p.pages
	if m.pinnedPages > m.peakPinnedPages {
		m.peakPinnedPages = m.pinnedPages
	}
	m.obs.Emit(m.clock.Now(), obs.KindKVPin, m.obsReplica, -1, p.session,
		int64(p.tokens), int64(p.pages), 0, 0, "")
	if m.pubPin != nil {
		m.pubPin(p.session, p.tokens)
	}
}

// removePin unregisters a pin without releasing its pool pages. insertPin
// and removePin are the pin set's only mutation choke points, so
// publishing here covers every lifecycle path — eviction, adoption,
// supersession, migration completion, install replacement.
func (m *Manager) removePin(p *pin) {
	m.removePinQuiet(p)
	if m.pubPin != nil {
		m.pubPin(p.session, 0)
	}
}

// removePinQuiet is removePin without the index publication — for the
// supersede path only, where insertPin publishes the session's new pin at
// the same instant: the wire sees one pin update, not a remove/re-add
// pair, and the index mutates the holder entry in place.
func (m *Manager) removePinQuiet(p *pin) {
	delete(m.pins, p.session)
	m.pinOrder.Remove(p.elem)
	p.elem = nil
	m.pinnedPages -= p.pages
}

// ReleaseAsPrefix converts a finished request's resident pages into a
// session prefix pin instead of freeing them — the KV is already on the
// device, so pinning is free. Contexts that exceed the prefix budget, and
// contexts no longer than an existing pin for the session (an earlier turn
// finishing late), are discarded instead. A larger context supersedes the
// session's previous pin, whose pages free immediately (the new context's
// KV covers them).
func (m *Manager) ReleaseAsPrefix(r *request.Request, session int, now simclock.Time) {
	e, ok := m.entries[r.ID]
	if !ok || e.res != ResGPU || !m.PrefixEnabled() || session == 0 {
		m.Discard(r)
		return
	}
	tokens := r.ContextLen()
	if tokens <= 0 || e.pages > m.cfg.PrefixPages {
		m.Discard(r)
		return
	}
	if old, exists := m.pins[session]; exists {
		if old.migrating || old.tokens >= tokens {
			m.Discard(r)
			return
		}
		// Superseded: the finishing turn's context extends the old pin.
		m.removePin(old)
		m.free += old.pages
	}

	p := &pin{session: session, tokens: tokens, pages: e.gpuHeld}
	if p.synced = e.synced; p.synced > p.pages {
		p.synced = p.pages
	}
	// Detach the request entry, keeping its pages charged to the pool
	// (they now belong to the pin). In-flight sync chunks are invalidated;
	// their progress is not counted.
	e.epoch++
	e.gpuHeld = 0
	e.res = ResNone
	delete(m.entries, r.ID)
	m.dropFromSyncOrder(e)

	m.insertPin(p)
	m.prefixPins++
	// Enforce the budget: the freshly pinned context is MRU, so overflow
	// evicts other sessions in LRU order.
	for m.pinnedPages > m.cfg.PrefixPages {
		if m.evictLRUPin(now, session) == nil {
			break
		}
	}
}

// evictLRUPin evicts the least-recently-used non-migrating pin, skipping
// the excluded session, and returns it (nil when no pin is evictable).
func (m *Manager) evictLRUPin(now simclock.Time, exclude int) *pin {
	for el := m.pinOrder.Back(); el != nil; el = el.Prev() {
		p := el.Value.(*pin)
		if p.migrating || p.session == exclude {
			continue
		}
		m.evictPin(p, now)
		return p
	}
	return nil
}

// evictPin drops one pin under pressure. Synced pages free immediately.
// With offload enabled, dirty pages drain over the d2h link (maintaining
// the host-mirror invariant of write-through) and free when the transfer
// completes; without offload there is no host tier to mirror into, so the
// pages discard instantly — the same rule request preemption follows.
// Under HostCache the completed mirror outlives the pin: a later turn can
// reload it over h2d instead of recomputing (see hostcache.go).
func (m *Manager) evictPin(p *pin, now simclock.Time) {
	m.removePin(p)
	m.prefixEvictions++
	m.obs.Emit(now, obs.KindKVEvict, m.obsReplica, -1, p.session,
		int64(p.tokens), int64(p.pages), 0, 0, "")
	dirty := p.pages - p.synced
	if !m.cfg.Offload {
		m.free += p.pages
		return
	}
	m.free += p.synced
	if dirty <= 0 {
		m.mirrorEvictedPin(p, now)
		return
	}
	bytes := int64(dirty) * m.PageBytes()
	m.prefixBytesDrained += bytes
	_, done := m.ep.EnqueueD2H(fabric.ClassEvict, now, bytes)
	m.mirrorEvictedPin(p, done)
	crashEpoch := m.crashEpoch
	m.clock.At(done, func(t simclock.Time) {
		if m.crashEpoch != crashEpoch {
			return // the drain's pages died with the replica
		}
		m.free += dirty
		if m.cb.PinDrained != nil {
			m.cb.PinDrained(t)
		}
	})
}

// ReclaimPrefixPages evicts prefix pins (LRU first, excluding the given
// session) until need pages are covered — counting both pages freed
// immediately and dirty pages already draining toward the pool — or no
// evictable pin remains. It returns the pages freed synchronously; drained
// pages arrive later (PinDrained fires then), so a caller that still
// cannot allocate stalls only until the drain lands. Bounding the loop by
// covered rather than synchronously-freed pages keeps one small shortfall
// from flushing the entire pin set when pins are dirty. Admission and load
// paths call this before stalling, so live requests always outrank cached
// prefixes.
func (m *Manager) ReclaimPrefixPages(need int, now simclock.Time, exclude int) int {
	freed, draining := 0, 0
	for freed+draining < need {
		before := m.free
		p := m.evictLRUPin(now, exclude)
		if p == nil {
			break
		}
		freed += m.free - before
		draining += p.pages - (m.free - before)
	}
	return freed
}

// AdoptablePages reports the pool pages an admission for the session
// would absorb from its pin (0 for session 0, no pin, or a migrating
// pin). Engine admission uses it to size reclaims accurately.
func (m *Manager) AdoptablePages(session int) int {
	return m.adoptablePages(session)
}

// adoptablePages reports the pool pages an admission for the session could
// absorb from its pin.
func (m *Manager) adoptablePages(session int) int {
	if session == 0 {
		return 0
	}
	p, ok := m.pins[session]
	if !ok || p.migrating {
		return 0
	}
	return p.pages
}

// CanAdmit reports whether a context of the given tokens fits the pool
// right now, counting the session's adoptable pinned prefix pages as free
// (they fold into the new allocation rather than double-charging).
func (m *Manager) CanAdmit(tokens, session int) bool {
	return m.Pages(tokens) <= m.free+m.adoptablePages(session)
}

// AllocateWithPrefix claims pages for a request entering the device,
// adopting the session's pinned prefix into the allocation: the pin's
// pages transfer to the request (its KV prefix is already resident and
// keeps the pin's host-mirror progress), and only the pages beyond the
// prefix are newly charged. With session 0 or no pin it is exactly
// AllocateResident.
func (m *Manager) AllocateWithPrefix(r *request.Request, contextTokens, session int) error {
	if e, ok := m.entries[r.ID]; ok && e.res != ResNone {
		return fmt.Errorf("kvcache: request %d already has residency %v", r.ID, e.res)
	}
	adopted := 0
	if session != 0 {
		if p, ok := m.pins[session]; ok && !p.migrating {
			m.removePin(p)
			m.free += p.pages
			adopted = p.synced
			m.prefixAdopts++
		}
	}
	pages := m.Pages(contextTokens)
	if pages > m.free {
		return fmt.Errorf("kvcache: request %d needs %d pages, %d free", r.ID, pages, m.free)
	}
	m.free -= pages
	e := &entry{req: r, res: ResGPU, pages: pages, gpuHeld: pages}
	if e.synced = adopted; e.synced > pages {
		e.synced = pages
	}
	m.entries[r.ID] = e
	m.syncOrder = append(m.syncOrder, e)
	return nil
}

// PrefixInfo describes one pinned session prefix (batch pre-warm and
// drain planning).
type PrefixInfo struct {
	// Session is the pin's conversation key.
	Session int
	// Tokens is the pinned context length; Pages its pool footprint.
	Tokens, Pages int
}

// HottestPrefixes lists up to k pinned prefixes in most-recently-used
// order, skipping pins already on the interconnect wire; k <= 0 lists all.
// The cluster uses it to pre-warm a scaling-up replica with the sessions
// most likely to return, and to empty a draining replica. Probing does not
// perturb the eviction order.
func (m *Manager) HottestPrefixes(k int) []PrefixInfo {
	if k <= 0 || k > m.pinOrder.Len() {
		k = m.pinOrder.Len()
	}
	out := make([]PrefixInfo, 0, k)
	for el := m.pinOrder.Front(); el != nil && len(out) < k; el = el.Next() {
		p := el.Value.(*pin)
		if p.migrating {
			continue
		}
		out = append(out, PrefixInfo{Session: p.session, Tokens: p.tokens, Pages: p.pages})
	}
	return out
}

// DropPrefix evicts a session's pin outright (a draining replica with no
// surviving peer to migrate to). Synced pages free immediately; dirty pages
// drain to the host first, exactly as a pressure eviction would. It reports
// whether a pin was dropped.
func (m *Manager) DropPrefix(session int, now simclock.Time) bool {
	p, ok := m.pins[session]
	if !ok || p.migrating {
		return false
	}
	m.evictPin(p, now)
	return true
}

// PrefixFootprint reports a session pin's cached tokens and wire size
// without perturbing the LRU order (the migration cost model sizes the
// transfer before deciding whether to commit it). A migrating pin reports
// zero.
func (m *Manager) PrefixFootprint(session int) (tokens int, bytes int64) {
	p, ok := m.pins[session]
	if !ok || p.migrating {
		return 0, 0
	}
	return p.tokens, int64(p.pages) * m.PageBytes()
}

// BeginMigrateOut stakes a pin for cross-replica migration: the pin's
// pages stay charged (they are being read over the wire) but it no longer
// hits, adopts, or evicts. It reports the pinned tokens and the transfer
// size. The caller books the interconnect transfer and must call
// CompleteMigrateOut when it finishes.
func (m *Manager) BeginMigrateOut(session int) (tokens int, bytes int64, ok bool) {
	p, okp := m.pins[session]
	if !okp || p.migrating {
		return 0, 0, false
	}
	p.migrating = true
	bytes = int64(p.pages) * m.PageBytes()
	// The caller books exactly these bytes on the interconnect, so this
	// counter is the kvcache-side mirror of the fabric's migrate, prewarm,
	// and drain classes combined (the invariant suite cross-checks them).
	m.migratedOutBytes += bytes
	// A staked pin stops hitting and adopting (PeekPrefix reports zero),
	// so the index learns the departure now, not at transfer completion.
	if m.pubPin != nil {
		m.pubPin(p.session, 0)
	}
	return p.tokens, bytes, true
}

// CompleteMigrateOut releases a migrated-out pin: its pages free (the
// peer now holds the KV) and the session is forgotten on this device.
func (m *Manager) CompleteMigrateOut(session int) {
	p, ok := m.pins[session]
	if !ok || !p.migrating {
		return
	}
	m.removePin(p)
	m.free += p.pages
	m.migratedOutTokens += int64(p.tokens)
}

// InstallPrefix materializes a migrated-in prefix as a pin on this
// manager, evicting LRU pins to make room if needed. The migrated copy
// arrives host-mirrored (the transfer pipeline propagates it), so a later
// eviction of this pin is free. Installation is dropped — reported false —
// when the prefix exceeds the budget, an equal-or-larger pin already
// exists, or the pool cannot fit it even after reclaiming every other pin.
func (m *Manager) InstallPrefix(session, tokens int, now simclock.Time) bool {
	if !m.PrefixEnabled() || session == 0 || tokens <= 0 {
		m.migrationDrops++
		return false
	}
	pages := m.Pages(tokens)
	if pages > m.cfg.PrefixPages {
		m.migrationDrops++
		return false
	}
	if old, ok := m.pins[session]; ok {
		if old.migrating || old.tokens >= tokens {
			m.migrationDrops++
			return false
		}
		m.removePin(old)
		m.free += old.pages
	}
	if !m.placePin(session, tokens, pages, now) {
		m.migrationDrops++
		return false
	}
	m.migratedInTokens += int64(tokens)
	return true
}

// placePin claims pool pages for a fully synced incoming pin (migrated in
// or reloaded from the host tier), reclaiming colder pins to make room and
// enforcing the prefix budget afterward. It reports false — with nothing
// charged — when the pool cannot fit the pin even after reclaiming every
// other pin. InstallPrefix and installReloadedPin share it so reloaded and
// migrated-in pins always obey identical pool-admission rules.
func (m *Manager) placePin(session, tokens, pages int, now simclock.Time) bool {
	if pages > m.free {
		m.ReclaimPrefixPages(pages-m.free, now, session)
	}
	if pages > m.free {
		return false
	}
	m.free -= pages
	m.insertPin(&pin{session: session, tokens: tokens, pages: pages, synced: pages})
	m.prefixPins++
	for m.pinnedPages > m.cfg.PrefixPages {
		if m.evictLRUPin(now, session) == nil {
			break
		}
	}
	return true
}
