// Package kvcache implements the paper's hierarchical KV cache manager
// (§5): a paged GPU memory pool backed by host memory, with a write-through
// policy that mirrors freshly generated KV entries to the host in the
// background (§5.1), synchronous chunked writing that sizes background
// transfers to fit inside compute intervals (§5.2), and load-evict overlap
// that reclaims already-synchronized pages immediately on preemption (§5.3).
//
// Each policy is a switch so the Table 2 ablations (w/o offload, w/o
// write-through, w/o evict-load overlap) run on the same code path.
package kvcache

import (
	"container/list"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/request"
	"repro/internal/simclock"
)

// Config selects the memory-management policies and pool geometry.
type Config struct {
	// PageTokens is the page granularity in tokens (SGLang/vLLM-style
	// paged attention blocks).
	PageTokens int

	// GPUPages is the KV pool capacity in pages.
	GPUPages int

	// BytesPerToken is the model's KV footprint per context token.
	BytesPerToken int64

	// Offload enables host offload on preemption. When false, preemption
	// discards the KV cache and resumption must recompute (the Table 2
	// "w/o Offload" ablation and the recompute-style baselines).
	Offload bool

	// WriteThrough mirrors generated KV to host memory continuously in the
	// background. When false (write-back), all resident pages are dirty at
	// preemption time and must be transferred then.
	WriteThrough bool

	// ChunkedWriting sizes background writes to complete within the next
	// compute interval. When false, write-through still happens but the
	// engine must stall at iteration boundaries until outstanding writes
	// drain (the scheduling dependency of §5.2).
	ChunkedWriting bool

	// LoadEvictOverlap frees already-synchronized pages immediately at
	// preemption and lets loads proceed concurrently with evictions. When
	// false, pages free only when the whole eviction completes and loads
	// serialize behind in-flight evictions.
	LoadEvictOverlap bool

	// PriorityWrites orders background sync by descending client buffer
	// (requests most likely to be preempted sync first, §5.2); when false
	// the write queue is FIFO by request admission.
	PriorityWrites bool

	// PrefixPages caps the pool pages that session prefix pins may occupy
	// (see prefix.go). Pinned prefixes are real page-pool citizens: they
	// are charged against GPUPages, evicted LRU under pressure, and
	// reclaimed before any admission stall. Zero disables prefix pinning.
	PrefixPages int

	// HostCache extends the pin lifecycle past eviction (see hostcache.go):
	// an evicted pin whose dirty pages finished draining stays behind as a
	// host-mirrored prefix that a later session turn can reload over the
	// host-to-device link instead of recomputing. Host-mirrored pages live
	// in host memory only — they are never charged against GPUPages.
	// Requires Offload (without a host tier there is nothing to mirror
	// into; the flag is then inert).
	HostCache bool

	// HostCachePages budgets the host memory the mirror tier may hold, in
	// pages. Zero keeps the historical unlimited behavior: mirrors persist
	// until replaced by a larger one. A positive budget turns the tier
	// into a bounded spill buffer: the oldest mirrors drop when the budget
	// overflows, and a mirror is consumed (its host pages freed) once a
	// reload successfully re-pins it on the device.
	HostCachePages int
}

// Validate reports an error for non-positive geometry.
func (c Config) Validate() error {
	switch {
	case c.PageTokens <= 0:
		return fmt.Errorf("kvcache: non-positive page size %d", c.PageTokens)
	case c.GPUPages <= 0:
		return fmt.Errorf("kvcache: non-positive pool size %d", c.GPUPages)
	case c.BytesPerToken <= 0:
		return fmt.Errorf("kvcache: non-positive bytes/token %d", c.BytesPerToken)
	case c.PrefixPages < 0:
		return fmt.Errorf("kvcache: negative prefix page budget %d", c.PrefixPages)
	case c.PrefixPages > c.GPUPages:
		return fmt.Errorf("kvcache: prefix budget %d exceeds pool %d", c.PrefixPages, c.GPUPages)
	case c.HostCachePages < 0:
		return fmt.Errorf("kvcache: negative host cache budget %d", c.HostCachePages)
	}
	return nil
}

// Residency describes where a request's KV cache lives.
type Residency int

const (
	// ResNone: no KV anywhere (fresh, discarded, or finished).
	ResNone Residency = iota
	// ResGPU: resident on the device.
	ResGPU
	// ResEvicting: leaving the device; partially freed.
	ResEvicting
	// ResHost: fully off the device with a complete host copy.
	ResHost
	// ResLoading: host-to-device transfer in progress.
	ResLoading
)

var resNames = [...]string{"none", "gpu", "evicting", "host", "loading"}

func (r Residency) String() string {
	if int(r) < len(resNames) {
		return resNames[r]
	}
	return fmt.Sprintf("residency(%d)", int(r))
}

// entry is the per-request cache state.
type entry struct {
	req *request.Request

	res Residency

	// pages is the total page count for the request's current context.
	pages int
	// synced counts pages with a clean host mirror.
	synced int
	// inFlight counts pages currently on the device-to-host wire from
	// background sync.
	inFlight int
	// gpuHeld counts pages currently charged against the GPU pool (during
	// eviction this drains; during load it grows at load start).
	gpuHeld int

	// epoch invalidates callbacks from transfers issued before a
	// preemption or discard.
	epoch uint64
}

// Callbacks notify the serving engine of asynchronous completions.
type Callbacks struct {
	// EvictDone fires when a preempted request's pages have fully left the
	// device (its host copy is complete and usable for a later load).
	EvictDone func(r *request.Request, now simclock.Time)
	// LoadDone fires when a resuming request's KV is fully resident.
	LoadDone func(r *request.Request, now simclock.Time)
	// PinDrained fires when an evicted prefix pin's dirty pages finish
	// draining to the host and their pool pages free (memory that may
	// unblock a stalled admission or load).
	PinDrained func(now simclock.Time)
}

// Manager is the hierarchical KV cache manager.
type Manager struct {
	cfg   Config
	clock *simclock.Clock

	// ep is the replica's handle on the transfer fabric: every booking —
	// sync, evict, load, reload — goes through it so the fabric's per-class
	// accounting sees all traffic. d2h and h2d cache the endpoint's host
	// links for read-only estimation (queue delay, wire time).
	ep  *fabric.Endpoint
	d2h *gpu.Link // eviction / write-through direction
	h2d *gpu.Link // load direction
	cb  Callbacks

	free    int
	entries map[int]*entry

	// syncOrder preserves admission order for FIFO write-through;
	// syncScratch is the reused candidate buffer of syncCandidates.
	syncOrder   []*entry
	syncScratch []*entry

	// Session prefix pins (see prefix.go).
	pins            map[int]*pin
	pinOrder        *list.List // Front = most recently used
	pinnedPages     int
	peakPinnedPages int

	// Host-tier prefix mirrors (see hostcache.go). hostPinOrder keeps
	// mirror recency (Front = most recently created or refreshed) for the
	// HostCachePages budget's drop order.
	hostPins          map[int]*hostPin
	hostPinOrder      *list.List
	hostMirroredPages int

	// obs is the optional flight recorder (nil = off, free); obsReplica
	// is the replica id stamped on emitted events.
	obs        *obs.Recorder
	obsReplica int

	// pubPin / pubMirror publish pin and host-mirror lifecycle changes to
	// the cluster's prefix index (nil = no index, free). pubPin fires with
	// the session's pinned tokens after every transition that changes what
	// a router probe would see — insert, eviction, adoption, supersession,
	// migration staking — with tokens 0 when the prefix leaves the device.
	// pubMirror is the host-tier analogue.
	pubPin    func(session, tokens int)
	pubMirror func(session, tokens int)

	// crashEpoch is the manager's generation counter: Crash bumps it, and
	// completion closures that outlive per-entry epochs (pin eviction
	// drains, host reloads) capture it so a transfer booked before a crash
	// cannot mutate the post-crash (backfilled) manager state.
	crashEpoch uint64

	// stats
	evictions, loads, discards, syncChunks    int64
	bytesEvicted, bytesLoaded, bytesSynced    int64
	prefixPins, prefixEvictions, prefixAdopts int64
	prefixBytesDrained                        int64
	migratedInTokens, migratedOutTokens       int64
	migratedOutBytes                          int64
	migrationDrops                            int64
	hostReloads, hostReloadTokens             int64
	hostReloadDrops, bytesReloaded            int64
}

// New constructs a manager on the replica's fabric endpoint, whose host
// link pair (device-to-host and host-to-device; PCIe is full duplex) must
// already be attached.
func New(cfg Config, clock *simclock.Clock, ep *fabric.Endpoint, cb Callbacks) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clock == nil || ep == nil {
		return nil, fmt.Errorf("kvcache: nil clock or fabric endpoint")
	}
	if !ep.HostAttached() {
		return nil, fmt.Errorf("kvcache: fabric endpoint %d has no host links", ep.Replica())
	}
	return &Manager{
		cfg:          cfg,
		clock:        clock,
		ep:           ep,
		d2h:          ep.D2H(),
		h2d:          ep.H2D(),
		cb:           cb,
		free:         cfg.GPUPages,
		entries:      make(map[int]*entry),
		pins:         make(map[int]*pin),
		pinOrder:     list.New(),
		hostPins:     make(map[int]*hostPin),
		hostPinOrder: list.New(),
		obsReplica:   -1,
	}, nil
}

// SetObs installs the flight recorder, stamping events with the given
// replica id. Pure observation: cache behavior is identical with or
// without it. Under sharded execution rec must be the owning shard's
// recorder (the engine passes its own sink through), preserving the
// single-writer discipline the deterministic merge depends on.
func (m *Manager) SetObs(rec *obs.Recorder, replica int) {
	m.obs = rec
	m.obsReplica = replica
}

// SetPrefixPublisher installs the prefix-index publication hooks. Both
// are optional (nil = no publication); installation happens before the
// run starts, so the index sees every lifecycle transition. The hooks
// run synchronously inside cache mutations — propagation delay and drops
// are the subscriber's model, not the manager's.
func (m *Manager) SetPrefixPublisher(pin, mirror func(session, tokens int)) {
	m.pubPin = pin
	m.pubMirror = mirror
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// PageBytes reports the size of one page in bytes.
func (m *Manager) PageBytes() int64 {
	return int64(m.cfg.PageTokens) * m.cfg.BytesPerToken
}

// Pages reports how many pages a context of the given tokens occupies.
func (m *Manager) Pages(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + m.cfg.PageTokens - 1) / m.cfg.PageTokens
}

// FreePages reports unallocated pool pages.
func (m *Manager) FreePages() int { return m.free }

// TotalPages reports the pool capacity.
func (m *Manager) TotalPages() int { return m.cfg.GPUPages }

// UsedPages reports allocated pool pages.
func (m *Manager) UsedPages() int { return m.cfg.GPUPages - m.free }

// Residency reports where a request's KV lives.
func (m *Manager) Residency(r *request.Request) Residency {
	e, ok := m.entries[r.ID]
	if !ok {
		return ResNone
	}
	return e.res
}

// ResidentTokens reports the total context tokens resident on the GPU
// across all requests (for telemetry).
func (m *Manager) ResidentTokens() int64 {
	var n int64
	for _, e := range m.entries {
		if e.res == ResGPU {
			n += int64(e.req.ContextLen())
		}
	}
	return n
}

// CanAllocate reports whether a context of the given tokens fits in the
// free pool right now.
func (m *Manager) CanAllocate(tokens int) bool {
	return m.Pages(tokens) <= m.free
}

// AllocateResident claims pages for a request entering the device with
// freshly computed KV (prefill or recompute-resume). All pages start dirty
// under write-through and unsynced under write-back.
func (m *Manager) AllocateResident(r *request.Request, contextTokens int) error {
	return m.AllocateWithPrefix(r, contextTokens, 0)
}

// NeedsGrowth reports whether appending one token to the request's context
// requires a new page.
func (m *Manager) NeedsGrowth(r *request.Request) bool {
	e, ok := m.entries[r.ID]
	if !ok || e.res != ResGPU {
		return false
	}
	return m.Pages(r.ContextLen()+1) > e.pages
}

// GrowOne extends a resident request's allocation for one appended token,
// claiming a new page when the context crosses a page boundary. It fails
// when the pool is exhausted, signalling the engine's OOM path.
func (m *Manager) GrowOne(r *request.Request) error {
	e, ok := m.entries[r.ID]
	if !ok || e.res != ResGPU {
		return fmt.Errorf("kvcache: growing non-resident request %d", r.ID)
	}
	need := m.Pages(r.ContextLen() + 1)
	if need <= e.pages {
		return nil
	}
	if m.free < 1 {
		return fmt.Errorf("kvcache: pool exhausted growing request %d", r.ID)
	}
	m.free--
	e.pages++
	e.gpuHeld++
	return nil
}

// dirtyPages reports pages without a clean host mirror and not on the wire.
func (e *entry) dirtyPages() int { return e.pages - e.synced - e.inFlight }

// Discard frees everything a request holds on the device and forgets its
// host copy (request finished, or preemption with offload disabled).
func (m *Manager) Discard(r *request.Request) {
	e, ok := m.entries[r.ID]
	if !ok {
		return
	}
	m.free += e.gpuHeld
	e.gpuHeld = 0
	e.pages = 0
	e.synced = 0
	e.inFlight = 0
	e.res = ResNone
	e.epoch++
	m.discards++
	delete(m.entries, r.ID)
	m.dropFromSyncOrder(e)
}

// dropFromSyncOrder removes an entry from the write-through queue.
func (m *Manager) dropFromSyncOrder(e *entry) {
	for i, se := range m.syncOrder {
		if se == e {
			m.syncOrder = append(m.syncOrder[:i], m.syncOrder[i+1:]...)
			break
		}
	}
}
