package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/request"
	"repro/internal/simclock"
)

// testRig bundles a manager with its clock and a single-host fabric at
// 1 GB/s each direction and 16-token pages of 64 KiB (4 KiB/token).
type testRig struct {
	clock      *simclock.Clock
	ep         *fabric.Endpoint
	d2h, h2d   *gpu.Link
	m          *Manager
	evictDone  []int
	loadDone   []int
	evictTimes map[int]simclock.Time
	loadTimes  map[int]simclock.Time
}

func newRig(t testing.TB, cfg Config) *testRig {
	t.Helper()
	ep := fabric.NewSingleHost(1e9, 1e9)
	rig := &testRig{
		clock:      simclock.New(),
		ep:         ep,
		d2h:        ep.D2H(),
		h2d:        ep.H2D(),
		evictTimes: make(map[int]simclock.Time),
		loadTimes:  make(map[int]simclock.Time),
	}
	if cfg.PageTokens == 0 {
		cfg.PageTokens = 16
	}
	if cfg.BytesPerToken == 0 {
		cfg.BytesPerToken = 4096
	}
	if cfg.GPUPages == 0 {
		cfg.GPUPages = 64
	}
	m, err := New(cfg, rig.clock, rig.ep, Callbacks{
		EvictDone: func(r *request.Request, now simclock.Time) {
			rig.evictDone = append(rig.evictDone, r.ID)
			rig.evictTimes[r.ID] = now
		},
		LoadDone: func(r *request.Request, now simclock.Time) {
			rig.loadDone = append(rig.loadDone, r.ID)
			rig.loadTimes[r.ID] = now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.m = m
	return rig
}

func fullConfig() Config {
	return Config{Offload: true, WriteThrough: true, ChunkedWriting: true,
		LoadEvictOverlap: true, PriorityWrites: true}
}

func newReq(id, prompt, output int) *request.Request {
	return request.New(id, 0, prompt, output, 1e9) // effectively never consumes
}

func TestConfigValidate(t *testing.T) {
	good := Config{PageTokens: 16, GPUPages: 8, BytesPerToken: 1024}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{PageTokens: 0, GPUPages: 8, BytesPerToken: 1},
		{PageTokens: 16, GPUPages: 0, BytesPerToken: 1},
		{PageTokens: 16, GPUPages: 8, BytesPerToken: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
}

func TestNewRejectsNils(t *testing.T) {
	cfg := Config{PageTokens: 16, GPUPages: 8, BytesPerToken: 1024}
	if _, err := New(cfg, nil, nil, Callbacks{}); err == nil {
		t.Error("nil deps should error")
	}
	// An endpoint without attached host links is a wiring error too.
	topo, err := fabric.NewTopology(2, fabric.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	bare := fabric.NewScheduler(topo).Endpoint(0)
	if _, err := New(cfg, simclock.New(), bare, Callbacks{}); err == nil {
		t.Error("host-less endpoint should error")
	}
}

func TestPagesRounding(t *testing.T) {
	rig := newRig(t, fullConfig())
	cases := map[int]int{0: 0, 1: 1, 16: 1, 17: 2, 32: 2, 33: 3}
	for tokens, want := range cases {
		if got := rig.m.Pages(tokens); got != want {
			t.Errorf("Pages(%d) = %d, want %d", tokens, got, want)
		}
	}
	if rig.m.PageBytes() != 16*4096 {
		t.Errorf("page bytes = %d", rig.m.PageBytes())
	}
}

func TestAllocateAndGrow(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 32, 100)
	if err := rig.m.AllocateResident(r, 32); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 32
	if rig.m.UsedPages() != 2 || rig.m.FreePages() != 62 {
		t.Fatalf("used=%d free=%d", rig.m.UsedPages(), rig.m.FreePages())
	}
	if rig.m.Residency(r) != ResGPU {
		t.Fatalf("residency = %v", rig.m.Residency(r))
	}
	// Context is exactly 2 pages; appending token 33 needs growth.
	if !rig.m.NeedsGrowth(r) {
		t.Error("context at page boundary should need growth")
	}
	if err := rig.m.GrowOne(r); err != nil {
		t.Fatal(err)
	}
	if rig.m.UsedPages() != 3 {
		t.Errorf("used after grow = %d", rig.m.UsedPages())
	}
	// Mid-page growth is free.
	clock := simclock.New()
	r.DeliverTokens(clock, 0, 1)
	if rig.m.NeedsGrowth(r) {
		t.Error("mid-page token should not need growth")
	}
}

func TestAllocateRejectsOverCapacity(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 64*16+1, 10) // 65 pages > 64
	if err := rig.m.AllocateResident(r, r.PromptLen); err == nil {
		t.Error("over-capacity allocation should fail")
	}
	if !rig.m.CanAllocate(64 * 16) {
		t.Error("exactly full pool should be allocatable")
	}
	if rig.m.CanAllocate(64*16 + 1) {
		t.Error("pool+1 should not be allocatable")
	}
}

func TestDoubleAllocateFails(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 16, 10)
	if err := rig.m.AllocateResident(r, 16); err != nil {
		t.Fatal(err)
	}
	if err := rig.m.AllocateResident(r, 16); err == nil {
		t.Error("double allocation should fail")
	}
}

func TestGrowExhaustionSignalsOOM(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 64*16, 10)
	if err := rig.m.AllocateResident(r, r.PromptLen); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = r.PromptLen
	if err := rig.m.GrowOne(r); err == nil {
		t.Error("growth past pool should fail")
	}
}

func TestDiscardFreesEverything(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 48, 10)
	if err := rig.m.AllocateResident(r, 48); err != nil {
		t.Fatal(err)
	}
	rig.m.Discard(r)
	if rig.m.FreePages() != 64 {
		t.Errorf("free after discard = %d", rig.m.FreePages())
	}
	if rig.m.Residency(r) != ResNone {
		t.Errorf("residency = %v", rig.m.Residency(r))
	}
	// Discard of unknown request is a no-op.
	rig.m.Discard(newReq(99, 16, 1))
}

func TestPreemptWithoutOffloadDiscards(t *testing.T) {
	cfg := fullConfig()
	cfg.Offload = false
	rig := newRig(t, cfg)
	r := newReq(1, 32, 10)
	if err := rig.m.AllocateResident(r, 32); err != nil {
		t.Fatal(err)
	}
	done, err := rig.m.Preempt(r, rig.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if done != rig.clock.Now() {
		t.Error("discard preemption should complete instantly")
	}
	if rig.m.FreePages() != 64 || rig.m.Residency(r) != ResNone {
		t.Error("discard should free all pages")
	}
	if len(rig.evictDone) != 1 || rig.evictDone[0] != 1 {
		t.Error("EvictDone should fire")
	}
	if rig.m.HostBytes(r) != 0 {
		t.Error("no host copy without offload")
	}
}

func TestWriteBackEvictionTransfersEverything(t *testing.T) {
	cfg := fullConfig()
	cfg.WriteThrough = false
	rig := newRig(t, cfg)
	r := newReq(1, 256, 10) // 16 pages = 1 MiB
	if err := rig.m.AllocateResident(r, 256); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 256
	done, err := rig.m.Preempt(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantWire := rig.d2h.TransferTime(16 * rig.m.PageBytes())
	if done != simclock.Time(wantWire) {
		t.Errorf("eviction done at %v, want %v", done, simclock.Time(wantWire))
	}
	// Pages are not free until the transfer completes... except none were
	// synced, so overlap has nothing to reclaim early.
	if rig.m.FreePages() != 48 {
		t.Errorf("free during eviction = %d, want 48", rig.m.FreePages())
	}
	rig.clock.Run()
	if rig.m.FreePages() != 64 || rig.m.Residency(r) != ResHost {
		t.Errorf("after eviction: free=%d res=%v", rig.m.FreePages(), rig.m.Residency(r))
	}
	if rig.m.HostBytes(r) != 16*rig.m.PageBytes() {
		t.Errorf("host bytes = %d", rig.m.HostBytes(r))
	}
}

func TestWriteThroughMakesPreemptionNearInstant(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 256, 10)
	if err := rig.m.AllocateResident(r, 256); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 256
	// Background-sync all 16 pages with a generous 1-hour iteration budget.
	rig.m.BackgroundSync(0, time.Hour)
	rig.clock.Run()
	if rig.m.EstimateEvict(r, rig.clock.Now()) != 0 {
		t.Errorf("evict estimate after full sync = %v, want 0", rig.m.EstimateEvict(r, rig.clock.Now()))
	}
	now := rig.clock.Now()
	done, err := rig.m.Preempt(r, now)
	if err != nil {
		t.Fatal(err)
	}
	if done != now {
		t.Errorf("fully synced preemption should be instant, done at %v (now %v)", done, now)
	}
	if rig.m.FreePages() != 64 {
		t.Errorf("free = %d, overlap should reclaim synced pages immediately", rig.m.FreePages())
	}
}

func TestChunkedSyncRespectsIterationBudget(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 1024, 10) // 64 pages = 4 MiB
	if err := rig.m.AllocateResident(r, 1024); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 1024
	// 1 ms iteration at 1 GB/s = 1 MB budget = 15 pages (page = 65536 B).
	rig.m.BackgroundSync(0, time.Millisecond)
	if got := rig.d2h.QueueDelay(0); got > time.Millisecond {
		t.Errorf("booked write exceeds iteration budget: %v", got)
	}
	rig.clock.Run()
	// ~15 pages synced; remaining dirty.
	if est := rig.m.EstimateEvict(r, rig.clock.Now()); est == 0 {
		t.Error("partial sync should leave dirty pages")
	}
}

func TestSyncWithoutWriteThroughIsNoop(t *testing.T) {
	cfg := fullConfig()
	cfg.WriteThrough = false
	rig := newRig(t, cfg)
	r := newReq(1, 256, 10)
	if err := rig.m.AllocateResident(r, 256); err != nil {
		t.Fatal(err)
	}
	rig.m.BackgroundSync(0, time.Hour)
	if rig.m.Stats().SyncChunks != 0 {
		t.Error("write-back should never background-sync")
	}
}

func TestIterBoundaryStall(t *testing.T) {
	cfg := fullConfig()
	cfg.ChunkedWriting = false
	rig := newRig(t, cfg)
	r := newReq(1, 1024, 10)
	if err := rig.m.AllocateResident(r, 1024); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 1024
	rig.m.BackgroundSync(0, time.Millisecond)
	// All 64 pages (4 MiB) booked at once: 4 ms backlog stalls the boundary.
	stall := rig.m.IterBoundaryStall(0)
	if stall < 3*time.Millisecond {
		t.Errorf("unchunked write-through should stall boundaries, got %v", stall)
	}
	// Chunked config never stalls.
	rig2 := newRig(t, fullConfig())
	r2 := newReq(1, 1024, 10)
	if err := rig2.m.AllocateResident(r2, 1024); err != nil {
		t.Fatal(err)
	}
	rig2.m.BackgroundSync(0, time.Millisecond)
	if rig2.m.IterBoundaryStall(0) != 0 {
		t.Error("chunked writing must not stall iteration boundaries")
	}
}

func TestLoadRestoresResidency(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 256, 10)
	if err := rig.m.AllocateResident(r, 256); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 256
	if _, err := rig.m.Preempt(r, 0); err != nil {
		t.Fatal(err)
	}
	rig.clock.Run()
	if rig.m.Residency(r) != ResHost {
		t.Fatalf("residency = %v", rig.m.Residency(r))
	}
	done, err := rig.m.StartLoad(r, rig.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if rig.m.Residency(r) != ResLoading {
		t.Errorf("residency during load = %v", rig.m.Residency(r))
	}
	if rig.m.FreePages() != 48 {
		t.Errorf("pages should be claimed at load start, free=%d", rig.m.FreePages())
	}
	rig.clock.Run()
	if rig.m.Residency(r) != ResGPU {
		t.Errorf("residency after load = %v", rig.m.Residency(r))
	}
	if len(rig.loadDone) != 1 || rig.loadTimes[1] != done {
		t.Error("LoadDone should fire at completion time")
	}
	// After a loaded resume the host copy is still clean: instant preempt.
	d2, err := rig.m.Preempt(r, rig.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if d2 != rig.clock.Now() {
		t.Error("re-preemption after load should be instant (incremental updates)")
	}
}

func TestLoadRequiresHostResidency(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 32, 10)
	if _, err := rig.m.StartLoad(r, 0); err == nil {
		t.Error("loading unknown request should fail")
	}
	if err := rig.m.AllocateResident(r, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.m.StartLoad(r, 0); err == nil {
		t.Error("loading resident request should fail")
	}
}

func TestLoadRequiresFreePages(t *testing.T) {
	rig := newRig(t, fullConfig())
	victim := newReq(1, 512, 10) // 32 pages
	if err := rig.m.AllocateResident(victim, 512); err != nil {
		t.Fatal(err)
	}
	victim.PrefilledTokens = 512
	if _, err := rig.m.Preempt(victim, 0); err != nil {
		t.Fatal(err)
	}
	rig.clock.Run()
	// Fill the pool completely.
	hog := newReq(2, 64*16, 10)
	if err := rig.m.AllocateResident(hog, hog.PromptLen); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.m.StartLoad(victim, rig.clock.Now()); err == nil {
		t.Error("load without free pages should fail")
	}
}

func TestLoadEvictOverlapDisabledSerializes(t *testing.T) {
	cfg := fullConfig()
	cfg.LoadEvictOverlap = false
	cfg.WriteThrough = false // make the eviction slow
	rig := newRig(t, cfg)

	victim := newReq(1, 512, 10) // 32 pages = 2 MiB -> 2ms eviction
	other := newReq(2, 256, 10)
	if err := rig.m.AllocateResident(victim, 512); err != nil {
		t.Fatal(err)
	}
	victim.PrefilledTokens = 512
	if err := rig.m.AllocateResident(other, 256); err != nil {
		t.Fatal(err)
	}
	other.PrefilledTokens = 256
	if _, err := rig.m.Preempt(other, 0); err != nil {
		t.Fatal(err)
	}
	rig.clock.Run() // other fully on host
	evictEnd, err := rig.m.Preempt(victim, rig.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	loadDone, err := rig.m.StartLoad(other, rig.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if loadDone <= evictEnd {
		t.Errorf("without overlap the load (%v) must wait for the eviction (%v)", loadDone, evictEnd)
	}

	// With overlap, the same sequence loads concurrently.
	rig2 := newRig(t, func() Config { c := fullConfig(); c.WriteThrough = false; return c }())
	v2 := newReq(1, 512, 10)
	o2 := newReq(2, 256, 10)
	if err := rig2.m.AllocateResident(v2, 512); err != nil {
		t.Fatal(err)
	}
	v2.PrefilledTokens = 512
	if err := rig2.m.AllocateResident(o2, 256); err != nil {
		t.Fatal(err)
	}
	o2.PrefilledTokens = 256
	if _, err := rig2.m.Preempt(o2, 0); err != nil {
		t.Fatal(err)
	}
	rig2.clock.Run()
	evictEnd2, err := rig2.m.Preempt(v2, rig2.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	loadDone2, err := rig2.m.StartLoad(o2, rig2.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if loadDone2 >= evictEnd2 {
		t.Errorf("with overlap the load (%v) should finish before the 2-MiB eviction (%v)", loadDone2, evictEnd2)
	}
}

func TestPriorityWritesOrderByBuffer(t *testing.T) {
	rig := newRig(t, fullConfig())
	clock := simclock.New()
	small := request.New(1, 0, 16, 100, 1e6)
	big := request.New(2, 0, 16, 100, 1e6)
	if err := rig.m.AllocateResident(small, 16); err != nil {
		t.Fatal(err)
	}
	if err := rig.m.AllocateResident(big, 16); err != nil {
		t.Fatal(err)
	}
	small.PrefilledTokens = 16
	big.PrefilledTokens = 16
	// big accumulates a larger client buffer.
	big.Rate = 0.001
	small.Rate = 0.001
	big.DeliverTokens(clock, 0, 50)
	small.DeliverTokens(clock, 0, 5)
	cands := rig.m.syncCandidates()
	if len(cands) != 2 || cands[0].req.ID != 2 {
		t.Errorf("priority writes should order request 2 first: %v", ids(cands))
	}
	// FIFO ordering when disabled.
	cfg := fullConfig()
	cfg.PriorityWrites = false
	rig2 := newRig(t, cfg)
	if err := rig2.m.AllocateResident(small, 16); err != nil {
		t.Fatal(err)
	}
	if err := rig2.m.AllocateResident(big, 16); err != nil {
		t.Fatal(err)
	}
	c2 := rig2.m.syncCandidates()
	if len(c2) != 2 || c2[0].req.ID != 1 {
		t.Errorf("FIFO writes should order request 1 first: %v", ids(c2))
	}
}

func ids(es []*entry) []int {
	var out []int
	for _, e := range es {
		out = append(out, e.req.ID)
	}
	return out
}

func TestEstimateLoadIncludesQueueing(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 512, 10)
	if err := rig.m.AllocateResident(r, 512); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 512
	if _, err := rig.m.Preempt(r, 0); err != nil {
		t.Fatal(err)
	}
	rig.clock.Run()
	base := rig.m.EstimateLoad(r, rig.clock.Now())
	if base <= 0 {
		t.Fatal("load estimate should be positive")
	}
	// Occupy the h2d link and re-estimate.
	rig.h2d.Enqueue(rig.clock.Now(), 10e6) // 10 ms backlog
	withQueue := rig.m.EstimateLoad(r, rig.clock.Now())
	if withQueue <= base {
		t.Errorf("queueing should inflate the estimate: %v vs %v", withQueue, base)
	}
}

func TestStatsAccumulate(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 256, 10)
	if err := rig.m.AllocateResident(r, 256); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 256
	rig.m.BackgroundSync(0, time.Hour)
	rig.clock.Run()
	if _, err := rig.m.Preempt(r, rig.clock.Now()); err != nil {
		t.Fatal(err)
	}
	rig.clock.Run()
	if _, err := rig.m.StartLoad(r, rig.clock.Now()); err != nil {
		t.Fatal(err)
	}
	rig.clock.Run()
	s := rig.m.Stats()
	if s.Evictions != 1 || s.Loads != 1 || s.SyncChunks == 0 || s.BytesLoaded == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestResidentTokens(t *testing.T) {
	rig := newRig(t, fullConfig())
	r := newReq(1, 100, 10)
	if err := rig.m.AllocateResident(r, 100); err != nil {
		t.Fatal(err)
	}
	r.PrefilledTokens = 100
	if got := rig.m.ResidentTokens(); got != 100 {
		t.Errorf("resident tokens = %d", got)
	}
}

// Property: any random sequence of allocate / grow / sync / preempt / load /
// discard operations preserves page accounting: free + sum(gpuHeld) ==
// capacity, and free never goes negative.
func TestPropertyPageAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rig := newRig(t, fullConfig())
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]*request.Request, 0)
		nextID := 1
		check := func() bool {
			held := 0
			for _, e := range rig.m.entries {
				if e.gpuHeld < 0 || e.synced < 0 || e.inFlight < 0 {
					return false
				}
				held += e.gpuHeld
			}
			return rig.m.free >= 0 && rig.m.free+held == rig.m.cfg.GPUPages
		}
		for step := 0; step < 300; step++ {
			if !check() {
				return false
			}
			op := rng.Intn(6)
			switch op {
			case 0: // allocate
				r := newReq(nextID, rng.Intn(300)+1, 50)
				nextID++
				if rig.m.CanAllocate(r.PromptLen) {
					if rig.m.AllocateResident(r, r.PromptLen) != nil {
						return false
					}
					r.PrefilledTokens = r.PromptLen
					reqs = append(reqs, r)
				}
			case 1: // grow a random resident request
				for _, r := range reqs {
					if rig.m.Residency(r) == ResGPU && rig.m.FreePages() > 0 {
						_ = rig.m.GrowOne(r)
						break
					}
				}
			case 2: // background sync
				rig.m.BackgroundSync(rig.clock.Now(), time.Duration(rng.Intn(5))*time.Millisecond)
			case 3: // preempt
				for _, r := range reqs {
					if rig.m.Residency(r) == ResGPU {
						if _, err := rig.m.Preempt(r, rig.clock.Now()); err != nil {
							return false
						}
						break
					}
				}
			case 4: // load
				for _, r := range reqs {
					need := int(rig.m.HostBytes(r) / rig.m.PageBytes())
					if rig.m.Residency(r) == ResHost && need <= rig.m.FreePages() {
						if _, err := rig.m.StartLoad(r, rig.clock.Now()); err != nil {
							return false
						}
						break
					}
				}
			case 5: // discard or advance time
				if rng.Intn(2) == 0 {
					for _, r := range reqs {
						if rig.m.Residency(r) == ResGPU {
							rig.m.Discard(r)
							break
						}
					}
				} else {
					rig.clock.RunUntil(rig.clock.Now().Add(time.Duration(rng.Intn(10)) * time.Millisecond))
				}
			}
		}
		rig.clock.Run()
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBackgroundSync(b *testing.B) {
	rig := newRig(b, fullConfig())
	var reqs []*request.Request
	for i := 0; i < 32; i++ {
		r := newReq(i, 256, 100)
		if err := rig.m.AllocateResident(r, 256); err != nil {
			break
		}
		r.PrefilledTokens = 256
		reqs = append(reqs, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.m.BackgroundSync(rig.clock.Now(), time.Millisecond)
		rig.clock.RunUntil(rig.clock.Now().Add(time.Millisecond))
	}
}
