package core

import (
	"math"
	"sort"

	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// Scheduler is the TokenFlow buffer-aware scheduler.
type Scheduler struct {
	cfg Config

	lastFull simclock.Time
	ranFull  bool

	// Stats for the evaluation's overhead and behaviour analysis.
	FullReschedules int64
	LightPasses     int64
	FallbackPasses  int64
	SwapsApplied    int64
}

// New constructs the scheduler, normalizing the config.
func New(cfg Config) (*Scheduler, error) {
	n, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	return &Scheduler{cfg: n}, nil
}

// MustNew is New for compile-time-constant configs in tests and examples.
func MustNew(cfg Config) *Scheduler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the normalized configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// ForceFullPass clears the interval gate so the next Decide runs a full
// working-set + buffer-balancing pass; used by overhead benchmarks.
func (s *Scheduler) ForceFullPass() { s.ranFull = false }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "tokenflow" }

// PrefillChunkTokens implements sched.Scheduler. TokenFlow partitions
// prefill batches dynamically in the engine (§4.2.3); the scheduler itself
// runs unchunked prefill-priority iterations like its SGLang substrate.
func (s *Scheduler) PrefillChunkTokens() int { return 0 }

// NextDecisionTime implements sched.Waker: while the interval gate holds,
// a stressed system gets only light passes, so absent other events the
// next decision change is the full buffer-balancing pass at the end of the
// current RescheduleInterval.
func (s *Scheduler) NextDecisionTime(now simclock.Time) simclock.Time {
	if !s.ranFull {
		return simclock.Forever
	}
	return s.lastFull.Add(s.cfg.RescheduleInterval)
}

// Decide implements sched.Scheduler with the two-phase algorithm of §4.2:
// a full working-set determination and buffer-balancing pass every
// RescheduleInterval while the system is stressed, and a cheap prefill-
// first pass otherwise.
func (s *Scheduler) Decide(v *sched.View) sched.Decision {
	stressed := len(v.Waiting) > 0 || len(v.Preempted) > 0 || s.anyCritical(v)
	if !stressed {
		s.LightPasses++
		return s.lightPass(v)
	}
	if s.ranFull && v.Now.Sub(s.lastFull) < s.cfg.RescheduleInterval {
		s.LightPasses++
		return s.lightPass(v)
	}
	s.ranFull = true
	s.lastFull = v.Now

	if s.cfg.FallbackFCFS && s.overloaded(v) {
		s.FallbackPasses++
		return s.fcfsFallback(v)
	}
	s.FullReschedules++
	return s.fullPass(v)
}

// anyCritical reports whether any running stream's buffer dropped below
// T_critical (§4.2.1's stress condition).
func (s *Scheduler) anyCritical(v *sched.View) bool {
	for _, r := range v.Running {
		if r.Generated > 0 && !r.GenerationDone() && r.BufferSeconds() < s.cfg.CriticalBufferSeconds {
			return true
		}
	}
	return false
}

// swapCycleSeconds estimates τ_evict + τ_load + τ_schedule for a candidate
// preemption-resumption cycle of request r, from the memory manager's live
// profiled transfer estimates (§4.2.1).
func (s *Scheduler) swapCycleSeconds(v *sched.View, r *request.Request) float64 {
	cycle := s.cfg.RescheduleInterval.Seconds() // τ_schedule: next full pass
	if v.Mem != nil {
		cycle += v.Mem.EstimateEvict(r, v.Now).Seconds()
		cycle += v.Mem.EstimateLoad(r, v.Now).Seconds()
	}
	return cycle
}

// canSurviveSwap is the admission/victim criterion
// b_rem ≥ μ·r_i·(τ_evict+τ_load+τ_schedule): the stream's buffer must
// cover a full preemption-resumption cycle with safety factor μ.
func (s *Scheduler) canSurviveSwap(v *sched.View, r *request.Request) bool {
	if r.Rate <= 0 {
		// Instant consumers hold no buffer; preempting them only delays
		// completion, so they are always swappable.
		return true
	}
	need := s.cfg.BufferConservativeness * r.Rate * s.swapCycleSeconds(v, r)
	return float64(r.BufferLen()) >= need
}

// lightPass is the non-stressed path: prefill-first FCFS admission into
// free memory, plus urgent resumes of preempted streams about to starve.
func (s *Scheduler) lightPass(v *sched.View) sched.Decision {
	var d sched.Decision
	avail := v.FreeTokens - v.BacklogTokens()
	slots := v.SlotsFree()
	for _, r := range v.Preempted {
		if !s.resumeUrgent(v, r) {
			continue
		}
		need := r.PromptLen + r.Generated
		if need > avail || slots <= 0 {
			continue
		}
		d.Admit = append(d.Admit, sched.Admission{Req: r, Mode: s.resumeMode(v, r)})
		avail -= need
		slots--
	}
	for _, r := range v.Waiting {
		if r.PromptLen > avail || slots <= 0 {
			break
		}
		d.Admit = append(d.Admit, sched.Admission{Req: r})
		avail -= r.PromptLen
		slots--
	}
	return d
}

// resumeUrgent reports whether a preempted stream must resume before the
// next full pass to avoid a stall.
func (s *Scheduler) resumeUrgent(v *sched.View, r *request.Request) bool {
	if r.Rate <= 0 {
		return false
	}
	horizon := s.cfg.RescheduleInterval.Seconds()
	if v.Mem != nil {
		horizon += v.Mem.EstimateLoad(r, v.Now).Seconds()
	}
	return r.BufferSeconds() < horizon
}

// resumeMode picks load-from-host versus recompute by comparing the
// profiled I/O latency with the estimated recomputation time (§4.2.3's
// min(t_IO, t_recompute) rule).
func (s *Scheduler) resumeMode(v *sched.View, r *request.Request) sched.ResumeMode {
	if v.Mem == nil || v.Mem.HostBytes(r) == 0 {
		return sched.ResumeRecompute
	}
	tIO := v.Mem.EstimateLoad(r, v.Now)
	tRecompute := v.RecomputeEstimate(r)
	if tIO > tRecompute {
		return sched.ResumeRecompute
	}
	return sched.ResumeLoad
}

// capacity estimates the throughput bound Γ of §4.3: aggregate decode
// tokens/s at the largest batch device memory sustains for the live
// population's average context.
func (s *Scheduler) capacity(v *sched.View) float64 {
	var ctxSum int64
	n := 0
	add := func(rs []*request.Request) {
		for _, r := range rs {
			ctxSum += int64(r.FullContextLen())
			n++
		}
	}
	add(v.Running)
	add(v.Loading)
	add(v.PrefillBacklog)
	add(v.Preempted)
	add(v.Waiting)
	avgCtx := int64(1024)
	if n > 0 {
		avgCtx = ctxSum / int64(n)
	}
	if avgCtx <= 0 {
		avgCtx = 1
	}
	memBatch := int(int64(v.TotalTokens) / avgCtx)
	if memBatch < 1 {
		memBatch = 1
	}
	if v.MaxBatch > 0 && memBatch > v.MaxBatch {
		memBatch = v.MaxBatch
	}
	return v.Cost.PeakDecodeTokensPerSec(memBatch, avgCtx)
}

// demandAll sums required output rates over every live request — the
// Σ r_i of Eq. 6 taken over the population the scheduler would have to
// pace. Instant consumers (rate <= 0) contribute no pacing demand.
func demandAll(v *sched.View) float64 {
	var demand float64
	add := func(rs []*request.Request) {
		for _, r := range rs {
			if r.Rate > 0 && !r.GenerationDone() {
				demand += r.Rate
			}
		}
	}
	add(v.Running)
	add(v.Loading)
	add(v.PrefillBacklog)
	add(v.Preempted)
	add(v.Waiting)
	return demand
}

// overloaded implements the §4.3 schedulability check: when the combined
// required output rates exceed the throughput bound Γ, no schedule can
// pace every stream, and the scheduler gracefully degrades to FCFS with
// memory-aware admission (requests then finish at full device speed,
// which drains the overload fastest).
func (s *Scheduler) overloaded(v *sched.View) bool {
	demand := demandAll(v)
	if demand == 0 {
		return false
	}
	// 10% slack avoids flapping between balanced and fallback modes on
	// estimate noise.
	return demand > 1.1*s.capacity(v)
}

// fcfsFallback schedules strictly by arrival within device memory (§4.3):
// no buffer balancing, no new working-set growth beyond what fits.
func (s *Scheduler) fcfsFallback(v *sched.View) sched.Decision {
	var d sched.Decision
	avail := v.FreeTokens - v.BacklogTokens()
	slots := v.SlotsFree()
	// Resume preempted in arrival order first, then fresh arrivals.
	pre := append([]*request.Request(nil), v.Preempted...)
	sort.SliceStable(pre, func(i, j int) bool { return pre[i].Arrival < pre[j].Arrival })
	for _, r := range pre {
		need := r.PromptLen + r.Generated
		if need > avail || slots <= 0 {
			continue
		}
		d.Admit = append(d.Admit, sched.Admission{Req: r, Mode: s.resumeMode(v, r)})
		avail -= need
		slots--
	}
	for _, r := range v.Waiting {
		if r.PromptLen > avail || slots <= 0 {
			break
		}
		d.Admit = append(d.Admit, sched.Admission{Req: r})
		avail -= r.PromptLen
		slots--
	}
	return d
}

// candidate is one working-set member under buffer balancing.
type candidate struct {
	req *request.Request
	// utility is the selection priority U_i (see utility()).
	utility float64
	// tokens is the device context the request needs if resident during
	// the next interval (current context plus expected growth).
	tokens int
	// resident marks requests currently on the device.
	resident bool
	// committed marks requests the balancer cannot displace this pass
	// (mid-prefill, mid-load, or protected by the swap criterion).
	committed bool
}

// utility computes the per-request selection priority, the operational
// form of Eq. 3's U_i = v_i·t′ − γ·φ(b_rem). The paper defines φ(b)=e^(−b)
// and states that near-empty buffers must receive *higher* priority
// (§4.2.2 point 1), so the starvation term enters the priority positively;
// v_i·t′ is the expected value of the tokens generated next interval,
// which itself decays with buffer occupancy (tokens beyond the client's
// consumption horizon are worthless, §3.2). Unserved requests carry an
// additional urgency that grows with queueing delay relative to the TTFT
// target, so responsiveness pressure and starvation pressure compete on
// one scale.
func (s *Scheduler) utility(v *sched.View, r *request.Request) float64 {
	if r.Generated == 0 {
		wait := v.Now.Sub(r.Arrival).Seconds()
		return s.cfg.Gamma * (1 + wait/s.cfg.TTFTTarget.Seconds())
	}
	buf := r.BufferSeconds()
	starvation := s.cfg.Gamma * math.Exp(-buf/s.cfg.BufferScaleSeconds)
	// v_i·t′: tokens generated over the next interval are worth up to the
	// client's consumption during that interval; a fat buffer devalues
	// them to zero.
	interval := s.cfg.RescheduleInterval.Seconds()
	value := 0.0
	if r.Rate > 0 {
		value = math.Max(0, 1-buf/(2*s.cfg.TargetBufferSeconds)) * interval
	} else {
		value = 0.5 * interval // instant consumers always consume
	}
	return starvation + value
}

// expectedTokens estimates the device context a request occupies through
// the next interval: current context plus decode growth.
func (s *Scheduler) expectedTokens(v *sched.View, r *request.Request) int {
	ctx := r.PromptLen + r.Generated
	growth := 0
	if v.AvgIterTime > 0 {
		growth = int(s.cfg.RescheduleInterval.Seconds() / v.AvgIterTime.Seconds())
	}
	if growth > r.RemainingOutput() {
		growth = r.RemainingOutput()
	}
	return ctx + growth
}

// fullPass runs the two-step algorithm: working-set determination (§4.2.1)
// then buffer balancing with greedy selection and local search (§4.2.2).
func (s *Scheduler) fullPass(v *sched.View) sched.Decision {
	// --- Step 1: working-set determination -----------------------------
	// W_static = ⌊M/β⌋ (Eq. 4) with β from config or the live population.
	beta := s.cfg.ExpectedContextTokens
	members := len(v.Running) + len(v.Loading) + len(v.PrefillBacklog) + len(v.Preempted)
	if beta == 0 {
		var sum int64
		n := 0
		add := func(rs []*request.Request) {
			for _, r := range rs {
				sum += int64(r.FullContextLen())
				n++
			}
		}
		add(v.Running)
		add(v.Preempted)
		add(v.Waiting)
		add(v.PrefillBacklog)
		if n > 0 {
			beta = int(sum / int64(n))
		}
	}
	if beta <= 0 {
		beta = 1024
	}
	wStatic := int(s.cfg.Overcommit*float64(v.TotalTokens)) / beta
	if wStatic < 1 {
		wStatic = 1
	}
	// Eq. 5: shrink toward the live running count so the working set does
	// not balloon while the device is underused.
	wSched := wStatic
	if nRun := len(v.Running); nRun < wStatic {
		wSched = wStatic - int(s.cfg.AdjustRate*float64(wStatic-nRun))
		if wSched < nRun+1 {
			wSched = nRun + 1
		}
	}

	// Admit waiting requests into the working set while capacity remains.
	// Overcommitment is intentional: the admitted request may displace a
	// fat-buffer stream in step 2. Admission requires the swap-feasibility
	// criterion — enough running streams must be able to cover a swap —
	// unless the device has outright free memory.
	var admitted []*request.Request
	free := v.FreeTokens - v.BacklogTokens()
	swappable := 0
	for _, r := range v.Running {
		if r.PrefillDone() && s.canSurviveSwap(v, r) {
			swappable += r.PromptLen + r.Generated
		}
	}
	for _, r := range v.Waiting {
		if members+len(admitted) >= wSched {
			break
		}
		if r.PromptLen <= free {
			admitted = append(admitted, r)
			free -= r.PromptLen
			continue
		}
		if r.PromptLen <= free+swappable {
			admitted = append(admitted, r)
			swappable -= r.PromptLen - free
			free = 0
			continue
		}
		break
	}

	// --- Step 2: buffer balancing inside the working set ----------------
	cands := make([]candidate, 0, members+len(admitted))
	for _, r := range v.Running {
		c := candidate{req: r, utility: s.utility(v, r), tokens: s.expectedTokens(v, r), resident: true}
		// Streams that cannot survive a swap, or are still prefilling,
		// must stay.
		if !r.PrefillDone() || r.Generated == 0 || !s.canSurviveSwap(v, r) {
			c.committed = true
		}
		// Streams below the target buffer are not preemption candidates
		// either: preempting them trades one stall for another.
		if r.Rate > 0 && r.BufferSeconds() < s.cfg.TargetBufferSeconds {
			c.committed = true
		}
		cands = append(cands, c)
	}
	for _, r := range v.Preempted {
		cands = append(cands, candidate{req: r, utility: s.utility(v, r), tokens: s.expectedTokens(v, r)})
	}
	for _, r := range admitted {
		cands = append(cands, candidate{req: r, utility: s.utility(v, r), tokens: s.expectedTokens(v, r)})
	}

	// Loading and backlog requests are committed consumers of memory and
	// batch slots.
	budget := int(s.cfg.PackFraction * float64(v.TotalTokens))
	for _, r := range v.Loading {
		budget -= s.expectedTokens(v, r)
	}
	for _, r := range v.PrefillBacklog {
		budget -= s.expectedTokens(v, r)
	}
	slots := 0 // 0 = unbounded
	if v.MaxBatch > 0 {
		slots = v.MaxBatch - len(v.Loading) - len(v.PrefillBacklog)
		if slots < 1 {
			slots = 1
		}
	}

	selected := s.selectCandidates(cands, budget, slots)

	var d sched.Decision
	for i := range cands {
		c := &cands[i]
		if c.resident && !selected[c.req.ID] && !c.committed {
			d.Preempt = append(d.Preempt, c.req)
		}
	}
	// Admissions in utility order so the engine applies the most urgent
	// first when memory is tight.
	ordered := make([]candidate, 0, len(cands))
	for _, c := range cands {
		if !c.resident && selected[c.req.ID] {
			ordered = append(ordered, c)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].utility > ordered[j].utility })
	for _, c := range ordered {
		adm := sched.Admission{Req: c.req}
		if c.req.State == request.StatePreempted {
			adm.Mode = s.resumeMode(v, c.req)
		}
		d.Admit = append(d.Admit, adm)
	}
	return d
}

// selectCandidates greedily picks candidates by descending utility under
// the token budget, then applies the §4.2.2 local search: adjacent pairs
// in the priority queue are tentatively swapped and the greedy packing is
// re-evaluated; a swap sticks when it raises the total selected utility
// within the memory constraint. (A single large high-utility request can
// otherwise block several slightly-lower-utility small ones.)
func (s *Scheduler) selectCandidates(cands []candidate, budget, slots int) map[int]bool {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.committed != cb.committed {
			return ca.committed // committed first: they consume budget regardless
		}
		return ca.utility > cb.utility
	})

	bestSel, bestUtil := s.pack(cands, order, budget, slots)
	if !s.cfg.LocalSearch {
		return bestSel
	}
	for k := 0; k+1 < len(order); k++ {
		if cands[order[k]].committed || cands[order[k+1]].committed {
			continue // committed entries are fixed consumers of budget
		}
		order[k], order[k+1] = order[k+1], order[k]
		sel, util := s.pack(cands, order, budget, slots)
		if util > bestUtil {
			bestSel, bestUtil = sel, util
			s.SwapsApplied++
		} else {
			order[k], order[k+1] = order[k+1], order[k] // revert
		}
	}
	return bestSel
}

// pack runs the greedy packing over a candidate order under the token
// budget and the batch-slot cap (Σx_i ≤ B of §3.3; slots <= 0 means
// unbounded), returning the selected IDs and the total utility of the
// discretionary selections.
func (s *Scheduler) pack(cands []candidate, order []int, budget, slots int) (map[int]bool, float64) {
	selected := make(map[int]bool, len(order))
	remaining := budget
	left := slots
	util := 0.0
	for _, i := range order {
		c := cands[i]
		if c.committed {
			selected[c.req.ID] = true
			remaining -= c.tokens
			left--
			continue
		}
		if slots > 0 && left <= 0 {
			continue
		}
		if c.tokens <= remaining {
			selected[c.req.ID] = true
			remaining -= c.tokens
			left--
			util += c.utility
		}
	}
	return selected, util
}
