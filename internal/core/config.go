// Package core implements the TokenFlow buffer-aware request scheduler,
// the paper's primary contribution (§4): a two-step algorithm that first
// determines the working set of requests to multiplex (Eq. 4-5 with the
// swap-feasibility admission criterion) and then balances client token
// buffers inside the working set by preempting fat-buffer streams in favor
// of starved ones (the utility function of §3.3/§4.2.2, maximized with a
// greedy selection plus local search). It coordinates with the
// hierarchical KV cache manager of internal/kvcache: preemption decisions
// account for live I/O load, and resumes choose between loading the host
// copy and recomputing (§4.2.3).
package core

import (
	"fmt"
	"time"
)

// Config holds the TokenFlow scheduler's tunables. Zero values select the
// paper's defaults via Normalize.
type Config struct {
	// RescheduleInterval is Δt, the period of full buffer-balancing
	// passes (§7.5 studies 0.5-1.5s; default 1s).
	RescheduleInterval time.Duration

	// BufferConservativeness is μ, the safety factor in the admission
	// criterion b_rem ≥ μ·r_i·(τ_evict+τ_load+τ_schedule) (§4.2.1) and in
	// preemption-victim protection. Higher values behave more like
	// SGLang (§7.5 studies 1.0 and 20.0; default 2.0).
	BufferConservativeness float64

	// Gamma weighs the starvation-avoidance term in the utility function
	// (the γ of Eq. 3; default 4).
	Gamma float64

	// BufferScaleSeconds normalizes buffered playback seconds inside the
	// exponential φ(b)=e^(−b/scale) so the penalty is meaningful across
	// consumption rates (default 2s).
	BufferScaleSeconds float64

	// AdjustRate is λ in the dynamic working-set shrink
	// W_sched = W_static − λ·(W_static − N_running) (Eq. 5; default 0.5).
	AdjustRate float64

	// ExpectedContextTokens is β, the per-request memory footprint
	// estimate in W_static = ⌊M/β⌋ (Eq. 4). Zero derives it from the live
	// request population.
	ExpectedContextTokens int

	// Overcommit scales the working-set bound beyond device memory
	// (§4.2.2's overcommitment mechanism: the working set may exceed GPU
	// memory, with the excess transparently offloaded to host memory).
	// Eq. 4's M is therefore the host-extended capacity: W_static =
	// ⌊Overcommit·M_gpu/β⌋. Default 2.5.
	Overcommit float64

	// TargetBufferSeconds is the buffered-playback level beyond which a
	// running stream becomes a preemption candidate (the "buffer ≥
	// threshold" of the Figure 6 example; default 3s).
	TargetBufferSeconds float64

	// CriticalBufferSeconds is T_critical: a running stream dropping below
	// this much buffered playback triggers rescheduling even between
	// intervals (§4.2.1; default 1s).
	CriticalBufferSeconds float64

	// TTFTTarget scales the urgency of unserved requests (the 1.3s
	// engagement threshold of §2.2).
	TTFTTarget time.Duration

	// LocalSearch enables the adjacent-swap refinement after the greedy
	// selection (§4.2.2); disable to ablate.
	LocalSearch bool

	// FallbackFCFS enables graceful degradation to FCFS with memory-aware
	// admission when Σ r_i exceeds the throughput capacity Γ (§4.3);
	// disable to ablate.
	FallbackFCFS bool

	// MaxBatchTokens caps the total context the balancer packs onto the
	// device, as a fraction of pool capacity (default 0.95, leaving room
	// for per-iteration growth).
	PackFraction float64
}

// DefaultConfig returns the paper's default TokenFlow settings.
func DefaultConfig() Config {
	return Config{
		RescheduleInterval:     time.Second,
		BufferConservativeness: 2.0,
		Gamma:                  4.0,
		BufferScaleSeconds:     2.0,
		AdjustRate:             0.5,
		TargetBufferSeconds:    3.0,
		CriticalBufferSeconds:  1.0,
		TTFTTarget:             1300 * time.Millisecond,
		Overcommit:             2.5,
		LocalSearch:            true,
		FallbackFCFS:           true,
		PackFraction:           0.95,
	}
}

// Normalize fills zero fields with defaults and validates ranges.
func (c Config) Normalize() (Config, error) {
	d := DefaultConfig()
	if c.RescheduleInterval == 0 {
		c.RescheduleInterval = d.RescheduleInterval
	}
	if c.BufferConservativeness == 0 {
		c.BufferConservativeness = d.BufferConservativeness
	}
	if c.Gamma == 0 {
		c.Gamma = d.Gamma
	}
	if c.BufferScaleSeconds == 0 {
		c.BufferScaleSeconds = d.BufferScaleSeconds
	}
	if c.AdjustRate == 0 {
		c.AdjustRate = d.AdjustRate
	}
	if c.TargetBufferSeconds == 0 {
		c.TargetBufferSeconds = d.TargetBufferSeconds
	}
	if c.CriticalBufferSeconds == 0 {
		c.CriticalBufferSeconds = d.CriticalBufferSeconds
	}
	if c.TTFTTarget == 0 {
		c.TTFTTarget = d.TTFTTarget
	}
	if c.PackFraction == 0 {
		c.PackFraction = d.PackFraction
	}
	if c.Overcommit == 0 {
		c.Overcommit = d.Overcommit
	}
	switch {
	case c.RescheduleInterval < 0:
		return c, fmt.Errorf("core: negative reschedule interval %v", c.RescheduleInterval)
	case c.BufferConservativeness < 1:
		return c, fmt.Errorf("core: buffer conservativeness %v must be >= 1", c.BufferConservativeness)
	case c.Gamma < 0 || c.BufferScaleSeconds <= 0:
		return c, fmt.Errorf("core: invalid utility parameters (gamma=%v scale=%v)", c.Gamma, c.BufferScaleSeconds)
	case c.AdjustRate < 0 || c.AdjustRate > 1:
		return c, fmt.Errorf("core: adjust rate %v must be in [0,1]", c.AdjustRate)
	case c.PackFraction <= 0 || c.PackFraction > 1:
		return c, fmt.Errorf("core: pack fraction %v must be in (0,1]", c.PackFraction)
	case c.ExpectedContextTokens < 0:
		return c, fmt.Errorf("core: negative expected context %d", c.ExpectedContextTokens)
	case c.Overcommit < 1:
		return c, fmt.Errorf("core: overcommit %v must be >= 1", c.Overcommit)
	}
	return c, nil
}
