package core

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/simclock"
)

func TestConfigNormalizeDefaults(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultConfig()
	if c.RescheduleInterval != d.RescheduleInterval || c.Gamma != d.Gamma ||
		c.BufferConservativeness != d.BufferConservativeness {
		t.Errorf("normalize did not apply defaults: %+v", c)
	}
	// Note: explicit false for LocalSearch/FallbackFCFS stays false; they
	// default true only via DefaultConfig.
}

func TestConfigNormalizeRejectsBadValues(t *testing.T) {
	bad := []Config{
		{RescheduleInterval: -time.Second},
		{BufferConservativeness: 0.5},
		{Gamma: -1},
		{BufferScaleSeconds: -1},
		{AdjustRate: 1.5},
		{PackFraction: 1.5},
		{ExpectedContextTokens: -1},
	}
	for i, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("config %d should fail: %+v", i, c)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Gamma: -1}); err == nil {
		t.Error("bad config should error")
	}
	s := MustNew(DefaultConfig())
	if s.Name() != "tokenflow" {
		t.Errorf("name = %q", s.Name())
	}
	if s.PrefillChunkTokens() != 0 {
		t.Error("tokenflow runs unchunked prefill")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{Gamma: -1})
}

// view builds a minimal scheduler view with an H200/Llama3-8B cost model.
func view(t *testing.T, now simclock.Time) *sched.View {
	t.Helper()
	cost, err := gpu.NewCostModel(gpu.H200, model.Llama3_8B)
	if err != nil {
		t.Fatal(err)
	}
	return &sched.View{
		Now:         now,
		FreeTokens:  100_000,
		TotalTokens: 200_000,
		PageTokens:  16,
		Cost:        cost,
		AvgIterTime: 20 * time.Millisecond,
	}
}

// streamReq builds a running request with a given buffered playback depth.
func streamReq(id int, rate float64, bufferTokens int, outputLen int) *request.Request {
	clock := simclock.New()
	r := request.New(id, 0, 256, outputLen, rate)
	r.State = request.StateRunning
	r.PrefilledTokens = 256
	// Deliver bufferTokens+1 tokens; the first is consumed immediately at
	// TTFT, leaving bufferTokens in the buffer.
	r.DeliverTokens(clock, 0, bufferTokens+1)
	r.CancelConsumption(clock)
	return r
}

func TestUtilityPrefersStarvedStreams(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, simclock.FromSeconds(10))
	starved := streamReq(1, 20, 5, 1000) // 0.25s of buffer
	fat := streamReq(2, 20, 200, 1000)   // 10s of buffer
	if s.utility(v, starved) <= s.utility(v, fat) {
		t.Errorf("starved stream should outrank fat stream: %v vs %v",
			s.utility(v, starved), s.utility(v, fat))
	}
}

func TestUtilityUnservedGrowsWithWait(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, simclock.FromSeconds(10))
	fresh := request.New(1, simclock.FromSeconds(9.5), 256, 512, 20)
	old := request.New(2, simclock.FromSeconds(2), 256, 512, 20)
	if s.utility(v, old) <= s.utility(v, fresh) {
		t.Error("longer-waiting request should have higher utility")
	}
}

func TestCanSurviveSwap(t *testing.T) {
	s := MustNew(DefaultConfig()) // μ=2, interval=1s -> needs 2*rate*1s = 40 tokens at 20 tok/s
	v := view(t, simclock.FromSeconds(5))
	thin := streamReq(1, 20, 10, 1000)
	fat := streamReq(2, 20, 100, 1000)
	if s.canSurviveSwap(v, thin) {
		t.Error("10-token buffer cannot survive a 2x1s swap at 20 tok/s")
	}
	if !s.canSurviveSwap(v, fat) {
		t.Error("100-token buffer should survive")
	}
	instant := streamReq(3, 0, 0, 1000)
	if !s.canSurviveSwap(v, instant) {
		t.Error("instant consumers are always swappable")
	}
}

func TestLightPassAdmitsFIFO(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, 0)
	a := request.New(1, 0, 1000, 100, 20)
	b := request.New(2, 0, 2000, 100, 20)
	v.Waiting = []*request.Request{a, b}
	v.FreeTokens = 2500
	d := s.Decide(v)
	if len(d.Admit) != 1 || d.Admit[0].Req.ID != 1 {
		t.Fatalf("admit = %+v, want only request 1 (head fits, second does not)", d.Admit)
	}
	if len(d.Preempt) != 0 {
		t.Error("light pass never preempts")
	}
}

func TestFullPassGatedByInterval(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, simclock.FromSeconds(1))
	// Stressed: waiting non-empty, huge memory so light admission drains it.
	v.Waiting = []*request.Request{request.New(1, 0, 256, 512, 20)}
	s.Decide(v)
	if s.FullReschedules != 1 {
		t.Fatalf("first stressed decide should run a full pass, got %d", s.FullReschedules)
	}
	// 100ms later, still stressed: must take the light path.
	v2 := view(t, simclock.FromSeconds(1.1))
	v2.Waiting = []*request.Request{request.New(2, 0, 256, 512, 20)}
	s.Decide(v2)
	if s.FullReschedules != 1 {
		t.Errorf("full pass should be interval-gated, got %d", s.FullReschedules)
	}
	// After the interval elapses it runs again.
	v3 := view(t, simclock.FromSeconds(2.2))
	v3.Waiting = []*request.Request{request.New(3, 0, 256, 512, 20)}
	s.Decide(v3)
	if s.FullReschedules != 2 {
		t.Errorf("full pass should rerun after Δt, got %d", s.FullReschedules)
	}
}

func TestUnstressedTakesLightPath(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, simclock.FromSeconds(1))
	v.Running = []*request.Request{streamReq(1, 20, 100, 1000)} // healthy buffer
	d := s.Decide(v)
	if s.FullReschedules != 0 || s.LightPasses != 1 {
		t.Errorf("full=%d light=%d", s.FullReschedules, s.LightPasses)
	}
	if len(d.Admit) != 0 && len(d.Preempt) != 0 {
		t.Error("nothing to do")
	}
}

func TestCriticalBufferTriggersStress(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, simclock.FromSeconds(1))
	v.Running = []*request.Request{streamReq(1, 20, 5, 1000)} // 0.25s buffer < 1s critical
	s.Decide(v)
	if s.FullReschedules != 1 {
		t.Error("critical buffer should trigger a full pass")
	}
}

func TestFullPassPreemptsFatBufferForWaiting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExpectedContextTokens = 600
	s := MustNew(cfg)
	v := view(t, simclock.FromSeconds(5))
	// Pool of 1300 tokens, mostly held by one fat-buffer stream (context
	// 657): the 700-token newcomer only fits by preempting it.
	fat := streamReq(1, 20, 400, 2000) // 20s of buffer
	v.Running = []*request.Request{fat}
	v.TotalTokens = 1300
	v.FreeTokens = v.TotalTokens - (fat.PromptLen + fat.Generated)
	newcomer := request.New(2, simclock.FromSeconds(2), 700, 512, 20)
	v.Waiting = []*request.Request{newcomer}
	d := s.Decide(v)
	if len(d.Preempt) != 1 || d.Preempt[0].ID != 1 {
		t.Fatalf("expected preemption of the fat stream, got %+v", d.Preempt)
	}
	found := false
	for _, a := range d.Admit {
		if a.Req.ID == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("newcomer should be admitted, got %+v", d.Admit)
	}
}

func TestFullPassProtectsThinBuffers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExpectedContextTokens = 600
	s := MustNew(cfg)
	v := view(t, simclock.FromSeconds(5))
	thin := streamReq(1, 20, 30, 2000) // 1.5s buffer < 3s target
	v.Running = []*request.Request{thin}
	v.TotalTokens = 1300
	v.FreeTokens = v.TotalTokens - (thin.PromptLen + thin.Generated)
	v.Waiting = []*request.Request{request.New(2, simclock.FromSeconds(2), 700, 512, 20)}
	d := s.Decide(v)
	for _, p := range d.Preempt {
		if p.ID == 1 {
			t.Error("thin-buffer stream must not be preempted")
		}
	}
}

func TestResumePreferredOverRecomputeWhenCheap(t *testing.T) {
	s := MustNew(DefaultConfig())
	v := view(t, simclock.FromSeconds(5))
	r := request.New(1, 0, 4096, 512, 20)
	r.State = request.StatePreempted
	// No Mem in view -> recompute is the only option.
	if got := s.resumeMode(v, r); got != sched.ResumeRecompute {
		t.Errorf("mode without host copy = %v", got)
	}
}

func TestFallbackOnOverload(t *testing.T) {
	cfg := DefaultConfig()
	s := MustNew(cfg)
	v := view(t, simclock.FromSeconds(5))
	// Demand far beyond H200 capacity: 2000 streams at 100 tok/s = 200k
	// tok/s demanded.
	for i := 0; i < 50; i++ {
		r := streamReq(100+i, 4000, 10, 30000)
		v.Running = append(v.Running, r)
	}
	v.Waiting = []*request.Request{request.New(1, 0, 256, 512, 4000)}
	d := s.Decide(v)
	if s.FallbackPasses != 1 {
		t.Fatalf("expected FCFS fallback, full=%d fallback=%d", s.FullReschedules, s.FallbackPasses)
	}
	if len(d.Preempt) != 0 {
		t.Error("fallback mode must not buffer-balance preempt")
	}
}

func TestFallbackDisabledByConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FallbackFCFS = false
	s := MustNew(cfg)
	v := view(t, simclock.FromSeconds(5))
	for i := 0; i < 50; i++ {
		v.Running = append(v.Running, streamReq(100+i, 4000, 10, 30000))
	}
	v.Waiting = []*request.Request{request.New(1, 0, 256, 512, 4000)}
	s.Decide(v)
	if s.FallbackPasses != 0 {
		t.Error("fallback disabled should never trigger")
	}
}

func TestLocalSearchSwapsInHigherUtility(t *testing.T) {
	// Construct candidates where greedy packs a big low-utility candidate
	// plus nothing else, and local search swaps it for a skipped
	// higher-utility one.
	cfg := DefaultConfig()
	s := MustNew(cfg)
	// Budget 1000. Greedy by utility packs only #1 (u=5, 900 tokens),
	// total utility 5, blocking two slightly-lower small requests. The
	// adjacent swap (#1,#2) repacks as {#2, #3} with utility 9.7.
	cands := []candidate{
		{req: request.New(1, 0, 10, 10, 20), utility: 5, tokens: 900},
		{req: request.New(2, 0, 10, 10, 20), utility: 4.9, tokens: 500},
		{req: request.New(3, 0, 10, 10, 20), utility: 4.8, tokens: 500},
	}
	sel := s.selectCandidates(cands, 1000, 0)
	if sel[1] || !sel[2] || !sel[3] {
		t.Errorf("local search should select {2,3}: %v", sel)
	}
	if s.SwapsApplied == 0 {
		t.Error("swap counter should increment")
	}
	// Without local search, greedy keeps only #1.
	cfg2 := DefaultConfig()
	cfg2.LocalSearch = false
	s2 := MustNew(cfg2)
	sel2 := s2.selectCandidates(cands, 1000, 0)
	if !sel2[1] || sel2[2] || sel2[3] {
		t.Errorf("pure greedy should keep only #1: %v", sel2)
	}
}

func TestSelectRespectsCommitted(t *testing.T) {
	s := MustNew(DefaultConfig())
	cands := []candidate{
		{req: request.New(1, 0, 10, 10, 20), utility: 0.1, tokens: 900, committed: true},
		{req: request.New(2, 0, 10, 10, 20), utility: 9, tokens: 500},
	}
	sel := s.selectCandidates(cands, 1000, 0)
	if !sel[1] {
		t.Error("committed candidates are always selected")
	}
	if sel[2] {
		t.Error("budget after committed (100) cannot fit candidate 2")
	}
}

func TestWorkingSetShrinksWhenUnderused(t *testing.T) {
	// Eq. 5: with few running requests the working set contracts; verify
	// indirectly — a stressed pass with tiny running count and plentiful
	// waiting should not admit unboundedly.
	cfg := DefaultConfig()
	cfg.ExpectedContextTokens = 1000
	cfg.AdjustRate = 1.0 // full shrink: W_sched = N_running+1
	s := MustNew(cfg)
	v := view(t, simclock.FromSeconds(5))
	v.TotalTokens = 100_000 // W_static = 100
	v.FreeTokens = 100_000
	for i := 0; i < 20; i++ {
		v.Waiting = append(v.Waiting, request.New(i, 0, 500, 500, 20))
	}
	d := s.Decide(v)
	// W_sched = W_static - 1.0*(100-0) = 0 -> clamped to N_running+1 = 1.
	if len(d.Admit) != 1 {
		t.Errorf("full-shrink working set should admit exactly 1, got %d", len(d.Admit))
	}
}

func BenchmarkDecideStressed(b *testing.B) {
	cost, err := gpu.NewCostModel(gpu.H200, model.Llama3_8B)
	if err != nil {
		b.Fatal(err)
	}
	s := MustNew(DefaultConfig())
	v := &sched.View{
		Now: simclock.FromSeconds(100), FreeTokens: 50_000, TotalTokens: 200_000,
		PageTokens: 16, Cost: cost, AvgIterTime: 20 * time.Millisecond,
	}
	for i := 0; i < 64; i++ {
		v.Running = append(v.Running, streamReq(i, 20, 50+i*3, 2000))
	}
	for i := 0; i < 32; i++ {
		v.Waiting = append(v.Waiting, request.New(1000+i, simclock.FromSeconds(99), 512, 1024, 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ranFull = false // force the full pass each time
		_ = s.Decide(v)
	}
}
